# Development entry points. CI calls these same targets, so the pinned
# tool versions below are the single place to bump them.

STATICCHECK_VERSION ?= 2025.1
GOVULNCHECK_VERSION ?= v1.1.4
ONIONLINT_BIN       ?= $(CURDIR)/bin/onionlint

.PHONY: build test race vet onionlint staticcheck govulncheck lint

build:
	go build ./...

test:
	go test ./...

race:
	go test -race -shuffle=on ./...

# onionlint is the repo's own invariant suite (see internal/analysis):
# epoch bumps, budget charges, lock scope, error wrapping, context
# plumbing. The standalone run sees the whole program (full call-graph
# walks); the vet target below additionally exercises the unitchecker
# protocol editors use.
onionlint:
	go run ./cmd/onionlint ./...

vet:
	go vet ./...
	go build -o $(ONIONLINT_BIN) ./cmd/onionlint
	go vet -vettool=$(ONIONLINT_BIN) ./...

staticcheck:
	go run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

govulncheck:
	go run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

lint: vet onionlint staticcheck
