package onion_test

import (
	"fmt"
	"strings"

	onion "repro"
)

// ExampleNewSystem articulates two tiny ontologies and queries across
// them — the smallest complete ONION workflow.
func ExampleNewSystem() {
	shop := onion.NewOntology("shop")
	shop.MustAddTerm("Bike")
	shop.MustAddTerm("Product")
	shop.MustRelate("Bike", onion.SubclassOf, "Product")

	depot := onion.NewOntology("depot")
	depot.MustAddTerm("Bicycle")
	depot.MustAddTerm("Item")
	depot.MustRelate("Bicycle", onion.SubclassOf, "Item")

	sys := onion.NewSystem()
	_ = sys.Register(shop)
	_ = sys.Register(depot)

	kb := onion.NewKB("depot")
	kb.MustAdd("Clunker7", "InstanceOf", onion.Term("Bicycle"))
	_ = sys.RegisterKB(kb)

	set, _ := onion.ParseRules("shop.Bike => depot.Bicycle")
	_, _ = sys.Articulate("trade", "shop", "depot", set, onion.GenerateOptions{})

	res, _ := sys.Query("trade", "SELECT ?x WHERE ?x InstanceOf Bicycle")
	for _, row := range res.Rows {
		fmt.Println(row[0].Format())
	}
	// Output:
	// depot.Clunker7
}

// ExampleParseRule shows the rule forms of §4.1.
func ExampleParseRule() {
	for _, text := range []string{
		"carrier.Car => factory.Vehicle",
		"(factory.CargoCarrier ^ factory.Vehicle) => carrier.Trucks",
		"DGToEuroFn() : carrier.Price => transport.Price",
	} {
		r, err := onion.ParseRule(text)
		fmt.Println(r.String(), err)
	}
	// Output:
	// carrier.Car => factory.Vehicle <nil>
	// (factory.CargoCarrier ^ factory.Vehicle) => carrier.Trucks <nil>
	// DGToEuroFn() : carrier.Price => transport.Price <nil>
}

// ExampleParsePattern shows the paper's textual pattern notation.
func ExampleParsePattern() {
	p, _ := onion.ParsePattern("carrier:car:driver")
	fmt.Println(p.Ont, len(p.Nodes), len(p.Edges))

	p, _ = onion.ParsePattern("truck(O:owner, model)")
	fmt.Println(p.Nodes[1].Var, p.Nodes[1].Name)
	// Output:
	// carrier 2 1
	// O owner
}

// ExampleGenerate shows the three-bridge translation of a simple rule.
func ExampleGenerate() {
	carrier := onion.NewOntology("carrier")
	carrier.MustAddTerm("Car")
	factory := onion.NewOntology("factory")
	factory.MustAddTerm("Vehicle")

	set, _ := onion.ParseRules("carrier.Car => factory.Vehicle")
	res, _ := onion.Generate("transport", carrier, factory, set, onion.GenerateOptions{})
	for _, b := range res.Art.Bridges {
		fmt.Println(b)
	}
	// Output:
	// (carrier.Car, "SIBridge", transport.Vehicle)
	// (factory.Vehicle, "SIBridge", transport.Vehicle)
	// (transport.Vehicle, "SIBridge", factory.Vehicle)
}

// ExampleDefaultLexicon shows the WordNet-substitute queries SKAT uses.
func ExampleDefaultLexicon() {
	lex := onion.DefaultLexicon()
	fmt.Println(lex.AreSynonyms("car", "automobile"))
	fmt.Println(lex.IsHypernymOf("vehicle", "truck"))
	fmt.Println(strings.Join(lex.Synonyms("factory"), " "))
	// Output:
	// true
	// true
	// manufactory mill plant works
}

// ExampleFilter shows the unary select-analogue of the algebra.
func ExampleFilter() {
	o := onion.NewOntology("demo")
	o.MustAddTerm("Keep")
	o.MustAddTerm("Drop")
	out := onion.Filter(o, func(term string) bool { return term == "Keep" })
	fmt.Println(out.Terms())
	// Output:
	// [Keep]
}
