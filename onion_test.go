package onion_test

import (
	"strings"
	"testing"

	onion "repro"
)

// buildSources constructs small carrier/factory ontologies through the
// public API only, mirroring the paper's running example.
func buildSources(t testing.TB) (*onion.Ontology, *onion.Ontology) {
	t.Helper()
	carrier := onion.NewOntology("carrier")
	for _, term := range []string{"Transportation", "Cars", "Trucks", "PassengerCar", "Price"} {
		if _, err := carrier.AddTerm(term); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range [][3]string{
		{"Cars", onion.SubclassOf, "Transportation"},
		{"Trucks", onion.SubclassOf, "Transportation"},
		{"PassengerCar", onion.SubclassOf, "Cars"},
		{"Cars", onion.AttributeOf, "Price"},
	} {
		if err := carrier.Relate(r[0], r[1], r[2]); err != nil {
			t.Fatal(err)
		}
	}
	factory := onion.NewOntology("factory")
	for _, term := range []string{"Transportation", "Vehicle", "CargoCarrier", "Truck", "Price"} {
		if _, err := factory.AddTerm(term); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range [][3]string{
		{"Vehicle", onion.SubclassOf, "Transportation"},
		{"CargoCarrier", onion.SubclassOf, "Transportation"},
		{"Truck", onion.SubclassOf, "Vehicle"},
		{"Truck", onion.SubclassOf, "CargoCarrier"},
		{"Vehicle", onion.AttributeOf, "Price"},
	} {
		if err := factory.Relate(r[0], r[1], r[2]); err != nil {
			t.Fatal(err)
		}
	}
	return carrier, factory
}

func TestPublicAPIEndToEnd(t *testing.T) {
	carrier, factory := buildSources(t)
	sys := onion.NewSystem()
	if err := sys.Register(carrier); err != nil {
		t.Fatal(err)
	}
	if err := sys.Register(factory); err != nil {
		t.Fatal(err)
	}

	// Instance data.
	ckb := onion.NewKB("carrier")
	ckb.MustAdd("MyCar", "InstanceOf", onion.Term("PassengerCar"))
	ckb.MustAdd("MyCar", "Price", onion.Num(2000))
	if err := sys.RegisterKB(ckb); err != nil {
		t.Fatal(err)
	}

	// Conversion functions + rules.
	funcs := onion.NewFuncRegistry()
	if err := funcs.RegisterLinear("PSToEuroFn", "EuroToPSFn", 1.6, 0); err != nil {
		t.Fatal(err)
	}
	set, err := onion.ParseRules(`
carrier.Cars => factory.Vehicle
carrier.Transportation => factory.Transportation
PSToEuroFn() : carrier.Price => transport.Price
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Articulate("transport", "carrier", "factory", set, onion.GenerateOptions{
		Funcs:            funcs,
		InheritStructure: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Art.Ont.HasTerm("Vehicle") {
		t.Fatalf("articulation missing Vehicle")
	}

	// Query across the articulation with currency normalisation.
	out, err := sys.Query("transport", "SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range out.Rows {
		if row[0].Format() == "carrier.MyCar" && row[1].Format() == "3200" {
			found = true
		}
	}
	if !found {
		t.Fatalf("query result missing converted row: %v", out.Rows)
	}

	// Algebra over the registered articulation.
	u, err := sys.Union("transport")
	if err != nil {
		t.Fatal(err)
	}
	if !u.Ont.HasTerm("carrier.Cars") || !u.Ont.HasTerm("factory.Vehicle") {
		t.Fatalf("union missing qualified terms")
	}
	inter, err := sys.Intersection("transport")
	if err != nil {
		t.Fatal(err)
	}
	if !inter.HasTerm("Vehicle") {
		t.Fatalf("intersection missing Vehicle")
	}
	diff, err := sys.Difference("transport", false, onion.DiffFormal)
	if err != nil {
		t.Fatal(err)
	}
	if diff.HasTerm("Cars") {
		t.Fatalf("difference kept articulated term")
	}
}

func TestPublicAPISuggestions(t *testing.T) {
	carrier, factory := buildSources(t)
	ss := onion.Propose(carrier, factory, onion.SKATConfig{Lexicon: onion.DefaultLexicon()})
	if len(ss) == 0 {
		t.Fatalf("no suggestions")
	}
	var seen bool
	for _, s := range ss {
		if s.Left.Term == "Cars" && s.Right.Term == "Vehicle" {
			seen = true
		}
	}
	if !seen {
		t.Fatalf("lexicon suggestion missing: %v", ss)
	}
}

func TestPublicAPIPatternsAndAlgebra(t *testing.T) {
	carrier, _ := buildSources(t)
	p, err := onion.ParsePattern("carrier:?x:Price")
	if err != nil {
		t.Fatal(err)
	}
	ms, err := onion.FindPattern(carrier.Graph(), p, onion.PatternOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatalf("pattern found nothing")
	}
	sub := onion.Filter(carrier, func(term string) bool { return term != "Price" })
	if sub.HasTerm("Price") {
		t.Fatalf("Filter kept excluded term")
	}
	ex, err := onion.Extract(carrier, p, onion.PatternOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ex.HasTerm("Price") {
		t.Fatalf("Extract lost matched term")
	}
}

func TestPublicAPIWrappersRoundTrip(t *testing.T) {
	carrier, _ := buildSources(t)
	var buf strings.Builder
	if err := onion.WriteOntology(&buf, carrier, onion.FormatXML); err != nil {
		t.Fatal(err)
	}
	back, err := onion.ReadOntology(strings.NewReader(buf.String()), onion.FormatXML)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTerms() != carrier.NumTerms() {
		t.Fatalf("round trip lost terms")
	}
	if onion.DetectFormat("x.idl") != onion.FormatIDL {
		t.Fatalf("DetectFormat wrong")
	}
}

func TestPublicAPIPackageLevelAlgebra(t *testing.T) {
	carrier, factory := buildSources(t)
	set, err := onion.ParseRules("carrier.Cars => factory.Vehicle")
	if err != nil {
		t.Fatal(err)
	}
	u, err := onion.Union(carrier, factory, set, onion.AlgebraOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if u.Ont.NumTerms() == 0 {
		t.Fatalf("union empty")
	}
	inter, err := onion.Intersection(carrier, factory, set, onion.AlgebraOptions{})
	if err != nil || !inter.HasTerm("Vehicle") {
		t.Fatalf("intersection = %v, %v", inter, err)
	}
	diff, err := onion.Difference(carrier, factory, set, onion.AlgebraOptions{DiffMode: onion.DiffExample})
	if err != nil || diff.HasTerm("Cars") {
		t.Fatalf("difference kept Cars: %v", err)
	}
}

func TestPublicAPIGenerateWithPatterns(t *testing.T) {
	carrier, factory := buildSources(t)
	p := &onion.Pattern{Ont: "carrier"}
	x := p.AddNode(onion.PatternNode{Var: "x"})
	price := p.AddNode(onion.PatternNode{Name: "Price"})
	p.AddEdge(x, onion.AttributeOf, price)
	res, err := onion.GenerateWithPatterns("trade", carrier, factory, nil,
		[]onion.PatternRule{{LHS: p, Subject: "x", RHS: onion.MakeRef("trade", "Priced")}},
		onion.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Art.Ont.HasTerm("Priced") {
		t.Fatalf("pattern rule not applied: %v", res.Art.Ont.Terms())
	}
}

func TestPublicAPIViewer(t *testing.T) {
	carrier, _ := buildSources(t)
	out := onion.RenderTree(carrier, onion.DefaultViewOptions())
	if !strings.Contains(out, "Transportation") {
		t.Fatalf("tree missing root:\n%s", out)
	}
	set, _ := onion.ParseRules("carrier.Cars => factory.Vehicle")
	_, factory := buildSources(t)
	res, err := onion.Generate("t2", carrier, factory, set, onion.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(onion.RenderArticulation(res.Art, onion.DefaultViewOptions()), "bridges:") {
		t.Fatalf("articulation summary wrong")
	}
}

func TestPublicAPIQueryFromPatternAndExplain(t *testing.T) {
	carrier, factory := buildSources(t)
	sys := onion.NewSystem()
	if err := sys.Register(carrier); err != nil {
		t.Fatal(err)
	}
	if err := sys.Register(factory); err != nil {
		t.Fatal(err)
	}
	set, _ := onion.ParseRules("carrier.Cars => factory.Vehicle")
	if _, err := sys.Articulate("transport", "carrier", "factory", set, onion.GenerateOptions{}); err != nil {
		t.Fatal(err)
	}
	p, err := onion.ParsePattern("?x:Price")
	if err != nil {
		t.Fatal(err)
	}
	q, err := onion.QueryFromPattern(p)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sys.QueryEngine("transport")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Execute(q); err != nil {
		t.Fatal(err)
	}
	plan, err := sys.Explain("transport", "SELECT ?x WHERE ?x InstanceOf Vehicle")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.String(), "plan for") {
		t.Fatalf("plan output wrong")
	}
}

func TestPublicAPIIOExpert(t *testing.T) {
	carrier, factory := buildSources(t)
	sys := onion.NewSystem()
	if err := sys.Register(carrier); err != nil {
		t.Fatal(err)
	}
	if err := sys.Register(factory); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	expert := onion.NewIOExpert(strings.NewReader("y\nq\n"), &out, 1)
	set, stats, err := sys.RunSession("carrier", "factory", onion.SKATConfig{}, expert)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Accepted != 1 || set.Len() != 1 {
		t.Fatalf("IOExpert session = %+v", stats)
	}
}

func TestPublicAPIInferenceAsk(t *testing.T) {
	c, err := onion.ParseClause("anc(?x,?z) :- anc(?x,?y), anc(?y,?z)")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := onion.NewInferenceEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	carrier, _ := buildSources(t)
	eng.AddGraph(carrier.Graph())
	if facts, _ := eng.Ask(c.Head); facts != nil {
		// anc has no base facts in this graph; just exercising the API.
		t.Logf("Ask returned %d facts", len(facts))
	}
}

func TestPublicAPIInference(t *testing.T) {
	c, err := onion.ParseClause("SubclassOf(?x,?z) :- SubclassOf(?x,?y), SubclassOf(?y,?z)")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := onion.NewInferenceEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	carrier, _ := buildSources(t)
	eng.AddGraph(carrier.Graph())
	eng.Run()
	derived := eng.Derived()
	if len(derived) == 0 {
		t.Fatalf("nothing derived")
	}
}
