// Onionbench regenerates the experiment tables of DESIGN.md /
// EXPERIMENTS.md: the Fig. 1 / Fig. 2 reproductions (E1, E2) and the
// quantified claims (E3..E19).
//
//	onionbench                         # run everything
//	onionbench -exp E3                 # one experiment
//	onionbench -exp E11,E12,E15,E19 -json  # machine-readable results (BENCH_*.json)
//	onionbench -list                   # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment ids, comma-separated (E1..E16); empty runs all")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, t := range bench.All() {
			fmt.Printf("%-4s %s\n", t.ID, t.Title)
		}
		return
	}
	var tables []*bench.Table
	if *exp != "" {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			t, ok := bench.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "onionbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			tables = append(tables, t)
		}
	} else {
		tables = bench.All()
	}
	if *asJSON {
		out, err := bench.ReportJSON(tables)
		if err != nil {
			fmt.Fprintf(os.Stderr, "onionbench: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(out)
		return
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(t.Render())
	}
}
