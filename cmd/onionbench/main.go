// Onionbench regenerates the experiment tables of DESIGN.md /
// EXPERIMENTS.md: the Fig. 1 / Fig. 2 reproductions (E1, E2) and the
// quantified claims (E3..E10).
//
//	onionbench             # run everything
//	onionbench -exp E3     # one experiment
//	onionbench -list       # list experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id (E1..E10); empty runs all")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, t := range bench.All() {
			fmt.Printf("%-4s %s\n", t.ID, t.Title)
		}
		return
	}
	if *exp != "" {
		t, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "onionbench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		fmt.Print(t.Render())
		return
	}
	for _, t := range bench.All() {
		fmt.Print(t.Render())
		fmt.Println()
	}
}
