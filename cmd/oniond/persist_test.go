package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fixtures"
	"repro/internal/serve"
)

// durableFig2Server is fig2Server with persistence open at root — one
// "process lifetime" of a daemon started with -data-dir.
func durableFig2Server(t *testing.T, root string) (*httptest.Server, *core.System) {
	t.Helper()
	sys := core.NewSystem()
	if err := loadFig2(sys); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.OpenDir(root); err != nil {
		t.Fatal(err)
	}
	svc := serve.New(sys, serve.Options{})
	ts := httptest.NewServer(newServer(svc).routes())
	t.Cleanup(ts.Close)
	return ts, sys
}

// TestRestartRecoveryOverHTTP is the daemon-level durability contract:
// facts accepted through /mutate survive a restart (a fresh server over
// the same data dir), and the recovered daemon's /query rows are
// byte-identical on the wire.
func TestRestartRecoveryOverHTTP(t *testing.T) {
	root := t.TempDir()
	ts1, _ := durableFig2Server(t, root)
	q := queryRequest{Articulation: fixtures.ArtName, Query: smokeQuery}

	var mut mutateResponse
	if code := post(t, ts1.URL+"/mutate", mutateRequest{Source: "carrier", Facts: []factJSON{
		{Subject: "DurableCar", Predicate: "InstanceOf", Object: valueJSON{Kind: "term", Value: json.RawMessage(`"PassengerCar"`)}},
		{Subject: "DurableCar", Predicate: "Price", Object: valueJSON{Kind: "number", Value: json.RawMessage(`4100`)}},
	}}, &mut); code != http.StatusOK || mut.Added != 2 {
		t.Fatalf("mutate: HTTP %d, %+v", code, mut)
	}
	var want queryResponse
	if code := post(t, ts1.URL+"/query", q, &want); code != http.StatusOK {
		t.Fatalf("pre-restart query failed")
	}
	ts1.Close()

	ts2, _ := durableFig2Server(t, root)
	var got queryResponse
	if code := post(t, ts2.URL+"/query", q, &got); code != http.StatusOK {
		t.Fatalf("post-restart query failed")
	}
	if !reflect.DeepEqual(got.Vars, want.Vars) || !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("restarted daemon's rows diverge:\n%+v\nvs\n%+v", got.Rows, want.Rows)
	}
}

// TestSnapshotEndpoint: POST /snapshot folds the logs and reports the
// persisted world; a daemon without -data-dir answers 409.
func TestSnapshotEndpoint(t *testing.T) {
	root := t.TempDir()
	ts, sys := durableFig2Server(t, root)

	var snap snapshotResponse
	if code := post(t, ts.URL+"/snapshot", struct{}{}, &snap); code != http.StatusOK {
		t.Fatalf("snapshot: HTTP %d", code)
	}
	if snap.Root != root {
		t.Fatalf("snapshot root = %q, want %q", snap.Root, root)
	}
	carrier, ok := sys.KB("carrier")
	if !ok {
		t.Fatalf("no carrier KB")
	}
	if info := snap.Sources["carrier"]; info.Facts != carrier.Len() || info.Epoch != carrier.Epoch() {
		t.Fatalf("snapshot reported %+v, store has %d facts at epoch %d", info, carrier.Len(), carrier.Epoch())
	}

	ephemeral, _ := fig2Server(t)
	var e errorResponse
	if code := post(t, ephemeral.URL+"/snapshot", struct{}{}, &e); code != http.StatusConflict || e.Error == "" {
		t.Fatalf("snapshot without -data-dir: HTTP %d, %+v", code, e)
	}
}
