package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
)

// TestHealthAndReadyEndpoints: /healthz reports liveness always;
// /readyz flips to 503 the moment the drain starts, so load balancers
// stop routing while in-flight work finishes.
func TestHealthAndReadyEndpoints(t *testing.T) {
	sys := core.NewSystem()
	if err := loadFig2(sys); err != nil {
		t.Fatal(err)
	}
	h := newServer(serve.New(sys, serve.Options{}))
	ts := httptest.NewServer(h.routes())
	defer ts.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", got)
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", got)
	}
	h.ready.Store(false) // what the SIGTERM handler does first
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz while draining = %d, want 200 (the process is alive)", got)
	}
}

// TestQueryErrorStatusMapping pins the overload wire contract: shed →
// 429, queue-timeout → 503 (checked BEFORE the deadline mapping, since
// ErrQueueTimeout wraps the context error), plain deadline → 504,
// anything else → 400.
func TestQueryErrorStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{serve.ErrShed, http.StatusTooManyRequests},
		{fmt.Errorf("wrapped: %w", serve.ErrShed), http.StatusTooManyRequests},
		{fmt.Errorf("%w: %w", serve.ErrQueueTimeout, context.DeadlineExceeded), http.StatusServiceUnavailable},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{errors.New("parse error"), http.StatusBadRequest},
	}
	for _, c := range cases {
		if got := queryErrorStatus(c.err); got != c.want {
			t.Errorf("queryErrorStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
