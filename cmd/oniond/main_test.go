package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fixtures"
	"repro/internal/query"
	"repro/internal/serve"
)

func fig2Server(t *testing.T) (*httptest.Server, *core.System) {
	t.Helper()
	sys := core.NewSystem()
	if err := loadFig2(sys); err != nil {
		t.Fatal(err)
	}
	svc := serve.New(sys, serve.Options{})
	ts := httptest.NewServer(newServer(svc).routes())
	t.Cleanup(ts.Close)
	return ts, sys
}

func post(t *testing.T, url string, body any, into any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestQueryEndpointMatchesLibrary is the smoke contract as a unit test:
// the daemon's /query rows must be the library's rows, and a repeat is a
// cache hit.
func TestQueryEndpointMatchesLibrary(t *testing.T) {
	ts, sys := fig2Server(t)
	want, err := sys.Query(fixtures.ArtName, smokeQuery)
	if err != nil {
		t.Fatal(err)
	}
	var got queryResponse
	if code := post(t, ts.URL+"/query", queryRequest{Articulation: fixtures.ArtName, Query: smokeQuery}, &got); code != http.StatusOK {
		t.Fatalf("HTTP %d", code)
	}
	if !reflect.DeepEqual(got.Vars, want.Vars) || !reflect.DeepEqual(got.Rows, encodeRows(want.Rows)) {
		t.Fatalf("daemon rows diverge from library:\n%+v\nvs\n%+v", got.Rows, encodeRows(want.Rows))
	}
	if got.Outcome != "miss" {
		t.Fatalf("first query outcome = %q", got.Outcome)
	}
	var again queryResponse
	post(t, ts.URL+"/query", queryRequest{Articulation: fixtures.ArtName, Query: smokeQuery}, &again)
	if again.Outcome != "hit" || !reflect.DeepEqual(again.Rows, got.Rows) {
		t.Fatalf("repeat outcome = %q (rows equal: %v)", again.Outcome, reflect.DeepEqual(again.Rows, got.Rows))
	}

	// Errors surface as HTTP 400 with a JSON error body.
	var e errorResponse
	if code := post(t, ts.URL+"/query", queryRequest{Articulation: "nope", Query: smokeQuery}, &e); code != http.StatusBadRequest || e.Error == "" {
		t.Fatalf("unknown articulation: HTTP %d, %+v", code, e)
	}
	if code := post(t, ts.URL+"/query", queryRequest{Articulation: fixtures.ArtName, Query: "SELECT"}, &e); code != http.StatusBadRequest {
		t.Fatalf("bad query: HTTP %d", code)
	}
}

// TestMutateThenQuery drives the consistency loop over HTTP: mutate a
// source, and the next query must reflect the new fact (the epoch-keyed
// cache must not serve the pre-mutation answer).
func TestMutateThenQuery(t *testing.T) {
	ts, _ := fig2Server(t)
	q := queryRequest{Articulation: fixtures.ArtName, Query: smokeQuery}

	var before queryResponse
	post(t, ts.URL+"/query", q, &before)

	var mut mutateResponse
	code := post(t, ts.URL+"/mutate", mutateRequest{Source: "carrier", Facts: []factJSON{
		{Subject: "NewCar", Predicate: "InstanceOf", Object: valueJSON{Kind: "term", Value: json.RawMessage(`"PassengerCar"`)}},
		{Subject: "NewCar", Predicate: "Price", Object: valueJSON{Kind: "number", Value: json.RawMessage(`2500`)}},
	}}, &mut)
	if code != http.StatusOK || mut.Added != 2 {
		t.Fatalf("mutate: HTTP %d, %+v", code, mut)
	}

	var after queryResponse
	post(t, ts.URL+"/query", q, &after)
	if after.Outcome != "miss" {
		t.Fatalf("post-mutation outcome = %q, want miss", after.Outcome)
	}
	if len(after.Rows) != len(before.Rows)+1 {
		t.Fatalf("rows = %d, want %d", len(after.Rows), len(before.Rows)+1)
	}

	// Unknown source and malformed values are 400s.
	var e errorResponse
	if code := post(t, ts.URL+"/mutate", mutateRequest{Source: "nope"}, &e); code != http.StatusBadRequest {
		t.Fatalf("unknown source: HTTP %d", code)
	}
	if code := post(t, ts.URL+"/mutate", mutateRequest{Source: "carrier", Facts: []factJSON{
		{Subject: "X", Predicate: "P", Object: valueJSON{Kind: "wat", Value: json.RawMessage(`1`)}},
	}}, &e); code != http.StatusBadRequest {
		t.Fatalf("bad value kind: HTTP %d", code)
	}
}

// TestArticulateEndpoint generates a second articulation over the
// running daemon and queries through it.
func TestArticulateEndpoint(t *testing.T) {
	ts, _ := fig2Server(t)
	var resp articulateResponse
	code := post(t, ts.URL+"/articulate", articulateRequest{
		Name:  "transport2",
		Left:  "carrier",
		Right: "factory",
		Rules: "carrier.Cars => factory.Vehicle",
	}, &resp)
	if code != http.StatusOK || resp.Bridges == 0 || resp.Terms == 0 {
		t.Fatalf("articulate: HTTP %d, %+v", code, resp)
	}
	var got queryResponse
	if code := post(t, ts.URL+"/query", queryRequest{
		Articulation: "transport2",
		Query:        "SELECT ?x WHERE ?x InstanceOf Vehicle",
	}, &got); code != http.StatusOK || len(got.Rows) == 0 {
		t.Fatalf("query over new articulation: HTTP %d, rows %d", code, len(got.Rows))
	}
	// Duplicate name collides.
	var e errorResponse
	if code := post(t, ts.URL+"/articulate", articulateRequest{
		Name: "transport2", Left: "carrier", Right: "factory", Rules: "carrier.Cars => factory.Vehicle",
	}, &e); code != http.StatusBadRequest {
		t.Fatalf("duplicate articulation: HTTP %d", code)
	}
}

// TestStatsEndpoint checks the counters and registry listing move with
// traffic.
func TestStatsEndpoint(t *testing.T) {
	ts, _ := fig2Server(t)
	q := queryRequest{Articulation: fixtures.ArtName, Query: smokeQuery}
	post(t, ts.URL+"/query", q, nil)
	post(t, ts.URL+"/query", q, nil)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Serve.CacheHits != 1 || st.Serve.CacheMisses != 1 {
		t.Fatalf("serve counters = %+v", st.Serve)
	}
	if len(st.Ontologies) != 3 || len(st.Articulations) != 1 {
		t.Fatalf("registry listing = %+v", st)
	}
	if st.Epochs[fixtures.ArtName] == "" {
		t.Fatalf("missing epoch key for %s: %+v", fixtures.ArtName, st.Epochs)
	}
}

// TestValueCodecRoundTrip pins the wire encoding of every value kind.
func TestValueCodecRoundTrip(t *testing.T) {
	for _, v := range []struct {
		kind  string
		value string
	}{
		{"term", `"carrier.MyCar"`},
		{"string", `"Alice\u0000x"`}, // embedded NUL survives the wire
		{"number", `3000.5`},
	} {
		dec, err := decodeValue(valueJSON{Kind: v.kind, Value: json.RawMessage(v.value)})
		if err != nil {
			t.Fatalf("%s: %v", v.kind, err)
		}
		enc := encodeValue(dec)
		if enc.Kind != v.kind {
			t.Fatalf("round-trip kind %q -> %q", v.kind, enc.Kind)
		}
		dec2, err := decodeValue(enc)
		if err != nil || !dec.Equal(dec2) {
			t.Fatalf("%s: round-trip mismatch (%v)", v.kind, err)
		}
	}
}

// TestQueryMemoryLimitThreads checks the per-request memory cap: a
// budgeted /query completes via grace-hash spilling with the same rows
// as an unbounded run, and /stats exposes spilled_queries.
func TestQueryMemoryLimitThreads(t *testing.T) {
	sys := core.NewSystem()
	if err := loadFig2(sys); err != nil {
		t.Fatal(err)
	}
	svc := serve.New(sys, serve.Options{Exec: query.Options{Workers: 4}})
	ts := httptest.NewServer(newServer(svc).routes())
	t.Cleanup(ts.Close)

	var free queryResponse
	if code := post(t, ts.URL+"/query", queryRequest{Articulation: fixtures.ArtName, Query: smokeQuery}, &free); code != http.StatusOK {
		t.Fatalf("HTTP %d", code)
	}
	// The triples are reordered so the text misses the cache (mere
	// respelling would hit — keys are normalized) and actually executes;
	// the 1-byte budget guarantees the spill path even on the tiny
	// Fig. 2 world, so the plumbing is asserted unconditionally.
	respelled := "SELECT ?x ?p WHERE ?x Price ?p . ?x InstanceOf Vehicle"
	var capped queryResponse
	if code := post(t, ts.URL+"/query", queryRequest{
		Articulation: fixtures.ArtName, Query: respelled, MemoryLimitBytes: 1,
	}, &capped); code != http.StatusOK {
		t.Fatalf("HTTP %d", code)
	}
	if !reflect.DeepEqual(capped.Rows, free.Rows) {
		t.Fatalf("budgeted rows diverge from unbounded rows")
	}
	if capped.Stats.SpilledPartitions == 0 {
		t.Fatalf("1-byte request budget did not spill: %+v", capped.Stats)
	}
	var st statsResponse
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Serve.SpilledQueries == 0 {
		t.Fatalf("spilled_queries not surfaced: %+v", st.Serve)
	}
}
