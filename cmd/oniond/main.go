// Oniond is the ONION query daemon: the serving layer (internal/serve)
// exposed over HTTP/JSON, so many applications can share one articulated
// system — the paper's positioning of articulation as infrastructure
// rather than a per-program library (EDBT 2000, §2).
//
//	oniond -fig2                        # serve the Fig. 2 world on :8080
//	oniond -fig2 -addr :9000 -workers 8 -cache 4096 -timeout 2s
//	oniond -fig2 -data-dir /var/lib/onion  # durable: log+snapshot per source, recover at startup
//	oniond -smoke http://127.0.0.1:8080 # diff a live daemon against the library
//
// Endpoints (JSON in, JSON out):
//
//	POST /query      {"articulation","query","timeout_ms"?}    → vars, rows, outcome (hit|coalesced|miss), stats
//	POST /mutate     {"source","facts":[{subject,predicate,object:{kind,value}}]} → {"added"}
//	POST /articulate {"name","left","right","rules","lenient"?} → {"name","terms","bridges","skipped"?}
//	POST /snapshot                                              → per-source {"facts","epoch"} after folding logs into snapshots
//	GET  /stats                                                 → uptime, registry, epoch keys, serve counters
//	GET  /metrics                                               → Prometheus text exposition (serve, query, persist metrics)
//	GET  /healthz                                               → liveness (always 200 while the process serves)
//	GET  /readyz                                                → readiness (503 once a drain has begun)
//
// Observability: /query accepts {"trace":true} (or ?trace=1) and returns
// the request's span tree — cache lookup, admission, and the engine's
// per-step execution spans — in the response. -slow-query-threshold logs
// a JSON line with the span tree for every query over the threshold,
// -access-log logs one JSON line per request with a propagated request
// id, -pprof mounts net/http/pprof, and -check-metrics scrapes a live
// daemon's /metrics and validates the exposition (the CI smoke uses it).
//
// With -admission-cap, every executed query reserves its memory limit
// from one process-wide pool before running: under overload the daemon
// first shrinks grants (queries spill instead of swapping), then queues
// (bounded, deadline-aware), then sheds. A shed request is HTTP 429, an
// expired queue wait 503 — both with Retry-After — so clients back off
// instead of piling on.
//
// SIGINT/SIGTERM drains gracefully: /readyz flips to 503, in-flight
// requests finish under -drain-timeout, and with -data-dir a final
// snapshot folds every log so the next start replays nothing.
//
// Results are served through the epoch-keyed coalescing cache: identical
// queries at an unchanged epoch vector are cache hits, mutations through
// /mutate bump the touched source's epoch and the affected entries stop
// matching on their own.
//
// With -data-dir, every accepted mutation is appended to the source's
// fact log before it is acknowledged, logs periodically fold into
// snapshots, startup replays snapshot + log tail (truncating a torn
// tail from a crash mid-append), and evicted positive cache entries
// demote to a disk tier under <data-dir>/cache instead of being
// recomputed. A kill -9 and restart yields the same rows.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fixtures"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	fig2 := flag.Bool("fig2", false, "preload the paper's Fig. 2 transport world (carrier/factory/transport)")
	workers := flag.Int("workers", 0, "scan worker pool per query (0 = GOMAXPROCS)")
	partitions := flag.Int("partitions", 0, "join hash partitions (0 = workers)")
	cacheEntries := flag.Int("cache", 0, "result cache entries (0 = default, negative disables)")
	diskCache := flag.Int("disk-cache", 0, "disk cache tier entries under <data-dir>/cache (0 = default, negative disables; needs -data-dir)")
	timeout := flag.Duration("timeout", 5*time.Second, "default per-request deadline (0 disables)")
	dataDir := flag.String("data-dir", "", "durable mode: persist fact logs and snapshots here, recover at startup")
	admissionCap := flag.Int64("admission-cap", 0, "admission control: aggregate execution-memory pool in bytes (0 disables)")
	admissionQueue := flag.Int("admission-queue", 0, "admission queue length (0 = default, negative disables queuing; needs -admission-cap)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain deadline on SIGINT/SIGTERM")
	smoke := flag.String("smoke", "", "smoke-test mode: POST the Fig. 2 query to this base URL, diff against the library result, and exit")
	checkMetrics := flag.String("check-metrics", "", "check mode: scrape <URL>/metrics, validate the Prometheus exposition and key series, and exit")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	slowQuery := flag.Duration("slow-query-threshold", 0, "log a JSON line with the span tree for queries at or over this duration (0 disables; forces per-query tracing)")
	accessLog := flag.Bool("access-log", false, "log one JSON line per HTTP request (method, path, outcome, duration, bytes, request id)")
	flag.Parse()

	if *smoke != "" {
		if err := runSmoke(*smoke); err != nil {
			fmt.Fprintf(os.Stderr, "oniond smoke: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("oniond smoke: daemon result identical to library result")
		return
	}
	if *checkMetrics != "" {
		if err := runCheckMetrics(*checkMetrics); err != nil {
			fmt.Fprintf(os.Stderr, "oniond check-metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("oniond check-metrics: exposition valid, key series present")
		return
	}

	sys := core.NewSystem()
	if *fig2 {
		if err := loadFig2(sys); err != nil {
			log.Fatalf("oniond: loading Fig. 2 world: %v", err)
		}
	}
	if *dataDir != "" {
		stats, err := sys.OpenDir(*dataDir)
		if err != nil {
			log.Fatalf("oniond: opening data dir %s: %v", *dataDir, err)
		}
		for _, r := range stats.Recovered {
			if r.TruncatedBytes > 0 {
				log.Printf("oniond: recovered %s: %d facts at epoch %d (truncated %d-byte torn log tail)",
					r.Name, r.Facts, r.Epoch, r.TruncatedBytes)
			} else {
				log.Printf("oniond: recovered %s: %d facts at epoch %d", r.Name, r.Facts, r.Epoch)
			}
		}
		for _, name := range stats.Bootstrapped {
			log.Printf("oniond: bootstrapped %s: first snapshot written", name)
		}
		for _, name := range stats.Skipped {
			log.Printf("oniond: skipped on-disk state for unregistered source %s", name)
		}
	}
	svc := serve.New(sys, serve.Options{
		CacheEntries:      *cacheEntries,
		DefaultTimeout:    *timeout,
		Exec:              query.Options{Workers: *workers, Partitions: *partitions},
		AdmissionCapBytes: *admissionCap,
		AdmissionQueue:    *admissionQueue,
	})
	if *dataDir != "" && *diskCache >= 0 {
		if err := svc.EnableDiskCache(filepath.Join(*dataDir, "cache"), *diskCache); err != nil {
			log.Fatalf("oniond: disk cache tier: %v", err)
		}
	}
	handler := newServer(svc)
	handler.pprofOn = *pprofOn
	handler.slowQuery = *slowQuery
	handler.accessLog = *accessLog
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler.routes(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
	}
	log.Printf("oniond: listening on %s (fig2=%v, cache=%d, timeout=%s, data-dir=%q, admission-cap=%d)",
		*addr, *fig2, *cacheEntries, *timeout, *dataDir, *admissionCap)

	// Serve until a shutdown signal, then drain in-flight requests under
	// the drain deadline and — in durable mode — fold every log into a
	// final snapshot, so the next start replays nothing.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatalf("oniond: serve: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way
	log.Printf("oniond: shutdown signal; draining (deadline %s)", *drainTimeout)
	handler.ready.Store(false) // /readyz flips 503: load balancers stop sending
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("oniond: drain incomplete: %v", err)
	}
	if *dataDir != "" {
		if _, err := sys.SnapshotAll(); err != nil {
			log.Printf("oniond: final snapshot: %v", err)
		} else {
			log.Printf("oniond: final snapshot written")
		}
	}
	log.Printf("oniond: stopped")
}

// loadFig2 registers the running example: carrier and factory with their
// KBs, articulated into transport with the paper's conversion functions.
func loadFig2(sys *core.System) error {
	if err := sys.Register(fixtures.Carrier()); err != nil {
		return err
	}
	if err := sys.Register(fixtures.Factory()); err != nil {
		return err
	}
	if err := sys.RegisterKB(fixtures.CarrierKB()); err != nil {
		return err
	}
	if err := sys.RegisterKB(fixtures.FactoryKB()); err != nil {
		return err
	}
	_, err := sys.Articulate(fixtures.ArtName, "carrier", "factory", fixtures.TransportRules(), fixtures.GenOptions())
	return err
}

// smokeQuery is the Fig. 2 query the CI smoke step drives end to end.
const smokeQuery = "SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p"

// runSmoke drives a running daemon (started with -fig2) over HTTP and
// diffs its /query answer against the same query executed in-process by
// the library — the daemon must be a transparent serving shell. It
// retries briefly so CI can start the daemon and the smoke in parallel.
func runSmoke(baseURL string) error {
	// Wait for the daemon to come up.
	client := &http.Client{Timeout: 10 * time.Second}
	var lastErr error
	for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); time.Sleep(200 * time.Millisecond) {
		resp, err := client.Get(baseURL + "/stats")
		if err != nil {
			lastErr = err
			continue
		}
		resp.Body.Close()
		lastErr = nil
		break
	}
	if lastErr != nil {
		return fmt.Errorf("daemon never came up at %s: %w", baseURL, lastErr)
	}

	// The library-side expectation, computed in-process.
	sys := core.NewSystem()
	if err := loadFig2(sys); err != nil {
		return err
	}
	want, err := sys.Query(fixtures.ArtName, smokeQuery)
	if err != nil {
		return err
	}
	wantRows := encodeRows(want.Rows)

	// Ask the daemon twice: both answers must match the library, and the
	// second must come from the result cache (a repeat against the same
	// epoch vector is a hit whatever happened before).
	for i := 0; i < 2; i++ {
		body, _ := json.Marshal(queryRequest{Articulation: fixtures.ArtName, Query: smokeQuery})
		resp, err := client.Post(baseURL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		payload, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("query %d: HTTP %d: %s", i, resp.StatusCode, payload)
		}
		var got queryResponse
		if err := json.Unmarshal(payload, &got); err != nil {
			return fmt.Errorf("query %d: decoding response: %w", i, err)
		}
		if !reflect.DeepEqual(got.Vars, want.Vars) {
			return fmt.Errorf("query %d: vars %v, library %v", i, got.Vars, want.Vars)
		}
		if !reflect.DeepEqual(got.Rows, wantRows) {
			return fmt.Errorf("query %d: daemon rows diverge from library rows\n daemon: %v\n library: %v", i, got.Rows, wantRows)
		}
		if i == 1 && got.Outcome != "hit" {
			return fmt.Errorf("repeat query outcome %q, want cache hit", got.Outcome)
		}
	}
	return nil
}

// runCheckMetrics scrapes a live daemon's /metrics and fails unless the
// payload is a valid Prometheus text exposition (internal/obs's
// validator: HELP/TYPE syntax, unique series, self-consistent histogram
// bucket ladders) that carries the key families from every instrumented
// layer — and, for the serving layer, series that actually counted
// traffic. CI runs it right after the -smoke step, so at least two
// queries (one miss, one hit) must be on the books.
func runCheckMetrics(baseURL string) error {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		return fmt.Errorf("content type %q, want text/plain exposition", ct)
	}
	if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
		return fmt.Errorf("invalid exposition: %w", err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE onion_serve_query_seconds histogram",
		"# TYPE onion_serve_cache_events_total counter",
		"# TYPE onion_query_executions_total counter",
		"# TYPE onion_query_budget_peak_bytes histogram",
		"# TYPE onion_persist_append_seconds histogram",
		"# TYPE onion_persist_torn_tail_recoveries_total counter",
	} {
		if !strings.Contains(text, want) {
			return fmt.Errorf("missing family: %s", want)
		}
	}
	for _, series := range []string{"onion_serve_query_seconds_count", "onion_query_executions_total"} {
		if !seriesPositive(text, series) {
			return fmt.Errorf("series %s counted no traffic", series)
		}
	}
	return nil
}

// seriesPositive reports whether any sample of the named series (any
// label set) has a positive value.
func seriesPositive(text, name string) bool {
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		if v, err := strconv.ParseFloat(fields[len(fields)-1], 64); err == nil && v > 0 {
			return true
		}
	}
	return false
}
