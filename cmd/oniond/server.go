package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"repro/internal/articulation"
	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/rules"
	"repro/internal/serve"
)

// valueJSON is the wire form of a kb.Value: a kind tag plus a value
// whose JSON type matches the kind ("term"/"string" carry a string,
// "number" a float).
type valueJSON struct {
	Kind  string          `json:"kind"`
	Value json.RawMessage `json:"value"`
}

func encodeValue(v kb.Value) valueJSON {
	switch v.Kind {
	case kb.KindNumber:
		raw, _ := json.Marshal(v.Num)
		return valueJSON{Kind: "number", Value: raw}
	case kb.KindString:
		raw, _ := json.Marshal(v.Str)
		return valueJSON{Kind: "string", Value: raw}
	default:
		raw, _ := json.Marshal(v.Str)
		return valueJSON{Kind: "term", Value: raw}
	}
}

func decodeValue(v valueJSON) (kb.Value, error) {
	switch v.Kind {
	case "number":
		var n float64
		if err := json.Unmarshal(v.Value, &n); err != nil {
			return kb.Value{}, fmt.Errorf("number value: %w", err)
		}
		return kb.Number(n), nil
	case "string", "term":
		var s string
		if err := json.Unmarshal(v.Value, &s); err != nil {
			return kb.Value{}, fmt.Errorf("%s value: %w", v.Kind, err)
		}
		if v.Kind == "string" {
			return kb.String(s), nil
		}
		return kb.Term(s), nil
	default:
		return kb.Value{}, fmt.Errorf("unknown value kind %q", v.Kind)
	}
}

func encodeRows(rows [][]kb.Value) [][]valueJSON {
	out := make([][]valueJSON, len(rows))
	for i, row := range rows {
		enc := make([]valueJSON, len(row))
		for j, v := range row {
			enc[j] = encodeValue(v)
		}
		out[i] = enc
	}
	return out
}

type queryRequest struct {
	Articulation string `json:"articulation"`
	Query        string `json:"query"`
	// TimeoutMS bounds this request; 0 falls back to the service default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// MemoryLimitBytes caps this request's execution memory; joins
	// degrade to grace-hash spilling instead of exceeding it. 0 falls
	// back to the service default; a tighter service default wins.
	MemoryLimitBytes int64 `json:"memory_limit_bytes,omitempty"`
	// Trace requests the span tree in the response ("?trace=1" on the
	// URL does the same): cache lookup, admission, and on a miss the
	// engine's full execution subtree.
	Trace bool `json:"trace,omitempty"`
}

type queryResponse struct {
	Vars    []string      `json:"vars"`
	Rows    [][]valueJSON `json:"rows"`
	Outcome string        `json:"outcome"`
	Stats   query.Stats   `json:"stats"`
	// Trace is the request's span tree, present only when it was asked
	// for (body {"trace":true} or ?trace=1).
	Trace *obs.Span `json:"trace,omitempty"`
}

type factJSON struct {
	Subject   string    `json:"subject"`
	Predicate string    `json:"predicate"`
	Object    valueJSON `json:"object"`
}

type mutateRequest struct {
	Source string     `json:"source"`
	Facts  []factJSON `json:"facts"`
}

type mutateResponse struct {
	Added int `json:"added"`
}

type articulateRequest struct {
	Name    string `json:"name"`
	Left    string `json:"left"`
	Right   string `json:"right"`
	Rules   string `json:"rules"`
	Lenient bool   `json:"lenient,omitempty"`
}

type articulateResponse struct {
	Name    string   `json:"name"`
	Terms   int      `json:"terms"`
	Bridges int      `json:"bridges"`
	Skipped []string `json:"skipped,omitempty"`
}

type statsResponse struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Ontologies    []string          `json:"ontologies"`
	Articulations []string          `json:"articulations"`
	Epochs        map[string]string `json:"epochs"` // articulation → hex epoch key
	Serve         serve.Stats       `json:"serve"`
}

type snapshotResponse struct {
	Root    string                       `json:"root"`
	Sources map[string]core.SnapshotInfo `json:"sources"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// server routes the daemon's endpoints over one serve.Service.
type server struct {
	svc     *serve.Service
	started time.Time
	// ready gates /readyz: true while serving, flipped false when the
	// drain starts so load balancers stop routing new traffic here.
	ready atomic.Bool

	// slowQuery, when > 0, forces tracing on every query and logs one
	// JSON line (with the span tree) per query at or over the threshold.
	slowQuery time.Duration
	// accessLog, when true, logs one JSON line per HTTP request.
	accessLog bool
	// pprofOn mounts net/http/pprof under /debug/pprof/.
	pprofOn bool
	// reqSeq numbers requests for the per-request id.
	reqSeq atomic.Uint64
}

func newServer(svc *serve.Service) *server {
	s := &server{svc: svc, started: time.Now()}
	s.ready.Store(true)
	return s
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /mutate", s.handleMutate)
	mux.HandleFunc("POST /articulate", s.handleArticulate)
	mux.HandleFunc("POST /snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.Handle("GET /metrics", obs.Handler())
	if s.pprofOn {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s.middleware(mux)
}

// reqInfo carries per-request metadata between the middleware and the
// handlers: the request id flows down (and into trace spans), the
// articulation and outcome flow back up for the access log.
type reqInfo struct {
	id           string
	articulation string
	outcome      string
}

type reqInfoKey struct{}

// requestInfo returns the request's reqInfo, nil outside the middleware
// (direct handler tests).
func requestInfo(ctx context.Context) *reqInfo {
	info, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return info
}

// statusWriter records what actually went over the wire.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// accessLogLine is the JSON shape of one access-log entry.
type accessLogLine struct {
	RequestID    string  `json:"request_id"`
	Method       string  `json:"method"`
	Path         string  `json:"path"`
	Status       int     `json:"status"`
	Articulation string  `json:"articulation,omitempty"`
	Outcome      string  `json:"outcome,omitempty"`
	DurationMS   float64 `json:"duration_ms"`
	Bytes        int64   `json:"bytes"`
}

// middleware assigns every request an id (which handleQuery propagates
// into trace spans) and, with -access-log, emits one JSON line per
// request after it completes.
func (s *server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		info := &reqInfo{id: fmt.Sprintf("%x-%06d", s.started.UnixNano(), s.reqSeq.Add(1))}
		r = r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, info))
		if !s.accessLog {
			next.ServeHTTP(w, r)
			return
		}
		sw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		line, err := json.Marshal(accessLogLine{
			RequestID:    info.id,
			Method:       r.Method,
			Path:         r.URL.Path,
			Status:       sw.status,
			Articulation: info.articulation,
			Outcome:      info.outcome,
			DurationMS:   float64(time.Since(t0).Nanoseconds()) / 1e6,
			Bytes:        sw.bytes,
		})
		if err == nil {
			log.Printf("access %s", line)
		}
	})
}

// handleHealthz is liveness: the process is up and able to answer.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 200 while accepting traffic, 503 once the
// drain has begun (or before serving starts).
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func readJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !readJSON(w, r, &req) {
		return
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	info := requestInfo(ctx)
	lim := serve.Limits{MemoryBytes: req.MemoryLimitBytes}
	// The client gets the span tree only when it asked; the slow-query
	// log needs one for every query it might report, so a configured
	// threshold forces tracing on the service call either way.
	wantTrace := req.Trace || r.URL.Query().Get("trace") == "1"
	var (
		res     *query.Result
		outcome serve.Outcome
		root    *obs.Span
		err     error
	)
	t0 := time.Now()
	if wantTrace || s.slowQuery > 0 {
		res, outcome, root, err = s.svc.QueryTraced(ctx, req.Articulation, req.Query, lim)
		if info != nil {
			root.SetAttr("request_id", info.id)
		}
	} else {
		res, outcome, err = s.svc.QueryLimited(ctx, req.Articulation, req.Query, lim)
	}
	dur := time.Since(t0)
	if info != nil {
		info.articulation = req.Articulation
		info.outcome = outcome.String()
	}
	if s.slowQuery > 0 && dur >= s.slowQuery {
		s.logSlowQuery(&req, info, outcome, dur, res, root)
	}
	if err != nil {
		status := queryErrorStatus(err)
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, status, err)
		return
	}
	resp := queryResponse{
		Vars:    res.Vars,
		Rows:    encodeRows(res.Rows),
		Outcome: outcome.String(),
		Stats:   res.Stats,
	}
	if wantTrace {
		resp.Trace = root
	}
	writeJSON(w, http.StatusOK, resp)
}

// slowQueryLine is the JSON shape of one slow-query log entry; the span
// tree pinpoints which stage (admission wait, a scan, a spilling join)
// spent the time.
type slowQueryLine struct {
	RequestID    string    `json:"request_id,omitempty"`
	Articulation string    `json:"articulation"`
	Query        string    `json:"query"`
	Outcome      string    `json:"outcome"`
	DurationMS   float64   `json:"duration_ms"`
	Rows         int       `json:"rows"`
	Trace        *obs.Span `json:"trace,omitempty"`
}

func (s *server) logSlowQuery(req *queryRequest, info *reqInfo, outcome serve.Outcome, dur time.Duration, res *query.Result, root *obs.Span) {
	entry := slowQueryLine{
		Articulation: req.Articulation,
		Query:        req.Query,
		Outcome:      outcome.String(),
		DurationMS:   float64(dur.Nanoseconds()) / 1e6,
		Trace:        root,
	}
	if info != nil {
		entry.RequestID = info.id
	}
	if res != nil {
		entry.Rows = len(res.Rows)
	}
	line, err := json.Marshal(entry)
	if err == nil {
		log.Printf("slow-query %s", line)
	}
}

// queryErrorStatus maps a query error to its HTTP status. Admission
// refusals come first: a shed request is the client's cue to back off
// (429), a queue wait that expired is the server's overload (503) —
// and ErrQueueTimeout wraps the context error, so it must be checked
// before the generic deadline → 504 mapping.
func queryErrorStatus(err error) int {
	switch {
	case errors.Is(err, serve.ErrShed):
		return http.StatusTooManyRequests
	case errors.Is(err, serve.ErrQueueTimeout):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusBadRequest
	}
}

func (s *server) handleMutate(w http.ResponseWriter, r *http.Request) {
	var req mutateRequest
	if !readJSON(w, r, &req) {
		return
	}
	facts := make([]kb.Fact, len(req.Facts))
	for i, f := range req.Facts {
		obj, err := decodeValue(f.Object)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("fact %d: %w", i, err))
			return
		}
		facts[i] = kb.Fact{Subject: f.Subject, Predicate: f.Predicate, Object: obj}
	}
	added, err := s.svc.AddFacts(req.Source, facts)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, mutateResponse{Added: added})
}

func (s *server) handleArticulate(w http.ResponseWriter, r *http.Request) {
	var req articulateRequest
	if !readJSON(w, r, &req) {
		return
	}
	set, err := rules.ParseSetString(req.Rules)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.svc.System().Articulate(req.Name, req.Left, req.Right, set,
		articulation.Options{Lenient: req.Lenient})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := articulateResponse{
		Name:    req.Name,
		Terms:   res.Art.Ont.NumTerms(),
		Bridges: len(res.Art.Bridges),
	}
	for _, sk := range res.Skipped {
		resp.Skipped = append(resp.Skipped, fmt.Sprintf("%s: %s", sk.Rule, sk.Reason))
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSnapshot folds every durable source's log into a fresh snapshot
// (bounding the next recovery's replay) and reports the persisted world.
// Fails with 409 when the daemon runs without -data-dir.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	info, err := s.svc.System().SnapshotAll()
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, snapshotResponse{Root: s.svc.System().PersistRoot(), Sources: info})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	sys := s.svc.System()
	arts := sys.Articulations()
	epochs := make(map[string]string, len(arts))
	for _, a := range arts {
		if key, err := sys.QueryEpochKey(a); err == nil {
			epochs[a] = fmt.Sprintf("%x", key)
		}
	}
	writeJSON(w, http.StatusOK, statsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Ontologies:    sys.Ontologies(),
		Articulations: arts,
		Epochs:        epochs,
		Serve:         s.svc.Stats(),
	})
}
