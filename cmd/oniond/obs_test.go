package main

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/obs"
)

// TestQueryTraceParam checks the wire contract for tracing: trace=1 (or
// the JSON field) returns the span tree in the response, and its absence
// keeps the response trace-free.
func TestQueryTraceParam(t *testing.T) {
	ts, _ := fig2Server(t)

	var plain queryResponse
	if code := post(t, ts.URL+"/query", queryRequest{Articulation: fixtures.ArtName, Query: smokeQuery}, &plain); code != http.StatusOK {
		t.Fatalf("HTTP %d", code)
	}
	if plain.Trace != nil {
		t.Fatalf("untraced response carries a trace")
	}

	var traced queryResponse
	if code := post(t, ts.URL+"/query?trace=1", queryRequest{Articulation: fixtures.ArtName, Query: smokeQuery}, &traced); code != http.StatusOK {
		t.Fatalf("HTTP %d", code)
	}
	if traced.Trace == nil || traced.Trace.Name != "request" {
		t.Fatalf("trace=1 response trace = %+v, want request root", traced.Trace)
	}
	if traced.Trace.DurNs <= 0 {
		t.Errorf("trace root not ended")
	}
	// The repeat was a cache hit: the span tree says which tier served it.
	if traced.Trace.Find("cache.hit") == nil {
		t.Errorf("hit trace lacks cache.hit span:\n%s", traced.Trace.Tree())
	}
	// The request id minted by the middleware is stamped on the root.
	found := false
	for _, a := range traced.Trace.Attrs {
		if a.Key == "request_id" && a.Val != "" {
			found = true
		}
	}
	if !found {
		t.Errorf("trace root lacks request_id attr: %+v", traced.Trace.Attrs)
	}

	// The JSON body field works too.
	var traced2 queryResponse
	post(t, ts.URL+"/query", queryRequest{Articulation: fixtures.ArtName, Query: smokeQuery, Trace: true}, &traced2)
	if traced2.Trace == nil {
		t.Fatalf("trace request field ignored")
	}
}

// TestMetricsEndpoint scrapes /metrics after traffic and validates the
// exposition with the in-tree validator, plus spot-checks that serving
// and engine series counted the queries just issued.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := fig2Server(t)
	for i := 0; i < 2; i++ {
		post(t, ts.URL+"/query", queryRequest{Articulation: fixtures.ArtName, Query: smokeQuery}, nil)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d err %v", resp.StatusCode, err)
	}
	if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE onion_serve_query_seconds histogram",
		"# TYPE onion_serve_cache_events_total counter",
		"# TYPE onion_query_executions_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing family %q", want)
		}
	}
	if !seriesPositive(text, "onion_serve_query_seconds_count") {
		t.Errorf("onion_serve_query_seconds counted no queries:\n%s", text)
	}
}
