package main

import (
	"os"
	"path/filepath"
	"testing"

	onion "repro"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadOntologyDetectsFormat(t *testing.T) {
	adj := writeFile(t, "c.onto", "ontology c\nnode A\nnode B\nedge A SubclassOf B\n")
	o, err := loadOntology(adj, "")
	if err != nil {
		t.Fatal(err)
	}
	if o.Name() != "c" || o.NumTerms() != 2 {
		t.Fatalf("loaded = %s", o)
	}

	idl := writeFile(t, "f.idl", "module f { interface X {}; };")
	o, err = loadOntology(idl, "")
	if err != nil {
		t.Fatal(err)
	}
	if o.Name() != "f" {
		t.Fatalf("IDL name = %q", o.Name())
	}

	// Override beats extension.
	weird := writeFile(t, "f.bin", "ontology w\nnode A\n")
	if _, err := loadOntology(weird, ""); err == nil {
		t.Fatalf("unknown extension without override accepted")
	}
	if _, err := loadOntology(weird, "adjacency"); err != nil {
		t.Fatalf("override failed: %v", err)
	}
	if _, err := loadOntology(weird, "nope"); err == nil {
		t.Fatalf("bad override accepted")
	}
	if _, err := loadOntology(filepath.Join(t.TempDir(), "missing.onto"), ""); err == nil {
		t.Fatalf("missing file accepted")
	}
}

func TestLoadRules(t *testing.T) {
	path := writeFile(t, "r.txt", "a.X => b.Y\n# comment\n")
	set, err := loadRules(path)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 1 {
		t.Fatalf("rules = %d", set.Len())
	}
	bad := writeFile(t, "bad.txt", "a.X =>\n")
	if _, err := loadRules(bad); err == nil {
		t.Fatalf("bad rules accepted")
	}
}

func TestLoadKBParsesValueKinds(t *testing.T) {
	path := writeFile(t, "facts.txt", `
# facts
MyCar InstanceOf PassengerCar
MyCar Price 2000
MyCar Owner "Alice Smith"
`)
	store, err := loadKB(path, "carrier")
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != 3 || store.Name() != "carrier" {
		t.Fatalf("store = %s", store)
	}
	fs := store.Match("MyCar", "Price", nil)
	if len(fs) != 1 || !fs[0].Object.IsNumber() || fs[0].Object.Num != 2000 {
		t.Fatalf("number fact = %v", fs)
	}
	fs = store.Match("MyCar", "Owner", nil)
	if len(fs) != 1 || fs[0].Object.Str != "Alice Smith" {
		t.Fatalf("string fact = %v", fs)
	}
	fs = store.Match("MyCar", "InstanceOf", nil)
	if len(fs) != 1 || !fs[0].Object.IsTerm() {
		t.Fatalf("term fact = %v", fs)
	}

	bad := writeFile(t, "bad.txt", "only two\n")
	if _, err := loadKB(bad, "x"); err == nil {
		t.Fatalf("short fact line accepted")
	}
}

func TestTopPerLeft(t *testing.T) {
	ss := []onion.Suggestion{
		{Left: onion.MakeRef("a", "X"), Right: onion.MakeRef("b", "P"), Score: 0.5},
		{Left: onion.MakeRef("a", "X"), Right: onion.MakeRef("b", "Q"), Score: 0.9},
		{Left: onion.MakeRef("a", "Y"), Right: onion.MakeRef("b", "R"), Score: 0.7},
	}
	top := topPerLeft(ss)
	if len(top) != 2 {
		t.Fatalf("topPerLeft = %v", top)
	}
	if top[0].Right.Term != "Q" {
		t.Fatalf("best suggestion not kept: %v", top)
	}
}

func TestParseFormatNames(t *testing.T) {
	for name, want := range map[string]onion.Format{
		"adjacency": onion.FormatAdjacency,
		"adj":       onion.FormatAdjacency,
		"XML":       onion.FormatXML,
		"idl":       onion.FormatIDL,
	} {
		got, err := parseFormat(name)
		if err != nil || got != want {
			t.Errorf("parseFormat(%s) = %v, %v", name, got, err)
		}
	}
	if _, err := parseFormat("docx"); err == nil {
		t.Errorf("parseFormat(docx) accepted")
	}
}

func TestCmdConvertRoundTrip(t *testing.T) {
	in := writeFile(t, "c.onto", "ontology c\nnode A\nnode B\nedge A SubclassOf B\n")
	out := filepath.Join(t.TempDir(), "c.xml")
	if err := cmdConvert([]string{"-in", in, "-out", out}); err != nil {
		t.Fatal(err)
	}
	o, err := loadOntology(out, "")
	if err != nil {
		t.Fatal(err)
	}
	if o.NumTerms() != 2 {
		t.Fatalf("converted ontology lost terms")
	}
}

func TestCmdValidate(t *testing.T) {
	good := writeFile(t, "g.onto", "ontology g\nnode A\n")
	if err := cmdValidate([]string{good}); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
	bad := writeFile(t, "b.onto", "node\n")
	if err := cmdValidate([]string{bad}); err == nil {
		t.Fatalf("invalid file accepted")
	}
}
