package main

import (
	"flag"
	"fmt"
	"os"

	onion "repro"
)

// artFlags are the common flags of articulate/union/intersect/diff/query.
type artFlags struct {
	fs      *flag.FlagSet
	left    *string
	right   *string
	rules   *string
	name    *string
	inherit *bool
	lenient *bool
	derive  *bool
}

func newArtFlags(cmd string) *artFlags {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	return &artFlags{
		fs:      fs,
		left:    fs.String("left", "", "left ontology file"),
		right:   fs.String("right", "", "right ontology file"),
		rules:   fs.String("rules", "", "articulation rule file"),
		name:    fs.String("name", "articulation", "articulation ontology name"),
		inherit: fs.Bool("inherit", false, "inherit structure from the sources (§4.2)"),
		lenient: fs.Bool("lenient", false, "skip rules with unknown terms instead of failing"),
		derive:  fs.Bool("derive", false, "let the inference engine derive additional rules (§2.4)"),
	}
}

// build loads both sources and generates the articulation.
func (af *artFlags) build() (*onion.System, *onion.GenerateResult, error) {
	if *af.left == "" || *af.right == "" {
		return nil, nil, fmt.Errorf("need -left and -right")
	}
	l, err := loadOntology(*af.left, "")
	if err != nil {
		return nil, nil, err
	}
	r, err := loadOntology(*af.right, "")
	if err != nil {
		return nil, nil, err
	}
	set := onion.NewRuleSet()
	if *af.rules != "" {
		if set, err = loadRules(*af.rules); err != nil {
			return nil, nil, err
		}
	}
	sys := onion.NewSystem()
	if err := sys.Register(l); err != nil {
		return nil, nil, err
	}
	if err := sys.Register(r); err != nil {
		return nil, nil, err
	}
	if *af.derive {
		derived, err := sys.InferRules(l.Name(), r.Name(), set)
		if err != nil {
			return nil, nil, err
		}
		for _, d := range derived {
			fmt.Fprintf(os.Stderr, "derived rule: %s\n", d.Rule)
			set.Add(d.Rule)
		}
	}
	res, err := sys.Articulate(*af.name, l.Name(), r.Name(), set, onion.GenerateOptions{
		InheritStructure: *af.inherit,
		Lenient:          *af.lenient,
	})
	if err != nil {
		return nil, nil, err
	}
	return sys, res, nil
}

func reportDiagnostics(res *onion.GenerateResult) {
	for _, sk := range res.Skipped {
		fmt.Fprintf(os.Stderr, "skipped rule: %s (%s)\n", sk.Rule, sk.Reason)
	}
	for _, fn := range res.MissingFuncs {
		fmt.Fprintf(os.Stderr, "conversion function not registered: %s (bridge generated anyway)\n", fn)
	}
}

func cmdArticulate(args []string) error {
	af := newArtFlags("articulate")
	dot := af.fs.Bool("dot", false, "render the articulation ontology as DOT")
	summary := af.fs.Bool("summary", false, "render an expert-review summary (tree + grouped bridges)")
	_ = af.fs.Parse(args)
	_, res, err := af.build()
	if err != nil {
		return err
	}
	reportDiagnostics(res)
	switch {
	case *dot:
		fmt.Print(res.Art.Ont.Graph().DOT())
	case *summary:
		fmt.Print(onion.RenderArticulation(res.Art, onion.DefaultViewOptions()))
	default:
		fmt.Print(res.Art)
	}
	return nil
}

func cmdAlgebra(op string, args []string) error {
	af := newArtFlags(op)
	swap := af.fs.Bool("swap", false, "compute right − left instead (diff only)")
	mode := af.fs.String("mode", "formal", "difference semantics: formal | example")
	out := af.fs.String("out", "-", "output file for the result ontology")
	outformat := af.fs.String("outformat", "adjacency", "output format")
	_ = af.fs.Parse(args)
	sys, res, err := af.build()
	if err != nil {
		return err
	}
	reportDiagnostics(res)

	var result *onion.Ontology
	switch op {
	case "union":
		u, err := sys.Union(*af.name)
		if err != nil {
			return err
		}
		result = u.Ont
	case "intersect":
		if result, err = sys.Intersection(*af.name); err != nil {
			return err
		}
	case "diff":
		m := onion.DiffFormal
		if *mode == "example" {
			m = onion.DiffExample
		} else if *mode != "formal" {
			return fmt.Errorf("unknown -mode %q", *mode)
		}
		if result, err = sys.Difference(*af.name, *swap, m); err != nil {
			return err
		}
	}
	format, err := parseFormat(*outformat)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return onion.WriteOntology(w, result, format)
}

func cmdQuery(args []string) error {
	af := newArtFlags("query")
	leftKB := af.fs.String("leftkb", "", "fact file for the left source")
	rightKB := af.fs.String("rightkb", "", "fact file for the right source")
	qtext := af.fs.String("q", "", "query text")
	explain := af.fs.Bool("explain", false, "show the reformulation plan instead of executing")
	_ = af.fs.Parse(args)
	if *qtext == "" {
		return fmt.Errorf("need -q")
	}
	sys, res, err := af.build()
	if err != nil {
		return err
	}
	reportDiagnostics(res)
	// Register the fact files before explaining OR executing: the
	// planner's scan estimates come from the KB indexes, so an explain
	// without the KBs would show every fact estimate as zero.
	if *leftKB != "" {
		store, err := loadKB(*leftKB, res.Art.Sources[0])
		if err != nil {
			return err
		}
		if err := sys.RegisterKB(store); err != nil {
			return err
		}
	}
	if *rightKB != "" {
		store, err := loadKB(*rightKB, res.Art.Sources[1])
		if err != nil {
			return err
		}
		if err := sys.RegisterKB(store); err != nil {
			return err
		}
	}
	if *explain {
		plan, err := sys.Explain(*af.name, *qtext)
		if err != nil {
			return err
		}
		fmt.Print(plan)
		return nil
	}
	out, err := sys.Query(*af.name, *qtext)
	if err != nil {
		return err
	}
	for i, v := range out.Vars {
		if i > 0 {
			fmt.Print("\t")
		}
		fmt.Printf("?%s", v)
	}
	fmt.Println()
	for _, row := range out.Rows {
		for i, v := range row {
			if i > 0 {
				fmt.Print("\t")
			}
			fmt.Print(v.Format())
		}
		fmt.Println()
	}
	fmt.Fprintf(os.Stderr, "%d rows (%d source scans, %d conversions)\n",
		len(out.Rows), out.Stats.SourceScans, out.Stats.Conversions)
	return nil
}
