// Onion is the command-line toolkit over the ONION library — the
// text-mode stand-in for the paper's graphical viewer (§2.2): inspect and
// convert ontologies, run SKAT suggestions, generate articulations, apply
// the ontology algebra, and query across articulations.
//
// Usage:
//
//	onion convert  -in carrier.xml -out carrier.idl
//	onion validate carrier.onto factory.xml
//	onion info     carrier.onto
//	onion dot      carrier.onto > carrier.dot
//	onion suggest  -left carrier.onto -right factory.xml [-min 0.55] [-structural 2]
//	onion articulate -left carrier.onto -right factory.xml -rules rules.txt \
//	                 -name transport [-inherit] [-lenient]
//	onion union | intersect | diff  -left ... -right ... -rules ... -name art [-swap] [-mode example]
//	onion query  -left carrier.onto -right factory.xml -rules rules.txt -name transport \
//	             [-leftkb carrier.facts] [-rightkb factory.facts] -q "SELECT ?x WHERE ?x InstanceOf Vehicle"
//
// Ontology formats are detected by extension (.onto/.adj/.txt adjacency,
// .xml, .idl); -informat/-outformat override.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	onion "repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "convert":
		err = cmdConvert(args)
	case "validate":
		err = cmdValidate(args)
	case "info":
		err = cmdInfo(args)
	case "dot":
		err = cmdDot(args)
	case "suggest":
		err = cmdSuggest(args)
	case "session":
		err = cmdSession(args)
	case "articulate":
		err = cmdArticulate(args)
	case "union", "intersect", "diff":
		err = cmdAlgebra(cmd, args)
	case "query":
		err = cmdQuery(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "onion: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "onion %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `onion — ONION ontology articulation toolkit

commands:
  convert     convert an ontology between formats (adjacency, xml, idl)
  validate    check consistency of ontology files
  info        print ontology statistics
  dot         render an ontology as Graphviz DOT
  suggest     propose articulation rules between two ontologies (SKAT)
  session     interactive SKAT session: review suggestions, emit a rule file
  articulate  generate an articulation from a rule file
  union       unified ontology of two sources under a rule file
  intersect   articulation ontology of two sources (O1 ∩ O2)
  diff        difference of two sources (O1 − O2)
  query       run a query across an articulation

run 'onion <command> -h' for flags.`)
}

// loadOntology reads one ontology file, auto-detecting the format unless
// override is non-empty.
func loadOntology(path, override string) (*onion.Ontology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	format := onion.DetectFormat(path)
	if override != "" {
		var perr error
		format, perr = parseFormat(override)
		if perr != nil {
			return nil, perr
		}
	}
	o, err := onion.ReadOntology(bufio.NewReader(f), format)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return o, nil
}

func parseFormat(name string) (onion.Format, error) {
	switch strings.ToLower(name) {
	case "adjacency", "adj", "onto", "txt":
		return onion.FormatAdjacency, nil
	case "xml":
		return onion.FormatXML, nil
	case "idl":
		return onion.FormatIDL, nil
	default:
		return 0, fmt.Errorf("unknown format %q (adjacency|xml|idl)", name)
	}
}

func loadRules(path string) (*onion.RuleSet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	set, err := onion.ParseRules(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return set, nil
}

// loadKB reads a fact file: one "subject predicate value" triple per
// line, '#' comments; values parse as numbers, quoted strings, or terms.
func loadKB(path, name string) (*onion.KB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	store := onion.NewKB(name)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 3 {
			return nil, fmt.Errorf("%s:%d: want 'subject predicate value'", path, line)
		}
		raw := strings.Join(fields[2:], " ")
		var v onion.Value
		switch {
		case strings.HasPrefix(raw, `"`) && strings.HasSuffix(raw, `"`) && len(raw) >= 2:
			v = onion.Str(raw[1 : len(raw)-1])
		default:
			if n, err := strconv.ParseFloat(raw, 64); err == nil {
				v = onion.Num(n)
			} else {
				v = onion.Term(raw)
			}
		}
		if err := store.Add(fields[0], fields[1], v); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
	}
	return store, sc.Err()
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "input ontology file")
	out := fs.String("out", "", "output file ('-' for stdout)")
	informat := fs.String("informat", "", "override input format")
	outformat := fs.String("outformat", "", "override output format")
	name := fs.String("name", "", "rename the ontology")
	_ = fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("need -in and -out")
	}
	o, err := loadOntology(*in, *informat)
	if err != nil {
		return err
	}
	if *name != "" {
		o.SetName(*name)
	}
	format := onion.DetectFormat(*out)
	if *outformat != "" {
		if format, err = parseFormat(*outformat); err != nil {
			return err
		}
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return onion.WriteOntology(w, o, format)
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	informat := fs.String("informat", "", "override input format")
	_ = fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("need ontology files")
	}
	failed := false
	for _, path := range fs.Args() {
		o, err := loadOntology(path, *informat)
		if err != nil {
			fmt.Printf("%-30s FAIL  %v\n", path, err)
			failed = true
			continue
		}
		if err := o.Validate(); err != nil {
			fmt.Printf("%-30s FAIL  %v\n", path, err)
			failed = true
			continue
		}
		fmt.Printf("%-30s ok    (%d terms, %d relationships)\n", path, o.NumTerms(), o.NumRelationships())
	}
	if failed {
		return fmt.Errorf("validation failed")
	}
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	informat := fs.String("informat", "", "override input format")
	full := fs.Bool("full", false, "dump the full ontology")
	tree := fs.Bool("tree", false, "render the class hierarchy as a tree")
	depth := fs.Int("depth", 0, "tree depth limit (0 = unlimited)")
	_ = fs.Parse(args)
	for _, path := range fs.Args() {
		o, err := loadOntology(path, *informat)
		if err != nil {
			return err
		}
		if *tree {
			opts := onion.DefaultViewOptions()
			opts.MaxDepth = *depth
			fmt.Print(onion.RenderTree(o, opts))
			continue
		}
		stats := o.Graph().ComputeStats()
		fmt.Printf("%s: ontology %s\n", path, o.Name())
		fmt.Printf("  terms:         %d\n", stats.Nodes)
		fmt.Printf("  relationships: %d (%d labels)\n", stats.Edges, stats.EdgeLabels)
		fmt.Printf("  components:    %d\n", stats.Components)
		fmt.Printf("  max degree:    out %d / in %d\n", stats.MaxOutDeg, stats.MaxInDeg)
		if *full {
			fmt.Print(o)
		}
	}
	return nil
}

func cmdDot(args []string) error {
	fs := flag.NewFlagSet("dot", flag.ExitOnError)
	informat := fs.String("informat", "", "override input format")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("need exactly one ontology file")
	}
	o, err := loadOntology(fs.Arg(0), *informat)
	if err != nil {
		return err
	}
	fmt.Print(o.Graph().DOT())
	return nil
}

func cmdSuggest(args []string) error {
	fs := flag.NewFlagSet("suggest", flag.ExitOnError)
	left := fs.String("left", "", "left ontology file")
	right := fs.String("right", "", "right ontology file")
	min := fs.Float64("min", 0.55, "minimum suggestion score")
	structural := fs.Int("structural", 0, "structural propagation rounds")
	noLexicon := fs.Bool("nolexicon", false, "disable the semantic lexicon")
	lexFile := fs.String("lexicon", "", "load a custom lexicon file (words : parents : gloss)")
	top := fs.Bool("top", false, "keep only the best suggestion per left term")
	asRules := fs.Bool("rules", false, "print as a parseable rule file")
	_ = fs.Parse(args)
	if *left == "" || *right == "" {
		return fmt.Errorf("need -left and -right")
	}
	l, err := loadOntology(*left, "")
	if err != nil {
		return err
	}
	r, err := loadOntology(*right, "")
	if err != nil {
		return err
	}
	cfg := onion.SKATConfig{MinScore: *min, StructuralRounds: *structural}
	switch {
	case *lexFile != "":
		f, err := os.Open(*lexFile)
		if err != nil {
			return err
		}
		lex, err := onion.LoadLexicon(bufio.NewReader(f))
		f.Close()
		if err != nil {
			return err
		}
		cfg.Lexicon = lex
	case !*noLexicon:
		cfg.Lexicon = onion.DefaultLexicon()
	}
	ss := onion.Propose(l, r, cfg)
	if *top {
		ss = topPerLeft(ss)
	}
	for _, s := range ss {
		if *asRules {
			fmt.Printf("%s    # %.2f\n", s.Rule(), s.Score)
		} else {
			fmt.Println(s)
		}
	}
	fmt.Fprintf(os.Stderr, "%d suggestions\n", len(ss))
	return nil
}

// cmdSession drives the interactive propose → confirm/reject/modify loop
// of §2.4 on the terminal and prints the accepted rule set (redirect to a
// file and feed it to 'onion articulate').
func cmdSession(args []string) error {
	fs := flag.NewFlagSet("session", flag.ExitOnError)
	left := fs.String("left", "", "left ontology file")
	right := fs.String("right", "", "right ontology file")
	min := fs.Float64("min", 0.55, "minimum suggestion score")
	structural := fs.Int("structural", 2, "structural propagation rounds")
	rounds := fs.Int("rounds", 2, "maximum propose/review rounds")
	_ = fs.Parse(args)
	if *left == "" || *right == "" {
		return fmt.Errorf("need -left and -right")
	}
	l, err := loadOntology(*left, "")
	if err != nil {
		return err
	}
	r, err := loadOntology(*right, "")
	if err != nil {
		return err
	}
	sys := onion.NewSystem()
	if err := sys.Register(l); err != nil {
		return err
	}
	if err := sys.Register(r); err != nil {
		return err
	}
	expert := onion.NewIOExpert(os.Stdin, os.Stderr, *rounds)
	set, stats, err := sys.RunSession(l.Name(), r.Name(), onion.SKATConfig{
		MinScore:         *min,
		StructuralRounds: *structural,
	}, expert)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "session: %d reviewed, %d accepted, %d rejected, %d modified in %d round(s)\n",
		stats.Reviewed, stats.Accepted, stats.Rejected, stats.Modified, stats.Rounds)
	fmt.Print(set)
	return nil
}

func topPerLeft(ss []onion.Suggestion) []onion.Suggestion {
	best := make(map[string]onion.Suggestion)
	var order []string
	for _, s := range ss {
		cur, ok := best[s.Left.Term]
		if !ok {
			order = append(order, s.Left.Term)
		}
		if !ok || s.Score > cur.Score {
			best[s.Left.Term] = s
		}
	}
	out := make([]onion.Suggestion, 0, len(order))
	for _, k := range order {
		out = append(out, best[k])
	}
	return out
}
