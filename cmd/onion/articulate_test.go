package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixturePaths writes the carrier/factory/rules/facts files once per test.
func fixturePaths(t *testing.T) (carrier, factory, rules, facts string) {
	t.Helper()
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	carrier = write("carrier.onto", `
ontology carrier
node Transportation
node Cars
node Trucks
node PassengerCar
node Price
edge Cars SubclassOf Transportation
edge Trucks SubclassOf Transportation
edge PassengerCar SubclassOf Cars
edge Cars AttributeOf Price
`)
	factory = write("factory.idl", `
module factory {
  interface Transportation {};
  interface Vehicle : Transportation { attribute float Price; };
  interface CargoCarrier : Transportation {};
  interface Truck : Vehicle, CargoCarrier {};
};
`)
	rules = write("rules.txt", `
carrier.Cars => factory.Vehicle
carrier.Transportation => factory.Transportation
(factory.CargoCarrier ^ factory.Vehicle) => carrier.Trucks
`)
	facts = write("carrier.facts", `
MyCar InstanceOf PassengerCar
MyCar Price 2000
`)
	return
}

// captureStdout runs f with os.Stdout redirected and returns the output.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		var b strings.Builder
		_, _ = io.Copy(&b, r)
		done <- b.String()
	}()
	errRun := f()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	if errRun != nil {
		t.Fatal(errRun)
	}
	return out
}

func TestCmdArticulateOutputs(t *testing.T) {
	carrier, factory, rules, _ := fixturePaths(t)
	out := captureStdout(t, func() error {
		return cmdArticulate([]string{"-left", carrier, "-right", factory, "-rules", rules, "-name", "transport", "-inherit"})
	})
	for _, want := range []string{"articulation transport", "SIBridge", "CargoCarrierVehicle"} {
		if !strings.Contains(out, want) {
			t.Fatalf("articulate output missing %q:\n%s", want, out)
		}
	}
	// Summary mode.
	out = captureStdout(t, func() error {
		return cmdArticulate([]string{"-left", carrier, "-right", factory, "-rules", rules, "-name", "transport", "-summary"})
	})
	if !strings.Contains(out, "bridges:") {
		t.Fatalf("summary output missing bridges:\n%s", out)
	}
	// DOT mode.
	out = captureStdout(t, func() error {
		return cmdArticulate([]string{"-left", carrier, "-right", factory, "-rules", rules, "-name", "transport", "-dot"})
	})
	if !strings.Contains(out, "digraph transport") {
		t.Fatalf("dot output wrong:\n%s", out)
	}
}

func TestCmdAlgebraOutputs(t *testing.T) {
	carrier, factory, rules, _ := fixturePaths(t)
	base := []string{"-left", carrier, "-right", factory, "-rules", rules, "-name", "transport"}

	out := captureStdout(t, func() error { return cmdAlgebra("union", base) })
	if !strings.Contains(out, "carrier.Cars") || !strings.Contains(out, "factory.Vehicle") {
		t.Fatalf("union output wrong:\n%s", out)
	}
	out = captureStdout(t, func() error { return cmdAlgebra("intersect", base) })
	if !strings.Contains(out, "node Vehicle") {
		t.Fatalf("intersect output wrong:\n%s", out)
	}
	out = captureStdout(t, func() error { return cmdAlgebra("diff", base) })
	if strings.Contains(out, "node Cars") {
		t.Fatalf("diff kept determined term:\n%s", out)
	}
	out = captureStdout(t, func() error { return cmdAlgebra("diff", append(base, "-swap", "-mode", "example")) })
	if !strings.Contains(out, "ontology factory-carrier") {
		t.Fatalf("swapped diff name wrong:\n%s", out)
	}
	if err := cmdAlgebra("diff", append(base, "-mode", "bogus")); err == nil {
		t.Fatalf("bad diff mode accepted")
	}
}

func TestCmdQueryOutputs(t *testing.T) {
	carrier, factory, rules, facts := fixturePaths(t)
	out := captureStdout(t, func() error {
		return cmdQuery([]string{
			"-left", carrier, "-right", factory, "-rules", rules, "-name", "transport",
			"-leftkb", facts,
			"-q", "SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p",
		})
	})
	if !strings.Contains(out, "carrier.MyCar") || !strings.Contains(out, "2000") {
		t.Fatalf("query output wrong:\n%s", out)
	}
	if err := cmdQuery([]string{"-left", carrier, "-right", factory, "-name", "t"}); err == nil {
		t.Fatalf("query without -q accepted")
	}
}

func TestCmdQueryExplain(t *testing.T) {
	carrier, factory, rules, _ := fixturePaths(t)
	out := captureStdout(t, func() error {
		return cmdQuery([]string{
			"-left", carrier, "-right", factory, "-rules", rules, "-name", "transport",
			"-q", "SELECT ?x WHERE ?x InstanceOf Vehicle",
			"-explain",
		})
	})
	if !strings.Contains(out, "plan for") || !strings.Contains(out, "triple ?x InstanceOf Vehicle") {
		t.Fatalf("explain output wrong:\n%s", out)
	}
	if !strings.Contains(out, "carrier") {
		t.Fatalf("explain missing source scans:\n%s", out)
	}
}

func TestCmdSessionScripted(t *testing.T) {
	carrier, factory, _, _ := fixturePaths(t)
	oldStdin := os.Stdin
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdin = r
	go func() {
		_, _ = w.WriteString("y\nq\n")
		w.Close()
	}()
	defer func() { os.Stdin = oldStdin }()
	out := captureStdout(t, func() error {
		return cmdSession([]string{"-left", carrier, "-right", factory, "-rounds", "1"})
	})
	if !strings.Contains(out, "=>") {
		t.Fatalf("session emitted no rules:\n%s", out)
	}
}

func TestCmdInfoAndDot(t *testing.T) {
	carrier, _, _, _ := fixturePaths(t)
	out := captureStdout(t, func() error { return cmdInfo([]string{carrier}) })
	if !strings.Contains(out, "terms:         5") {
		t.Fatalf("info output wrong:\n%s", out)
	}
	out = captureStdout(t, func() error { return cmdInfo([]string{"-tree", carrier}) })
	if !strings.Contains(out, "└─") && !strings.Contains(out, "├─") {
		t.Fatalf("tree output wrong:\n%s", out)
	}
	out = captureStdout(t, func() error { return cmdDot([]string{carrier}) })
	if !strings.Contains(out, "digraph carrier") {
		t.Fatalf("dot output wrong:\n%s", out)
	}
	if err := cmdDot([]string{}); err == nil {
		t.Fatalf("dot without file accepted")
	}
}

func TestCmdSuggestOutputs(t *testing.T) {
	carrier, factory, _, _ := fixturePaths(t)
	out := captureStdout(t, func() error {
		return cmdSuggest([]string{"-left", carrier, "-right", factory, "-top", "-rules"})
	})
	if !strings.Contains(out, "carrier.Transportation => factory.Transportation") {
		t.Fatalf("suggest output wrong:\n%s", out)
	}
	if err := cmdSuggest([]string{"-left", carrier}); err == nil {
		t.Fatalf("suggest without -right accepted")
	}
}

func TestArtFlagsErrors(t *testing.T) {
	carrier, _, _, _ := fixturePaths(t)
	if err := cmdArticulate([]string{"-left", carrier}); err == nil {
		t.Fatalf("missing -right accepted")
	}
	if err := cmdArticulate([]string{"-left", carrier, "-right", "/nonexistent.onto"}); err == nil {
		t.Fatalf("missing right file accepted")
	}
}
