// Command onionlint machine-checks the repo's cross-cutting invariants:
// epoch bumps on effective mutations, budget charges on executor
// allocations, no I/O under serve mutexes, %w/errors.Is error identity,
// and request-path context threading. See internal/analysis for the
// individual analyzers and the //lint:onion-ignore suppression syntax.
//
// It runs two ways:
//
//	onionlint ./...                         # standalone multichecker
//	go vet -vettool=$(which onionlint) ./...  # unitchecker (editors/gopls)
//
// The vet protocol is detected by the trailing *.cfg argument go vet
// passes; everything else is treated as package patterns.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	// go vet probes the tool's identity with -V=full before using it.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		fmt.Printf("onionlint version 1 (repro invariants suite)\n")
		return
	}
	// go vet also asks which analyzer flags the tool accepts (a JSON
	// array of flag descriptions); onionlint exposes none to vet.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	// go vet invokes the tool once per package with a JSON config file.
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(runUnitchecker(os.Args[1]))
	}

	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer subset (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: onionlint [-list] [-only a,b] [package patterns]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := analysis.ByName(*only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "onionlint: %v\n", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "onionlint: %v\n", err)
		os.Exit(2)
	}
	prog, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "onionlint: %v\n", err)
		os.Exit(2)
	}
	findings, err := prog.Run(analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "onionlint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "onionlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
