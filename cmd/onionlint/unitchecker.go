package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"repro/internal/analysis"
)

// runUnitchecker implements enough of the `go vet -vettool` protocol to
// run the suite one package at a time: go vet hands the tool a JSON
// config describing the package's files and its dependencies' export
// data, the tool type-checks and analyzes, prints findings to stderr
// and writes the (for onionlint: empty — the analyzers exchange no
// facts) .vetx output file the go command expects.
//
// Single-package mode sees no dependency bodies, so lockscope's
// call-graph walk only crosses calls within the checked package; the CI
// gate runs the standalone multichecker over the whole repo for the
// full walk, and vet mode exists so editors and gopls surface the same
// findings inline.

// vetConfig mirrors the fields of the go command's vet config file that
// onionlint consumes (the file carries more; unknown fields are
// ignored).
type vetConfig struct {
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOutput                string
	VetxOnly                  bool
	SucceedOnTypecheckFailure bool
}

func runUnitchecker(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "onionlint: reading vet config: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "onionlint: parsing vet config: %v\n", err)
		return 2
	}
	// The go command also invokes the tool over every dependency —
	// including the standard library — purely to compute facts
	// (VetxOnly). Onionlint exchanges no facts and its contracts only
	// bind this repo's code, so dependency invocations just produce the
	// empty facts file and report nothing.
	if cfg.VetxOnly {
		return writeVetx(cfg)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg)
			}
			fmt.Fprintf(os.Stderr, "onionlint: %v\n", err)
			return 2
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg)
		}
		fmt.Fprintf(os.Stderr, "onionlint: %v\n", err)
		return 2
	}

	prog := analysis.NewSinglePackageProgram(fset, &analysis.Package{
		Path:   cfg.ImportPath,
		Name:   tpkg.Name(),
		Target: true,
		Files:  files,
		Types:  tpkg,
		Info:   info,
	})
	findings, err := prog.Run(analysis.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "onionlint: %v\n", err)
		return 2
	}
	if code := writeVetx(cfg); code != 0 {
		return code
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// writeVetx writes the empty facts file the go command requires from a
// vet tool, even when the tool exchanges no facts.
func writeVetx(cfg vetConfig) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "onionlint: writing vetx output: %v\n", err)
		return 2
	}
	return 0
}
