// Package onion is a from-scratch Go implementation of ONION — the
// graph-oriented model for articulation of ontology interdependencies of
// Mitra, Wiederhold and Kersten (EDBT 2000).
//
// ONION lets independently maintained ontologies interoperate without
// merging them into a global schema: a small articulation ontology plus
// semantic bridges is the only thing materialised, generated
// semi-automatically from articulation rules proposed by SKAT and
// confirmed by a domain expert. An ontology algebra (union, intersection,
// difference) composes ontologies through articulations, and a query
// system reformulates articulation-level queries against the underlying
// sources, applying functional conversion rules to values.
//
// # Quick start
//
//	sys := onion.NewSystem()
//	_ = sys.Register(carrier) // *onion.Ontology
//	_ = sys.Register(factory)
//
//	rules, _ := onion.ParseRules(`
//	    carrier.Cars => factory.Vehicle
//	    PSToEuroFn() : carrier.Price => transport.Price
//	`)
//	res, _ := sys.Articulate("transport", "carrier", "factory", rules, onion.GenerateOptions{})
//	fmt.Println(res.Art)
//
//	out, _ := sys.Query("transport", "SELECT ?x WHERE ?x InstanceOf Vehicle")
//
// Queries compile into cached plans, reorder their joins by estimated
// selectivity, and fan per-source scans out to a bounded worker pool;
// with more than one worker, join chains execute as a cross-step
// streaming pipeline (each step's probe output streams straight into the
// next step's hash partitions while later sources are still scanning).
// QueryOptions tunes the pool and partitioning (or forces the sequential
// reference path); results are identical either way:
//
//	out, _ = sys.QueryWith("transport",
//	    "SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p",
//	    onion.QueryOptions{Workers: 8})
//
// A System is safe for concurrent use: queries run in parallel while
// registration and articulation serialise against them.
//
// The package re-exports the system's building blocks; the sub-systems
// live in internal packages (graph model, pattern matcher, rule language,
// inference engine, lexicon, SKAT, articulation generator, algebra,
// knowledge bases, query engine, and format wrappers).
package onion

import (
	"io"

	"repro/internal/algebra"
	"repro/internal/articulation"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/inference"
	"repro/internal/kb"
	"repro/internal/lexicon"
	"repro/internal/obs"
	"repro/internal/ontology"
	"repro/internal/pattern"
	"repro/internal/query"
	"repro/internal/rules"
	"repro/internal/serve"
	"repro/internal/skat"
	"repro/internal/view"
	"repro/internal/wrapper"
)

// System is the ONION data layer: the registry of ontologies, knowledge
// bases and articulations, and the entry point for SKAT, the algebra and
// the query system.
type System = core.System

// NewSystem returns an empty ONION system with the embedded default
// lexicon.
func NewSystem() *System { return core.NewSystem() }

// RecoveryStats reports what System.OpenDir recovered, bootstrapped and
// skipped when opening a persistence directory.
type RecoveryStats = core.RecoveryStats

// SnapshotInfo is one source's durable state as reported by
// System.SnapshotAll.
type SnapshotInfo = core.SnapshotInfo

// Ontology is a consistent ontology: a named directed labeled graph whose
// terms each denote one concept.
type Ontology = ontology.Ontology

// RelationSpec declares a relationship and its algebraic properties.
type RelationSpec = ontology.RelationSpec

// Ref is a qualified term reference ("carrier.Car").
type Ref = ontology.Ref

// Relationship property flags.
const (
	Transitive = ontology.Transitive
	Symmetric  = ontology.Symmetric
	Reflexive  = ontology.Reflexive
)

// The standard relationship labels of the paper's semantic model.
const (
	SubclassOf  = ontology.SubclassOf
	AttributeOf = ontology.AttributeOf
	InstanceOf  = ontology.InstanceOf
	SI          = ontology.SI
	SIBridge    = ontology.SIBridge
)

// NewOntology returns an empty ontology with the standard relationship
// declarations (SubclassOf and SI transitive).
func NewOntology(name string) *Ontology { return ontology.New(name) }

// ParseRef parses "ontology.Term" (or "ontology:Term").
func ParseRef(s string) (Ref, error) { return ontology.ParseRef(s) }

// MakeRef builds a Ref from its parts.
func MakeRef(ont, term string) Ref { return ontology.MakeRef(ont, term) }

// Graph is the underlying directed labeled multigraph (§3 of the paper),
// including the NA/ND/EA/ED transformation primitives.
type Graph = graph.Graph

// NodeID identifies a node within one Graph.
type NodeID = graph.NodeID

// Edge is a directed labeled edge.
type Edge = graph.Edge

// Rule is one articulation rule (implication chain, optionally with a
// conversion-function prefix).
type Rule = rules.Rule

// RuleSet is an ordered articulation rule set.
type RuleSet = rules.Set

// ParseRule parses one rule, e.g. "carrier.Car => factory.Vehicle".
func ParseRule(s string) (Rule, error) { return rules.Parse(s) }

// ParseRules parses a rule set (one rule per line, '#' comments).
func ParseRules(text string) (*RuleSet, error) { return rules.ParseSetString(text) }

// NewRuleSet builds a rule set from rules.
func NewRuleSet(rs ...Rule) *RuleSet { return rules.NewSet(rs...) }

// Implication builds the simple rule lhs => rhs.
func Implication(lhs, rhs Ref) Rule { return rules.Implication(lhs, rhs) }

// Articulation is the materialised articulation: the articulation
// ontology plus its semantic bridges.
type Articulation = articulation.Articulation

// Bridge is one semantic bridge.
type Bridge = articulation.Bridge

// GenerateOptions tune articulation generation.
type GenerateOptions = articulation.Options

// GenerateResult carries the generated articulation and diagnostics.
type GenerateResult = articulation.Result

// FuncRegistry holds conversion functions for functional rules.
type FuncRegistry = articulation.FuncRegistry

// NewFuncRegistry returns an empty conversion-function registry.
func NewFuncRegistry() *FuncRegistry { return articulation.NewFuncRegistry() }

// Generate builds an articulation outside a System (the System method
// Articulate is the registry-aware variant).
func Generate(artName string, o1, o2 *Ontology, set *RuleSet, opts GenerateOptions) (*GenerateResult, error) {
	return articulation.Generate(artName, o1, o2, set, opts)
}

// Pattern is a graph pattern (§3), with the textual notation of the paper.
type Pattern = pattern.Pattern

// PatternNode is one pattern node (a label to match and/or a variable).
type PatternNode = pattern.Node

// PatternEdge connects two pattern nodes by index.
type PatternEdge = pattern.Edge

// PatternOptions tune pattern matching (fuzzy node/edge equivalences).
type PatternOptions = pattern.Options

// Match is one image of a pattern in a graph.
type Match = pattern.Match

// ParsePattern parses the paper's textual pattern notation, e.g.
// "carrier:car:driver" or "truck(O:owner,model)".
func ParsePattern(s string) (*Pattern, error) { return pattern.Parse(s) }

// FindPattern returns every match of p in g.
func FindPattern(g *Graph, p *Pattern, opts PatternOptions) ([]Match, error) {
	return pattern.Find(g, p, opts)
}

// Algebra options and operators (§5).
type (
	// AlgebraOptions configure the binary operators.
	AlgebraOptions = algebra.Options
	// UnionResult carries a unified ontology and its articulation.
	UnionResult = algebra.UnionResult
	// DiffMode selects the difference semantics.
	DiffMode = algebra.DiffMode
)

// Difference semantics (see DESIGN.md on the paper's two readings).
const (
	DiffFormal  = algebra.DiffFormal
	DiffExample = algebra.DiffExample
)

// Union is O1 ∪rules O2: both sources, the articulation ontology and the
// bridges in one (qualified) ontology.
func Union(o1, o2 *Ontology, set *RuleSet, opts AlgebraOptions) (*UnionResult, error) {
	return algebra.Union(o1, o2, set, opts)
}

// Intersection is O1 ∩rules O2: the articulation ontology.
func Intersection(o1, o2 *Ontology, set *RuleSet, opts AlgebraOptions) (*Ontology, error) {
	return algebra.Intersection(o1, o2, set, opts)
}

// Difference is O1 −rules O2: the part of O1 not determined to exist in O2.
func Difference(o1, o2 *Ontology, set *RuleSet, opts AlgebraOptions) (*Ontology, error) {
	return algebra.Difference(o1, o2, set, opts)
}

// Filter is the unary select-analogue over terms.
func Filter(o *Ontology, keep func(term string) bool) *Ontology {
	return algebra.Filter(o, keep)
}

// Extract is the unary project-analogue over a pattern.
func Extract(o *Ontology, p *Pattern, opts PatternOptions) (*Ontology, error) {
	return algebra.Extract(o, p, opts)
}

// SKAT — the semi-automatic articulation tool (§2.4).
type (
	// Suggestion is one proposed correspondence with score and evidence.
	Suggestion = skat.Suggestion
	// SKATConfig tunes proposal generation.
	SKATConfig = skat.Config
	// Expert is the reviewer in the iterative articulation loop.
	Expert = skat.Expert
	// SessionStats summarises one expert session.
	SessionStats = skat.SessionStats
	// ThresholdExpert auto-accepts suggestions above a score.
	ThresholdExpert = skat.ThresholdExpert
	// OracleExpert accepts suggestions matching a ground truth.
	OracleExpert = skat.OracleExpert
)

// Propose runs SKAT's matchers over two ontologies.
func Propose(o1, o2 *Ontology, cfg SKATConfig) []Suggestion {
	return skat.Propose(o1, o2, cfg)
}

// NewIOExpert returns an interactive Expert reading y/n/m/q decisions from
// in and prompting on out (the CLI session command uses it on the
// terminal).
func NewIOExpert(in io.Reader, out io.Writer, maxRounds int) Expert {
	return &skat.IOExpert{In: in, Out: out, MaxRounds: maxRounds}
}

// QueryPlan is the reformulation plan of a query (System.Explain). When
// produced by System.ExplainAnalyze it additionally carries per-step
// actual row counts and durations from a real execution.
type QueryPlan = query.Plan

// Observability (internal/obs): every process shares one metrics
// registry — cmd/oniond serves it at GET /metrics in the Prometheus
// text exposition — and executions requested with tracing record a span
// tree.
type (
	// TraceSpan is one node of a query's span tree (QueryService
	// QueryTraced, or oniond's trace=1): a named timed operation with
	// attributes and children. Its Tree method renders the indented
	// text form.
	TraceSpan = obs.Span
	// TraceAttr is one key/value annotation on a span.
	TraceAttr = obs.Attr
)

// NewTrace starts a root span for a hand-driven trace; end it with End
// and pass it through QueryOptions-independent instrumented call paths.
func NewTrace(name string) *TraceSpan { return obs.NewTrace(name) }

// Lexicon is the WordNet-substitute semantic lexicon.
type Lexicon = lexicon.Lexicon

// DefaultLexicon returns the embedded vocabulary.
func DefaultLexicon() *Lexicon { return lexicon.DefaultLexicon() }

// NewLexicon returns an empty lexicon for custom vocabularies.
func NewLexicon() *Lexicon { return lexicon.New() }

// LoadLexicon reads a lexicon in the text format "words : parents : gloss"
// (one synset per line) — the bulk-import path for WordNet-derived
// vocabularies.
func LoadLexicon(r io.Reader) (*Lexicon, error) { return lexicon.Load(r) }

// Knowledge bases and values.
type (
	// KB is an instance fact store beneath a source ontology.
	KB = kb.Store
	// Value is a fact object: term, string or number.
	Value = kb.Value
	// Fact is one (subject, predicate, object) statement.
	Fact = kb.Fact
)

// NewKB returns an empty knowledge base named after its ontology.
func NewKB(name string) *KB { return kb.New(name) }

// Term builds a term value.
func Term(name string) Value { return kb.Term(name) }

// Str builds a string-literal value.
func Str(s string) Value { return kb.String(s) }

// Num builds a numeric value.
func Num(n float64) Value { return kb.Number(n) }

// Query system.
type (
	// Query is a conjunctive SELECT query over triple patterns.
	Query = query.Query
	// QueryResult is a deterministic answer table.
	QueryResult = query.Result
	// QueryEngine reformulates and executes queries across bridges.
	QueryEngine = query.Engine
	// QuerySource pairs an ontology with its knowledge base.
	QuerySource = query.Source
	// QueryOptions tune execution: Workers bounds the scan worker pool
	// (0 = GOMAXPROCS, 1 = inline); with more than one worker a keyed
	// join chain runs as a cross-step streaming pipeline whose per-step
	// hash-partition counts the planner derives from its scan estimates
	// (Partitions > 0 pins a global count instead). The pipeline's
	// default data plane is the columnar batch executor — rows flow
	// between stages as per-slot value vectors with vectorized hash,
	// filter and probe passes; RowAtATime pins the tuple-at-a-time
	// pipeline instead (same rows, byte-identical). MemoryLimit caps
	// the execution's accounted bytes: pipeline join partitions that
	// cannot reserve within it degrade to grace-hash spilling joins
	// (temp-file runs under SpillDir), with rows byte-identical to the
	// unbounded run. StepBarriers keeps the per-step executor (each
	// join step materialises its output before the next step's scans
	// dispatch); Sequential forces the reference path (textual join
	// order, unindexed scans, no plan cache); CompatJoins keeps the
	// compiled plan but runs the retained binding-map join
	// representation (benchmark baseline).
	QueryOptions = query.Options
	// QueryStats counts the work one execution performed, including the
	// plan/parallelism counters of the planned path (scan workers, join
	// partitions per step, streamed batches, pipelined steps, cancelled
	// scans) and the memory-governance counters (peak accounted bytes,
	// spilled partitions, spill runs, adaptive partition steps).
	QueryStats = query.Stats
)

// ParseQuery parses "SELECT ?x WHERE ?x InstanceOf Vehicle . ?x Price ?p".
func ParseQuery(s string) (Query, error) { return query.Parse(s) }

// QueryFromPattern converts a graph pattern into a conjunctive query —
// the paper's pattern notation doubles as its query notation (§3).
func QueryFromPattern(p *Pattern, selectVars ...string) (Query, error) {
	return query.FromPattern(p, selectVars...)
}

// NewQueryEngine builds an engine over an articulation and its sources.
func NewQueryEngine(art *Articulation, sources map[string]*QuerySource) (*QueryEngine, error) {
	return query.NewEngine(art, sources)
}

// NewQueryEngineWith is NewQueryEngine with default execution options
// applied to every Execute call.
func NewQueryEngineWith(art *Articulation, sources map[string]*QuerySource, opts QueryOptions) (*QueryEngine, error) {
	return query.NewEngineWith(art, sources, opts)
}

// Serving layer (internal/serve): a concurrent query service over a
// System with an epoch-keyed result cache, singleflight coalescing of
// identical in-flight queries, per-request deadlines and — when
// ServeOptions.AdmissionCapBytes is set — admission control over one
// process-wide execution-memory pool. cmd/oniond exposes it over
// HTTP/JSON.
type (
	// QueryService answers queries through the coalescing result cache.
	QueryService = serve.Service
	// ServeOptions tune the service (cache bounds — including the
	// separate negative-result cache — default deadline, execution
	// options, and the admission pool: cap, queue length, default and
	// minimum grant of the degradation ladder).
	ServeOptions = serve.Options
	// ServeStats are the service's traffic counters (hits, misses,
	// coalesced, negative hits, evictions, mutations, spilled queries,
	// admission admitted/queued/shed/degraded counts and queue-wait
	// time, disk-tier faults and circuit-breaker trips).
	ServeStats = serve.Stats
	// ServeOutcome reports how a query was answered (hit, coalesced,
	// miss) or refused under overload (queued, shed).
	ServeOutcome = serve.Outcome
	// ServeLimits are per-request resource bounds beside the context
	// deadline (a memory budget under which joins spill).
	ServeLimits = serve.Limits
)

// Admission refusals, for errors.Is against QueryService errors: ErrShed
// is an immediate refusal (full pool and full queue — back off and
// retry), ErrQueueTimeout an admission wait that outlived the request's
// context (it wraps the context error).
var (
	ErrShed         = serve.ErrShed
	ErrQueueTimeout = serve.ErrQueueTimeout
)

// NewQueryService wraps a System in a serving layer. Results served from
// the cache are exact: every mutation through the System bumps the
// touched source's epoch, and cache keys include the epoch vector.
func NewQueryService(sys *System, opts ServeOptions) *QueryService {
	return serve.New(sys, opts)
}

// Inference engine (Horn clauses over binary atoms).
type (
	// Clause is a definite Horn clause.
	Clause = inference.Clause
	// InferenceEngine evaluates clauses to fixpoint.
	InferenceEngine = inference.Engine
)

// ParseClause parses "S(?x,?z) :- S(?x,?y), S(?y,?z)".
func ParseClause(s string) (Clause, error) { return inference.ParseClause(s) }

// NewInferenceEngine builds an engine with the given clauses.
func NewInferenceEngine(clauses ...Clause) (*InferenceEngine, error) {
	return inference.New(clauses...)
}

// Wrapper formats (§2.1): adjacency lists, XML documents, IDL subset.
type Format = wrapper.Format

// Formats accepted by ReadOntology / WriteOntology.
const (
	FormatAdjacency = wrapper.FormatAdjacency
	FormatXML       = wrapper.FormatXML
	FormatIDL       = wrapper.FormatIDL
)

// ViewOptions tune the text renderer (the viewer substitute, §2.2).
type ViewOptions = view.Options

// DefaultViewOptions show attributes, instances and other relationships.
func DefaultViewOptions() ViewOptions { return view.DefaultOptions() }

// RenderTree renders an ontology's class hierarchy as an indented tree.
func RenderTree(o *Ontology, opts ViewOptions) string { return view.Tree(o, opts) }

// RenderArticulation renders an articulation for expert review: the
// articulation tree plus bridges grouped per articulation term.
func RenderArticulation(a *Articulation, opts ViewOptions) string {
	return view.ArticulationSummary(a, opts)
}

// PatternRule is the general rule form of §4.1 — a graph-pattern LHS whose
// matches each imply the RHS term.
type PatternRule = articulation.PatternRule

// DerivedRule is a rule produced by inference over the supplied rules and
// the sources' class structure, with its supporting facts.
type DerivedRule = articulation.DerivedRule

// InferRules derives additional simple articulation rules (§2.4).
func InferRules(o1, o2 *Ontology, set *RuleSet) ([]DerivedRule, error) {
	return articulation.InferRules(o1, o2, set)
}

// GenerateWithPatterns is Generate plus pattern-rule expansion.
func GenerateWithPatterns(artName string, o1, o2 *Ontology, set *RuleSet, patternRules []PatternRule, opts GenerateOptions) (*GenerateResult, error) {
	return articulation.GenerateWithPatterns(artName, o1, o2, set, patternRules, opts)
}

// ReadOntology parses an external ontology representation.
func ReadOntology(r io.Reader, f Format) (*Ontology, error) { return wrapper.Read(r, f) }

// WriteOntology renders an ontology in an external representation.
func WriteOntology(w io.Writer, o *Ontology, f Format) error { return wrapper.Write(w, o, f) }

// DetectFormat maps a file name to a wrapper format by extension.
func DetectFormat(path string) Format { return wrapper.DetectFormat(path) }
