// Benchmarks: one per experiment table of DESIGN.md (E1..E10). The
// onionbench binary prints the full tables with parameter sweeps; these
// benchmarks give statistically robust per-operation numbers for the same
// code paths.
package onion_test

import (
	"fmt"
	"testing"

	"repro/internal/algebra"
	"repro/internal/articulation"
	"repro/internal/fixtures"
	"repro/internal/inference"
	"repro/internal/kb"
	"repro/internal/lexicon"
	"repro/internal/ontology"
	"repro/internal/pattern"
	"repro/internal/query"
	"repro/internal/rules"
	"repro/internal/skat"
	"repro/internal/workload"
)

// --- E1: Fig. 2 articulation generation ---

func BenchmarkArticulateFigure2(b *testing.B) {
	carrier, factory := fixtures.Carrier(), fixtures.Factory()
	set := fixtures.TransportRules()
	opts := fixtures.GenOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := articulation.Generate(fixtures.ArtName, carrier, factory, set, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2: full pipeline (SKAT session + articulation) ---

func BenchmarkPipelineSKATToArticulation(b *testing.B) {
	carrier, factory := fixtures.Carrier(), fixtures.Factory()
	lex := lexicon.DefaultLexicon()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set, _ := skat.RunSession(carrier, factory, skat.Config{Lexicon: lex, MinScore: 0.5},
			skat.ThresholdExpert{AcceptAt: 0.75, MaxRounds: 2})
		if _, err := articulation.Generate("auto", carrier, factory, set, articulation.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3/E10: incremental articulation vs. global merge ---

func scalePair(b *testing.B, classes int) (*ontology.Ontology, *ontology.Ontology, *rules.Set) {
	b.Helper()
	o1, o2, truth := workload.GeneratePair(workload.PairSpec{
		Spec:         workload.Spec{Name: "b1", Classes: classes, AttrsPerClass: 0.3, Seed: 42},
		Overlap:      0.3,
		ExtraClasses: classes / 4,
	})
	set := rules.NewSet()
	for l, r := range truth {
		set.Add(rules.Implication(ontology.MakeRef(o1.Name(), l), ontology.MakeRef(o2.Name(), r)))
	}
	return o1, o2, set
}

func BenchmarkArticulationVsMerge_Articulate(b *testing.B) {
	o1, o2, set := scalePair(b, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := articulation.Generate("arte", o1, o2, set, articulation.Options{Lenient: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkArticulationVsMerge_GlobalMerge(b *testing.B) {
	o1, o2, _ := scalePair(b, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		merged := ontology.New("global")
		for _, src := range []*ontology.Ontology{o1, o2} {
			q := algebra.Qualify(src)
			g := q.Graph()
			for _, id := range g.Nodes() {
				if _, err := merged.EnsureTerm(g.Label(id)); err != nil {
					b.Fatal(err)
				}
			}
			for _, e := range g.Edges() {
				if err := merged.Relate(g.Label(e.From), e.Label, g.Label(e.To)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// --- E4: maintenance assessment ---

func BenchmarkMaintenanceAssessChange(b *testing.B) {
	o1, o2, set := scalePair(b, 200)
	res, err := articulation.Generate("artm", o1, o2, set, articulation.Options{Lenient: true})
	if err != nil {
		b.Fatal(err)
	}
	changed := o1.Terms()[:20]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Art.AssessChange(o1.Name(), changed)
	}
}

// --- E5: algebra operators ---

func benchAlgebra(b *testing.B, op func(o1, o2 *ontology.Ontology, set *rules.Set, opts algebra.Options) error) {
	o1, o2, set := scalePair(b, 300)
	opts := algebra.Options{ArtName: "arta", Gen: articulation.Options{Lenient: true}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := op(o1, o2, set, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgebraUnion(b *testing.B) {
	benchAlgebra(b, func(o1, o2 *ontology.Ontology, set *rules.Set, opts algebra.Options) error {
		_, err := algebra.Union(o1, o2, set, opts)
		return err
	})
}

func BenchmarkAlgebraIntersection(b *testing.B) {
	benchAlgebra(b, func(o1, o2 *ontology.Ontology, set *rules.Set, opts algebra.Options) error {
		_, err := algebra.Intersection(o1, o2, set, opts)
		return err
	})
}

func BenchmarkAlgebraDifference(b *testing.B) {
	benchAlgebra(b, func(o1, o2 *ontology.Ontology, set *rules.Set, opts algebra.Options) error {
		_, err := algebra.Difference(o1, o2, set, opts)
		return err
	})
}

// --- E6: pattern matching ---

func benchPattern(b *testing.B, p *pattern.Pattern, opts pattern.Options) {
	o := workload.Generate(workload.Spec{Name: "pat", Classes: 1000, AttrsPerClass: 0.6, Seed: 3000})
	g := o.Graph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pattern.Find(g, p, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPatternMatchEdge(b *testing.B) {
	benchPattern(b, &pattern.Pattern{
		Nodes: []pattern.Node{{Var: "x"}, {Var: "y"}},
		Edges: []pattern.Edge{{From: 0, Label: ontology.SubclassOf, To: 1}},
	}, pattern.Options{})
}

func BenchmarkPatternMatchPath3(b *testing.B) {
	benchPattern(b, &pattern.Pattern{
		Nodes: []pattern.Node{{Var: "x"}, {Var: "y"}, {Var: "z"}},
		Edges: []pattern.Edge{
			{From: 0, Label: ontology.SubclassOf, To: 1},
			{From: 1, Label: ontology.SubclassOf, To: 2},
		},
	}, pattern.Options{})
}

// Ablation: what adjacency-based candidate narrowing buys on a 3-node
// path pattern (DESIGN.md calls for ablations of design choices).
func BenchmarkPatternNarrowingAblation(b *testing.B) {
	p := &pattern.Pattern{
		Nodes: []pattern.Node{{Var: "x"}, {Var: "y"}, {Var: "z"}},
		Edges: []pattern.Edge{
			{From: 0, Label: ontology.SubclassOf, To: 1},
			{From: 1, Label: ontology.SubclassOf, To: 2},
		},
	}
	o := workload.Generate(workload.Spec{Name: "pat", Classes: 500, AttrsPerClass: 0.6, Seed: 77})
	g := o.Graph()
	b.Run("narrowing=on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pattern.Find(g, p, pattern.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("narrowing=off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pattern.Find(g, p, pattern.Options{DisableNarrowing: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkPatternMatchAttrPair(b *testing.B) {
	benchPattern(b, &pattern.Pattern{
		Nodes: []pattern.Node{{Var: "c"}, {Var: "a1"}, {Var: "a2"}},
		Edges: []pattern.Edge{
			{From: 0, Label: ontology.AttributeOf, To: 1},
			{From: 0, Label: ontology.AttributeOf, To: 2},
		},
	}, pattern.Options{Injective: true})
}

// --- E7: SKAT proposal generation ---

func benchSKAT(b *testing.B, cfg skat.Config) {
	o1, o2, _ := workload.GeneratePair(workload.PairSpec{
		Spec:          workload.Spec{Name: "sk", Classes: 150, AttrsPerClass: 0.3, Seed: 2024},
		Overlap:       0.6,
		SynonymRename: 0.4,
		StyleRename:   0.3,
		ExtraClasses:  50,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		skat.Propose(o1, o2, cfg)
	}
}

func BenchmarkSKATExact(b *testing.B) {
	benchSKAT(b, skat.Config{Weights: skat.Weights{Exact: 1}, MinScore: 0.95})
}

func BenchmarkSKATLexicon(b *testing.B) {
	benchSKAT(b, skat.Config{Lexicon: lexicon.DefaultLexicon(), MinScore: 0.55})
}

func BenchmarkSKATStructural(b *testing.B) {
	benchSKAT(b, skat.Config{Lexicon: lexicon.DefaultLexicon(), MinScore: 0.55, StructuralRounds: 2})
}

// --- E8: query execution ---

func queryWorld(b *testing.B) *query.Engine {
	b.Helper()
	res, carrier, factory := fixtures.GenerateTransport()
	ckb, fkb := fixtures.CarrierKB(), fixtures.FactoryKB()
	// Widen the fact base so joins have real work.
	for i := 0; i < 300; i++ {
		inst := fmt.Sprintf("Car%d", i)
		ckb.MustAdd(inst, "InstanceOf", kb.Term("PassengerCar"))
		ckb.MustAdd(inst, "Price", kb.Number(float64(1000+i)))
	}
	eng, err := query.NewEngine(res.Art, map[string]*query.Source{
		"carrier": {Ont: carrier, KB: ckb},
		"factory": {Ont: factory, KB: fkb},
	})
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

func BenchmarkQueryArticulationLevel(b *testing.B) {
	eng := queryWorld(b)
	q := query.MustParse("SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuerySourceQualified(b *testing.B) {
	eng := queryWorld(b)
	q := query.MustParse("SELECT ?x ?p WHERE ?x InstanceOf carrier.PassengerCar . ?x Price ?p")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E11: sequential reference vs. planned/parallel execution ---

func BenchmarkQuerySequentialPath(b *testing.B) {
	eng := queryWorld(b)
	q := query.MustParse("SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p")
	opts := query.Options{Sequential: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.ExecuteWith(q, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryPlannedPath(b *testing.B) {
	eng := queryWorld(b)
	q := query.MustParse("SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p")
	var opts query.Options
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.ExecuteWith(q, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E12: PR 1 binding joins vs. slot-tuple joins (small world) ---

func BenchmarkQueryCompatJoins(b *testing.B) {
	eng := queryWorld(b)
	q := query.MustParse("SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p")
	opts := query.Options{CompatJoins: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.ExecuteWith(q, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E9: inference strategies ---

func ancestorEngine(b *testing.B, n int) *inference.Engine {
	b.Helper()
	e, err := inference.New(
		inference.MustParseClause("anc(?x,?y) :- par(?x,?y)"),
		inference.MustParseClause("anc(?x,?z) :- par(?x,?y), anc(?y,?z)"),
	)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i+1 < n; i++ {
		e.AddFact(inference.Fact{Pred: "par", Subj: fmt.Sprintf("c%d", i), Obj: fmt.Sprintf("c%d", i+1)})
	}
	return e
}

func BenchmarkInferenceSemiNaive(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := ancestorEngine(b, 100)
		b.StartTimer()
		e.Run()
	}
}

func BenchmarkInferenceNaive(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := ancestorEngine(b, 100)
		b.StartTimer()
		e.RunNaive()
	}
}

// --- E10: incremental arrival (one step of the chain) ---

func BenchmarkIncrementalArrival(b *testing.B) {
	// One arrival: articulate the existing articulation ontology with a
	// new source through cascaded core rules.
	core := workload.Generate(workload.Spec{Name: "core", Classes: 80, AttrsPerClass: 0.3, Seed: 101})
	shared := core.Terms()[:20]
	left := ontology.New("hub")
	for _, t := range shared {
		left.MustAddTerm(t)
	}
	src := ontology.New("arrival")
	set := rules.NewSet()
	for _, t := range shared {
		renamed := t + "X"
		src.MustAddTerm(renamed)
		set.Add(rules.Chain(
			rules.NewStep(rules.Single, ontology.MakeRef("hub", t)),
			rules.NewStep(rules.Single, ontology.MakeRef("next", t)),
			rules.NewStep(rules.Single, ontology.MakeRef("arrival", renamed)),
		))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := articulation.Generate("next", left, src, set, articulation.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
