// Maintenance: difference-driven change management (§5.3).
//
// "The difference provides us the portions of the knowledge bases that can
// be independently manipulated without having to update any articulation."
// This example shows the full maintenance loop: assess which source
// changes are free, apply churn, and regenerate the articulation only when
// the assessment demands it.
//
//	go run ./examples/maintenance
package main

import (
	"fmt"
	"log"

	onion "repro"
)

func main() {
	sys := onion.NewSystem()

	library := onion.NewOntology("library")
	for _, t := range []string{"Publication", "Book", "Journal", "Author", "Title", "Shelf", "Basement"} {
		library.MustAddTerm(t)
	}
	library.MustRelate("Book", onion.SubclassOf, "Publication")
	library.MustRelate("Journal", onion.SubclassOf, "Publication")
	library.MustRelate("Publication", onion.AttributeOf, "Title")
	library.MustRelate("Book", "writtenBy", "Author")
	library.MustRelate("Book", "storedOn", "Shelf")
	library.MustRelate("Shelf", "locatedIn", "Basement")

	press := onion.NewOntology("press")
	for _, t := range []string{"Work", "Monograph", "Periodical", "Creator", "Name"} {
		press.MustAddTerm(t)
	}
	press.MustRelate("Monograph", onion.SubclassOf, "Work")
	press.MustRelate("Periodical", onion.SubclassOf, "Work")
	press.MustRelate("Work", onion.AttributeOf, "Name")
	press.MustRelate("Monograph", "createdBy", "Creator")

	must(sys.Register(library))
	must(sys.Register(press))

	set, err := onion.ParseRules(`
library.Book => press.Monograph
library.Journal => press.Periodical
library.Publication => press.Work
library.Author => press.Creator
library.Title => press.Name
`)
	must(err)
	res, err := sys.Articulate("catalog", "library", "press", set, onion.GenerateOptions{InheritStructure: true})
	must(err)
	fmt.Println("=== catalog articulation ===")
	fmt.Print(res.Art)
	fmt.Println()

	// The difference tells the library maintainer what is theirs alone.
	diff, err := sys.Difference("catalog", false, onion.DiffFormal)
	must(err)
	fmt.Printf("library - press (free to change): %v\n\n", diff.Terms())

	// Change 1: reorganising shelving. Entirely inside the difference.
	impact, err := sys.AssessChange("catalog", "library", []string{"Shelf", "Basement"})
	must(err)
	fmt.Printf("change {Shelf, Basement}: needs articulation update? %v\n", impact.NeedsUpdate())
	library.MustAddTerm("Attic")
	library.MustRelate("Shelf", "locatedIn", "Attic")
	library.Unrelate("Shelf", "locatedIn", "Basement")
	library.RemoveTerm("Basement")
	fmt.Println("  applied shelving reorganisation; articulation untouched")

	// The articulation is still valid against the mutated source.
	must(sys.Validate())
	fmt.Println("  system validates without regeneration ✔")
	fmt.Println()

	// Change 2: the library renames Author — inside the coverage.
	impact, err = sys.AssessChange("catalog", "library", []string{"Author"})
	must(err)
	fmt.Printf("change {Author}: needs articulation update? %v (affected: %v)\n",
		impact.NeedsUpdate(), impact.Affected)
	library.RemoveTerm("Author")
	library.MustAddTerm("Writer")
	library.MustRelate("Book", "writtenBy", "Writer")

	// Regeneration is lenient: the stale rule is skipped and reported so
	// the expert can supply its replacement.
	res2, err := sys.Regenerate("catalog", onion.GenerateOptions{InheritStructure: true})
	must(err)
	fmt.Printf("  regenerated; %d stale rule(s) skipped:\n", len(res2.Skipped))
	for _, sk := range res2.Skipped {
		fmt.Printf("    %s (%s)\n", sk.Rule, sk.Reason)
	}

	// The expert repairs the rule set: drop the stale rules, add the
	// replacement for the renamed term.
	stale := make(map[string]bool, len(res2.Skipped))
	for _, sk := range res2.Skipped {
		stale[sk.Rule] = true
	}
	repaired := onion.NewRuleSet()
	for _, r := range res2.Art.Rules.Rules {
		if !stale[r.String()] {
			repaired.Add(r)
		}
	}
	rule, err := onion.ParseRule("library.Writer => press.Creator")
	must(err)
	repaired.Add(rule)
	sys.Drop("catalog")
	res3, err := sys.Articulate("catalog", "library", "press", repaired, onion.GenerateOptions{InheritStructure: true})
	must(err)
	fmt.Printf("  repaired articulation covers: library=%v press=%v\n",
		res3.Art.Covers("library"), res3.Art.Covers("press"))
	must(sys.Validate())
	fmt.Println("  system validates after repair ✔")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
