// Transportation: the paper's full running example (EDBT 2000, Fig. 2).
//
// Two autonomous sources — a carrier and a factory — are articulated into
// a transport articulation ontology using every rule form of §4.1: simple
// and cascaded implications, a conjunction (CargoCarrierVehicle), a
// disjunction (CarsTrucks), intra-articulation structuring, and two-way
// currency conversion functions. Queries then cross the semantic gap,
// with prices normalised to euros.
//
//	go run ./examples/transportation
package main

import (
	"fmt"
	"log"
	"os"

	onion "repro"
)

func main() {
	sys := onion.NewSystem()
	must(sys.Register(buildCarrier()))
	must(sys.Register(buildFactory()))
	must(sys.RegisterKB(buildCarrierKB()))
	must(sys.RegisterKB(buildFactoryKB()))

	funcs := onion.NewFuncRegistry()
	must(funcs.RegisterLinear("PSToEuroFn", "EuroToPSFn", 1/0.625, 0))   // GBP ↔ EUR
	must(funcs.RegisterLinear("DGToEuroFn", "EuroToDGFn", 1/2.20371, 0)) // NLG ↔ EUR (fixed rate)

	set, err := onion.ParseRules(`
# Fig. 2 articulation rules
carrier.Transportation => factory.Transportation
carrier.Cars => factory.Vehicle
carrier.PassengerCar => transport.PassengerCar => factory.Vehicle
(factory.CargoCarrier ^ factory.Vehicle) => carrier.Trucks
factory.Vehicle => (carrier.Cars v carrier.Trucks)
carrier.Person => factory.Person
carrier.Owner => transport.Owner
transport.Owner => transport.Person
carrier.Person => transport.Person
PSToEuroFn() : carrier.Price => transport.Price
EuroToPSFn() : transport.Price => carrier.Price
DGToEuroFn() : factory.Price => transport.Price
EuroToDGFn() : transport.Price => factory.Price
`)
	must(err)

	res, err := sys.Articulate("transport", "carrier", "factory", set, onion.GenerateOptions{
		Funcs:            funcs,
		InheritStructure: true,
	})
	must(err)

	fmt.Println("=== transport articulation (Fig. 2) ===")
	fmt.Print(res.Art)
	fmt.Println()

	queries := []struct {
		title string
		text  string
	}{
		{"all vehicles across both sources", "SELECT ?x WHERE ?x InstanceOf Vehicle"},
		{"vehicle prices, normalised to euros", "SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p"},
		{"who owns what (string attributes)", `SELECT ?x ?o WHERE ?x Owner ?o`},
		{"articulation-level structure", "SELECT ?x WHERE ?x SubclassOf transport.Person"},
	}
	for _, q := range queries {
		out, err := sys.Query("transport", q.text)
		must(err)
		fmt.Printf("=== %s ===\n  %s\n", q.title, q.text)
		for _, row := range out.Rows {
			fmt.Print("  ")
			for i, v := range row {
				if i > 0 {
					fmt.Print("\t")
				}
				fmt.Print(v.Format())
			}
			fmt.Println()
		}
		fmt.Println()
	}

	// The union ontology as Graphviz, for the viewer-minded.
	u, err := sys.Union("transport")
	must(err)
	fmt.Println("=== union ontology (DOT, first lines) ===")
	dot := u.Ont.Graph().DOT()
	for i, line := range splitLines(dot, 8) {
		fmt.Printf("  %s\n", line)
		if i == 7 {
			fmt.Println("  ...")
		}
	}

	// Differences drive maintenance decisions (§5.3).
	diff, err := sys.Difference("transport", false, onion.DiffFormal)
	must(err)
	fmt.Printf("\n=== carrier - factory (changes here never touch the articulation) ===\n")
	fmt.Printf("  %v\n", diff.Terms())
	if len(os.Args) > 1 && os.Args[1] == "-dot" {
		fmt.Println(dot)
	}
}

func buildCarrier() *onion.Ontology {
	o := onion.NewOntology("carrier")
	for _, t := range []string{
		"Transportation", "Cars", "Trucks", "PassengerCar", "SUV",
		"MyCar", "Person", "Driver", "Owner", "Model", "Price", "2000",
	} {
		o.MustAddTerm(t)
	}
	for _, r := range [][3]string{
		{"Cars", onion.SubclassOf, "Transportation"},
		{"Trucks", onion.SubclassOf, "Transportation"},
		{"PassengerCar", onion.SubclassOf, "Cars"},
		{"SUV", onion.SubclassOf, "Cars"},
		{"Driver", onion.SubclassOf, "Person"},
		{"MyCar", onion.InstanceOf, "PassengerCar"},
		{"Cars", onion.AttributeOf, "Price"},
		{"Cars", onion.AttributeOf, "Owner"},
		{"Trucks", onion.AttributeOf, "Model"},
		{"Trucks", onion.AttributeOf, "Owner"},
		{"Cars", "drivenBy", "Driver"},
		{"MyCar", "Price", "2000"},
	} {
		o.MustRelate(r[0], r[1], r[2])
	}
	return o
}

func buildFactory() *onion.Ontology {
	o := onion.NewOntology("factory")
	for _, t := range []string{
		"Transportation", "Vehicle", "CargoCarrier", "GoodsVehicle", "Truck",
		"Factory", "Person", "Buyer", "Price", "Weight",
	} {
		o.MustAddTerm(t)
	}
	for _, r := range [][3]string{
		{"Vehicle", onion.SubclassOf, "Transportation"},
		{"CargoCarrier", onion.SubclassOf, "Transportation"},
		{"GoodsVehicle", onion.SubclassOf, "Vehicle"},
		{"GoodsVehicle", onion.SubclassOf, "CargoCarrier"},
		{"Truck", onion.SubclassOf, "GoodsVehicle"},
		{"Buyer", onion.SubclassOf, "Person"},
		{"Vehicle", onion.AttributeOf, "Price"},
		{"Vehicle", onion.AttributeOf, "Weight"},
		{"Factory", "sells", "Vehicle"},
		{"Buyer", "buysFrom", "Factory"},
	} {
		o.MustRelate(r[0], r[1], r[2])
	}
	return o
}

func buildCarrierKB() *onion.KB {
	s := onion.NewKB("carrier")
	s.MustAdd("MyCar", "InstanceOf", onion.Term("PassengerCar"))
	s.MustAdd("MyCar", "Price", onion.Num(2000)) // pounds sterling
	s.MustAdd("MyCar", "Owner", onion.Str("Alice"))
	s.MustAdd("Suv9", "InstanceOf", onion.Term("SUV"))
	s.MustAdd("Suv9", "Price", onion.Num(5000))
	s.MustAdd("Suv9", "Owner", onion.Str("Bob"))
	s.MustAdd("Rig1", "InstanceOf", onion.Term("Trucks"))
	s.MustAdd("Rig1", "Price", onion.Num(12500))
	return s
}

func buildFactoryKB() *onion.KB {
	s := onion.NewKB("factory")
	s.MustAdd("Truck77", "InstanceOf", onion.Term("Truck"))
	s.MustAdd("Truck77", "Price", onion.Num(44074.2)) // guilders = 20000 EUR
	s.MustAdd("Wagon3", "InstanceOf", onion.Term("GoodsVehicle"))
	s.MustAdd("Wagon3", "Price", onion.Num(22037.1)) // guilders = 10000 EUR
	s.MustAdd("BuyerCo", "InstanceOf", onion.Term("Buyer"))
	return s
}

func splitLines(s string, max int) []string {
	var out []string
	start := 0
	for i := 0; i < len(s) && len(out) < max; i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
