// Federation: scalable multi-source composition (§4.2, §5.2).
//
// Three autonomous sources join a federation one at a time. Instead of
// re-merging everything whenever a source arrives — the global-schema
// approach the paper argues against — each new source is articulated
// against the EXISTING articulation ontology: "the articulation ontology
// of two ontologies can be composed with another source ontology to
// create a second articulation that spans over all three source
// ontologies ... with the addition of new sources, we do not need to
// restructure existing ontologies or articulations."
//
// SKAT proposes the rules for each step; a threshold expert confirms.
//
//	go run ./examples/federation
package main

import (
	"fmt"
	"log"

	onion "repro"
)

func main() {
	sys := onion.NewSystem()

	// Source 1: a European haulage operator.
	haulage := onion.NewOntology("haulage")
	for _, t := range []string{"Transport", "Truck", "Trailer", "Driver", "Route", "Price"} {
		haulage.MustAddTerm(t)
	}
	haulage.MustRelate("Truck", onion.SubclassOf, "Transport")
	haulage.MustRelate("Trailer", onion.SubclassOf, "Transport")
	haulage.MustRelate("Truck", onion.AttributeOf, "Price")
	haulage.MustRelate("Truck", "drivenBy", "Driver")
	haulage.MustRelate("Truck", "assignedTo", "Route")

	// Source 2: a vehicle manufacturer.
	maker := onion.NewOntology("maker")
	for _, t := range []string{"Product", "Vehicle", "Lorry", "Van", "Cost", "Plant"} {
		maker.MustAddTerm(t)
	}
	maker.MustRelate("Vehicle", onion.SubclassOf, "Product")
	maker.MustRelate("Lorry", onion.SubclassOf, "Vehicle")
	maker.MustRelate("Van", onion.SubclassOf, "Vehicle")
	maker.MustRelate("Vehicle", onion.AttributeOf, "Cost")
	maker.MustRelate("Plant", "builds", "Vehicle")

	// Source 3: an insurer, arriving later.
	insurer := onion.NewOntology("insurer")
	for _, t := range []string{"Asset", "MotorVehicle", "Policy", "Premium", "Holder"} {
		insurer.MustAddTerm(t)
	}
	insurer.MustRelate("MotorVehicle", onion.SubclassOf, "Asset")
	insurer.MustRelate("Policy", "covers", "MotorVehicle")
	insurer.MustRelate("Policy", onion.AttributeOf, "Premium")
	insurer.MustRelate("Policy", "heldBy", "Holder")

	must(sys.Register(haulage))
	must(sys.Register(maker))
	must(sys.Register(insurer))

	// Step 1: articulate haulage × maker. SKAT proposes, an expert who
	// trusts high scores confirms, and the accepted rules generate the
	// articulation "logistics".
	fmt.Println("=== step 1: haulage x maker ===")
	set1, stats1, err := sys.RunSession("haulage", "maker", onion.SKATConfig{
		MinScore:         0.55,
		StructuralRounds: 2,
	}, onion.ThresholdExpert{AcceptAt: 0.65, MaxRounds: 2})
	must(err)
	fmt.Printf("SKAT: %d suggested, %d accepted, %d rejected in %d round(s)\n",
		stats1.Suggested, stats1.Accepted, stats1.Rejected, stats1.Rounds)
	fmt.Print(set1)

	res1, err := sys.Articulate("logistics", "haulage", "maker", set1, onion.GenerateOptions{
		InheritStructure: true,
	})
	must(err)
	fmt.Printf("articulation logistics: %d terms, %d bridges\n\n",
		res1.Art.Ont.NumTerms(), len(res1.Art.Bridges))

	// Step 2: the insurer joins — articulated against the EXISTING
	// articulation ontology, not against each source separately.
	fmt.Println("=== step 2: logistics x insurer ===")
	set2, stats2, err := sys.RunSession("logistics", "insurer", onion.SKATConfig{
		MinScore:         0.5,
		StructuralRounds: 2,
	}, onion.ThresholdExpert{AcceptAt: 0.6, MaxRounds: 2})
	must(err)
	// The expert also supplies one rule SKAT cannot know: lorries are
	// insurable assets.
	extra, err := onion.ParseRule("logistics.Lorry => insurer.Asset")
	must(err)
	set2.Add(extra)
	fmt.Printf("SKAT: %d suggested, %d accepted in %d round(s); 1 expert rule added\n",
		stats2.Suggested, stats2.Accepted, stats2.Rounds)
	fmt.Print(set2)

	res2, err := sys.Articulate("federation", "logistics", "insurer", set2, onion.GenerateOptions{
		InheritStructure: true,
	})
	must(err)
	fmt.Printf("articulation federation: %d terms, %d bridges\n\n",
		res2.Art.Ont.NumTerms(), len(res2.Art.Bridges))

	// The federation spans all three sources: reachability crosses two
	// articulation layers.
	u, err := sys.Union("federation")
	must(err)
	fmt.Println("=== union over the full federation ===")
	fmt.Printf("terms: %d, relationships: %d, components: %d\n",
		u.Ont.NumTerms(), u.Ont.NumRelationships(),
		len(u.Ont.Graph().ConnectedComponents()))

	// What part of the insurer remains untouched by the federation?
	diff, err := sys.Difference("federation", true, onion.DiffFormal)
	must(err)
	fmt.Printf("insurer - federation (free to change): %v\n", diff.Terms())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
