// Quickstart: build two small ontologies, articulate them with three
// rules, and query across the articulation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	onion "repro"
)

func main() {
	// 1. Two independently maintained source ontologies.
	shop := onion.NewOntology("shop")
	for _, term := range []string{"Product", "Bike", "EBike", "Price"} {
		shop.MustAddTerm(term)
	}
	shop.MustRelate("Bike", onion.SubclassOf, "Product")
	shop.MustRelate("EBike", onion.SubclassOf, "Bike")
	shop.MustRelate("Product", onion.AttributeOf, "Price")

	depot := onion.NewOntology("depot")
	for _, term := range []string{"Item", "Bicycle", "Cost"} {
		depot.MustAddTerm(term)
	}
	depot.MustRelate("Bicycle", onion.SubclassOf, "Item")
	depot.MustRelate("Item", onion.AttributeOf, "Cost")

	sys := onion.NewSystem()
	must(sys.Register(shop))
	must(sys.Register(depot))

	// 2. Instance data beneath each source.
	shopKB := onion.NewKB("shop")
	shopKB.MustAdd("SpeedsterX", "InstanceOf", onion.Term("EBike"))
	shopKB.MustAdd("SpeedsterX", "Price", onion.Num(1200))
	must(sys.RegisterKB(shopKB))

	depotKB := onion.NewKB("depot")
	depotKB.MustAdd("Clunker7", "InstanceOf", onion.Term("Bicycle"))
	depotKB.MustAdd("Clunker7", "Cost", onion.Num(80))
	must(sys.RegisterKB(depotKB))

	// 3. Articulation rules bridging the two vocabularies. The cascaded
	// rule routes both terms through the articulation term "Bike"; the
	// attribute terms are linked so queries reach both price fields.
	rules, err := onion.ParseRules(`
shop.Bike => trade.Bike => depot.Bicycle
shop.Product => depot.Item
shop.Price => depot.Cost
`)
	must(err)

	res, err := sys.Articulate("trade", "shop", "depot", rules, onion.GenerateOptions{
		InheritStructure: true,
	})
	must(err)

	fmt.Println("=== articulation ===")
	fmt.Print(res.Art)

	// 4. One query over both sources, phrased in articulation terms.
	out, err := sys.Query("trade", "SELECT ?x WHERE ?x InstanceOf Bike")
	must(err)
	fmt.Println("=== bikes everywhere ===")
	for _, row := range out.Rows {
		fmt.Printf("  %s\n", row[0].Format())
	}

	// 5. The algebra composes: intersection is itself an ontology.
	inter, err := sys.Intersection("trade")
	must(err)
	fmt.Println("=== intersection (articulation ontology) ===")
	fmt.Print(inter)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
