// Patterns: the paper's graph-pattern machinery end to end (§3, §4.1).
//
// Shows the textual pattern notation (carrier:car:driver and
// truck(O:owner,model)), fuzzy matching, the unary algebra operators
// filter and extract, pattern-based articulation rules, patterns as
// queries, and the tree viewer.
//
//	go run ./examples/patterns
package main

import (
	"fmt"
	"log"

	onion "repro"
)

func main() {
	fleet := buildFleet()

	// 1. The paper's path notation: fleet:?x:Driver — "a node with an
	// outgoing edge to the node Driver".
	p1, err := onion.ParsePattern("fleet:?x:Driver")
	must(err)
	ms, err := onion.FindPattern(fleet.Graph(), p1, onion.PatternOptions{})
	must(err)
	fmt.Println("=== fleet:?x:Driver matches ===")
	for _, m := range ms {
		fmt.Printf("  ?x = %s\n", fleet.TermLabel(m.Bindings["x"]))
	}

	// 2. The attribute notation: Truck(O:Owner, Model) with a variable
	// capturing the owner.
	p2, err := onion.ParsePattern("Truck(O:Owner, Model)")
	must(err)
	ms, err = onion.FindPattern(fleet.Graph(), p2, onion.PatternOptions{})
	must(err)
	fmt.Printf("\n=== Truck(O:Owner, Model): %d match(es) ===\n", len(ms))

	// 3. Fuzzy matching: the expert relaxes node equality with synonyms
	// from the lexicon (§3: "the expert can indicate a set of synonyms").
	lex := onion.DefaultLexicon()
	fuzzy := onion.PatternOptions{
		NodeEquiv: func(want, got string) bool {
			return want == got || lex.AreSynonyms(want, got)
		},
	}
	p3, err := onion.ParsePattern("Lorry") // matches Truck via the lexicon
	must(err)
	ms, err = onion.FindPattern(fleet.Graph(), p3, fuzzy)
	must(err)
	fmt.Printf("\n=== fuzzy 'Lorry' matches %d node(s) (truck/lorry are synonyms) ===\n", len(ms))

	// 4. Unary algebra: extract the ownership structure only.
	owners, err := onion.Extract(fleet, p2, onion.PatternOptions{})
	must(err)
	fmt.Println("\n=== extract(Truck(O:Owner, Model)) ===")
	fmt.Print(owners)

	// 5. Pattern-based articulation rules (§4.1's general form): every
	// fleet class with a Price attribute is a trade.PricedItem.
	market := onion.NewOntology("market")
	market.MustAddTerm("Listing")
	prs := []onion.PatternRule{patternRule()}
	res, err := onion.GenerateWithPatterns("trade", fleet, market, nil, prs, onion.GenerateOptions{})
	must(err)
	fmt.Println("\n=== pattern rule: ?x with Price => trade.PricedItem ===")
	for _, b := range res.Art.Bridges {
		fmt.Printf("  %s\n", b)
	}

	// 6. Patterns as queries (§2.3): execute the driver pattern across an
	// articulation with instance data.
	fmt.Println("\n=== the viewer's tree rendering ===")
	fmt.Print(onion.RenderTree(fleet, onion.DefaultViewOptions()))
}

// patternRule builds the §4.1 pattern rule: LHS is a pattern with a
// variable subject and a Price attribute edge; RHS is trade.PricedItem.
func patternRule() onion.PatternRule {
	p := &onion.Pattern{Ont: "fleet"}
	x := p.AddNode(onion.PatternNode{Var: "x"})
	price := p.AddNode(onion.PatternNode{Name: "Price"})
	p.AddEdge(x, onion.AttributeOf, price)
	return onion.PatternRule{
		LHS:     p,
		Subject: "x",
		RHS:     onion.MakeRef("trade", "PricedItem"),
	}
}

func buildFleet() *onion.Ontology {
	o := onion.NewOntology("fleet")
	for _, t := range []string{"Vehicle", "Truck", "Van", "Driver", "Owner", "Model", "Price"} {
		o.MustAddTerm(t)
	}
	o.MustRelate("Truck", onion.SubclassOf, "Vehicle")
	o.MustRelate("Van", onion.SubclassOf, "Vehicle")
	o.MustRelate("Truck", onion.AttributeOf, "Owner")
	o.MustRelate("Truck", onion.AttributeOf, "Model")
	o.MustRelate("Truck", onion.AttributeOf, "Price")
	o.MustRelate("Van", onion.AttributeOf, "Price")
	o.MustRelate("Truck", "drivenBy", "Driver")
	o.MustRelate("Van", "drivenBy", "Driver")
	return o
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
