package query

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"slices"
	"strings"

	"repro/internal/kb"
	"repro/internal/query/mem"
)

// This file makes the last stage's streaming projection (stageProj,
// pipeline.go) spillable under Options{MemoryLimit}. The projection's
// dedup set is the one retention the memory-governed pipeline could not
// previously trade for disk: a query whose *distinct answer set* alone
// exceeded the cap blew past it via MustReserve. Now the set reserves
// from the shared spillable pool in chunk-sized grants; when a grant is
// refused the buffered rows rotate to a sorted temp-file run — the row
// key doubles as the record (it IS the row's full encoding, decodable
// cell by cell) — and finish() merge-dedups the sorted runs with the
// sorted in-memory remainder back into the partition's deterministic
// row order. Rows that reach the caller are charged to the root as
// before (they are the answer); only the transient dedup state spills.
//
// A duplicate row can land in two runs (the dedup map forgets spilled
// keys), but a duplicated key always carries a cell-identical row —
// the key is the row's encoding — so the merge's first-wins dedup
// yields exactly the rows an unbounded run yields, byte-identical.

const (
	// projChunkBytes is the granularity of the projection's spillable
	// reservations: row charges consume grant headroom, so the pool sees
	// one Reserve per chunk instead of one per distinct row.
	projChunkBytes = 16 << 10
	// projRotateMinBytes is the smallest buffered set worth a sorted
	// run. Below it a refused grant holds the rows anyway (MustReserve)
	// — a bounded overshoot, at most this many bytes per last-stage
	// partition (cf. minChunkTuples) — so a crowded pool cannot explode
	// the projection into per-row runs.
	projRotateMinBytes = 64 << 10
)

// projRowCost is the accounted retention of one distinct projected row:
// its key string (map entry + keyedRow copy), the keyedRow header and
// the row's value cells.
func projRowCost(key string, selN int) int64 {
	return 2*int64(len(key)) + 24 + int64(selN)*valueBytes
}

// projRun is one sorted temp-file run of projected-row keys. Records
// are uvarint-length-prefixed key bytes, written in ascending key order;
// like spillRun the file is unlinked at creation and the write buffer is
// charged to the root as fixed working state.
type projRun struct {
	f      *os.File
	w      *bufio.Writer
	bud    *mem.Budget
	keys   int
	closed bool
}

func newProjRun(dir string, bud *mem.Budget) (*projRun, error) {
	f, err := os.CreateTemp(dir, "onion-proj-*")
	if err != nil {
		return nil, fmt.Errorf("query: projection spill: %w", err)
	}
	os.Remove(f.Name())
	bud.MustReserve(spillBufBytes)
	return &projRun{f: f, w: bufio.NewWriterSize(f, spillBufBytes), bud: bud}, nil
}

// add appends one key record, returning the bytes written
// (Stats.SpilledBytes).
func (r *projRun) add(key string) (int64, error) {
	var lenb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenb[:], uint64(len(key)))
	if _, err := r.w.Write(lenb[:n]); err != nil {
		return 0, fmt.Errorf("query: projection spill write: %w", err)
	}
	if _, err := r.w.WriteString(key); err != nil {
		return 0, fmt.Errorf("query: projection spill write: %w", err)
	}
	r.keys++
	return int64(n + len(key)), nil
}

// reader flushes the run and opens a sequential reader at its start.
func (r *projRun) reader() (*projReader, error) {
	if err := r.w.Flush(); err != nil {
		return nil, fmt.Errorf("query: projection spill flush: %w", err)
	}
	if _, err := r.f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("query: projection spill seek: %w", err)
	}
	return &projReader{br: bufio.NewReaderSize(r.f, spillBufBytes), remaining: r.keys}, nil
}

// close releases the run's fd and its accounted write buffer
// (idempotent, like spillRun.close).
func (r *projRun) close() {
	if r == nil || r.closed {
		return
	}
	r.closed = true
	r.f.Close()
	r.bud.Release(spillBufBytes)
}

// projReader streams a run's keys back in (sorted) write order. The
// returned bytes are valid until the next call.
type projReader struct {
	br        *bufio.Reader
	remaining int
	buf       []byte
}

func (pr *projReader) next() ([]byte, bool, error) {
	if pr.remaining == 0 {
		return nil, false, nil
	}
	pr.remaining--
	n, err := binary.ReadUvarint(pr.br)
	if err != nil {
		return nil, false, fmt.Errorf("query: projection spill read: %w", err)
	}
	if uint64(cap(pr.buf)) < n {
		pr.buf = make([]byte, n)
	}
	key := pr.buf[:n]
	if _, err := io.ReadFull(pr.br, key); err != nil {
		return nil, false, fmt.Errorf("query: projection spill read: %w", err)
	}
	return key, true, nil
}

// ensure charges one distinct row's retention. Without a spill pool
// (unbounded executions) this is the historical root MustReserve; with
// one, charges consume chunk-granted headroom, a refused grant rotates
// the buffered set to a sorted run, and a pool exhausted by sibling
// partitions degrades to the bounded projRotateMinBytes overshoot.
func (pp *stageProj) ensure(n int64) {
	if pp.spill == nil {
		pp.bud.MustReserve(n)
		return
	}
	if pp.err != nil {
		return
	}
	if pp.headroom >= n {
		pp.headroom -= n
		return
	}
	need := int64(projChunkBytes)
	if n > need {
		need = n
	}
	if pp.spill.Reserve(need) {
		pp.charged += need
		pp.headroom += need - n
		return
	}
	if pp.charged+n >= projRotateMinBytes {
		pp.rotate()
		if pp.err != nil {
			return
		}
		if pp.spill.Reserve(need) {
			pp.charged += need
			pp.headroom += need - n
			return
		}
	}
	// Pool exhausted with too little buffered to trade for disk: hold
	// the row anyway — bounded overshoot, the projection always makes
	// progress.
	pp.spill.MustReserve(n)
	pp.charged += n
}

// rotate writes the buffered dedup set to a sorted run and resets it,
// releasing its pool reservation. The dedup map forgets the spilled
// keys; the merge at finish() re-drops any re-projected duplicates.
func (pp *stageProj) rotate() {
	slices.SortFunc(pp.rows, func(a, b keyedRow) int { return strings.Compare(a.key, b.key) })
	r, err := newProjRun(pp.dir, pp.bud)
	if err != nil {
		pp.err = err
		return
	}
	pp.runs = append(pp.runs, r)
	pp.spilled = true
	for i := range pp.rows {
		n, err := r.add(pp.rows[i].key)
		if err != nil {
			pp.err = err
			break
		}
		pp.bytes += n
	}
	clear(pp.keys)
	pp.rows = pp.rows[:0]
	pp.spill.Release(pp.charged)
	pp.charged, pp.headroom = 0, 0
}

// finish returns the partition's deduplicated rows in ascending key
// order, merging any spilled runs back. The returned rows' retention is
// charged to the root either way — they are the answer; only the dedup
// state was spillable.
func (pp *stageProj) finish() ([]keyedRow, error) {
	clear(pp.keys)
	projKeysPool.Put(pp.keys)
	pp.keys = nil
	if pp.err != nil {
		pp.cleanup()
		return nil, pp.err
	}
	// Keys are unique within the buffered set (deduped on add), so the
	// unstable slices sort is deterministic and avoids sort.Slice's
	// reflection swaps on the hot final stage.
	slices.SortFunc(pp.rows, func(a, b keyedRow) int { return strings.Compare(a.key, b.key) })
	if pp.spill == nil {
		return pp.rows, nil
	}
	// Hand the retention from the spillable pool back before charging
	// the root for the final rows, so the two never stack in the peak.
	pp.spill.Release(pp.charged)
	pp.charged, pp.headroom = 0, 0
	if len(pp.runs) == 0 {
		for i := range pp.rows {
			pp.bud.MustReserve(projRowCost(pp.rows[i].key, len(pp.sel)))
		}
		return pp.rows, nil
	}
	rows, err := pp.mergeRuns()
	pp.cleanup()
	return rows, err
}

// cleanup closes any runs and drops remaining pool reservations (the
// error path's sweep; the success path released them in finish).
func (pp *stageProj) cleanup() {
	for _, r := range pp.runs {
		r.close()
	}
	pp.spill.Release(pp.charged)
	pp.charged, pp.headroom = 0, 0
}

// decodeProjKey reconstructs a projected row from its key — the key is
// appendValueKey over the SELECT cells, so it decodes cell by cell.
func decodeProjKey(key []byte, selN int) ([]kb.Value, error) {
	//lint:onion-ignore the caller (mergeRuns) charges projRowCost to the root for every merged row it retains; decode itself holds nothing past return
	row := make([]kb.Value, selN)
	body := key
	for k := 0; k < selN; k++ {
		v, consumed, err := decodeValueKey(body)
		if err != nil {
			return nil, fmt.Errorf("query: projection spill cell %d: %w", k, err)
		}
		row[k] = v
		body = body[consumed:]
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("query: projection spill record has %d trailing bytes", len(body))
	}
	return row, nil
}

// cmpKeyBytes compares a run head against a string key without
// materialising either.
func cmpKeyBytes(b []byte, s string) int {
	n := min(len(b), len(s))
	for i := 0; i < n; i++ {
		if b[i] != s[i] {
			if b[i] < s[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(b) < len(s):
		return -1
	case len(b) > len(s):
		return 1
	}
	return 0
}

// mergeRuns merge-dedups the sorted runs with the sorted in-memory
// remainder (pp.rows): a linear head scan — run counts are small, one
// per rotation — emitting each distinct key once, decoding spilled rows
// from their keys and charging every surviving row to the root.
func (pp *stageProj) mergeRuns() ([]keyedRow, error) {
	readers := make([]*projReader, len(pp.runs))
	heads := make([][]byte, len(pp.runs))
	for i, r := range pp.runs {
		pr, err := r.reader()
		if err != nil {
			return nil, err
		}
		readers[i] = pr
		if heads[i], _, err = pr.next(); err != nil {
			return nil, err
		}
	}
	var out []keyedRow
	ri := 0 // next in-memory remainder row
	lastKey, have := "", false
	for {
		best := -1 // run with the smallest head
		for i, h := range heads {
			if h == nil {
				continue
			}
			if best == -1 || bytes.Compare(h, heads[best]) < 0 {
				best = i
			}
		}
		fromRem := best == -1 ||
			(ri < len(pp.rows) && cmpKeyBytes(heads[best], pp.rows[ri].key) >= 0)
		if best == -1 && ri >= len(pp.rows) {
			return out, nil
		}
		if fromRem {
			kr := pp.rows[ri]
			ri++
			if have && kr.key == lastKey {
				continue
			}
			lastKey, have = kr.key, true
			pp.bud.MustReserve(projRowCost(kr.key, len(pp.sel)))
			out = append(out, kr)
			continue
		}
		h := heads[best]
		var err error
		if have && string(h) == lastKey {
			if heads[best], _, err = readers[best].next(); err != nil {
				return nil, err
			}
			continue
		}
		key := string(h)
		row, err := decodeProjKey(h, len(pp.sel))
		if err != nil {
			return nil, err
		}
		if heads[best], _, err = readers[best].next(); err != nil {
			return nil, err
		}
		lastKey, have = key, true
		pp.bud.MustReserve(projRowCost(key, len(pp.sel)))
		out = append(out, keyedRow{key, row})
	}
}
