//go:build !race

package query

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
