package query

import (
	"context"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/query/mem"
)

// This file is the slot-based tuple executor: the default planned
// execution path. The compiled plan assigns every query variable a fixed
// slot (plan.go), scans emit flat []kb.Value tuples, and joins key on the
// precomputed slot lists — no shared-variable re-derivation over row
// sets, no formatted string keys, no per-row map copies. When the worker
// pool is larger than one, each keyed join is hash-partitioned across the
// pool and scan output streams into the probe workers in batches, so
// probing starts while slower sources are still scanning.

// tuple is one execution row: a fixed-width value vector indexed by plan
// slot. Slots not yet bound after the current step hold the zero Value
// and are never read — which slots are bound is a plan-level property,
// uniform across all tuples at a given step, so tuples carry no
// per-row bound mask.
type tuple []kb.Value

// arenaBlock is how many tuples a tupleArena carves from one allocation;
// budgetedArenaBlock is the smaller block used under Options{MemoryLimit}
// so the fixed (non-spillable) working set stays well below the cap.
const (
	arenaBlock         = 256
	budgetedArenaBlock = 16
)

// tupleArena hands out fixed-width tuples from shared blocks: one
// allocation per block of rows instead of one per row. An arena belongs
// to a single goroutine and a single step, so an abandoned next() (a
// repeated-variable rejection) can safely reuse its memory — the next
// row writes the same slot set before any slot is read.
type tupleArena struct {
	width int
	block []kb.Value
	// blockTuples overrides the tuples carved per allocation (0 =
	// arenaBlock).
	blockTuples int
	// bud, when non-nil, is charged for the arena's *current* block and
	// released when the block rotates or the arena closes. Handed-off
	// tuples' retention is the consumer's ledger (build tables, pending
	// probe queues, projection sets, spill runs), so the arena accounts
	// only the block it is still filling.
	bud     *mem.Budget
	charged int64
}

// newArena returns an arena charged to the execution budget; blocks
// shrink under a memory limit so the fixed working set stays small.
func newArena(width int, bud *mem.Budget) *tupleArena {
	bt := 0
	if bud.Limit() > 0 {
		bt = budgetedArenaBlock
	}
	return &tupleArena{width: width, blockTuples: bt, bud: bud}
}

// next returns the arena's pending tuple without committing it. All slots
// are zero except any written by a previously abandoned row, which are a
// subset of the slots the caller is about to write.
func (a *tupleArena) next() tuple {
	if len(a.block) < a.width {
		bt := a.blockTuples
		if bt == 0 {
			bt = arenaBlock
		}
		a.bud.Release(a.charged)
		a.charged = int64(a.width*bt) * valueBytes
		a.bud.MustReserve(a.charged)
		a.block = make([]kb.Value, a.width*bt)
	}
	return a.block[:a.width:a.width]
}

// commit finalises the pending tuple; the next next() returns fresh
// memory.
func (a *tupleArena) commit() { a.block = a.block[a.width:] }

// close releases the charge for the arena's current block.
func (a *tupleArena) close() {
	a.bud.Release(a.charged)
	a.charged = 0
}

// appendSlotKey appends a collision-free join-key encoding of the key
// slots to buf — appendValueKey (rowkey.go) per slot, the same encoding
// the projection dedups and sorts on. Like Value.Equal (and unlike
// Format), the encoding is kind-strict — Term("3000") and Number(3000)
// must not join — and the escape/terminator framing keeps payloads
// containing separator bytes unambiguous.
func appendSlotKey(buf []byte, tup tuple, slots []int) []byte {
	for _, s := range slots {
		buf = appendValueKey(buf, tup[s])
	}
	return buf
}

// hashKey is FNV-1a over the encoded join key; it keys the join hash
// tables and routes tuples to join partitions. Hash collisions are
// resolved by keySlotsEqual at probe time, so no per-row key string is
// ever materialised.
func hashKey(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// keySlotsEqual verifies a hash match: true when the two tuples agree on
// every key slot under the engine's join equality — sameCell, the
// equality appendValueKey encodes: kind-strict, string payloads
// byte-equal, and for numbers float bit equality with every NaN in one
// class (NaN joins NaN, and +0 does not join -0).
func keySlotsEqual(l, r tuple, slots []int) bool {
	for _, s := range slots {
		if !sameCell(l[s], r[s]) {
			return false
		}
	}
	return true
}

// resolveWorkers turns the Workers option into a concrete pool size.
func resolveWorkers(opts Options) int {
	if opts.Workers > 0 {
		return opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// partsForBuild sizes the per-step path's hash-partition count from the
// accumulated frontier's actual cardinality — on this path the frontier
// *is* the build side (the pipeline sizes from the planner's scan
// estimate instead, because its build side is the step's own scan
// output). Never below the worker pool — a small-scan step of a
// wide-frontier chain must not serialise its probe workers — and at
// most 4x the pool, like the planner's hints.
func partsForBuild(buildRows int, opts Options, workers int) int {
	if opts.Partitions > 0 {
		return opts.Partitions
	}
	p := (buildRows + partitionRowTarget - 1) / partitionRowTarget
	if p < workers {
		p = workers
	}
	if lim := 4 * workers; p > lim {
		p = lim
	}
	return p
}

// executePlanned is the planned execution path: compiled (cached) plan,
// slot-tuple rows, per-source scans fanned out to a bounded worker pool,
// hash joins in selectivity order (partitioned across the pool when it
// has more than one worker), filters applied as soon as their variable is
// bound. Scans dispatch one step at a time, so an empty join
// short-circuits the remaining steps' scan work just like the sequential
// path. Options{CompatJoins} swaps in the retained PR 1 executor.
func (e *Engine) executePlanned(ctx context.Context, q Query, opts Options) (*Result, error) {
	var ps *obs.Span
	if opts.Trace != nil {
		ps = opts.Trace.Child("plan")
	}
	plan, hit := e.cachedPlan(q)
	if ps != nil {
		if hit {
			ps.SetAttr("cache", "hit")
		} else {
			ps.SetAttr("cache", "compiled")
		}
		ps.SetInt("steps", int64(len(plan.steps)))
		ps.SetInt("est_rows", int64(plan.totalEst))
		ps.End()
	}
	res := &Result{Vars: q.Select}
	st := &res.Stats
	st.PlanCacheHit = hit
	st.ReorderedTriples = plan.reordered
	st.Workers = 1
	st.accrue(plan.expand)
	var err error
	if opts.CompatJoins {
		err = e.executeCompat(ctx, q, plan, opts, res)
	} else {
		// The per-query memory budget: every tuple-executor component
		// charges it (arenas, build tables, pending probe queues,
		// projection sets, spill buffers), and under Options{MemoryLimit}
		// the pipelined joins degrade to grace-hash spills rather than
		// outgrow it.
		bud := mem.New(opts.MemoryLimit)
		err = e.executeTuples(ctx, q, plan, opts, bud, res)
		st.BytesReserved = bud.Peak()
	}
	if err != nil {
		return nil, err
	}
	recordQueryMetrics(st)
	return res, nil
}

// executeTuples runs the compiled plan on slot tuples. With more than
// one worker and a keyed join chain it hands off to the cross-step
// streaming pipeline (pipeline.go); otherwise — single worker, a single
// step, a disconnected cross product, or Options{StepBarriers} — it runs
// the per-step path, where each join step materialises its output before
// the next step's scans dispatch.
func (e *Engine) executeTuples(ctx context.Context, q Query, plan *execPlan, opts Options, bud *mem.Budget, res *Result) error {
	st := &res.Stats
	width := len(plan.slotNames)
	workers := resolveWorkers(opts)
	if plan.batches(opts, workers) {
		return e.executeBatched(ctx, q, plan, opts, bud, res)
	}
	if plan.pipelines(opts, workers) {
		return e.executePipelined(ctx, q, plan, opts, bud, res)
	}

	var rows []tuple
	bound := make(map[string]bool)
	applied := make([]bool, len(q.Filters))
	stepParts := make([]int, 0, len(plan.steps))
	st.StepRows = make([]int, 0, len(plan.steps))
	st.StepDurNs = make([]int64, 0, len(plan.steps))
	tr := opts.Trace
	// The per-step path materialises the frontier between steps by
	// construction; the budget accounts it (release the previous step's
	// frontier, charge the new one) but only the pipeline can spill.
	var frontierCharge int64
	defer func() { bud.Release(frontierCharge) }()
	chargeFrontier := func() {
		bud.Release(frontierCharge)
		frontierCharge = int64(len(rows)) * tupleCost(width)
		bud.MustReserve(frontierCharge)
	}
	for si := range plan.steps {
		if err := ctx.Err(); err != nil {
			return err
		}
		stp := &plan.steps[si]
		var span *obs.Span
		if tr != nil {
			span = tr.Child("step " + strconv.Itoa(si+1) + ": " + stp.triple.String())
			span.SetInt("est_rows", int64(stp.est))
		}
		stepT0 := time.Now()
		// Every (triple, source) pair counts as a source scan, skipped
		// or not, matching the sequential accounting.
		st.SourceScans += len(stp.scans)
		var tasks []int
		for j, sc := range stp.scans {
			if !sc.view.skip {
				tasks = append(tasks, j)
			}
		}
		switch {
		case si == 0:
			rows = e.gatherScans(ctx, stp, width, workers, tasks, bud, st, span)
			stepParts = append(stepParts, 0)
		case len(stp.keySlots) == 0:
			right := e.gatherScans(ctx, stp, width, workers, tasks, bud, st, span)
			rows = crossJoinTuples(rows, right, stp, width, bud)
			stepParts = append(stepParts, 0)
		case workers > 1 && len(tasks) > 0:
			parts := partsForBuild(len(rows), opts, workers)
			if opts.Partitions == 0 {
				st.AdaptivePartitions++
			}
			rows = e.joinStreamed(ctx, rows, stp, width, workers, parts, tasks, bud, st, span)
			stepParts = append(stepParts, parts)
		default:
			rows = e.joinInline(ctx, rows, stp, width, tasks, bud, st, span)
			stepParts = append(stepParts, 0)
		}
		for _, v := range stp.vars {
			bound[v] = true
		}
		rows = applyTupleFilters(rows, q.Filters, plan, applied, bound)
		chargeFrontier()
		st.StepRows = append(st.StepRows, len(rows))
		st.StepDurNs = append(st.StepDurNs, time.Since(stepT0).Nanoseconds())
		if span != nil {
			span.SetInt("rows", int64(len(rows)))
			span.End()
		}
		if len(rows) == 0 {
			break
		}
	}
	// A cancellation that landed mid-step left the frontier partial;
	// report the error rather than a truncated result.
	if err := ctx.Err(); err != nil {
		return err
	}
	if st.JoinPartitions > 0 {
		st.StepPartitions = stepParts
	}
	st.JoinedRows = len(rows)
	var span *obs.Span
	if tr != nil {
		span = tr.Child("project")
	}
	projectTuples(res, [][]tuple{rows}, q, plan, bud)
	if span != nil {
		span.SetInt("rows", int64(len(res.Rows)))
		span.End()
	}
	return nil
}

// runScanTasks executes the step's live scans — inline, or fanned out on
// a bounded worker pool — giving each task a private Stats merged in
// source order afterwards, so the counters are deterministic under any
// scheduling. A cancelled context stops dispatch between tasks (the
// per-request deadline hook); the caller detects the cancellation via
// ctx.Err() and discards the partial output. When sp is non-nil each
// scan records a child span under it (the scan fan-out in the trace).
func (e *Engine) runScanTasks(ctx context.Context, stp *planStep, tasks []int, workers int, st *Stats, sp *obs.Span, run func(j int, ts *Stats)) {
	if sp != nil {
		inner := run
		run = func(j int, ts *Stats) {
			c := sp.Child("scan " + stp.scans[j].name)
			inner(j, ts)
			c.SetInt("rows", int64(ts.EdgeRows+ts.FactRows))
			c.End()
		}
	}
	taskStats := make([]Stats, len(stp.scans))
	w := workers
	if w > len(tasks) {
		w = len(tasks)
	}
	if w <= 1 {
		for _, j := range tasks {
			if ctx.Err() != nil {
				break
			}
			run(j, &taskStats[j])
		}
	} else {
		if w > st.Workers {
			st.Workers = w
		}
		st.ParallelScans += len(tasks)
		jobs := make(chan int)
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range jobs {
					run(j, &taskStats[j])
				}
			}()
		}
		for _, j := range tasks {
			if ctx.Err() != nil {
				break
			}
			jobs <- j
		}
		close(jobs)
		wg.Wait()
	}
	for j := range stp.scans {
		st.accrue(taskStats[j])
	}
}

// tupleEmit adapts scanMatch's (s, p, o) callback into slot-tuple
// construction for one step: variable positions write their slot on
// first occurrence and enforce equality on repeats ("?x Likes ?x");
// constant positions were already matched by the scan view.
func tupleEmit(stp *planStep, arena *tupleArena, sink func(tuple)) func(s, p, o kb.Value) bool {
	return func(s, p, o kb.Value) bool {
		vals := [3]kb.Value{s, p, o}
		tup := arena.next()
		for i := 0; i < 3; i++ {
			sl := stp.spec[i]
			if sl < 0 {
				continue
			}
			if stp.firstPos[i] {
				tup[sl] = vals[i]
			} else if !tup[sl].Equal(vals[i]) {
				return false
			}
		}
		arena.commit()
		sink(tup)
		return true
	}
}

// gatherScans materialises one step's scan output as tuples (first step,
// and the rare disconnected cross-product step).
func (e *Engine) gatherScans(ctx context.Context, stp *planStep, width, workers int, tasks []int, bud *mem.Budget, st *Stats, sp *obs.Span) []tuple {
	results := make([][]tuple, len(stp.scans))
	e.runScanTasks(ctx, stp, tasks, workers, st, sp, func(j int, ts *Stats) {
		sc := stp.scans[j]
		arena := newArena(width, bud)
		defer arena.close()
		var out []tuple
		e.scanMatch(sc.name, sc.src, stp.triple, sc.view, ts, true,
			tupleEmit(stp, arena, func(t tuple) { out = append(out, t) }))
		results[j] = out
	})
	var all []tuple
	for _, r := range results {
		all = append(all, r...)
	}
	return all
}

// mergeTuple combines a left row with a right row from the current step:
// copy the accumulated slots, then overlay the step's newly bound ones.
func mergeTuple(arena *tupleArena, l, r tuple, newSlots []int) tuple {
	out := arena.next()
	copy(out, l)
	for _, s := range newSlots {
		out[s] = r[s]
	}
	arena.commit()
	return out
}

// crossJoinTuples merges every left tuple with every right tuple — the
// disconnected-query case with no shared slots.
func crossJoinTuples(left, right []tuple, stp *planStep, width int, bud *mem.Budget) []tuple {
	if len(left) == 0 || len(right) == 0 {
		return nil
	}
	arena := newArena(width, bud)
	defer arena.close()
	out := make([]tuple, 0, len(left)*len(right))
	for _, l := range left {
		for _, r := range right {
			out = append(out, mergeTuple(arena, l, r, stp.newSlots))
		}
	}
	return out
}

// joinInline hash-joins the accumulated rows with the step's scan output
// on the precomputed key slots, single-threaded: the left side is indexed
// once by key hash, then every scan-emitted tuple probes it immediately —
// the scan side is never materialised and no key string ever is (hash
// keys plus keySlotsEqual verification).
func (e *Engine) joinInline(ctx context.Context, left []tuple, stp *planStep, width int, tasks []int, bud *mem.Budget, st *Stats, sp *obs.Span) []tuple {
	if len(left) == 0 {
		return nil
	}
	buildCharge := int64(len(left)) * tupleCost(width)
	bud.MustReserve(buildCharge)
	defer bud.Release(buildCharge)
	build := make(map[uint64][]tuple, len(left))
	var buf []byte
	for _, l := range left {
		buf = appendSlotKey(buf[:0], l, stp.keySlots)
		h := hashKey(buf)
		build[h] = append(build[h], l)
	}
	mergeArena := newArena(width, bud)
	defer mergeArena.close()
	var out []tuple
	e.runScanTasks(ctx, stp, tasks, 1, st, sp, func(j int, ts *Stats) {
		sc := stp.scans[j]
		scanArena := newArena(width, bud)
		defer scanArena.close()
		e.scanMatch(sc.name, sc.src, stp.triple, sc.view, ts, true,
			tupleEmit(stp, scanArena, func(r tuple) {
				buf = appendSlotKey(buf[:0], r, stp.keySlots)
				for _, l := range build[hashKey(buf)] {
					if keySlotsEqual(l, r, stp.keySlots) {
						out = append(out, mergeTuple(mergeArena, l, r, stp.newSlots))
					}
				}
			}))
	})
	return out
}

// streamBatch is how many tuples a scan accumulates per partition before
// streaming them to the probe worker.
const streamBatch = 128

// streamedBatch is one batch of scan tuples routed to a join partition,
// carrying the key hashes computed at routing time so probe workers
// never re-encode the keys.
type streamedBatch struct {
	tups   []tuple
	hashes []uint64
}

// hashedTuple pairs a left tuple with its key hash (computed once during
// partitioning, reused to index the partition).
type hashedTuple struct {
	tup  tuple
	hash uint64
}

// joinStreamed is the partitioned, streaming hash join of the per-step
// path: the accumulated left side is split by key hash into parts
// partitions (Options{Partitions}, decoupled from the worker count) and
// indexed concurrently, while the step's scans fan out on the worker pool
// and stream their tuples — routed by the same hash — to per-partition
// probe workers in batches. Probing therefore starts as soon as the first
// batch lands, while slower sources are still scanning; there is no
// barrier between scan and join (the barrier sits between steps; the
// pipelined executor removes that one too). Per-partition outputs are
// concatenated in partition order and per-task counters merge in source
// order, so everything observable is deterministic.
func (e *Engine) joinStreamed(ctx context.Context, left []tuple, stp *planStep, width, workers, parts int, tasks []int, bud *mem.Budget, st *Stats, sp *obs.Span) []tuple {
	if len(left) == 0 {
		return nil
	}
	if st.JoinPartitions < parts {
		st.JoinPartitions = parts
	}
	// The left side is the build table, materialised by construction on
	// this path; account it for the whole join.
	buildCharge := int64(len(left)) * tupleCost(width)
	bud.MustReserve(buildCharge)
	defer bud.Release(buildCharge)
	partCh := make([]chan streamedBatch, parts)
	for p := range partCh {
		partCh[p] = make(chan streamedBatch, 4)
	}

	// Scans start first so sources stream while the left side is being
	// partitioned; buffered channels absorb the head start.
	scansDone := make(chan struct{})
	go func() {
		defer close(scansDone)
		e.runScanTasks(ctx, stp, tasks, workers, st, sp, func(j int, ts *Stats) {
			sc := stp.scans[j]
			arena := newArena(width, bud)
			defer arena.close()
			local := make([]streamedBatch, parts)
			var buf []byte
			batches := 0
			e.scanMatch(sc.name, sc.src, stp.triple, sc.view, ts, true,
				tupleEmit(stp, arena, func(r tuple) {
					buf = appendSlotKey(buf[:0], r, stp.keySlots)
					h := hashKey(buf)
					p := int(h % uint64(parts))
					local[p].tups = append(local[p].tups, r)
					local[p].hashes = append(local[p].hashes, h)
					if len(local[p].tups) >= streamBatch {
						partCh[p] <- local[p]
						local[p] = streamedBatch{}
						batches++
					}
				}))
			for p, b := range local {
				if len(b.tups) > 0 {
					partCh[p] <- b
					batches++
				}
			}
			ts.StreamedBatches += batches
		})
		for _, ch := range partCh {
			close(ch)
		}
	}()

	// Partition the left side in parallel chunks (hashing each key
	// once); each probe worker then indexes its own partition before
	// draining its channel.
	chunks := workers
	if chunks > len(left) {
		chunks = len(left)
	}
	leftParts := make([][][]hashedTuple, chunks) // leftParts[c][p]
	var wgPart sync.WaitGroup
	per := (len(left) + chunks - 1) / chunks
	for c := 0; c < chunks; c++ {
		lo := min(c*per, len(left))
		hi := min(lo+per, len(left))
		wgPart.Add(1)
		go func(c, lo, hi int) {
			defer wgPart.Done()
			local := make([][]hashedTuple, parts)
			var buf []byte
			for _, l := range left[lo:hi] {
				buf = appendSlotKey(buf[:0], l, stp.keySlots)
				h := hashKey(buf)
				p := int(h % uint64(parts))
				local[p] = append(local[p], hashedTuple{tup: l, hash: h})
			}
			leftParts[c] = local
		}(c, lo, hi)
	}
	wgPart.Wait()

	outs := make([][]tuple, parts)
	var wgProbe sync.WaitGroup
	for p := 0; p < parts; p++ {
		wgProbe.Add(1)
		go func(p int) {
			defer wgProbe.Done()
			build := make(map[uint64][]tuple)
			for c := 0; c < chunks; c++ {
				for _, l := range leftParts[c][p] {
					build[l.hash] = append(build[l.hash], l.tup)
				}
			}
			arena := newArena(width, bud)
			defer arena.close()
			var out []tuple
			for batch := range partCh[p] {
				for i, r := range batch.tups {
					for _, l := range build[batch.hashes[i]] {
						if keySlotsEqual(l, r, stp.keySlots) {
							out = append(out, mergeTuple(arena, l, r, stp.newSlots))
						}
					}
				}
			}
			outs[p] = out
		}(p)
	}
	wgProbe.Wait()
	<-scansDone

	var all []tuple
	for _, o := range outs {
		all = append(all, o...)
	}
	return all
}

// applyTupleFilters runs every not-yet-applied filter whose variable's
// slot is bound, reading the slot directly.
func applyTupleFilters(rows []tuple, filters []Filter, plan *execPlan, applied []bool, bound map[string]bool) []tuple {
	for i, f := range filters {
		if applied[i] || !bound[f.Var] {
			continue
		}
		applied[i] = true
		sl := plan.slotOf[f.Var]
		kept := rows[:0]
		for _, t := range rows {
			if f.Accepts(t[sl]) {
				kept = append(kept, t)
			}
		}
		rows = kept
	}
	return rows
}

// projectTuples dedups the surviving tuples onto the SELECT slots and
// sorts the rows into the deterministic output order shared by every
// execution path. The dedup key is computed straight from the slots, so
// duplicate rows are dropped before any output row is materialised. Rows
// arrive as one or more slices (the pipelined executor hands its
// per-partition outputs over directly, never concatenating the frontier).
func projectTuples(res *Result, groups [][]tuple, q Query, plan *execPlan, bud *mem.Budget) {
	sel := make([]int, len(q.Select))
	for i, v := range q.Select {
		sel[i] = plan.slotOf[v]
	}
	total := 0
	for _, rows := range groups {
		total += len(rows)
	}
	keys := make(map[string]bool, total)
	var keep []keyedRow
	var sb []byte
	for _, rows := range groups {
		for _, t := range rows {
			sb = sb[:0]
			for _, s := range sel {
				sb = appendValueKey(sb, t[s])
			}
			if keys[string(sb)] {
				continue
			}
			key := string(sb)
			keys[key] = true
			out := make([]kb.Value, len(sel))
			for i, s := range sel {
				out[i] = t[s]
			}
			// The kept row is final output that cannot spill: charge it as
			// fixed working state, mirroring the streaming projection's
			// per-row formula (stageProj.add).
			bud.MustReserve(2*int64(len(key)) + 24 + int64(len(sel))*valueBytes)
			keep = append(keep, keyedRow{key, out})
		}
	}
	res.Rows = sortKeyedRows(keep)
}
