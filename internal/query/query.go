// Package query implements ONION's query system (EDBT 2000, §2.3): a
// conjunctive triple-pattern language over the unified ontology, a
// reformulator that rewrites articulation-level queries into per-source
// scans across the semantic bridges (applying the functional conversion
// rules to values), and an executor that joins per-source results.
//
// "Interoperation of ontologies forms the basis for querying their
// semantically meaningful intersection ...: a traditional query engine
// takes a query phrased in terms of an articulation ontology and derives
// an execution plan against the sources involved. Given the semantic
// bridges, however, query reformulation is often required."
//
// # Execution model
//
// The default path is a slot-based tuple executor over compiled, cached
// plans. Compilation (plan.go) hoists the per-source constant expansions
// out of the scan loops, estimates scan cardinalities from the ontology
// and KB indexes, orders the joins smallest-first, and assigns every
// query variable a fixed tuple slot; each join step carries precomputed
// key-slot, new-slot and next-key-slot lists. Execution streams scans
// into flat []kb.Value tuples and hash-joins on the slot lists — no
// binding maps, no per-row map copies, no formatted string keys.
//
// With a worker pool larger than one, a keyed join chain runs as a
// cross-step streaming pipeline (pipeline.go): every step's scans share
// one pool, each join step's partition workers build from the step's own
// scan output, and probe output is re-hashed on the next step's key
// slots at production time and streamed straight into its partitions —
// no frontier is ever materialised between steps, partition counts
// decouple from the worker count (Options{Partitions}), and a provably
// empty step cancels the remaining scan dispatch. Options{StepBarriers}
// keeps the per-step executor (exec.go), which materialises each step's
// output before the next dispatches.
//
// All row keys — hash-join keys, projection dedup keys and the final
// sort — share one kind-tagged, framing-safe value encoding (rowkey.go),
// so adversarial payloads (embedded NUL bytes, kind-colliding formats)
// cannot collapse distinct rows or falsely join.
//
// Two older paths are kept for differential testing: the seed's
// sequential reference (Options{Sequential}: textual join order,
// unindexed scans, binding maps) and the PR 1 planned executor
// (Options{CompatJoins}: binding maps over the same compiled plans, the
// E12 benchmark baseline). All four produce identical results.
package query

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/kb"
)

// Term is one position of a triple pattern: a variable or a constant.
type Term struct {
	// Var is the variable name (without '?'); empty for constants.
	Var string
	// Value is the constant when Var is empty. Term-valued constants name
	// articulation terms ("Vehicle"), source-qualified terms
	// ("carrier.MyCar"), or instances; literals are strings or numbers.
	Value kb.Value
}

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// V builds a variable term.
func V(name string) Term { return Term{Var: name} }

// C builds a constant term.
func C(v kb.Value) Term { return Term{Value: v} }

// String renders the term in query syntax.
func (t Term) String() string {
	if t.IsVar() {
		return "?" + t.Var
	}
	return t.Value.Format()
}

// Triple is one conjunct of the WHERE clause.
type Triple struct {
	S, P, O Term
}

// String renders the triple.
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s", t.S, t.P, t.O)
}

// CmpOp is a comparison operator of a FILTER clause.
type CmpOp int

// Comparison operators.
const (
	OpLT CmpOp = iota
	OpLE
	OpGT
	OpGE
	OpEQ
	OpNE
)

// String returns the operator's query syntax.
func (op CmpOp) String() string {
	switch op {
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpEQ:
		return "="
	case OpNE:
		return "!="
	default:
		return "?"
	}
}

// Filter is one FILTER clause: a comparison between a variable's binding
// and a constant value. Numeric comparisons require a numeric binding;
// = and != also apply to terms and strings.
type Filter struct {
	Var   string
	Op    CmpOp
	Value kb.Value
}

// String renders the filter in query syntax.
func (f Filter) String() string {
	return fmt.Sprintf("FILTER ?%s %s %s", f.Var, f.Op, f.Value.Format())
}

// Accepts reports whether a bound value passes the filter. Unbound or
// type-mismatched values fail (conservative: filters never widen results).
func (f Filter) Accepts(v kb.Value) bool {
	switch f.Op {
	case OpEQ:
		return v.Equal(f.Value)
	case OpNE:
		return v.Kind == f.Value.Kind && !v.Equal(f.Value)
	}
	if !v.IsNumber() || !f.Value.IsNumber() {
		return false
	}
	switch f.Op {
	case OpLT:
		return v.Num < f.Value.Num
	case OpLE:
		return v.Num <= f.Value.Num
	case OpGT:
		return v.Num > f.Value.Num
	case OpGE:
		return v.Num >= f.Value.Num
	default:
		return false
	}
}

// Query is a conjunctive SELECT query with optional filters.
type Query struct {
	Select  []string
	Where   []Triple
	Filters []Filter
}

// String renders the query in parseable syntax.
func (q Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT")
	for _, v := range q.Select {
		b.WriteString(" ?")
		b.WriteString(v)
	}
	b.WriteString(" WHERE ")
	for i, t := range q.Where {
		if i > 0 {
			b.WriteString(" . ")
		}
		b.WriteString(t.String())
	}
	for _, f := range q.Filters {
		b.WriteString(" . ")
		b.WriteString(f.String())
	}
	return b.String()
}

// Validate checks that the query selects at least one variable, has at
// least one triple, and that every selected or filtered variable occurs
// in WHERE.
func (q Query) Validate() error {
	if len(q.Select) == 0 {
		return fmt.Errorf("query: empty SELECT")
	}
	if len(q.Where) == 0 {
		return fmt.Errorf("query: empty WHERE")
	}
	bound := make(map[string]bool)
	for _, t := range q.Where {
		for _, term := range []Term{t.S, t.P, t.O} {
			if term.IsVar() {
				bound[term.Var] = true
			}
		}
	}
	for _, v := range q.Select {
		if !bound[v] {
			return fmt.Errorf("query: selected variable ?%s not bound in WHERE", v)
		}
	}
	for _, f := range q.Filters {
		if !bound[f.Var] {
			return fmt.Errorf("query: filtered variable ?%s not bound in WHERE", f.Var)
		}
	}
	return nil
}

// Parse parses the query syntax:
//
//	SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p
//
// Constants may be bare terms (articulation-level), qualified terms
// (carrier.MyCar), quoted strings, or numbers.
func Parse(s string) (Query, error) {
	toks, err := tokenize(s)
	if err != nil {
		return Query{}, err
	}
	p := qparser{in: s, toks: toks}
	return p.parse()
}

// MustParse is Parse for fixtures; it panics on error.
func MustParse(s string) Query {
	q, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return q
}

type qtok struct {
	text string
	pos  int
	str  bool // quoted string literal
}

func tokenize(s string) ([]qtok, error) {
	var toks []qtok
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '.':
			// A dot is the triple separator only when framed by spaces or
			// line ends; inside tokens it is a name qualifier.
			toks = append(toks, qtok{text: ".", pos: i})
			i++
		case c == '"':
			// Strings are Go-style interpreted literals, so rendering a
			// query (strconv.Quote) and reparsing it round-trips exactly.
			j := i + 1
			for j < len(s) && s[j] != '"' {
				if s[j] == '\\' && j+1 < len(s) {
					j++
				}
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("query: unterminated string at %d in %q", i, s)
			}
			text, err := strconv.Unquote(s[i : j+1])
			if err != nil {
				return nil, fmt.Errorf("query: bad string literal at %d in %q: %w", i, s, err)
			}
			toks = append(toks, qtok{text: text, pos: i, str: true})
			i = j + 1
		default:
			j := i
			for j < len(s) && !strings.ContainsRune(" \t\n\r\"", rune(s[j])) {
				// Stop a bare '.' separator, but keep qualified names
				// ("carrier.MyCar") intact: a '.' inside a token is kept
				// when followed by a non-space.
				if s[j] == '.' && (j+1 >= len(s) || s[j+1] == ' ' || s[j+1] == '\t' || s[j+1] == '\n' || s[j+1] == '\r') {
					break
				}
				j++
			}
			text := s[i:j]
			// A token ending in '.' cannot be rendered unambiguously
			// against the ' . ' clause separator; reject it outright.
			if strings.HasSuffix(text, ".") {
				return nil, fmt.Errorf("query: term ending in '.' at %d in %q", i, s)
			}
			toks = append(toks, qtok{text: text, pos: i})
			i = j
		}
	}
	return toks, nil
}

type qparser struct {
	in   string
	toks []qtok
	pos  int
}

func (p *qparser) next() (qtok, bool) {
	if p.pos >= len(p.toks) {
		return qtok{}, false
	}
	t := p.toks[p.pos]
	p.pos++
	return t, true
}

func (p *qparser) parse() (Query, error) {
	var q Query
	t, ok := p.next()
	if !ok || !strings.EqualFold(t.text, "SELECT") {
		return q, fmt.Errorf("query: expected SELECT in %q", p.in)
	}
	for {
		t, ok = p.next()
		if !ok {
			return q, fmt.Errorf("query: expected WHERE in %q", p.in)
		}
		if strings.EqualFold(t.text, "WHERE") && !t.str {
			break
		}
		if !strings.HasPrefix(t.text, "?") || len(t.text) < 2 {
			return q, fmt.Errorf("query: expected variable in SELECT at %d in %q", t.pos, p.in)
		}
		q.Select = append(q.Select, t.text[1:])
	}
	for {
		if nt, ok := p.peekTok(); ok && !nt.str && strings.EqualFold(nt.text, "FILTER") {
			p.pos++
			filter, err := p.parseFilter()
			if err != nil {
				return q, err
			}
			q.Filters = append(q.Filters, filter)
		} else {
			triple, err := p.parseTriple()
			if err != nil {
				return q, err
			}
			q.Where = append(q.Where, triple)
		}
		t, ok = p.next()
		if !ok {
			break
		}
		if t.text != "." || t.str {
			return q, fmt.Errorf("query: expected '.' between clauses at %d in %q", t.pos, p.in)
		}
	}
	return q, q.Validate()
}

func (p *qparser) peekTok() (qtok, bool) {
	if p.pos >= len(p.toks) {
		return qtok{}, false
	}
	return p.toks[p.pos], true
}

// parseFilter parses "?var op value" after the FILTER keyword.
func (p *qparser) parseFilter() (Filter, error) {
	v, ok := p.next()
	if !ok || !strings.HasPrefix(v.text, "?") || len(v.text) < 2 {
		return Filter{}, fmt.Errorf("query: FILTER needs a variable in %q", p.in)
	}
	opTok, ok := p.next()
	if !ok {
		return Filter{}, fmt.Errorf("query: FILTER needs an operator in %q", p.in)
	}
	var op CmpOp
	switch opTok.text {
	case "<":
		op = OpLT
	case "<=":
		op = OpLE
	case ">":
		op = OpGT
	case ">=":
		op = OpGE
	case "=", "==":
		op = OpEQ
	case "!=":
		op = OpNE
	default:
		return Filter{}, fmt.Errorf("query: unknown FILTER operator %q in %q", opTok.text, p.in)
	}
	valTok, ok := p.next()
	if !ok {
		return Filter{}, fmt.Errorf("query: FILTER needs a value in %q", p.in)
	}
	val, err := parseTerm(valTok)
	if err != nil {
		return Filter{}, err
	}
	if val.IsVar() {
		return Filter{}, fmt.Errorf("query: FILTER value must be a constant in %q", p.in)
	}
	return Filter{Var: v.text[1:], Op: op, Value: val.Value}, nil
}

func (p *qparser) parseTriple() (Triple, error) {
	var terms [3]Term
	for i := 0; i < 3; i++ {
		t, ok := p.next()
		if !ok {
			return Triple{}, fmt.Errorf("query: incomplete triple in %q", p.in)
		}
		term, err := parseTerm(t)
		if err != nil {
			return Triple{}, err
		}
		terms[i] = term
	}
	return Triple{S: terms[0], P: terms[1], O: terms[2]}, nil
}

func parseTerm(t qtok) (Term, error) {
	if t.str {
		return C(kb.String(t.text)), nil
	}
	if strings.HasPrefix(t.text, "?") {
		if len(t.text) < 2 {
			return Term{}, fmt.Errorf("query: empty variable name at %d", t.pos)
		}
		return V(t.text[1:]), nil
	}
	if n, err := strconv.ParseFloat(t.text, 64); err == nil {
		return C(kb.Number(n)), nil
	}
	if t.text == "" || t.text == "." {
		return Term{}, fmt.Errorf("query: empty term at %d", t.pos)
	}
	return C(kb.Term(t.text)), nil
}
