package query

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/articulation"
	"repro/internal/kb"
	"repro/internal/ontology"
	"repro/internal/rules"
)

// batchEdgeEngine builds a two-source world whose join output size is
// directly controlled by the instance count: every instance carries one
// P value and one P2 value (both its own index), so the three-conjunct
// chain yields exactly instances rows per source — deep and big enough
// that the planner picks the streaming pipeline (and with it the batch
// plane) rather than the shallow-chain fast path. The ontology also
// declares a Q attribute with zero facts behind it, for the empty-batch
// tests.
func batchEdgeEngine(t testing.TB, instances int) (*Engine, Query) {
	t.Helper()
	sources := make(map[string]*Source, 2)
	var onts []*ontology.Ontology
	for i := 1; i <= 2; i++ {
		name := fmt.Sprintf("be%d", i)
		o := ontology.New(name)
		o.MustAddTerm("Item")
		for _, p := range []string{"P", "P2", "Q"} {
			o.MustAddTerm(p)
			o.MustRelate("Item", ontology.AttributeOf, p)
		}
		store := kb.New(name)
		for k := 0; k < instances; k++ {
			inst := fmt.Sprintf("%sI%d", name, k)
			store.MustAdd(inst, "InstanceOf", kb.Term("Item"))
			store.MustAdd(inst, "P", kb.Number(float64(k)))
			store.MustAdd(inst, "P2", kb.Number(float64(k)))
		}
		sources[name] = &Source{Ont: o, KB: store}
		onts = append(onts, o)
	}
	set := rules.NewSet(rules.MustParse("be1.Item => be2.Item"))
	res, err := articulation.Generate("beart", onts[0], onts[1], set, articulation.Options{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(res.Art, sources)
	if err != nil {
		t.Fatal(err)
	}
	return eng, MustParse("SELECT ?x ?v ?w WHERE ?x InstanceOf Item . ?x P ?v . ?x P2 ?w")
}

// TestBatchBoundaryRowCounts exercises result sizes that straddle the
// column-batch capacity on both the full-capacity and budgeted-capacity
// paths: one row short of a full batch, exactly full, one row over, and
// several batches plus a remainder. Rows must stay byte-identical to
// the sequential reference and to the pinned row-at-a-time pipeline at
// every size.
func TestBatchBoundaryRowCounts(t *testing.T) {
	for _, n := range []int{batchRows - 1, batchRows, batchRows + 1, 2*batchRows + 3} {
		t.Run(fmt.Sprintf("rows-%d", n), func(t *testing.T) {
			eng, q := batchEdgeEngine(t, n)
			want, err := eng.ExecuteWith(q, Options{Sequential: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(want.Rows) != 2*n {
				t.Fatalf("sequential rows = %d, want %d", len(want.Rows), 2*n)
			}
			batch, err := eng.ExecuteWith(q, Options{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !want.EqualRows(batch) {
				t.Errorf("batch diverged: sequential %d rows, batch %d", len(want.Rows), len(batch.Rows))
			}
			if batch.Stats.Batches == 0 || batch.Stats.BatchRows == 0 {
				t.Errorf("batch path not engaged: %+v", batch.Stats)
			}
			// The budgeted capacity (budgetedBatchRows) divides the same
			// row counts differently; the edge must hold there too.
			budgeted, err := eng.ExecuteWith(q, Options{Workers: 4, MemoryLimit: 1 << 14})
			if err != nil {
				t.Fatal(err)
			}
			if !want.EqualRows(budgeted) {
				t.Errorf("budgeted batch diverged: sequential %d rows, got %d", len(want.Rows), len(budgeted.Rows))
			}
			row, err := eng.ExecuteWith(q, Options{Workers: 4, RowAtATime: true})
			if err != nil {
				t.Fatal(err)
			}
			if !want.EqualRows(row) {
				t.Errorf("row-at-a-time diverged: sequential %d rows, got %d", len(want.Rows), len(row.Rows))
			}
		})
	}
}

// TestBatchSelectionMaskAllZero drives a filter that zeroes the
// selection mask of every batch: the executor must drain cleanly to an
// empty result rather than emitting masked-off rows or wedging on
// fully-dead batches.
func TestBatchSelectionMaskAllZero(t *testing.T) {
	eng, _ := batchEdgeEngine(t, batchRows+5)
	dead := MustParse("SELECT ?x ?v WHERE ?x InstanceOf Item . ?x P ?v . ?x P2 ?w . FILTER ?v < 0")
	for _, leg := range []struct {
		name string
		opts Options
	}{
		{"batch", Options{Workers: 4}},
		{"batch-budgeted", Options{Workers: 4, MemoryLimit: 1 << 14}},
		{"row", Options{Workers: 4, RowAtATime: true}},
	} {
		got, err := eng.ExecuteWith(dead, leg.opts)
		if err != nil {
			t.Fatalf("%s: %v", leg.name, err)
		}
		if len(got.Rows) != 0 {
			t.Errorf("%s: all-zero selection mask leaked %d rows", leg.name, len(got.Rows))
		}
	}
	// A mask with a single surviving bit per source must emit exactly
	// those rows, byte-identical to the reference.
	oneLeft := MustParse(fmt.Sprintf(
		"SELECT ?x ?v WHERE ?x InstanceOf Item . ?x P ?v . ?x P2 ?w . FILTER ?v >= %d", batchRows+4))
	want, err := eng.ExecuteWith(oneLeft, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != 2 {
		t.Fatalf("single-survivor filter: sequential rows = %d, want 2", len(want.Rows))
	}
	got, err := eng.ExecuteWith(oneLeft, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !want.EqualRows(got) {
		t.Errorf("single-survivor batch diverged: %v vs %v", got.Rows, want.Rows)
	}
}

// TestBatchEmptyStep covers empty batches at the source: a conjunct
// whose predicate has no facts must short-circuit every batch leg to an
// empty result without error.
func TestBatchEmptyStep(t *testing.T) {
	eng, _ := batchEdgeEngine(t, 64)
	empty := MustParse("SELECT ?x WHERE ?x InstanceOf Item . ?x Q ?w")
	for _, leg := range []struct {
		name string
		opts Options
	}{
		{"batch", Options{Workers: 4}},
		{"batch-budgeted", Options{Workers: 4, MemoryLimit: 1 << 14}},
		{"row", Options{Workers: 4, RowAtATime: true}},
	} {
		got, err := eng.ExecuteWith(empty, leg.opts)
		if err != nil {
			t.Fatalf("%s: %v", leg.name, err)
		}
		if len(got.Rows) != 0 {
			t.Errorf("%s: factless conjunct produced %d rows", leg.name, len(got.Rows))
		}
	}
}

// TestBatchDeterminismAcrossProcs is the fourth determinism leg of the
// executor matrix: on every bench world — join-heavy, deep-chain, and
// the adversarial rowkey payloads — the batch plane must produce rows
// byte-identical to the sequential reference under GOMAXPROCS 1, 2 and
// 8, unbounded and under the 16KB budget, alongside the compat and
// pinned row-at-a-time legs.
func TestBatchDeterminismAcrossProcs(t *testing.T) {
	worlds := []struct {
		name  string
		build func(testing.TB) (*Engine, Query)
	}{
		{"join-heavy", func(tb testing.TB) (*Engine, Query) { return joinHeavyEngine(tb, 150) }},
		{"deep-chain", func(tb testing.TB) (*Engine, Query) { return deepChainEngine(tb, 40, 2) }},
		{"adversarial", func(tb testing.TB) (*Engine, Query) { return spillAdversarialEngine(tb, 60, 5) }},
	}
	for _, w := range worlds {
		t.Run(w.name, func(t *testing.T) {
			eng, q := w.build(t)
			want, err := eng.ExecuteWith(q, Options{Sequential: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(want.Rows) == 0 {
				t.Fatalf("world produced no rows")
			}
			for _, procs := range []int{1, 2, 8} {
				t.Run(fmt.Sprintf("gomaxprocs-%d", procs), func(t *testing.T) {
					prev := runtime.GOMAXPROCS(procs)
					defer runtime.GOMAXPROCS(prev)
					legs := []struct {
						name string
						opts Options
					}{
						{"default-workers", Options{}},
						{"compat", Options{Workers: 4, CompatJoins: true}},
						{"row-pipeline", Options{Workers: 4, RowAtATime: true}},
						{"batch", Options{Workers: 4}},
						{"batch-16k", Options{Workers: 4, MemoryLimit: 1 << 14}},
						{"row-16k", Options{Workers: 4, MemoryLimit: 1 << 14, RowAtATime: true}},
					}
					for _, leg := range legs {
						got, err := eng.ExecuteWith(q, leg.opts)
						if err != nil {
							t.Fatalf("%s: %v", leg.name, err)
						}
						if !want.EqualRows(got) {
							t.Errorf("%s diverged: sequential %d rows, got %d",
								leg.name, len(want.Rows), len(got.Rows))
						}
						if got.Stats.JoinedRows != want.Stats.JoinedRows {
							t.Errorf("%s JoinedRows = %d, want %d",
								leg.name, got.Stats.JoinedRows, want.Stats.JoinedRows)
						}
					}
				})
			}
		})
	}
}
