package query

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/fixtures"
	"repro/internal/kb"
)

// TestEpochSelfHealsStaleCaches is the ROADMAP-footgun regression: a
// direct NewEngine user mutates a source KB between queries and the next
// query must see the new facts without any InvalidateCache call — the
// epoch check at query entry flushes the stale plans and indexes.
func TestEpochSelfHealsStaleCaches(t *testing.T) {
	res, carrier, factory := paperPieces(t)
	carrierKB := fixtures.CarrierKB()
	e, err := NewEngine(res.Art, map[string]*Source{
		"carrier": {Ont: carrier, KB: carrierKB},
		"factory": {Ont: factory, KB: fixtures.FactoryKB()},
	})
	if err != nil {
		t.Fatal(err)
	}
	const q = "SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p"
	before := rows(t, e, q)
	if hasRow(before, "carrier.NewCar", "4000") {
		t.Fatalf("world already contains the fact to be added")
	}
	// Warm the plan cache and prove it stays warm while nothing mutates.
	warm := rows(t, e, q)
	if !warm.Stats.PlanCacheHit {
		t.Fatalf("second identical query missed the plan cache")
	}

	carrierKB.MustAdd("NewCar", "InstanceOf", kb.Term("PassengerCar"))
	carrierKB.MustAdd("NewCar", "Price", kb.Number(2500)) // 4000 EUR via PSToEuroFn

	after := rows(t, e, q)
	if after.Stats.PlanCacheHit {
		t.Fatalf("stale plan survived a KB mutation")
	}
	if !hasRow(after, "carrier.NewCar", "4000") {
		t.Fatalf("self-heal missed the new fact; rows: %v", after.Rows)
	}
	if len(after.Rows) != len(before.Rows)+1 {
		t.Fatalf("rows = %d, want %d", len(after.Rows), len(before.Rows)+1)
	}
	// The next query re-hits the recompiled plan: healing is one-shot,
	// not a permanent cache bypass.
	if again := rows(t, e, q); !again.Stats.PlanCacheHit {
		t.Fatalf("plan cache not rebuilt after self-heal")
	}
}

// TestEpochSelfHealsOntologyMutation covers the ontology side: relating
// new terms in a source graph must invalidate the engine's per-source
// edge index and qualified-name table without an explicit call.
func TestEpochSelfHealsOntologyMutation(t *testing.T) {
	res, carrier, factory := paperPieces(t)
	e, err := NewEngine(res.Art, map[string]*Source{
		"carrier": {Ont: carrier},
		"factory": {Ont: factory},
	})
	if err != nil {
		t.Fatal(err)
	}
	const q = "SELECT ?x WHERE ?x SubclassOf carrier.Cars"
	before := rows(t, e, q)

	carrier.MustAddTerm("Hatchback")
	carrier.MustRelate("Hatchback", "SubclassOf", "Cars")

	after := rows(t, e, q)
	if !hasRow(after, "carrier.Hatchback") {
		t.Fatalf("edge index not refreshed after ontology mutation; rows: %v", after.Rows)
	}
	if len(after.Rows) != len(before.Rows)+1 {
		t.Fatalf("rows = %d, want %d", len(after.Rows), len(before.Rows)+1)
	}
}

// TestEpochVectorAndKey pins the epoch-vector contract the serving
// layer's cache keys rely on: stable while nothing mutates, changed by
// any source mutation, and engine-local.
func TestEpochVectorAndKey(t *testing.T) {
	res, carrier, factory := paperPieces(t)
	carrierKB := fixtures.CarrierKB()
	e, err := NewEngine(res.Art, map[string]*Source{
		"carrier": {Ont: carrier, KB: carrierKB},
		"factory": {Ont: factory, KB: fixtures.FactoryKB()},
	})
	if err != nil {
		t.Fatal(err)
	}
	v1, k1 := e.EpochVector(), e.EpochKey()
	if len(v1) != 3 { // transport articulation + two sources
		t.Fatalf("EpochVector len = %d, want 3", len(v1))
	}
	if k2 := e.EpochKey(); k2 != k1 {
		t.Fatalf("EpochKey unstable without mutation")
	}
	if _, err := e.Execute(MustParse("SELECT ?x WHERE ?x InstanceOf Vehicle")); err != nil {
		t.Fatal(err)
	}
	if k2 := e.EpochKey(); k2 != k1 {
		t.Fatalf("query execution changed the epoch key")
	}
	carrierKB.MustAdd("Extra", "InstanceOf", kb.Term("SUV"))
	if k3 := e.EpochKey(); k3 == k1 {
		t.Fatalf("EpochKey unchanged after KB mutation")
	}
	v2 := e.EpochVector()
	changed := 0
	for i := range v1 {
		if v1[i] != v2[i] {
			changed++
		}
	}
	if changed != 1 {
		t.Fatalf("mutating one source changed %d vector entries: %v -> %v", changed, v1, v2)
	}
}

// TestInvalidateCacheStillForcesFlush keeps the explicit flush working
// as documented (a forced wholesale drop, e.g. after pointer swaps the
// epochs cannot see).
func TestInvalidateCacheStillForcesFlush(t *testing.T) {
	e := paperEngine(t)
	const q = "SELECT ?x WHERE ?x InstanceOf Vehicle"
	rows(t, e, q)
	if !rows(t, e, q).Stats.PlanCacheHit {
		t.Fatalf("warm query missed the plan cache")
	}
	e.InvalidateCache()
	if rows(t, e, q).Stats.PlanCacheHit {
		t.Fatalf("InvalidateCache did not flush the plan cache")
	}
}

// TestExecuteCtxCancellation checks every executor path returns the
// context error instead of a partial result, both when cancelled before
// the call and when the deadline expires mid-execution.
func TestExecuteCtxCancellation(t *testing.T) {
	eng, q := deepChainEngine(t, 60, 2)
	done := context.Background()
	cancelled, cancel := context.WithCancel(done)
	cancel()
	modes := []Options{
		{Sequential: true},
		{Workers: 1},
		{Workers: 4},
		{Workers: 4, StepBarriers: true},
		{Workers: 4, CompatJoins: true},
	}
	for _, opts := range modes {
		if _, err := eng.ExecuteCtx(cancelled, q, opts); !errors.Is(err, context.Canceled) {
			t.Errorf("%+v: pre-cancelled ctx returned %v, want context.Canceled", opts, err)
		}
		// A generous deadline must not disturb the result.
		ctx, stop := context.WithTimeout(done, time.Minute)
		res, err := eng.ExecuteCtx(ctx, q, opts)
		stop()
		if err != nil || len(res.Rows) == 0 {
			t.Errorf("%+v: deadline run failed: %v", opts, err)
		}
	}
	// An already-expired deadline lands mid-pipeline dispatch: the
	// pipeline must drain cleanly and report DeadlineExceeded.
	expired, stop := context.WithTimeout(done, time.Nanosecond)
	defer stop()
	time.Sleep(time.Millisecond)
	for _, opts := range modes {
		if _, err := eng.ExecuteCtx(expired, q, opts); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%+v: expired deadline returned %v", opts, err)
		}
	}
}

// TestShallowChainCostChoice locks the shallow-chain fast path: at one
// or two keyed joins the executor is chosen by the planner's scan
// estimate — tiny worlds run the per-step executor, scan-heavy worlds
// still pipeline — and deeper chains always pipeline. Rows are identical
// either way.
func TestShallowChainCostChoice(t *testing.T) {
	opts := Options{Workers: 4}

	// Tiny world, one keyed join: below break-even, per-step executor.
	small := paperEngine(t)
	q2 := MustParse("SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p")
	res, err := small.ExecuteCtx(context.Background(), q2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PipelinedSteps != 0 {
		t.Fatalf("tiny shallow chain pipelined: %+v", res.Stats)
	}
	seq, err := small.ExecuteWith(q2, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.EqualRows(res) {
		t.Fatalf("shallow fast path diverged from sequential")
	}

	// Scan-heavy world, same two-triple shape: the estimate clears the
	// gate and the chain pipelines again.
	big, bq := shallowHeavyEngine(t, 3000)
	bres, err := big.ExecuteCtx(context.Background(), bq, opts)
	if err != nil {
		t.Fatal(err)
	}
	if bres.Stats.PipelinedSteps == 0 {
		t.Fatalf("scan-heavy shallow chain did not pipeline: %+v", bres.Stats)
	}

	// Depth beyond the gate pipelines regardless of estimates.
	deep, dq := deepChainEngine(t, 8, 1)
	dres, err := deep.ExecuteCtx(context.Background(), dq, opts)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Stats.PipelinedSteps == 0 {
		t.Fatalf("deep chain did not pipeline: %+v", dres.Stats)
	}

	// A memory budget bypasses the shallow gate: only the pipeline can
	// degrade to grace-hash spilling, so the tiny world pipelines when a
	// limit is set — with identical rows.
	capped, err := small.ExecuteWith(q2, Options{Workers: 4, MemoryLimit: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Stats.PipelinedSteps == 0 {
		t.Fatalf("budgeted shallow chain did not pipeline: %+v", capped.Stats)
	}
	if !seq.EqualRows(capped) {
		t.Fatalf("budgeted shallow chain diverged from sequential")
	}
}

// shallowHeavyEngine builds a two-source, two-triple world whose scan
// volume clears the shallow pipeline gate.
func shallowHeavyEngine(t testing.TB, instances int) (*Engine, Query) {
	t.Helper()
	eng, _ := joinHeavyEngine(t, instances)
	return eng, MustParse("SELECT ?x ?p WHERE ?x InstanceOf Item . ?x Price ?p")
}
