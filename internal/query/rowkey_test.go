package query

import (
	"math"
	"testing"

	"repro/internal/articulation"
	"repro/internal/kb"
	"repro/internal/ontology"
	"repro/internal/rules"
)

// vkey encodes one value with the shared row/join key encoding.
func vkey(v kb.Value) string { return string(appendValueKey(nil, v)) }

// TestAppendValueKeyKindStrict locks the shared encoding's kind tags:
// values that format identically but differ in kind must produce
// different keys on every call site (join, dedup, sort).
func TestAppendValueKeyKindStrict(t *testing.T) {
	if vkey(kb.Term("3000")) == vkey(kb.Number(3000)) {
		t.Errorf("kind-blind key: Term(3000) == Number(3000)")
	}
	if vkey(kb.Term("3000")) == vkey(kb.String("3000")) {
		t.Errorf("kind-blind key: Term(3000) == String(3000)")
	}
	if vkey(kb.String("3000")) == vkey(kb.Number(3000)) {
		t.Errorf("kind-blind key: String(3000) == Number(3000)")
	}
}

// TestAppendValueKeyFraming locks the escape/terminator framing: byte
// payloads containing the NUL separator or shifted across field
// boundaries must stay distinguishable when keys are concatenated.
func TestAppendValueKeyFraming(t *testing.T) {
	mk := func(vals ...kb.Value) string {
		var buf []byte
		for _, v := range vals {
			buf = appendValueKey(buf, v)
		}
		return string(buf)
	}
	if mk(kb.Term("ab"), kb.Term("c")) == mk(kb.Term("a"), kb.Term("bc")) {
		t.Errorf("ambiguous field framing")
	}
	if mk(kb.Term("a\x00b"), kb.Term("c")) == mk(kb.Term("a"), kb.Term("b\x00c")) {
		t.Errorf("NUL-containing payloads collide")
	}
	if mk(kb.Term("a"), kb.Term("b")) == mk(kb.Term("a\x00b")) {
		t.Errorf("two fields collide with one NUL-joined field")
	}
	if vkey(kb.Term("\x01unbound")) == vkey(kb.Term("unbound")) {
		t.Errorf("control-byte payload collapsed")
	}
	if mk(kb.Number(1), kb.Number(2)) == mk(kb.Number(2), kb.Number(1)) {
		t.Errorf("number order ignored")
	}
}

// TestAppendValueKeyNumberSemantics locks the numeric image: every NaN
// in one equality class (the engine's reference semantics key on
// Format(), where all NaNs render "NaN"), +0 and -0 distinct, and byte
// order equal to numeric order so sorted rows read numerically.
func TestAppendValueKeyNumberSemantics(t *testing.T) {
	nanA := math.NaN()
	nanB := math.Float64frombits(0x7FF8000000000001)
	if vkey(kb.Number(nanA)) != vkey(kb.Number(nanB)) {
		t.Errorf("NaN payloads split the NaN equality class")
	}
	if vkey(kb.Number(0)) == vkey(kb.Number(math.Copysign(0, -1))) {
		t.Errorf("+0 and -0 collapsed (Format distinguishes them)")
	}
	nums := []float64{math.Inf(-1), -2.5, math.Copysign(0, -1), 0, 0.25, 2, 10, math.Inf(1)}
	for i := 1; i < len(nums); i++ {
		a, b := vkey(kb.Number(nums[i-1])), vkey(kb.Number(nums[i]))
		if a >= b {
			t.Errorf("key order not numeric: %v !< %v", nums[i-1], nums[i])
		}
	}
}

// TestJoinKeyUnboundMarkerUnambiguous locks the binding-path joinKey
// framing, including the out-of-band unbound marker. The adversarial
// pair below was a verified collision under a 0xff marker (the string
// terminator 0x00 followed by 0xff reads as the \x00→\x00\xff escape):
// binding A with v2 unbound and binding B with v3 unbound encoded to
// identical bytes. The 0x03 marker keeps them distinct.
func TestJoinKeyUnboundMarkerUnambiguous(t *testing.T) {
	vars := []string{"v1", "v2", "v3", "v4"}
	a := binding{"v1": kb.Term("a"), "v3": kb.Term("\xffc"), "v4": kb.Term("a\x00\x00c")}
	b := binding{"v1": kb.Term("a\x00\x00c"), "v2": kb.Term("a"), "v4": kb.Term("\xffc")}
	if joinKey(a, vars) == joinKey(b, vars) {
		t.Errorf("unbound marker framing collision: %q", joinKey(a, vars))
	}
	// A bound value can never encode to the bare marker either.
	if joinKey(binding{"v1": kb.Term("\x03")}, []string{"v1"}) == joinKey(binding{}, []string{"v1"}) {
		t.Errorf("marker byte collides with a term payload")
	}
}

// TestEqualRowsKindStrict locks the cell-wise comparison: the
// determinism suite must detect an executor returning a different kind
// even when the cells format identically (the formatRow-based
// comparison it replaces could not).
func TestEqualRowsKindStrict(t *testing.T) {
	mk := func(vals ...kb.Value) *Result {
		return &Result{Vars: []string{"v"}, Rows: [][]kb.Value{vals}}
	}
	if mk(kb.Term("3000")).EqualRows(mk(kb.Number(3000))) {
		t.Errorf("kind divergence undetected: Term vs Number")
	}
	if mk(kb.Term("3000")).EqualRows(mk(kb.String("3000"))) {
		t.Errorf("kind divergence undetected: Term vs String")
	}
	if !mk(kb.Number(3000)).EqualRows(mk(kb.Number(3000))) {
		t.Errorf("identical rows unequal")
	}
	if !mk(kb.Number(math.NaN())).EqualRows(mk(kb.Number(math.NaN()))) {
		t.Errorf("NaN cells unequal: the engine keys every NaN alike")
	}
}

// adversarialEngine builds a one-KB world whose term payloads are
// crafted against the seed's raw-\x00-joined Format() keys: without
// framing-safe encodings they collapse distinct SELECT rows and falsely
// join. The source is named "adv" and the payloads bake that prefix in,
// since emitted terms are source-qualified.
func adversarialEngine(t testing.TB) *Engine {
	t.Helper()
	src := ontology.New("adv")
	src.MustAddTerm("T")
	dst := ontology.New("other")
	dst.MustAddTerm("U")
	set := rules.NewSet(rules.MustParse("adv.T => other.U"))
	res, err := articulation.Generate("advart", src, dst, set, articulation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	store := kb.New("adv")
	// Projection collapse pair: the two rows' cells concatenate to the
	// same raw \x00-joined string once qualified.
	store.MustAdd("a", "P", kb.Term("b\x00adv.c"))
	store.MustAdd("a\x00adv.b", "P", kb.Term("c"))
	// False-join pair against the seed's "%d:%s"-formatted join keys:
	// the P row (u=adv.a, v=adv.b\x000:adv.c) and the Q row
	// (u=adv.a\x000:adv.b, v=adv.c) used to encode identically.
	store.MustAdd("a", "Q", kb.Term("b\x000:adv.c"))
	store.MustAdd("a\x000:adv.b", "R", kb.Term("c"))
	// In-band sentinel payloads must behave like ordinary values.
	store.MustAdd("\x01unbound", "S", kb.Term("\x01unbound"))
	store.MustAdd("unbound", "S", kb.Term("unbound"))
	eng, err := NewEngine(res.Art, map[string]*Source{
		"adv":   {Ont: src, KB: store},
		"other": {Ont: dst},
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// advModes are the executor configurations the adversarial regressions
// run under: sequential reference, compat joins, per-step tuple path,
// and the cross-step pipeline (default and decoupled partitions).
var advModes = []struct {
	name string
	opts Options
}{
	{"sequential", Options{Sequential: true}},
	{"compat", Options{Workers: 1, CompatJoins: true}},
	{"tuple-inline", Options{Workers: 1}},
	{"tuple-barrier", Options{Workers: 4, StepBarriers: true}},
	{"pipelined", Options{Workers: 4}},
	{"pipelined-parts-3", Options{Workers: 4, Partitions: 3}},
}

// TestProjectionFramingSafe regresses the dedup/sort collapse: two
// distinct rows whose cells concatenate identically under a raw \x00
// join must stay two rows, on every execution path.
func TestProjectionFramingSafe(t *testing.T) {
	eng := adversarialEngine(t)
	q := MustParse("SELECT ?x ?y WHERE ?x P ?y")
	want, err := eng.ExecuteWith(q, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != 2 {
		t.Fatalf("adversarial projection rows = %d, want 2 (framing collapse): %v", len(want.Rows), want.Rows)
	}
	for _, m := range advModes {
		got, err := eng.ExecuteWith(q, m.opts)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if !want.EqualRows(got) {
			t.Errorf("%s diverged on adversarial projection: %v", m.name, got.Rows)
		}
	}
}

// TestJoinFramingSafe regresses the sequential/compat joinKey false
// join: rows that only encode identically under the seed's separator
// scheme must not join — the correct answer is empty on every path.
func TestJoinFramingSafe(t *testing.T) {
	eng := adversarialEngine(t)
	q := MustParse("SELECT ?u ?v WHERE ?u Q ?v . ?u R ?v")
	for _, m := range advModes {
		got, err := eng.ExecuteWith(q, m.opts)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if len(got.Rows) != 0 {
			t.Errorf("%s falsely joined adversarial rows: %v", m.name, got.Rows)
		}
	}
}

// TestInBandSentinelValues checks that a term literally named
// "\x01unbound" (the seed's in-band unbound marker) flows through scans,
// joins and projection as an ordinary value on every path.
func TestInBandSentinelValues(t *testing.T) {
	eng := adversarialEngine(t)
	q := MustParse("SELECT ?x ?y WHERE ?x S ?y")
	want, err := eng.ExecuteWith(q, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != 2 {
		t.Fatalf("sentinel rows = %d, want 2: %v", len(want.Rows), want.Rows)
	}
	for _, m := range advModes {
		got, err := eng.ExecuteWith(q, m.opts)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if !want.EqualRows(got) {
			t.Errorf("%s diverged on sentinel values: %v", m.name, got.Rows)
		}
	}
}

// TestKindCollidingProjection pins the documented Term("3000") vs
// Number(3000) projection collision at the row-key level: rows that
// differ only in cell kind dedup and sort as distinct rows.
func TestKindCollidingProjection(t *testing.T) {
	rows := []tuple{
		{kb.Term("3000")},
		{kb.Number(3000)},
		{kb.String("3000")},
		{kb.Term("3000")}, // true duplicate
	}
	res := &Result{Vars: []string{"v"}}
	plan := &execPlan{slotOf: map[string]int{"v": 0}, slotNames: []string{"v"}}
	projectTuples(res, [][]tuple{rows}, Query{Select: []string{"v"}}, plan, nil)
	if len(res.Rows) != 3 {
		t.Fatalf("kind-colliding rows deduped to %d, want 3: %v", len(res.Rows), res.Rows)
	}
}
