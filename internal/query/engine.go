package query

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/articulation"
	"repro/internal/kb"
	"repro/internal/ontology"
)

// Source is one knowledge source: an ontology and (optionally) the
// knowledge base beneath it.
type Source struct {
	Ont *ontology.Ontology
	KB  *kb.Store
}

// Stats counts the work one execution performed; the query benchmarks
// (experiment E8) report these alongside wall-clock times.
type Stats struct {
	// SourceScans is the number of per-source triple scans.
	SourceScans int
	// EdgeRows / FactRows count rows produced from ontology edges and KB
	// facts respectively.
	EdgeRows int
	FactRows int
	// JoinedRows counts rows surviving all joins (before projection).
	JoinedRows int
	// Conversions counts functional-bridge value conversions applied.
	Conversions int
	// ExpandedTerms counts articulation-term → source-term expansions.
	ExpandedTerms int
}

// Result is a query answer: variable names and value rows, deterministic
// order, duplicates removed.
type Result struct {
	Vars  []string
	Rows  [][]kb.Value
	Stats Stats
}

// Engine executes articulation-level queries against the sources by
// reformulating each triple through the semantic bridges.
type Engine struct {
	art     *articulation.Articulation
	sources map[string]*Source
	names   []string // sorted source names, articulation first
}

// NewEngine builds an engine over the articulation and its sources. The
// articulation ontology itself participates as a source (without a KB), so
// queries can ask about articulation-level structure directly.
func NewEngine(art *articulation.Articulation, sources map[string]*Source) (*Engine, error) {
	if art == nil {
		return nil, fmt.Errorf("query: nil articulation")
	}
	e := &Engine{art: art, sources: make(map[string]*Source, len(sources)+1)}
	e.sources[art.Ont.Name()] = &Source{Ont: art.Ont}
	for name, s := range sources {
		if s == nil || s.Ont == nil {
			return nil, fmt.Errorf("query: source %q has no ontology", name)
		}
		if name != s.Ont.Name() {
			return nil, fmt.Errorf("query: source registered under %q but ontology is %q", name, s.Ont.Name())
		}
		e.sources[name] = s
	}
	for name := range e.sources {
		e.names = append(e.names, name)
	}
	sort.Strings(e.names)
	return e, nil
}

type binding map[string]kb.Value

// Execute runs the query.
func (e *Engine) Execute(q Query) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Vars: q.Select}
	rows := []binding{{}}
	for _, triple := range q.Where {
		next, err := e.evalTriple(triple, &res.Stats)
		if err != nil {
			return nil, err
		}
		rows = joinBindings(rows, next)
		if len(rows) == 0 {
			break
		}
	}
	for _, f := range q.Filters {
		kept := rows[:0]
		for _, b := range rows {
			if v, bound := b[f.Var]; bound && f.Accepts(v) {
				kept = append(kept, b)
			}
		}
		rows = kept
	}
	res.Stats.JoinedRows = len(rows)

	seen := make(map[string]bool, len(rows))
	for _, b := range rows {
		out := make([]kb.Value, len(q.Select))
		ok := true
		for i, v := range q.Select {
			val, bound := b[v]
			if !bound {
				ok = false
				break
			}
			out[i] = val
		}
		if !ok {
			continue
		}
		key := formatRow(out)
		if !seen[key] {
			seen[key] = true
			res.Rows = append(res.Rows, out)
		}
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		return formatRow(res.Rows[i]) < formatRow(res.Rows[j])
	})
	return res, nil
}

func formatRow(vals []kb.Value) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = v.Format()
	}
	return strings.Join(parts, "\x00")
}

// evalTriple evaluates one triple against every source, reformulating
// constants through the bridges.
func (e *Engine) evalTriple(t Triple, stats *Stats) ([]binding, error) {
	var out []binding
	for _, name := range e.names {
		src := e.sources[name]
		stats.SourceScans++
		rows, err := e.scanSource(name, src, t, stats)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}

// scanSource evaluates the triple in one source.
func (e *Engine) scanSource(name string, src *Source, t Triple, stats *Stats) ([]binding, error) {
	subj, okS := e.expandTerm(name, t.S, stats)
	if !okS {
		return nil, nil
	}
	preds, okP := e.expandPred(name, t.P, stats)
	if !okP {
		return nil, nil
	}

	isArt := name == e.art.Ont.Name()
	var rows []binding

	// Object constants: terms expand like subjects; literals pass through
	// (with inverse conversion against each predicate at match time).
	var objTerms map[string]bool
	objIsTerm := !t.O.IsVar() && t.O.Value.IsTerm()
	if objIsTerm {
		set, ok := e.expandTerm(name, t.O, stats)
		if !ok {
			return nil, nil
		}
		objTerms = set
	}

	// Scan ontology edges.
	g := src.Ont.Graph()
	for _, edge := range g.Edges() {
		if preds != nil && !preds[edge.Label] {
			continue
		}
		sLabel, oLabel := g.Label(edge.From), g.Label(edge.To)
		if subj != nil && !subj[sLabel] {
			continue
		}
		if objIsTerm && !e.objectMatches(src, edge.Label, oLabel, objTerms) {
			continue
		}
		if !t.O.IsVar() && !t.O.Value.IsTerm() {
			continue // literal object never matches an ontology edge
		}
		b := binding{}
		if t.S.IsVar() {
			b[t.S.Var] = kb.Term(qualify(name, sLabel))
		}
		if t.P.IsVar() {
			b[t.P.Var] = kb.Term(edge.Label)
		}
		if t.O.IsVar() {
			b[t.O.Var] = kb.Term(qualify(name, oLabel))
		}
		rows = append(rows, b)
		stats.EdgeRows++
	}

	// Scan KB facts.
	if src.KB != nil && !isArt {
		for _, f := range src.KB.Facts() {
			if preds != nil && !preds[f.Predicate] {
				continue
			}
			if subj != nil && !subj[f.Subject] {
				continue
			}
			obj := f.Object
			conv := false
			if obj.IsNumber() {
				if v, applied := e.normalize(name, f.Predicate, obj); applied {
					obj = v
					conv = true
				}
			}
			if !t.O.IsVar() {
				want := t.O.Value
				switch {
				case want.IsTerm():
					if obj.Kind != kb.KindTerm {
						continue
					}
					if objTerms != nil && !e.objectMatches(src, f.Predicate, obj.Str, objTerms) {
						continue
					}
				default:
					if !obj.Equal(want) {
						continue
					}
				}
			}
			b := binding{}
			if t.S.IsVar() {
				b[t.S.Var] = kb.Term(qualify(name, f.Subject))
			}
			if t.P.IsVar() {
				b[t.P.Var] = kb.Term(f.Predicate)
			}
			if t.O.IsVar() {
				if obj.IsTerm() {
					b[t.O.Var] = kb.Term(qualify(name, obj.Str))
				} else {
					b[t.O.Var] = obj
				}
			}
			rows = append(rows, b)
			stats.FactRows++
			if conv {
				stats.Conversions++
			}
		}
	}
	return rows, nil
}

// objectMatches checks an edge object label against the expanded object
// terms, applying the source-side InstanceOf closure: an instance of a
// subclass is an instance of the class.
func (e *Engine) objectMatches(src *Source, pred, objLabel string, objTerms map[string]bool) bool {
	if objTerms[objLabel] {
		return true
	}
	if pred != ontology.InstanceOf {
		return false
	}
	for want := range objTerms {
		if src.Ont.IsA(objLabel, want) {
			return true
		}
	}
	return false
}

// expandTerm maps a triple term constant into the given source's term
// space. Variables expand to nil (wildcard, ok). A constant that cannot
// denote anything in this source yields ok=false, skipping the source.
func (e *Engine) expandTerm(srcName string, t Term, stats *Stats) (map[string]bool, bool) {
	if t.IsVar() {
		return nil, true
	}
	if !t.Value.IsTerm() {
		return nil, true // literals are handled at match time
	}
	name := t.Value.Str
	artName := e.art.Ont.Name()

	if ref, err := ontology.ParseRef(name); err == nil && ref.Qualified() {
		if _, known := e.sources[ref.Ont]; known {
			if ref.Ont == srcName {
				return map[string]bool{ref.Term: true}, true
			}
			if ref.Ont == artName && srcName != artName {
				set := e.anchorsFor(ref.Term, srcName, stats)
				return set, len(set) > 0
			}
			return nil, false
		}
		// Qualified-looking but unknown prefix: treat as a plain name
		// (labels may legitimately contain dots).
	}

	set := make(map[string]bool)
	if srcName == artName {
		if e.art.Ont.HasTerm(name) {
			set[name] = true
		}
		return set, len(set) > 0
	}
	if e.art.Ont.HasTerm(name) {
		for a := range e.anchorsFor(name, srcName, stats) {
			set[a] = true
		}
	}
	src := e.sources[srcName]
	if src.Ont.HasTerm(name) {
		set[name] = true
	}
	if src.KB != nil {
		// Instance names live in the KB, not the ontology graph.
		if fs := src.KB.Match(name, "", nil); len(fs) > 0 {
			set[name] = true
		}
	}
	return set, len(set) > 0
}

// anchorsFor returns the source terms the articulation term (and its
// articulation-level subclasses) bridge to in the given source.
func (e *Engine) anchorsFor(artTerm, srcName string, stats *Stats) map[string]bool {
	set := make(map[string]bool)
	terms := []string{artTerm}
	for _, sub := range e.art.Ont.Subclasses(artTerm) {
		terms = append(terms, sub)
	}
	for _, a := range terms {
		for _, ref := range e.art.SourceAnchors(a) {
			if ref.Ont == srcName {
				set[ref.Term] = true
				stats.ExpandedTerms++
			}
		}
	}
	return set
}

// expandPred maps the predicate constant into the source's predicate
// space: the predicate itself plus any source terms anchored to it when
// the predicate names an articulation term (attribute terms like Price
// double as predicates in KB facts).
func (e *Engine) expandPred(srcName string, t Term, stats *Stats) (map[string]bool, bool) {
	if t.IsVar() {
		return nil, true
	}
	if !t.Value.IsTerm() {
		return nil, false // a literal predicate matches nothing
	}
	name := t.Value.Str
	artName := e.art.Ont.Name()
	set := map[string]bool{name: true}
	if ref, err := ontology.ParseRef(name); err == nil && ref.Qualified() {
		if _, known := e.sources[ref.Ont]; known {
			if ref.Ont != srcName {
				return nil, false
			}
			return map[string]bool{ref.Term: true}, true
		}
	}
	if srcName != artName && e.art.Ont.HasTerm(name) {
		for a := range e.anchorsFor(name, srcName, stats) {
			set[a] = true
		}
	}
	return set, true
}

// normalize converts a numeric KB value into the articulation's metric
// space when a functional bridge (src.pred → art.X) with a registered
// conversion exists — the paper's "query processor will utilize these
// normalization functions" (§4.1).
func (e *Engine) normalize(srcName, pred string, v kb.Value) (kb.Value, bool) {
	from := ontology.MakeRef(srcName, pred)
	for _, b := range e.art.BridgesFrom(from) {
		if !b.Functional() || b.To.Ont != e.art.Ont.Name() {
			continue
		}
		if e.art.Funcs == nil || !e.art.Funcs.Has(b.FuncName()) {
			continue
		}
		out, err := e.art.Funcs.Apply(b.FuncName(), v.Num)
		if err != nil {
			continue
		}
		return kb.Number(out), true
	}
	return v, false
}

func qualify(ont, term string) string {
	return ontology.MakeRef(ont, term).String()
}

// joinBindings hash-joins two binding sets on their shared variables.
func joinBindings(left, right []binding) []binding {
	if len(left) == 0 || len(right) == 0 {
		return nil
	}
	shared := sharedVars(left, right)

	if len(shared) == 0 {
		out := make([]binding, 0, len(left)*len(right))
		for _, l := range left {
			for _, r := range right {
				out = append(out, mergeBindings(l, r))
			}
		}
		return out
	}
	index := make(map[string][]binding, len(right))
	for _, r := range right {
		index[joinKey(r, shared)] = append(index[joinKey(r, shared)], r)
	}
	var out []binding
	for _, l := range left {
		for _, r := range index[joinKey(l, shared)] {
			out = append(out, mergeBindings(l, r))
		}
	}
	return out
}

// sharedVars collects variables bound on both sides (checked across all
// rows, since the left side accumulates different triples' variables).
func sharedVars(left, right []binding) []string {
	inLeft := make(map[string]bool)
	for _, l := range left {
		for v := range l {
			inLeft[v] = true
		}
	}
	sharedSet := make(map[string]bool)
	for _, r := range right {
		for v := range r {
			if inLeft[v] {
				sharedSet[v] = true
			}
		}
	}
	shared := make([]string, 0, len(sharedSet))
	for v := range sharedSet {
		shared = append(shared, v)
	}
	sort.Strings(shared)
	return shared
}

func joinKey(b binding, vars []string) string {
	parts := make([]string, len(vars))
	for i, v := range vars {
		if val, ok := b[v]; ok {
			parts[i] = val.Format()
		} else {
			parts[i] = "\x01unbound"
		}
	}
	return strings.Join(parts, "\x00")
}

func mergeBindings(l, r binding) binding {
	out := make(binding, len(l)+len(r))
	for k, v := range l {
		out[k] = v
	}
	for k, v := range r {
		out[k] = v
	}
	return out
}
