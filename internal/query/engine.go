package query

import (
	"context"
	"encoding/binary"
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/articulation"
	"repro/internal/graph"
	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/ontology"
)

// Source is one knowledge source: an ontology and (optionally) the
// knowledge base beneath it.
type Source struct {
	Ont *ontology.Ontology
	KB  *kb.Store
}

// Stats counts the work one execution performed; the query benchmarks
// (experiment E8) report these alongside wall-clock times.
type Stats struct {
	// SourceScans is the number of per-source triple scans.
	SourceScans int
	// EdgeRows / FactRows count rows produced from ontology edges and KB
	// facts respectively.
	EdgeRows int
	FactRows int
	// JoinedRows counts rows surviving all joins (before projection).
	JoinedRows int
	// Conversions counts functional-bridge value conversions applied.
	Conversions int
	// ExpandedTerms counts articulation-term → source-term expansions.
	ExpandedTerms int
	// PlanCacheHit reports whether a cached compiled plan was reused
	// (always false on the sequential path, which does not plan).
	PlanCacheHit bool
	// ReorderedTriples counts WHERE conjuncts the planner executed off
	// their textual position (selectivity-ordered joins).
	ReorderedTriples int
	// ParallelScans counts per-source scans dispatched to the worker
	// pool (0 when the execution ran inline).
	ParallelScans int
	// Workers is the scan worker-pool size the execution used (1 =
	// inline, no goroutines).
	Workers int
	// JoinPartitions is the number of hash partitions the partitioned
	// joins ran with (the maximum across steps; 0 when every join ran
	// inline).
	JoinPartitions int
	// StreamedBatches counts tuple batches streamed into the partitioned
	// joins — from scans, and on the pipelined path also from step to
	// step (0 on inline and non-streaming executions).
	StreamedBatches int
	// PipelinedSteps counts join steps that received their probe input
	// streamed from the previous step instead of from a materialised
	// frontier — the cross-step pipeline (0 on the sequential, compat
	// and per-step-barrier executions).
	PipelinedSteps int
	// StepPartitions records each join step's hash-partition count in
	// join order (0 for the leading scan step and for inline joins; nil
	// when no join partitioned). The counts decouple from Workers via
	// Options{Partitions}.
	StepPartitions []int
	// ScansCancelled counts source scans whose dispatch was skipped
	// because a pipeline step's output was provably empty — the
	// pipelined form of the empty-join short-circuit. Timing-dependent
	// (an in-flight scan runs to completion), unlike the row counters,
	// which are deterministic.
	ScansCancelled int
	// BytesReserved is the peak accounted bytes of the execution's
	// memory budget (internal/query/mem): build tables, pending probe
	// queues, arena blocks, projection dedup sets and spill buffers.
	// Reported whether or not Options{MemoryLimit} caps it (0 on the
	// sequential and compat reference paths, which do not account).
	BytesReserved int64
	// SpilledPartitions counts join partitions that spilled tuples to
	// disk under Options{MemoryLimit} — a pending probe queue
	// overflowing to a run (build table still in memory), or the full
	// grace-hash degrade when the build table itself could not reserve.
	// Whether a given partition crosses its reservation can depend on
	// arrival interleaving, so the count is timing-influenced — but it
	// is always > 0 when the limit genuinely undercuts the build
	// footprint, and always 0 without a limit.
	SpilledPartitions int
	// SpillRuns counts temp-file runs the grace-hash joins created
	// (build + probe sides, including recursive sub-partitioning).
	SpillRuns int
	// AdaptivePartitions counts join steps whose hash-partition count
	// was derived from the planner's scan estimates (0 when
	// Options{Partitions} pins a global count or no join partitioned).
	AdaptivePartitions int
	// SpilledBytes counts bytes written to grace-hash spill runs
	// (record framing included, recursion included). Deterministic for
	// a given spilled-partition set; 0 without a memory limit.
	SpilledBytes int64
	// Batches counts the column batches the batch executor produced
	// (scan-side and stage-output batches; 0 on every other path).
	// Deterministic: batch boundaries are fixed by per-producer row
	// counts and the batch capacity, not by scheduling.
	Batches int
	// BatchRows counts the rows those batches carried before selection
	// masks dropped filtered rows — alongside Batches it gives the
	// realised batch fill (BatchRows/Batches) on the batch path.
	BatchRows int
	// SelectivityPct is the percentage of rows entering the batch
	// executor's vectorized filter passes that survived them (100 when
	// no filter applied; 0 only when every filtered row dropped).
	// Deterministic, like the row counters it derives from.
	SelectivityPct float64
	// HybridJoins counts join partitions that degraded as hybrid
	// grace-hash joins: the build prefix already reserved stayed in
	// memory and only the overflow spilled to runs. A subset of
	// SpilledPartitions, and timing-influenced the same way.
	HybridJoins int
	// ProjectionSpills counts last-stage partitions whose streaming
	// projection dedup set could not reserve and degraded to sorted
	// spill runs merged (and deduplicated) at stage end. The runs and
	// bytes count in SpillRuns/SpilledBytes.
	ProjectionSpills int
	// StepRows records each planned step's emitted row count in join
	// order, after the filters that first apply at that step — the
	// actuals EXPLAIN ANALYZE reports against the planner estimates.
	// Deterministic; nil on the Sequential and CompatJoins reference
	// paths, which do not run the slot executor's step machinery.
	StepRows []int
	// StepDurNs records each planned step's wall-clock duration in
	// nanoseconds, in join order. On the pipelined path all steps run
	// concurrently from execution start, so durations overlap rather
	// than sum. Timing-dependent by nature; nil where StepRows is nil.
	StepDurNs []int64
}

// accrue adds the order-independent work counters of s into dst. The
// parallel executor gives every scan task a private Stats and merges
// them deterministically afterwards.
func (dst *Stats) accrue(s Stats) {
	dst.EdgeRows += s.EdgeRows
	dst.FactRows += s.FactRows
	dst.Conversions += s.Conversions
	dst.ExpandedTerms += s.ExpandedTerms
	dst.StreamedBatches += s.StreamedBatches
	dst.Batches += s.Batches
	dst.BatchRows += s.BatchRows
}

// Result is a query answer: variable names and value rows, deterministic
// order, duplicates removed.
type Result struct {
	Vars  []string
	Rows  [][]kb.Value
	Stats Stats
	// Trace is the execution's recorded span tree when Options.Trace
	// enabled tracing; nil otherwise. It is settled by the time the
	// Result is returned and safe to marshal or render.
	Trace *obs.Span `json:"trace,omitempty"`
}

// EqualRows reports whether two results carry the same variables and
// cell-identical rows in the same order — the determinism contract
// between the sequential and the planned/parallel execution paths.
// Cells compare kind-strictly (sameCell), so an executor that returned
// Term("3000") where another returned Number(3000) is detected as a
// divergence even though both cells format identically.
func (r *Result) EqualRows(o *Result) bool {
	if o == nil || len(r.Vars) != len(o.Vars) || len(r.Rows) != len(o.Rows) {
		return false
	}
	for i := range r.Vars {
		if r.Vars[i] != o.Vars[i] {
			return false
		}
	}
	for i := range r.Rows {
		if len(r.Rows[i]) != len(o.Rows[i]) {
			return false
		}
		for j := range r.Rows[i] {
			if !sameCell(r.Rows[i][j], o.Rows[i][j]) {
				return false
			}
		}
	}
	return true
}

// Engine executes articulation-level queries against the sources by
// reformulating each triple through the semantic bridges.
//
// An Engine is safe for concurrent Execute/ExecuteWith/Explain calls.
// It caches compiled plans and per-source edge indexes, validated against
// the sources' mutation epochs at every query: mutating a source ontology
// or knowledge base underneath a live engine (between queries — never
// concurrently with one) is self-healing, and only the mutated sources'
// scan indexes are rebuilt. InvalidateCache remains as a forced flush.
type Engine struct {
	art     *articulation.Articulation
	sources map[string]*Source
	names   []string // sorted source names, articulation first
	opts    Options  // defaults for Execute
	id      uint64   // process-unique engine identity (EpochKey component)

	mu       sync.RWMutex
	plans    map[string]*execPlan
	edgeIdx  map[string]map[string][]graph.Edge // source → edge label → edges
	qualIdx  map[string]map[string]string       // source → term → qualified name
	factQIdx map[string][]factQual              // source → fact ordinal → qualified subject/object
	epochs   []uint64                           // per-source epochs the caches were built under, in names order
}

// factQual is one fact's pre-qualified emission values: the subject as a
// qualified term, and — when the fact's object is a term — the object
// too. Indexed scans read these by fact ordinal instead of hashing the
// subject through the qualification table once per row.
type factQual struct {
	subj kb.Value
	obj  kb.Value // KindTerm iff the fact's object is a term
}

// NewEngine builds an engine over the articulation and its sources. The
// articulation ontology itself participates as a source (without a KB), so
// queries can ask about articulation-level structure directly.
func NewEngine(art *articulation.Articulation, sources map[string]*Source) (*Engine, error) {
	return NewEngineWith(art, sources, Options{})
}

// NewEngineWith is NewEngine with default execution options for Execute.
func NewEngineWith(art *articulation.Articulation, sources map[string]*Source, opts Options) (*Engine, error) {
	if art == nil {
		return nil, fmt.Errorf("query: nil articulation")
	}
	e := &Engine{
		art:      art,
		sources:  make(map[string]*Source, len(sources)+1),
		opts:     opts,
		plans:    make(map[string]*execPlan),
		edgeIdx:  make(map[string]map[string][]graph.Edge),
		qualIdx:  make(map[string]map[string]string),
		factQIdx: make(map[string][]factQual),
	}
	e.sources[art.Ont.Name()] = &Source{Ont: art.Ont}
	for name, s := range sources {
		if s == nil || s.Ont == nil {
			return nil, fmt.Errorf("query: source %q has no ontology", name)
		}
		if name != s.Ont.Name() {
			return nil, fmt.Errorf("query: source registered under %q but ontology is %q", name, s.Ont.Name())
		}
		e.sources[name] = s
	}
	for name := range e.sources {
		e.names = append(e.names, name)
	}
	sort.Strings(e.names)
	e.id = engineSeq.Add(1)
	e.epochs = make([]uint64, len(e.names))
	e.sourceEpochs(e.epochs)
	return e, nil
}

// engineSeq hands every engine a process-unique id. EpochKey folds it
// in, so keys from different engines — including a rebuilt engine over a
// swapped-in store whose epoch count happens to coincide with its
// predecessor's — can never collide in a serving-layer cache.
var engineSeq atomic.Uint64

// sourceEpoch folds one source's ontology and KB epochs into a single
// monotonic counter: both inputs only ever grow, so any mutation moves
// the sum and equal sums guarantee an unmutated source.
func sourceEpoch(src *Source) uint64 {
	ep := src.Ont.Epoch()
	if src.KB != nil {
		ep += src.KB.Epoch()
	}
	return ep
}

// sourceEpochs fills dst (len == len(e.names)) with every source's
// current epoch in sorted source-name order.
func (e *Engine) sourceEpochs(dst []uint64) {
	for i, name := range e.names {
		dst[i] = sourceEpoch(e.sources[name])
	}
}

// EpochVector returns every source's current mutation epoch in sorted
// source-name order. Two equal vectors from the same engine guarantee
// that no source was mutated in between, so any result computed at the
// first read is still exact at the second — the property the serving
// layer's result cache keys on.
func (e *Engine) EpochVector() []uint64 {
	out := make([]uint64, len(e.names))
	e.sourceEpochs(out)
	return out
}

// EpochKey renders the engine's identity plus the current epoch vector
// as a compact opaque string — the cache-key component used by the
// serving layer. The identity prefix makes keys engine-unique: after a
// structural change rebuilds an engine (core.System drops engines when
// source wiring changes), the new engine's keys cannot collide with
// entries cached under the old one, even if the replacement sources'
// epoch counts coincide.
func (e *Engine) EpochKey() string {
	buf := make([]byte, 0, 4+2*len(e.names))
	buf = binary.AppendUvarint(buf, e.id)
	for _, name := range e.names {
		buf = binary.AppendUvarint(buf, sourceEpoch(e.sources[name]))
	}
	return string(buf)
}

// validateEpochs compares every source's current epoch against the
// snapshot the caches were built under and heals stale state: a changed
// source drops exactly its own edge/qual indexes, and any change flushes
// the plan cache wholesale (compilation consults every source — term
// expansion probes KB subjects, estimates read index cardinalities, and
// a mutation can even un-skip a previously impossible scan — so no plan
// can be proven unaffected). Runs at query/explain entry, so direct
// NewEngine users need no InvalidateCache call after mutating a source.
func (e *Engine) validateEpochs() {
	cur := make([]uint64, len(e.names))
	e.sourceEpochs(cur)
	e.mu.RLock()
	same := slices.Equal(e.epochs, cur)
	e.mu.RUnlock()
	if same {
		return
	}
	e.mu.Lock()
	if !slices.Equal(e.epochs, cur) {
		for i, name := range e.names {
			if e.epochs[i] != cur[i] {
				delete(e.edgeIdx, name)
				delete(e.qualIdx, name)
				delete(e.factQIdx, name)
			}
		}
		e.plans = make(map[string]*execPlan)
		copy(e.epochs, cur)
	}
	e.mu.Unlock()
}

type binding map[string]kb.Value

// Execute runs the query with the engine's default options (the planned,
// parallel path unless the engine was built with Options{Sequential: true}).
func (e *Engine) Execute(q Query) (*Result, error) {
	return e.ExecuteWith(q, e.opts)
}

// ExecuteWith runs the query with explicit execution options. Results are
// byte-identical across option combinations; only Stats and wall-clock
// time differ.
func (e *Engine) ExecuteWith(q Query, opts Options) (*Result, error) {
	return e.ExecuteCtx(context.Background(), q, opts)
}

// ExecuteCtx is ExecuteWith under a context: cancellation or deadline
// expiry stops further scan dispatch (scans already running finish — a
// single scan is never interrupted mid-walk) and the call returns
// ctx.Err() instead of a partial result. The serving layer threads
// per-request deadlines through here.
func (e *Engine) ExecuteCtx(ctx context.Context, q Query, opts Options) (*Result, error) {
	// Tracing: re-root the option's parent span on this execution so
	// every child recorded below hangs off one "query.execute" span.
	// opts is a value copy, so overwriting Trace is local to this call.
	var root *obs.Span
	if opts.Trace != nil {
		root = opts.Trace.Child("query.execute")
		root.SetAttr("query", q.String())
		opts.Trace = root
	}
	var vs *obs.Span
	if root != nil {
		vs = root.Child("validate")
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.validateEpochs()
	vs.End()
	var res *Result
	var err error
	if opts.Sequential {
		res, err = e.executeSequential(ctx, q)
	} else {
		res, err = e.executePlanned(ctx, q, opts)
	}
	if err != nil {
		return nil, err
	}
	if root != nil {
		root.SetInt("rows", int64(len(res.Rows)))
		root.End()
		res.Trace = root
	}
	return res, nil
}

// executeSequential is the reference execution path: textual join order,
// unindexed scans, no plan cache, no parallelism. The determinism tests
// and the E11 benchmark compare the planned path against it.
func (e *Engine) executeSequential(ctx context.Context, q Query) (*Result, error) {
	res := &Result{Vars: q.Select}
	res.Stats.Workers = 1
	rows := []binding{{}}
	for _, triple := range q.Where {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		next, err := e.evalTriple(triple, &res.Stats)
		if err != nil {
			return nil, err
		}
		rows = joinBindings(rows, next)
		if len(rows) == 0 {
			break
		}
	}
	for _, f := range q.Filters {
		kept := rows[:0]
		for _, b := range rows {
			if v, bound := b[f.Var]; bound && f.Accepts(v) {
				kept = append(kept, b)
			}
		}
		rows = kept
	}
	res.Stats.JoinedRows = len(rows)
	e.project(res, rows, q)
	return res, nil
}

// project dedups the surviving bindings onto the SELECT variables and
// sorts the rows into the deterministic output order shared by every
// execution path.
func (e *Engine) project(res *Result, rows []binding, q Query) {
	keys := make(map[string]bool, len(rows))
	var keep []keyedRow
	var buf []byte
	for _, b := range rows {
		out := make([]kb.Value, len(q.Select))
		ok := true
		for i, v := range q.Select {
			val, bound := b[v]
			if !bound {
				ok = false
				break
			}
			out[i] = val
		}
		if !ok {
			continue
		}
		buf = appendRowKey(buf[:0], out)
		if key := string(buf); !keys[key] {
			keys[key] = true
			keep = append(keep, keyedRow{key, out})
		}
	}
	res.Rows = sortKeyedRows(keep)
}

// keyedRow pairs an output row with its encoded sort/dedup key
// (appendRowKey), so the final sort compares precomputed keys instead of
// re-encoding both rows on every comparison.
type keyedRow struct {
	key string
	row []kb.Value
}

// sortKeyedRows orders deduplicated rows by their row key — the
// deterministic output order shared by every execution path: cell-wise,
// kind-major, lexicographic for terms and strings, numeric for numbers.
// Keys are unique after dedup, so the order is total (which also makes
// the unstable slices sort deterministic — no reflection-based swaps).
func sortKeyedRows(keep []keyedRow) [][]kb.Value {
	slices.SortFunc(keep, func(a, b keyedRow) int { return strings.Compare(a.key, b.key) })
	rows := make([][]kb.Value, len(keep))
	for i := range keep {
		rows[i] = keep[i].row
	}
	return rows
}

// evalTriple evaluates one triple against every source, reformulating
// constants through the bridges.
func (e *Engine) evalTriple(t Triple, stats *Stats) ([]binding, error) {
	var out []binding
	for _, name := range e.names {
		src := e.sources[name]
		stats.SourceScans++
		rows, err := e.scanSource(name, src, t, stats)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}

// scanView is the reformulation of one triple for one source: the
// constant expansions the scan matches against. A skipped view means the
// triple cannot denote anything in the source.
type scanView struct {
	subj     map[string]bool // nil = unconstrained (variable subject)
	preds    map[string]bool
	objTerms map[string]bool // set when the object is a constant term
	objTerm  bool
	skip     bool
	// predList / subjList are the sorted sets, precomputed by the
	// planner so indexed scans need not re-sort per execution.
	predList []string
	subjList []string
}

// compileView expands the triple's constants into the source's term
// space — the per-source reformulation step, shared by the sequential
// scan, the planner and Explain.
func (e *Engine) compileView(name string, t Triple, stats *Stats) scanView {
	subj, okS := e.expandTerm(name, t.S, stats)
	if !okS {
		return scanView{skip: true}
	}
	preds, okP := e.expandPred(name, t.P, stats)
	if !okP {
		return scanView{skip: true}
	}
	v := scanView{subj: subj, preds: preds}
	// Object constants: terms expand like subjects; literals pass through
	// (with inverse conversion against each predicate at match time).
	if !t.O.IsVar() && t.O.Value.IsTerm() {
		set, ok := e.expandTerm(name, t.O, stats)
		if !ok {
			return scanView{skip: true}
		}
		v.objTerms = set
		v.objTerm = true
	}
	return v
}

// scanSource evaluates the triple in one source (sequential path:
// expansion and full scan in one step).
func (e *Engine) scanSource(name string, src *Source, t Triple, stats *Stats) ([]binding, error) {
	v := e.compileView(name, t, stats)
	return e.scanWithView(name, src, t, v, stats, false), nil
}

// scanWithView evaluates the triple in one source against a precompiled
// view, materialising binding-map rows — the row representation of the
// sequential reference path and the PR 1 compat executor. The slot-based
// executor consumes scanMatch directly with a tuple emitter instead.
func (e *Engine) scanWithView(name string, src *Source, t Triple, v scanView, stats *Stats, indexed bool) []binding {
	// bindVar records a variable binding, enforcing equality when the
	// triple repeats a variable (e.g. "?x Likes ?x").
	bindVar := func(b binding, t Term, val kb.Value) bool {
		if !t.IsVar() {
			return true
		}
		if old, ok := b[t.Var]; ok {
			return old.Equal(val)
		}
		b[t.Var] = val
		return true
	}
	var rows []binding
	e.scanMatch(name, src, t, v, stats, indexed, func(s, p, o kb.Value) bool {
		b := binding{}
		if !bindVar(b, t.S, s) || !bindVar(b, t.P, p) || !bindVar(b, t.O, o) {
			return false
		}
		rows = append(rows, b)
		return true
	})
	return rows
}

// scanMatch is the matching core shared by every execution path: it walks
// one source's ontology edges and KB facts against a precompiled view and
// calls emit(subject, predicate, object) for each candidate row. emit
// reports whether the row was accepted (a repeated triple variable may
// reject it); row and conversion counters only count accepted rows.
//
// With indexed=true the scan walks the per-source edge-label index and
// the KB's predicate/subject indexes instead of every edge and fact; both
// modes produce the same row set (order may differ; the final projection
// sort normalises it).
func (e *Engine) scanMatch(name string, src *Source, t Triple, v scanView, stats *Stats, indexed bool, emit func(s, p, o kb.Value) bool) {
	if v.skip {
		return
	}
	isArt := name == e.art.Ont.Name()

	// Indexed scans qualify emitted terms through the per-source table
	// (one string per distinct term, ever) instead of concatenating a
	// fresh "source.term" string per row. The sequential reference keeps
	// the seed's per-row concatenation.
	var qt map[string]string
	if indexed {
		qt = e.qualTable(name)
	}
	qual := func(term string) kb.Value {
		if q, ok := qt[term]; ok {
			return kb.Value{Kind: kb.KindTerm, Str: q}
		}
		return kb.Term(qualify(name, term))
	}

	// Scan ontology edges.
	g := src.Ont.Graph()
	litObj := !t.O.IsVar() && !t.O.Value.IsTerm()
	matchEdge := func(edge graph.Edge) {
		if v.preds != nil && !v.preds[edge.Label] {
			return
		}
		sLabel, oLabel := g.Label(edge.From), g.Label(edge.To)
		if v.subj != nil && !v.subj[sLabel] {
			return
		}
		if v.objTerm && !e.objectMatches(src, edge.Label, oLabel, v.objTerms) {
			return
		}
		if litObj {
			return // literal object never matches an ontology edge
		}
		if emit(qual(sLabel), kb.Term(edge.Label), qual(oLabel)) {
			stats.EdgeRows++
		}
	}
	if indexed && v.preds != nil {
		idx := e.edgeIndex(name)
		for _, p := range v.predList {
			for _, edge := range idx[p] {
				matchEdge(edge)
			}
		}
	} else {
		for _, edge := range g.Edges() {
			matchEdge(edge)
		}
	}

	// Scan KB facts. matchFactQ takes the fact's pre-qualified subject
	// and (term-)object values when the caller has them — the indexed
	// predicate path reads both from the fact-ordinal cache, skipping
	// the per-fact qualification-table probe entirely. That path also
	// hoists the per-predicate work out of the fact loop: the predicate
	// membership probe (every fact under byPred[p] carries p) and the
	// functional-bridge resolution (nf, the conversion candidates for
	// this predicate, resolved once instead of re-walking the bridge
	// index per fact).
	if src.KB != nil && !isArt {
		matchFactQ := func(f kb.Fact, subjQ, objQ kb.Value, haveQ bool, nf []string, hoisted bool) bool {
			if !hoisted && v.preds != nil && !v.preds[f.Predicate] {
				return true
			}
			if v.subj != nil && !v.subj[f.Subject] {
				return true
			}
			obj := f.Object
			conv := false
			if obj.IsNumber() {
				if !hoisted {
					nf = e.normFuncNames(name, f.Predicate)
				}
				for _, fname := range nf {
					out, err := e.art.Funcs.Apply(fname, obj.Num)
					if err != nil {
						continue
					}
					obj = kb.Number(out)
					conv = true
					break
				}
			}
			if !t.O.IsVar() {
				want := t.O.Value
				switch {
				case want.IsTerm():
					if obj.Kind != kb.KindTerm {
						return true
					}
					if v.objTerms != nil && !e.objectMatches(src, f.Predicate, obj.Str, v.objTerms) {
						return true
					}
				default:
					if !obj.Equal(want) {
						return true
					}
				}
			}
			objVal := obj
			if obj.IsTerm() {
				if haveQ {
					objVal = objQ
				} else {
					objVal = qual(obj.Str)
				}
			}
			subjVal := subjQ
			if !haveQ {
				subjVal = qual(f.Subject)
			}
			if emit(subjVal, kb.Term(f.Predicate), objVal) {
				stats.FactRows++
				if conv {
					stats.Conversions++
				}
			}
			return true
		}
		matchFact := func(f kb.Fact) bool {
			return matchFactQ(f, kb.Value{}, kb.Value{}, false, nil, false)
		}
		switch {
		case indexed && v.preds != nil:
			fq := e.factQuals(name)
			for _, p := range v.predList {
				nf := e.normFuncNames(name, p)
				src.KB.ForEachByPredicateIndexed(p, func(i int, f kb.Fact) bool {
					if i < len(fq) {
						return matchFactQ(f, fq[i].subj, fq[i].obj, true, nf, true)
					}
					return matchFactQ(f, kb.Value{}, kb.Value{}, false, nf, true)
				})
			}
		case indexed && v.subj != nil:
			for _, s := range v.subjList {
				src.KB.ForEachBySubject(s, matchFact)
			}
		default:
			// Both the indexed fallback and the sequential reference
			// stream facts in insertion order: Facts() would copy and
			// re-sort the whole store per (triple, source) scan, and the
			// final projection sort already normalises row order.
			src.KB.ForEach(matchFact)
		}
	}
}

// objectMatches checks an edge object label against the expanded object
// terms, applying the source-side InstanceOf closure: an instance of a
// subclass is an instance of the class.
func (e *Engine) objectMatches(src *Source, pred, objLabel string, objTerms map[string]bool) bool {
	if objTerms[objLabel] {
		return true
	}
	if pred != ontology.InstanceOf {
		return false
	}
	for want := range objTerms {
		if src.Ont.IsA(objLabel, want) {
			return true
		}
	}
	return false
}

// expandTerm maps a triple term constant into the given source's term
// space. Variables expand to nil (wildcard, ok). A constant that cannot
// denote anything in this source yields ok=false, skipping the source.
func (e *Engine) expandTerm(srcName string, t Term, stats *Stats) (map[string]bool, bool) {
	if t.IsVar() {
		return nil, true
	}
	if !t.Value.IsTerm() {
		return nil, true // literals are handled at match time
	}
	name := t.Value.Str
	artName := e.art.Ont.Name()

	if ref, err := ontology.ParseRef(name); err == nil && ref.Qualified() {
		if _, known := e.sources[ref.Ont]; known {
			if ref.Ont == srcName {
				return map[string]bool{ref.Term: true}, true
			}
			if ref.Ont == artName && srcName != artName {
				set := e.anchorsFor(ref.Term, srcName, stats)
				return set, len(set) > 0
			}
			return nil, false
		}
		// Qualified-looking but unknown prefix: treat as a plain name
		// (labels may legitimately contain dots).
	}

	set := make(map[string]bool)
	if srcName == artName {
		if e.art.Ont.HasTerm(name) {
			set[name] = true
		}
		return set, len(set) > 0
	}
	if e.art.Ont.HasTerm(name) {
		for a := range e.anchorsFor(name, srcName, stats) {
			set[a] = true
		}
	}
	src := e.sources[srcName]
	if src.Ont.HasTerm(name) {
		set[name] = true
	}
	if src.KB != nil {
		// Instance names live in the KB, not the ontology graph.
		if fs := src.KB.Match(name, "", nil); len(fs) > 0 {
			set[name] = true
		}
	}
	return set, len(set) > 0
}

// anchorsFor returns the source terms the articulation term (and its
// articulation-level subclasses) bridge to in the given source.
func (e *Engine) anchorsFor(artTerm, srcName string, stats *Stats) map[string]bool {
	set := make(map[string]bool)
	terms := []string{artTerm}
	for _, sub := range e.art.Ont.Subclasses(artTerm) {
		terms = append(terms, sub)
	}
	for _, a := range terms {
		for _, ref := range e.art.SourceAnchors(a) {
			if ref.Ont == srcName {
				set[ref.Term] = true
				stats.ExpandedTerms++
			}
		}
	}
	return set
}

// expandPred maps the predicate constant into the source's predicate
// space: the predicate itself plus any source terms anchored to it when
// the predicate names an articulation term (attribute terms like Price
// double as predicates in KB facts).
func (e *Engine) expandPred(srcName string, t Term, stats *Stats) (map[string]bool, bool) {
	if t.IsVar() {
		return nil, true
	}
	if !t.Value.IsTerm() {
		return nil, false // a literal predicate matches nothing
	}
	name := t.Value.Str
	artName := e.art.Ont.Name()
	set := map[string]bool{name: true}
	if ref, err := ontology.ParseRef(name); err == nil && ref.Qualified() {
		if _, known := e.sources[ref.Ont]; known {
			if ref.Ont != srcName {
				return nil, false
			}
			return map[string]bool{ref.Term: true}, true
		}
	}
	if srcName != artName && e.art.Ont.HasTerm(name) {
		for a := range e.anchorsFor(name, srcName, stats) {
			set[a] = true
		}
	}
	return set, true
}

// normFuncNames resolves the conversion candidates for one source
// predicate: the registered function names of its functional bridges
// into the articulation, in bridge order. The resolution is static per
// (source, predicate) — only Apply depends on the value — so indexed
// scans hoist it out of their per-fact loop.
func (e *Engine) normFuncNames(srcName, pred string) []string {
	if e.art.Funcs == nil {
		return nil
	}
	from := ontology.MakeRef(srcName, pred)
	var names []string
	for _, b := range e.art.BridgesFrom(from) {
		if !b.Functional() || b.To.Ont != e.art.Ont.Name() {
			continue
		}
		if !e.art.Funcs.Has(b.FuncName()) {
			continue
		}
		names = append(names, b.FuncName())
	}
	return names
}

// normalize converts a numeric KB value into the articulation's metric
// space when a functional bridge (src.pred → art.X) with a registered
// conversion exists — the paper's "query processor will utilize these
// normalization functions" (§4.1). The first candidate whose conversion
// applies cleanly wins.
func (e *Engine) normalize(srcName, pred string, v kb.Value) (kb.Value, bool) {
	for _, fname := range e.normFuncNames(srcName, pred) {
		out, err := e.art.Funcs.Apply(fname, v.Num)
		if err != nil {
			continue
		}
		return kb.Number(out), true
	}
	return v, false
}

func qualify(ont, term string) string {
	return ontology.MakeRef(ont, term).String()
}

// joinBindings hash-joins two binding sets on their shared variables.
func joinBindings(left, right []binding) []binding {
	if len(left) == 0 || len(right) == 0 {
		return nil
	}
	shared := sharedVars(left, right)

	if len(shared) == 0 {
		out := make([]binding, 0, len(left)*len(right))
		for _, l := range left {
			for _, r := range right {
				out = append(out, mergeBindings(l, r))
			}
		}
		return out
	}
	index := make(map[string][]binding, len(right))
	for _, r := range right {
		index[joinKey(r, shared)] = append(index[joinKey(r, shared)], r)
	}
	var out []binding
	for _, l := range left {
		for _, r := range index[joinKey(l, shared)] {
			out = append(out, mergeBindings(l, r))
		}
	}
	return out
}

// sharedVars collects variables bound on both sides (checked across all
// rows, since the left side accumulates different triples' variables).
func sharedVars(left, right []binding) []string {
	inLeft := make(map[string]bool)
	for _, l := range left {
		for v := range l {
			inLeft[v] = true
		}
	}
	sharedSet := make(map[string]bool)
	for _, r := range right {
		for v := range r {
			if inLeft[v] {
				sharedSet[v] = true
			}
		}
	}
	shared := make([]string, 0, len(sharedSet))
	for v := range sharedSet {
		shared = append(shared, v)
	}
	sort.Strings(shared)
	return shared
}

// joinKey encodes a row's join key on the shared variables with the same
// collision-free encoding the tuple executor hashes on (appendValueKey):
// kind-strict and framing-safe, so a term literally named "\x01unbound"
// or payloads containing '\x00' cannot falsely join (the seed joined
// Format() strings with raw separators and an in-band unbound sentinel).
// All three executors therefore agree on join equality exactly.
func joinKey(b binding, vars []string) string {
	var buf []byte
	for _, v := range vars {
		if val, ok := b[v]; ok {
			buf = appendValueKey(buf, val)
		} else {
			// Out-of-band unbound marker. 0x03 starts no value encoding
			// (kind tags are 0..2) and cannot be manufactured inside one
			// either: a 0x00 in a key is always an escape start (0x00
			// 0xff) or a terminator followed by a field start, so no
			// value bytes can imitate a terminator+marker pair. (0xff
			// would be ambiguous: terminator+0xff reads as the escape.)
			buf = append(buf, 0x03)
		}
	}
	return string(buf)
}

func mergeBindings(l, r binding) binding {
	out := make(binding, len(l)+len(r))
	for k, v := range l {
		out[k] = v
	}
	for k, v := range r {
		out[k] = v
	}
	return out
}
