package query

import (
	"strings"
	"testing"
)

func TestExplainShowsExpansions(t *testing.T) {
	e := paperEngine(t)
	plan, err := e.Explain(MustParse("SELECT ?x WHERE ?x InstanceOf Vehicle"))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Triples) != 1 {
		t.Fatalf("plan triples = %d", len(plan.Triples))
	}
	var carrierScan *TripleScan
	for i := range plan.Triples[0].Scans {
		if plan.Triples[0].Scans[i].Source == "carrier" {
			carrierScan = &plan.Triples[0].Scans[i]
		}
	}
	if carrierScan == nil || carrierScan.Skipped {
		t.Fatalf("carrier scan missing/pruned: %+v", plan.Triples[0].Scans)
	}
	// Vehicle expands into carrier terms through the bridges.
	found := false
	for _, o := range carrierScan.Objects {
		if o == "Cars" || o == "PassengerCar" {
			found = true
		}
	}
	if !found {
		t.Fatalf("object expansion missing: %v", carrierScan.Objects)
	}
	// Variable subject is unconstrained.
	if len(carrierScan.Subjects) != 0 {
		t.Fatalf("variable subject constrained: %v", carrierScan.Subjects)
	}
}

func TestExplainPrunesImpossibleSources(t *testing.T) {
	e := paperEngine(t)
	plan, err := e.Explain(MustParse("SELECT ?x WHERE ?x InstanceOf carrier.SUV"))
	if err != nil {
		t.Fatal(err)
	}
	pruned := 0
	for _, sc := range plan.Triples[0].Scans {
		if sc.Skipped {
			pruned++
		}
	}
	// factory and transport cannot denote carrier.SUV.
	if pruned != 2 {
		t.Fatalf("pruned = %d, want 2: %+v", pruned, plan.Triples[0].Scans)
	}
}

func TestExplainString(t *testing.T) {
	e := paperEngine(t)
	plan, err := e.Explain(MustParse("SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p"))
	if err != nil {
		t.Fatal(err)
	}
	out := plan.String()
	for _, want := range []string{"plan for", "triple ?x InstanceOf Vehicle", "carrier", "pruned"} {
		if !strings.Contains(out, want) && want != "pruned" {
			t.Fatalf("plan output missing %q:\n%s", want, out)
		}
	}
	// The refreshed output names the slot assignment and the join wiring.
	for _, want := range []string{"slots: ?x=s0 ?p=s1", "exec: slot tuples", "join key"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plan output missing %q:\n%s", want, out)
		}
	}
	if plan.String() != out {
		t.Fatalf("plan rendering unstable")
	}
	// The exec line matches the pool the engine's options resolve to:
	// partition/pipeline wording only when the pool is real.
	pooled := *plan
	pooled.Workers = 4
	pooled.Partitions = 4
	if !strings.Contains(pooled.String(), "hash-partitioned 4 ways across 4 workers") {
		t.Fatalf("pooled plan missing partition wording:\n%s", pooled.String())
	}
	inline := *plan
	inline.Workers = 1
	if !strings.Contains(inline.String(), "inline (single worker)") {
		t.Fatalf("inline plan missing inline wording:\n%s", inline.String())
	}
}

// TestExplainShowsPipelineEdges checks that an engine defaulting to a
// real pool explains the cross-step pipeline: the exec header names the
// pipeline and every non-final step carries a streams-into edge with the
// downstream key variables. The chain must be deeper than the shallow
// fast path's gate (two keyed joins) to pipeline on a tiny world.
func TestExplainShowsPipelineEdges(t *testing.T) {
	res, carrier, factory := paperPieces(t)
	e, err := NewEngineWith(res.Art, map[string]*Source{
		"carrier": {Ont: carrier},
		"factory": {Ont: factory},
	}, Options{Workers: 4, Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.Explain(MustParse(
		"SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p . ?x ?r ?y . ?y ?r2 ?z"))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Pipelined || plan.Partitions != 3 {
		t.Fatalf("pipelined=%v partitions=%d, want pipelined with 3 partitions", plan.Pipelined, plan.Partitions)
	}
	if got := plan.Triples[0].StreamsInto; got != 1 {
		t.Fatalf("first step StreamsInto = %d, want 1", got)
	}
	if kv := plan.Triples[0].StreamKeyVars; len(kv) == 0 {
		t.Fatalf("first step has no StreamKeyVars")
	}
	if got := plan.Triples[len(plan.Triples)-1].StreamsInto; got != -1 {
		t.Fatalf("last step StreamsInto = %d, want -1", got)
	}
	out := plan.String()
	for _, want := range []string{"cross-step pipeline", "hash-partitioned 3 ways", "~> streams into step 2 on {"} {
		if !strings.Contains(out, want) {
			t.Fatalf("pipelined plan output missing %q:\n%s", want, out)
		}
	}

	// A shallow chain (one keyed join) over the same tiny world falls
	// back to the per-step executor: the planner's scan estimate is far
	// below the pipeline's break-even volume.
	shallow, err := e.Explain(MustParse("SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p"))
	if err != nil {
		t.Fatal(err)
	}
	if shallow.Pipelined || shallow.Triples[0].StreamsInto != -1 {
		t.Fatalf("shallow low-estimate chain should not pipeline: %+v", shallow.Triples[0])
	}

	// A single-worker engine over the same plan shape stays inline.
	seq, err := NewEngineWith(res.Art, map[string]*Source{
		"carrier": {Ont: carrier},
		"factory": {Ont: factory},
	}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := seq.Explain(MustParse("SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p"))
	if err != nil {
		t.Fatal(err)
	}
	if p2.Pipelined || p2.Triples[0].StreamsInto != -1 {
		t.Fatalf("inline plan claims pipelining: %+v", p2.Triples[0])
	}
}

// TestExplainShowsSlotsAndJoinOrder covers the execution wiring the
// slot-based engine added to Plan: the variable→slot table, the join
// order with textual positions, and the per-step join-key variables.
func TestExplainShowsSlotsAndJoinOrder(t *testing.T) {
	e := paperEngine(t)
	plan, err := e.Explain(MustParse("SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p"))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Slots) != 2 || plan.Slots[0] != "x" || plan.Slots[1] != "p" {
		t.Fatalf("slots = %v, want [x p]", plan.Slots)
	}
	if plan.Workers < 1 {
		t.Fatalf("workers = %d", plan.Workers)
	}
	if len(plan.Triples) != 2 {
		t.Fatalf("triples = %d", len(plan.Triples))
	}
	if kv := plan.Triples[0].KeyVars; len(kv) != 0 {
		t.Errorf("first step has join key %v", kv)
	}
	if kv := plan.Triples[1].KeyVars; len(kv) != 1 || kv[0] != "x" {
		t.Errorf("second step join key = %v, want [x]", kv)
	}
	// Execution order is recorded against textual position.
	seen := map[int]bool{}
	for _, tp := range plan.Triples {
		seen[tp.Index] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("textual indices missing: %+v", plan.Triples)
	}
}

func TestExplainInvalidQuery(t *testing.T) {
	e := paperEngine(t)
	if _, err := e.Explain(Query{}); err == nil {
		t.Fatalf("invalid query explained")
	}
}
