package query

import (
	"strings"
	"testing"
)

func TestExplainShowsExpansions(t *testing.T) {
	e := paperEngine(t)
	plan, err := e.Explain(MustParse("SELECT ?x WHERE ?x InstanceOf Vehicle"))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Triples) != 1 {
		t.Fatalf("plan triples = %d", len(plan.Triples))
	}
	var carrierScan *TripleScan
	for i := range plan.Triples[0].Scans {
		if plan.Triples[0].Scans[i].Source == "carrier" {
			carrierScan = &plan.Triples[0].Scans[i]
		}
	}
	if carrierScan == nil || carrierScan.Skipped {
		t.Fatalf("carrier scan missing/pruned: %+v", plan.Triples[0].Scans)
	}
	// Vehicle expands into carrier terms through the bridges.
	found := false
	for _, o := range carrierScan.Objects {
		if o == "Cars" || o == "PassengerCar" {
			found = true
		}
	}
	if !found {
		t.Fatalf("object expansion missing: %v", carrierScan.Objects)
	}
	// Variable subject is unconstrained.
	if len(carrierScan.Subjects) != 0 {
		t.Fatalf("variable subject constrained: %v", carrierScan.Subjects)
	}
}

func TestExplainPrunesImpossibleSources(t *testing.T) {
	e := paperEngine(t)
	plan, err := e.Explain(MustParse("SELECT ?x WHERE ?x InstanceOf carrier.SUV"))
	if err != nil {
		t.Fatal(err)
	}
	pruned := 0
	for _, sc := range plan.Triples[0].Scans {
		if sc.Skipped {
			pruned++
		}
	}
	// factory and transport cannot denote carrier.SUV.
	if pruned != 2 {
		t.Fatalf("pruned = %d, want 2: %+v", pruned, plan.Triples[0].Scans)
	}
}

func TestExplainString(t *testing.T) {
	e := paperEngine(t)
	plan, err := e.Explain(MustParse("SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p"))
	if err != nil {
		t.Fatal(err)
	}
	out := plan.String()
	for _, want := range []string{"plan for", "triple ?x InstanceOf Vehicle", "carrier", "pruned"} {
		if !strings.Contains(out, want) && want != "pruned" {
			t.Fatalf("plan output missing %q:\n%s", want, out)
		}
	}
	if plan.String() != out {
		t.Fatalf("plan rendering unstable")
	}
}

func TestExplainInvalidQuery(t *testing.T) {
	e := paperEngine(t)
	if _, err := e.Explain(Query{}); err == nil {
		t.Fatalf("invalid query explained")
	}
}
