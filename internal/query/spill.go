package query

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/kb"
	"repro/internal/query/mem"
)

// This file is the grace-hash spilling machinery of the memory-governed
// pipeline (pipeline.go). A join partition whose build table (or pending
// probe queue) cannot reserve its next batch from the query Budget
// degrades here: build and probe tuples are written to temp-file runs and
// the join completes partition-by-partition within budget — recursively
// sub-partitioned by further hash bits when a run still does not fit.
//
// The spill wire format reuses the framing-safe rowkey encoding
// (appendValueKey/decodeValueKey) per slot, so spilled tuples round-trip
// kind-strictly: a spilled row can never collapse with, or diverge from,
// its in-memory twin — the tiny-budget determinism suite forces every
// join to spill and still demands byte-identical rows.

const (
	// valueBytes is the accounting cost of one kb.Value slot (struct
	// size; string payloads are shared, not copied, so they are not
	// charged per tuple).
	valueBytes = 32
	// spillFanout is how many hash sub-partitions one recursion level
	// splits a too-big run into.
	spillFanout = 8
	// maxSpillLevel bounds the recursion; a run that still dwarfs its
	// reservation after maxSpillLevel splits (every tuple sharing one
	// join key, say) falls to the chunked join, which degrades
	// gracefully (more probe passes) instead of dividing further.
	maxSpillLevel = 6
	// minSplitTuples is the smallest build run worth re-partitioning:
	// below it the chunked join handles the whole run — 16 more runs
	// cannot beat one or two probe passes, and the floor keeps a
	// degenerate cap from exploding into thousands of
	// single-digit-tuple runs.
	minSplitTuples = 256
	// minChunkTuples floors a chunk's size even when the budget is
	// exhausted (accounted past the limit): each chunk costs a full
	// probe-run pass, so unbounded shrinking would turn a crowded (or
	// adversarially tiny) cap into O(build × probe) disk replays. The
	// floor caps the pass count at build.tuples/minChunkTuples for a
	// ~30KB bounded overshoot per finishing partition.
	minChunkTuples = 128
	// spillBufBytes is the buffered-writer size per open run, charged as
	// fixed working state.
	spillBufBytes = 8 << 10
	// spillDecodeBlock is the arena block size used when decoding run
	// tuples back into memory (small: decode arenas live inside a
	// budget-bounded build attempt).
	spillDecodeBlock = 32
)

// tupleCost is the accounting cost of retaining one width-slot tuple.
func tupleCost(width int) int64 {
	return 24 + int64(width)*valueBytes
}

// spillSub routes a join-key hash to a recursion-level sub-partition,
// consuming hash bits disjoint from the partition routing (h % parts
// uses the low bits; levels walk upward from bit 16).
func spillSub(h uint64, level int) int {
	return int((h >> (16 + 3*uint(level))) & (spillFanout - 1))
}

// spillRun is one temp-file run of (hash, tuple) records. The file is
// unlinked at creation, so runs can never outlive the process whatever
// happens; records are length-prefixed, with the tuple slots encoded by
// appendValueKey — the same kind-tagged framing the joins key on.
type spillRun struct {
	f      *os.File
	w      *bufio.Writer
	bud    *mem.Budget
	tuples int
	closed bool
	buf    []byte // reusable record scratch
	acct   *int64 // optional byte accumulator (Stats.SpilledBytes)
}

// newSpillRun creates an anonymous run in dir ("" = os.TempDir),
// charging its write buffer to the budget as fixed working state.
func newSpillRun(dir string, bud *mem.Budget) (*spillRun, error) {
	f, err := os.CreateTemp(dir, "onion-spill-*")
	if err != nil {
		return nil, fmt.Errorf("query: spill: %w", err)
	}
	// The fd keeps the run alive; the name never needs to.
	os.Remove(f.Name())
	bud.MustReserve(spillBufBytes)
	return &spillRun{f: f, w: bufio.NewWriterSize(f, spillBufBytes), bud: bud}, nil
}

// add appends one (hash, tuple) record.
func (r *spillRun) add(t tuple, h uint64) error {
	rec := r.buf[:0]
	rec = binary.BigEndian.AppendUint64(rec, h)
	for _, v := range t {
		rec = appendValueKey(rec, v)
	}
	r.buf = rec
	var lenb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenb[:], uint64(len(rec)))
	if _, err := r.w.Write(lenb[:n]); err != nil {
		return fmt.Errorf("query: spill write: %w", err)
	}
	if _, err := r.w.Write(rec); err != nil {
		return fmt.Errorf("query: spill write: %w", err)
	}
	if r.acct != nil {
		*r.acct += int64(n + len(rec))
	}
	r.tuples++
	return nil
}

// spillInternCap bounds a reader's decode intern table; past it, fields
// decode without interning (correct either way — the table only saves
// allocations).
const spillInternCap = 8192

// spillReader streams a run's records back in write order. One reader
// at a time per run (it owns the file offset). The intern table reuses
// decoded values for repeated field encodings — run payloads repeat
// heavily (every join key appears once per match), and interning turns
// the dominant decode cost (string allocation plus the GC traffic it
// feeds) into a map probe on the raw bytes.
type spillReader struct {
	run       *spillRun
	br        *bufio.Reader
	remaining int
	rec       []byte
	intern    map[string]kb.Value
}

// reader flushes the run and opens a sequential reader at its start.
func (r *spillRun) reader() (*spillReader, error) {
	if err := r.w.Flush(); err != nil {
		return nil, fmt.Errorf("query: spill flush: %w", err)
	}
	if _, err := r.f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("query: spill seek: %w", err)
	}
	return &spillReader{run: r, br: bufio.NewReaderSize(r.f, spillBufBytes),
		remaining: r.tuples, intern: make(map[string]kb.Value)}, nil
}

// next decodes the reader's next record into arena memory; ok is false
// at the end of the run. The returned tuple is owned by the caller.
func (sr *spillReader) next(width int, arena *tupleArena) (tuple, uint64, bool, error) {
	if sr.remaining == 0 {
		return nil, 0, false, nil
	}
	sr.remaining--
	n, err := binary.ReadUvarint(sr.br)
	if err != nil {
		return nil, 0, false, fmt.Errorf("query: spill read: %w", err)
	}
	if uint64(cap(sr.rec)) < n {
		sr.rec = make([]byte, n)
	}
	rec := sr.rec[:n]
	if _, err := io.ReadFull(sr.br, rec); err != nil {
		return nil, 0, false, fmt.Errorf("query: spill read: %w", err)
	}
	if len(rec) < 8 {
		return nil, 0, false, fmt.Errorf("query: spill record truncated")
	}
	h := binary.BigEndian.Uint64(rec[:8])
	body := rec[8:]
	t := arena.next()
	for s := 0; s < width; s++ {
		v, consumed, err := sr.decodeField(body)
		if err != nil {
			return nil, 0, false, fmt.Errorf("query: spill slot %d: %w", s, err)
		}
		t[s] = v
		body = body[consumed:]
	}
	if len(body) != 0 {
		return nil, 0, false, fmt.Errorf("query: spill record has %d trailing bytes", len(body))
	}
	arena.commit()
	return t, h, true, nil
}

// decodeField decodes one value, serving repeated string/term encodings
// from the intern table (the map lookup on the raw bytes allocates
// nothing on a hit). Numbers decode inline — no allocation to save.
func (sr *spillReader) decodeField(body []byte) (kb.Value, int, error) {
	if len(body) > 0 && kb.ValueKind(body[0]) == kb.KindNumber {
		return decodeValueKey(body)
	}
	// Frame the field (payload up to its unescaped terminator) so the
	// raw bytes can key the intern table. The scan starts past the kind
	// tag — KindTerm's tag is 0x00 and must not read as a terminator.
	end := 1
	for {
		i := end
		for i < len(body) && body[i] != 0 {
			i++
		}
		if i >= len(body) {
			return decodeValueKey(body) // let the decoder report the error
		}
		if i+1 < len(body) && body[i+1] == 0xff {
			end = i + 2
			continue
		}
		end = i + 1
		break
	}
	if v, ok := sr.intern[string(body[:end])]; ok {
		return v, end, nil
	}
	v, consumed, err := decodeValueKey(body[:end])
	if err != nil {
		return v, consumed, err
	}
	if len(sr.intern) < spillInternCap {
		sr.intern[string(body[:end])] = v
	}
	return v, end, nil
}

// replay streams every record of the run through fn — reader() in loop
// form. The tuple handed to fn is freshly decoded from arena memory and
// owned by the callee.
func (r *spillRun) replay(width int, arena *tupleArena, fn func(t tuple, h uint64) error) error {
	sr, err := r.reader()
	if err != nil {
		return err
	}
	for {
		t, h, ok, err := sr.next(width, arena)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := fn(t, h); err != nil {
			return err
		}
	}
}

// close releases the run's fd and its accounted write buffer; it is
// idempotent (the split path closes parents eagerly, the defers sweep).
func (r *spillRun) close() {
	if r == nil || r.closed {
		return
	}
	r.closed = true
	r.f.Close()
	r.bud.Release(spillBufBytes)
}

// spillPart is one join partition's spill state. A partition first
// overflows its *probe* side (pending batches buffered while the build
// side is still streaming go to a probe run; the in-memory build table
// survives), and degrades fully to a grace-hash join only when the build
// table itself cannot reserve — then both sides land in runs and join()
// completes the partition from disk within budget (graceJoin).
type spillPart struct {
	dir   string
	width int
	// bud is the partition's spillable reservation (build chunks); io is
	// the root budget, charged for the fixed run write buffers so they
	// do not crowd the chunk reservations out of the partition's share.
	bud *mem.Budget
	io  *mem.Budget

	build *spillRun // non-nil once the build side degraded
	probe *spillRun // probe overflow (may exist with an in-memory build)
	runs  int       // runs created, including recursion (Stats.SpillRuns)
	bytes int64     // record bytes written across runs (Stats.SpilledBytes)
}

func (sp *spillPart) newRun() (*spillRun, error) {
	r, err := newSpillRun(sp.dir, sp.io)
	if err == nil {
		sp.runs++
		r.acct = &sp.bytes
	}
	return r, err
}

func (sp *spillPart) ensureProbe() error {
	if sp.probe != nil {
		return nil
	}
	r, err := sp.newRun()
	sp.probe = r
	return err
}

func (sp *spillPart) ensureBuild() error {
	if sp.build != nil {
		return nil
	}
	r, err := sp.newRun()
	sp.build = r
	return err
}

func (sp *spillPart) close() {
	sp.build.close()
	sp.probe.close()
}

// join completes a fully-degraded partition: both sides live in runs.
// onMatches is invoked once per probe tuple that has at least one
// key-equal build match (the probe tuple is owned by the callee, so the
// caller may overlay its first match in place, like the live path).
func (sp *spillPart) join(stp *planStep, onMatches func(l tuple, h uint64, rs []tuple)) error {
	defer func() {
		sp.build.close()
		sp.probe.close()
		sp.build, sp.probe = nil, nil
	}()
	return sp.graceJoin(stp, 0, sp.build, sp.probe, onMatches)
}

// graceJoin joins one (build, probe) run pair within budget. The
// workhorse is the chunked hybrid join: the build run is read once in
// reservation-sized chunks and the probe run re-streamed against each
// chunk — one build pass, few probe passes, no re-writing. Only when
// the build side is so much larger than the reservation that the probe
// would be re-read many times over does it re-partition both runs by
// the next hash bits and recurse (each sub-pair then joins within
// budget).
func (sp *spillPart) graceJoin(stp *planStep, level int, build, probe *spillRun,
	onMatches func(l tuple, h uint64, rs []tuple)) error {
	// The split decision estimates how many probe passes chunking would
	// pay. Chunks reserve from the query root, so the proxy for a
	// chunk's capacity is half the root cap (the spillable-pool share of
	// the budget; the streaming-phase child is unlimited and cannot
	// gauge this). A build run needing more than maxChunkPasses such
	// chunks re-partitions by hash bits instead.
	if lim := sp.io.Limit() / 2; level < maxSpillLevel && lim > 0 &&
		build.tuples > minSplitTuples &&
		tupleCost(sp.width)*int64(build.tuples) > maxChunkPasses*lim {
		return sp.splitAndRecurse(stp, level, build, probe, onMatches)
	}
	return sp.chunkedJoin(stp, build, probe, onMatches)
}

// chunkedJoin is the leaf grace join: stream the build run once,
// accumulating an in-memory table until the reservation runs out, probe
// the whole probe run against that chunk, release, and continue with
// the next chunk. Every (probe, build) match pair is emitted exactly
// once — chunk boundaries partition the build side, so the emitted row
// set is independent of where the budget happened to cut.
//
// Chunks reserve against the query root (sp.io), not the partition's
// streaming share: the per-partition child limit exists to stop any one
// partition buffering unboundedly while every stage is producing, but at
// finish time the real constraint is the memory actually free under the
// query cap — typically far more than one share, so most joins complete
// in a single probe pass. Concurrent finishes stay safe: the root cap
// bounds them jointly, and a crowded root just means smaller chunks.
func (sp *spillPart) chunkedJoin(stp *planStep, build, probe *spillRun,
	onMatches func(l tuple, h uint64, rs []tuple)) error {
	tc := tupleCost(sp.width)
	br, err := build.reader()
	if err != nil {
		return err
	}
	var carry tuple
	var carryH uint64
	haveCarry := false
	done := false
	var matches []tuple
	for !done || haveCarry {
		arena := &tupleArena{width: sp.width, blockTuples: spillDecodeBlock}
		table := make(map[uint64][]tuple)
		var charged int64
		n := 0
		if haveCarry {
			// The tuple that closed the previous chunk opens this one.
			sp.io.MustReserve(tc)
			charged += tc
			table[carryH] = append(table[carryH], carry)
			haveCarry = false
			n++
		}
		for !done {
			t, h, ok, rerr := br.next(sp.width, arena)
			if rerr != nil {
				sp.io.Release(charged)
				return rerr
			}
			if !ok {
				done = true
				break
			}
			if !sp.io.Reserve(tc) {
				if n < minChunkTuples {
					// Progress guarantee: a chunk always reaches the
					// floor, accounted past the limit if need be.
					sp.io.MustReserve(tc)
				} else {
					carry, carryH, haveCarry = t, h, true
					break
				}
			}
			charged += tc
			table[h] = append(table[h], t)
			n++
		}
		if n > 0 {
			probeArena := &tupleArena{width: sp.width, blockTuples: spillDecodeBlock}
			err := probe.replay(sp.width, probeArena, func(l tuple, h uint64) error {
				matches = matches[:0]
				for _, r := range table[h] {
					if keySlotsEqual(l, r, stp.keySlots) {
						matches = append(matches, r)
					}
				}
				if len(matches) > 0 {
					onMatches(l, h, matches)
				}
				return nil
			})
			if err != nil {
				sp.io.Release(charged)
				return err
			}
		}
		sp.io.Release(charged)
	}
	return nil
}

// maxChunkPasses bounds how many probe passes the chunked join may pay
// before re-partitioning becomes the better trade.
const maxChunkPasses = 6

// splitAndRecurse streams both runs into spillFanout sub-run pairs routed
// by the next hash bits, closes the parents, and joins each pair in turn.
func (sp *spillPart) splitAndRecurse(stp *planStep, level int, build, probe *spillRun,
	onMatches func(l tuple, h uint64, rs []tuple)) error {
	var subBuild, subProbe [spillFanout]*spillRun
	defer func() {
		for i := 0; i < spillFanout; i++ {
			subBuild[i].close()
			subProbe[i].close()
		}
	}()
	for i := 0; i < spillFanout; i++ {
		var err error
		if subBuild[i], err = sp.newRun(); err != nil {
			return err
		}
		if subProbe[i], err = sp.newRun(); err != nil {
			return err
		}
	}
	arena := &tupleArena{width: sp.width, blockTuples: spillDecodeBlock}
	if err := build.replay(sp.width, arena, func(t tuple, h uint64) error {
		return subBuild[spillSub(h, level)].add(t, h)
	}); err != nil {
		return err
	}
	if err := probe.replay(sp.width, arena, func(t tuple, h uint64) error {
		return subProbe[spillSub(h, level)].add(t, h)
	}); err != nil {
		return err
	}
	// The parents' bytes are no longer needed; release their fds before
	// descending so the open-file high-water stays at one lineage.
	if build != sp.build {
		build.close()
	}
	if probe != sp.probe {
		probe.close()
	}
	for i := 0; i < spillFanout; i++ {
		if subBuild[i].tuples == 0 || subProbe[i].tuples == 0 {
			continue // nothing can join in this sub-pair
		}
		if err := sp.graceJoin(stp, level+1, subBuild[i], subProbe[i], onMatches); err != nil {
			return err
		}
	}
	return nil
}
