package query

import (
	"testing"

	"repro/internal/pattern"
)

func TestFromPatternPaperNotation(t *testing.T) {
	// truck(O:owner, model) — O captures the owner.
	p := pattern.MustParse("Trucks(O:Owner, Model)")
	q, err := FromPattern(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 2 {
		t.Fatalf("triples = %v", q.Where)
	}
	if q.Where[0].P.Value.Str != pattern.AttributeEdgeLabel {
		t.Fatalf("attribute predicate lost: %v", q.Where[0])
	}
	if len(q.Select) != 1 || q.Select[0] != "O" {
		t.Fatalf("select = %v", q.Select)
	}
}

func TestFromPatternExecutesAgainstEngine(t *testing.T) {
	e := paperEngine(t)
	// carrier:?x:Driver — anything with an edge to Driver.
	p := pattern.MustParse("carrier:?x:Driver")
	q, err := FromPattern(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !hasRow(res, "carrier.Cars") {
		t.Fatalf("pattern query missed Cars: %v", res.Rows)
	}
}

func TestFromPatternAnonymousVariables(t *testing.T) {
	p := pattern.MustParse("Trucks(?)")
	q, err := FromPattern(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 1 || q.Select[0] != "v0" {
		t.Fatalf("anonymous select = %v", q.Select)
	}
}

func TestFromPatternExplicitSelect(t *testing.T) {
	p := pattern.MustParse("Trucks(O:Owner, M:Model)")
	q, err := FromPattern(p, "M")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 1 || q.Select[0] != "M" {
		t.Fatalf("select = %v", q.Select)
	}
	if _, err := FromPattern(p, "ghost"); err == nil {
		t.Fatalf("unbound select var accepted")
	}
}

func TestFromPatternErrors(t *testing.T) {
	// Single node, no edges: not a query.
	if _, err := FromPattern(pattern.MustParse("Trucks")); err == nil {
		t.Fatalf("edgeless pattern accepted")
	}
	// No variables anywhere.
	p := pattern.MustParse("Cars:Trucks")
	p.Ont = ""
	if _, err := FromPattern(p); err == nil {
		t.Fatalf("variable-free pattern accepted")
	}
	if _, err := FromPattern(&pattern.Pattern{}); err == nil {
		t.Fatalf("invalid pattern accepted")
	}
}
