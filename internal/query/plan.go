package query

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/kb"
	"repro/internal/obs"
)

// Options tune query execution.
type Options struct {
	// Workers bounds the scan worker pool. 0 means GOMAXPROCS; 1 runs
	// every scan inline (no goroutines). The pool is per execution, so
	// concurrent Execute calls do not share or contend for workers.
	Workers int
	// Partitions sets the hash-partition count of the partitioned and
	// pipelined joins, decoupled from the scan worker count. 0 means
	// "same as the resolved worker pool size"; values above the worker
	// count trade goroutines for better load balance under key skew.
	// Ignored when the pool has a single worker (joins run inline).
	Partitions int
	// Sequential forces the reference execution path: textual join
	// order, unindexed full scans, no plan cache, no parallelism. It
	// exists for determinism tests and benchmarks; results are always
	// byte-identical to the planned path.
	Sequential bool
	// CompatJoins selects the PR 1 row representation on the planned
	// path: binding maps per row, map-copy merges and string join keys,
	// with a barrier between each step's scans and its join. It is
	// retained as the E12 benchmark baseline and as a third differential
	// check in the determinism suite; results are always byte-identical
	// to the slot-based executor.
	CompatJoins bool
	// StepBarriers disables cross-step streaming on the tuple executor:
	// each join step fully materialises its output before the next
	// step's scans dispatch (the PR 2 executor). Retained as the E13
	// benchmark baseline and as a differential leg in the determinism
	// suite; results are always byte-identical to the pipelined path.
	StepBarriers bool
	// RowAtATime pins the row-at-a-time streaming pipeline (the PR 3
	// executor: one tuple hashed, verified and filtered at a time) on
	// plans that would otherwise run the columnar batch executor —
	// per-slot value vectors in ~1024-row batches with vectorized hash,
	// probe and filter loops. Retained as the E19 benchmark baseline
	// and as a differential leg in the determinism suite; results are
	// always byte-identical to the batch path.
	RowAtATime bool
	// MemoryLimit caps the accounted bytes of one execution (0 = no
	// cap). The pipelined executor honours it by degrading: a join
	// partition whose build table (or pending probe queue) cannot
	// reserve its next batch spills both sides to temp-file grace-hash
	// runs and joins partition-by-partition within budget, and a
	// budgeted execution always pipelines when the plan allows it (the
	// shallow-chain fast path is bypassed — only the pipeline can
	// spill). Rows are byte-identical with or without a limit. The
	// StepBarriers and single-worker inline tuple paths account their
	// materialised frontiers in Stats.BytesReserved but never spill;
	// the Sequential and CompatJoins reference paths neither account
	// nor spill (BytesReserved stays 0).
	MemoryLimit int64
	// SpillDir is where grace-hash runs are created ("" = the OS temp
	// directory). Run files are unlinked at creation, so they cannot
	// outlive the process.
	SpillDir string
	// Trace, when non-nil, is the parent span under which the executor
	// records this execution's span tree: plan lookup, every scan
	// fan-out, each join step (with per-partition build/probe/spill
	// sub-spans on the pipelined path) and the projection. The tree is
	// also attached to Result.Trace. A nil Trace disables tracing
	// entirely — the executor performs no span work and allocates
	// nothing for it, so the hot paths are unchanged.
	Trace *obs.Span
}

// sourceScan is one (triple, source) unit of work in a compiled plan.
type sourceScan struct {
	name string
	src  *Source
	view scanView
	est  int // estimated result rows (selectivity probe)
}

// planStep is one WHERE conjunct with its per-source scans, placed in
// join order by the planner.
type planStep struct {
	triple  Triple
	origIdx int // textual position in the query
	vars    []string
	scans   []sourceScan // in sorted source order
	est     int          // total estimate across sources

	// Slot wiring for the tuple executor, all fixed at compile time so
	// execution never re-derives shared variables or builds map keys.
	spec     [3]int  // slot per triple position (S, P, O); -1 = constant
	firstPos [3]bool // position is the first occurrence of its slot in this triple
	keySlots []int   // slots shared with earlier steps (the hash-join key), ascending
	newSlots []int   // slots first bound by this step, ascending

	// nextKeySlots is the following step's keySlots (nil on the last
	// step): the cross-step pipeline re-hashes this step's probe output
	// on them at production time and streams it straight into the next
	// step's partition channels, so downstream never re-encodes keys.
	nextKeySlots []int
	// partHint is the planner's hash-partition count for this step's
	// join, derived from the scan estimates (see adaptiveParts): wider
	// fan-out for the heaviest step, a single partition for provably
	// small builds. Options{Partitions} overrides it globally, and the
	// executor clamps it to the resolved worker pool (stepPartCount).
	partHint int
	// alignedNext reports nextKeySlots == keySlots (a chain joining on
	// the same variables throughout). The pipeline then forwards probe
	// output under its incoming key hash — partitions align across the
	// steps and no key is ever re-encoded between them.
	alignedNext bool
}

// execPlan is a compiled query: per-source constant expansions hoisted
// out of the scan loops, selectivity estimates, the join order, and the
// variable→slot assignment of the tuple executor. Plans are immutable
// once built and cached per engine, so repeated queries skip the
// articulation-expansion work entirely.
type execPlan struct {
	steps     []planStep
	reordered int   // steps executed off their textual position
	expand    Stats // expansion counters accrued while compiling

	// slotOf assigns every WHERE variable a fixed tuple index, in
	// first-occurrence (textual) order; slotNames is the inverse. SELECT
	// and FILTER variables resolve through the same table (Validate
	// guarantees they occur in WHERE), so the assignment depends only on
	// the cache key.
	slotOf    map[string]int
	slotNames []string

	// chainKeyed reports that every step after the first hash-joins on a
	// non-empty key — the shape the cross-step pipeline executes; a
	// disconnected cross-product step forces the per-step path.
	chainKeyed bool
	// totalEst is the summed scan estimate across every step — the
	// planner's proxy for how much work the pipeline can overlap, used by
	// the shallow-chain executor choice.
	totalEst int
}

// maxCachedPlans bounds the per-engine plan cache; at the cap the cache
// is flushed wholesale (plans are cheap to recompile) so a long-lived
// engine serving ad-hoc query strings cannot grow without limit.
const maxCachedPlans = 512

// planKey renders the WHERE clause into an unambiguous cache key. A plan
// depends only on the triples (SELECT and FILTER apply at execution), and
// the key tags every constant with its value kind plus length — q.String()
// alone would collide Term("5") with Number(5), whose Format is identical.
func planKey(q Query) string {
	var b strings.Builder
	writeTerm := func(t Term) {
		if t.IsVar() {
			fmt.Fprintf(&b, "?%d:%s\x00", len(t.Var), t.Var)
			return
		}
		s := t.Value.Format()
		fmt.Fprintf(&b, "%d:%d:%s\x00", t.Value.Kind, len(s), s)
	}
	for _, tr := range q.Where {
		writeTerm(tr.S)
		writeTerm(tr.P)
		writeTerm(tr.O)
	}
	return b.String()
}

// cachedPlan returns the compiled plan for q, building and caching it on
// first use. The bool reports a cache hit.
func (e *Engine) cachedPlan(q Query) (*execPlan, bool) {
	key := planKey(q)
	e.mu.RLock()
	p := e.plans[key]
	e.mu.RUnlock()
	if p != nil {
		return p, true
	}
	built := e.compile(q)
	e.mu.Lock()
	if p = e.plans[key]; p == nil {
		if len(e.plans) >= maxCachedPlans {
			e.plans = make(map[string]*execPlan)
		}
		e.plans[key] = built
		p = built
	}
	e.mu.Unlock()
	return p, false
}

// InvalidateCache drops the compiled plans and per-source edge indexes.
// Since per-source epoch validation landed, calling it after mutating a
// source is no longer required — every query validates the caches
// against the sources' epochs and heals exactly the stale state — so
// this remains only as a forced wholesale flush (for example after
// swapping in state the epochs cannot see, such as replacing a Source's
// Ont or KB pointer in place).
func (e *Engine) InvalidateCache() {
	e.mu.Lock()
	e.plans = make(map[string]*execPlan)
	e.edgeIdx = make(map[string]map[string][]graph.Edge)
	e.qualIdx = make(map[string]map[string]string)
	e.sourceEpochs(e.epochs)
	e.mu.Unlock()
}

// edgeIndex returns the label → edges index for one source, building it
// lazily on first use.
func (e *Engine) edgeIndex(name string) map[string][]graph.Edge {
	e.mu.RLock()
	idx := e.edgeIdx[name]
	e.mu.RUnlock()
	if idx != nil {
		return idx
	}
	g := e.sources[name].Ont.Graph()
	built := make(map[string][]graph.Edge)
	for _, edge := range g.Edges() {
		built[edge.Label] = append(built[edge.Label], edge)
	}
	e.mu.Lock()
	if idx = e.edgeIdx[name]; idx == nil {
		e.edgeIdx[name] = built
		idx = built
	}
	e.mu.Unlock()
	return idx
}

// qualTable returns the term → source-qualified-name table for one
// source, building it lazily on first use (ontology labels, KB subjects
// and term-valued objects). Indexed scans qualify every emitted term
// through it instead of concatenating a fresh string per row; the table
// is immutable once built, so scans read it without locking.
func (e *Engine) qualTable(name string) map[string]string {
	e.mu.RLock()
	t := e.qualIdx[name]
	e.mu.RUnlock()
	if t != nil {
		return t
	}
	src := e.sources[name]
	built := make(map[string]string)
	g := src.Ont.Graph()
	for _, id := range g.Nodes() {
		l := g.Label(id)
		built[l] = qualify(name, l)
	}
	if src.KB != nil {
		src.KB.ForEach(func(f kb.Fact) bool {
			if _, ok := built[f.Subject]; !ok {
				built[f.Subject] = qualify(name, f.Subject)
			}
			if f.Object.IsTerm() {
				if _, ok := built[f.Object.Str]; !ok {
					built[f.Object.Str] = qualify(name, f.Object.Str)
				}
			}
			return true
		})
	}
	e.mu.Lock()
	if t = e.qualIdx[name]; t == nil {
		e.qualIdx[name] = built
		t = built
	}
	e.mu.Unlock()
	return t
}

// factQuals returns the fact-ordinal-aligned qualification cache for one
// source's KB: entry i holds fact i's subject (and term object) already
// qualified, sharing the qualTable's strings. Indexed scans emit through
// it with a slice index instead of a map probe per fact — on the
// join-heavy worlds that probe was the single largest per-row scan cost.
// Built lazily under the same epoch discipline as qualTable; facts
// appended after the build (ordinals past the cache's length) fall back
// to the table.
func (e *Engine) factQuals(name string) []factQual {
	e.mu.RLock()
	fq := e.factQIdx[name]
	e.mu.RUnlock()
	if fq != nil {
		return fq
	}
	src := e.sources[name]
	if src.KB == nil {
		return nil
	}
	qt := e.qualTable(name)
	qual := func(term string) kb.Value {
		if q, ok := qt[term]; ok {
			return kb.Value{Kind: kb.KindTerm, Str: q}
		}
		return kb.Term(qualify(name, term))
	}
	built := make([]factQual, 0, src.KB.Len())
	src.KB.ForEach(func(f kb.Fact) bool {
		q := factQual{subj: qual(f.Subject)}
		if f.Object.IsTerm() {
			q.obj = qual(f.Object.Str)
		}
		built = append(built, q)
		return true
	})
	e.mu.Lock()
	if fq = e.factQIdx[name]; fq == nil {
		e.factQIdx[name] = built
		fq = built
	}
	e.mu.Unlock()
	return fq
}

// compile reformulates every (triple, source) pair once, estimates scan
// cardinalities from the ontology and KB indexes, orders the joins
// smallest-first, and wires the slot assignment the tuple executor runs
// on.
func (e *Engine) compile(q Query) *execPlan {
	p := &execPlan{slotOf: make(map[string]int)}
	// Assign slots in textual first-occurrence order, so the assignment
	// is a pure function of the WHERE clause (the plan cache key).
	for _, t := range q.Where {
		for _, term := range [3]Term{t.S, t.P, t.O} {
			if term.IsVar() {
				if _, ok := p.slotOf[term.Var]; !ok {
					p.slotOf[term.Var] = len(p.slotNames)
					p.slotNames = append(p.slotNames, term.Var)
				}
			}
		}
	}
	for i, t := range q.Where {
		step := planStep{triple: t, origIdx: i, vars: tripleVars(t)}
		occupied := make(map[int]bool, 3)
		for pos, term := range [3]Term{t.S, t.P, t.O} {
			step.spec[pos] = -1
			if term.IsVar() {
				sl := p.slotOf[term.Var]
				step.spec[pos] = sl
				step.firstPos[pos] = !occupied[sl]
				occupied[sl] = true
			}
		}
		for _, name := range e.names {
			src := e.sources[name]
			sc := sourceScan{name: name, src: src, view: e.compileView(name, t, &p.expand)}
			// Pre-sort the constant sets once; the indexed scans walk
			// them on every execution.
			sc.view.predList = sortedSet(sc.view.preds)
			sc.view.subjList = sortedSet(sc.view.subj)
			sc.est = e.estimateScan(name, src, sc.view)
			step.scans = append(step.scans, sc)
			step.est += sc.est
		}
		p.steps = append(p.steps, step)
	}
	p.steps, p.reordered = orderSteps(p.steps)
	// With the join order fixed, split each step's slots into the join
	// key (already bound upstream) and the slots it binds first.
	boundSlot := make([]bool, len(p.slotNames))
	for i := range p.steps {
		step := &p.steps[i]
		for _, v := range step.vars {
			sl := p.slotOf[v]
			if boundSlot[sl] {
				step.keySlots = append(step.keySlots, sl)
			} else {
				step.newSlots = append(step.newSlots, sl)
			}
		}
		sort.Ints(step.keySlots)
		sort.Ints(step.newSlots)
		for _, sl := range step.newSlots {
			boundSlot[sl] = true
		}
	}
	p.chainKeyed = true
	for i := range p.steps {
		if i > 0 && len(p.steps[i].keySlots) == 0 {
			p.chainKeyed = false
		}
		if i+1 < len(p.steps) {
			p.steps[i].nextKeySlots = p.steps[i+1].keySlots
			p.steps[i].alignedNext = i > 0 && slices.Equal(p.steps[i].keySlots, p.steps[i].nextKeySlots)
		}
		p.totalEst += p.steps[i].est
	}
	p.adaptiveParts()
	return p
}

// Adaptive partition sizing: instead of one global hash-partition count,
// the planner sizes every join step from its own scan estimate.
const (
	// partitionRowTarget is the build-row volume one partition is sized
	// to absorb; a step estimated at k·target rows fans out k ways.
	partitionRowTarget = 1024
	// maxPartHint bounds the planner's raw fan-out before the executor
	// clamps it to the resolved worker pool.
	maxPartHint = 64
)

// adaptiveParts derives every join step's hash-partition hint from the
// planner's scan estimates, skew-aware: the heaviest step of a deeper
// chain gets twice the proportional fan-out (its build and probe volume
// dominate the wall clock, and extra partitions shrink the largest build
// table — the one a memory budget would otherwise spill first), while a
// provably small build collapses to a single partition (partitioning
// overhead would exceed the join). Options{Partitions} overrides all
// hints globally; stepPartCount applies the override and the worker
// clamp at execution time.
func (p *execPlan) adaptiveParts() {
	maxEst := 0
	for i := 1; i < len(p.steps); i++ {
		if p.steps[i].est > maxEst {
			maxEst = p.steps[i].est
		}
	}
	for i := 1; i < len(p.steps); i++ {
		st := &p.steps[i]
		hint := (st.est + partitionRowTarget - 1) / partitionRowTarget
		if st.est == maxEst && len(p.steps) > 2 {
			hint *= 2
		}
		if hint < 1 {
			hint = 1
		}
		if hint > maxPartHint {
			hint = maxPartHint
		}
		st.partHint = hint
	}
}

// stepPartCount resolves one join step's hash-partition count for an
// execution: an explicit Options{Partitions} pins every step; otherwise
// the planner's estimate-derived hint applies, clamped to four times the
// worker pool (beyond that, extra partitions only add channel wiring).
func (p *execPlan) stepPartCount(si int, opts Options, workers int) int {
	if opts.Partitions > 0 {
		return opts.Partitions
	}
	h := p.steps[si].partHint
	if lim := 4 * workers; h > lim {
		h = lim
	}
	if h < 1 {
		h = 1
	}
	return h
}

// Shallow-chain executor choice: a chain of at most shallowJoinSteps
// keyed joins only ties the per-step executor unless there is enough
// scan volume for cross-step overlap to repay the pipeline's fixed setup
// (per-stage partition workers, channel wiring, batch routing). The
// planner's summed scan estimate is the cost proxy: below
// shallowPipelineMinEst the per-step (StepBarriers) executor runs
// instead. Deeper chains always pipeline — each extra step is another
// materialisation barrier avoided.
//
// shallowPipelineMinEst is calibrated, not guessed: a best-of-7 sweep of
// two-keyed-join chains on the E13 world shape (buildChainWorld at
// 8 sources, 3 triples, dup 2, instances 4..96; 8 workers, the E11/E13
// methodology — warm plan, GC between reps) measured barrier/pipeline
// wall-clock ratios of ~0.95-1.1x (noise) for summed estimates up to
// ~2240, then a clean break: ~1.4-1.6x at 2560 and ~1.7-2.2x from 2880
// up, stable across repeated sweeps. The constant sits just below the
// measured break because the mistake costs are asymmetric there — under
// it the barrier wins by at most ~5%, above it the pipeline's margin
// grows quickly with volume. The seed value 4096 left the 2560-3840
// band (a reliable ~1.5-1.9x pipeline win) on the slow executor.
const (
	shallowJoinSteps      = 2
	shallowPipelineMinEst = 2400
)

// pipelines reports whether the given options execute this plan as the
// cross-step streaming pipeline — the one dispatch predicate shared by
// executeTuples and Explain, so the explanation can never drift from
// what the engine actually runs. Shallow keyed chains fall back to the
// per-step executor when the planner's cost estimate says the pipeline's
// setup would not pay for itself.
func (p *execPlan) pipelines(opts Options, workers int) bool {
	if !(workers > 1 && !opts.Sequential && !opts.CompatJoins && !opts.StepBarriers &&
		p.chainKeyed && len(p.steps) > 1) {
		return false
	}
	// A budgeted execution always pipelines when the plan allows it:
	// only the pipeline can degrade to grace-hash spilling, so the
	// shallow fast path would trade the memory bound for a few
	// microseconds of setup.
	if opts.MemoryLimit > 0 {
		return true
	}
	if len(p.steps)-1 <= shallowJoinSteps && p.totalEst < shallowPipelineMinEst {
		return false
	}
	return true
}

// batches reports whether the given options execute this plan on the
// columnar batch pipeline (batchpipe.go) — the default data plane for
// every pipelined execution unless Options{RowAtATime} pins the PR 3
// tuple-at-a-time pipeline. Shared with Explain, like pipelines, so the
// explanation can never drift from the executed path.
func (p *execPlan) batches(opts Options, workers int) bool {
	return p.pipelines(opts, workers) && !opts.RowAtATime
}

// estimateScan predicts how many rows the scan will produce, using the
// per-label edge index and the KB's cardinality probes. Constant
// positions tighten the estimate; a skipped view costs nothing.
func (e *Engine) estimateScan(name string, src *Source, v scanView) int {
	if v.skip {
		return 0
	}
	g := src.Ont.Graph()
	edges := g.NumEdges()
	if v.preds != nil {
		idx := e.edgeIndex(name)
		edges = 0
		for p := range v.preds {
			edges += len(idx[p])
		}
	}
	if v.subj != nil {
		deg := 0
		for s := range v.subj {
			if id, ok := g.NodeByLabel(s); ok {
				deg += g.OutDegree(id)
			}
		}
		if deg < edges {
			edges = deg
		}
	}
	facts := 0
	if src.KB != nil && name != e.art.Ont.Name() {
		facts = src.KB.Len()
		if v.preds != nil {
			facts = 0
			for p := range v.preds {
				facts += src.KB.CountByPredicate(p)
			}
		}
		if v.subj != nil {
			bySubj := 0
			for s := range v.subj {
				bySubj += src.KB.CountBySubject(s)
			}
			if bySubj < facts {
				facts = bySubj
			}
		}
	}
	return edges + facts
}

// orderSteps greedily orders the join: the most selective step first,
// then repeatedly the cheapest step sharing a variable with what is
// already bound (hash-joinable), falling back to the cheapest remaining
// step when nothing connects. Ties keep textual order, so the order is
// deterministic. Returns the order and how many steps moved.
func orderSteps(steps []planStep) ([]planStep, int) {
	n := len(steps)
	if n < 2 {
		return steps, 0
	}
	used := make([]bool, n)
	bound := make(map[string]bool)
	out := make([]planStep, 0, n)
	for len(out) < n {
		best := -1
		bestConn := false
		for i, st := range steps {
			if used[i] {
				continue
			}
			conn := len(bound) == 0 || sharesVar(st.vars, bound)
			switch {
			case best == -1:
				best, bestConn = i, conn
			case conn && !bestConn:
				best, bestConn = i, conn
			case conn == bestConn && st.est < steps[best].est:
				best, bestConn = i, conn
			}
		}
		used[best] = true
		out = append(out, steps[best])
		for _, v := range steps[best].vars {
			bound[v] = true
		}
	}
	moved := 0
	for i, st := range out {
		if st.origIdx != i {
			moved++
		}
	}
	return out, moved
}

func sharesVar(vars []string, bound map[string]bool) bool {
	for _, v := range vars {
		if bound[v] {
			return true
		}
	}
	return false
}

func tripleVars(t Triple) []string {
	var vs []string
	seen := make(map[string]bool, 3)
	for _, term := range []Term{t.S, t.P, t.O} {
		if term.IsVar() && !seen[term.Var] {
			seen[term.Var] = true
			vs = append(vs, term.Var)
		}
	}
	return vs
}

// applyFilters runs every not-yet-applied filter whose variable is bound
// in all rows (a variable is bound everywhere once its triple joined).
// Early filtering shrinks the join frontier without changing the result.
func applyFilters(rows []binding, filters []Filter, applied []bool, bound map[string]bool) []binding {
	for i, f := range filters {
		if applied[i] || !bound[f.Var] {
			continue
		}
		applied[i] = true
		kept := rows[:0]
		for _, b := range rows {
			if v, ok := b[f.Var]; ok && f.Accepts(v) {
				kept = append(kept, b)
			}
		}
		rows = kept
	}
	return rows
}
