package query

import (
	"math"
	"sync"

	"repro/internal/kb"
	"repro/internal/query/mem"
)

// This file is the columnar batch layer under the batch executor
// (batchpipe.go): per-slot value vectors in fixed-capacity batches, a
// selection bitmap instead of survivor copies, a []uint64 hash vector
// filled one key column at a time, and budget accounting charged once
// per batch (column capacity) instead of once per tuple. The tuple type
// stays the row-at-a-time currency (spill runs, the RowAtATime pipeline,
// the per-step executor); a colBatch is the same rows turned sideways.

// batchRows is the row capacity of one column batch — scans fill batches
// in runs of this size and every vectorized pass (hash, filter, scatter)
// works over at most this many rows. 512 is the measured E19 sweet spot:
// the vectorization win saturates well before that (the per-row loop
// bodies are branch-light), fuller batches amortise the channel hop, and
// a 1024-row capacity measured slower on the E13 chain world, where
// partitions see a few hundred rows and capacity-sized columns just
// thrash the allocator. budgetedBatchRows is the smaller capacity used
// under Options{MemoryLimit}, keeping each batch's fixed charge
// (width·batchRows·valueBytes) well under a small cap.
const (
	batchRows         = 512
	budgetedBatchRows = 32
)

// colBatch is one batch of execution rows in columnar layout: cols[s][i]
// is row i's value for plan slot s (kind-tagged — kb.Value carries its
// kind, so a column is a kind-tagged value vector). hashes[i] is row i's
// join-key hash on whatever key the producing side routed on. sel, when
// non-nil, is a selection bitmap over the rows: vectorized filters clear
// bits instead of copying survivors, and downstream passes skip dead
// rows. A nil sel means every row is live.
type colBatch struct {
	n      int
	cols   [][]kb.Value
	hashes []uint64
	sel    []uint64
	cost   int64 // budget charge held while checked out of the pool
}

// batchCost is the accounted footprint of one batch: full column
// capacity (the batch holds its arrays for its whole pooled life) plus
// the hash vector and the selection bitmap.
func batchCost(width, rows int) int64 {
	return int64(rows)*(int64(width)*valueBytes+8) + int64((rows+63)/64*8)
}

// colBatchPool recycles batch buffers across executions, like the row
// pipeline's batchPool: steady-state streaming allocates no new columns
// at all. Shapes vary by query (width) and by budget (row capacity), so
// get re-allocates on a shape mismatch; a server answering a stable
// query mix converges to perfect reuse.
var colBatchPool sync.Pool

// batchAlloc hands out colBatches for one execution. The budget is
// charged at checkout and released when the batch is returned — once
// per batch, column-capacity accounting — so a batch's bytes are
// accounted for exactly as long as it is live (staging, in flight on a
// channel, or being drained by a consumer).
type batchAlloc struct {
	width int
	rows  int
	bud   *mem.Budget
}

func newBatchAlloc(width int, bud *mem.Budget) *batchAlloc {
	rows := batchRows
	if bud.Limit() > 0 {
		rows = budgetedBatchRows
	}
	return &batchAlloc{width: width, rows: rows, bud: bud}
}

// get returns an empty batch with every column at capacity, charging its
// capacity cost to the execution budget.
func (a *batchAlloc) get() *colBatch {
	a.bud.MustReserve(batchCost(a.width, a.rows))
	if b, ok := colBatchPool.Get().(*colBatch); ok {
		if len(b.cols) == a.width && len(b.hashes) == a.rows {
			b.cost = batchCost(a.width, a.rows)
			return b
		}
		// Wrong shape for this execution: drop it and allocate fresh.
	}
	//lint:onion-ignore pool-recycled fixed-capacity columns shared across queries; live retention is charged per batch at checkout (MustReserve above) and released at put
	b := &colBatch{
		cols:   make([][]kb.Value, a.width),
		hashes: make([]uint64, a.rows),
		cost:   batchCost(a.width, a.rows),
	}
	for s := range b.cols {
		b.cols[s] = make([]kb.Value, a.rows)
	}
	return b
}

// put releases the batch's charge and recycles its buffers. The batch's
// values are dead after put — consumers copy what they retain (build
// stores, projections) before returning the batch.
func (a *batchAlloc) put(b *colBatch) {
	a.bud.Release(b.cost)
	b.n = 0
	b.sel = nil
	b.cost = 0
	colBatchPool.Put(b)
}

// full reports that the batch has no room for another row.
func (b *colBatch) full() bool { return b.n >= len(b.hashes) }

// live reports whether row i survived the selection mask.
func (b *colBatch) live(i int) bool {
	return b.sel == nil || b.sel[i>>6]&(1<<uint(i&63)) != 0
}

// ensureSel materialises the selection bitmap with every current row
// live; filters then clear bits.
func (b *colBatch) ensureSel() {
	if b.sel != nil {
		return
	}
	words := (len(b.hashes) + 63) / 64
	b.sel = make([]uint64, words)
	for w := range b.sel {
		b.sel[w] = ^uint64(0)
	}
}

// clearRow drops row i from the selection.
func (b *colBatch) clearRow(i int) {
	b.sel[i>>6] &^= 1 << uint(i&63)
}

// selected counts the rows that survived the selection mask.
func (b *colBatch) selected() int {
	if b.sel == nil {
		return b.n
	}
	cnt := 0
	for i := 0; i < b.n; i++ {
		if b.live(i) {
			cnt++
		}
	}
	return cnt
}

// batchHashSeed starts every row's key-hash accumulation; hashCell folds
// one key column's cell in. The batch path hashes values directly —
// kind, canonical float bits, string bytes — instead of encoding the key
// to rowkey bytes first (the row pipeline's appendSlotKey+hashKey), so a
// batch hash pass touches each column once with no byte materialisation.
// The two executors never mix hashes within one execution, so the
// functions need not agree — but hashCell must respect the engine's join
// equality (sameCell): equal cells hash equal, every NaN hashes in one
// class, and +0/-0 may differ (they never join).
const batchHashSeed = 0x9E3779B97F4A7C15

// canonNaNBits is the one bit image all NaNs hash through, mirroring the
// rowkey encoding's NaN canonicalisation.
const canonNaNBits = 0x7FF8000000000000

// mix64 is a 64-bit finalizer (splitmix64's): full avalanche, so routing
// by low bits and spill sub-partitioning by high bits stay uncorrelated.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// hashCell folds one cell into a row's key hash.
func hashCell(h uint64, v *kb.Value) uint64 {
	if v.Kind == kb.KindNumber {
		bits := math.Float64bits(v.Num)
		if v.Num != v.Num {
			bits = canonNaNBits
		}
		return mix64(h ^ mix64(bits^(uint64(v.Kind)+1)*0x9E3779B97F4A7C15))
	}
	hs := uint64(14695981039346656037) ^ (uint64(v.Kind)+1)*1099511628211
	for i := 0; i < len(v.Str); i++ {
		hs ^= uint64(v.Str[i])
		hs *= 1099511628211
	}
	return mix64(h ^ hs)
}

// hashKeys fills the batch's hash vector on the given key slots: one
// pass per key column, combined in slot order. Dead rows are hashed too
// (branch-free inner loop); their hashes are simply never read.
func (b *colBatch) hashKeys(slots []int) {
	h := b.hashes[:b.n]
	for i := range h {
		h[i] = batchHashSeed
	}
	for _, s := range slots {
		col := b.cols[s][:b.n]
		for i := range col {
			h[i] = hashCell(h[i], &col[i])
		}
	}
}

// applyFilterVec evaluates one filter over its slot's column, clearing
// selection bits for failing rows — predicates set bits in the mask
// instead of copying survivors. Numeric comparison operators run a
// branch-light specialised loop; the general case defers to
// Filter.Accepts cell by cell (bitwise-identical semantics either way).
func (b *colBatch) applyFilterVec(slot int, f Filter) {
	b.ensureSel()
	col := b.cols[slot][:b.n]
	if f.Value.IsNumber() {
		fv := f.Value.Num
		switch f.Op {
		case OpLT:
			for i := range col {
				if !(col[i].Kind == kb.KindNumber && col[i].Num < fv) {
					b.clearRow(i)
				}
			}
			return
		case OpLE:
			for i := range col {
				if !(col[i].Kind == kb.KindNumber && col[i].Num <= fv) {
					b.clearRow(i)
				}
			}
			return
		case OpGT:
			for i := range col {
				if !(col[i].Kind == kb.KindNumber && col[i].Num > fv) {
					b.clearRow(i)
				}
			}
			return
		case OpGE:
			for i := range col {
				if !(col[i].Kind == kb.KindNumber && col[i].Num >= fv) {
					b.clearRow(i)
				}
			}
			return
		}
	}
	for i := range col {
		if !f.Accepts(col[i]) {
			b.clearRow(i)
		}
	}
}

// applyFiltersVec runs one step's filter set over the batch, column by
// column.
func (b *colBatch) applyFiltersVec(fs []Filter, plan *execPlan) {
	for _, f := range fs {
		b.applyFilterVec(plan.slotOf[f.Var], f)
	}
}

// copyRow copies row i of src into the next row of b and records its
// hash. Only the slots listed are copied — the slots bound at this
// point in the chain; columns outside the list carry recycled garbage
// that no downstream pass ever reads (which slots are bound is a
// plan-level property, exactly as for tuples). The caller checks
// capacity.
func (b *colBatch) copyRow(src *colBatch, i int, h uint64, slots []int) {
	j := b.n
	for _, s := range slots {
		b.cols[s][j] = src.cols[s][i]
	}
	b.hashes[j] = h
	b.n++
}

// rowTuple copies row i's listed slots into the scratch tuple — the
// bridge to the row-at-a-time machinery the batch path shares with the
// pipeline: spill runs encode tuples, and the grace-join completion
// replays them. A scratch tuple is dedicated to one slot list, so the
// slots outside it stay zero (the tuple executor's unbound-slot
// convention) and the encoded wire bytes are deterministic.
func (b *colBatch) rowTuple(i int, scratch tuple, slots []int) tuple {
	for _, s := range slots {
		scratch[s] = b.cols[s][i]
	}
	return scratch
}

// buildStore is one stage partition's columnar build side: rows appended
// batch-at-a-time (column copies, no per-row allocation), indexed by key
// hash through an intrusive chain: tab is a flat open-addressing table
// whose entries point at each hash's latest row (1+ordinal; 0 = empty
// slot) and next links back to the previous one, so indexing a row never
// allocates — and probing is a masked array walk instead of a Go-map
// lookup per probe row, the hot operation of the vectorized join. The
// key hashes are already finalizer-mixed (mix64), so `h & mask` placement
// needs no re-hash. Only the slots the step actually binds or keys on are
// stored — the probe side contributes every other slot to the merged
// output row.
type buildStore struct {
	slots  []int // stored slots (keySlots ∪ newSlots)
	cols   [][]kb.Value
	hashes []uint64
	tab    []int32 // open-addressing index: 1+row ordinal of a chain head, 0 empty
	used   int     // occupied tab slots (distinct hashes)
	next   []int32 // next[i]: previous row with row i's hash, -1 at chain end
}

// buildTabMinSize is the smallest index table (power of two); the table
// doubles when occupancy passes 3/4.
const buildTabMinSize = 1024

// buildStorePool recycles build stores across stage partitions and
// executions, like colBatchPool: a recycled store keeps its column,
// hash-vector and chain capacity, so a steady query mix builds its hash
// tables into already-grown arrays. In-execution retention is still the
// partition budget reservation that admitted each batch; idle pooled
// capacity is unaccounted, the same convention as the batch pool.
var buildStorePool sync.Pool

func newBuildStore(stp *planStep, width int) *buildStore {
	slots := make([]int, 0, len(stp.keySlots)+len(stp.newSlots))
	slots = append(slots, stp.keySlots...)
	slots = append(slots, stp.newSlots...)
	if v, ok := buildStorePool.Get().(*buildStore); ok {
		if len(v.cols) == width {
			v.slots = slots
			return v
		}
		// Wrong width for this plan: drop it and allocate fresh.
	}
	//lint:onion-ignore column backing grows by append under the partition budget reservation that admitted each batch (takeBuild's Reserve)
	bs := &buildStore{slots: slots, cols: make([][]kb.Value, width), tab: make([]int32, buildTabMinSize)}
	return bs
}

// release empties the store (keeping capacity) and returns it to the
// pool. The store's values are dead after release.
func (bs *buildStore) release() {
	for s := range bs.cols {
		if bs.cols[s] != nil {
			bs.cols[s] = bs.cols[s][:0]
		}
	}
	bs.hashes = bs.hashes[:0]
	bs.next = bs.next[:0]
	clear(bs.tab)
	bs.used = 0
	buildStorePool.Put(bs)
}

// link chains row j (whose hash is already appended at bs.hashes[j])
// into the index: the table entry for its hash moves to j and next[j]
// points at the previous head (-1 when j starts the chain). Grows the
// table at 3/4 occupancy by re-linking every row in insertion order,
// which rebuilds identical chains.
func (bs *buildStore) link(j int32) {
	if (bs.used+1)*4 > len(bs.tab)*3 {
		bs.grow()
	}
	h := bs.hashes[j]
	mask := uint64(len(bs.tab) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		e := bs.tab[i]
		if e == 0 {
			bs.tab[i] = j + 1
			bs.next = append(bs.next, -1)
			bs.used++
			return
		}
		if bs.hashes[e-1] == h {
			bs.next = append(bs.next, e-1)
			bs.tab[i] = j + 1
			return
		}
	}
}

func (bs *buildStore) grow() {
	size := len(bs.tab) * 2
	if size < buildTabMinSize {
		size = buildTabMinSize
	}
	bs.tab = make([]int32, size)
	bs.used = 0
	mask := uint64(size - 1)
	for j := range bs.next {
		h := bs.hashes[j]
		for i := h & mask; ; i = (i + 1) & mask {
			e := bs.tab[i]
			if e == 0 {
				bs.tab[i] = int32(j) + 1
				bs.used++
				break
			}
			if bs.hashes[e-1] == h {
				bs.tab[i] = int32(j) + 1
				break
			}
		}
	}
}

// appendBatch copies the batch's rows into the store column by column
// and chains them into the hash index. Retention is the caller's
// reservation (the partition budget Reserve that admitted the batch).
func (bs *buildStore) appendBatch(b *colBatch) {
	base := int32(len(bs.hashes))
	for _, s := range bs.slots {
		bs.cols[s] = append(bs.cols[s], b.cols[s][:b.n]...)
	}
	bs.hashes = append(bs.hashes, b.hashes[:b.n]...)
	for i := 0; i < b.n; i++ {
		bs.link(base + int32(i))
	}
}

// appendTuple adds one row-major row (the probe-replay and test paths).
func (bs *buildStore) appendTuple(t tuple, h uint64) {
	j := int32(len(bs.hashes))
	for _, s := range bs.slots {
		bs.cols[s] = append(bs.cols[s], t[s])
	}
	bs.hashes = append(bs.hashes, h)
	bs.link(j)
}

func (bs *buildStore) rows() int { return len(bs.hashes) }

// head returns the most recent row with the given hash, or -1; walk the
// chain with bs.next[j].
func (bs *buildStore) head(h uint64) int32 {
	mask := uint64(len(bs.tab) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		e := bs.tab[i]
		if e == 0 {
			return -1
		}
		if bs.hashes[e-1] == h {
			return e - 1
		}
	}
}

// keysEqualAt verifies a hash match between probe row (pb, i) and build
// row j under the engine's join equality (sameCell per key slot).
func (bs *buildStore) keysEqualAt(pb *colBatch, i int, j int32, keySlots []int) bool {
	for _, s := range keySlots {
		if !sameCell(pb.cols[s][i], bs.cols[s][j]) {
			return false
		}
	}
	return true
}

// keysEqualTuple is keysEqualAt for a row-major probe tuple (the
// probe-overflow replay path).
func (bs *buildStore) keysEqualTuple(t tuple, j int32, keySlots []int) bool {
	for _, s := range keySlots {
		if !sameCell(t[s], bs.cols[s][j]) {
			return false
		}
	}
	return true
}
