package query

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentMixedQueriesAreSafe hammers one engine from many
// goroutines with several distinct queries — churning the plan cache and
// the lazy edge indexes while the worker pool runs — and verifies every
// answer against the sequential reference. Run with -race.
func TestConcurrentMixedQueriesAreSafe(t *testing.T) {
	eng := paperEngine(t)
	queries := []string{
		"SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p",
		"SELECT ?x WHERE ?x InstanceOf Vehicle",
		"SELECT ?p WHERE carrier.MyCar Price ?p",
		"SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p . FILTER ?p > 3000",
		"SELECT ?x ?y WHERE ?x SubclassOf ?y",
	}
	want := make([]*Result, len(queries))
	for i, qs := range queries {
		ref, err := eng.ExecuteWith(MustParse(qs), Options{Sequential: true})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ref
	}

	const goroutines = 16
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				qi := (g + i) % len(queries)
				opts := Options{Workers: 1 + (g+i)%4}
				got, err := eng.ExecuteWith(MustParse(queries[qi]), opts)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d query %d: %w", g, qi, err)
					return
				}
				if !want[qi].EqualRows(got) {
					errs <- fmt.Errorf("goroutine %d query %d diverged under concurrency", g, qi)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentExplainAndExecute interleaves Explain (which shares the
// expansion code with the planner) with planned executions.
func TestConcurrentExplainAndExecute(t *testing.T) {
	eng := paperEngine(t)
	q := MustParse("SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p")
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if g%2 == 0 {
					if _, err := eng.Explain(q); err != nil {
						errs <- err
						return
					}
				} else if _, err := eng.ExecuteWith(q, Options{Workers: 2}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestInvalidateCacheUnderLoad flushes the plan cache while queries run.
func TestInvalidateCacheUnderLoad(t *testing.T) {
	eng := paperEngine(t)
	q := MustParse("SELECT ?x WHERE ?x InstanceOf Vehicle")
	want, err := eng.ExecuteWith(q, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if g == 0 {
					eng.InvalidateCache()
					continue
				}
				got, err := eng.ExecuteWith(q, Options{Workers: 2})
				if err != nil {
					errs <- err
					return
				}
				if !want.EqualRows(got) {
					errs <- fmt.Errorf("rows diverged during cache invalidation")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
