package query

import (
	"repro/internal/kb"
	"repro/internal/rowcodec"
)

// The value-key encoding every execution path keys rows and joins on
// lives in internal/rowcodec since it became the persistence layer's
// on-disk record format too (see that package's doc for the encoding
// itself). These aliases keep the executor's call sites on the short
// internal names; the semantics — one collision-free, kind-strict,
// order-preserving encoding shared by join keys, dedup keys, sort keys,
// spill runs, fact logs and snapshots — are rowcodec's.

// appendValueKey appends the collision-free, order-preserving encoding
// of v (rowcodec.AppendValue).
func appendValueKey(buf []byte, v kb.Value) []byte { return rowcodec.AppendValue(buf, v) }

// appendRowKey appends the row's dedup/sort key: appendValueKey over
// every cell (rowcodec.AppendRow).
func appendRowKey(buf []byte, vals []kb.Value) []byte { return rowcodec.AppendRow(buf, vals) }

// decodeValueKey is the inverse of appendValueKey, doubling as the spill
// wire format decoder (rowcodec.DecodeValue).
func decodeValueKey(b []byte) (kb.Value, int, error) { return rowcodec.DecodeValue(b) }

// sameCell reports equality under the engine's value semantics — the
// equality appendValueKey encodes (rowcodec.SameCell).
func sameCell(a, b kb.Value) bool { return rowcodec.SameCell(a, b) }
