package query

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestTraceSpansPipelined checks the span tree the cross-step pipeline
// records: one query.execute root with validate/plan children, a span
// per join step carrying per-partition build/probe sub-spans, and row
// attributes that match the execution's stats.
func TestTraceSpansPipelined(t *testing.T) {
	eng, q := joinHeavyEngine(t, 120)
	tr := obs.NewTrace("test")
	res, err := eng.ExecuteWith(q, Options{Workers: 4, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PipelinedSteps == 0 {
		t.Fatalf("expected the pipelined path: %+v", res.Stats)
	}
	root := res.Trace
	if root == nil || root.Name != "query.execute" {
		t.Fatalf("Result.Trace = %+v, want query.execute root", root)
	}
	if root.DurNs <= 0 {
		t.Errorf("root span not ended: dur %d", root.DurNs)
	}
	for _, name := range []string{"validate", "plan"} {
		if root.Find(name) == nil {
			t.Errorf("span %q missing from trace:\n%s", name, root.Tree())
		}
	}
	steps := 0
	for _, c := range root.Children {
		if strings.HasPrefix(c.Name, "step ") {
			steps++
			if len(c.Children) == 0 {
				t.Errorf("step span %q has no scan/partition children", c.Name)
			}
		}
	}
	if want := len(res.Stats.StepRows); steps != want {
		t.Errorf("trace has %d step spans, stats have %d steps", steps, want)
	}
	if root.Find("build") == nil || root.Find("probe") == nil {
		t.Errorf("pipelined trace missing build/probe sub-spans:\n%s", root.Tree())
	}
}

// TestTraceSpansPerStep checks the inline (single-worker) executor's
// spans: plan, per-step spans wrapping the scan fan-out, and the
// projection span — and that StepRows actuals line up with the join.
func TestTraceSpansPerStep(t *testing.T) {
	eng, q := joinHeavyEngine(t, 80)
	tr := obs.NewTrace("test")
	res, err := eng.ExecuteWith(q, Options{Workers: 1, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	root := res.Trace
	if root == nil {
		t.Fatal("no trace recorded")
	}
	for _, name := range []string{"plan", "project"} {
		if root.Find(name) == nil {
			t.Errorf("span %q missing:\n%s", name, root.Tree())
		}
	}
	n := len(res.Stats.StepRows)
	if n == 0 {
		t.Fatalf("per-step path recorded no StepRows: %+v", res.Stats)
	}
	if len(res.Stats.StepDurNs) != n {
		t.Fatalf("StepDurNs len %d != StepRows len %d", len(res.Stats.StepDurNs), n)
	}
	if got := res.Stats.StepRows[n-1]; got != res.Stats.JoinedRows {
		t.Errorf("last StepRows = %d, want JoinedRows %d", got, res.Stats.JoinedRows)
	}
	// Tracing must not perturb results.
	plain, err := eng.ExecuteWith(q, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Errorf("untraced execution returned a trace")
	}
	if !plain.EqualRows(res) {
		t.Errorf("traced rows diverged from untraced")
	}
}

// TestTraceSpillSpans forces grace-hash spilling under a trace and
// checks the spill sub-spans and the SpilledBytes accounting.
func TestTraceSpillSpans(t *testing.T) {
	eng, q := spillAdversarialEngine(t, 40, 1)
	tr := obs.NewTrace("test")
	res, err := eng.ExecuteWith(q, Options{Workers: 4, MemoryLimit: 1 << 12, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SpilledPartitions == 0 {
		t.Fatalf("4KB budget did not spill: %+v", res.Stats)
	}
	if res.Stats.SpilledBytes <= 0 {
		t.Errorf("SpilledBytes = %d, want > 0 with %d spilled partitions",
			res.Stats.SpilledBytes, res.Stats.SpilledPartitions)
	}
	if res.Trace.Find("spill") == nil {
		t.Errorf("no spill span recorded:\n%s", res.Trace.Tree())
	}
	// Unbounded run writes nothing.
	free, err := eng.ExecuteWith(q, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if free.Stats.SpilledBytes != 0 {
		t.Errorf("unbounded run reports SpilledBytes = %d", free.Stats.SpilledBytes)
	}
}

// TestExplainAnalyze checks the EXPLAIN ANALYZE contract: the plan's
// estimates stay, actuals are stamped per step (deterministic rows) and
// for the whole query, and the rendering carries both.
func TestExplainAnalyze(t *testing.T) {
	eng, q := joinHeavyEngine(t, 100)
	plan, res, err := eng.ExplainAnalyze(context.Background(), q, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Analyzed {
		t.Fatal("plan not marked Analyzed")
	}
	if plan.ActualRows != len(res.Rows) {
		t.Errorf("plan.ActualRows = %d, want %d", plan.ActualRows, len(res.Rows))
	}
	if plan.ActualNs <= 0 {
		t.Errorf("plan.ActualNs = %d, want > 0", plan.ActualNs)
	}
	if len(plan.Triples) != len(res.Stats.StepRows) {
		t.Fatalf("plan has %d steps, stats %d", len(plan.Triples), len(res.Stats.StepRows))
	}
	for i, tp := range plan.Triples {
		if tp.ActualRows != res.Stats.StepRows[i] {
			t.Errorf("step %d ActualRows = %d, want %d", i+1, tp.ActualRows, res.Stats.StepRows[i])
		}
		if tp.ActualNs <= 0 {
			t.Errorf("step %d ActualNs = %d, want > 0", i+1, tp.ActualNs)
		}
	}
	last := plan.Triples[len(plan.Triples)-1]
	if last.ActualRows != res.Stats.JoinedRows {
		t.Errorf("last step ActualRows = %d, want JoinedRows %d", last.ActualRows, res.Stats.JoinedRows)
	}
	out := plan.String()
	if !strings.Contains(out, "analyzed:") || !strings.Contains(out, "actual") {
		t.Errorf("rendering lacks actuals:\n%s", out)
	}
	// Plain Explain stays estimate-only.
	cold, err := eng.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Analyzed || strings.Contains(cold.String(), "actual") {
		t.Errorf("Explain leaked actuals")
	}
}

// TestTracingOffAllocs is the zero-overhead guard: with metrics
// registered but no Trace set, a query must allocate exactly as much as
// with the whole obs package disabled. Any per-row span or metric work
// on the disabled path shows up here as a diff.
func TestTracingOffAllocs(t *testing.T) {
	eng, q := joinHeavyEngine(t, 200)
	opts := Options{Workers: 1}
	run := func() {
		if _, err := eng.ExecuteWith(q, opts); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm plan cache and metric label children

	// AllocsPerRun counts process-wide mallocs, so a background GC cycle
	// landing inside one measurement inflates it by a couple of allocs.
	// That noise is strictly additive — take the minimum of several
	// measurements per leg and compare those exactly.
	measure := func() float64 {
		best := math.Inf(1)
		for i := 0; i < 4; i++ {
			if a := testing.AllocsPerRun(3, run); a < best {
				best = a
			}
		}
		return best
	}
	on := measure()
	obs.SetEnabled(false)
	defer obs.SetEnabled(true)
	off := measure()
	// Exact equality in normal builds. The race runtime allocates shadow
	// state nondeterministically, so under -race allow a few allocs of
	// slack — still orders of magnitude below any per-row regression
	// (this world runs thousands of rows per execution).
	slack := 0.0
	if raceEnabled {
		slack = 16
	}
	if diff := on - off; diff > slack || diff < -slack {
		t.Errorf("allocs with metrics on = %.1f, obs disabled = %.1f; want identical (slack %.0f)", on, off, slack)
	}
}
