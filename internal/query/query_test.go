package query

import (
	"testing"

	"repro/internal/kb"
)

func TestParseBasicQuery(t *testing.T) {
	q, err := Parse("SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 2 || q.Select[0] != "x" || q.Select[1] != "p" {
		t.Fatalf("Select = %v", q.Select)
	}
	if len(q.Where) != 2 {
		t.Fatalf("Where = %v", q.Where)
	}
	if !q.Where[0].S.IsVar() || q.Where[0].P.Value.Str != "InstanceOf" || q.Where[0].O.Value.Str != "Vehicle" {
		t.Fatalf("triple 0 = %v", q.Where[0])
	}
}

func TestParseLiteralsAndQualifiedNames(t *testing.T) {
	q, err := Parse(`SELECT ?x WHERE ?x Owner "Alice" . ?x Price 2000 . ?x InstanceOf carrier.SUV`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].O.Value.Kind != kb.KindString || q.Where[0].O.Value.Str != "Alice" {
		t.Fatalf("string literal = %v", q.Where[0].O)
	}
	if q.Where[1].O.Value.Kind != kb.KindNumber || q.Where[1].O.Value.Num != 2000 {
		t.Fatalf("number literal = %v", q.Where[1].O)
	}
	if q.Where[2].O.Value.Str != "carrier.SUV" {
		t.Fatalf("qualified term = %v", q.Where[2].O)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse("select ?x where ?x a b"); err != nil {
		t.Fatalf("lowercase keywords rejected: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"WHERE ?x a b",                        // no SELECT
		"SELECT WHERE ?x a b",                 // no vars
		"SELECT ?x",                           // no WHERE
		"SELECT ?x WHERE ?x a",                // incomplete triple
		"SELECT ?x WHERE ?x a b ?y c d",       // missing dot
		"SELECT ?y WHERE ?x a b",              // unbound select var
		"SELECT ?x WHERE ?x a \"unterminated", // bad string
		"SELECT ? WHERE ?x a b",               // empty var
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	in := `SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p . ?x Owner "Alice"`
	q := MustParse(in)
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", q.String(), err)
	}
	if q2.String() != q.String() {
		t.Fatalf("round trip unstable: %q vs %q", q.String(), q2.String())
	}
}

func TestValidate(t *testing.T) {
	q := Query{Select: []string{"x"}, Where: []Triple{{S: V("x"), P: C(kb.Term("a")), O: C(kb.Term("b"))}}}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Query{}).Validate(); err == nil {
		t.Fatalf("empty query valid")
	}
}

func TestTermString(t *testing.T) {
	if V("x").String() != "?x" {
		t.Fatalf("var String wrong")
	}
	if C(kb.Number(3)).String() != "3" {
		t.Fatalf("const String wrong")
	}
}
