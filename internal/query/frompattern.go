package query

import (
	"fmt"

	"repro/internal/kb"
	"repro/internal/pattern"
)

// FromPattern converts a graph pattern (§3) into a conjunctive query —
// the paper uses the same pattern notation for querying ("possible
// patterns over our transportation world are carrier:car:driver, and
// truck(O:owner,model)"; "we refer interested readers to papers on
// semi-structured query languages").
//
// Each pattern edge becomes a triple; named pattern nodes become term
// constants, variable nodes become query variables (anonymous variables
// get generated names v0, v1, ...). Unlabeled pattern edges have no
// triple-level counterpart ("any predicate"), so they become a predicate
// variable. selectVars picks the projection; empty selects every named
// variable.
func FromPattern(p *pattern.Pattern, selectVars ...string) (Query, error) {
	if err := p.Validate(); err != nil {
		return Query{}, err
	}
	if len(p.Edges) == 0 {
		return Query{}, fmt.Errorf("query: pattern has no edges; a query needs at least one triple")
	}
	names := make([]string, len(p.Nodes))
	var autoVars []string
	anon := 0
	for i, n := range p.Nodes {
		switch {
		case n.Var != "":
			names[i] = "?" + n.Var
			autoVars = append(autoVars, n.Var)
		case n.Name == "":
			v := fmt.Sprintf("v%d", anon)
			anon++
			names[i] = "?" + v
			autoVars = append(autoVars, v)
		default:
			names[i] = n.Name
		}
	}
	term := func(s string) Term {
		if len(s) > 1 && s[0] == '?' {
			return V(s[1:])
		}
		return C(kb.Term(s))
	}
	var q Query
	predAnon := 0
	for _, e := range p.Edges {
		var pt Term
		if e.Label == "" {
			v := fmt.Sprintf("p%d", predAnon)
			predAnon++
			pt = V(v)
		} else {
			pt = C(kb.Term(e.Label))
		}
		q.Where = append(q.Where, Triple{S: term(names[e.From]), P: pt, O: term(names[e.To])})
	}
	if len(selectVars) > 0 {
		q.Select = selectVars
	} else {
		q.Select = dedupeStrings(autoVars)
		if len(q.Select) == 0 {
			return Query{}, fmt.Errorf("query: pattern binds no variables; name one with ?x or O:term")
		}
	}
	return q, q.Validate()
}

func dedupeStrings(ss []string) []string {
	seen := make(map[string]bool, len(ss))
	out := ss[:0:0]
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
