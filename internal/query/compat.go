package query

import "context"

// executeCompat is the PR 1 planned executor, retained behind
// Options{CompatJoins} as the E12 benchmark baseline and as a third
// differential check in the determinism suite: binding maps per row,
// map-copy merges, string join keys re-derived from the row sets, and a
// barrier between each step's scans and its join. The slot-based tuple
// executor (exec.go) replaces it on the default path; the scan fan-out
// machinery (runScanTasks) is shared.
func (e *Engine) executeCompat(ctx context.Context, q Query, plan *execPlan, opts Options, res *Result) error {
	st := &res.Stats
	workers := resolveWorkers(opts)

	rows := []binding{{}}
	bound := make(map[string]bool)
	applied := make([]bool, len(q.Filters))
	for si := range plan.steps {
		if err := ctx.Err(); err != nil {
			return err
		}
		stp := &plan.steps[si]
		// Every (triple, source) pair counts as a source scan, skipped
		// or not, matching the sequential accounting.
		st.SourceScans += len(stp.scans)
		var tasks []int
		for j, sc := range stp.scans {
			if !sc.view.skip {
				tasks = append(tasks, j)
			}
		}
		results := make([][]binding, len(stp.scans))
		e.runScanTasks(ctx, stp, tasks, workers, st, nil, func(j int, ts *Stats) {
			sc := stp.scans[j]
			results[j] = e.scanWithView(sc.name, sc.src, stp.triple, sc.view, ts, true)
		})
		// Concatenate per-task rows in source order (the barrier the
		// tuple executor's streamed join removed).
		var next []binding
		for j := range stp.scans {
			next = append(next, results[j]...)
		}

		rows = joinBindings(rows, next)
		for _, v := range stp.vars {
			bound[v] = true
		}
		rows = applyFilters(rows, q.Filters, applied, bound)
		if len(rows) == 0 {
			break
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	st.JoinedRows = len(rows)
	e.project(res, rows, q)
	return nil
}
