package query

import "repro/internal/obs"

// Package-wide executor metrics, registered on obs.Default and exposed
// by oniond's /metrics. Every update happens once per planned execution
// (recordQueryMetrics), never per row or per tuple batch, so the
// instrumented path stays within the E18 overhead bar.
var (
	qmExecutions = obs.Default.CounterVec(
		"onion_query_executions_total",
		"Planned query executions completed successfully, by plan-cache outcome.",
		"cache")
	qmSpillRuns = obs.Default.Counter(
		"onion_query_spill_runs_total",
		"Grace-hash spill runs created (build and probe sides, recursion included).")
	qmSpilledBytes = obs.Default.Counter(
		"onion_query_spilled_bytes_total",
		"Bytes written to grace-hash spill runs, record framing included.")
	qmSpilledPartitions = obs.Default.Counter(
		"onion_query_spilled_partitions_total",
		"Join partitions that spilled tuples to disk under a memory limit.")
	qmJoinPartitions = obs.Default.Histogram(
		"onion_query_join_partitions",
		"Hash partitions used by an execution's widest partitioned join step.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128})
	qmBudgetPeak = obs.Default.Histogram(
		"onion_query_budget_peak_bytes",
		"Peak accounted memory-budget bytes per execution (0 when the path does not account).",
		[]float64{1 << 10, 16 << 10, 256 << 10, 1 << 20, 16 << 20, 256 << 20, 1 << 30})
)

// recordQueryMetrics folds one successful planned execution's stats
// into the package metrics. Gated on obs.Enabled at each mutation (a
// single atomic load when disabled, which is E18's uninstrumented leg).
func recordQueryMetrics(st *Stats) {
	cache := "compiled"
	if st.PlanCacheHit {
		cache = "hit"
	}
	qmExecutions.With(cache).Inc()
	qmSpillRuns.Add(uint64(st.SpillRuns))
	qmSpilledBytes.Add(uint64(st.SpilledBytes))
	qmSpilledPartitions.Add(uint64(st.SpilledPartitions))
	qmJoinPartitions.Observe(float64(st.JoinPartitions))
	qmBudgetPeak.Observe(float64(st.BytesReserved))
}
