package query

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/query/mem"
)

// This file is the columnar batch executor: the default data plane for
// every pipelined execution (plan.batches) unless Options{RowAtATime}
// pins the PR 3 tuple-at-a-time pipeline. The topology is exactly
// executePipelined's — one bounded scan pool, per-(step,partition) stage
// workers wired by channels, streaming projection, ordered merge — but
// the currency between stages is a colBatch (batch.go) instead of a
// []tuple batch, and the three per-row hot loops run vectorized:
//
//   - hash computation is one pass per key column into the batch's
//     []uint64 hash vector (hashKeys), with no rowkey byte
//     materialisation;
//   - join-key verification probes the columnar build store by hash
//     vector and verifies matches column-wise (keysEqualAt);
//   - filters clear bits in the batch's selection mask
//     (applyFiltersVec) instead of copying survivors.
//
// The budget is charged once per batch at column capacity (batchAlloc)
// instead of once per tuple/arena-block, and spilling reuses the row
// pipeline's grace-hash machinery wholesale: batch rows bridge to the
// rowkey wire format through a reusable scratch tuple (spillRun.add
// encodes immediately and never retains its argument), and grace-join
// emissions re-enter the columnar flow through batchOutput. Partitions
// degrade hybrid: the already-reserved build prefix stays in memory and
// only the overflow spills (Stats.HybridJoins).
//
// Rows are byte-identical to every other executor. The batch hash
// function differs from the row pipeline's (hashCell vs hashKey), so
// rows land on different partitions — but a match pair routes to the
// same partition under any key-hash function, every partition's row set
// is deduped and sorted, and the final ordered merge normalises the
// global order. JoinedRows/StepRows count post-filter emissions, which
// are match-pair counts independent of partitioning and batching.

// batchRouter scatters selected batch rows toward one step's partition
// channels, one local batch per destination, sending each as it fills.
// In-flight accounting is the batch pool charge itself: a routed batch
// stays checked out (charged at the root) until its consumer returns it.
type batchRouter struct {
	chans []chan *colBatch
	local []*colBatch
	alloc *batchAlloc
	// slots is the copy list: the slots bound in the rows being routed.
	slots   []int
	batches int
}

func newBatchRouter(chans []chan *colBatch, alloc *batchAlloc, slots []int) *batchRouter {
	return &batchRouter{chans: chans, local: make([]*colBatch, len(chans)), alloc: alloc, slots: slots}
}

func (rt *batchRouter) route(src *colBatch, i int, h uint64) {
	p := int(h % uint64(len(rt.chans)))
	lb := rt.local[p]
	if lb == nil {
		lb = rt.alloc.get()
		rt.local[p] = lb
	}
	lb.copyRow(src, i, h, rt.slots)
	if lb.full() {
		rt.chans[p] <- lb
		rt.local[p] = nil
		rt.batches++
	}
}

// forward hands a whole batch to one destination without copying rows —
// the aligned fast path: when a stage's carried hashes are already the
// downstream routing hashes and the two stages run the same partition
// count, every row of this partition's output lands on the same
// downstream partition, so the staging batch itself is the routed batch.
func (rt *batchRouter) forward(b *colBatch, p int) {
	rt.chans[p] <- b
	rt.batches++
}

func (rt *batchRouter) flush() {
	for p, b := range rt.local {
		if b == nil {
			continue
		}
		rt.local[p] = nil
		if b.n > 0 {
			rt.chans[p] <- b
			rt.batches++
		} else {
			rt.alloc.put(b)
		}
	}
}

// batchScanSink accumulates one scan task's accepted rows in a staging
// batch and flushes it through the vectorized passes: step-0 filters on
// the selection mask, one hash pass over the routing key columns, then a
// scatter of the selected rows to the consuming step's partitions.
type batchScanSink struct {
	plan    *execPlan
	filters []Filter // step-0 filter set; nil on build-side scans
	slots   []int    // routing key slots (hash target)
	staging *colBatch
	rt      *batchRouter

	batches              int
	rows                 int64
	kept                 int64
	filterIn, filterKept int64
}

func (snk *batchScanSink) flush() {
	b := snk.staging
	if b.n == 0 {
		return
	}
	snk.batches++
	snk.rows += int64(b.n)
	if len(snk.filters) > 0 {
		snk.filterIn += int64(b.n)
		b.applyFiltersVec(snk.filters, snk.plan)
	}
	b.hashKeys(snk.slots)
	kept := int64(0)
	for i := 0; i < b.n; i++ {
		if b.live(i) {
			snk.rt.route(b, i, b.hashes[i])
			kept++
		}
	}
	if len(snk.filters) > 0 {
		snk.filterKept += kept
	}
	snk.kept += kept
	b.n = 0
	b.sel = nil
}

// batchEmit adapts scanMatch's (s, p, o) callback into columnar row
// construction — tupleEmit's exact semantics (first-occurrence positions
// write their slot, repeats enforce equality, the report gates the scan
// row counters) writing straight into the staging batch's columns. A
// rejected row never advances n, so its partial writes are overwritten
// by the next row (which writes a superset of the same slots).
func batchEmit(stp *planStep, snk *batchScanSink) func(s, p, o kb.Value) bool {
	return func(s, p, o kb.Value) bool {
		b := snk.staging
		vals := [3]kb.Value{s, p, o}
		j := b.n
		for i := 0; i < 3; i++ {
			sl := stp.spec[i]
			if sl < 0 {
				continue
			}
			if stp.firstPos[i] {
				b.cols[sl][j] = vals[i]
			} else if !b.cols[sl][j].Equal(vals[i]) {
				return false
			}
		}
		b.n++
		if b.full() {
			snk.flush()
		}
		return true
	}
}

// batchOutput is one stage partition's probe-output sink: matched rows
// accumulate in a staging batch (probe row's columns plus the build
// side's new slots, under the carried key hash), and each full batch
// flushes through the vectorized passes — the step's filters on the
// selection mask, a rehash on the next step's key slots (skipped on
// aligned chains, where the carried hash is already the downstream
// hash), then either a scatter to the next stage or the streaming
// projection.
type batchOutput struct {
	stp     *planStep
	plan    *execPlan
	filters []Filter
	// probeSlots is the probe side's bound-slot list (everything bound
	// before this step); merged output rows carry probeSlots ∪ newSlots.
	probeSlots []int
	out        *colBatch
	rt         *batchRouter // nil on the last stage
	proj       *stageProj   // non-nil on the last stage
	// direct enables whole-batch forwarding: the chain is aligned (carried
	// hashes are the downstream routing hashes) and the downstream stage
	// runs the same partition count, so every output row of partition
	// `part` routes to downstream partition `part` — the staging batch is
	// handed over as-is and a fresh one checked out, skipping the
	// row-by-row scatter copy entirely.
	direct bool
	part   int
	alloc  *batchAlloc
	// directProj enables unstaged projection on the last stage: with no
	// last-step filters pending, a matched row's SELECT cells resolve
	// straight from their side (probe batch or build store) into the
	// streaming projection, skipping the full-width staging copy. out is
	// nil in this mode. selFromBuild[k] reports whether SELECT slot k is
	// bound by the last step (build side) or earlier (probe side).
	directProj   bool
	selFromBuild []bool

	batches              int
	rows                 int64
	emitted              int64
	filterIn, filterKept int64
}

// rowFrom stages the merge of probe row (src, i) with build-store row j.
func (o *batchOutput) rowFrom(src *colBatch, i int, bs *buildStore, j int32, h uint64) {
	ob := o.out
	k := ob.n
	for _, s := range o.probeSlots {
		ob.cols[s][k] = src.cols[s][i]
	}
	for _, s := range o.stp.newSlots {
		ob.cols[s][k] = bs.cols[s][j]
	}
	ob.hashes[k] = h
	ob.n++
	if ob.full() {
		o.flush()
	}
}

// rowFromTupleStore is rowFrom for a row-major probe tuple (the
// probe-overflow replay against the in-memory build prefix).
func (o *batchOutput) rowFromTupleStore(l tuple, bs *buildStore, j int32, h uint64) {
	ob := o.out
	k := ob.n
	for _, s := range o.probeSlots {
		ob.cols[s][k] = l[s]
	}
	for _, s := range o.stp.newSlots {
		ob.cols[s][k] = bs.cols[s][j]
	}
	ob.hashes[k] = h
	ob.n++
	if ob.full() {
		o.flush()
	}
}

// rowFromTuples stages the merge of two row-major tuples (grace-join
// completion, where both sides replay from disk).
func (o *batchOutput) rowFromTuples(l, r tuple, h uint64) {
	ob := o.out
	k := ob.n
	for _, s := range o.probeSlots {
		ob.cols[s][k] = l[s]
	}
	for _, s := range o.stp.newSlots {
		ob.cols[s][k] = r[s]
	}
	ob.hashes[k] = h
	ob.n++
	if ob.full() {
		o.flush()
	}
}

// projRowFrom projects the match of probe row (src, i) with build row j
// without staging it — stageProj.addBatchRow's encoding, dedup and
// charge, with each SELECT cell read from its own side.
func (o *batchOutput) projRowFrom(src *colBatch, i int, bs *buildStore, j int32) {
	o.emitted++
	pp := o.proj
	pp.buf = pp.buf[:0]
	for k, s := range pp.sel {
		if o.selFromBuild[k] {
			pp.buf = appendValueKey(pp.buf, bs.cols[s][j])
		} else {
			pp.buf = appendValueKey(pp.buf, src.cols[s][i])
		}
	}
	if _, dup := pp.keys[string(pp.buf)]; dup {
		return
	}
	key := string(pp.buf)
	pp.ensure(projRowCost(key, len(pp.sel)))
	pp.keys[key] = struct{}{}
	out := make([]kb.Value, len(pp.sel))
	for k, s := range pp.sel {
		if o.selFromBuild[k] {
			out[k] = bs.cols[s][j]
		} else {
			out[k] = src.cols[s][i]
		}
	}
	pp.rows = append(pp.rows, keyedRow{key, out})
}

// projRowFromTupleStore is projRowFrom for a row-major probe tuple (the
// probe-overflow replay against the in-memory build prefix).
func (o *batchOutput) projRowFromTupleStore(l tuple, bs *buildStore, j int32) {
	o.emitted++
	pp := o.proj
	pp.buf = pp.buf[:0]
	for k, s := range pp.sel {
		if o.selFromBuild[k] {
			pp.buf = appendValueKey(pp.buf, bs.cols[s][j])
		} else {
			pp.buf = appendValueKey(pp.buf, l[s])
		}
	}
	if _, dup := pp.keys[string(pp.buf)]; dup {
		return
	}
	key := string(pp.buf)
	pp.ensure(projRowCost(key, len(pp.sel)))
	pp.keys[key] = struct{}{}
	out := make([]kb.Value, len(pp.sel))
	for k, s := range pp.sel {
		if o.selFromBuild[k] {
			out[k] = bs.cols[s][j]
		} else {
			out[k] = l[s]
		}
	}
	pp.rows = append(pp.rows, keyedRow{key, out})
}

// projRowFromTuples is projRowFrom for two row-major tuples (grace-join
// completion).
func (o *batchOutput) projRowFromTuples(l, r tuple) {
	o.emitted++
	pp := o.proj
	pp.buf = pp.buf[:0]
	for k, s := range pp.sel {
		if o.selFromBuild[k] {
			pp.buf = appendValueKey(pp.buf, r[s])
		} else {
			pp.buf = appendValueKey(pp.buf, l[s])
		}
	}
	if _, dup := pp.keys[string(pp.buf)]; dup {
		return
	}
	key := string(pp.buf)
	pp.ensure(projRowCost(key, len(pp.sel)))
	pp.keys[key] = struct{}{}
	out := make([]kb.Value, len(pp.sel))
	for k, s := range pp.sel {
		if o.selFromBuild[k] {
			out[k] = r[s]
		} else {
			out[k] = l[s]
		}
	}
	pp.rows = append(pp.rows, keyedRow{key, out})
}

func (o *batchOutput) flush() {
	b := o.out
	if b == nil || b.n == 0 {
		return
	}
	o.batches++
	o.rows += int64(b.n)
	if len(o.filters) > 0 {
		o.filterIn += int64(b.n)
		b.applyFiltersVec(o.filters, o.plan)
	}
	kept := int64(0)
	if o.rt != nil {
		// Downstream consumers expect dense batches, so a selection mask
		// (step filters fired) falls back to the scatter, which compacts.
		if o.direct && b.sel == nil {
			o.emitted += int64(b.n)
			o.rt.forward(b, o.part)
			o.out = o.alloc.get()
			return
		}
		if !o.stp.alignedNext {
			b.hashKeys(o.stp.nextKeySlots)
		}
		for i := 0; i < b.n; i++ {
			if b.live(i) {
				o.rt.route(b, i, b.hashes[i])
				kept++
			}
		}
	} else {
		for i := 0; i < b.n; i++ {
			if b.live(i) {
				o.proj.addBatchRow(b, i)
				kept++
			}
		}
	}
	if len(o.filters) > 0 {
		o.filterKept += kept
	}
	o.emitted += kept
	b.n = 0
	b.sel = nil
}

// executeBatched runs a keyed join chain on the columnar batch pipeline.
// Caller guarantees are executePipelined's (plan.batches implies
// plan.pipelines); cancellation, spill-error drain, deterministic stat
// merges and the final ordered merge all mirror it line for line.
func (e *Engine) executeBatched(ctx context.Context, q Query, plan *execPlan, opts Options, bud *mem.Budget, res *Result) error {
	st := &res.Stats
	width := len(plan.slotNames)
	workers := resolveWorkers(opts)
	n := len(plan.steps)
	filters := stepFilterSets(q, plan)
	tc := tupleCost(width)
	alloc := newBatchAlloc(width, bud)
	pipeT0 := time.Now()

	// Copy lists: which slots a row actually carries at each point in
	// the chain. Columns outside a row's list are never copied, spilled
	// or read — the batch equivalent of the tuple executor's "unbound
	// slots are never read" invariant, and most of the win over copying
	// full-width rows at every stage boundary.
	boundAfter := make([][]int, n) // slots bound once step si has run
	scanRowSlots := make([][]int, n)
	{
		var acc []int
		for si := range plan.steps {
			stp := &plan.steps[si]
			acc = append(acc, stp.newSlots...)
			boundAfter[si] = append([]int(nil), acc...)
			// A build-side scan row binds exactly its triple's slots:
			// the join keys plus the step's newly bound slots.
			scanRowSlots[si] = append(append([]int(nil), stp.keySlots...), stp.newSlots...)
		}
	}

	parts := make([]int, n)
	for si := 1; si < n; si++ {
		parts[si] = plan.stepPartCount(si, opts, workers)
	}
	if opts.Partitions == 0 {
		st.AdaptivePartitions = n - 1
	}

	var stepSpans []*obs.Span
	if opts.Trace != nil {
		stepSpans = make([]*obs.Span, n)
		for si := range plan.steps {
			s := opts.Trace.Child("step " + strconv.Itoa(si+1) + ": " + plan.steps[si].triple.String())
			s.SetInt("est_rows", int64(plan.steps[si].est))
			if si > 0 {
				s.SetInt("partitions", int64(parts[si]))
			}
			s.SetAttr("exec", "batch")
			stepSpans[si] = s
		}
	}
	stepSpan := func(si int) *obs.Span {
		if stepSpans == nil {
			return nil
		}
		return stepSpans[si]
	}

	// Budget wiring matches the row pipeline: stage partitions' spillable
	// retention (build stores, pending probe batches) reserves from a
	// shared half-cap pool; the fixed working state — the batch pool's
	// capacity charges, spill write buffers, projected rows — draws on
	// the root via MustReserve.
	limit := opts.MemoryLimit
	chanDepth := pipeChanDepth
	poolLimit := int64(0)
	if limit > 0 {
		chanDepth = budgetedChanDepth
		poolLimit = max(limit/2, 1)
	}
	spillPool := bud.Child(poolLimit)
	// The last stage's projection dedup sets draw on the same pool —
	// but only under a limit; unbounded executions keep the historical
	// root accounting and never rotate.
	var projPool *mem.Budget
	if limit > 0 {
		projPool = spillPool
	}

	upCh := make([][]chan *colBatch, n)
	scanCh := make([][]chan *colBatch, n)
	mkChans := func(parts int) []chan *colBatch {
		chs := make([]chan *colBatch, parts)
		for p := range chs {
			chs[p] = make(chan *colBatch, chanDepth)
		}
		return chs
	}
	for si := 1; si < n; si++ {
		upCh[si] = mkChans(parts[si])
		scanCh[si] = mkChans(parts[si])
	}

	cancel := make(chan struct{})
	var cancelOnce sync.Once
	cancelFn := func() { cancelOnce.Do(func() { close(cancel) }) }
	var errOnce sync.Once
	var pipeErr error
	setErr := func(err error) {
		if err == nil {
			return
		}
		errOnce.Do(func() { pipeErr = err })
		cancelFn()
	}

	taskStats := make([][]Stats, n)
	liveTasks := make([][]int, n)
	total := 0
	for si := range plan.steps {
		stp := &plan.steps[si]
		st.SourceScans += len(stp.scans)
		taskStats[si] = make([]Stats, len(stp.scans))
		for j, sc := range stp.scans {
			if !sc.view.skip {
				liveTasks[si] = append(liveTasks[si], j)
			}
		}
		total += len(liveTasks[si])
	}

	stepOut := make([]int64, n)
	stepDur := make([]int64, n)
	// Per-stage-partition counters, merged in (step, partition) order.
	stageStream := make([][]int, n)
	stageBatchCnt := make([][]int, n)
	stageBatchRows := make([][]int64, n)
	stageSpilled := make([][]int, n)
	stageHybrid := make([][]int, n)
	stageRuns := make([][]int, n)
	stageBytes := make([][]int64, n)
	for si := 1; si < n; si++ {
		stageStream[si] = make([]int, parts[si])
		stageBatchCnt[si] = make([]int, parts[si])
		stageBatchRows[si] = make([]int64, parts[si])
		stageSpilled[si] = make([]int, parts[si])
		stageHybrid[si] = make([]int, parts[si])
		stageRuns[si] = make([]int, parts[si])
		stageBytes[si] = make([]int64, parts[si])
	}
	// Last-stage projection spill counters (one slot per partition).
	projSpills := make([]int, parts[n-1])
	projRunCnt := make([]int, parts[n-1])
	projRunBytes := make([]int64, parts[n-1])
	// Filter-pass totals for Stats.SelectivityPct. Plain sums, so atomic
	// accumulation is still deterministic whatever the scheduling.
	var filterInTot, filterKeptTot int64

	scanWg := make([]sync.WaitGroup, n)
	for si := range plan.steps {
		scanWg[si].Add(len(liveTasks[si]))
	}
	runScan := func(si, j int) {
		defer scanWg[si].Done()
		stp := &plan.steps[si]
		sc := stp.scans[j]
		ts := &taskStats[si][j]
		var ss *obs.Span
		if sp := stepSpan(si); sp != nil {
			ss = sp.Child("scan " + sc.name)
			defer func() {
				ss.SetInt("rows", int64(ts.EdgeRows+ts.FactRows))
				ss.End()
			}()
		}
		snk := &batchScanSink{plan: plan, staging: alloc.get()}
		if si == 0 {
			snk.filters = filters[0]
			snk.slots = stp.nextKeySlots
			snk.rt = newBatchRouter(upCh[1], alloc, boundAfter[0])
		} else {
			snk.slots = stp.keySlots
			snk.rt = newBatchRouter(scanCh[si], alloc, scanRowSlots[si])
		}
		e.scanMatch(sc.name, sc.src, stp.triple, sc.view, ts, true, batchEmit(stp, snk))
		snk.flush()
		snk.rt.flush()
		alloc.put(snk.staging)
		ts.StreamedBatches += snk.rt.batches
		ts.Batches += snk.batches
		ts.BatchRows += int(snk.rows)
		atomic.AddInt64(&filterInTot, snk.filterIn)
		atomic.AddInt64(&filterKeptTot, snk.filterKept)
		if si == 0 {
			atomic.AddInt64(&stepOut[0], snk.kept)
		}
	}

	poolSize := workers
	if poolSize > total {
		poolSize = total
	}
	if poolSize > st.Workers {
		st.Workers = poolSize
	}
	type scanJob struct{ si, j int }
	jobs := make(chan scanJob)
	var poolWg sync.WaitGroup
	for w := 0; w < poolSize; w++ {
		poolWg.Add(1)
		go func() {
			defer poolWg.Done()
			for jb := range jobs {
				runScan(jb.si, jb.j)
			}
		}()
	}
	dispatcherDone := make(chan struct{})
	var dispatched, cancelled int
	go func() {
		defer close(dispatcherDone)
		defer close(jobs)
		for si := 0; si < n; si++ {
			for _, j := range liveTasks[si] {
				select {
				case jobs <- scanJob{si, j}:
					dispatched++
				case <-cancel:
					cancelled++
					scanWg[si].Done()
				case <-ctx.Done():
					cancelled++
					scanWg[si].Done()
				}
			}
		}
	}()

	var closersWg sync.WaitGroup
	closersWg.Add(n)
	go func() {
		defer closersWg.Done()
		scanWg[0].Wait()
		stepDur[0] = time.Since(pipeT0).Nanoseconds()
		if sp := stepSpan(0); sp != nil {
			sp.SetInt("rows", atomic.LoadInt64(&stepOut[0]))
			sp.End()
		}
		for _, ch := range upCh[1] {
			close(ch)
		}
		if atomic.LoadInt64(&stepOut[0]) == 0 {
			cancelFn()
		}
	}()
	for si := 1; si < n; si++ {
		go func(si int) {
			scanWg[si].Wait()
			for _, ch := range scanCh[si] {
				close(ch)
			}
		}(si)
	}

	// Join stages: one partition worker per (step, partition), building a
	// columnar store from the scan side while buffering (or spilling)
	// early probe batches. Degradation is hybrid from the start: a failed
	// build reservation freezes the already-reserved prefix in memory and
	// routes only the overflow to disk — every overflowed probe row is
	// written to the probe run (before any probing, so the encoded bytes
	// predate any in-place merge) and later both replays against the
	// frozen prefix and grace-joins against the spilled build rows; the
	// two match sets are disjoint because every build row lives on
	// exactly one side.
	projParts := make([][]keyedRow, parts[n-1])
	stageWg := make([]sync.WaitGroup, n)
	for si := 1; si < n; si++ {
		stageWg[si].Add(parts[si])
		for p := 0; p < parts[si]; p++ {
			go func(si, p int) {
				defer stageWg[si].Done()
				stp := &plan.steps[si]
				var partSpan, buildSpan *obs.Span
				if ssp := stepSpan(si); ssp != nil {
					partSpan = ssp.Child("part " + strconv.Itoa(p))
					buildSpan = partSpan.Child("build")
				}
				partBud := spillPool.Child(0)
				bs := newBuildStore(stp, width)
				var pending []*colBatch
				var buildCharged, pendCharged int64
				sp := &spillPart{dir: opts.SpillDir, width: width, bud: partBud, io: bud}
				// One scratch tuple per spilled slot list, so slots
				// outside a list stay zero (the wire format's unbound-
				// slot convention) and spilled bytes are deterministic.
				buildScratch := make(tuple, width)
				probeScratch := make(tuple, width)
				buildSpilled, probeSpilled, hybrid := false, false, false
				var spillErr error
				fail := func(err error) {
					if err != nil && spillErr == nil {
						spillErr = err
						setErr(err)
					}
				}
				writeProbeRows := func(b *colBatch) {
					for i := 0; i < b.n; i++ {
						if err := sp.probe.add(b.rowTuple(i, probeScratch, boundAfter[si-1]), b.hashes[i]); err != nil {
							fail(err)
							return
						}
					}
				}
				degradeBuild := func() {
					if buildSpilled || spillErr != nil {
						return
					}
					if err := sp.ensureBuild(); err != nil {
						fail(err)
						return
					}
					if err := sp.ensureProbe(); err != nil {
						fail(err)
						return
					}
					buildSpilled = true
					stageSpilled[si][p] = 1
					// Hybrid grace: the reserved prefix stays resident and
					// frozen; only rows from here on go to disk.
					if bs.rows() > 0 {
						hybrid = true
						stageHybrid[si][p] = 1
					}
					for _, b := range pending {
						if spillErr == nil {
							writeProbeRows(b)
						}
						alloc.put(b)
					}
					pending = nil
					partBud.Release(pendCharged)
					pendCharged = 0
				}
				takeBuild := func(b *colBatch) {
					defer alloc.put(b)
					if spillErr != nil {
						return
					}
					cost := int64(b.n) * tc
					if !buildSpilled && partBud.Reserve(cost) {
						buildCharged += cost
						bs.appendBatch(b)
						return
					}
					degradeBuild()
					if spillErr != nil {
						return
					}
					for i := 0; i < b.n; i++ {
						if err := sp.build.add(b.rowTuple(i, buildScratch, scanRowSlots[si]), b.hashes[i]); err != nil {
							fail(err)
							return
						}
					}
				}
				takeProbeEarly := func(b *colBatch) {
					if spillErr != nil {
						alloc.put(b)
						return
					}
					if buildSpilled {
						writeProbeRows(b)
						alloc.put(b)
						return
					}
					cost := int64(b.n) * tc
					if partBud.Reserve(cost) {
						pendCharged += cost
						pending = append(pending, b)
						return
					}
					if err := sp.ensureProbe(); err != nil {
						fail(err)
						alloc.put(b)
						return
					}
					probeSpilled = true
					stageSpilled[si][p] = 1
					writeProbeRows(b)
					alloc.put(b)
				}
				sc, up := scanCh[si][p], upCh[si][p]
				for sc != nil {
					select {
					case b, ok := <-sc:
						if !ok {
							sc = nil
							continue
						}
						takeBuild(b)
					case b, ok := <-up:
						if !ok {
							up = nil
							continue
						}
						takeProbeEarly(b)
					}
				}
				if buildSpan != nil {
					buildSpan.SetAttr("spilled", strconv.FormatBool(buildSpilled))
					buildSpan.SetAttr("hybrid", strconv.FormatBool(hybrid))
					buildSpan.SetInt("rows", int64(bs.rows()))
					buildSpan.End()
				}
				var probeSpan *obs.Span
				if partSpan != nil {
					probeSpan = partSpan.Child("probe")
				}
				o := &batchOutput{stp: stp, plan: plan, filters: filters[si],
					probeSlots: boundAfter[si-1]}
				if si+1 < n {
					o.out = alloc.get()
					o.rt = newBatchRouter(upCh[si+1], alloc, boundAfter[si])
					o.direct = stp.alignedNext && parts[si+1] == parts[si]
					o.part = p
					o.alloc = alloc
				} else {
					o.proj = newStageProj(q, plan, bud, projPool, opts.SpillDir)
					if len(filters[si]) == 0 {
						// No filters pending on the last step: project each
						// match straight from its sides, no staging batch.
						o.directProj = true
						o.selFromBuild = make([]bool, len(o.proj.sel))
						for k, s := range o.proj.sel {
							for _, ns := range stp.newSlots {
								if s == ns {
									o.selFromBuild[k] = true
									break
								}
							}
						}
					} else {
						o.out = alloc.get()
					}
				}
				probeBatch := func(b *colBatch) {
					if bs.rows() == 0 {
						return // drain only; nothing can join
					}
					for i := 0; i < b.n; i++ {
						h := b.hashes[i]
						for j := bs.head(h); j >= 0; j = bs.next[j] {
							if bs.keysEqualAt(b, i, j, stp.keySlots) {
								if o.directProj {
									o.projRowFrom(b, i, bs, j)
								} else {
									o.rowFrom(b, i, bs, j, h)
								}
							}
						}
					}
				}
				probeTuple := func(t tuple, h uint64) {
					for j := bs.head(h); j >= 0; j = bs.next[j] {
						if bs.keysEqualTuple(t, j, stp.keySlots) {
							if o.directProj {
								o.projRowFromTupleStore(t, bs, j)
							} else {
								o.rowFromTupleStore(t, bs, j, h)
							}
						}
					}
				}
				if spillErr == nil && !buildSpilled {
					for _, b := range pending {
						probeBatch(b)
						alloc.put(b)
					}
					pending = nil
					if probeSpilled {
						var spillSpan *obs.Span
						if partSpan != nil {
							spillSpan = partSpan.Child("spill")
						}
						decodeArena := &tupleArena{width: width, blockTuples: spillDecodeBlock}
						fail(sp.probe.replay(width, decodeArena, func(t tuple, h uint64) error {
							if bs.rows() > 0 {
								probeTuple(t, h)
							}
							return nil
						}))
						sp.probe.close()
						sp.probe = nil
						if spillSpan != nil {
							spillSpan.SetInt("runs", int64(sp.runs))
							spillSpan.SetInt("bytes", sp.bytes)
							spillSpan.End()
						}
					}
					if up != nil {
						for b := range up {
							if spillErr == nil {
								probeBatch(b)
							}
							alloc.put(b)
						}
					}
				} else {
					if up != nil {
						for b := range up {
							if spillErr == nil && buildSpilled {
								writeProbeRows(b)
							}
							alloc.put(b)
						}
					}
					if spillErr == nil && buildSpilled {
						var spillSpan *obs.Span
						if partSpan != nil {
							spillSpan = partSpan.Child("spill")
						}
						if hybrid {
							// The frozen prefix's matches: every overflowed
							// probe row replays through the in-memory half
							// before the disk half grace-joins — the probe
							// run is re-readable, so the grace join streams
							// it again afterwards.
							decodeArena := &tupleArena{width: width, blockTuples: spillDecodeBlock}
							fail(sp.probe.replay(width, decodeArena, func(t tuple, h uint64) error {
								probeTuple(t, h)
								return nil
							}))
						}
						if spillErr == nil {
							fail(sp.join(stp, func(l tuple, h uint64, rs []tuple) {
								for _, r := range rs {
									if o.directProj {
										o.projRowFromTuples(l, r)
									} else {
										o.rowFromTuples(l, r, h)
									}
								}
							}))
						}
						if spillSpan != nil {
							spillSpan.SetInt("runs", int64(sp.runs))
							spillSpan.SetInt("bytes", sp.bytes)
							spillSpan.End()
						}
					}
				}
				bs.release()
				o.flush()
				sp.close()
				stageRuns[si][p] = sp.runs
				stageBytes[si][p] = sp.bytes
				partBud.Release(buildCharged + pendCharged)
				if o.rt != nil {
					o.rt.flush()
					stageStream[si][p] = o.rt.batches
				} else {
					rows, perr := o.proj.finish()
					fail(perr)
					projParts[p] = rows
					if o.proj.spilled {
						projSpills[p] = 1
						projRunCnt[p] = len(o.proj.runs)
						projRunBytes[p] = o.proj.bytes
					}
				}
				if o.out != nil {
					alloc.put(o.out)
				}
				stageBatchCnt[si][p] = o.batches
				stageBatchRows[si][p] = o.rows
				atomic.AddInt64(&filterInTot, o.filterIn)
				atomic.AddInt64(&filterKeptTot, o.filterKept)
				if probeSpan != nil {
					probeSpan.SetInt("rows", o.emitted)
					probeSpan.End()
				}
				partSpan.End()
				atomic.AddInt64(&stepOut[si], o.emitted)
			}(si, p)
		}
	}
	for si := 1; si < n; si++ {
		go func(si int) {
			defer closersWg.Done()
			stageWg[si].Wait()
			stepDur[si] = time.Since(pipeT0).Nanoseconds()
			if sp := stepSpan(si); sp != nil {
				sp.SetInt("rows", atomic.LoadInt64(&stepOut[si]))
				sp.End()
			}
			if si+1 < n {
				for _, ch := range upCh[si+1] {
					close(ch)
				}
			}
			if atomic.LoadInt64(&stepOut[si]) == 0 {
				cancelFn()
			}
		}(si)
	}

	stageWg[n-1].Wait()
	poolWg.Wait()
	<-dispatcherDone
	closersWg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	if pipeErr != nil {
		return pipeErr
	}

	for si := range plan.steps {
		for j := range taskStats[si] {
			st.accrue(taskStats[si][j])
		}
	}
	for si := 1; si < n; si++ {
		for p := 0; p < parts[si]; p++ {
			st.StreamedBatches += stageStream[si][p]
			st.Batches += stageBatchCnt[si][p]
			st.BatchRows += int(stageBatchRows[si][p])
			st.SpilledPartitions += stageSpilled[si][p]
			st.HybridJoins += stageHybrid[si][p]
			st.SpillRuns += stageRuns[si][p]
			st.SpilledBytes += stageBytes[si][p]
		}
	}
	for p := 0; p < parts[n-1]; p++ {
		st.ProjectionSpills += projSpills[p]
		st.SpillRuns += projRunCnt[p]
		st.SpilledBytes += projRunBytes[p]
	}
	st.StepRows = make([]int, n)
	st.StepDurNs = make([]int64, n)
	for si := 0; si < n; si++ {
		st.StepRows[si] = int(stepOut[si])
		st.StepDurNs[si] = stepDur[si]
	}
	st.ParallelScans += dispatched
	st.ScansCancelled += cancelled
	st.PipelinedSteps = n - 1
	for si := 1; si < n; si++ {
		if st.JoinPartitions < parts[si] {
			st.JoinPartitions = parts[si]
		}
	}
	st.StepPartitions = make([]int, n)
	copy(st.StepPartitions[1:], parts[1:])
	if in := atomic.LoadInt64(&filterInTot); in > 0 {
		st.SelectivityPct = 100 * float64(atomic.LoadInt64(&filterKeptTot)) / float64(in)
	} else {
		st.SelectivityPct = 100
	}

	st.JoinedRows = int(stepOut[n-1])
	res.Rows = mergeSortedKeyed(projParts, bud)
	return nil
}
