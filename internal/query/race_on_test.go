//go:build race

package query

// raceEnabled reports whether the race detector instruments this build;
// exact allocation-count assertions get a small slack under it (the
// race runtime allocates shadow state nondeterministically).
const raceEnabled = true
