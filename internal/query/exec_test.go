package query

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/articulation"
	"repro/internal/kb"
	"repro/internal/ontology"
	"repro/internal/rules"
)

// joinHeavyEngine builds a two-source world where every instance matches
// every conjunct of the returned query, so the join frontier stays at
// full width through every step — the shape that stresses the tuple join
// machinery rather than scan selectivity.
func joinHeavyEngine(t testing.TB, instances int) (*Engine, Query) {
	t.Helper()
	sources := make(map[string]*Source, 2)
	var onts []*ontology.Ontology
	for i := 1; i <= 2; i++ {
		name := fmt.Sprintf("jh%d", i)
		o := ontology.New(name)
		o.MustAddTerm("Item")
		for _, p := range []string{"Price", "Qty", "Region"} {
			o.MustAddTerm(p)
			o.MustRelate("Item", ontology.AttributeOf, p)
		}
		store := kb.New(name)
		for k := 0; k < instances; k++ {
			inst := fmt.Sprintf("%sI%d", name, k)
			store.MustAdd(inst, "InstanceOf", kb.Term("Item"))
			store.MustAdd(inst, "Price", kb.Number(float64(50+k%211)))
			store.MustAdd(inst, "Qty", kb.Number(float64(1+k%37)))
			store.MustAdd(inst, "Region", kb.Term(fmt.Sprintf("R%d", k%5)))
		}
		sources[name] = &Source{Ont: o, KB: store}
		onts = append(onts, o)
	}
	set := rules.NewSet(rules.MustParse("jh1.Item => jh2.Item"))
	res, err := articulation.Generate("jhart", onts[0], onts[1], set, articulation.Options{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(res.Art, sources)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParse(`SELECT ?x ?p ?r WHERE ?x InstanceOf Item . ?x Price ?p . ?x Qty ?q . ?x Region ?r . FILTER ?p > 100`)
	return eng, q
}

// TestTupleExecutorMatchesReferences checks the three execution paths —
// sequential reference, PR 1 compat joins, slot-tuple joins (inline and
// partitioned/streamed) — against each other on the join-heavy world.
func TestTupleExecutorMatchesReferences(t *testing.T) {
	eng, q := joinHeavyEngine(t, 300)
	want, err := eng.ExecuteWith(q, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatalf("join-heavy world produced no rows")
	}
	modes := []struct {
		name string
		opts Options
	}{
		{"tuple-inline", Options{Workers: 1}},
		{"tuple-barrier-pool", Options{Workers: 4, StepBarriers: true}},
		{"pipelined", Options{Workers: 4}},
		{"pipelined-cached", Options{Workers: 4}},
		{"pipelined-parts-3", Options{Workers: 4, Partitions: 3}},
		{"row-pipeline", Options{Workers: 4, RowAtATime: true}},
		{"row-pipeline-parts-3", Options{Workers: 4, Partitions: 3, RowAtATime: true}},
		{"batch-16k-budget", Options{Workers: 4, MemoryLimit: 1 << 14}},
		{"compat-inline", Options{Workers: 1, CompatJoins: true}},
		{"compat-pool", Options{Workers: 4, CompatJoins: true}},
	}
	for _, m := range modes {
		got, err := eng.ExecuteWith(q, m.opts)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if !want.EqualRows(got) {
			t.Errorf("%s diverged: sequential %d rows, got %d", m.name, len(want.Rows), len(got.Rows))
		}
		if got.Stats.JoinedRows != want.Stats.JoinedRows {
			t.Errorf("%s JoinedRows = %d, want %d", m.name, got.Stats.JoinedRows, want.Stats.JoinedRows)
		}
	}
	// The pipelined run must actually have partitioned and streamed,
	// with the partition counts planner-derived (adaptive) rather than
	// pinned by an Options{Partitions} override.
	got, err := eng.ExecuteWith(q, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.JoinPartitions < 1 {
		t.Errorf("JoinPartitions = %d, want >= 1", got.Stats.JoinPartitions)
	}
	if got.Stats.AdaptivePartitions == 0 {
		t.Errorf("default partitioning not planner-derived: %+v", got.Stats)
	}
	if got.Stats.StreamedBatches == 0 {
		t.Errorf("no batches streamed: %+v", got.Stats)
	}
	if got.Stats.PipelinedSteps == 0 {
		t.Errorf("pooled chain did not pipeline: %+v", got.Stats)
	}
	// The default pipelined run executes on the columnar batch plane;
	// Options{RowAtATime} must pin the tuple plane on the same pool.
	if got.Stats.Batches == 0 || got.Stats.BatchRows == 0 {
		t.Errorf("default pipeline did not batch: %+v", got.Stats)
	}
	rowLeg, err := eng.ExecuteWith(q, Options{Workers: 4, RowAtATime: true})
	if err != nil {
		t.Fatal(err)
	}
	if rowLeg.Stats.Batches != 0 || rowLeg.Stats.BatchRows != 0 {
		t.Errorf("RowAtATime run reported column batches: %+v", rowLeg.Stats)
	}
	// So must the per-step barrier run — within each step.
	barrier, err := eng.ExecuteWith(q, Options{Workers: 4, StepBarriers: true})
	if err != nil {
		t.Fatal(err)
	}
	if barrier.Stats.JoinPartitions < 1 || barrier.Stats.StreamedBatches == 0 {
		t.Errorf("barrier run did not partition/stream within steps: %+v", barrier.Stats)
	}
	if barrier.Stats.PipelinedSteps != 0 {
		t.Errorf("barrier run claims pipelining: %+v", barrier.Stats)
	}
	// An explicit global Partitions override still pins every step.
	pinned, err := eng.ExecuteWith(q, Options{Workers: 4, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Stats.JoinPartitions != 4 || pinned.Stats.AdaptivePartitions != 0 {
		t.Errorf("Partitions override not honoured: %+v", pinned.Stats)
	}
	// And the inline run must not report phantom partitions.
	inline, err := eng.ExecuteWith(q, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if inline.Stats.JoinPartitions != 0 || inline.Stats.StreamedBatches != 0 {
		t.Errorf("inline run reported partition stats: %+v", inline.Stats)
	}
}

// TestTupleCrossProduct covers the disconnected-conjunct path (no shared
// slots between steps) on all executors.
func TestTupleCrossProduct(t *testing.T) {
	eng, _ := joinHeavyEngine(t, 10)
	q := MustParse(`SELECT ?x ?y WHERE ?x InstanceOf Item . ?y Price 51`)
	want, err := eng.ExecuteWith(q, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatalf("cross product empty")
	}
	for _, opts := range []Options{{Workers: 1}, {Workers: 4}, {CompatJoins: true}} {
		got, err := eng.ExecuteWith(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !want.EqualRows(got) {
			t.Errorf("opts %+v diverged on cross product", opts)
		}
	}
}

// TestPartitionedJoinRaceHammer runs the streamed partitioned join from
// many goroutines with varying pool sizes while the plan cache churns.
// Run with -race.
func TestPartitionedJoinRaceHammer(t *testing.T) {
	eng, q := joinHeavyEngine(t, 120)
	q2 := MustParse(`SELECT ?x ?q WHERE ?x InstanceOf Item . ?x Qty ?q . ?x Region R2`)
	want, err := eng.ExecuteWith(q, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	want2, err := eng.ExecuteWith(q2, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const iters = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				qi, ref := q, want
				if (g+i)%2 == 1 {
					qi, ref = q2, want2
				}
				got, err := eng.ExecuteWith(qi, Options{Workers: 2 + (g+i)%3})
				if err != nil {
					errs <- err
					return
				}
				if !ref.EqualRows(got) {
					errs <- fmt.Errorf("goroutine %d iter %d diverged under partitioned join", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPerRowJoinAllocs bounds the per-joined-row allocation cost of the
// inline tuple path — the regression guard for the slot/tuple
// representation. The binding-map representation it replaced spent
// several map allocations per row; the tuple path amortises row storage
// through arenas and must stay under a small constant per row (dedup
// keys, output rows and map growth dominate).
func TestPerRowJoinAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting under -short")
	}
	eng, q := joinHeavyEngine(t, 200)
	opts := Options{Workers: 1}
	res, err := eng.ExecuteWith(q, opts) // warm plan cache and edge indexes
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Stats.JoinedRows
	if rows == 0 {
		t.Fatalf("no joined rows")
	}
	avg := testing.AllocsPerRun(3, func() {
		if _, err := eng.ExecuteWith(q, opts); err != nil {
			t.Fatal(err)
		}
	})
	perRow := avg / float64(rows)
	// Measured ~8 allocs per joined row for the whole execution (arena
	// blocks, projection keys and output rows, hash-map growth) versus
	// ~64 for the binding-map representation on the same world. The
	// bound leaves headroom for runtime changes while still catching any
	// return to per-row maps or string join keys.
	if perRow > 15 {
		t.Errorf("per-row join allocations = %.2f (total %.0f over %d rows), want <= 15", perRow, avg, rows)
	}
}

// TestPerRowBatchAllocs pins the batch plane's amortized allocation
// rate below the row-at-a-time pipeline's measured ~8 per joined row:
// columns, hash vectors and selection masks are allocated per batch and
// pooled, so the per-row count must drop well under the PR 2 bound.
func TestPerRowBatchAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting under -short")
	}
	eng, q := joinHeavyEngine(t, 300)
	opts := Options{Workers: 4}
	res, err := eng.ExecuteWith(q, opts) // warm plan cache, edge indexes and batch pools
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Stats.JoinedRows
	if rows == 0 {
		t.Fatalf("no joined rows")
	}
	if res.Stats.Batches == 0 {
		t.Fatalf("batch path not engaged: %+v", res.Stats)
	}
	avg := testing.AllocsPerRun(3, func() {
		if _, err := eng.ExecuteWith(q, opts); err != nil {
			t.Fatal(err)
		}
	})
	perRow := avg / float64(rows)
	// Measured ~2.7 allocs per joined row for the whole execution
	// (pooled column batches, projection keys, worker machinery). The
	// bound leaves headroom for runtime changes while failing on any
	// return to per-row column or hash-vector allocation.
	if perRow > 8 {
		t.Errorf("per-row batch allocations = %.2f (total %.0f over %d rows), want <= 8", perRow, avg, rows)
	}
}

// TestNaNJoinMatchesReference regresses the NaN join contract: the
// reference paths key joins on Format(), where every NaN renders "NaN"
// and therefore joins, so the tuple path must join NaN with NaN too —
// on every executor, with identical rows.
func TestNaNJoinMatchesReference(t *testing.T) {
	eng, _ := joinHeavyEngine(t, 4)
	nan := math.NaN()
	eng.sources["jh1"].KB.MustAdd("nanA", "Price", kb.Number(nan))
	eng.sources["jh1"].KB.MustAdd("nanB", "Qty", kb.Number(nan))
	eng.InvalidateCache()
	q := MustParse("SELECT ?x ?y WHERE ?x Price ?p . ?y Qty ?p")
	want, err := eng.ExecuteWith(q, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	foundNaN := false
	for _, r := range want.Rows {
		if r[0].Format() == "jh1.nanA" && r[1].Format() == "jh1.nanB" {
			foundNaN = true
		}
	}
	if !foundNaN {
		t.Fatalf("sequential reference did not join NaN prices: %v", want.Rows)
	}
	for _, opts := range []Options{{Workers: 1}, {Workers: 4}, {CompatJoins: true}} {
		got, err := eng.ExecuteWith(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !want.EqualRows(got) {
			t.Errorf("opts %+v diverged on NaN join: want %d rows, got %d", opts, len(want.Rows), len(got.Rows))
		}
	}
}

// TestAppendSlotKeyKindStrict locks the join-key encoding: values that
// format identically but differ in kind must produce different keys, and
// length prefixes must keep adjacent payloads unambiguous.
func TestAppendSlotKeyKindStrict(t *testing.T) {
	mk := func(vals ...kb.Value) string {
		return string(appendSlotKey(nil, tuple(vals), []int{0, 1}[:len(vals)]))
	}
	if mk(kb.Term("3000")) == mk(kb.Number(3000)) {
		t.Errorf("kind-blind join key: Term(3000) == Number(3000)")
	}
	if mk(kb.Term("3000")) == mk(kb.String("3000")) {
		t.Errorf("kind-blind join key: Term(3000) == String(3000)")
	}
	// Shifting bytes across the field boundary must change the key.
	if mk(kb.Term("ab"), kb.Term("c")) == mk(kb.Term("a"), kb.Term("bc")) {
		t.Errorf("ambiguous field framing in join key")
	}
	if mk(kb.Term("a\x00b"), kb.Term("c")) == mk(kb.Term("a"), kb.Term("b\x00c")) {
		t.Errorf("NUL-containing payloads collide")
	}
	if mk(kb.Number(1), kb.Number(2)) == mk(kb.Number(2), kb.Number(1)) {
		t.Errorf("number order ignored in join key")
	}
}

// TestTupleArenaReuse checks that an abandoned row (repeated-variable
// rejection) does not leak stale slots into the next committed row.
func TestTupleArenaReuse(t *testing.T) {
	a := &tupleArena{width: 2}
	first := a.next()
	first[0] = kb.Term("stale")
	// Abandon (no commit): the next row reuses the memory and overwrites
	// the same slot before committing.
	second := a.next()
	second[0] = kb.Term("fresh")
	a.commit()
	if second[0].Str != "fresh" || second[1].Kind != kb.KindTerm || second[1].Str != "" {
		t.Errorf("arena reuse leaked state: %v", second)
	}
	third := a.next()
	if third[0].Str != "" {
		t.Errorf("committed tuple memory reused: %v", third)
	}
}
