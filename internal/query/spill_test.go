package query

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/articulation"
	"repro/internal/kb"
	"repro/internal/ontology"
	"repro/internal/query/mem"
	"repro/internal/rules"
)

// adversarialValues is the payload set the spill codec must round-trip
// kind-strictly: raw NUL bytes (the rowkey terminator), the 0xff escape
// byte, NaN (payload-canonicalised), signed zeros, infinities, and
// kind-colliding renderings (Term/String/Number that format alike).
var adversarialValues = []kb.Value{
	kb.Term("plain"),
	kb.Term(""),
	kb.Term("a\x00b"),
	kb.Term("\x00"),
	kb.Term("\x00\xff"),
	kb.Term("a\x00\x00c"),
	kb.Term("\xffc"),
	kb.Term("3000"),
	kb.String("3000"),
	kb.String("a\x00b"),
	kb.String(""),
	kb.Number(3000),
	kb.Number(0),
	kb.Number(math.Copysign(0, -1)),
	kb.Number(math.NaN()),
	kb.Number(math.Inf(1)),
	kb.Number(math.Inf(-1)),
	kb.Number(-2.5),
}

// TestValueKeyRoundTrip locks decodeValueKey as the exact inverse of
// appendValueKey — the property the spill wire format rests on. NaN is
// the one non-identity: every NaN decodes to the canonical quiet NaN,
// which is equal to the original under the engine's semantics.
func TestValueKeyRoundTrip(t *testing.T) {
	for _, v := range adversarialValues {
		enc := appendValueKey(nil, v)
		got, n, err := decodeValueKey(enc)
		if err != nil {
			t.Errorf("%v: decode error: %v", v, err)
			continue
		}
		if n != len(enc) {
			t.Errorf("%v: consumed %d of %d bytes", v, n, len(enc))
		}
		if !sameCell(v, got) {
			t.Errorf("round-trip diverged: %#v -> %#v", v, got)
		}
		// Re-encoding the decoded value must reproduce the bytes — the
		// byte-identical-rows contract of the spill leg.
		if string(appendValueKey(nil, got)) != string(enc) {
			t.Errorf("%v: re-encode differs from original encoding", v)
		}
	}
	// Concatenated fields decode in sequence without framing drift.
	var buf []byte
	for _, v := range adversarialValues {
		buf = appendValueKey(buf, v)
	}
	rest := buf
	for i, v := range adversarialValues {
		got, n, err := decodeValueKey(rest)
		if err != nil {
			t.Fatalf("field %d: %v", i, err)
		}
		if !sameCell(v, got) {
			t.Fatalf("field %d diverged: %#v -> %#v", i, v, got)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after decoding all fields", len(rest))
	}
}

// TestDecodeValueKeyRejectsMalformed locks the decoder's error paths:
// truncated and corrupt encodings must error, never mis-frame.
func TestDecodeValueKeyRejectsMalformed(t *testing.T) {
	for _, bad := range [][]byte{
		{},                          // empty
		{byte(kb.KindNumber)},       // truncated number
		{byte(kb.KindNumber), 1, 2}, // short number
		{byte(kb.KindTerm), 'a'},    // unterminated payload
		{7, 'a', 0},                 // unknown kind tag
	} {
		if _, _, err := decodeValueKey(bad); err == nil {
			t.Errorf("decode(%v) accepted malformed input", bad)
		}
	}
}

// FuzzValueKeyRoundTrip fuzzes the encode/decode pair with arbitrary
// payloads and float images.
func FuzzValueKeyRoundTrip(f *testing.F) {
	f.Add(uint8(0), "a\x00b", 3.5)
	f.Add(uint8(1), "\x00\xff", math.Inf(1))
	f.Add(uint8(2), "", math.NaN())
	f.Fuzz(func(t *testing.T, kind uint8, s string, n float64) {
		var v kb.Value
		switch kind % 3 {
		case 0:
			v = kb.Term(s)
		case 1:
			v = kb.String(s)
		default:
			v = kb.Number(n)
		}
		enc := appendValueKey(nil, v)
		got, used, err := decodeValueKey(enc)
		if err != nil {
			t.Fatalf("decode(%#v): %v", v, err)
		}
		if used != len(enc) {
			t.Fatalf("decode(%#v) consumed %d of %d", v, used, len(enc))
		}
		if !sameCell(v, got) {
			t.Fatalf("round-trip diverged: %#v -> %#v", v, got)
		}
	})
}

// TestSpillRunRoundTrip pushes tuples through a spill run and replays
// them: hashes and every adversarial slot value must survive.
func TestSpillRunRoundTrip(t *testing.T) {
	bud := mem.New(0)
	run, err := newSpillRun("", bud)
	if err != nil {
		t.Fatal(err)
	}
	defer run.close()
	width := 3
	var want []tuple
	var hashes []uint64
	for i, v := range adversarialValues {
		tup := tuple{v, adversarialValues[(i+5)%len(adversarialValues)], kb.Number(float64(i))}
		h := uint64(i) * 0x9E3779B97F4A7C15
		if err := run.add(tup, h); err != nil {
			t.Fatal(err)
		}
		want = append(want, tup)
		hashes = append(hashes, h)
	}
	arena := &tupleArena{width: width, blockTuples: spillDecodeBlock}
	i := 0
	err = run.replay(width, arena, func(tup tuple, h uint64) error {
		if h != hashes[i] {
			t.Errorf("tuple %d: hash %x, want %x", i, h, hashes[i])
		}
		for s := 0; s < width; s++ {
			if !sameCell(tup[s], want[i][s]) {
				t.Errorf("tuple %d slot %d: %#v, want %#v", i, s, tup[s], want[i][s])
			}
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(want) {
		t.Fatalf("replayed %d of %d tuples", i, len(want))
	}
}

// spillAdversarialEngine builds a two-source world whose KB objects draw
// from the adversarial payload set, joined on a shared ?x chain — the
// world where a framing or kind bug in the spill path would corrupt rows.
func spillAdversarialEngine(t testing.TB, instances int, seed int64) (*Engine, Query) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sources := make(map[string]*Source, 2)
	var onts []*ontology.Ontology
	for i := 1; i <= 2; i++ {
		name := fmt.Sprintf("adv%d", i)
		o := ontology.New(name)
		o.MustAddTerm("Item")
		for _, p := range []string{"P1", "P2", "P3"} {
			o.MustAddTerm(p)
			o.MustRelate("Item", ontology.AttributeOf, p)
		}
		store := kb.New(name)
		for k := 0; k < instances; k++ {
			inst := fmt.Sprintf("%sI%d", name, k)
			store.MustAdd(inst, "InstanceOf", kb.Term("Item"))
			for _, p := range []string{"P1", "P2", "P3"} {
				// A couple of values per predicate, drawn from the
				// adversarial set so join keys and projected cells carry
				// NULs, NaNs and kind collisions.
				for d := 0; d < 2; d++ {
					store.MustAdd(inst, p, adversarialValues[rng.Intn(len(adversarialValues))])
				}
			}
		}
		sources[name] = &Source{Ont: o, KB: store}
		onts = append(onts, o)
	}
	set := rules.NewSet(rules.MustParse("adv1.Item => adv2.Item"))
	res, err := articulation.Generate("advart", onts[0], onts[1], set, articulation.Options{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(res.Art, sources)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParse("SELECT ?x ?a ?b ?c WHERE ?x InstanceOf Item . ?x P1 ?a . ?x P2 ?b . ?x P3 ?c")
	return eng, q
}

// TestSpillJoinMatchesInMemory is the spill determinism property: under
// a budget tiny enough to force every join partition into grace-hash
// spilling, rows must stay byte-identical (EqualRows, kind-strict) to
// the sequential reference and to the unbounded pipeline — across
// adversarial rowkey payloads (NaN, raw NULs, 0xff, kind collisions)
// and across seeds.
func TestSpillJoinMatchesInMemory(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		eng, q := spillAdversarialEngine(t, 40, seed)
		want, err := eng.ExecuteWith(q, Options{Sequential: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Rows) == 0 {
			t.Fatalf("seed %d: adversarial world produced no rows", seed)
		}
		unbounded, err := eng.ExecuteWith(q, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !want.EqualRows(unbounded) {
			t.Fatalf("seed %d: unbounded pipeline diverged from sequential", seed)
		}
		spilled, err := eng.ExecuteWith(q, Options{Workers: 4, MemoryLimit: 1 << 12})
		if err != nil {
			t.Fatal(err)
		}
		if spilled.Stats.SpilledPartitions == 0 {
			t.Fatalf("seed %d: 4KB budget did not spill: %+v", seed, spilled.Stats)
		}
		if !want.EqualRows(spilled) {
			t.Errorf("seed %d: spilled rows diverged: sequential %d rows, spilled %d rows",
				seed, len(want.Rows), len(spilled.Rows))
		}
		if spilled.Stats.JoinedRows != want.Stats.JoinedRows {
			t.Errorf("seed %d: JoinedRows = %d, want %d", seed,
				spilled.Stats.JoinedRows, want.Stats.JoinedRows)
		}
		// The default spilled leg above runs on the batch plane; the
		// pinned tuple plane must spill to the same rows.
		rowSpilled, err := eng.ExecuteWith(q, Options{Workers: 4, MemoryLimit: 1 << 12, RowAtATime: true})
		if err != nil {
			t.Fatal(err)
		}
		if rowSpilled.Stats.SpilledPartitions == 0 {
			t.Fatalf("seed %d: row-at-a-time 4KB budget did not spill: %+v", seed, rowSpilled.Stats)
		}
		if !want.EqualRows(rowSpilled) {
			t.Errorf("seed %d: row-at-a-time spilled rows diverged: sequential %d rows, spilled %d rows",
				seed, len(want.Rows), len(rowSpilled.Rows))
		}
	}
}

// TestSpillDeepChain forces the deep-chain world through the spill path
// at several budgets (from "everything spills" to "some partitions
// fit") and demands byte-identical rows and deterministic JoinedRows at
// every cap.
func TestSpillDeepChain(t *testing.T) {
	eng, q := deepChainEngine(t, 60, 2)
	want, err := eng.ExecuteWith(q, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int64{1 << 13, 1 << 16, 1 << 20} {
		got, err := eng.ExecuteWith(q, Options{Workers: 4, MemoryLimit: limit})
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		if !want.EqualRows(got) {
			t.Errorf("limit %d: rows diverged (sequential %d, budgeted %d)",
				limit, len(want.Rows), len(got.Rows))
		}
		if got.Stats.JoinedRows != want.Stats.JoinedRows {
			t.Errorf("limit %d: JoinedRows = %d, want %d", limit,
				got.Stats.JoinedRows, want.Stats.JoinedRows)
		}
		if limit <= 1<<16 && got.Stats.SpilledPartitions == 0 {
			t.Errorf("limit %d: expected spilling: %+v", limit, got.Stats)
		}
		if got.Stats.SpilledPartitions > 0 && got.Stats.SpillRuns == 0 {
			t.Errorf("limit %d: spilled partitions without runs: %+v", limit, got.Stats)
		}
	}
}

// TestSpillWithFilters checks that per-step filters apply identically on
// the grace-hash completion path (filters run in the emit closure the
// spill join shares with the live path).
func TestSpillWithFilters(t *testing.T) {
	eng, _ := deepChainEngine(t, 50, 2)
	q := MustParse("SELECT ?x ?v0 WHERE ?x InstanceOf Item . ?x C1 ?v0 . ?x C2 ?v1 . FILTER ?v0 > 3 . FILTER ?v1 < 1010")
	want, err := eng.ExecuteWith(q, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.ExecuteWith(q, Options{Workers: 4, MemoryLimit: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.SpilledPartitions == 0 {
		t.Fatalf("filter world did not spill: %+v", got.Stats)
	}
	if !want.EqualRows(got) {
		t.Errorf("filtered spill rows diverged: sequential %d, spilled %d",
			len(want.Rows), len(got.Rows))
	}
}

// TestBudgetUnlimitedNeverSpills locks the zero-limit contract: without
// MemoryLimit the pipeline accounts (BytesReserved > 0) but never
// degrades.
func TestBudgetUnlimitedNeverSpills(t *testing.T) {
	eng, q := deepChainEngine(t, 40, 2)
	got, err := eng.ExecuteWith(q, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.SpilledPartitions != 0 || got.Stats.SpillRuns != 0 {
		t.Errorf("unlimited run spilled: %+v", got.Stats)
	}
	if got.Stats.BytesReserved == 0 {
		t.Errorf("unlimited run not accounted: %+v", got.Stats)
	}
}

// TestAdaptivePartitionCounts locks the planner-derived partition
// sizing: a skewed world (one predicate carrying 8x the facts of
// another) gets per-step counts proportional to the estimates — the
// heavy step fans out wider than the light one — while an explicit
// Options{Partitions} pins every step and zeroes the adaptive counter.
func TestAdaptivePartitionCounts(t *testing.T) {
	name := "sk"
	o := ontology.New(name)
	o.MustAddTerm("Item")
	for _, p := range []string{"Light", "Heavy"} {
		o.MustAddTerm(p)
		o.MustRelate("Item", ontology.AttributeOf, p)
	}
	other := ontology.New("skother")
	other.MustAddTerm("Item")
	store := kb.New(name)
	for k := 0; k < 700; k++ {
		inst := fmt.Sprintf("I%d", k)
		store.MustAdd(inst, "InstanceOf", kb.Term("Item"))
		store.MustAdd(inst, "Light", kb.Number(float64(k%7)))
		for d := 0; d < 8; d++ {
			store.MustAdd(inst, "Heavy", kb.Number(float64(k%11*10+d)))
		}
	}
	set := rules.NewSet(rules.MustParse("sk.Item => skother.Item"))
	res, err := articulation.Generate("skart", o, other, set, articulation.Options{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngineWith(res.Art, map[string]*Source{
		name:      {Ont: o, KB: store},
		"skother": {Ont: other},
	}, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := MustParse("SELECT ?x ?l ?h WHERE ?x InstanceOf Item . ?x Light ?l . ?x Heavy ?h")
	plan, err := eng.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	var light, heavy int
	for _, tp := range plan.Triples {
		switch tp.Triple {
		case "?x Light ?l":
			light = tp.Partitions
		case "?x Heavy ?h":
			heavy = tp.Partitions
		}
	}
	if light == 0 || heavy == 0 {
		t.Fatalf("join steps missing partition counts: %+v", plan.Triples)
	}
	if heavy <= light {
		t.Fatalf("heavy step (%d parts) not wider than light step (%d parts)", heavy, light)
	}
	got, err := eng.ExecuteWith(q, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.AdaptivePartitions == 0 {
		t.Fatalf("execution not adaptive: %+v", got.Stats)
	}
	// The recorded per-step counts must match the explained plan.
	seen := map[int]bool{}
	for _, p := range got.Stats.StepPartitions {
		seen[p] = true
	}
	if !seen[light] || !seen[heavy] {
		t.Fatalf("StepPartitions %v missing explained counts light=%d heavy=%d",
			got.Stats.StepPartitions, light, heavy)
	}
	pinned, err := eng.ExecuteWith(q, Options{Workers: 4, Partitions: 5})
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Stats.AdaptivePartitions != 0 || pinned.Stats.JoinPartitions != 5 {
		t.Fatalf("Partitions override not pinned: %+v", pinned.Stats)
	}
	seq, err := eng.ExecuteWith(q, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.EqualRows(got) || !seq.EqualRows(pinned) {
		t.Fatalf("partitioning variants diverged from sequential")
	}
}

// TestGraceJoinSplitAndRecurse drives the recursive re-partitioning
// path directly: a build run many times larger than the budget's
// chunk-capacity proxy must be split by hash bits into sub-run pairs
// (observable as extra runs) and still emit exactly the in-memory
// join's match set.
func TestGraceJoinSplitAndRecurse(t *testing.T) {
	const width = 2
	stp := &planStep{keySlots: []int{0}, newSlots: []int{1}}
	// Root cap 16KB: the split gate's chunk proxy is half that, so a
	// ~1000-tuple build run (88KB at width 2) must re-partition.
	root := mem.New(16 << 10)
	sp := &spillPart{width: width, bud: root.Child(0), io: root}
	if err := sp.ensureBuild(); err != nil {
		t.Fatal(err)
	}
	if err := sp.ensureProbe(); err != nil {
		t.Fatal(err)
	}
	hashOf := func(tup tuple) uint64 {
		return hashKey(appendSlotKey(nil, tup, stp.keySlots))
	}
	const buildN = 1000
	for i := 0; i < buildN; i++ {
		tup := tuple{kb.Term(fmt.Sprintf("k%d", i)), kb.Number(float64(i))}
		if err := sp.build.add(tup, hashOf(tup)); err != nil {
			t.Fatal(err)
		}
	}
	// Probe every third key, plus misses that can never match.
	want := make(map[string]bool)
	probeN := 0
	for i := 0; i < buildN; i += 3 {
		tup := tuple{kb.Term(fmt.Sprintf("k%d", i)), kb.Value{}}
		if err := sp.probe.add(tup, hashOf(tup)); err != nil {
			t.Fatal(err)
		}
		want[fmt.Sprintf("k%d=%d", i, i)] = true
		probeN++
		miss := tuple{kb.Term(fmt.Sprintf("miss%d", i)), kb.Value{}}
		if err := sp.probe.add(miss, hashOf(miss)); err != nil {
			t.Fatal(err)
		}
	}
	runsBefore := sp.runs
	got := make(map[string]bool)
	err := sp.join(stp, func(l tuple, h uint64, rs []tuple) {
		for _, r := range rs {
			got[fmt.Sprintf("%s=%g", l[0].Str, r[1].Num)] = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sp.runs == runsBefore {
		t.Fatalf("oversized build run did not re-partition (runs still %d)", sp.runs)
	}
	if len(got) != probeN {
		t.Fatalf("matches = %d, want %d", len(got), probeN)
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing match %s", k)
		}
	}
	if used := root.Used(); used != 0 {
		t.Fatalf("budget not released after join: used = %d", used)
	}
}

// projWideEngine builds a two-source world whose *distinct answer set*
// dwarfs any single join build table: every instance carries one unique
// P value, so the streaming projection must retain one row per instance
// while each join partition only ever holds its share of the chain.
// This is the world where, before the projection learned to spill, the
// answer alone blew past Options{MemoryLimit} via MustReserve.
func projWideEngine(t testing.TB, instances int) (*Engine, Query) {
	t.Helper()
	sources := make(map[string]*Source, 2)
	var onts []*ontology.Ontology
	for i := 1; i <= 2; i++ {
		name := fmt.Sprintf("pw%d", i)
		o := ontology.New(name)
		o.MustAddTerm("Item")
		o.MustAddTerm("P")
		o.MustRelate("Item", ontology.AttributeOf, "P")
		store := kb.New(name)
		for k := 0; k < instances; k++ {
			inst := fmt.Sprintf("%sI%d", name, k)
			store.MustAdd(inst, "InstanceOf", kb.Term("Item"))
			store.MustAdd(inst, "P", kb.Number(float64(i*1000000+k)))
		}
		sources[name] = &Source{Ont: o, KB: store}
		onts = append(onts, o)
	}
	set := rules.NewSet(rules.MustParse("pw1.Item => pw2.Item"))
	res, err := articulation.Generate("pwart", onts[0], onts[1], set, articulation.Options{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(res.Art, sources)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParse("SELECT ?x ?v WHERE ?x InstanceOf Item . ?x P ?v")
	return eng, q
}

// TestProjectionSpillMatchesInMemory is satellite determinism for the
// spillable projection: under a cap the distinct answer set cannot fit,
// the dedup sets must rotate to sorted runs (Stats.ProjectionSpills)
// and the merged-back rows must stay byte-identical to the sequential
// reference — on both the row-at-a-time and the columnar executor.
func TestProjectionSpillMatchesInMemory(t *testing.T) {
	eng, q := projWideEngine(t, 4000)
	want, err := eng.ExecuteWith(q, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != 8000 {
		t.Fatalf("projection world produced %d rows, want 8000", len(want.Rows))
	}
	unbounded, err := eng.ExecuteWith(q, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if unbounded.Stats.ProjectionSpills != 0 {
		t.Fatalf("unbounded run rotated its projection: %+v", unbounded.Stats)
	}
	if !want.EqualRows(unbounded) {
		t.Fatal("unbounded pipeline diverged from sequential")
	}
	for _, leg := range []struct {
		name string
		opts Options
	}{
		{"batch", Options{Workers: 4, MemoryLimit: 1 << 19}},
		{"row", Options{Workers: 4, MemoryLimit: 1 << 19, RowAtATime: true}},
	} {
		got, err := eng.ExecuteWith(q, leg.opts)
		if err != nil {
			t.Fatalf("%s: %v", leg.name, err)
		}
		if got.Stats.ProjectionSpills == 0 {
			t.Fatalf("%s: answer set over the cap did not rotate the projection: %+v",
				leg.name, got.Stats)
		}
		if got.Stats.SpillRuns == 0 {
			t.Errorf("%s: projection spilled without runs: %+v", leg.name, got.Stats)
		}
		if got.Stats.SpilledBytes == 0 {
			t.Errorf("%s: projection spilled without bytes: %+v", leg.name, got.Stats)
		}
		if !want.EqualRows(got) {
			t.Errorf("%s: projection-spilled rows diverged: sequential %d rows, got %d",
				leg.name, len(want.Rows), len(got.Rows))
		}
	}
}

// TestHybridGraceJoin locks the hybrid degradation on both executors: at
// a cap that lets build tables partially reserve before the pool runs
// out, degraded partitions keep their frozen in-memory prefix
// (Stats.HybridJoins) and the completion — frozen-half replay plus
// grace-hash over the spilled half — still yields byte-identical rows.
func TestHybridGraceJoin(t *testing.T) {
	eng, q := deepChainEngine(t, 60, 2)
	want, err := eng.ExecuteWith(q, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, leg := range []struct {
		name string
		opts Options
	}{
		{"batch", Options{Workers: 4, MemoryLimit: 1 << 16}},
		{"row", Options{Workers: 4, MemoryLimit: 1 << 16, RowAtATime: true}},
	} {
		got, err := eng.ExecuteWith(q, leg.opts)
		if err != nil {
			t.Fatalf("%s: %v", leg.name, err)
		}
		if got.Stats.SpilledPartitions == 0 {
			t.Fatalf("%s: expected spilling at 64KB: %+v", leg.name, got.Stats)
		}
		if got.Stats.HybridJoins == 0 {
			t.Fatalf("%s: no partition degraded hybrid (frozen prefix kept): %+v",
				leg.name, got.Stats)
		}
		if !want.EqualRows(got) {
			t.Errorf("%s: hybrid rows diverged: sequential %d rows, got %d",
				leg.name, len(want.Rows), len(got.Rows))
		}
		if got.Stats.JoinedRows != want.Stats.JoinedRows {
			t.Errorf("%s: JoinedRows = %d, want %d", leg.name,
				got.Stats.JoinedRows, want.Stats.JoinedRows)
		}
	}
}
