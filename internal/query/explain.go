package query

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"
)

// TripleScan describes how one triple is reformulated for one source.
type TripleScan struct {
	Source string
	// Subjects / Predicates / Objects are the expanded constant sets
	// ("*" alone means unconstrained — a variable position).
	Subjects   []string
	Predicates []string
	Objects    []string
	// Skipped is true when the triple cannot denote anything in this
	// source (an expansion came up empty), so the source is pruned.
	Skipped bool
	// Est is the planner's row estimate for this scan.
	Est int
}

// TriplePlan is the reformulation of one WHERE conjunct, in execution
// (join) order.
type TriplePlan struct {
	Triple string
	Scans  []TripleScan
	// Index is the conjunct's textual position in the WHERE clause;
	// when it differs from the slice position the planner reordered it.
	Index int
	// Est is the planner's total row estimate across sources.
	Est int
	// KeyVars are the variables the step hash-joins on (empty for the
	// first step and for disconnected cross products).
	KeyVars []string
	// NewVars are the variables this step binds first.
	NewVars []string
	// StreamsInto is the join-order position of the step this step's
	// output streams into on the pipelined path (-1 for the last step
	// and on non-pipelined plans), and StreamKeyVars are the downstream
	// key variables the output is re-hashed on at production time.
	StreamsInto   int
	StreamKeyVars []string
	// Partitions is the hash-partition count this step's join runs with
	// under the engine's default options: planner-derived from the scan
	// estimates (skew-aware) unless Options{Partitions} pins a global
	// count (0 for the leading scan step and when joins run inline).
	Partitions int
	// ActualRows and ActualNs are the step's measured row output (after
	// the filters that first apply at it) and wall-clock duration, set
	// only when the enclosing Plan is Analyzed. Rows are deterministic;
	// durations are wall-clock, and on the pipelined path every step
	// runs concurrently from execution start, so step durations overlap
	// rather than sum.
	ActualRows int
	ActualNs   int64
}

// Plan is the explanation of a query's reformulation (§2.3: "a query
// phrased in terms of an articulation ontology [is turned into] an
// execution plan against the sources involved") plus the execution
// wiring of the slot-based engine: the variable→slot assignment and the
// selectivity-ordered, hash-partitioned join pipeline.
type Plan struct {
	Query string
	// Slots is the tuple layout: Slots[i] is the variable stored at
	// slot i.
	Slots []string
	// Workers is the worker-pool size the engine's default options
	// resolve to.
	Workers int
	// Partitions is the widest hash-partition count across the join
	// steps (each step's own count is in its TriplePlan.Partitions;
	// Options{Partitions} pins them all; 0 when joins run inline).
	Partitions int
	// MemoryLimit is the engine default options' execution budget in
	// bytes (0 = unlimited): joins that cannot reserve within it degrade
	// to grace-hash spilling on the pipelined path.
	MemoryLimit int64
	// Pipelined reports that the engine's default options execute this
	// plan as a cross-step streaming pipeline: every step's probe output
	// streams straight into the next step's partitions while later
	// steps' sources are still scanning.
	Pipelined bool
	// Batched reports that the pipeline's data plane is the columnar
	// batch executor: rows flow between stages as per-slot value vectors
	// with hash, filter and scatter passes vectorized per batch. False
	// when Options{RowAtATime} pins the tuple-at-a-time pipeline (or the
	// plan does not pipeline at all).
	Batched bool
	// Triples are the WHERE conjuncts in execution (join) order.
	Triples []TriplePlan
	// Analyzed is true when the plan came from ExplainAnalyze: the query
	// actually ran, and ActualRows/ActualNs (whole query) plus each
	// TriplePlan's actuals record what the execution measured against
	// the planner's estimates. Per-step actuals are populated on the
	// slot-executor paths (StepRows); the Sequential reference path
	// reports only the totals.
	Analyzed   bool
	ActualRows int
	ActualNs   int64
}

// String renders the plan for terminal display; Analyzed plans carry
// "actual" annotations next to every estimate.
func (p *Plan) String() string {
	var b strings.Builder
	if p.Analyzed {
		fmt.Fprintf(&b, "plan for %s  (analyzed: %d rows in %s)\n",
			p.Query, p.ActualRows, time.Duration(p.ActualNs).Round(time.Microsecond))
	} else {
		fmt.Fprintf(&b, "plan for %s\n", p.Query)
	}
	if len(p.Slots) > 0 {
		parts := make([]string, len(p.Slots))
		for i, v := range p.Slots {
			parts[i] = fmt.Sprintf("?%s=s%d", v, i)
		}
		fmt.Fprintf(&b, "  slots: %s\n", strings.Join(parts, " "))
	}
	switch {
	case p.Batched:
		fmt.Fprintf(&b, "  exec: columnar batches; cross-step pipeline — %d scan workers, joins hash-partitioned %d ways, vectorized hash/filter/probe over slot columns\n",
			p.Workers, p.Partitions)
	case p.Pipelined:
		fmt.Fprintf(&b, "  exec: slot tuples; cross-step pipeline — %d scan workers, joins hash-partitioned %d ways, probe output streamed between steps\n",
			p.Workers, p.Partitions)
	case p.Workers > 1:
		fmt.Fprintf(&b, "  exec: slot tuples; keyed joins hash-partitioned %d ways across %d workers, scan output streamed in batches, per-step barriers\n",
			p.Partitions, p.Workers)
	default:
		b.WriteString("  exec: slot tuples; keyed joins inline (single worker)\n")
	}
	if p.MemoryLimit > 0 {
		fmt.Fprintf(&b, "  memory: budget %d bytes — joins degrade to grace-hash spill at their reservation\n", p.MemoryLimit)
	}
	for i, tp := range p.Triples {
		key := "-"
		if len(tp.KeyVars) > 0 {
			key = "{?" + strings.Join(tp.KeyVars, " ?") + "}"
		}
		parts := ""
		if tp.Partitions > 0 {
			parts = fmt.Sprintf(", parts %d", tp.Partitions)
		}
		actual := ""
		if p.Analyzed && tp.ActualNs > 0 {
			actual = fmt.Sprintf(", actual %d rows in %s",
				tp.ActualRows, time.Duration(tp.ActualNs).Round(time.Microsecond))
		}
		fmt.Fprintf(&b, "  step %d: triple %s  (where #%d, est %d, join key %s%s%s)\n",
			i+1, tp.Triple, tp.Index+1, tp.Est, key, parts, actual)
		if tp.StreamsInto >= 0 {
			fmt.Fprintf(&b, "    ~> streams into step %d on {?%s}\n",
				tp.StreamsInto+1, strings.Join(tp.StreamKeyVars, " ?"))
		}
		for _, sc := range tp.Scans {
			if sc.Skipped {
				fmt.Fprintf(&b, "    %-12s pruned (no denotation)\n", sc.Source)
				continue
			}
			fmt.Fprintf(&b, "    %-12s subj %s  pred %s  obj %s  est %d\n",
				sc.Source, setOrStar(sc.Subjects), setOrStar(sc.Predicates), setOrStar(sc.Objects), sc.Est)
		}
	}
	return b.String()
}

func setOrStar(ss []string) string {
	if len(ss) == 0 {
		return "*"
	}
	return "{" + strings.Join(ss, ", ") + "}"
}

// Explain compiles the query without executing it, returning the
// per-triple, per-source scan plan in join order together with the slot
// assignment. It shares the plan cache with execution, so explaining a
// query warms its plan.
func (e *Engine) Explain(q Query) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	e.validateEpochs()
	ep, _ := e.cachedPlan(q)
	workers := resolveWorkers(e.opts)
	plan := &Plan{
		Query:       q.String(),
		Slots:       append([]string(nil), ep.slotNames...),
		Workers:     workers,
		MemoryLimit: e.opts.MemoryLimit,
	}
	plan.Pipelined = ep.pipelines(e.opts, workers)
	plan.Batched = ep.batches(e.opts, workers)
	for i, stp := range ep.steps {
		tp := TriplePlan{
			Triple:      stp.triple.String(),
			Index:       stp.origIdx,
			Est:         stp.est,
			KeyVars:     slotVars(ep, stp.keySlots),
			NewVars:     slotVars(ep, stp.newSlots),
			StreamsInto: -1,
		}
		// Per-step planner-derived partition counts, as the engine's
		// default options would execute them (keyed steps only; joins
		// run inline on a single worker).
		if workers > 1 && i > 0 && len(stp.keySlots) > 0 {
			tp.Partitions = ep.stepPartCount(i, e.opts, workers)
			if plan.Partitions < tp.Partitions {
				plan.Partitions = tp.Partitions
			}
		}
		if plan.Pipelined && i+1 < len(ep.steps) {
			tp.StreamsInto = i + 1
			tp.StreamKeyVars = slotVars(ep, stp.nextKeySlots)
		}
		for _, sc := range stp.scans {
			scan := TripleScan{Source: sc.name, Est: sc.est}
			if sc.view.skip {
				scan.Skipped = true
				tp.Scans = append(tp.Scans, scan)
				continue
			}
			// Copy the precomputed lists: the cached plan is immutable
			// and shared with every execution, so the returned Plan must
			// not alias its slices.
			scan.Subjects = append([]string(nil), sc.view.subjList...)
			scan.Predicates = append([]string(nil), sc.view.predList...)
			scan.Objects = sortedSet(sc.view.objTerms)
			tp.Scans = append(tp.Scans, scan)
		}
		plan.Triples = append(plan.Triples, tp)
	}
	return plan, nil
}

// ExplainAnalyze executes the query under opts and returns its plan
// annotated with the execution's measured actuals (EXPLAIN ANALYZE):
// the whole-query row count and wall time on the Plan, and — on the
// slot-executor paths, which record Stats.StepRows/StepDurNs — each
// step's emitted rows and duration next to the planner's estimates.
// The executed Result is returned alongside so callers get the rows,
// full Stats and (when opts.Trace is set) the span tree in one call.
func (e *Engine) ExplainAnalyze(ctx context.Context, q Query, opts Options) (*Plan, *Result, error) {
	plan, err := e.Explain(q)
	if err != nil {
		return nil, nil, err
	}
	t0 := time.Now()
	res, err := e.ExecuteCtx(ctx, q, opts)
	if err != nil {
		return nil, nil, err
	}
	plan.Analyzed = true
	plan.ActualRows = len(res.Rows)
	plan.ActualNs = time.Since(t0).Nanoseconds()
	st := &res.Stats
	// Per-step actuals only when the executed path produced them and
	// the step count matches the explained plan (it always does for the
	// planned paths — both come from the same cached plan).
	if len(st.StepRows) == len(plan.Triples) && len(st.StepDurNs) == len(plan.Triples) {
		for i := range plan.Triples {
			plan.Triples[i].ActualRows = st.StepRows[i]
			plan.Triples[i].ActualNs = st.StepDurNs[i]
		}
	}
	return plan, res, nil
}

func slotVars(p *execPlan, slots []int) []string {
	if len(slots) == 0 {
		return nil
	}
	out := make([]string, len(slots))
	for i, s := range slots {
		out[i] = p.slotNames[s]
	}
	return out
}

func sortedSet(set map[string]bool) []string {
	if set == nil {
		return nil
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
