package query

import (
	"fmt"
	"sort"
	"strings"
)

// TripleScan describes how one triple is reformulated for one source.
type TripleScan struct {
	Source string
	// Subjects / Predicates / Objects are the expanded constant sets
	// ("*" alone means unconstrained — a variable position).
	Subjects   []string
	Predicates []string
	Objects    []string
	// Skipped is true when the triple cannot denote anything in this
	// source (an expansion came up empty), so the source is pruned.
	Skipped bool
}

// TriplePlan is the reformulation of one WHERE conjunct.
type TriplePlan struct {
	Triple string
	Scans  []TripleScan
}

// Plan is the explanation of a query's reformulation (§2.3: "a query
// phrased in terms of an articulation ontology [is turned into] an
// execution plan against the sources involved").
type Plan struct {
	Query   string
	Triples []TriplePlan
}

// String renders the plan for terminal display.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan for %s\n", p.Query)
	for _, tp := range p.Triples {
		fmt.Fprintf(&b, "  triple %s\n", tp.Triple)
		for _, sc := range tp.Scans {
			if sc.Skipped {
				fmt.Fprintf(&b, "    %-12s pruned (no denotation)\n", sc.Source)
				continue
			}
			fmt.Fprintf(&b, "    %-12s subj %s  pred %s  obj %s\n",
				sc.Source, setOrStar(sc.Subjects), setOrStar(sc.Predicates), setOrStar(sc.Objects))
		}
	}
	return b.String()
}

func setOrStar(ss []string) string {
	if len(ss) == 0 {
		return "*"
	}
	return "{" + strings.Join(ss, ", ") + "}"
}

// Explain reformulates the query without executing it, returning the
// per-triple, per-source scan plan.
func (e *Engine) Explain(q Query) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	plan := &Plan{Query: q.String()}
	var stats Stats
	for _, t := range q.Where {
		tp := TriplePlan{Triple: t.String()}
		for _, name := range e.names {
			scan := TripleScan{Source: name}
			v := e.compileView(name, t, &stats)
			if v.skip {
				scan.Skipped = true
				tp.Scans = append(tp.Scans, scan)
				continue
			}
			scan.Subjects = sortedSet(v.subj)
			scan.Predicates = sortedSet(v.preds)
			scan.Objects = sortedSet(v.objTerms)
			tp.Scans = append(tp.Scans, scan)
		}
		plan.Triples = append(plan.Triples, tp)
	}
	return plan, nil
}

func sortedSet(set map[string]bool) []string {
	if set == nil {
		return nil
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
