package query

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/articulation"
	"repro/internal/kb"
	"repro/internal/ontology"
	"repro/internal/rules"
)

// chainPreds are the fact predicates of the deep-chain world, in WHERE
// order after the leading InstanceOf conjunct.
var chainPreds = []string{"C1", "C2", "C3", "C4", "C5"}

// deepChainEngine builds a two-source world for a join chain of
// 1+len(chainPreds) steps: every instance carries dup values under every
// predicate, so the frontier widens geometrically through the chain —
// the shape that stresses cross-step streaming (every step's probe
// output immediately feeds the next step's partitions).
func deepChainEngine(t testing.TB, instances, dup int) (*Engine, Query) {
	t.Helper()
	sources := make(map[string]*Source, 2)
	var onts []*ontology.Ontology
	for i := 1; i <= 2; i++ {
		name := fmt.Sprintf("dc%d", i)
		o := ontology.New(name)
		o.MustAddTerm("Item")
		for _, p := range chainPreds {
			o.MustAddTerm(p)
			o.MustRelate("Item", ontology.AttributeOf, p)
		}
		store := kb.New(name)
		for k := 0; k < instances; k++ {
			inst := fmt.Sprintf("%sI%d", name, k)
			store.MustAdd(inst, "InstanceOf", kb.Term("Item"))
			for pi, p := range chainPreds {
				for d := 0; d < dup; d++ {
					store.MustAdd(inst, p, kb.Number(float64(pi*1000+(k+d)%13)))
				}
			}
		}
		sources[name] = &Source{Ont: o, KB: store}
		onts = append(onts, o)
	}
	set := rules.NewSet(rules.MustParse("dc1.Item => dc2.Item"))
	res, err := articulation.Generate("dcart", onts[0], onts[1], set, articulation.Options{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(res.Art, sources)
	if err != nil {
		t.Fatal(err)
	}
	where := "?x InstanceOf Item"
	for i, p := range chainPreds {
		where += fmt.Sprintf(" . ?x %s ?v%d", p, i)
	}
	q := MustParse("SELECT ?x ?v0 ?v4 WHERE " + where + " . FILTER ?v1 >= 1000")
	return eng, q
}

// TestPipelinedExecutorMatchesReferences checks the cross-step pipeline
// against the other three executors on the deep-chain world: byte-
// identical rows under default and decoupled partition counts, and the
// pipeline stats populated.
func TestPipelinedExecutorMatchesReferences(t *testing.T) {
	eng, q := deepChainEngine(t, 60, 2)
	want, err := eng.ExecuteWith(q, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatalf("deep-chain world produced no rows")
	}
	modes := []struct {
		name string
		opts Options
	}{
		{"compat", Options{Workers: 4, CompatJoins: true}},
		{"tuple-inline", Options{Workers: 1}},
		{"tuple-barrier", Options{Workers: 4, StepBarriers: true}},
		{"pipelined", Options{Workers: 4}},
		{"pipelined-cached", Options{Workers: 4}},
		{"pipelined-parts-2", Options{Workers: 4, Partitions: 2}},
		{"pipelined-parts-7", Options{Workers: 3, Partitions: 7}},
		{"row-pipeline", Options{Workers: 4, RowAtATime: true}},
		{"row-pipeline-parts-7", Options{Workers: 3, Partitions: 7, RowAtATime: true}},
		{"batch-16k-budget", Options{Workers: 4, MemoryLimit: 1 << 14}},
	}
	for _, m := range modes {
		got, err := eng.ExecuteWith(q, m.opts)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if !want.EqualRows(got) {
			t.Errorf("%s diverged: sequential %d rows, got %d", m.name, len(want.Rows), len(got.Rows))
		}
		if got.Stats.JoinedRows != want.Stats.JoinedRows {
			t.Errorf("%s JoinedRows = %d, want %d", m.name, got.Stats.JoinedRows, want.Stats.JoinedRows)
		}
	}

	steps := len(q.Where)
	got, err := eng.ExecuteWith(q, Options{Workers: 4, Partitions: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.PipelinedSteps != steps-1 {
		t.Errorf("PipelinedSteps = %d, want %d", got.Stats.PipelinedSteps, steps-1)
	}
	if got.Stats.JoinPartitions != 7 {
		t.Errorf("JoinPartitions = %d, want 7 (decoupled from 4 workers)", got.Stats.JoinPartitions)
	}
	if len(got.Stats.StepPartitions) != steps || got.Stats.StepPartitions[0] != 0 || got.Stats.StepPartitions[1] != 7 {
		t.Errorf("StepPartitions = %v, want [0 7 7 ...]", got.Stats.StepPartitions)
	}
	if got.Stats.StreamedBatches == 0 {
		t.Errorf("no batches streamed: %+v", got.Stats)
	}

	// The per-step barrier path must not report pipelining, and the
	// partition option must still apply to its per-step joins.
	barrier, err := eng.ExecuteWith(q, Options{Workers: 4, Partitions: 3, StepBarriers: true})
	if err != nil {
		t.Fatal(err)
	}
	if barrier.Stats.PipelinedSteps != 0 {
		t.Errorf("barrier run reported pipelined steps: %+v", barrier.Stats)
	}
	if barrier.Stats.JoinPartitions != 3 {
		t.Errorf("barrier JoinPartitions = %d, want 3", barrier.Stats.JoinPartitions)
	}
}

// TestPipelineEmptyStepShortCircuits covers the cancellation path: a
// chain whose most selective conjunct matches nothing must return empty
// on the pipeline (and every other path) without wedging, with the
// cancellation machinery accounted in Stats.
func TestPipelineEmptyStepShortCircuits(t *testing.T) {
	eng, _ := deepChainEngine(t, 40, 1)
	where := "?x InstanceOf Item"
	for i, p := range chainPreds {
		where += fmt.Sprintf(" . ?x %s ?v%d", p, i)
	}
	// Nothing matches C1 = -1, and the planner runs that conjunct first
	// (estimate 0), so the pipeline's first output is provably empty.
	q := MustParse("SELECT ?x WHERE " + where + " . FILTER ?v0 = -1")
	qMiss := MustParse("SELECT ?x ?m WHERE " + where + " . ?x Missing ?m")
	for _, q := range []Query{q, qMiss} {
		for _, m := range advModes {
			got, err := eng.ExecuteWith(q, m.opts)
			if err != nil {
				t.Fatalf("%s: %v", m.name, err)
			}
			if len(got.Rows) != 0 {
				t.Errorf("%s returned %d rows on empty-step chain", m.name, len(got.Rows))
			}
		}
		got, err := eng.ExecuteWith(q, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if got.Stats.ScansCancelled < 0 || got.Stats.ScansCancelled > got.Stats.SourceScans {
			t.Errorf("ScansCancelled out of range: %+v", got.Stats)
		}
	}
}

// TestPipelineRaceHammer runs the cross-step pipeline from many
// goroutines with churning worker and partition counts while the plan
// cache fills. Run with -race.
func TestPipelineRaceHammer(t *testing.T) {
	eng, q := deepChainEngine(t, 30, 2)
	q2 := MustParse("SELECT ?x ?v0 WHERE ?x InstanceOf Item . ?x C1 ?v0 . ?x C2 ?v1 . ?x C3 ?v2")
	want, err := eng.ExecuteWith(q, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	want2, err := eng.ExecuteWith(q2, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const iters = 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				qi, ref := q, want
				if (g+i)%2 == 1 {
					qi, ref = q2, want2
				}
				opts := Options{Workers: 2 + (g+i)%3, Partitions: 1 + (g+2*i)%5}
				got, err := eng.ExecuteWith(qi, opts)
				if err != nil {
					errs <- err
					return
				}
				if !ref.EqualRows(got) {
					errs <- fmt.Errorf("goroutine %d iter %d diverged under pipelined join", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
