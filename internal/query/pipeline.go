package query

import (
	"context"
	"sync"
	"sync/atomic"
)

// pipeBatch is how many tuples a pipeline producer accumulates per
// partition before streaming the batch downstream. Larger than the
// scan-side streamBatch: cross-step traffic carries the whole frontier,
// so fewer, fuller batches cut channel and select overhead, and the
// batch pool makes their buffers free to recycle.
const pipeBatch = 256

// batchPool recycles batch buffers between pipeline producers and
// consumers. A consumer returns a batch as soon as it has indexed or
// probed it (only the buffer arrays are recycled — the tuple values they
// point at live in arenas), so steady-state streaming allocates no new
// buffers at all instead of one tups+hashes pair per batch. The pool
// holds pointers, so Put itself never allocates a box.
var batchPool sync.Pool

func getBatch() *streamedBatch {
	if b, ok := batchPool.Get().(*streamedBatch); ok {
		return b
	}
	return &streamedBatch{tups: make([]tuple, 0, pipeBatch), hashes: make([]uint64, 0, pipeBatch)}
}

func putBatch(b *streamedBatch) {
	b.tups = b.tups[:0]
	b.hashes = b.hashes[:0]
	batchPool.Put(b)
}

// This file is the cross-step streaming pipeline: the default planned
// execution path when the worker pool has more than one worker and the
// plan is a keyed join chain. The per-step executor (exec.go) fully
// materialises each join step's output before the next step's scans
// dispatch; here every step runs concurrently instead:
//
//   - all steps' scans share one bounded worker pool, dispatched in step
//     order, so a later step's sources scan while earlier joins probe;
//   - each join step is a set of partition workers that build a hash
//     table from the step's own scan output (routed by key hash) and
//     probe it with the accumulated tuples streamed from the previous
//     step — no frontier is ever materialised between steps;
//   - a step's probe output is re-hashed on the *next* step's key slots
//     at production time (plan.nextKeySlots) and streamed straight into
//     the next step's partition channels in batches;
//   - when a step's output is provably empty the pipeline cancels:
//     undispatched scans are skipped (the pipelined form of the per-step
//     empty-join short-circuit) and the stages drain out.
//
// The partition count decouples from the scan worker count
// (Options{Partitions}, default = resolved workers). Rows, JoinedRows
// and the projection are byte-identical to every other path: tuple
// arrival order varies run to run, but the row *set* per partition is
// fixed by the key hash, and the final projection sort normalises order.

// resolvePartitions turns the Partitions option into a concrete
// hash-partition count for the partitioned and pipelined joins.
func resolvePartitions(opts Options, workers int) int {
	if opts.Partitions > 0 {
		return opts.Partitions
	}
	return workers
}

// partRouter batches tuples toward one step's partition channels,
// hashing each tuple once on the consuming step's key slots. The hash
// travels with the batch, so the consumer indexes or probes without
// re-encoding keys.
type partRouter struct {
	chans []chan *streamedBatch
	slots []int
	local []*streamedBatch
	buf   []byte
	// batches and count are per-owner totals, merged deterministically
	// after the owning goroutine finishes.
	batches int
	count   int64
}

func newPartRouter(chans []chan *streamedBatch, slots []int) *partRouter {
	return &partRouter{chans: chans, slots: slots, local: make([]*streamedBatch, len(chans))}
}

func (rt *partRouter) send(t tuple) {
	rt.buf = appendSlotKey(rt.buf[:0], t, rt.slots)
	rt.sendHashed(t, hashKey(rt.buf))
}

// sendHashed routes a tuple whose key hash is already known — the
// aligned-chain fast path, where a stage forwards probe output under its
// incoming hash (same key slots downstream, so the same partition) and
// never re-encodes the key.
func (rt *partRouter) sendHashed(t tuple, h uint64) {
	p := int(h % uint64(len(rt.chans)))
	lb := rt.local[p]
	if lb == nil {
		lb = getBatch()
		rt.local[p] = lb
	}
	lb.tups = append(lb.tups, t)
	lb.hashes = append(lb.hashes, h)
	rt.count++
	if len(lb.tups) >= pipeBatch {
		rt.chans[p] <- lb
		rt.local[p] = nil
		rt.batches++
	}
}

func (rt *partRouter) flush() {
	for p, b := range rt.local {
		if b != nil && len(b.tups) > 0 {
			rt.chans[p] <- b
			rt.local[p] = nil
			rt.batches++
		}
	}
}

// stepFilterSets splits the query's filters by the step after which they
// first apply (every variable bound), in join order — the pipelined
// equivalent of applyTupleFilters' as-soon-as-bound rule, applied
// per-tuple as rows stream between steps.
func stepFilterSets(q Query, plan *execPlan) [][]Filter {
	sets := make([][]Filter, len(plan.steps))
	bound := make(map[string]bool)
	taken := make([]bool, len(q.Filters))
	for si := range plan.steps {
		for _, v := range plan.steps[si].vars {
			bound[v] = true
		}
		for fi, f := range q.Filters {
			if !taken[fi] && bound[f.Var] {
				taken[fi] = true
				sets[si] = append(sets[si], f)
			}
		}
	}
	return sets
}

// passFilters applies one step's filter set to a single tuple.
func passFilters(t tuple, fs []Filter, plan *execPlan) bool {
	for _, f := range fs {
		if !f.Accepts(t[plan.slotOf[f.Var]]) {
			return false
		}
	}
	return true
}

// makePartChans builds one step's partition channels. The small buffer
// absorbs producer/consumer jitter; stage workers always keep consuming
// (select over both inputs), so bounded buffers cannot deadlock the
// pipeline — they only apply backpressure upstream.
func makePartChans(parts int) []chan *streamedBatch {
	chs := make([]chan *streamedBatch, parts)
	for p := range chs {
		chs[p] = make(chan *streamedBatch, 4)
	}
	return chs
}

// executePipelined runs a keyed join chain as a cross-step streaming
// pipeline. Callers guarantee: more than one worker, at least two steps,
// and every step after the first has key slots (plan.chainKeyed). A
// cancelled context rides the same machinery as the provably-empty
// short-circuit: remaining scan dispatch is skipped, the stages drain,
// and ctx.Err() is returned instead of the partial result.
func (e *Engine) executePipelined(ctx context.Context, q Query, plan *execPlan, opts Options, res *Result) error {
	st := &res.Stats
	width := len(plan.slotNames)
	workers := resolveWorkers(opts)
	parts := resolvePartitions(opts, workers)
	n := len(plan.steps)
	filters := stepFilterSets(q, plan)

	// Wiring: stage si (1..n-1) builds from scanCh[si] and probes
	// upCh[si]; both carry hashes on steps[si].keySlots. Stage si routes
	// its output into upCh[si+1] hashed on steps[si].nextKeySlots.
	upCh := make([][]chan *streamedBatch, n)
	scanCh := make([][]chan *streamedBatch, n)
	for si := 1; si < n; si++ {
		upCh[si] = makePartChans(parts)
		scanCh[si] = makePartChans(parts)
	}

	// cancel fires when some step's output is provably empty: the final
	// result is empty regardless of the remaining scans, so dispatch
	// stops and the stages drain.
	cancel := make(chan struct{})
	var cancelOnce sync.Once
	cancelFn := func() { cancelOnce.Do(func() { close(cancel) }) }

	// Per-(step, scan) private stats, merged in (step, source) order
	// after the pipeline drains, so the work counters are deterministic
	// under any scheduling (modulo cancellation, which is timing-
	// dependent by nature and only ever skips work).
	taskStats := make([][]Stats, n)
	liveTasks := make([][]int, n)
	total := 0
	for si := range plan.steps {
		stp := &plan.steps[si]
		st.SourceScans += len(stp.scans)
		taskStats[si] = make([]Stats, len(stp.scans))
		for j, sc := range stp.scans {
			if !sc.view.skip {
				liveTasks[si] = append(liveTasks[si], j)
			}
		}
		total += len(liveTasks[si])
	}

	// stepOut[si] counts the tuples step si emitted downstream (step 0:
	// scan output after filters; stages: probe output after filters).
	stepOut := make([]int64, n)
	// stageBatches[si][p] counts the batches stage worker (si, p)
	// streamed downstream; summed in index order afterwards.
	stageBatches := make([][]int, n)
	for si := 1; si < n; si++ {
		stageBatches[si] = make([]int, parts)
	}

	// Scan worker pool, shared by every step's scans, dispatched in step
	// order: step 0 feeds upCh[1] directly (hashed on step 1's keys);
	// step si>=1 feeds its own build side scanCh[si].
	scanWg := make([]sync.WaitGroup, n)
	for si := range plan.steps {
		scanWg[si].Add(len(liveTasks[si]))
	}
	runScan := func(si, j int) {
		defer scanWg[si].Done()
		stp := &plan.steps[si]
		sc := stp.scans[j]
		ts := &taskStats[si][j]
		arena := &tupleArena{width: width}
		var rt *partRouter
		if si == 0 {
			rt = newPartRouter(upCh[1], stp.nextKeySlots)
		} else {
			rt = newPartRouter(scanCh[si], stp.keySlots)
		}
		sink := func(t tuple) {
			if si == 0 && !passFilters(t, filters[0], plan) {
				return
			}
			rt.send(t)
		}
		e.scanMatch(sc.name, sc.src, stp.triple, sc.view, ts, true, tupleEmit(stp, arena, sink))
		rt.flush()
		ts.StreamedBatches += rt.batches
		if si == 0 {
			atomic.AddInt64(&stepOut[0], rt.count)
		}
	}

	poolSize := workers
	if poolSize > total {
		poolSize = total
	}
	if poolSize > st.Workers {
		st.Workers = poolSize
	}
	type scanJob struct{ si, j int }
	jobs := make(chan scanJob)
	var poolWg sync.WaitGroup
	for w := 0; w < poolSize; w++ {
		poolWg.Add(1)
		go func() {
			defer poolWg.Done()
			for jb := range jobs {
				runScan(jb.si, jb.j)
			}
		}()
	}
	dispatcherDone := make(chan struct{})
	var dispatched, cancelled int
	go func() {
		defer close(dispatcherDone)
		defer close(jobs)
		for si := 0; si < n; si++ {
			for _, j := range liveTasks[si] {
				select {
				case jobs <- scanJob{si, j}:
					dispatched++
				case <-cancel:
					// Provably-empty output upstream: skip this and
					// every remaining scan, releasing the per-step
					// completion counts so the stages drain.
					cancelled++
					scanWg[si].Done()
				case <-ctx.Done():
					// Deadline/cancellation: same drain path as the
					// empty short-circuit; the caller discards the
					// partial result and reports ctx.Err().
					cancelled++
					scanWg[si].Done()
				}
			}
		}
	}()

	// Per-step closers: a step's scan side closes when its scans finish
	// (or are skipped). Step 0's "scan side" is stage 1's probe side.
	go func() {
		scanWg[0].Wait()
		for _, ch := range upCh[1] {
			close(ch)
		}
		if atomic.LoadInt64(&stepOut[0]) == 0 {
			cancelFn()
		}
	}()
	for si := 1; si < n; si++ {
		go func(si int) {
			scanWg[si].Wait()
			for _, ch := range scanCh[si] {
				close(ch)
			}
		}(si)
	}

	// Join stages: one partition worker per (step, partition). Each
	// builds from its scan-side channel while *always* staying ready to
	// buffer early probe-side batches — the select keeps every producer
	// unblocked, so the shared scan pool can never wedge behind a stage.
	outs := make([][]tuple, parts) // last stage's per-partition output
	stageWg := make([]sync.WaitGroup, n)
	for si := 1; si < n; si++ {
		stageWg[si].Add(parts)
		for p := 0; p < parts; p++ {
			go func(si, p int) {
				defer stageWg[si].Done()
				stp := &plan.steps[si]
				build := make(map[uint64][]tuple)
				var pending []*streamedBatch
				sc, up := scanCh[si][p], upCh[si][p]
				for sc != nil {
					select {
					case b, ok := <-sc:
						if !ok {
							sc = nil
							continue
						}
						for i, r := range b.tups {
							build[b.hashes[i]] = append(build[b.hashes[i]], r)
						}
						putBatch(b)
					case b, ok := <-up:
						if !ok {
							up = nil
							continue
						}
						pending = append(pending, b)
					}
				}
				// Build side complete: probe the buffered batches, then
				// whatever is still streaming in from upstream.
				arena := &tupleArena{width: width}
				var rt *partRouter
				if si+1 < n {
					rt = newPartRouter(upCh[si+1], stp.nextKeySlots)
				}
				var out []tuple
				var emitted int64
				emit := func(m tuple, h uint64) {
					if !passFilters(m, filters[si], plan) {
						return
					}
					emitted++
					switch {
					case rt == nil:
						out = append(out, m)
					case stp.alignedNext:
						// Same key slots downstream: the merged tuple
						// keeps the probe tuple's key values, so its
						// downstream hash is the incoming hash.
						rt.sendHashed(m, h)
					default:
						rt.send(m)
					}
				}
				probe := func(b *streamedBatch) {
					if len(build) == 0 {
						return // drain only; nothing can join
					}
					for i, l := range b.tups {
						h := b.hashes[i]
						// A probe tuple is exclusively owned by this
						// batch and dead once probed, so its first match
						// merges in place (overlay the new slots on l);
						// only additional matches pay an arena copy.
						var first tuple
						for _, r := range build[h] {
							if !keySlotsEqual(l, r, stp.keySlots) {
								continue
							}
							if first == nil {
								first = r
								continue
							}
							emit(mergeTuple(arena, l, r, stp.newSlots), h)
						}
						if first != nil {
							for _, s := range stp.newSlots {
								l[s] = first[s]
							}
							emit(l, h)
						}
					}
				}
				for _, b := range pending {
					probe(b)
					putBatch(b)
				}
				pending = nil
				if up != nil {
					for b := range up {
						probe(b)
						putBatch(b)
					}
				}
				if rt != nil {
					rt.flush()
					stageBatches[si][p] = rt.batches
				} else {
					outs[p] = out
				}
				atomic.AddInt64(&stepOut[si], emitted)
			}(si, p)
		}
	}
	// Per-stage closers: when stage si finishes, its downstream probe
	// side closes; an empty stage output cancels remaining scan work.
	for si := 1; si < n; si++ {
		go func(si int) {
			stageWg[si].Wait()
			if si+1 < n {
				for _, ch := range upCh[si+1] {
					close(ch)
				}
			}
			if atomic.LoadInt64(&stepOut[si]) == 0 {
				cancelFn()
			}
		}(si)
	}

	stageWg[n-1].Wait()
	poolWg.Wait()
	<-dispatcherDone
	if err := ctx.Err(); err != nil {
		return err
	}

	// Deterministic stat merge: task stats in (step, source) order, then
	// the stage batch counters in (step, partition) order.
	for si := range plan.steps {
		for j := range taskStats[si] {
			st.accrue(taskStats[si][j])
		}
	}
	for si := 1; si < n; si++ {
		for p := 0; p < parts; p++ {
			st.StreamedBatches += stageBatches[si][p]
		}
	}
	st.ParallelScans += dispatched
	st.ScansCancelled += cancelled
	st.PipelinedSteps = n - 1
	if st.JoinPartitions < parts {
		st.JoinPartitions = parts
	}
	st.StepPartitions = make([]int, n)
	for si := 1; si < n; si++ {
		st.StepPartitions[si] = parts
	}

	// Hand the per-partition outputs to the projection as-is: the final
	// frontier is never concatenated either.
	for _, o := range outs {
		st.JoinedRows += len(o)
	}
	projectTuples(res, outs, q, plan)
	return nil
}
