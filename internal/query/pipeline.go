package query

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/query/mem"
)

// pipeBatch is how many tuples a pipeline producer accumulates per
// partition before streaming the batch downstream. Larger than the
// scan-side streamBatch: cross-step traffic carries the whole frontier,
// so fewer, fuller batches cut channel and select overhead, and the
// batch pool makes their buffers free to recycle. Budgeted executions
// use the smaller batch and channel depth so the accounted in-flight
// volume stays well under the cap.
const (
	pipeBatch         = 256
	budgetedPipeBatch = 48
	pipeChanDepth     = 4
	budgetedChanDepth = 2
)

// batchPool recycles batch buffers between pipeline producers and
// consumers. A consumer returns a batch as soon as it has indexed or
// probed it (only the buffer arrays are recycled — the tuple values they
// point at live in arenas), so steady-state streaming allocates no new
// buffers at all instead of one tups+hashes pair per batch. The pool
// holds pointers, so Put itself never allocates a box.
var batchPool sync.Pool

func getBatch() *streamedBatch {
	if b, ok := batchPool.Get().(*streamedBatch); ok {
		return b
	}
	//lint:onion-ignore pool-recycled fixed-size buffer shared across queries; in-flight retention is charged per batch by the router (partRouter MustReserve at route/flush)
	return &streamedBatch{tups: make([]tuple, 0, pipeBatch), hashes: make([]uint64, 0, pipeBatch)}
}

func putBatch(b *streamedBatch) {
	b.tups = b.tups[:0]
	b.hashes = b.hashes[:0]
	batchPool.Put(b)
}

// This file is the cross-step streaming pipeline: the default planned
// execution path when the worker pool has more than one worker and the
// plan is a keyed join chain. The per-step executor (exec.go) fully
// materialises each join step's output before the next step's scans
// dispatch; here every step runs concurrently instead:
//
//   - all steps' scans share one bounded worker pool, dispatched in step
//     order, so a later step's sources scan while earlier joins probe;
//   - each join step is a set of partition workers that build a hash
//     table from the step's own scan output (routed by key hash) and
//     probe it with the accumulated tuples streamed from the previous
//     step — no frontier is ever materialised between steps;
//   - a step's probe output is re-hashed on the *next* step's key slots
//     at production time (plan.nextKeySlots) and streamed straight into
//     the next step's partition channels in batches;
//   - when a step's output is provably empty the pipeline cancels:
//     undispatched scans are skipped (the pipelined form of the per-step
//     empty-join short-circuit) and the stages drain out.
//
// Partition counts are planner-derived per step (plan.stepPartCount:
// estimate-proportional, skew-aware) unless Options{Partitions} pins a
// global count. The final step's output never materialises either: each
// last-stage partition dedups its probe output straight onto the SELECT
// slots (the streaming projection) and the executor merges the sorted
// per-partition row sets.
//
// Memory governance: every stage partition charges a child reservation
// of the per-query budget (internal/query/mem) for its build table and
// pending probe queue. A partition whose reservation runs out degrades
// in two steps: first the pending probe queue overflows to a temp-file
// run (the build table stays in memory and the run is replayed through
// it once complete); if the build table itself cannot reserve, the
// partition becomes a grace-hash join (spill.go) — both sides spill to
// runs, recursively sub-partitioned until each piece joins within
// budget. Rows, JoinedRows and the projection are byte-identical to
// every other path, spilled or not: tuple arrival order varies run to
// run, but the row *set* per partition is fixed by the key hash, the
// spill wire format round-trips kind-strictly, and the final ordered
// merge normalises order.

// partRouter batches tuples toward one step's partition channels,
// hashing each tuple once on the consuming step's key slots. The hash
// travels with the batch, so the consumer indexes or probes without
// re-encoding keys; in-flight batch bytes are charged to the root budget
// at send and released by the consumer at receipt.
type partRouter struct {
	chans     []chan *streamedBatch
	slots     []int
	local     []*streamedBatch
	buf       []byte
	root      *mem.Budget
	tc        int64
	batchSize int
	// batches and count are per-owner totals, merged deterministically
	// after the owning goroutine finishes.
	batches int
	count   int64
}

func newPartRouter(chans []chan *streamedBatch, slots []int, root *mem.Budget, tc int64, batchSize int) *partRouter {
	return &partRouter{chans: chans, slots: slots, local: make([]*streamedBatch, len(chans)),
		root: root, tc: tc, batchSize: batchSize}
}

func (rt *partRouter) send(t tuple) {
	rt.buf = appendSlotKey(rt.buf[:0], t, rt.slots)
	rt.sendHashed(t, hashKey(rt.buf))
}

// sendHashed routes a tuple whose key hash is already known — the
// aligned-chain fast path, where a stage forwards probe output under its
// incoming hash (same key slots downstream, so the same partition) and
// never re-encodes the key.
func (rt *partRouter) sendHashed(t tuple, h uint64) {
	p := int(h % uint64(len(rt.chans)))
	lb := rt.local[p]
	if lb == nil {
		lb = getBatch()
		rt.local[p] = lb
	}
	lb.tups = append(lb.tups, t)
	lb.hashes = append(lb.hashes, h)
	rt.count++
	if len(lb.tups) >= rt.batchSize {
		rt.root.MustReserve(int64(len(lb.tups)) * rt.tc)
		rt.chans[p] <- lb
		rt.local[p] = nil
		rt.batches++
	}
}

func (rt *partRouter) flush() {
	for p, b := range rt.local {
		if b != nil && len(b.tups) > 0 {
			rt.root.MustReserve(int64(len(b.tups)) * rt.tc)
			rt.chans[p] <- b
			rt.local[p] = nil
			rt.batches++
		}
	}
}

// stepFilterSets splits the query's filters by the step after which they
// first apply (every variable bound), in join order — the pipelined
// equivalent of applyTupleFilters' as-soon-as-bound rule, applied
// per-tuple as rows stream between steps.
func stepFilterSets(q Query, plan *execPlan) [][]Filter {
	sets := make([][]Filter, len(plan.steps))
	bound := make(map[string]bool)
	taken := make([]bool, len(q.Filters))
	for si := range plan.steps {
		for _, v := range plan.steps[si].vars {
			bound[v] = true
		}
		for fi, f := range q.Filters {
			if !taken[fi] && bound[f.Var] {
				taken[fi] = true
				sets[si] = append(sets[si], f)
			}
		}
	}
	return sets
}

// passFilters applies one step's filter set to a single tuple.
func passFilters(t tuple, fs []Filter, plan *execPlan) bool {
	for _, f := range fs {
		if !f.Accepts(t[plan.slotOf[f.Var]]) {
			return false
		}
	}
	return true
}

// makePartChans builds one step's partition channels. The small buffer
// absorbs producer/consumer jitter; stage workers always keep consuming
// (select over both inputs), so bounded buffers cannot deadlock the
// pipeline — they only apply backpressure upstream.
func makePartChans(parts, depth int) []chan *streamedBatch {
	chs := make([]chan *streamedBatch, parts)
	for p := range chs {
		chs[p] = make(chan *streamedBatch, depth)
	}
	return chs
}

// stageProj is one last-stage partition's streaming projection: probe
// output dedups straight onto the SELECT slots as it is emitted, so the
// final frontier is never materialised — only the partition's distinct
// projected rows are retained. Under Options{MemoryLimit} that retention
// is itself spillable (projspill.go): the dedup set reserves from the
// shared pool and rotates to sorted temp-file runs when refused, so even
// a distinct answer set larger than the cap stays within it. Rows are
// sorted by their row key at stage end (merging any runs back) and the
// executor merges the sorted partitions.
type stageProj struct {
	sel  []int
	keys map[string]struct{}
	rows []keyedRow
	buf  []byte
	bud  *mem.Budget // root: final rows and run write buffers (MustReserve)

	// Spill state (limit-governed executions only; projspill.go).
	spill    *mem.Budget // spillable dedup-set reservations (nil: never spills)
	dir      string
	runs     []*projRun
	charged  int64 // bytes currently reserved on spill
	headroom int64 // granted but not yet consumed by row charges
	bytes    int64 // record bytes written across runs (Stats.SpilledBytes)
	spilled  bool  // rotated at least once (Stats.ProjectionSpills)
	err      error
}

// projKeysPool recycles projection dedup sets across partitions and
// executions: a cleared map keeps its buckets, so a steady query mix
// dedups into already-grown tables. Live entries are charged per row
// (MustReserve in add); an idle pooled map holds no entries.
var projKeysPool sync.Pool

// newStageProj builds one partition's projection. pool, when non-nil,
// is the spillable reservation pool the dedup set draws on (the
// limit-governed executors pass their spill pool; unbounded executions
// pass nil and the set charges the root as un-spillable state).
func newStageProj(q Query, plan *execPlan, bud, pool *mem.Budget, dir string) *stageProj {
	sel := make([]int, len(q.Select))
	for i, v := range q.Select {
		sel[i] = plan.slotOf[v]
	}
	keys, ok := projKeysPool.Get().(map[string]struct{})
	if !ok {
		keys = make(map[string]struct{})
	}
	pp := &stageProj{sel: sel, keys: keys, bud: bud}
	if pool != nil {
		pp.spill = pool.Child(0)
		pp.dir = dir
	}
	return pp
}

func (pp *stageProj) add(t tuple) {
	pp.buf = pp.buf[:0]
	for _, s := range pp.sel {
		pp.buf = appendValueKey(pp.buf, t[s])
	}
	if _, dup := pp.keys[string(pp.buf)]; dup {
		return
	}
	key := string(pp.buf)
	// Charge before inserting: a rotation inside ensure flushes the
	// buffered set to a run, and the new row belongs to the next set.
	pp.ensure(projRowCost(key, len(pp.sel)))
	pp.keys[key] = struct{}{}
	out := make([]kb.Value, len(pp.sel))
	for i, s := range pp.sel {
		out[i] = t[s]
	}
	pp.rows = append(pp.rows, keyedRow{key, out})
}

// addBatchRow is add for a columnar batch row (the batch executor's
// last stage): same key encoding, same dedup, same charge — only the
// cell source differs.
func (pp *stageProj) addBatchRow(b *colBatch, i int) {
	pp.buf = pp.buf[:0]
	for _, s := range pp.sel {
		pp.buf = appendValueKey(pp.buf, b.cols[s][i])
	}
	if _, dup := pp.keys[string(pp.buf)]; dup {
		return
	}
	key := string(pp.buf)
	pp.ensure(projRowCost(key, len(pp.sel)))
	pp.keys[key] = struct{}{}
	out := make([]kb.Value, len(pp.sel))
	for k, s := range pp.sel {
		out[k] = b.cols[s][i]
	}
	pp.rows = append(pp.rows, keyedRow{key, out})
}

// mergeSortedKeyed merges per-partition sorted keyedRow groups into the
// deterministic global row order, dropping cross-partition duplicates
// (two partitions can project onto the same row even though their join
// keys differ — a duplicated key always carries a cell-identical row,
// since the key is the row's full encoding, so pop order among equal
// keys cannot change the output). A min-heap over the group heads keeps
// the per-row cost at log(groups) key compares; below mergeHeapMin
// groups a linear head scan is cheaper.
func mergeSortedKeyed(groups [][]keyedRow, bud *mem.Budget) [][]kb.Value {
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	// The merged slice shares its row backing with the (already charged)
	// per-partition projections; only the row headers are new retention.
	bud.MustReserve(int64(total) * 24)
	rows := make([][]kb.Value, 0, total)
	idx := make([]int, len(groups))
	lastKey, have := "", false
	emit := func(kr keyedRow) {
		if have && kr.key == lastKey {
			return
		}
		lastKey, have = kr.key, true
		rows = append(rows, kr.row)
	}
	if len(groups) < mergeHeapMin {
		for {
			best := -1
			for gi, g := range groups {
				if idx[gi] >= len(g) {
					continue
				}
				if best == -1 || g[idx[gi]].key < groups[best][idx[best]].key {
					best = gi
				}
			}
			if best == -1 {
				return rows
			}
			kr := groups[best][idx[best]]
			idx[best]++
			emit(kr)
		}
	}
	// heap[0..len) holds group indices ordered by each group's current
	// head key.
	less := func(a, b int) bool { return groups[a][idx[a]].key < groups[b][idx[b]].key }
	h := make([]int, 0, len(groups))
	for gi, g := range groups {
		if len(g) > 0 {
			h = append(h, gi)
		}
	}
	siftDown := func(i int) {
		for {
			l := 2*i + 1
			if l >= len(h) {
				return
			}
			m := l
			if r := l + 1; r < len(h) && less(h[r], h[l]) {
				m = r
			}
			if !less(h[m], h[i]) {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(h) > 0 {
		g := h[0]
		kr := groups[g][idx[g]]
		idx[g]++
		if idx[g] >= len(groups[g]) {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		siftDown(0)
		emit(kr)
	}
	return rows
}

// mergeHeapMin is the group count at which mergeSortedKeyed switches
// from a linear head scan to the heap.
const mergeHeapMin = 8

// executePipelined runs a keyed join chain as a cross-step streaming
// pipeline. Callers guarantee: more than one worker, at least two steps,
// and every step after the first has key slots (plan.chainKeyed). A
// cancelled context rides the same machinery as the provably-empty
// short-circuit: remaining scan dispatch is skipped, the stages drain,
// and ctx.Err() is returned instead of the partial result. A spill I/O
// failure drains the same way and surfaces as the returned error.
func (e *Engine) executePipelined(ctx context.Context, q Query, plan *execPlan, opts Options, bud *mem.Budget, res *Result) error {
	st := &res.Stats
	width := len(plan.slotNames)
	workers := resolveWorkers(opts)
	n := len(plan.steps)
	filters := stepFilterSets(q, plan)
	tc := tupleCost(width)
	pipeT0 := time.Now()

	// Per-step planner-derived partition counts (or the global override).
	parts := make([]int, n)
	totalParts := 0
	for si := 1; si < n; si++ {
		parts[si] = plan.stepPartCount(si, opts, workers)
		totalParts += parts[si]
	}
	if opts.Partitions == 0 {
		st.AdaptivePartitions = n - 1
	}

	// Tracing: one span per step, opened up front — every stage runs
	// concurrently from pipeline start, so span offsets reflect the real
	// overlap. Scan and partition sub-spans hang off these; stepSpan
	// returns nil when tracing is off, and every recording site guards
	// its argument computation behind that nil.
	var stepSpans []*obs.Span
	if opts.Trace != nil {
		stepSpans = make([]*obs.Span, n)
		for si := range plan.steps {
			s := opts.Trace.Child("step " + strconv.Itoa(si+1) + ": " + plan.steps[si].triple.String())
			s.SetInt("est_rows", int64(plan.steps[si].est))
			if si > 0 {
				s.SetInt("partitions", int64(parts[si]))
			}
			stepSpans[si] = s
		}
	}
	stepSpan := func(si int) *obs.Span {
		if stepSpans == nil {
			return nil
		}
		return stepSpans[si]
	}

	// Budget wiring: every stage partition's spillable retention (build
	// table + pending probe queue) reserves from one shared pool — half
	// the cap — so memory fills first-come and only the overflow
	// degrades to disk (the fleet-level hybrid: a 2x-over-cap workload
	// spills roughly half its partitions, not all of them). The other
	// half of the cap is headroom for the fixed working state charged
	// via MustReserve (arena blocks, in-flight batches, spill write
	// buffers, the projected rows) and for the grace joins' finish-time
	// chunk reservations, which draw on the root directly.
	limit := opts.MemoryLimit
	batchSize, chanDepth := pipeBatch, pipeChanDepth
	poolLimit := int64(0)
	if limit > 0 {
		batchSize, chanDepth = budgetedPipeBatch, budgetedChanDepth
		// Floor at one byte: a degenerate limit must yield a pool that
		// refuses everything (spill-everything), not an unlimited one.
		poolLimit = max(limit/2, 1)
	}
	spillPool := bud.Child(poolLimit)
	// The last stage's projection dedup sets draw on the same pool —
	// but only under a limit; unbounded executions keep the historical
	// root accounting and never rotate.
	var projPool *mem.Budget
	if limit > 0 {
		projPool = spillPool
	}

	// Wiring: stage si (1..n-1) builds from scanCh[si] and probes
	// upCh[si]; both carry hashes on steps[si].keySlots. Stage si routes
	// its output into upCh[si+1] hashed on steps[si].nextKeySlots.
	upCh := make([][]chan *streamedBatch, n)
	scanCh := make([][]chan *streamedBatch, n)
	for si := 1; si < n; si++ {
		upCh[si] = makePartChans(parts[si], chanDepth)
		scanCh[si] = makePartChans(parts[si], chanDepth)
	}

	// cancel fires when some step's output is provably empty (the final
	// result is empty regardless of the remaining scans) or when a spill
	// I/O error makes the result unreachable: dispatch stops and the
	// stages drain.
	cancel := make(chan struct{})
	var cancelOnce sync.Once
	cancelFn := func() { cancelOnce.Do(func() { close(cancel) }) }
	var errOnce sync.Once
	var pipeErr error
	setErr := func(err error) {
		if err == nil {
			return
		}
		errOnce.Do(func() { pipeErr = err })
		cancelFn()
	}

	// Per-(step, scan) private stats, merged in (step, source) order
	// after the pipeline drains, so the work counters are deterministic
	// under any scheduling (modulo cancellation, which is timing-
	// dependent by nature and only ever skips work).
	taskStats := make([][]Stats, n)
	liveTasks := make([][]int, n)
	total := 0
	for si := range plan.steps {
		stp := &plan.steps[si]
		st.SourceScans += len(stp.scans)
		taskStats[si] = make([]Stats, len(stp.scans))
		for j, sc := range stp.scans {
			if !sc.view.skip {
				liveTasks[si] = append(liveTasks[si], j)
			}
		}
		total += len(liveTasks[si])
	}

	// stepOut[si] counts the tuples step si emitted downstream (step 0:
	// scan output after filters; stages: probe output after filters).
	stepOut := make([]int64, n)
	// stepDur[si] is the step's wall-clock from pipeline start to its
	// completion, stamped by the step's closer (Stats.StepDurNs).
	stepDur := make([]int64, n)
	// Per-stage-partition counters, merged in (step, partition) order
	// afterwards.
	stageBatches := make([][]int, n)
	stageSpilled := make([][]int, n)
	stageHybrid := make([][]int, n)
	stageRuns := make([][]int, n)
	stageBytes := make([][]int64, n)
	for si := 1; si < n; si++ {
		stageBatches[si] = make([]int, parts[si])
		stageSpilled[si] = make([]int, parts[si])
		stageHybrid[si] = make([]int, parts[si])
		stageRuns[si] = make([]int, parts[si])
		stageBytes[si] = make([]int64, parts[si])
	}
	// Last-stage projection spill counters (one slot per partition).
	projSpills := make([]int, parts[n-1])
	projRunCnt := make([]int, parts[n-1])
	projRunBytes := make([]int64, parts[n-1])

	// Scan worker pool, shared by every step's scans, dispatched in step
	// order: step 0 feeds upCh[1] directly (hashed on step 1's keys);
	// step si>=1 feeds its own build side scanCh[si].
	scanWg := make([]sync.WaitGroup, n)
	for si := range plan.steps {
		scanWg[si].Add(len(liveTasks[si]))
	}
	runScan := func(si, j int) {
		defer scanWg[si].Done()
		stp := &plan.steps[si]
		sc := stp.scans[j]
		ts := &taskStats[si][j]
		var ss *obs.Span
		if sp := stepSpan(si); sp != nil {
			ss = sp.Child("scan " + sc.name)
			defer func() {
				ss.SetInt("rows", int64(ts.EdgeRows+ts.FactRows))
				ss.End()
			}()
		}
		arena := newArena(width, bud)
		defer arena.close()
		var rt *partRouter
		if si == 0 {
			rt = newPartRouter(upCh[1], stp.nextKeySlots, bud, tc, batchSize)
		} else {
			rt = newPartRouter(scanCh[si], stp.keySlots, bud, tc, batchSize)
		}
		sink := func(t tuple) {
			if si == 0 && !passFilters(t, filters[0], plan) {
				return
			}
			rt.send(t)
		}
		e.scanMatch(sc.name, sc.src, stp.triple, sc.view, ts, true, tupleEmit(stp, arena, sink))
		rt.flush()
		ts.StreamedBatches += rt.batches
		if si == 0 {
			atomic.AddInt64(&stepOut[0], rt.count)
		}
	}

	poolSize := workers
	if poolSize > total {
		poolSize = total
	}
	if poolSize > st.Workers {
		st.Workers = poolSize
	}
	type scanJob struct{ si, j int }
	jobs := make(chan scanJob)
	var poolWg sync.WaitGroup
	for w := 0; w < poolSize; w++ {
		poolWg.Add(1)
		go func() {
			defer poolWg.Done()
			for jb := range jobs {
				runScan(jb.si, jb.j)
			}
		}()
	}
	dispatcherDone := make(chan struct{})
	var dispatched, cancelled int
	go func() {
		defer close(dispatcherDone)
		defer close(jobs)
		for si := 0; si < n; si++ {
			for _, j := range liveTasks[si] {
				select {
				case jobs <- scanJob{si, j}:
					dispatched++
				case <-cancel:
					// Provably-empty output upstream (or a spill error):
					// skip this and every remaining scan, releasing the
					// per-step completion counts so the stages drain.
					cancelled++
					scanWg[si].Done()
				case <-ctx.Done():
					// Deadline/cancellation: same drain path as the
					// empty short-circuit; the caller discards the
					// partial result and reports ctx.Err().
					cancelled++
					scanWg[si].Done()
				}
			}
		}
	}()

	// Per-step closers: a step's scan side closes when its scans finish
	// (or are skipped). Step 0's "scan side" is stage 1's probe side.
	// Closers also stamp the step's duration and close its trace span;
	// closersWg gives the final stat merge a happens-before edge on
	// those writes.
	var closersWg sync.WaitGroup
	closersWg.Add(n)
	go func() {
		defer closersWg.Done()
		scanWg[0].Wait()
		stepDur[0] = time.Since(pipeT0).Nanoseconds()
		if sp := stepSpan(0); sp != nil {
			sp.SetInt("rows", atomic.LoadInt64(&stepOut[0]))
			sp.End()
		}
		for _, ch := range upCh[1] {
			close(ch)
		}
		if atomic.LoadInt64(&stepOut[0]) == 0 {
			cancelFn()
		}
	}()
	for si := 1; si < n; si++ {
		go func(si int) {
			scanWg[si].Wait()
			for _, ch := range scanCh[si] {
				close(ch)
			}
		}(si)
	}

	// Join stages: one partition worker per (step, partition). Each
	// builds from its scan-side channel while *always* staying ready to
	// buffer early probe-side batches — the select keeps every producer
	// unblocked, so the shared scan pool can never wedge behind a stage.
	// Retention (build table, pending queue) charges the partition's
	// child budget; a failed reservation degrades the partition (probe
	// overflow run first, grace-hash spill when the build side cannot
	// reserve). Build degradation is hybrid, like the batch executor's:
	// the already-reserved build prefix stays resident and frozen, only
	// rows from the failure on go to disk, and the completion replays
	// the probe run against the frozen half before the grace join covers
	// the spilled half — the two match sets are disjoint because every
	// build row lives on exactly one side.
	projParts := make([][]keyedRow, parts[n-1]) // last stage's sorted projected rows
	stageWg := make([]sync.WaitGroup, n)
	for si := 1; si < n; si++ {
		stageWg[si].Add(parts[si])
		for p := 0; p < parts[si]; p++ {
			go func(si, p int) {
				defer stageWg[si].Done()
				stp := &plan.steps[si]
				var partSpan, buildSpan *obs.Span
				if ssp := stepSpan(si); ssp != nil {
					partSpan = ssp.Child("part " + strconv.Itoa(p))
					buildSpan = partSpan.Child("build")
				}
				partBud := spillPool.Child(0)
				build := make(map[uint64][]tuple)
				var pending []*streamedBatch
				var buildCharged, pendCharged int64
				sp := &spillPart{dir: opts.SpillDir, width: width, bud: partBud, io: bud}
				buildSpilled, probeSpilled, hybrid := false, false, false
				var spillErr error
				fail := func(err error) {
					if err != nil && spillErr == nil {
						spillErr = err
						setErr(err)
					}
				}
				writeProbeBatch := func(b *streamedBatch) {
					for i := range b.tups {
						if err := sp.probe.add(b.tups[i], b.hashes[i]); err != nil {
							fail(err)
							return
						}
					}
				}
				degradeBuild := func() {
					if buildSpilled || spillErr != nil {
						return
					}
					if err := sp.ensureBuild(); err != nil {
						fail(err)
						return
					}
					if err := sp.ensureProbe(); err != nil {
						fail(err)
						return
					}
					buildSpilled = true
					stageSpilled[si][p] = 1
					// Hybrid grace: the reserved build prefix stays resident
					// and frozen; only rows from here on go to disk. Pending
					// probe batches go to the probe run before any probing,
					// so the encoded bytes predate any in-place merge.
					if len(build) > 0 {
						hybrid = true
						stageHybrid[si][p] = 1
					}
					for _, b := range pending {
						if spillErr == nil {
							writeProbeBatch(b)
						}
						putBatch(b)
					}
					pending = nil
					partBud.Release(pendCharged)
					pendCharged = 0
				}
				takeBuild := func(b *streamedBatch) {
					defer putBatch(b)
					bud.Release(int64(len(b.tups)) * tc) // in-flight charge
					if spillErr != nil {
						return
					}
					cost := int64(len(b.tups)) * tc
					if !buildSpilled && partBud.Reserve(cost) {
						buildCharged += cost
						for i, r := range b.tups {
							build[b.hashes[i]] = append(build[b.hashes[i]], r)
						}
						return
					}
					degradeBuild()
					if spillErr != nil {
						return
					}
					for i := range b.tups {
						if err := sp.build.add(b.tups[i], b.hashes[i]); err != nil {
							fail(err)
							return
						}
					}
				}
				takeProbeEarly := func(b *streamedBatch) {
					bud.Release(int64(len(b.tups)) * tc)
					if spillErr != nil {
						putBatch(b)
						return
					}
					if buildSpilled {
						writeProbeBatch(b)
						putBatch(b)
						return
					}
					cost := int64(len(b.tups)) * tc
					if partBud.Reserve(cost) {
						pendCharged += cost
						pending = append(pending, b)
						return
					}
					// Pending overflow: the build table stays in memory;
					// probe tuples overflow to a run replayed once the
					// build side is complete. Counts as a spilled
					// partition — it is writing tuples to disk.
					if err := sp.ensureProbe(); err != nil {
						fail(err)
						putBatch(b)
						return
					}
					probeSpilled = true
					stageSpilled[si][p] = 1
					writeProbeBatch(b)
					putBatch(b)
				}
				sc, up := scanCh[si][p], upCh[si][p]
				for sc != nil {
					select {
					case b, ok := <-sc:
						if !ok {
							sc = nil
							continue
						}
						takeBuild(b)
					case b, ok := <-up:
						if !ok {
							up = nil
							continue
						}
						takeProbeEarly(b)
					}
				}
				// Build side complete. In-memory partitions probe the
				// buffered batches, replay any probe-overflow run, then
				// stream from upstream; grace-hash partitions keep
				// spilling the probe side and join from disk at the end.
				if buildSpan != nil {
					buildSpan.SetAttr("spilled", strconv.FormatBool(buildSpilled))
					buildSpan.SetAttr("hybrid", strconv.FormatBool(hybrid))
					buildSpan.End()
				}
				var probeSpan *obs.Span
				if partSpan != nil {
					probeSpan = partSpan.Child("probe")
				}
				arena := newArena(width, bud)
				defer arena.close()
				var rt *partRouter
				if si+1 < n {
					rt = newPartRouter(upCh[si+1], stp.nextKeySlots, bud, tc, batchSize)
				}
				var proj *stageProj
				if rt == nil {
					proj = newStageProj(q, plan, bud, projPool, opts.SpillDir)
				}
				var emitted int64
				emit := func(m tuple, h uint64) {
					if !passFilters(m, filters[si], plan) {
						return
					}
					emitted++
					switch {
					case rt == nil:
						proj.add(m)
					case stp.alignedNext:
						// Same key slots downstream: the merged tuple
						// keeps the probe tuple's key values, so its
						// downstream hash is the incoming hash.
						rt.sendHashed(m, h)
					default:
						rt.send(m)
					}
				}
				probeOne := func(l tuple, h uint64) {
					// A probe tuple is exclusively owned by its batch (or
					// its decode arena) and dead once probed, so its first
					// match merges in place (overlay the new slots on l);
					// only additional matches pay an arena copy.
					var first tuple
					for _, r := range build[h] {
						if !keySlotsEqual(l, r, stp.keySlots) {
							continue
						}
						if first == nil {
							first = r
							continue
						}
						emit(mergeTuple(arena, l, r, stp.newSlots), h)
					}
					if first != nil {
						for _, s := range stp.newSlots {
							l[s] = first[s]
						}
						emit(l, h)
					}
				}
				probe := func(b *streamedBatch) {
					if len(build) == 0 {
						return // drain only; nothing can join
					}
					for i, l := range b.tups {
						probeOne(l, b.hashes[i])
					}
				}
				if spillErr == nil && !buildSpilled {
					for _, b := range pending {
						probe(b)
						putBatch(b)
					}
					pending = nil
					if probeSpilled {
						var spillSpan *obs.Span
						if partSpan != nil {
							spillSpan = partSpan.Child("spill")
						}
						decodeArena := &tupleArena{width: width, blockTuples: spillDecodeBlock}
						fail(sp.probe.replay(width, decodeArena, func(t tuple, h uint64) error {
							if len(build) > 0 {
								probeOne(t, h)
							}
							return nil
						}))
						sp.probe.close()
						sp.probe = nil
						if spillSpan != nil {
							spillSpan.SetInt("runs", int64(sp.runs))
							spillSpan.SetInt("bytes", sp.bytes)
							spillSpan.End()
						}
					}
					if up != nil {
						for b := range up {
							bud.Release(int64(len(b.tups)) * tc)
							if spillErr == nil {
								probe(b)
							}
							putBatch(b)
						}
					}
				} else {
					if up != nil {
						for b := range up {
							bud.Release(int64(len(b.tups)) * tc)
							if spillErr == nil && buildSpilled {
								writeProbeBatch(b)
							}
							putBatch(b)
						}
					}
					if spillErr == nil && buildSpilled {
						// Grace-hash completion: the spilled half of the
						// build side joins from disk, sub-partition by
						// sub-partition within budget.
						var spillSpan *obs.Span
						if partSpan != nil {
							spillSpan = partSpan.Child("spill")
						}
						if hybrid {
							// The frozen prefix's matches first: the probe
							// run is re-readable, so the grace join streams
							// it again afterwards for the disk half.
							decodeArena := &tupleArena{width: width, blockTuples: spillDecodeBlock}
							fail(sp.probe.replay(width, decodeArena, func(t tuple, h uint64) error {
								probeOne(t, h)
								return nil
							}))
						}
						if spillErr == nil {
							fail(sp.join(stp, func(l tuple, h uint64, rs []tuple) {
								first := rs[0]
								for _, r := range rs[1:] {
									emit(mergeTuple(arena, l, r, stp.newSlots), h)
								}
								for _, s := range stp.newSlots {
									l[s] = first[s]
								}
								emit(l, h)
							}))
						}
						if spillSpan != nil {
							spillSpan.SetInt("runs", int64(sp.runs))
							spillSpan.SetInt("bytes", sp.bytes)
							spillSpan.End()
						}
					}
				}
				sp.close()
				stageRuns[si][p] = sp.runs
				stageBytes[si][p] = sp.bytes
				partBud.Release(buildCharged + pendCharged)
				if rt != nil {
					rt.flush()
					stageBatches[si][p] = rt.batches
				} else {
					rows, perr := proj.finish()
					fail(perr)
					projParts[p] = rows
					if proj.spilled {
						projSpills[p] = 1
						projRunCnt[p] = len(proj.runs)
						projRunBytes[p] = proj.bytes
					}
				}
				if probeSpan != nil {
					probeSpan.SetInt("rows", emitted)
					probeSpan.End()
				}
				partSpan.End()
				atomic.AddInt64(&stepOut[si], emitted)
			}(si, p)
		}
	}
	// Per-stage closers: when stage si finishes, its downstream probe
	// side closes; an empty stage output cancels remaining scan work.
	for si := 1; si < n; si++ {
		go func(si int) {
			defer closersWg.Done()
			stageWg[si].Wait()
			stepDur[si] = time.Since(pipeT0).Nanoseconds()
			if sp := stepSpan(si); sp != nil {
				sp.SetInt("rows", atomic.LoadInt64(&stepOut[si]))
				sp.End()
			}
			if si+1 < n {
				for _, ch := range upCh[si+1] {
					close(ch)
				}
			}
			if atomic.LoadInt64(&stepOut[si]) == 0 {
				cancelFn()
			}
		}(si)
	}

	stageWg[n-1].Wait()
	poolWg.Wait()
	<-dispatcherDone
	closersWg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	if pipeErr != nil {
		return pipeErr
	}

	// Deterministic stat merge: task stats in (step, source) order, then
	// the per-partition counters in (step, partition) order.
	for si := range plan.steps {
		for j := range taskStats[si] {
			st.accrue(taskStats[si][j])
		}
	}
	for si := 1; si < n; si++ {
		for p := 0; p < parts[si]; p++ {
			st.StreamedBatches += stageBatches[si][p]
			st.SpilledPartitions += stageSpilled[si][p]
			st.HybridJoins += stageHybrid[si][p]
			st.SpillRuns += stageRuns[si][p]
			st.SpilledBytes += stageBytes[si][p]
		}
	}
	for p := 0; p < parts[n-1]; p++ {
		st.ProjectionSpills += projSpills[p]
		st.SpillRuns += projRunCnt[p]
		st.SpilledBytes += projRunBytes[p]
	}
	st.StepRows = make([]int, n)
	st.StepDurNs = make([]int64, n)
	for si := 0; si < n; si++ {
		st.StepRows[si] = int(stepOut[si])
		st.StepDurNs[si] = stepDur[si]
	}
	st.ParallelScans += dispatched
	st.ScansCancelled += cancelled
	st.PipelinedSteps = n - 1
	for si := 1; si < n; si++ {
		if st.JoinPartitions < parts[si] {
			st.JoinPartitions = parts[si]
		}
	}
	st.StepPartitions = make([]int, n)
	copy(st.StepPartitions[1:], parts[1:])

	// The streaming projection's ordered merge: every partition's rows
	// arrive deduplicated and sorted; the merge drops cross-partition
	// duplicates and yields the deterministic global order shared by all
	// execution paths.
	st.JoinedRows = int(stepOut[n-1])
	res.Rows = mergeSortedKeyed(projParts, bud)
	return nil
}
