package mem

import (
	"sync"
	"testing"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	if !b.Reserve(1 << 40) {
		t.Fatal("nil budget refused a reservation")
	}
	b.MustReserve(5)
	b.Release(5)
	if b.Used() != 0 || b.Peak() != 0 || b.Limit() != 0 {
		t.Fatal("nil budget reported non-zero accounting")
	}
	if b.Child(10) != nil {
		t.Fatal("nil budget produced a non-nil child")
	}
}

func TestReserveRespectsLimit(t *testing.T) {
	b := New(100)
	if !b.Reserve(60) {
		t.Fatal("reserve under limit failed")
	}
	if b.Reserve(41) {
		t.Fatal("reserve past limit succeeded")
	}
	if got := b.Used(); got != 60 {
		t.Fatalf("failed reserve leaked: used = %d, want 60", got)
	}
	if !b.Reserve(40) {
		t.Fatal("reserve exactly to limit failed")
	}
	b.Release(100)
	if b.Used() != 0 {
		t.Fatalf("used = %d after full release", b.Used())
	}
	if b.Peak() != 100 {
		t.Fatalf("peak = %d, want 100", b.Peak())
	}
}

func TestUnlimitedRootStillAccounts(t *testing.T) {
	b := New(0)
	if !b.Reserve(1 << 30) {
		t.Fatal("unlimited root refused a reservation")
	}
	if b.Peak() != 1<<30 {
		t.Fatalf("peak = %d", b.Peak())
	}
}

func TestMustReservePushesPastLimit(t *testing.T) {
	b := New(10)
	b.MustReserve(25)
	if b.Used() != 25 || b.Peak() != 25 {
		t.Fatalf("used/peak = %d/%d, want 25/25", b.Used(), b.Peak())
	}
	// Spillable reservations keep failing while over.
	if b.Reserve(1) {
		t.Fatal("reserve succeeded while over limit")
	}
}

func TestChildChargesPropagate(t *testing.T) {
	root := New(100)
	c1 := root.Child(30)
	c2 := root.Child(0) // bounded only by the root
	if !c1.Reserve(30) {
		t.Fatal("child reserve up to child limit failed")
	}
	if c1.Reserve(1) {
		t.Fatal("child reserve past child limit succeeded")
	}
	if root.Used() != 30 {
		t.Fatalf("root used = %d, want 30", root.Used())
	}
	if !c2.Reserve(70) {
		t.Fatal("sibling reserve within root headroom failed")
	}
	// Root is full: the unlimited child is stopped by its ancestor, and
	// the failed charge unwinds at every level.
	if c2.Reserve(1) {
		t.Fatal("child reserve past root limit succeeded")
	}
	if c2.Used() != 70 || root.Used() != 100 {
		t.Fatalf("failed child reserve leaked: child %d root %d", c2.Used(), root.Used())
	}
	c1.Release(30)
	if root.Used() != 70 {
		t.Fatalf("root used = %d after child release, want 70", root.Used())
	}
	if root.Peak() != 100 {
		t.Fatalf("root peak = %d, want 100", root.Peak())
	}
}

func TestConcurrentReserveNeverExceedsLimit(t *testing.T) {
	const limit = 1 << 20
	root := New(limit)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.Child(0)
			held := int64(0)
			for i := 0; i < 5000; i++ {
				if c.Reserve(512) {
					held += 512
				}
				if held > 4096 {
					c.Release(held)
					held = 0
				}
			}
			c.Release(held)
		}()
	}
	wg.Wait()
	if root.Used() != 0 {
		t.Fatalf("used = %d after all releases", root.Used())
	}
	if root.Peak() > limit {
		t.Fatalf("peak %d exceeded limit %d despite Reserve-only charges", root.Peak(), limit)
	}
}
