// Package mem is the query engine's memory-governance substrate: a
// per-query byte Budget that execution-layer components (scan arenas,
// join build tables, pending probe queues, projection dedup sets, spill
// buffers) charge as they retain memory and release as they let it go.
//
// The articulation engine answers queries over the union of
// independently-evolving source KBs, so join frontiers and build tables
// grow with the product of the sources, not any single one. A Budget
// turns that from an OOM risk into a planned degradation: the pipelined
// executor gives every join partition a child reservation, and a
// partition whose build table cannot reserve another batch degrades to a
// grace-hash spilling join instead of growing without bound.
//
// Accounting is deliberately two-tier:
//
//   - Reserve is all-or-nothing against every limit on the path to the
//     root. It is used for the memory that *can* be traded for disk
//     (build tables, buffered probe batches): a failed Reserve is the
//     spill trigger, never an error.
//   - MustReserve always succeeds and may push Used past Limit. It is
//     used for the small fixed working state that cannot spill (the
//     current arena block, in-flight batches, spill-file write buffers,
//     the final projected rows); callers size that state well under the
//     limit, so the accounted peak stays below the cap whenever the
//     spillable components respect their reservations.
//
// A nil *Budget is valid everywhere and means "unlimited, unaccounted";
// all methods are safe for concurrent use.
package mem

import "sync/atomic"

// Budget is one node of a hierarchical byte budget. Charges propagate to
// the root, so a child reservation counts against both its own limit and
// every ancestor's; the root's Peak is the query's accounted high-water
// mark (Stats.BytesReserved).
type Budget struct {
	parent *Budget
	limit  int64 // <= 0: no limit at this level (accounting only)
	used   atomic.Int64
	peak   atomic.Int64
}

// New returns a root budget. limit <= 0 builds an unlimited budget that
// still accounts (Reserve never fails, Peak is still tracked).
func New(limit int64) *Budget {
	return &Budget{limit: limit}
}

// Child returns a sub-budget whose charges also count against b and its
// ancestors. limit <= 0 bounds the child only by its ancestors.
func (b *Budget) Child(limit int64) *Budget {
	if b == nil {
		return nil
	}
	return &Budget{parent: b, limit: limit}
}

// Limit returns this level's byte limit (0 = unlimited).
func (b *Budget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// Used returns the bytes currently charged at this level (including all
// descendants' charges).
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Peak returns the high-water mark of Used.
func (b *Budget) Peak() int64 {
	if b == nil {
		return 0
	}
	return b.peak.Load()
}

// Reserve charges n bytes against this budget and every ancestor,
// all-or-nothing: when any level on the path would exceed its limit the
// whole charge unwinds and Reserve reports false — the caller's cue to
// degrade (spill) rather than retain. n <= 0 is a no-op that succeeds.
//
// Limited levels charge by compare-and-swap, so a doomed reservation is
// never visible to concurrent readers even transiently — Used (and
// therefore Peak, i.e. Stats.BytesReserved) cannot exceed a level's
// limit through Reserve alone, whatever the interleaving.
func (b *Budget) Reserve(n int64) bool {
	if b == nil || n <= 0 {
		return true
	}
	for lvl := b; lvl != nil; lvl = lvl.parent {
		if !lvl.tryCharge(n) {
			// Unwind every level already charged.
			for r := b; r != lvl; r = r.parent {
				r.used.Add(-n)
			}
			return false
		}
	}
	return true
}

// tryCharge adds n at one level, refusing (without ever publishing the
// charge) when a limit would be exceeded.
func (b *Budget) tryCharge(n int64) bool {
	if b.limit <= 0 {
		b.bumpPeak(b.used.Add(n))
		return true
	}
	for {
		cur := b.used.Load()
		if cur+n > b.limit {
			return false
		}
		if b.used.CompareAndSwap(cur, cur+n) {
			b.bumpPeak(cur + n)
			return true
		}
	}
}

// MustReserve charges n bytes unconditionally — the path for fixed
// working state that cannot be traded for disk. It may push Used past
// Limit; callers keep such state small relative to the limit.
func (b *Budget) MustReserve(n int64) {
	if b == nil || n <= 0 {
		return
	}
	for lvl := b; lvl != nil; lvl = lvl.parent {
		lvl.bumpPeak(lvl.used.Add(n))
	}
}

// Release returns n bytes to this budget and every ancestor.
func (b *Budget) Release(n int64) {
	if b == nil || n <= 0 {
		return
	}
	for lvl := b; lvl != nil; lvl = lvl.parent {
		lvl.used.Add(-n)
	}
}

func (b *Budget) bumpPeak(used int64) {
	for {
		p := b.peak.Load()
		if used <= p || b.peak.CompareAndSwap(p, used) {
			return
		}
	}
}
