package query

import "testing"

// FuzzParseQuery checks that the query parser never panics, that
// everything it accepts passes Validate, and that accepted queries
// render back into parseable, render-stable text — the contract the
// plan cache keys on (plans are cached by q.String()).
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"SELECT ?x WHERE ?x InstanceOf Vehicle",
		"SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p",
		"SELECT ?p WHERE carrier.MyCar Price ?p",
		"SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p . FILTER ?p > 3000",
		"SELECT ?x WHERE ?x InstanceOf transport.CargoCarrierVehicle",
		`SELECT ?x WHERE ?x name "La Tour Eiffel"`,
		"SELECT ?x WHERE ?x Price 42.5",
		"select ?x where ?x ?r ?y",
		"SELECT ?x WHERE ?x a b . FILTER ?x != 0",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		q, err := Parse(s)
		if err != nil {
			return
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("accepted query fails Validate: %v (input %q)", err, s)
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendered query does not reparse: %v (input %q, rendered %q)", err, s, rendered)
		}
		if got := q2.String(); got != rendered {
			t.Fatalf("rendering not stable: %q reparses to %q (input %q)", rendered, got, s)
		}
	})
}
