package query

import (
	"testing"

	"repro/internal/kb"
)

func TestParseFilterClauses(t *testing.T) {
	q, err := Parse(`SELECT ?x ?p WHERE ?x Price ?p . FILTER ?p > 1000 . FILTER ?p <= 9000`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Filters) != 2 {
		t.Fatalf("filters = %v", q.Filters)
	}
	if q.Filters[0].Op != OpGT || q.Filters[0].Value.Num != 1000 {
		t.Fatalf("filter 0 = %v", q.Filters[0])
	}
	if q.Filters[1].Op != OpLE {
		t.Fatalf("filter 1 = %v", q.Filters[1])
	}
}

func TestParseFilterErrors(t *testing.T) {
	bad := []string{
		"SELECT ?x WHERE ?x a b . FILTER ?y > 1",  // unbound filter var
		"SELECT ?x WHERE ?x a b . FILTER x > 1",   // not a variable
		"SELECT ?x WHERE ?x a b . FILTER ?x ~ 1",  // unknown operator
		"SELECT ?x WHERE ?x a b . FILTER ?x > ?y", // variable value
		"SELECT ?x WHERE ?x a b . FILTER ?x >",    // missing value
		"SELECT ?x WHERE ?x a b . FILTER",         // bare keyword
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestFilterStringRoundTrip(t *testing.T) {
	in := `SELECT ?x ?p WHERE ?x Price ?p . FILTER ?p >= 100`
	q := MustParse(in)
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", q.String(), err)
	}
	if q2.String() != q.String() {
		t.Fatalf("round trip unstable: %q vs %q", q.String(), q2.String())
	}
}

func TestFilterAccepts(t *testing.T) {
	cases := []struct {
		f    Filter
		v    kb.Value
		want bool
	}{
		{Filter{Op: OpLT, Value: kb.Number(5)}, kb.Number(4), true},
		{Filter{Op: OpLT, Value: kb.Number(5)}, kb.Number(5), false},
		{Filter{Op: OpGE, Value: kb.Number(5)}, kb.Number(5), true},
		{Filter{Op: OpEQ, Value: kb.String("a")}, kb.String("a"), true},
		{Filter{Op: OpNE, Value: kb.String("a")}, kb.String("b"), true},
		{Filter{Op: OpNE, Value: kb.String("a")}, kb.Number(1), false}, // type mismatch
		{Filter{Op: OpGT, Value: kb.Number(5)}, kb.Term("x"), false},   // non-numeric
		{Filter{Op: OpEQ, Value: kb.Term("T")}, kb.Term("T"), true},
	}
	for i, c := range cases {
		if got := c.f.Accepts(c.v); got != c.want {
			t.Errorf("case %d: Accepts(%v) = %v, want %v", i, c.v, got, c.want)
		}
	}
}

func TestFilterRestrictsQueryResults(t *testing.T) {
	e := paperEngine(t)
	// All prices in euros: MyCar 3200, Suv9 8000, Rig1 20000, Truck77
	// 20000, Wagon3 10000 (plus the 2000 term node from the graph edge).
	res := rows(t, e, `SELECT ?x ?p WHERE ?x Price ?p . FILTER ?p < 9000`)
	if !hasRow(res, "carrier.MyCar", "3200") || !hasRow(res, "carrier.Suv9", "8000") {
		t.Fatalf("filter dropped valid rows: %v", res.Rows)
	}
	for _, r := range res.Rows {
		if r[1].IsNumber() && r[1].Num >= 9000 {
			t.Fatalf("filter leaked %v", r)
		}
		if !r[1].IsNumber() {
			t.Fatalf("non-numeric binding passed numeric filter: %v", r)
		}
	}
	// Band query.
	res = rows(t, e, `SELECT ?x WHERE ?x Price ?p . FILTER ?p > 9000 . FILTER ?p <= 20000`)
	for _, want := range []string{"factory.Truck77", "factory.Wagon3", "carrier.Rig1"} {
		if !hasRow(res, want) {
			t.Fatalf("band filter missing %s: %v", want, res.Rows)
		}
	}
	if hasRow(res, "carrier.MyCar") {
		t.Fatalf("band filter leaked MyCar")
	}
}

func TestFilterOnStringEquality(t *testing.T) {
	e := paperEngine(t)
	res := rows(t, e, `SELECT ?x WHERE ?x Owner ?o . FILTER ?o = "Alice"`)
	if len(res.Rows) != 1 || !hasRow(res, "carrier.MyCar") {
		t.Fatalf("string filter = %v", res.Rows)
	}
	res = rows(t, e, `SELECT ?x WHERE ?x Owner ?o . FILTER ?o != "Alice"`)
	if !hasRow(res, "carrier.Suv9") || hasRow(res, "carrier.MyCar") {
		t.Fatalf("negated string filter = %v", res.Rows)
	}
}
