package query

import (
	"testing"

	"repro/internal/articulation"
	"repro/internal/fixtures"
	"repro/internal/kb"
	"repro/internal/ontology"
	"repro/internal/rules"
)

// paperPieces returns the Fig. 2 articulation and its sources.
func paperPieces(t testing.TB) (*articulationResult, *ontologyT, *ontologyT) {
	t.Helper()
	res, carrier, factory := fixtures.GenerateTransport()
	return res, carrier, factory
}

// paperEngine wires the Fig. 2 articulation with both source KBs.
func paperEngine(t testing.TB) *Engine {
	t.Helper()
	res, carrier, factory := paperPieces(t)
	e, err := NewEngine(res.Art, map[string]*Source{
		"carrier": {Ont: carrier, KB: fixtures.CarrierKB()},
		"factory": {Ont: factory, KB: fixtures.FactoryKB()},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func rows(t testing.TB, e *Engine, q string) *Result {
	t.Helper()
	res, err := e.Execute(MustParse(q))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func hasRow(res *Result, vals ...string) bool {
	for _, r := range res.Rows {
		if len(r) != len(vals) {
			continue
		}
		all := true
		for i := range vals {
			if r[i].Format() != vals[i] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

func TestQueryInstancesAcrossBothSources(t *testing.T) {
	e := paperEngine(t)
	// Vehicles at the articulation level: carrier's cars/SUVs/trucks and
	// factory's trucks/goods vehicles all qualify through the bridges.
	res := rows(t, e, "SELECT ?x WHERE ?x InstanceOf Vehicle")
	for _, want := range []string{"carrier.MyCar", "carrier.Suv9", "factory.Truck77", "factory.Wagon3"} {
		if !hasRow(res, want) {
			t.Errorf("missing %s in %v", want, res.Rows)
		}
	}
	// A factory-only non-vehicle must not appear.
	if hasRow(res, "factory.BuyerCo") {
		t.Errorf("BuyerCo wrongly classified as Vehicle")
	}
}

func TestQueryCurrencyNormalization(t *testing.T) {
	e := paperEngine(t)
	// Prices are normalised into euros by the functional bridges: 2000
	// GBP = 3200 EUR; 44074.2 NLG = 20000 EUR.
	res := rows(t, e, "SELECT ?x ?p WHERE ?x Price ?p")
	if !hasRow(res, "carrier.MyCar", "3200") {
		t.Errorf("GBP conversion missing: %v", res.Rows)
	}
	if !hasRow(res, "factory.Truck77", "20000.000000000004") && !hasRow(res, "factory.Truck77", "20000") {
		t.Errorf("NLG conversion missing: %v", res.Rows)
	}
	if res.Stats.Conversions == 0 {
		t.Errorf("no conversions recorded: %+v", res.Stats)
	}
}

func TestQueryJoinAcrossTriples(t *testing.T) {
	e := paperEngine(t)
	res := rows(t, e, `SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p`)
	// Every row's ?x must be one of the vehicle instances.
	if len(res.Rows) == 0 {
		t.Fatalf("join produced nothing")
	}
	for _, r := range res.Rows {
		x := r[0].Format()
		switch x {
		case "carrier.MyCar", "carrier.Suv9", "carrier.Rig1", "factory.Truck77", "factory.Wagon3":
		default:
			t.Errorf("unexpected subject %s", x)
		}
	}
	if !hasRow(res, "carrier.Suv9", "8000") { // 5000 GBP = 8000 EUR
		t.Errorf("Suv9 price row missing: %v", res.Rows)
	}
}

func TestQueryStringLiteralFilter(t *testing.T) {
	e := paperEngine(t)
	res := rows(t, e, `SELECT ?x WHERE ?x Owner "Alice"`)
	if len(res.Rows) != 1 || !hasRow(res, "carrier.MyCar") {
		t.Fatalf("Owner filter = %v", res.Rows)
	}
}

func TestQueryNumericConstantConvertsForMatch(t *testing.T) {
	e := paperEngine(t)
	// 2000 GBP stored; query in normalised euros must NOT match 2000 and
	// the raw value must not leak through conversion.
	res := rows(t, e, `SELECT ?x WHERE ?x Price 3200`)
	if !hasRow(res, "carrier.MyCar") {
		t.Fatalf("normalised constant did not match: %v", res.Rows)
	}
	res = rows(t, e, `SELECT ?x WHERE ?x Price 2000`)
	if hasRow(res, "carrier.MyCar") {
		t.Fatalf("raw source value matched despite normalisation: %v", res.Rows)
	}
}

func TestQuerySourceQualifiedConstants(t *testing.T) {
	e := paperEngine(t)
	// Restrict to a source-level class: only carrier SUVs.
	res := rows(t, e, "SELECT ?x WHERE ?x InstanceOf carrier.SUV")
	if len(res.Rows) != 1 || !hasRow(res, "carrier.Suv9") {
		t.Fatalf("qualified query = %v", res.Rows)
	}
}

func TestQueryArticulationStructure(t *testing.T) {
	e := paperEngine(t)
	// The articulation ontology itself answers structural queries.
	res := rows(t, e, "SELECT ?x WHERE ?x SubclassOf transport.Person")
	if !hasRow(res, "transport.Owner") {
		t.Fatalf("articulation structure query = %v", res.Rows)
	}
}

func TestQueryPredicateVariable(t *testing.T) {
	e := paperEngine(t)
	res := rows(t, e, "SELECT ?p WHERE carrier.MyCar ?p ?o")
	// MyCar has InstanceOf + Price edges in the graph and InstanceOf,
	// Price, Owner, Model facts in the KB.
	for _, want := range []string{"InstanceOf", "Price", "Owner", "Model"} {
		if !hasRow(res, want) {
			t.Errorf("predicate %s missing: %v", want, res.Rows)
		}
	}
}

func TestQueryUnknownTermYieldsEmpty(t *testing.T) {
	e := paperEngine(t)
	res := rows(t, e, "SELECT ?x WHERE ?x InstanceOf Spaceship")
	if len(res.Rows) != 0 {
		t.Fatalf("unknown class matched: %v", res.Rows)
	}
}

func TestQueryDeterministicOrder(t *testing.T) {
	e := paperEngine(t)
	q := "SELECT ?x ?p WHERE ?x Price ?p"
	a := rows(t, e, q)
	b := rows(t, e, q)
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ")
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if !a.Rows[i][j].Equal(b.Rows[i][j]) {
				t.Fatalf("row order unstable at %d", i)
			}
		}
	}
	// Rows are sorted and deduplicated under the shared row-key encoding.
	for i := 1; i < len(a.Rows); i++ {
		prev := string(appendRowKey(nil, a.Rows[i-1]))
		cur := string(appendRowKey(nil, a.Rows[i]))
		if prev >= cur {
			t.Fatalf("rows not strictly sorted at %d", i)
		}
	}
}

func TestQueryStatsPopulated(t *testing.T) {
	e := paperEngine(t)
	res := rows(t, e, "SELECT ?x WHERE ?x InstanceOf Vehicle")
	if res.Stats.SourceScans == 0 || res.Stats.ExpandedTerms == 0 {
		t.Fatalf("stats not populated: %+v", res.Stats)
	}
	if res.Stats.FactRows == 0 {
		t.Fatalf("no KB rows scanned: %+v", res.Stats)
	}
}

func TestNewEngineValidation(t *testing.T) {
	res, carrier, _ := fixtures.GenerateTransport()
	if _, err := NewEngine(nil, nil); err == nil {
		t.Fatalf("nil articulation accepted")
	}
	if _, err := NewEngine(res.Art, map[string]*Source{"carrier": nil}); err == nil {
		t.Fatalf("nil source accepted")
	}
	if _, err := NewEngine(res.Art, map[string]*Source{"wrong": {Ont: carrier}}); err == nil {
		t.Fatalf("misregistered source accepted")
	}
}

func TestExecuteInvalidQuery(t *testing.T) {
	e := paperEngine(t)
	if _, err := e.Execute(Query{}); err == nil {
		t.Fatalf("invalid query executed")
	}
}

func TestJoinBindingsCrossProductWhenDisjoint(t *testing.T) {
	l := []binding{{"a": kb.Number(1)}, {"a": kb.Number(2)}}
	r := []binding{{"b": kb.Number(3)}}
	out := joinBindings(l, r)
	if len(out) != 2 {
		t.Fatalf("cross product size = %d", len(out))
	}
	if out[0]["b"].Num != 3 {
		t.Fatalf("merge lost binding")
	}
}

func TestJoinBindingsOnSharedVar(t *testing.T) {
	l := []binding{{"x": kb.Term("m")}, {"x": kb.Term("n")}}
	r := []binding{{"x": kb.Term("m"), "y": kb.Number(1)}, {"x": kb.Term("z"), "y": kb.Number(2)}}
	out := joinBindings(l, r)
	if len(out) != 1 || out[0]["y"].Num != 1 {
		t.Fatalf("join = %v", out)
	}
	if joinBindings(nil, r) != nil {
		t.Fatalf("empty left should short-circuit")
	}
}

// likesEngine builds a tiny two-source world with a self-referential
// fact for the repeated-variable tests.
func likesEngine(t *testing.T) *Engine {
	t.Helper()
	src := ontology.New("s")
	src.MustAddTerm("T")
	dst := ontology.New("d")
	dst.MustAddTerm("U")
	set := rules.NewSet(rules.MustParse("s.T => d.U"))
	res, err := articulation.Generate("a", src, dst, set, articulation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	store := kb.New("s")
	store.MustAdd("a", "Likes", kb.Term("b"))
	store.MustAdd("c", "Likes", kb.Term("c"))
	eng, err := NewEngine(res.Art, map[string]*Source{
		"s": {Ont: src, KB: store},
		"d": {Ont: dst},
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestRepeatedVariableEnforcesEquality regresses the binding-overwrite
// bug: "?x Likes ?x" must only match the self-loop, on both paths.
func TestRepeatedVariableEnforcesEquality(t *testing.T) {
	eng := likesEngine(t)
	q := MustParse("SELECT ?x WHERE ?x Likes ?x")
	for _, opts := range []Options{{Sequential: true}, {}, {Workers: 4}} {
		res, err := eng.ExecuteWith(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].Format() != "s.c" {
			t.Fatalf("opts %+v: rows = %v, want only s.c", opts, res.Rows)
		}
	}
}

// TestPlanCacheDistinguishesValueKinds regresses the cache-key
// collision: a term constant "5" and a numeric constant 5 format
// identically but must not share a compiled plan.
func TestPlanCacheDistinguishesValueKinds(t *testing.T) {
	eng := likesEngine(t)
	eng.sources["s"].KB.MustAdd("5", "Likes", kb.Term("b"))
	qTerm := Query{Select: []string{"x"}, Where: []Triple{{S: C(kb.Term("5")), P: C(kb.Term("Likes")), O: V("x")}}}
	qNum := Query{Select: []string{"x"}, Where: []Triple{{S: C(kb.Number(5)), P: C(kb.Term("Likes")), O: V("x")}}}
	for _, q := range []Query{qTerm, qNum} {
		want, err := eng.ExecuteWith(q, Options{Sequential: true})
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.ExecuteWith(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !want.EqualRows(got) {
			t.Fatalf("paths diverged for %v: sequential %v, planned %v", q, want.Rows, got.Rows)
		}
	}
}

// TestJoinKindStrict regresses the kind-blind join key: values that
// format identically but differ in kind (Term "3000" vs Number 3000)
// must not hash-join, matching Value.Equal semantics.
func TestJoinKindStrict(t *testing.T) {
	l := []binding{{"v": kb.Number(3000)}}
	r := []binding{{"v": kb.Term("3000"), "o": kb.Term("x")}}
	if out := joinBindings(l, r); len(out) != 0 {
		t.Fatalf("kind-different values joined: %v", out)
	}
}

// Type aliases for test helpers.
type (
	articulationResult = articulation.Result
	ontologyT          = ontology.Ontology
)
