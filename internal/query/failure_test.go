package query

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/articulation"
	"repro/internal/kb"
	"repro/internal/ontology"
	"repro/internal/rules"
)

// failingWorld builds a world whose conversion function always errors.
func failingWorld(t *testing.T) *Engine {
	t.Helper()
	src := ontology.New("src")
	src.MustAddTerm("Thing")
	src.MustAddTerm("Price")
	dst := ontology.New("dst")
	dst.MustAddTerm("Item")

	funcs := articulation.NewFuncRegistry()
	if err := funcs.Register("Broken", func(float64) (float64, error) {
		return 0, fmt.Errorf("conversion backend down")
	}); err != nil {
		t.Fatal(err)
	}
	set := rules.NewSet(
		rules.MustParse("src.Thing => dst.Item"),
		rules.MustParse("Broken() : src.Price => art.Price"),
	)
	res, err := articulation.Generate("art", src, dst, set, articulation.Options{Funcs: funcs})
	if err != nil {
		t.Fatal(err)
	}
	store := kb.New("src")
	store.MustAdd("T1", "InstanceOf", kb.Term("Thing"))
	store.MustAdd("T1", "Price", kb.Number(42))
	eng, err := NewEngine(res.Art, map[string]*Source{
		"src": {Ont: src, KB: store},
		"dst": {Ont: dst},
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestFailingConversionFallsBackToRawValue(t *testing.T) {
	eng := failingWorld(t)
	res, err := eng.Execute(MustParse("SELECT ?p WHERE T1 Price ?p"))
	if err != nil {
		t.Fatal(err)
	}
	// The broken conversion must not lose the fact or crash the query;
	// the raw source value comes through and no conversion is counted.
	if len(res.Rows) != 1 || res.Rows[0][0].Num != 42 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Stats.Conversions != 0 {
		t.Fatalf("failed conversion counted: %+v", res.Stats)
	}
}

func TestConcurrentExecuteIsSafe(t *testing.T) {
	eng := paperEngine(t)
	q := MustParse("SELECT ?x ?p WHERE ?x InstanceOf Vehicle . ?x Price ?p")
	want, err := eng.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := eng.Execute(q)
			if err != nil {
				errs <- err
				return
			}
			if len(got.Rows) != len(want.Rows) {
				errs <- fmt.Errorf("row count diverged under concurrency: %d vs %d", len(got.Rows), len(want.Rows))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestEngineWithKBLessSources(t *testing.T) {
	// Sources without knowledge bases answer structural queries only.
	res, carrier, factory := paperPieces(t)
	eng, err := NewEngine(res.Art, map[string]*Source{
		"carrier": {Ont: carrier},
		"factory": {Ont: factory},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Execute(MustParse("SELECT ?x WHERE ?x InstanceOf Vehicle"))
	if err != nil {
		t.Fatal(err)
	}
	// Only the graph-level instance (MyCar) matches; KB-only instances
	// are absent.
	if !hasRow(out, "carrier.MyCar") {
		t.Fatalf("graph instance missing: %v", out.Rows)
	}
	for _, row := range out.Rows {
		if row[0].Format() == "carrier.Suv9" {
			t.Fatalf("KB instance appeared without a KB")
		}
	}
}
