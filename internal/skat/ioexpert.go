package skat

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/rules"
)

// IOExpert is an interactive Expert reading decisions from a stream — the
// text-mode counterpart of the viewer's confirmation dialogue (§2.2,
// §2.4). For each suggestion it prints the proposal and its evidence and
// reads one line:
//
//	y | yes          accept the suggested rule
//	n | no           reject (forbidden in later rounds)
//	m <rule text>    replace with a modified rule
//	q | quit         reject this and every remaining suggestion, stop
//
// Unparseable input counts as rejection (the conservative choice; the
// expert has the final word and silence must not create bridges).
type IOExpert struct {
	In  io.Reader
	Out io.Writer
	// MaxRounds caps propose/review iterations; default 2.
	MaxRounds int

	reader *bufio.Reader
	quit   bool
}

// Review implements Expert.
func (e *IOExpert) Review(s Suggestion) (Decision, rules.Rule) {
	if e.quit {
		return Reject, rules.Rule{}
	}
	if e.reader == nil {
		e.reader = bufio.NewReader(e.In)
	}
	fmt.Fprintf(e.Out, "suggest %s\n  [y]es / [n]o / m <rule> / [q]uit: ", s)
	line, err := e.reader.ReadString('\n')
	if err != nil && line == "" {
		e.quit = true
		return Reject, rules.Rule{}
	}
	line = strings.TrimSpace(line)
	switch {
	case line == "y" || line == "yes":
		return Accept, rules.Rule{}
	case line == "q" || line == "quit":
		e.quit = true
		return Reject, rules.Rule{}
	case strings.HasPrefix(line, "m "):
		r, perr := rules.Parse(strings.TrimSpace(line[2:]))
		if perr != nil {
			fmt.Fprintf(e.Out, "  bad rule (%v); rejecting\n", perr)
			return Reject, rules.Rule{}
		}
		return Modify, r
	default:
		return Reject, rules.Rule{}
	}
}

// Satisfied implements Expert.
func (e *IOExpert) Satisfied(round, newlyAccepted int) bool {
	if e.quit {
		return true
	}
	max := e.MaxRounds
	if max == 0 {
		max = 2
	}
	return round >= max
}
