package skat

import (
	"strings"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/lexicon"
	"repro/internal/ontology"
	"repro/internal/rules"
)

func proposeCarrierFactory(t testing.TB, cfg Config) []Suggestion {
	t.Helper()
	return Propose(fixtures.Carrier(), fixtures.Factory(), cfg)
}

func hasSuggestion(ss []Suggestion, left, right string) bool {
	for _, s := range ss {
		if s.Left.Term == left && s.Right.Term == right {
			return true
		}
	}
	return false
}

func TestProposeExactMatches(t *testing.T) {
	ss := proposeCarrierFactory(t, Config{})
	// carrier.Transportation / factory.Transportation and Person/Person,
	// Price/Price are exact matches.
	for _, pair := range [][2]string{
		{"Transportation", "Transportation"},
		{"Person", "Person"},
		{"Price", "Price"},
	} {
		if !hasSuggestion(ss, pair[0], pair[1]) {
			t.Errorf("missing exact suggestion %v", pair)
		}
	}
}

func TestProposeLexiconSynonyms(t *testing.T) {
	// carrier.Cars vs factory.Vehicle: related only through the lexicon
	// (car is a hyponym of vehicle — path distance within threshold).
	noLex := proposeCarrierFactory(t, Config{MinScore: 0.5})
	withLex := proposeCarrierFactory(t, Config{MinScore: 0.5, Lexicon: lexicon.DefaultLexicon()})
	if hasSuggestion(noLex, "Cars", "Vehicle") {
		t.Fatalf("Cars/Vehicle suggested without lexicon evidence")
	}
	if !hasSuggestion(withLex, "Cars", "Vehicle") {
		t.Fatalf("Cars/Vehicle not suggested with lexicon; got %v", withLex)
	}
	// Trucks should map to Truck (string + lexicon).
	if !hasSuggestion(withLex, "Trucks", "Truck") {
		t.Fatalf("Trucks/Truck not suggested")
	}
}

func TestProposeScoresOrdered(t *testing.T) {
	ss := proposeCarrierFactory(t, Config{Lexicon: lexicon.DefaultLexicon()})
	for i := 1; i < len(ss); i++ {
		if ss[i].Score > ss[i-1].Score+1e-9 {
			t.Fatalf("suggestions not sorted by score at %d", i)
		}
	}
	// Determinism.
	again := proposeCarrierFactory(t, Config{Lexicon: lexicon.DefaultLexicon()})
	if len(again) != len(ss) {
		t.Fatalf("unstable suggestion count")
	}
	for i := range ss {
		if ss[i].Left != again[i].Left || ss[i].Right != again[i].Right {
			t.Fatalf("unstable suggestion order at %d", i)
		}
	}
}

func TestExpertRulesForceAndForbid(t *testing.T) {
	cfg := Config{
		Lexicon: lexicon.DefaultLexicon(),
		ExpertRules: []ExpertRule{
			{Kind: Force, Left: "MyCar", Right: "Factory"}, // nonsense, but forced
			{Kind: Forbid, Left: "Person", Right: "Person"},
		},
	}
	ss := proposeCarrierFactory(t, cfg)
	if !hasSuggestion(ss, "MyCar", "Factory") {
		t.Fatalf("forced pair not suggested")
	}
	for _, s := range ss {
		if s.Left.Term == "MyCar" && s.Right.Term == "Factory" && s.Score != 1 {
			t.Fatalf("forced pair score = %v, want 1", s.Score)
		}
	}
	if hasSuggestion(ss, "Person", "Person") {
		t.Fatalf("forbidden pair still suggested")
	}
}

func TestForceUnknownTermIgnored(t *testing.T) {
	cfg := Config{ExpertRules: []ExpertRule{{Kind: Force, Left: "Ghost", Right: "Vehicle"}}}
	ss := proposeCarrierFactory(t, cfg)
	if hasSuggestion(ss, "Ghost", "Vehicle") {
		t.Fatalf("forced rule with unknown term suggested")
	}
}

func TestStructuralPropagationPromotesNeighbours(t *testing.T) {
	// Two ontologies with ambiguous labels: structure disambiguates.
	o1 := ontology.New("a")
	for _, term := range []string{"Engine", "Car", "Wheel"} {
		o1.MustAddTerm(term)
	}
	o1.MustRelate("Engine", "partOf", "Car")
	o1.MustRelate("Wheel", "partOf", "Car")

	o2 := ontology.New("b")
	for _, term := range []string{"Engine", "Auto", "Wheel", "Boat"} {
		o2.MustAddTerm(term)
	}
	o2.MustRelate("Engine", "partOf", "Auto")
	o2.MustRelate("Wheel", "partOf", "Auto")
	o2.MustRelate("Engine", "partOf", "Boat")

	lex := lexicon.DefaultLexicon()
	flat := Propose(o1, o2, Config{Lexicon: lex, MinScore: 0.3})
	deep := Propose(o1, o2, Config{Lexicon: lex, MinScore: 0.3, StructuralRounds: 2})

	score := func(ss []Suggestion, l, r string) float64 {
		for _, s := range ss {
			if s.Left.Term == l && s.Right.Term == r {
				return s.Score
			}
		}
		return 0
	}
	// Car/Auto are lexicon synonyms; with structural propagation their
	// shared Engine+Wheel context must not lower — and typically raises —
	// confidence relative to the flat score.
	if score(deep, "Car", "Auto") < score(flat, "Car", "Auto")-1e-9 {
		t.Fatalf("structural propagation lowered an anchored pair: %v vs %v",
			score(deep, "Car", "Auto"), score(flat, "Car", "Auto"))
	}
	// Evidence trail mentions propagation when scores moved.
	found := false
	for _, s := range deep {
		for _, e := range s.Evidence {
			if strings.Contains(e, "structural") {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no structural evidence recorded")
	}
}

func TestMaxSuggestions(t *testing.T) {
	ss := proposeCarrierFactory(t, Config{Lexicon: lexicon.DefaultLexicon(), MaxSuggestions: 2})
	if len(ss) != 2 {
		t.Fatalf("MaxSuggestions ignored: %d", len(ss))
	}
}

func TestSuggestionRuleAndString(t *testing.T) {
	s := Suggestion{
		Left:  ontology.MakeRef("carrier", "Cars"),
		Right: ontology.MakeRef("factory", "Vehicle"),
		Score: 0.9, Evidence: []string{"lexicon"},
	}
	r := s.Rule()
	if r.String() != "carrier.Cars => factory.Vehicle" {
		t.Fatalf("Rule = %q", r.String())
	}
	if !strings.Contains(s.String(), "0.90") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestRunSessionWithThresholdExpert(t *testing.T) {
	set, stats := RunSession(fixtures.Carrier(), fixtures.Factory(), Config{
		Lexicon:  lexicon.DefaultLexicon(),
		MinScore: 0.5,
	}, ThresholdExpert{AcceptAt: 0.7, MaxRounds: 3})

	if stats.Accepted == 0 {
		t.Fatalf("threshold expert accepted nothing: %+v", stats)
	}
	if set.Len() != stats.Accepted {
		t.Fatalf("rule set size %d != accepted %d", set.Len(), stats.Accepted)
	}
	if err := set.Validate(); err != nil {
		t.Fatalf("session produced invalid rules: %v", err)
	}
	if stats.Reviewed < stats.Accepted+stats.Rejected {
		t.Fatalf("stats inconsistent: %+v", stats)
	}
	// The accepted rules must include the obvious exact matches.
	text := set.String()
	if !strings.Contains(text, "carrier.Transportation => factory.Transportation") {
		t.Fatalf("session missed exact match:\n%s", text)
	}
}

func TestRunSessionOracleNoDuplicateReviews(t *testing.T) {
	truth := map[string]string{
		"Transportation": "Transportation",
		"Person":         "Person",
		"Price":          "Price",
		"Cars":           "Vehicle",
		"Trucks":         "Truck",
	}
	_, stats := RunSession(fixtures.Carrier(), fixtures.Factory(), Config{
		Lexicon:  lexicon.DefaultLexicon(),
		MinScore: 0.5,
	}, OracleExpert{Truth: truth, MaxRounds: 4})
	// Each pair is reviewed at most once across rounds.
	if stats.Reviewed > stats.Suggested {
		t.Fatalf("pairs re-reviewed: %+v", stats)
	}
	if stats.Accepted == 0 || stats.Rejected == 0 {
		t.Fatalf("oracle session should both accept and reject: %+v", stats)
	}
}

func TestSessionModifyDecision(t *testing.T) {
	mod := modifyingExpert{}
	set, stats := RunSession(fixtures.Carrier(), fixtures.Factory(), Config{MinScore: 0.9}, mod)
	if stats.Modified == 0 {
		t.Fatalf("no modifications recorded: %+v", stats)
	}
	if !strings.Contains(set.String(), "transport.") {
		t.Fatalf("modified rule not in set:\n%s", set.String())
	}
}

// modifyingExpert rewrites every suggestion into a cascaded rule through
// the articulation ontology.
type modifyingExpert struct{}

func (modifyingExpert) Review(s Suggestion) (Decision, rules.Rule) {
	mid := ontology.MakeRef("transport", s.Right.Term)
	return Modify, rules.Chain(
		rules.NewStep(rules.Single, s.Left),
		rules.NewStep(rules.Single, mid),
		rules.NewStep(rules.Single, s.Right),
	)
}

func (modifyingExpert) Satisfied(round, newlyAccepted int) bool { return round >= 1 }

func TestEvaluateMetrics(t *testing.T) {
	truth := map[string]string{"A": "X", "B": "Y", "C": "Z"}
	ss := []Suggestion{
		{Left: ontology.MakeRef("o1", "A"), Right: ontology.MakeRef("o2", "X")}, // TP
		{Left: ontology.MakeRef("o1", "B"), Right: ontology.MakeRef("o2", "W")}, // FP
		{Left: ontology.MakeRef("o1", "A"), Right: ontology.MakeRef("o2", "X")}, // duplicate TP
	}
	m := Evaluate(ss, truth)
	if m.TruePos != 1 || m.FalsePos != 1 || m.FalseNeg != 2 {
		t.Fatalf("counts = %+v", m)
	}
	if m.Precision != 0.5 {
		t.Fatalf("precision = %v", m.Precision)
	}
	wantRecall := 1.0 / 3.0
	if diff := m.Recall - wantRecall; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("recall = %v", m.Recall)
	}
	if m.F1 <= 0 || m.F1 >= 1 {
		t.Fatalf("f1 = %v", m.F1)
	}
	empty := Evaluate(nil, nil)
	if empty.Precision != 0 || empty.Recall != 0 || empty.F1 != 0 {
		t.Fatalf("empty metrics = %+v", empty)
	}
}

func TestTopPerLeft(t *testing.T) {
	ss := []Suggestion{
		{Left: ontology.MakeRef("o1", "A"), Right: ontology.MakeRef("o2", "X"), Score: 0.5},
		{Left: ontology.MakeRef("o1", "A"), Right: ontology.MakeRef("o2", "Y"), Score: 0.9},
		{Left: ontology.MakeRef("o1", "B"), Right: ontology.MakeRef("o2", "Z"), Score: 0.7},
	}
	top := TopPerLeft(ss)
	if len(top) != 2 {
		t.Fatalf("TopPerLeft size = %d", len(top))
	}
	if top[0].Left.Term != "A" || top[0].Right.Term != "Y" {
		t.Fatalf("TopPerLeft order/selection wrong: %v", top)
	}
}
