package skat

import (
	"strings"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/lexicon"
)

func TestIOExpertDecisions(t *testing.T) {
	// Scripted terminal input: accept, reject, modify, then quit.
	in := strings.NewReader("y\nn\nm carrier.Cars => transport.Wheeled => factory.Vehicle\nq\n")
	var out strings.Builder
	expert := &IOExpert{In: in, Out: &out, MaxRounds: 1}

	set, stats := RunSession(fixtures.Carrier(), fixtures.Factory(), Config{
		Lexicon:  lexicon.DefaultLexicon(),
		MinScore: 0.5,
	}, expert)

	if stats.Accepted != 1 {
		t.Fatalf("accepted = %d, want 1: %+v", stats.Accepted, stats)
	}
	if stats.Modified != 1 {
		t.Fatalf("modified = %d, want 1: %+v", stats.Modified, stats)
	}
	if stats.Rejected < 2 { // the explicit 'n' plus everything after 'q'
		t.Fatalf("rejected = %d, want >= 2: %+v", stats.Rejected, stats)
	}
	if set.Len() != 2 { // one accepted + one modified
		t.Fatalf("rule set = %d rules:\n%s", set.Len(), set)
	}
	if !strings.Contains(set.String(), "transport.Wheeled") {
		t.Fatalf("modified rule missing:\n%s", set)
	}
	if !strings.Contains(out.String(), "suggest") {
		t.Fatalf("no prompts written:\n%s", out.String())
	}
}

func TestIOExpertBadModifyFallsBackToReject(t *testing.T) {
	in := strings.NewReader("m not a rule\n")
	var out strings.Builder
	expert := &IOExpert{In: in, Out: &out, MaxRounds: 1}
	d, _ := expert.Review(Suggestion{})
	if d != Reject {
		t.Fatalf("bad modify decision = %v, want Reject", d)
	}
	if !strings.Contains(out.String(), "bad rule") {
		t.Fatalf("no diagnostic written")
	}
}

func TestIOExpertEOFQuits(t *testing.T) {
	expert := &IOExpert{In: strings.NewReader(""), Out: &strings.Builder{}}
	if d, _ := expert.Review(Suggestion{}); d != Reject {
		t.Fatalf("EOF should reject")
	}
	if !expert.Satisfied(1, 0) {
		t.Fatalf("EOF should end the session")
	}
}

func TestIOExpertUnknownInputRejects(t *testing.T) {
	expert := &IOExpert{In: strings.NewReader("maybe\n"), Out: &strings.Builder{}}
	if d, _ := expert.Review(Suggestion{}); d != Reject {
		t.Fatalf("unknown input should reject")
	}
}
