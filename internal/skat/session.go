package skat

import (
	"sort"

	"repro/internal/ontology"
	"repro/internal/rules"
)

// Decision is an expert's verdict on one suggestion.
type Decision int

// Expert decisions: accept the suggested rule, reject the correspondence
// (it becomes forbidden for later rounds), or replace the suggestion with
// a modified rule (e.g. routing it through a new articulation term).
const (
	Accept Decision = iota
	Reject
	Modify
)

// Expert is the domain interoperation expert in the iterative loop of
// §2.4. Implementations range from interactive CLIs to the scripted
// experts below.
type Expert interface {
	// Review returns the decision for one suggestion; for Modify it also
	// returns the replacement rule.
	Review(s Suggestion) (Decision, rules.Rule)
	// Satisfied reports whether the expert wants to stop iterating after
	// the given round (the paper: "this process is iteratively repeated
	// until the expert is satisfied").
	Satisfied(round int, newlyAccepted int) bool
}

// SessionStats summarises a SKAT session for reporting (experiment E7
// measures expert workload with these numbers).
type SessionStats struct {
	Rounds    int
	Reviewed  int
	Accepted  int
	Rejected  int
	Modified  int
	Suggested int
}

// RunSession drives the propose → review → re-propose loop and returns
// the accumulated, validated articulation rule set. Rejected pairs are fed
// back as Forbid rules so later rounds do not resurface them; accepted
// pairs are fed back as Force rules so structural propagation can build on
// them.
func RunSession(o1, o2 *ontology.Ontology, cfg Config, expert Expert) (*rules.Set, SessionStats) {
	var stats SessionStats
	accepted := rules.NewSet()
	decided := make(map[pairKey]bool)

	for round := 1; ; round++ {
		stats.Rounds = round
		suggestions := Propose(o1, o2, cfg)
		stats.Suggested += len(suggestions)

		newlyAccepted := 0
		for _, s := range suggestions {
			key := pairKey{s.Left.Term, s.Right.Term}
			if decided[key] {
				continue
			}
			decided[key] = true
			stats.Reviewed++
			decision, replacement := expert.Review(s)
			switch decision {
			case Accept:
				accepted.Add(s.Rule())
				cfg.ExpertRules = append(cfg.ExpertRules, ExpertRule{Kind: Force, Left: s.Left.Term, Right: s.Right.Term})
				stats.Accepted++
				newlyAccepted++
			case Modify:
				accepted.Add(replacement)
				stats.Modified++
				newlyAccepted++
			case Reject:
				cfg.ExpertRules = append(cfg.ExpertRules, ExpertRule{Kind: Forbid, Left: s.Left.Term, Right: s.Right.Term})
				stats.Rejected++
			}
		}
		if expert.Satisfied(round, newlyAccepted) || newlyAccepted == 0 {
			break
		}
	}
	return accepted, stats
}

// ThresholdExpert is a scripted expert that accepts every suggestion at or
// above Accept and rejects the rest — modelling an expert who trusts the
// tool's ranking.
type ThresholdExpert struct {
	AcceptAt  float64
	MaxRounds int
}

// Review implements Expert.
func (e ThresholdExpert) Review(s Suggestion) (Decision, rules.Rule) {
	if s.Score >= e.AcceptAt {
		return Accept, rules.Rule{}
	}
	return Reject, rules.Rule{}
}

// Satisfied implements Expert.
func (e ThresholdExpert) Satisfied(round, newlyAccepted int) bool {
	max := e.MaxRounds
	if max == 0 {
		max = 3
	}
	return round >= max
}

// OracleExpert is a scripted expert that knows the ground-truth
// correspondences (used by the workload generator's planted matches):
// it accepts a suggestion exactly when the truth table contains it.
// Experiment E7 uses it to measure how much of the truth SKAT surfaces
// and how much expert effort the tool saves.
type OracleExpert struct {
	// Truth maps left-ontology terms to their true right-ontology terms.
	Truth map[string]string
	// MaxRounds caps iteration; default 3.
	MaxRounds int
}

// Review implements Expert.
func (e OracleExpert) Review(s Suggestion) (Decision, rules.Rule) {
	if e.Truth[s.Left.Term] == s.Right.Term {
		return Accept, rules.Rule{}
	}
	return Reject, rules.Rule{}
}

// Satisfied implements Expert.
func (e OracleExpert) Satisfied(round, newlyAccepted int) bool {
	max := e.MaxRounds
	if max == 0 {
		max = 3
	}
	return round >= max
}

// Metrics reports suggestion quality against a ground truth.
type Metrics struct {
	Precision float64
	Recall    float64
	F1        float64
	TruePos   int
	FalsePos  int
	FalseNeg  int
}

// Evaluate scores suggestions against ground-truth correspondences
// (left term → right term). A suggestion counts as correct when the truth
// table maps its left term to its right term.
func Evaluate(suggestions []Suggestion, truth map[string]string) Metrics {
	var m Metrics
	seen := make(map[string]bool, len(suggestions))
	for _, s := range suggestions {
		if truth[s.Left.Term] == s.Right.Term {
			if !seen[s.Left.Term] {
				m.TruePos++
				seen[s.Left.Term] = true
			}
		} else {
			m.FalsePos++
		}
	}
	for l := range truth {
		if !seen[l] {
			m.FalseNeg++
		}
	}
	if m.TruePos+m.FalsePos > 0 {
		m.Precision = float64(m.TruePos) / float64(m.TruePos+m.FalsePos)
	}
	if m.TruePos+m.FalseNeg > 0 {
		m.Recall = float64(m.TruePos) / float64(m.TruePos+m.FalseNeg)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// TopPerLeft keeps only the best-scored suggestion per left term — the
// one-to-one discipline an expert usually imposes before accepting.
func TopPerLeft(suggestions []Suggestion) []Suggestion {
	best := make(map[string]Suggestion)
	for _, s := range suggestions {
		cur, ok := best[s.Left.Term]
		if !ok || s.Score > cur.Score {
			best[s.Left.Term] = s
		}
	}
	out := make([]Suggestion, 0, len(best))
	for _, s := range best {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Left.Less(out[j].Left)
	})
	return out
}
