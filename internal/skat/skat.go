// Package skat reproduces SKAT, the Semantic Knowledge Articulation Tool
// that ONION builds on (EDBT 2000, §2.4; Mitra, Wiederhold, Jannink,
// FUSION'99): it proposes articulation rules between two source ontologies
// semi-automatically, using expert seed rules, string matching, a semantic
// lexicon (the WordNet stand-in of package lexicon), and structural
// evidence; a domain expert then confirms, rejects or modifies the
// proposals in an iterative loop (package skat's Session).
package skat

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lexicon"
	"repro/internal/ontology"
	"repro/internal/rules"
)

// Weights control how the matching signals combine. Each signal yields a
// score in [0,1]; the pair score is the weighted maximum — one strong
// signal suffices, which mirrors how hints work: an exact name match needs
// no lexicon support and vice versa.
type Weights struct {
	// Exact scales exact (normalised) label equality.
	Exact float64
	// Token scales synonym-aware token-set overlap.
	Token float64
	// Lexicon scales lexicon evidence (synonymy/hypernymy of heads).
	Lexicon float64
	// String scales fuzzy string similarity (edit + trigram).
	String float64
}

// DefaultWeights order the signals by reliability: exact > lexicon >
// token > string.
func DefaultWeights() Weights {
	return Weights{Exact: 1.0, Lexicon: 0.9, Token: 0.8, String: 0.6}
}

// ExpertRuleKind distinguishes seed rules.
type ExpertRuleKind int

// Expert seed rules either force a correspondence the matcher must emit
// with full confidence, or forbid one it must never emit.
const (
	Force ExpertRuleKind = iota
	Forbid
)

// ExpertRule is one seed rule from the domain expert.
type ExpertRule struct {
	Kind  ExpertRuleKind
	Left  string // term in the first ontology
	Right string // term in the second ontology
}

// Config tunes proposal generation.
type Config struct {
	// Lexicon supplies semantic evidence; nil disables lexicon matching
	// (string and structural signals still apply).
	Lexicon *lexicon.Lexicon
	// Weights for signal combination; zero value uses DefaultWeights.
	Weights Weights
	// MinScore is the proposal threshold; pairs scoring below it are not
	// suggested. Default 0.55.
	MinScore float64
	// StructuralRounds runs that many rounds of neighbourhood score
	// propagation (a light similarity-flooding); 0 disables.
	StructuralRounds int
	// StructuralAlpha blends propagated neighbourhood evidence into pair
	// scores (0..1); default 0.3 when StructuralRounds > 0.
	StructuralAlpha float64
	// ExpertRules seed the matcher.
	ExpertRules []ExpertRule
	// MaxSuggestions bounds the output (0 = unlimited); the top-scored
	// suggestions are kept.
	MaxSuggestions int
}

func (c Config) weights() Weights {
	if c.Weights == (Weights{}) {
		return DefaultWeights()
	}
	return c.Weights
}

func (c Config) minScore() float64 {
	if c.MinScore == 0 {
		return 0.55
	}
	return c.MinScore
}

func (c Config) alpha() float64 {
	if c.StructuralAlpha == 0 {
		return 0.3
	}
	return c.StructuralAlpha
}

// Suggestion is one proposed semantic bridge with its score and the
// evidence trail shown to the expert.
type Suggestion struct {
	Left     ontology.Ref
	Right    ontology.Ref
	Score    float64
	Evidence []string
}

// Rule renders the suggestion as the articulation rule Left => Right.
func (s Suggestion) Rule() rules.Rule {
	return rules.Implication(s.Left, s.Right)
}

// String renders the suggestion for expert display.
func (s Suggestion) String() string {
	return fmt.Sprintf("%s => %s  [%.2f: %s]", s.Left, s.Right, s.Score, strings.Join(s.Evidence, "; "))
}

// Propose generates scored correspondence suggestions between o1 and o2,
// sorted by descending score (ties broken by term order). It never
// suggests forbidden pairs and always suggests forced ones.
func Propose(o1, o2 *ontology.Ontology, cfg Config) []Suggestion {
	m := newMatcher(o1, o2, cfg)
	m.collectCandidates()
	if cfg.StructuralRounds > 0 {
		m.propagate(cfg.StructuralRounds, cfg.alpha())
	}
	return m.suggestions()
}

// ancestorGateDepth bounds the shared-ancestry candidate gate: two terms
// become a candidate pair when their head tokens share a hypernym within
// this many levels of either (deep enough for car ⇝ vehicle, shallow
// enough to keep car and invoice apart).
const ancestorGateDepth = 4

type pairKey struct{ l, r string }

type candidate struct {
	base     float64
	score    float64
	evidence []string
	forced   bool
}

type matcher struct {
	o1, o2 *ontology.Ontology
	cfg    Config
	w      Weights
	cands  map[pairKey]*candidate
	forbid map[pairKey]bool
	// Per-term memos: token lists and head tokens are recomputed for
	// every candidate pair otherwise; synonym verdicts repeat massively
	// across token pairs.
	tokMemo  map[string][]string
	synMemo  map[pairKey]bool
	normMemo map[string]string
	headMemo map[pairKey]headScore
}

type headScore struct {
	score float64
	why   string
}

func newMatcher(o1, o2 *ontology.Ontology, cfg Config) *matcher {
	m := &matcher{
		o1: o1, o2: o2, cfg: cfg, w: cfg.weights(),
		cands:    make(map[pairKey]*candidate),
		forbid:   make(map[pairKey]bool),
		tokMemo:  make(map[string][]string),
		synMemo:  make(map[pairKey]bool),
		normMemo: make(map[string]string),
		headMemo: make(map[pairKey]headScore),
	}
	for _, er := range cfg.ExpertRules {
		if er.Kind == Forbid {
			m.forbid[pairKey{er.Left, er.Right}] = true
		}
	}
	return m
}

func (m *matcher) tokens(term string) []string {
	if t, ok := m.tokMemo[term]; ok {
		return t
	}
	t := lexicon.Tokens(term)
	m.tokMemo[term] = t
	return t
}

func (m *matcher) normalize(term string) string {
	if n, ok := m.normMemo[term]; ok {
		return n
	}
	n := lexicon.Normalize(term)
	m.normMemo[term] = n
	return n
}

// lexHeadScore memoises the lexicon evidence of one head-token pair —
// heads repeat across many compound terms, so this caches the expensive
// synonym/path queries.
func (m *matcher) lexHeadScore(h1, h2 string) (float64, string) {
	key := pairKey{h1, h2}
	if v, ok := m.headMemo[key]; ok {
		return v.score, v.why
	}
	var out headScore
	lex := m.cfg.Lexicon
	if lex.AreSynonyms(h1, h2) {
		out = headScore{m.w.Lexicon * 0.9, "lexicon head synonyms"}
	} else if ps := lex.PathSimilarity(h1, h2); ps >= 0.5 {
		out = headScore{m.w.Lexicon * ps, fmt.Sprintf("lexicon path similarity %.2f", ps)}
	}
	m.headMemo[key] = out
	return out.score, out.why
}

func headOf(tokens []string) string {
	if len(tokens) == 0 {
		return ""
	}
	return tokens[len(tokens)-1]
}

func (m *matcher) areSyn(x, y string) bool {
	if x == y {
		return true
	}
	if m.cfg.Lexicon == nil {
		return false
	}
	key := pairKey{x, y}
	if v, ok := m.synMemo[key]; ok {
		return v
	}
	v := m.cfg.Lexicon.AreSynonyms(x, y)
	m.synMemo[key] = v
	return v
}

// collectCandidates scores term pairs. Pair enumeration is gated by cheap
// signals (shared tokens, lexicon links, trigram floor) so the quadratic
// scan does minimal work per pair.
func (m *matcher) collectCandidates() {
	terms1, terms2 := m.o1.Terms(), m.o2.Terms()

	// Token index over o2 for the gate.
	byToken := make(map[string][]string)
	for _, t2 := range terms2 {
		for _, tok := range lexicon.Tokens(t2) {
			byToken[tok] = append(byToken[tok], t2)
		}
	}
	// Ancestor-synset index over o2 head tokens for gate 2b.
	byAncestor := make(map[lexicon.SynsetID][]string)
	if m.cfg.Lexicon != nil {
		for _, t2 := range terms2 {
			for _, syn := range m.cfg.Lexicon.AncestorSynsets(lexicon.HeadToken(t2), ancestorGateDepth) {
				byAncestor[syn] = append(byAncestor[syn], t2)
			}
		}
	}
	// Precomputed trigram sets for gate 3 (one per term, not per pair).
	tri2 := make(map[string]lexicon.Trigrams, len(terms2))
	for _, t2 := range terms2 {
		tri2[t2] = lexicon.TrigramSet(t2)
	}

	for _, er := range m.cfg.ExpertRules {
		if er.Kind != Force {
			continue
		}
		if !m.o1.HasTerm(er.Left) || !m.o2.HasTerm(er.Right) {
			continue
		}
		m.cands[pairKey{er.Left, er.Right}] = &candidate{
			base: 1, score: 1, forced: true,
			evidence: []string{"expert rule (forced)"},
		}
	}

	for _, t1 := range terms1 {
		seen := make(map[string]bool)
		consider := func(t2 string) {
			if t2 == "" || seen[t2] {
				return
			}
			seen[t2] = true
			key := pairKey{t1, t2}
			if m.forbid[key] {
				return
			}
			if _, ok := m.cands[key]; ok {
				return
			}
			score, ev := m.scorePair(t1, t2)
			if score > 0 {
				m.cands[key] = &candidate{base: score, score: score, evidence: ev}
			}
		}
		// Gate 1: shared surface tokens.
		toks := lexicon.Tokens(t1)
		for _, tok := range toks {
			for _, t2 := range byToken[tok] {
				consider(t2)
			}
		}
		// Gate 2: lexicon neighbours of each token (synonyms and
		// immediate hypernyms/hyponyms) that appear as tokens in o2.
		if m.cfg.Lexicon != nil {
			for _, tok := range toks {
				var related []string
				related = append(related, m.cfg.Lexicon.Synonyms(tok)...)
				related = append(related, m.cfg.Lexicon.Hypernyms(tok)...)
				related = append(related, m.cfg.Lexicon.Hyponyms(tok)...)
				for _, r := range related {
					for _, t2 := range byToken[r] {
						consider(t2)
					}
				}
			}
			// Gate 2b: shared shallow hypernym ancestry of head tokens —
			// catches multi-level hypernymy like Cars vs Vehicle.
			for _, syn := range m.cfg.Lexicon.AncestorSynsets(lexicon.HeadToken(t1), ancestorGateDepth) {
				for _, t2 := range byAncestor[syn] {
					consider(t2)
				}
			}
		}
		// Gate 3: fuzzy-string sweep (catches typos and morphology);
		// only a cheap precomputed-trigram prefilter per pair.
		tri1 := lexicon.TrigramSet(t1)
		for _, t2 := range terms2 {
			if !seen[t2] && tri1.Similarity(tri2[t2]) >= 0.35 {
				consider(t2)
			}
		}
	}
}

// scorePair combines the matching signals for one term pair.
func (m *matcher) scorePair(t1, t2 string) (float64, []string) {
	var best float64
	var ev []string
	bump := func(s float64, why string) {
		if s <= 0 {
			return
		}
		ev = append(ev, why)
		if s > best {
			best = s
		}
	}

	n1, n2 := m.normalize(t1), m.normalize(t2)
	if n1 == n2 {
		bump(m.w.Exact, "exact label match")
	}

	tok1, tok2 := m.tokens(t1), m.tokens(t2)
	if j := m.synAwareJaccard(tok1, tok2); j > 0 {
		bump(m.w.Token*j, fmt.Sprintf("token overlap %.2f", j))
	}

	if m.cfg.Lexicon != nil {
		lex := m.cfg.Lexicon
		switch {
		case lex.AreSynonyms(n1, n2):
			bump(m.w.Lexicon, "lexicon synonyms")
		case lex.IsHypernymOf(n2, n1) || lex.IsHypernymOf(n1, n2):
			bump(m.w.Lexicon*0.85, "lexicon hypernymy")
		default:
			h1, h2 := headOf(m.tokens(t1)), headOf(m.tokens(t2))
			if h1 != "" && h2 != "" {
				score, why := m.lexHeadScore(h1, h2)
				bump(score, why)
			}
		}
	}

	es := lexicon.EditSimilarity(n1, n2)
	ts := lexicon.TrigramSimilarity(n1, n2)
	ss := es
	if ts > ss {
		ss = ts
	}
	if ss >= 0.7 {
		bump(m.w.String*ss, fmt.Sprintf("string similarity %.2f", ss))
	}
	return best, ev
}

// synAwareJaccard is token-set overlap where tokens also match through
// lexicon synonymy (memoised per token pair).
func (m *matcher) synAwareJaccard(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	used := make([]bool, len(b))
	inter := 0
	for _, x := range a {
		for j, y := range b {
			if !used[j] && m.areSyn(x, y) {
				used[j] = true
				inter++
				break
			}
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// propagate runs structural score refinement: a pair's score is blended
// with the average best score among its label-compatible neighbour pairs.
// Anchored neighbourhoods reinforce each other the way SKAT's structural
// matching rules do.
func (m *matcher) propagate(rounds int, alpha float64) {
	g1, g2 := m.o1.Graph(), m.o2.Graph()
	for r := 0; r < rounds; r++ {
		next := make(map[pairKey]float64, len(m.cands))
		for key, c := range m.cands {
			if c.forced {
				next[key] = 1
				continue
			}
			id1, ok1 := m.o1.Term(key.l)
			id2, ok2 := m.o2.Term(key.r)
			if !ok1 || !ok2 {
				next[key] = c.score
				continue
			}
			var sum float64
			var n int
			for _, dir := range []bool{true, false} {
				var e1, e2 []string
				if dir {
					for _, e := range g1.OutEdges(id1) {
						e1 = append(e1, e.Label+"\x00"+g1.Label(e.To))
					}
					for _, e := range g2.OutEdges(id2) {
						e2 = append(e2, e.Label+"\x00"+g2.Label(e.To))
					}
				} else {
					for _, e := range g1.InEdges(id1) {
						e1 = append(e1, e.Label+"\x00"+g1.Label(e.From))
					}
					for _, e := range g2.InEdges(id2) {
						e2 = append(e2, e.Label+"\x00"+g2.Label(e.From))
					}
				}
				for _, x := range e1 {
					lbl, t1 := splitPair(x)
					best := 0.0
					for _, y := range e2 {
						lbl2, t2 := splitPair(y)
						if lbl != lbl2 {
							continue
						}
						if s, ok := m.cands[pairKey{t1, t2}]; ok && s.score > best {
							best = s.score
						}
					}
					sum += best
					n++
				}
			}
			structural := c.base
			if n > 0 {
				structural = sum / float64(n)
			}
			blended := (1-alpha)*c.base + alpha*structural
			if blended > 1 {
				blended = 1
			}
			next[key] = blended
		}
		changed := false
		for key, s := range next {
			c := m.cands[key]
			if diff := s - c.score; diff > 1e-9 || diff < -1e-9 {
				changed = true
			}
			c.score = s
		}
		if !changed {
			break
		}
	}
	for _, c := range m.cands {
		if !c.forced && c.score != c.base {
			c.evidence = append(c.evidence, "structural propagation")
		}
	}
}

func splitPair(s string) (string, string) {
	i := strings.IndexByte(s, 0)
	return s[:i], s[i+1:]
}

// suggestions converts candidates above threshold into sorted output.
func (m *matcher) suggestions() []Suggestion {
	min := m.cfg.minScore()
	var out []Suggestion
	for key, c := range m.cands {
		if !c.forced && c.score < min {
			continue
		}
		ev := append([]string(nil), c.evidence...)
		sort.Strings(ev)
		out = append(out, Suggestion{
			Left:     ontology.MakeRef(m.o1.Name(), key.l),
			Right:    ontology.MakeRef(m.o2.Name(), key.r),
			Score:    c.score,
			Evidence: ev,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Left != out[j].Left {
			return out[i].Left.Less(out[j].Left)
		}
		return out[i].Right.Less(out[j].Right)
	})
	if m.cfg.MaxSuggestions > 0 && len(out) > m.cfg.MaxSuggestions {
		out = out[:m.cfg.MaxSuggestions]
	}
	return out
}
