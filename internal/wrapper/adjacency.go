// Package wrapper implements ONION's source wrappers (EDBT 2000, §2.1):
// "We accept ontologies based on IDL specifications and XML-based
// documents, as well as simple adjacency list representations." Each
// format round-trips: Read* parses an external representation into an
// ontology graph, Write* renders it back deterministically.
package wrapper

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ontology"
)

// ReadAdjacency parses the adjacency-list text format:
//
//	ontology carrier
//	relation partOf transitive
//	node Cars
//	node "Term With Spaces"
//	edge Cars SubclassOf Transportation
//
// '#' starts a comment; labels containing whitespace are quoted with Go
// string syntax. Unknown edge endpoints are created implicitly (adjacency
// dumps commonly list edges only).
func ReadAdjacency(r io.Reader) (*ontology.Ontology, error) {
	o := ontology.New("ontology")
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(stripComment(sc.Text()))
		if text == "" {
			continue
		}
		fields, err := splitQuoted(text)
		if err != nil {
			return nil, fmt.Errorf("wrapper: line %d: %w", line, err)
		}
		switch fields[0] {
		case "ontology":
			if len(fields) != 2 {
				return nil, fmt.Errorf("wrapper: line %d: ontology needs a name", line)
			}
			o.SetName(fields[1])
		case "relation":
			if len(fields) < 2 {
				return nil, fmt.Errorf("wrapper: line %d: relation needs a name", line)
			}
			spec := ontology.RelationSpec{Name: fields[1]}
			for _, prop := range fields[2:] {
				switch prop {
				case "transitive":
					spec.Props |= ontology.Transitive
				case "symmetric":
					spec.Props |= ontology.Symmetric
				case "reflexive":
					spec.Props |= ontology.Reflexive
				default:
					if inv, ok := strings.CutPrefix(prop, "inverseOf="); ok {
						spec.InverseOf = inv
					} else {
						return nil, fmt.Errorf("wrapper: line %d: unknown relation property %q", line, prop)
					}
				}
			}
			o.DeclareRelation(spec)
		case "node":
			if len(fields) != 2 {
				return nil, fmt.Errorf("wrapper: line %d: node needs exactly one label", line)
			}
			if _, err := o.EnsureTerm(fields[1]); err != nil {
				return nil, fmt.Errorf("wrapper: line %d: %w", line, err)
			}
		case "edge":
			if len(fields) != 4 {
				return nil, fmt.Errorf("wrapper: line %d: edge needs from, label, to", line)
			}
			for _, term := range []string{fields[1], fields[3]} {
				if _, err := o.EnsureTerm(term); err != nil {
					return nil, fmt.Errorf("wrapper: line %d: %w", line, err)
				}
			}
			if err := o.Relate(fields[1], fields[2], fields[3]); err != nil {
				return nil, fmt.Errorf("wrapper: line %d: %w", line, err)
			}
		default:
			return nil, fmt.Errorf("wrapper: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("wrapper: reading adjacency input: %w", err)
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return o, nil
}

// WriteAdjacency renders the ontology in the adjacency-list format,
// deterministically: declarations, nodes sorted by label, then edges
// sorted by (from, label, to).
func WriteAdjacency(w io.Writer, o *ontology.Ontology) error {
	var b strings.Builder
	fmt.Fprintf(&b, "ontology %s\n", quoteIfNeeded(o.Name()))
	for _, spec := range o.Relations() {
		if spec.Props == 0 && spec.InverseOf == "" {
			continue
		}
		fmt.Fprintf(&b, "relation %s", quoteIfNeeded(spec.Name))
		if spec.Props.Has(ontology.Transitive) {
			b.WriteString(" transitive")
		}
		if spec.Props.Has(ontology.Symmetric) {
			b.WriteString(" symmetric")
		}
		if spec.Props.Has(ontology.Reflexive) {
			b.WriteString(" reflexive")
		}
		if spec.InverseOf != "" {
			fmt.Fprintf(&b, " inverseOf=%s", spec.InverseOf)
		}
		b.WriteString("\n")
	}
	for _, term := range o.Terms() {
		fmt.Fprintf(&b, "node %s\n", quoteIfNeeded(term))
	}
	g := o.Graph()
	rows := make([]edgeRow, 0, g.NumEdges())
	for _, e := range g.Edges() {
		rows = append(rows, edgeRow{g.Label(e.From), e.Label, g.Label(e.To)})
	}
	sortRows(rows)
	for _, r := range rows {
		fmt.Fprintf(&b, "edge %s %s %s\n", quoteIfNeeded(r.from), quoteIfNeeded(r.label), quoteIfNeeded(r.to))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// edgeRow is a label-level edge triple used by the deterministic writers.
type edgeRow struct{ from, label, to string }

func sortRows(rows []edgeRow) {
	sort.Slice(rows, func(i, j int) bool { return rowLess(rows[i], rows[j]) })
}

func rowLess(a, b edgeRow) bool {
	if a.from != b.from {
		return a.from < b.from
	}
	if a.label != b.label {
		return a.label < b.label
	}
	return a.to < b.to
}

func stripComment(s string) string {
	// A '#' inside a quoted label must survive.
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inQuote = !inQuote
		case '\\':
			i++
		case '#':
			if !inQuote {
				return s[:i]
			}
		}
	}
	return s
}

// splitQuoted splits on whitespace while honouring Go-quoted fields.
func splitQuoted(s string) ([]string, error) {
	var out []string
	i := 0
	for i < len(s) {
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i >= len(s) {
			break
		}
		if s[i] == '"' {
			j := i + 1
			for j < len(s) {
				if s[j] == '\\' {
					j += 2
					continue
				}
				if s[j] == '"' {
					break
				}
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("unterminated quote")
			}
			unq, err := strconv.Unquote(s[i : j+1])
			if err != nil {
				return nil, fmt.Errorf("bad quoted field %s: %w", s[i:j+1], err)
			}
			out = append(out, unq)
			i = j + 1
			continue
		}
		j := i
		for j < len(s) && s[j] != ' ' && s[j] != '\t' {
			j++
		}
		out = append(out, s[i:j])
		i = j
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty line")
	}
	return out, nil
}

func quoteIfNeeded(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\"#") {
		return strconv.Quote(s)
	}
	return s
}
