package wrapper

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/ontology"
)

// ReadIDL parses the IDL subset the paper mentions as an accepted source
// representation (§2.1):
//
//	module carrier {
//	  interface Vehicle {
//	    attribute float price;
//	    attribute string owner;
//	  };
//	  interface Truck : Vehicle, CargoCarrier {
//	    attribute string model;
//	  };
//	};
//
// Interfaces become terms; inheritance lists become SubclassOf edges;
// attribute declarations become attribute terms connected by AttributeOf
// edges (attribute types are recorded as hasType edges to type terms).
// The module name, when present, names the ontology. Both // and /* */
// comments are stripped.
func ReadIDL(r io.Reader) (*ontology.Ontology, error) {
	src, err := io.ReadAll(bufio.NewReader(r))
	if err != nil {
		return nil, fmt.Errorf("wrapper: reading IDL: %w", err)
	}
	toks, err := lexIDL(string(src))
	if err != nil {
		return nil, err
	}
	p := &idlParser{toks: toks}
	o, err := p.parse()
	if err != nil {
		return nil, err
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return o, nil
}

// HasTypeLabel is the edge label connecting an attribute to its declared
// IDL type.
const HasTypeLabel = "hasType"

type idlTok struct {
	text string
	pos  int
}

func lexIDL(s string) ([]idlTok, error) {
	var toks []idlTok
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < len(s) && s[i+1] == '/':
			for i < len(s) && s[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(s) && s[i+1] == '*':
			end := strings.Index(s[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("wrapper: IDL: unterminated block comment at %d", i)
			}
			i += 2 + end + 2
		case c == '{' || c == '}' || c == ';' || c == ':' || c == ',':
			toks = append(toks, idlTok{string(c), i})
			i++
		default:
			j := i
			for j < len(s) && !strings.ContainsRune(" \t\n\r{};:,", rune(s[j])) {
				if s[j] == '/' && j+1 < len(s) && (s[j+1] == '/' || s[j+1] == '*') {
					break
				}
				j++
			}
			if j == i {
				return nil, fmt.Errorf("wrapper: IDL: unexpected character %q at %d", s[i], i)
			}
			toks = append(toks, idlTok{s[i:j], i})
			i = j
		}
	}
	return toks, nil
}

type idlParser struct {
	toks []idlTok
	pos  int
}

func (p *idlParser) peek() idlTok {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return idlTok{text: "", pos: -1}
}

func (p *idlParser) next() idlTok {
	t := p.peek()
	if t.pos >= 0 {
		p.pos++
	}
	return t
}

func (p *idlParser) expect(text string) error {
	if t := p.next(); t.text != text {
		return fmt.Errorf("wrapper: IDL: expected %q, got %q", text, t.text)
	}
	return nil
}

func (p *idlParser) parse() (*ontology.Ontology, error) {
	o := ontology.New("idl")
	// Optional single module wrapper.
	if p.peek().text == "module" {
		p.next()
		name := p.next()
		if name.text == "" || name.text == "{" {
			return nil, fmt.Errorf("wrapper: IDL: module needs a name")
		}
		o.SetName(name.text)
		if err := p.expect("{"); err != nil {
			return nil, err
		}
		for p.peek().text != "}" && p.peek().pos >= 0 {
			if err := p.parseInterface(o); err != nil {
				return nil, err
			}
		}
		if err := p.expect("}"); err != nil {
			return nil, err
		}
		if p.peek().text == ";" {
			p.next()
		}
	}
	for p.peek().pos >= 0 {
		if err := p.parseInterface(o); err != nil {
			return nil, err
		}
	}
	return o, nil
}

func (p *idlParser) parseInterface(o *ontology.Ontology) error {
	if err := p.expect("interface"); err != nil {
		return err
	}
	name := p.next()
	if name.text == "" || strings.ContainsAny(name.text, "{};:,") {
		return fmt.Errorf("wrapper: IDL: interface needs a name")
	}
	if _, err := o.EnsureTerm(name.text); err != nil {
		return err
	}
	if p.peek().text == ":" {
		p.next()
		for {
			parent := p.next()
			if parent.text == "" || strings.ContainsAny(parent.text, "{};:,") {
				return fmt.Errorf("wrapper: IDL: bad parent list for %s", name.text)
			}
			if _, err := o.EnsureTerm(parent.text); err != nil {
				return err
			}
			if err := o.Relate(name.text, ontology.SubclassOf, parent.text); err != nil {
				return err
			}
			if p.peek().text != "," {
				break
			}
			p.next()
		}
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	for p.peek().text != "}" {
		if p.peek().pos < 0 {
			return fmt.Errorf("wrapper: IDL: unterminated interface %s", name.text)
		}
		if err := p.parseMember(o, name.text); err != nil {
			return err
		}
	}
	if err := p.expect("}"); err != nil {
		return err
	}
	if p.peek().text == ";" {
		p.next()
	}
	return nil
}

func (p *idlParser) parseMember(o *ontology.Ontology, owner string) error {
	kw := p.next()
	switch kw.text {
	case "attribute":
		typ := p.next()
		attr := p.next()
		if typ.text == "" || attr.text == "" || strings.ContainsAny(typ.text+attr.text, "{};:,") {
			return fmt.Errorf("wrapper: IDL: attribute needs type and name in %s", owner)
		}
		if _, err := o.EnsureTerm(attr.text); err != nil {
			return err
		}
		if _, err := o.EnsureTerm(typ.text); err != nil {
			return err
		}
		if err := o.Relate(owner, ontology.AttributeOf, attr.text); err != nil {
			return err
		}
		if err := o.Relate(attr.text, HasTypeLabel, typ.text); err != nil {
			return err
		}
		return p.expect(";")
	case "relationship":
		// relationship verb Target;
		verb := p.next()
		target := p.next()
		if verb.text == "" || target.text == "" {
			return fmt.Errorf("wrapper: IDL: relationship needs verb and target in %s", owner)
		}
		if _, err := o.EnsureTerm(target.text); err != nil {
			return err
		}
		if err := o.Relate(owner, verb.text, target.text); err != nil {
			return err
		}
		return p.expect(";")
	default:
		return fmt.Errorf("wrapper: IDL: unknown member %q in interface %s", kw.text, owner)
	}
}

// WriteIDL renders the class/attribute structure of the ontology as the
// IDL subset (terms without SubclassOf/AttributeOf participation are
// emitted as empty interfaces so the round trip is lossless for class
// structure; non-standard relationship edges become relationship members).
func WriteIDL(w io.Writer, o *ontology.Ontology) error {
	g := o.Graph()
	// Attribute terms (targets of AttributeOf) and type terms (targets of
	// hasType) do not get their own interfaces.
	attrTerm := make(map[string]bool)
	typeTerm := make(map[string]bool)
	for _, e := range g.Edges() {
		switch e.Label {
		case ontology.AttributeOf:
			attrTerm[g.Label(e.To)] = true
		case HasTypeLabel:
			typeTerm[g.Label(e.To)] = true
		}
	}
	var classes []string
	for _, term := range o.Terms() {
		if !attrTerm[term] && !typeTerm[term] {
			classes = append(classes, term)
		}
	}
	sort.Strings(classes)

	var b strings.Builder
	fmt.Fprintf(&b, "module %s {\n", o.Name())
	for _, c := range classes {
		id, _ := o.Term(c)
		var parents, members []string
		for _, e := range g.OutEdges(id) {
			to := g.Label(e.To)
			switch e.Label {
			case ontology.SubclassOf:
				parents = append(parents, to)
			case ontology.AttributeOf:
				typ := "any"
				if attrID, ok := o.Term(to); ok {
					for _, te := range g.OutEdges(attrID) {
						if te.Label == HasTypeLabel {
							typ = g.Label(te.To)
							break
						}
					}
				}
				members = append(members, fmt.Sprintf("attribute %s %s;", typ, to))
			case HasTypeLabel:
				// handled from the attribute side
			default:
				members = append(members, fmt.Sprintf("relationship %s %s;", e.Label, to))
			}
		}
		sort.Strings(parents)
		sort.Strings(members)
		fmt.Fprintf(&b, "  interface %s", c)
		if len(parents) > 0 {
			fmt.Fprintf(&b, " : %s", strings.Join(parents, ", "))
		}
		if len(members) == 0 {
			b.WriteString(" {};\n")
			continue
		}
		b.WriteString(" {\n")
		for _, m := range members {
			fmt.Fprintf(&b, "    %s\n", m)
		}
		b.WriteString("  };\n")
	}
	b.WriteString("};\n")
	_, err := io.WriteString(w, b.String())
	return err
}
