package wrapper

import (
	"fmt"
	"io"
	"path/filepath"
	"strings"

	"repro/internal/ontology"
)

// Format identifies a wrapper format.
type Format int

// Supported formats.
const (
	FormatUnknown Format = iota
	FormatAdjacency
	FormatXML
	FormatIDL
)

// String names the format.
func (f Format) String() string {
	switch f {
	case FormatAdjacency:
		return "adjacency"
	case FormatXML:
		return "xml"
	case FormatIDL:
		return "idl"
	default:
		return "unknown"
	}
}

// DetectFormat maps a file name to its format by extension: .onto/.adj/.txt
// → adjacency, .xml → XML, .idl → IDL.
func DetectFormat(path string) Format {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".onto", ".adj", ".txt":
		return FormatAdjacency
	case ".xml":
		return FormatXML
	case ".idl":
		return FormatIDL
	default:
		return FormatUnknown
	}
}

// ParseFormat parses a format name ("adjacency", "xml", "idl").
func ParseFormat(name string) (Format, error) {
	switch strings.ToLower(name) {
	case "adjacency", "adj", "onto", "txt":
		return FormatAdjacency, nil
	case "xml":
		return FormatXML, nil
	case "idl":
		return FormatIDL, nil
	default:
		return FormatUnknown, fmt.Errorf("wrapper: unknown format %q", name)
	}
}

// Read parses an ontology in the given format.
func Read(r io.Reader, f Format) (*ontology.Ontology, error) {
	switch f {
	case FormatAdjacency:
		return ReadAdjacency(r)
	case FormatXML:
		return ReadXML(r)
	case FormatIDL:
		return ReadIDL(r)
	default:
		return nil, fmt.Errorf("wrapper: cannot read format %v", f)
	}
}

// Write renders an ontology in the given format.
func Write(w io.Writer, o *ontology.Ontology, f Format) error {
	switch f {
	case FormatAdjacency:
		return WriteAdjacency(w, o)
	case FormatXML:
		return WriteXML(w, o)
	case FormatIDL:
		return WriteIDL(w, o)
	default:
		return fmt.Errorf("wrapper: cannot write format %v", f)
	}
}
