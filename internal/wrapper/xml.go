package wrapper

import (
	"encoding/xml"
	"fmt"
	"io"

	"repro/internal/ontology"
)

// xmlOntology is the XML document structure:
//
//	<ontology name="carrier">
//	  <relation name="partOf" transitive="true"/>
//	  <node label="Cars"/>
//	  <edge from="Cars" label="SubclassOf" to="Transportation"/>
//	</ontology>
type xmlOntology struct {
	XMLName   xml.Name      `xml:"ontology"`
	Name      string        `xml:"name,attr"`
	Relations []xmlRelation `xml:"relation"`
	Nodes     []xmlNode     `xml:"node"`
	Edges     []xmlEdge     `xml:"edge"`
}

type xmlRelation struct {
	Name       string `xml:"name,attr"`
	Transitive bool   `xml:"transitive,attr,omitempty"`
	Symmetric  bool   `xml:"symmetric,attr,omitempty"`
	Reflexive  bool   `xml:"reflexive,attr,omitempty"`
	InverseOf  string `xml:"inverseOf,attr,omitempty"`
}

type xmlNode struct {
	Label string `xml:"label,attr"`
}

type xmlEdge struct {
	From  string `xml:"from,attr"`
	Label string `xml:"label,attr"`
	To    string `xml:"to,attr"`
}

// ReadXML parses the XML ontology format.
func ReadXML(r io.Reader) (*ontology.Ontology, error) {
	var doc xmlOntology
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("wrapper: parsing XML ontology: %w", err)
	}
	name := doc.Name
	if name == "" {
		name = "ontology"
	}
	o := ontology.New(name)
	for _, rel := range doc.Relations {
		if rel.Name == "" {
			return nil, fmt.Errorf("wrapper: XML relation without name")
		}
		spec := ontology.RelationSpec{Name: rel.Name, InverseOf: rel.InverseOf}
		if rel.Transitive {
			spec.Props |= ontology.Transitive
		}
		if rel.Symmetric {
			spec.Props |= ontology.Symmetric
		}
		if rel.Reflexive {
			spec.Props |= ontology.Reflexive
		}
		o.DeclareRelation(spec)
	}
	for _, n := range doc.Nodes {
		if _, err := o.EnsureTerm(n.Label); err != nil {
			return nil, fmt.Errorf("wrapper: XML node: %w", err)
		}
	}
	for _, e := range doc.Edges {
		for _, term := range []string{e.From, e.To} {
			if _, err := o.EnsureTerm(term); err != nil {
				return nil, fmt.Errorf("wrapper: XML edge: %w", err)
			}
		}
		if err := o.Relate(e.From, e.Label, e.To); err != nil {
			return nil, fmt.Errorf("wrapper: XML edge: %w", err)
		}
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return o, nil
}

// WriteXML renders the ontology as an XML document, deterministically
// (sorted nodes and edges), indented for human inspection.
func WriteXML(w io.Writer, o *ontology.Ontology) error {
	doc := xmlOntology{Name: o.Name()}
	for _, spec := range o.Relations() {
		if spec.Props == 0 && spec.InverseOf == "" {
			continue
		}
		doc.Relations = append(doc.Relations, xmlRelation{
			Name:       spec.Name,
			Transitive: spec.Props.Has(ontology.Transitive),
			Symmetric:  spec.Props.Has(ontology.Symmetric),
			Reflexive:  spec.Props.Has(ontology.Reflexive),
			InverseOf:  spec.InverseOf,
		})
	}
	for _, term := range o.Terms() {
		doc.Nodes = append(doc.Nodes, xmlNode{Label: term})
	}
	g := o.Graph()
	rows := make([]edgeRow, 0, g.NumEdges())
	for _, e := range g.Edges() {
		rows = append(rows, edgeRow{g.Label(e.From), e.Label, g.Label(e.To)})
	}
	sortRows(rows)
	for _, r := range rows {
		doc.Edges = append(doc.Edges, xmlEdge{From: r.from, Label: r.label, To: r.to})
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("wrapper: encoding XML ontology: %w", err)
	}
	// Encoder.Encode does not emit a trailing newline.
	_, err := io.WriteString(w, "\n")
	return err
}
