package wrapper

import (
	"strings"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/ontology"
)

func TestAdjacencyRoundTrip(t *testing.T) {
	carrier := fixtures.Carrier()
	var buf strings.Builder
	if err := WriteAdjacency(&buf, carrier); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAdjacency(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("re-read failed: %v\n%s", err, buf.String())
	}
	if !back.Graph().EqualByLabels(carrier.Graph()) {
		t.Fatalf("adjacency round trip changed graph:\n%s\nvs\n%s", back, carrier)
	}
	if back.Name() != "carrier" {
		t.Fatalf("name lost: %q", back.Name())
	}
}

func TestAdjacencyQuotedLabelsAndComments(t *testing.T) {
	in := `
# a comment
ontology demo
node "Term With Spaces"
node Plain
edge Plain likes "Term With Spaces"   # trailing comment
edge Plain has "quoted \" and # inside"
`
	o, err := ReadAdjacency(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !o.HasTerm("Term With Spaces") {
		t.Fatalf("quoted label lost: %v", o.Terms())
	}
	if !o.Related("Plain", "likes", "Term With Spaces") {
		t.Fatalf("edge with quoted endpoint lost")
	}
	if !o.HasTerm(`quoted " and # inside`) {
		t.Fatalf("escaped label lost: %v", o.Terms())
	}
	// Round trip with quoting.
	var buf strings.Builder
	if err := WriteAdjacency(&buf, o); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAdjacency(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Graph().EqualByLabels(o.Graph()) {
		t.Fatalf("quoted round trip changed graph")
	}
}

func TestAdjacencyRelationDeclarations(t *testing.T) {
	in := `
ontology demo
relation partOf transitive inverseOf=hasPart
relation near symmetric
node A
`
	o, err := ReadAdjacency(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	spec, ok := o.Relation("partOf")
	if !ok || !spec.Props.Has(ontology.Transitive) || spec.InverseOf != "hasPart" {
		t.Fatalf("partOf spec = %+v", spec)
	}
	if spec, _ := o.Relation("near"); !spec.Props.Has(ontology.Symmetric) {
		t.Fatalf("near spec wrong")
	}
}

func TestAdjacencyErrors(t *testing.T) {
	bad := []string{
		"frobnicate x",
		"node",
		"node a b",
		"edge a b",
		"ontology",
		`node "unterminated`,
		"relation",
		"relation r bogusprop",
	}
	for _, in := range bad {
		if _, err := ReadAdjacency(strings.NewReader(in)); err == nil {
			t.Errorf("ReadAdjacency(%q) should fail", in)
		}
	}
}

func TestXMLRoundTrip(t *testing.T) {
	factory := fixtures.Factory()
	factory.DeclareRelation(ontology.RelationSpec{Name: "partOf", Props: ontology.Transitive, InverseOf: "hasPart"})
	var buf strings.Builder
	if err := WriteXML(&buf, factory); err != nil {
		t.Fatal(err)
	}
	back, err := ReadXML(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("re-read failed: %v\n%s", err, buf.String())
	}
	if !back.Graph().EqualByLabels(factory.Graph()) {
		t.Fatalf("XML round trip changed graph")
	}
	spec, ok := back.Relation("partOf")
	if !ok || !spec.Props.Has(ontology.Transitive) || spec.InverseOf != "hasPart" {
		t.Fatalf("XML relation declaration lost: %+v", spec)
	}
}

func TestXMLRejectsGarbage(t *testing.T) {
	if _, err := ReadXML(strings.NewReader("not xml at all")); err == nil {
		t.Fatalf("garbage accepted")
	}
	if _, err := ReadXML(strings.NewReader(`<ontology><relation/></ontology>`)); err == nil {
		t.Fatalf("nameless relation accepted")
	}
}

func TestIDLParse(t *testing.T) {
	in := `
// carrier fleet model
module carrier {
  interface Vehicle {
    attribute float price;
    attribute string owner;
  };
  /* trucks inherit twice */
  interface Truck : Vehicle, CargoCarrier {
    attribute string model;
    relationship drivenBy Driver;
  };
  interface CargoCarrier {};
  interface Driver {};
};
`
	o, err := ReadIDL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if o.Name() != "carrier" {
		t.Fatalf("module name lost: %q", o.Name())
	}
	if !o.Related("Truck", ontology.SubclassOf, "Vehicle") || !o.Related("Truck", ontology.SubclassOf, "CargoCarrier") {
		t.Fatalf("inheritance lost:\n%s", o)
	}
	if !o.Related("Vehicle", ontology.AttributeOf, "price") {
		t.Fatalf("attribute lost")
	}
	if !o.Related("price", HasTypeLabel, "float") {
		t.Fatalf("attribute type lost")
	}
	if !o.Related("Truck", "drivenBy", "Driver") {
		t.Fatalf("relationship lost")
	}
}

func TestIDLRoundTrip(t *testing.T) {
	in := `
module demo {
  interface A { attribute int x; };
  interface B : A { relationship uses C; };
  interface C {};
};
`
	o, err := ReadIDL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteIDL(&buf, o); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIDL(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("re-read failed: %v\n%s", err, buf.String())
	}
	if !back.Graph().EqualByLabels(o.Graph()) {
		t.Fatalf("IDL round trip changed graph:\n%s\nvs\n%s", buf.String(), o)
	}
}

func TestIDLErrors(t *testing.T) {
	bad := []string{
		"interface {}",
		"interface A { attribute ; };",
		"interface A { bogus x; };",
		"interface A : { };",
		"interface A { attribute int x }",
		"module { interface A {}; };",
		"interface A { /* unterminated",
	}
	for _, in := range bad {
		if _, err := ReadIDL(strings.NewReader(in)); err == nil {
			t.Errorf("ReadIDL(%q) should fail", in)
		}
	}
}

func TestDetectAndParseFormat(t *testing.T) {
	cases := map[string]Format{
		"x.onto": FormatAdjacency,
		"x.adj":  FormatAdjacency,
		"x.txt":  FormatAdjacency,
		"x.XML":  FormatXML,
		"x.idl":  FormatIDL,
		"x.bin":  FormatUnknown,
	}
	for path, want := range cases {
		if got := DetectFormat(path); got != want {
			t.Errorf("DetectFormat(%s) = %v, want %v", path, got, want)
		}
	}
	if f, err := ParseFormat("xml"); err != nil || f != FormatXML {
		t.Fatalf("ParseFormat(xml) = %v, %v", f, err)
	}
	if _, err := ParseFormat("nope"); err == nil {
		t.Fatalf("ParseFormat(nope) accepted")
	}
	if FormatIDL.String() != "idl" || FormatUnknown.String() != "unknown" {
		t.Fatalf("Format.String wrong")
	}
}

func TestReadWriteDispatch(t *testing.T) {
	carrier := fixtures.Carrier()
	for _, f := range []Format{FormatAdjacency, FormatXML} {
		var buf strings.Builder
		if err := Write(&buf, carrier, f); err != nil {
			t.Fatalf("Write %v: %v", f, err)
		}
		back, err := Read(strings.NewReader(buf.String()), f)
		if err != nil {
			t.Fatalf("Read %v: %v", f, err)
		}
		if back.NumTerms() != carrier.NumTerms() {
			t.Fatalf("dispatch round trip %v lost terms", f)
		}
	}
	if _, err := Read(strings.NewReader(""), FormatUnknown); err == nil {
		t.Fatalf("Read unknown format accepted")
	}
	var sb strings.Builder
	if err := Write(&sb, carrier, FormatUnknown); err == nil {
		t.Fatalf("Write unknown format accepted")
	}
}
