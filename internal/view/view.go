// Package view renders ontologies and articulations as text — the
// stand-in for the ONION viewer's graphical presentation (§2.2). The
// paper's motivation for the graph model is precisely that "structural
// relationships [are] often hard to visualize" in text-based models; this
// renderer lays the SubclassOf hierarchy out as an indented tree with
// attribute and instance annotations so a terminal user gets the same
// at-a-glance structure.
package view

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/articulation"
	"repro/internal/graph"
	"repro/internal/ontology"
)

// Options tune rendering.
type Options struct {
	// ShowAttributes annotates classes with their direct attributes.
	ShowAttributes bool
	// ShowInstances lists direct instances beneath their classes.
	ShowInstances bool
	// ShowOther lists non-standard relationships as annotations.
	ShowOther bool
	// MaxDepth bounds the tree depth (0 = unlimited).
	MaxDepth int
}

// DefaultOptions show everything.
func DefaultOptions() Options {
	return Options{ShowAttributes: true, ShowInstances: true, ShowOther: true}
}

// Tree renders the ontology's SubclassOf hierarchy as an indented tree.
// Roots are classes without superclasses; terms that are only attributes
// or instances appear as annotations, and any remaining disconnected
// terms are listed at the end. Output is deterministic. Cycles (invalid
// ontologies) are cut with a "…cycle…" marker rather than looping.
func Tree(o *ontology.Ontology, opts Options) string {
	g := o.Graph()
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d terms, %d relationships)\n", o.Name(), o.NumTerms(), o.NumRelationships())

	// Classify terms: attributes and instances are annotations, not tree
	// nodes of their own.
	attrOnly := make(map[graph.NodeID]bool)
	instOnly := make(map[graph.NodeID]bool)
	for _, e := range g.Edges() {
		switch e.Label {
		case ontology.AttributeOf:
			attrOnly[e.To] = true
		case ontology.InstanceOf:
			instOnly[e.From] = true
		}
	}
	// A term that also participates in the class hierarchy stays a class.
	for _, e := range g.EdgesWithLabel(ontology.SubclassOf) {
		delete(attrOnly, e.From)
		delete(attrOnly, e.To)
		delete(instOnly, e.From)
		delete(instOnly, e.To)
	}

	// Roots: class nodes with no outgoing SubclassOf edge.
	var roots []graph.NodeID
	printed := make(map[graph.NodeID]bool)
	for _, id := range g.Nodes() {
		if attrOnly[id] || instOnly[id] {
			continue
		}
		isRoot := true
		for _, e := range g.OutEdges(id) {
			if e.Label == ontology.SubclassOf {
				isRoot = false
				break
			}
		}
		if isRoot {
			roots = append(roots, id)
		}
	}
	sortByLabel(g, roots)

	var render func(id graph.NodeID, prefix string, last bool, depth int, onPath map[graph.NodeID]bool)
	render = func(id graph.NodeID, prefix string, last bool, depth int, onPath map[graph.NodeID]bool) {
		connector := "├─ "
		childPrefix := prefix + "│  "
		if last {
			connector = "└─ "
			childPrefix = prefix + "   "
		}
		if prefix == "" && connector != "" {
			connector = ""
			childPrefix = "   "
		}
		line := prefix + connector + g.Label(id)
		if ann := annotations(o, g, id, opts); ann != "" {
			line += "  " + ann
		}
		b.WriteString(line + "\n")
		printed[id] = true
		if opts.MaxDepth > 0 && depth >= opts.MaxDepth {
			hasChild := false
			for _, e := range g.InEdges(id) {
				if e.Label == ontology.SubclassOf {
					hasChild = true
					break
				}
			}
			if hasChild {
				b.WriteString(childPrefix + "…\n")
			}
			return
		}
		if onPath[id] {
			b.WriteString(childPrefix + "…cycle…\n")
			return
		}
		onPath[id] = true
		defer delete(onPath, id)

		var children []graph.NodeID
		for _, e := range g.InEdges(id) {
			if e.Label == ontology.SubclassOf {
				children = append(children, e.From)
			}
		}
		sortByLabel(g, children)
		if opts.ShowInstances {
			var insts []graph.NodeID
			for _, e := range g.InEdges(id) {
				if e.Label == ontology.InstanceOf {
					insts = append(insts, e.From)
				}
			}
			sortByLabel(g, insts)
			for _, inst := range insts {
				printed[inst] = true
				b.WriteString(childPrefix + "• " + g.Label(inst) + "\n")
			}
		}
		for i, c := range children {
			render(c, childPrefix, i == len(children)-1, depth+1, onPath)
		}
	}
	for i, r := range roots {
		render(r, "", i == len(roots)-1, 1, map[graph.NodeID]bool{})
	}

	// Anything not printed and not an annotation target: list it. Under a
	// depth limit, unprinted terms are truncation, not disconnection.
	if opts.MaxDepth == 0 {
		var loose []graph.NodeID
		for _, id := range g.Nodes() {
			if !printed[id] && !attrOnly[id] && !instOnly[id] {
				loose = append(loose, id)
			}
		}
		sortByLabel(g, loose)
		if len(loose) > 0 {
			b.WriteString("unconnected:\n")
			for _, id := range loose {
				b.WriteString("   " + g.Label(id) + "\n")
			}
		}
	}
	return b.String()
}

// annotations builds the [attr: ...] {rel: ...} suffix of a class line.
func annotations(o *ontology.Ontology, g *graph.Graph, id graph.NodeID, opts Options) string {
	var parts []string
	if opts.ShowAttributes {
		var attrs []string
		for _, e := range g.OutEdges(id) {
			if e.Label == ontology.AttributeOf {
				attrs = append(attrs, g.Label(e.To))
			}
		}
		sort.Strings(attrs)
		if len(attrs) > 0 {
			parts = append(parts, "[attr: "+strings.Join(attrs, ", ")+"]")
		}
	}
	if opts.ShowOther {
		var others []string
		for _, e := range g.OutEdges(id) {
			switch e.Label {
			case ontology.SubclassOf, ontology.AttributeOf, ontology.InstanceOf:
			default:
				others = append(others, e.Label+"→"+g.Label(e.To))
			}
		}
		sort.Strings(others)
		if len(others) > 0 {
			parts = append(parts, "{"+strings.Join(others, ", ")+"}")
		}
	}
	return strings.Join(parts, " ")
}

// ArticulationSummary renders an articulation the way the expert reviews
// it: the articulation tree first, then the bridges grouped per
// articulation term.
func ArticulationSummary(a *articulation.Articulation, opts Options) string {
	var b strings.Builder
	fmt.Fprintf(&b, "articulation %s between %s and %s\n", a.Ont.Name(), a.Sources[0], a.Sources[1])
	b.WriteString(Tree(a.Ont, opts))
	b.WriteString("bridges:\n")
	for _, term := range a.Ont.Terms() {
		anchors := a.SourceAnchors(term)
		if len(anchors) == 0 {
			continue
		}
		names := make([]string, len(anchors))
		for i, r := range anchors {
			names[i] = r.String()
		}
		fmt.Fprintf(&b, "   %s ⇔ %s\n", term, strings.Join(names, ", "))
	}
	funcs := false
	for _, br := range a.Bridges {
		if br.Functional() {
			if !funcs {
				b.WriteString("conversions:\n")
				funcs = true
			}
			fmt.Fprintf(&b, "   %s —%s→ %s\n", br.From, br.FuncName(), br.To)
		}
	}
	return b.String()
}

func sortByLabel(g *graph.Graph, ids []graph.NodeID) {
	sort.Slice(ids, func(i, j int) bool {
		li, lj := g.Label(ids[i]), g.Label(ids[j])
		if li != lj {
			return li < lj
		}
		return ids[i] < ids[j]
	})
}
