package view

import (
	"strings"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/ontology"
)

func TestTreeRendersHierarchy(t *testing.T) {
	out := Tree(fixtures.Carrier(), DefaultOptions())
	// Hierarchy structure: Cars indented under Transportation,
	// PassengerCar under Cars.
	idxTrans := strings.Index(out, "Transportation")
	idxCars := strings.Index(out, "Cars")
	idxPass := strings.Index(out, "PassengerCar")
	if idxTrans < 0 || idxCars < 0 || idxPass < 0 {
		t.Fatalf("tree missing classes:\n%s", out)
	}
	if !(idxTrans < idxCars) {
		t.Fatalf("root not before subclass:\n%s", out)
	}
	// Tree connectors present.
	if !strings.Contains(out, "└─") && !strings.Contains(out, "├─") {
		t.Fatalf("no tree connectors:\n%s", out)
	}
}

func TestTreeAnnotations(t *testing.T) {
	out := Tree(fixtures.Carrier(), DefaultOptions())
	if !strings.Contains(out, "[attr: Owner, Price]") {
		t.Fatalf("attribute annotation missing:\n%s", out)
	}
	if !strings.Contains(out, "• MyCar") {
		t.Fatalf("instance bullet missing:\n%s", out)
	}
	if !strings.Contains(out, "drivenBy→Driver") {
		t.Fatalf("other-relationship annotation missing:\n%s", out)
	}
}

func TestTreeOptionsDisableAnnotations(t *testing.T) {
	out := Tree(fixtures.Carrier(), Options{})
	if strings.Contains(out, "[attr:") || strings.Contains(out, "• MyCar") {
		t.Fatalf("annotations shown despite options:\n%s", out)
	}
}

func TestTreeMaxDepth(t *testing.T) {
	deep := Tree(fixtures.Carrier(), Options{})
	shallow := Tree(fixtures.Carrier(), Options{MaxDepth: 1})
	if strings.Contains(shallow, "PassengerCar") {
		t.Fatalf("MaxDepth=1 still shows depth-2 class:\n%s", shallow)
	}
	if !strings.Contains(deep, "PassengerCar") {
		t.Fatalf("unbounded tree missing depth-2 class:\n%s", deep)
	}
}

func TestTreeDeterministic(t *testing.T) {
	a := Tree(fixtures.Factory(), DefaultOptions())
	b := Tree(fixtures.Factory(), DefaultOptions())
	if a != b {
		t.Fatalf("tree rendering unstable")
	}
}

func TestTreeMultipleParentsPrintedUnderEach(t *testing.T) {
	out := Tree(fixtures.Factory(), DefaultOptions())
	// GoodsVehicle is a subclass of both Vehicle and CargoCarrier: it must
	// appear under both.
	if strings.Count(out, "GoodsVehicle") < 2 {
		t.Fatalf("diamond child not shown under both parents:\n%s", out)
	}
}

func TestTreeCycleGuard(t *testing.T) {
	o := ontology.New("cyc")
	o.MustAddTerm("A")
	o.MustAddTerm("B")
	// Build a cycle through the raw graph (Validate would reject it).
	o.MustRelate("A", ontology.SubclassOf, "B")
	o.MustRelate("B", ontology.SubclassOf, "A")
	out := Tree(o, Options{})
	if !strings.Contains(out, "…cycle…") && !strings.Contains(out, "unconnected") {
		t.Fatalf("cycle not handled:\n%s", out)
	}
}

func TestTreeUnconnectedTerms(t *testing.T) {
	o := ontology.New("loose")
	o.MustAddTerm("Island")
	o.MustAddTerm("Root")
	o.MustAddTerm("Child")
	o.MustRelate("Child", ontology.SubclassOf, "Root")
	out := Tree(o, Options{})
	// Island is a root of its own (no SubclassOf out-edge): it renders as
	// a root, not as unconnected.
	if !strings.Contains(out, "Island") {
		t.Fatalf("isolated term missing:\n%s", out)
	}
}

func TestArticulationSummary(t *testing.T) {
	res, _, _ := fixtures.GenerateTransport()
	out := ArticulationSummary(res.Art, DefaultOptions())
	for _, want := range []string{
		"articulation transport between carrier and factory",
		"bridges:",
		"Vehicle ⇔",
		"carrier.Cars",
		"conversions:",
		"PSToEuroFn",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	if ArticulationSummary(res.Art, DefaultOptions()) != out {
		t.Fatalf("summary unstable")
	}
}
