package algebra

import (
	"strings"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/ontology"
	"repro/internal/pattern"
)

func TestFilterKeepsInducedSubontology(t *testing.T) {
	carrier := fixtures.Carrier()
	out := Filter(carrier, func(term string) bool {
		return term == "Cars" || term == "Transportation" || term == "Price"
	})
	if out.NumTerms() != 3 {
		t.Fatalf("Filter terms = %v", out.Terms())
	}
	if !out.Related("Cars", ontology.SubclassOf, "Transportation") {
		t.Fatalf("Filter dropped internal edge")
	}
	if !out.Related("Cars", ontology.AttributeOf, "Price") {
		t.Fatalf("Filter dropped attribute edge")
	}
	if out.HasTerm("Trucks") {
		t.Fatalf("Filter kept excluded term")
	}
	// Original untouched.
	if !carrier.HasTerm("Trucks") {
		t.Fatalf("Filter mutated source ontology")
	}
}

func TestFilterEmptyResult(t *testing.T) {
	out := Filter(fixtures.Carrier(), func(string) bool { return false })
	if out.NumTerms() != 0 || out.NumRelationships() != 0 {
		t.Fatalf("empty filter not empty: %v", out.Terms())
	}
}

func TestFilterPattern(t *testing.T) {
	carrier := fixtures.Carrier()
	// Terms participating in the SubclassOf tree under Transportation.
	p := pattern.NewPath("", ontology.SubclassOf, "", "Transportation")
	p.Nodes[0].Var = "x"
	out, err := FilterPattern(carrier, p, pattern.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Cars", "Trucks", "Transportation"} {
		if !out.HasTerm(want) {
			t.Fatalf("FilterPattern missing %s: %v", want, out.Terms())
		}
	}
	if out.HasTerm("MyCar") {
		t.Fatalf("FilterPattern kept non-matching term")
	}
}

func TestExtractProjectsPatternImage(t *testing.T) {
	carrier := fixtures.Carrier()
	p := pattern.MustParse("carrier:?x:Driver") // any node with an edge to Driver
	out, err := Extract(carrier, p, pattern.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.HasTerm("Cars") || !out.HasTerm("Driver") {
		t.Fatalf("Extract terms = %v", out.Terms())
	}
	if !out.Related("Cars", "drivenBy", "Driver") {
		t.Fatalf("Extract lost matched edge")
	}
	// Unlike Filter, Extract must not drag along unmatched edges.
	if out.Related("Cars", ontology.SubclassOf, "Transportation") {
		t.Fatalf("Extract included unmatched edge")
	}
	if out.HasTerm("Transportation") {
		t.Fatalf("Extract included unmatched node")
	}
}

func TestExtractWithLabeledPattern(t *testing.T) {
	carrier := fixtures.Carrier()
	p := &pattern.Pattern{
		Nodes: []pattern.Node{{Var: "x"}, {Name: "Owner"}},
		Edges: []pattern.Edge{{From: 0, Label: ontology.AttributeOf, To: 1}},
	}
	out, err := Extract(carrier, p, pattern.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Cars and Trucks both have Owner attributes.
	if !out.Related("Cars", ontology.AttributeOf, "Owner") || !out.Related("Trucks", ontology.AttributeOf, "Owner") {
		t.Fatalf("Extract image wrong:\n%s", out)
	}
	if out.NumTerms() != 3 {
		t.Fatalf("Extract terms = %v", out.Terms())
	}
}

func TestExtractInvalidPattern(t *testing.T) {
	if _, err := Extract(fixtures.Carrier(), &pattern.Pattern{}, pattern.Options{}); err == nil {
		t.Fatalf("invalid pattern accepted")
	}
}

func TestQualify(t *testing.T) {
	carrier := fixtures.Carrier()
	q := Qualify(carrier)
	if !q.HasTerm("carrier.Cars") {
		t.Fatalf("Qualify terms = %v", q.Terms())
	}
	if q.NumTerms() != carrier.NumTerms() || q.NumRelationships() != carrier.NumRelationships() {
		t.Fatalf("Qualify changed cardinality")
	}
	if !q.Related("carrier.Cars", ontology.SubclassOf, "carrier.Transportation") {
		t.Fatalf("Qualify lost edge")
	}
}

func TestUnionContainsEverything(t *testing.T) {
	carrier, factory := fixtures.Carrier(), fixtures.Factory()
	res, err := Union(carrier, factory, fixtures.TransportRules(), Options{
		ArtName: fixtures.ArtName,
	})
	if err != nil {
		t.Fatal(err)
	}
	u := res.Ont
	if err := u.Validate(); err != nil {
		t.Fatalf("union invalid: %v", err)
	}
	// N = N1 ∪ N2 ∪ NA.
	wantNodes := carrier.NumTerms() + factory.NumTerms() + res.Art.Ont.NumTerms()
	if u.NumTerms() != wantNodes {
		t.Fatalf("union terms = %d, want %d", u.NumTerms(), wantNodes)
	}
	// E = E1 ∪ E2 ∪ EA ∪ BridgeEdges.
	wantEdges := carrier.NumRelationships() + factory.NumRelationships() +
		res.Art.Ont.NumRelationships() + len(res.Art.Bridges)
	if u.NumRelationships() != wantEdges {
		t.Fatalf("union edges = %d, want %d", u.NumRelationships(), wantEdges)
	}
	// Same-named terms from different sources stay distinct.
	if !u.HasTerm("carrier.Transportation") || !u.HasTerm("factory.Transportation") {
		t.Fatalf("union lost same-named source terms")
	}
	// Bridges connect the parts: the unified graph is one component.
	if comps := u.Graph().ConnectedComponents(); len(comps) != 1 {
		t.Fatalf("union has %d components, want 1", len(comps))
	}
	if u.Name() != "carrier+factory" {
		t.Fatalf("union name = %q", u.Name())
	}
}

func TestUnionCrossOntologyReachability(t *testing.T) {
	carrier, factory := fixtures.Carrier(), fixtures.Factory()
	res, err := Union(carrier, factory, fixtures.TransportRules(), Options{ArtName: fixtures.ArtName})
	if err != nil {
		t.Fatal(err)
	}
	u := res.Ont
	// carrier.Cars ⇒ transport.Vehicle ⇔ factory.Vehicle: knowledge about
	// cars in carrier integrates with vehicles in factory (§4.1).
	from, _ := u.Term("carrier.Cars")
	to, _ := u.Term("factory.Vehicle")
	if !u.Graph().PathExists(from, to, nil) {
		t.Fatalf("no path carrier.Cars -> factory.Vehicle in union")
	}
}

func TestIntersectionIsArticulationOntologyOnly(t *testing.T) {
	carrier, factory := fixtures.Carrier(), fixtures.Factory()
	inter, err := Intersection(carrier, factory, fixtures.TransportRules(), Options{
		ArtName: fixtures.ArtName,
		Gen:     fixtures.GenOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The intersection of carrier and factory is the transportation
	// ontology (§5.2).
	for _, term := range []string{"Vehicle", "Transportation", "CargoCarrierVehicle", "CarsTrucks"} {
		if !inter.HasTerm(term) {
			t.Fatalf("intersection missing %s: %v", term, inter.Terms())
		}
	}
	// No source terms and no bridge edges leak in.
	for _, term := range inter.Terms() {
		if strings.Contains(term, ".") {
			t.Fatalf("intersection contains qualified source term %s", term)
		}
	}
	for _, e := range inter.Graph().Edges() {
		if e.Label == "SIBridge" {
			t.Fatalf("intersection contains bridge edge")
		}
	}
	// Composability: the intersection is a valid ontology.
	if err := inter.Validate(); err != nil {
		t.Fatalf("intersection invalid: %v", err)
	}
}

func TestDifferenceFormalSemantics(t *testing.T) {
	carrier, factory := fixtures.Carrier(), fixtures.Factory()
	diff, err := Difference(carrier, factory, fixtures.TransportRules(), Options{
		ArtName: fixtures.ArtName,
		Gen:     fixtures.GenOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cars is determined to exist in factory (carrier.Cars => factory.Vehicle),
	// so it must leave the difference.
	if diff.HasTerm("Cars") {
		t.Fatalf("Cars still in carrier - factory")
	}
	// PassengerCar has a SubclassOf path to Cars, hence to a determined
	// node: formally it must go too.
	if diff.HasTerm("PassengerCar") || diff.HasTerm("SUV") {
		t.Fatalf("subclasses of determined nodes kept: %v", diff.Terms())
	}
	// MyCar reaches Cars via InstanceOf: it goes too.
	if diff.HasTerm("MyCar") {
		t.Fatalf("MyCar kept despite path to determined node")
	}
	// Model hangs off Trucks only... Trucks is determined as well (the
	// conjunction rule bridges transport.CargoCarrierVehicle to
	// carrier.Trucks — but that is a bridge INTO carrier, not out of it,
	// so Trucks is determined only if a forward path exists).
	// Driver/Person never map into factory structures that matter here:
	// Driver -> Person, and Person is determined (carrier.Person =>
	// factory.Person), so Driver leaves too.
	if diff.HasTerm("Driver") || diff.HasTerm("Person") {
		t.Fatalf("Person chain kept: %v", diff.Terms())
	}
	if err := diff.Validate(); err != nil {
		t.Fatalf("difference invalid: %v", err)
	}
	if diff.Name() != "carrier-factory" {
		t.Fatalf("difference name = %q", diff.Name())
	}
}

func TestDifferenceConservativeRetention(t *testing.T) {
	// The reverse difference factory - carrier must retain Vehicle: "there
	// is no way to distinguish the cars from the other vehicles in the
	// second knowledge source, [so] the articulation generator takes the
	// more conservative option of retaining all vehicles" (§5.3).
	carrier, factory := fixtures.Carrier(), fixtures.Factory()
	diff, err := Difference(factory, carrier, fixtures.TransportRules(), Options{
		ArtName: fixtures.ArtName,
		Gen:     fixtures.GenOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !diff.HasTerm("Factory") || !diff.HasTerm("Buyer") {
		t.Fatalf("factory-only terms missing from difference: %v", diff.Terms())
	}
	// factory.Vehicle IS determined (factory.Vehicle => transport.Vehicle
	// => ... no: the namesake equivalence bridges transport.Vehicle =>
	// factory.Vehicle and factory.Vehicle => transport.Vehicle, but no
	// forward path continues into carrier except via CarsTrucks, whose
	// bridges point INTO transport). Check the actual determination:
	dets := DeterminedTerms(mustArt(t), "factory", "carrier")
	for _, d := range dets {
		if d == "Factory" || d == "Buyer" || d == "Weight" {
			t.Fatalf("%s wrongly determined to exist in carrier", d)
		}
	}
}

func mustArt(t *testing.T) *articulationT {
	t.Helper()
	res, _, _ := fixtures.GenerateTransport()
	return res.Art
}

func TestDifferenceExampleSemantics(t *testing.T) {
	// Build the paper's tiny example: carrier has Car with attributes and
	// an unrelated node; factory has Vehicle; single rule Car => Vehicle.
	carrier := ontology.New("carrier")
	for _, term := range []string{"Car", "CarPrice", "SharedDepot", "Bike"} {
		carrier.MustAddTerm(term)
	}
	carrier.MustRelate("Car", ontology.AttributeOf, "CarPrice")
	carrier.MustRelate("Car", "parksAt", "SharedDepot")
	carrier.MustRelate("Bike", "parksAt", "SharedDepot")

	factory := ontology.New("factory")
	factory.MustAddTerm("Vehicle")

	set := mustRules(t, "carrier.Car => factory.Vehicle")
	diff, err := Difference(carrier, factory, set, Options{DiffMode: DiffExample})
	if err != nil {
		t.Fatal(err)
	}
	// Car deleted; CarPrice reachable only from Car: deleted; SharedDepot
	// anchored by Bike: kept.
	if diff.HasTerm("Car") {
		t.Fatalf("Car survived example-mode difference")
	}
	if diff.HasTerm("CarPrice") {
		t.Fatalf("solely-Car-anchored attribute survived: %v", diff.Terms())
	}
	if !diff.HasTerm("SharedDepot") || !diff.HasTerm("Bike") {
		t.Fatalf("independently anchored nodes deleted: %v", diff.Terms())
	}
}

func TestDifferenceEmptyRules(t *testing.T) {
	carrier, factory := fixtures.Carrier(), fixtures.Factory()
	diff, err := Difference(carrier, factory, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// With no rules nothing is determined: the difference is all of O1.
	if diff.NumTerms() != carrier.NumTerms() {
		t.Fatalf("empty-rule difference lost terms: %d vs %d", diff.NumTerms(), carrier.NumTerms())
	}
}

func TestUnionIntersectionDifferenceCompose(t *testing.T) {
	// The algebra's closure property: results can be composed further.
	carrier, factory := fixtures.Carrier(), fixtures.Factory()
	inter, err := Intersection(carrier, factory, fixtures.TransportRules(), Options{
		ArtName: fixtures.ArtName, Gen: fixtures.GenOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Articulate the intersection (as a source!) with a third ontology.
	office := ontology.New("office")
	office.MustAddTerm("Fleet")
	office.MustAddTerm("Asset")
	office.MustRelate("Fleet", ontology.SubclassOf, "Asset")

	set := mustRules(t, "transport.Vehicle => office.Fleet")
	res, err := Union(inter, office, set, Options{ArtName: "corp"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ont.HasTerm("transport.Vehicle") || !res.Ont.HasTerm("office.Fleet") || !res.Ont.HasTerm("corp.Fleet") {
		t.Fatalf("second-level union missing terms: %v", res.Ont.Terms())
	}
}

func mustRules(t testing.TB, text string) *rulesSet {
	t.Helper()
	set, err := parseRules(text)
	if err != nil {
		t.Fatal(err)
	}
	return set
}
