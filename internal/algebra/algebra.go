// Package algebra implements ONION's ontology algebra (EDBT 2000, §5):
// unary filter and extract operators (the select/project analogues) and
// the binary Union, Intersection and Difference operators defined over two
// ontologies and a set of articulation rules.
//
// Every operator returns an ontology, so results compose: the intersection
// (articulation ontology) of two sources "can be further composed with
// other ontologies", which is the paper's scalability mechanism — adding a
// source means articulating against an existing articulation, not
// restructuring anything (§4.2, §5.2).
package algebra

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ontology"
	"repro/internal/pattern"
)

// Filter is the unary select-analogue (§5): it returns a new ontology
// containing exactly the terms satisfying keep, with every relationship of
// o whose endpoints both survive (the induced subontology).
func Filter(o *ontology.Ontology, keep func(term string) bool) *ontology.Ontology {
	g := o.Graph()
	var ids []graph.NodeID
	for _, id := range g.Nodes() {
		if keep(g.Label(id)) {
			ids = append(ids, id)
		}
	}
	sub := g.InducedSubgraph(ids)
	out, err := ontology.FromGraph(sub)
	if err != nil {
		// An induced subgraph of a consistent ontology stays consistent.
		panic("algebra: filter broke consistency: " + err.Error())
	}
	copyRelations(o, out)
	return out
}

// FilterPattern is Filter with a graph pattern as the selection predicate:
// a term survives when it appears in at least one match of p.
func FilterPattern(o *ontology.Ontology, p *pattern.Pattern, opts pattern.Options) (*ontology.Ontology, error) {
	matched, err := matchedNodes(o, p, opts)
	if err != nil {
		return nil, err
	}
	return Filter(o, func(term string) bool {
		id, ok := o.Term(term)
		return ok && matched[id]
	}), nil
}

// Extract is the unary project-analogue (§5): it returns the image of the
// pattern — only the matched nodes and the images of the pattern's edges,
// not the full induced subgraph. Matching the interesting shape and
// extracting it is how the expert "carves out portions of an ontology
// required by the articulation" (§4).
func Extract(o *ontology.Ontology, p *pattern.Pattern, opts pattern.Options) (*ontology.Ontology, error) {
	g := o.Graph()
	ms, err := pattern.Find(g, p, opts)
	if err != nil {
		return nil, err
	}
	out := ontology.New(o.Name())
	copyRelations(o, out)
	for _, m := range ms {
		for _, id := range m.Nodes {
			if _, err := out.EnsureTerm(g.Label(id)); err != nil {
				return nil, err
			}
		}
		for _, pe := range p.Edges {
			from, to := g.Label(m.Nodes[pe.From]), g.Label(m.Nodes[pe.To])
			// Recover the concrete edge label: the pattern edge may be
			// unconstrained ("" matches any label).
			for _, ge := range g.OutEdges(m.Nodes[pe.From]) {
				if ge.To != m.Nodes[pe.To] {
					continue
				}
				if pe.Label == "" || edgeLabelMatches(pe.Label, ge.Label, opts) {
					if err := out.Relate(from, ge.Label, to); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return out, nil
}

func edgeLabelMatches(want, got string, opts pattern.Options) bool {
	if opts.IgnoreEdgeLabels {
		return true
	}
	if opts.EdgeEquiv != nil {
		return opts.EdgeEquiv(want, got)
	}
	return want == got
}

func matchedNodes(o *ontology.Ontology, p *pattern.Pattern, opts pattern.Options) (map[graph.NodeID]bool, error) {
	ms, err := pattern.Find(o.Graph(), p, opts)
	if err != nil {
		return nil, err
	}
	matched := make(map[graph.NodeID]bool)
	for _, m := range ms {
		for _, id := range m.Nodes {
			matched[id] = true
		}
	}
	return matched, nil
}

func copyRelations(from, to *ontology.Ontology) {
	for _, spec := range from.Relations() {
		to.DeclareRelation(spec)
	}
}

// Qualify returns a copy of o in which every term is prefixed with the
// ontology's name ("Cars" in carrier becomes "carrier.Cars"). The union
// operator works over qualified copies so that same-named terms from
// different sources — distinct concepts by the paper's consistency rule —
// stay distinct in the unified graph.
func Qualify(o *ontology.Ontology) *ontology.Ontology {
	g := o.Graph()
	out := ontology.New(o.Name())
	copyRelations(o, out)
	for _, id := range g.Nodes() {
		// Labels are unique in a consistent ontology, so EnsureTerm cannot
		// be ambiguous here.
		if _, err := out.EnsureTerm(qualified(o.Name(), g.Label(id))); err != nil {
			panic("algebra: qualify: " + err.Error())
		}
	}
	for _, e := range g.Edges() {
		if err := out.Relate(qualified(o.Name(), g.Label(e.From)), e.Label, qualified(o.Name(), g.Label(e.To))); err != nil {
			panic("algebra: qualify: " + err.Error())
		}
	}
	return out
}

func qualified(ont, term string) string {
	return ontology.MakeRef(ont, term).String()
}

// merge copies every (qualified) term and relationship of src into dst.
func merge(dst, src *ontology.Ontology) error {
	g := src.Graph()
	for _, id := range g.Nodes() {
		if _, err := dst.EnsureTerm(g.Label(id)); err != nil {
			return fmt.Errorf("algebra: merge: %w", err)
		}
	}
	for _, e := range g.Edges() {
		if err := dst.Relate(g.Label(e.From), e.Label, g.Label(e.To)); err != nil {
			return fmt.Errorf("algebra: merge: %w", err)
		}
	}
	copyRelations(src, dst)
	return nil
}
