package algebra

import (
	"fmt"

	"repro/internal/articulation"
	"repro/internal/graph"
	"repro/internal/ontology"
	"repro/internal/rules"
)

// DiffMode selects between the paper's two difference readings (§5.3),
// which coincide only under particular edge orientations; see DESIGN.md.
type DiffMode int

const (
	// DiffFormal is the paper's formal definition: keep n ∈ O1 only if n
	// is not determined to exist in O2 and no path leads from n to any
	// node determined to exist in O2.
	DiffFormal DiffMode = iota
	// DiffExample is the worked example's reading: delete the determined
	// nodes and every node reachable from them that is not anchored by a
	// path from some unaffected node.
	DiffExample
)

// Options configure the binary operators.
type Options struct {
	// ArtName names the generated articulation ontology; default
	// "articulation".
	ArtName string
	// UnionName names the unified ontology; default "o1+o2".
	UnionName string
	// Gen passes through to the articulation generator.
	Gen articulation.Options
	// DiffMode selects the difference semantics.
	DiffMode DiffMode
}

func (o Options) artName() string {
	if o.ArtName == "" {
		return "articulation"
	}
	return o.ArtName
}

// UnionResult carries the unified ontology and the articulation that
// connects its parts.
type UnionResult struct {
	// Ont is the unified ontology OU: qualified copies of both sources,
	// the articulation ontology, and the bridge edges (§5.1). It is
	// computed dynamically and never stored by ONION proper — the result
	// exists so queries and downstream composition can run against it.
	Ont *ontology.Ontology
	// Art is the articulation generated along the way.
	Art *articulation.Articulation
}

// Union is O1 ∪rules O2 (§5.1): N = N1 ∪ N2 ∪ NA, E = E1 ∪ E2 ∪ EA ∪
// BridgeEdges, with all terms qualified by their ontology of origin.
func Union(o1, o2 *ontology.Ontology, set *rules.Set, opts Options) (*UnionResult, error) {
	res, err := articulation.Generate(opts.artName(), o1, o2, set, opts.Gen)
	if err != nil {
		return nil, fmt.Errorf("algebra: union: %w", err)
	}
	return UnionWith(o1, o2, res.Art, opts)
}

// UnionWith builds the unified ontology from a pre-generated articulation.
func UnionWith(o1, o2 *ontology.Ontology, art *articulation.Articulation, opts Options) (*UnionResult, error) {
	name := opts.UnionName
	if name == "" {
		name = o1.Name() + "+" + o2.Name()
	}
	u := ontology.New(name)
	for _, src := range []*ontology.Ontology{o1, o2, art.Ont} {
		if err := merge(u, Qualify(src)); err != nil {
			return nil, err
		}
	}
	for _, b := range art.Bridges {
		if err := u.Relate(b.From.String(), b.Label, b.To.String()); err != nil {
			return nil, fmt.Errorf("algebra: union: bridge %v: %w", b, err)
		}
	}
	return &UnionResult{Ont: u, Art: art}, nil
}

// Intersection is O1 ∩rules O2 (§5.2): the articulation ontology OA alone.
// Bridges to source terms are deliberately excluded so the result is a
// self-contained ontology that composes further — "this operation is
// central to our scalable articulation concepts".
func Intersection(o1, o2 *ontology.Ontology, set *rules.Set, opts Options) (*ontology.Ontology, error) {
	res, err := articulation.Generate(opts.artName(), o1, o2, set, opts.Gen)
	if err != nil {
		return nil, fmt.Errorf("algebra: intersection: %w", err)
	}
	return res.Art.Ont.Clone(), nil
}

// Difference is O1 −rules O2 (§5.3): the terms and relationships of O1 not
// determined to exist in O2. Like the union it is computed dynamically and
// not stored. Its purpose is maintenance: changes inside the difference
// never require articulation updates.
func Difference(o1, o2 *ontology.Ontology, set *rules.Set, opts Options) (*ontology.Ontology, error) {
	res, err := articulation.Generate(opts.artName(), o1, o2, set, opts.Gen)
	if err != nil {
		return nil, fmt.Errorf("algebra: difference: %w", err)
	}
	return DifferenceWith(o1, o2, res.Art, opts)
}

// DifferenceWith computes O1 − O2 against a pre-generated articulation.
func DifferenceWith(o1, o2 *ontology.Ontology, art *articulation.Articulation, opts Options) (*ontology.Ontology, error) {
	determined := DeterminedTerms(art, o1.Name(), o2.Name())
	g := o1.Graph()

	detIDs := make([]graph.NodeID, 0, len(determined))
	detSet := make(map[graph.NodeID]bool, len(determined))
	for _, t := range determined {
		if id, ok := o1.Term(t); ok {
			detIDs = append(detIDs, id)
			detSet[id] = true
		}
	}

	var keep []graph.NodeID
	switch opts.DiffMode {
	case DiffFormal:
		// Keep n iff n not determined and no path n ⇝ determined node.
		// Equivalently: n not in the reverse-reachable set of the
		// determined nodes.
		doomed := make(map[graph.NodeID]bool)
		for _, id := range g.ReachableFromAnyReverse(detIDs) {
			doomed[id] = true
		}
		for _, id := range g.Nodes() {
			if !doomed[id] {
				keep = append(keep, id)
			}
		}
	case DiffExample:
		// Delete determined nodes plus nodes reachable from them that no
		// surviving anchor reaches. Anchors are nodes outside the forward
		// reach of the determined set; anything an anchor reaches without
		// passing through a determined node survives.
		reach := make(map[graph.NodeID]bool)
		for _, id := range g.ReachableFromAny(detIDs, nil) {
			reach[id] = true
		}
		var anchors []graph.NodeID
		for _, id := range g.Nodes() {
			if !reach[id] {
				anchors = append(anchors, id)
			}
		}
		live := make(map[graph.NodeID]bool)
		for _, id := range reachableAvoiding(g, anchors, detSet) {
			live[id] = true
		}
		for _, id := range g.Nodes() {
			if detSet[id] {
				continue
			}
			if !reach[id] || live[id] {
				keep = append(keep, id)
			}
		}
	default:
		return nil, fmt.Errorf("algebra: unknown difference mode %d", opts.DiffMode)
	}

	sub := g.InducedSubgraph(keep)
	sub.SetName(o1.Name() + "-" + o2.Name())
	out, err := ontology.FromGraph(sub)
	if err != nil {
		return nil, fmt.Errorf("algebra: difference: %w", err)
	}
	copyRelations(o1, out)
	return out, nil
}

// DeterminedTerms returns the terms of ontology fromOnt that the
// articulation determines to exist in toOnt: terms with a semantic-
// implication path through the articulation (bridges plus the
// articulation-internal SubclassOf/SI edges) ending at a toOnt term. In
// the paper's example the rule carrier.Car => factory.Vehicle determines
// Car to exist in factory, while factory.Vehicle is NOT determined to
// exist in carrier — implication is directed, so the conservative
// retention of §5.3 falls out naturally.
func DeterminedTerms(art *articulation.Articulation, fromOnt, toOnt string) []string {
	artName := art.Ont.Name()
	// Forward adjacency over refs: SIBridge bridges and articulation-
	// internal subclass/implication edges.
	adj := make(map[ontology.Ref][]ontology.Ref)
	for _, b := range art.Bridges {
		if b.Label != articulation.BridgeLabel {
			continue
		}
		adj[b.From] = append(adj[b.From], b.To)
	}
	ag := art.Ont.Graph()
	for _, e := range ag.Edges() {
		if e.Label != ontology.SubclassOf && e.Label != ontology.SI {
			continue
		}
		from := ontology.MakeRef(artName, ag.Label(e.From))
		to := ontology.MakeRef(artName, ag.Label(e.To))
		adj[from] = append(adj[from], to)
	}

	reachesTarget := func(start ontology.Ref) bool {
		seen := map[ontology.Ref]bool{start: true}
		stack := []ontology.Ref{start}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, m := range adj[n] {
				if m.Ont == toOnt {
					return true
				}
				if !seen[m] {
					seen[m] = true
					stack = append(stack, m)
				}
			}
		}
		return false
	}

	var out []string
	for _, t := range art.Covers(fromOnt) {
		if reachesTarget(ontology.MakeRef(fromOnt, t)) {
			out = append(out, t)
		}
	}
	return out
}

// reachableAvoiding returns nodes reachable from starts without entering
// any node of avoid; starts inside avoid contribute nothing.
func reachableAvoiding(g *graph.Graph, starts []graph.NodeID, avoid map[graph.NodeID]bool) []graph.NodeID {
	seen := make(map[graph.NodeID]bool)
	var stack []graph.NodeID
	for _, s := range starts {
		if !avoid[s] && !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	var out []graph.NodeID
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, n)
		for _, e := range g.OutEdges(n) {
			if !avoid[e.To] && !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return out
}
