package algebra

import (
	"testing"
	"testing/quick"

	"repro/internal/articulation"
	"repro/internal/ontology"
	"repro/internal/rules"
	"repro/internal/workload"
)

// pairFor builds a deterministic overlapping pair and rule set for a
// property-check seed.
func pairFor(seed int64, classes int, overlap float64) (*ontology.Ontology, *ontology.Ontology, *rules.Set) {
	o1, o2, truth := workload.GeneratePair(workload.PairSpec{
		Spec:         workload.Spec{Name: "p1", Classes: classes, AttrsPerClass: 0.3, Seed: seed},
		Overlap:      overlap,
		ExtraClasses: classes / 4,
	})
	set := rules.NewSet()
	for l, r := range truth {
		set.Add(rules.Implication(ontology.MakeRef(o1.Name(), l), ontology.MakeRef(o2.Name(), r)))
	}
	return o1, o2, set
}

// Property: the union's cardinalities are exactly the paper's definition
// N1 ∪ N2 ∪ NA and E1 ∪ E2 ∪ EA ∪ BridgeEdges (qualification makes the
// unions disjoint).
func TestQuickUnionCardinality(t *testing.T) {
	f := func(seed int64, c8 uint8, ov8 uint8) bool {
		classes := int(c8)%40 + 5
		overlap := float64(ov8%90+5) / 100
		o1, o2, set := pairFor(seed, classes, overlap)
		res, err := Union(o1, o2, set, Options{Gen: articulation.Options{Lenient: true}})
		if err != nil {
			return false
		}
		wantN := o1.NumTerms() + o2.NumTerms() + res.Art.Ont.NumTerms()
		wantE := o1.NumRelationships() + o2.NumRelationships() +
			res.Art.Ont.NumRelationships() + len(res.Art.Bridges)
		return res.Ont.NumTerms() == wantN && res.Ont.NumRelationships() == wantE &&
			res.Ont.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the difference is always a subontology of O1 (terms and
// relationships), in both difference modes.
func TestQuickDifferenceIsSubontology(t *testing.T) {
	f := func(seed int64, c8 uint8, mode8 uint8) bool {
		classes := int(c8)%40 + 5
		mode := DiffFormal
		if mode8%2 == 1 {
			mode = DiffExample
		}
		o1, o2, set := pairFor(seed, classes, 0.4)
		diff, err := Difference(o1, o2, set, Options{
			Gen: articulation.Options{Lenient: true}, DiffMode: mode,
		})
		if err != nil {
			return false
		}
		for _, term := range diff.Terms() {
			if !o1.HasTerm(term) {
				return false
			}
		}
		g := diff.Graph()
		for _, e := range g.Edges() {
			if !o1.Related(g.Label(e.From), e.Label, g.Label(e.To)) {
				return false
			}
		}
		return diff.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: with an empty rule set the difference is the identity and
// the intersection is empty.
func TestQuickEmptyRulesIdentityLaws(t *testing.T) {
	f := func(seed int64, c8 uint8) bool {
		classes := int(c8)%40 + 5
		o1, o2, _ := pairFor(seed, classes, 0.4)
		diff, err := Difference(o1, o2, nil, Options{})
		if err != nil {
			return false
		}
		inter, err := Intersection(o1, o2, nil, Options{})
		if err != nil {
			return false
		}
		return diff.NumTerms() == o1.NumTerms() &&
			diff.NumRelationships() == o1.NumRelationships() &&
			inter.NumTerms() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: determined terms never survive the formal difference, and the
// difference plus the determined set covers no more than O1.
func TestQuickDeterminedTermsEliminated(t *testing.T) {
	f := func(seed int64, c8 uint8) bool {
		classes := int(c8)%30 + 5
		o1, o2, set := pairFor(seed, classes, 0.5)
		res, err := articulation.Generate("artp", o1, o2, set, articulation.Options{Lenient: true})
		if err != nil {
			return false
		}
		diff, err := DifferenceWith(o1, o2, res.Art, Options{})
		if err != nil {
			return false
		}
		for _, d := range DeterminedTerms(res.Art, o1.Name(), o2.Name()) {
			if diff.HasTerm(d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: Filter with a tautological predicate is the identity; Filter
// result is always consistent.
func TestQuickFilterIdentityAndConsistency(t *testing.T) {
	f := func(seed int64, c8 uint8, keepMod uint8) bool {
		classes := int(c8)%40 + 5
		o := workload.Generate(workload.Spec{Name: "f", Classes: classes, AttrsPerClass: 0.5, Seed: seed})
		all := Filter(o, func(string) bool { return true })
		if all.NumTerms() != o.NumTerms() || all.NumRelationships() != o.NumRelationships() {
			return false
		}
		mod := int(keepMod)%3 + 2
		i := 0
		some := Filter(o, func(string) bool { i++; return i%mod == 0 })
		return some.Validate() == nil && some.NumTerms() <= o.NumTerms()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: union composes — the union result can itself be articulated
// with a third ontology without violating consistency.
func TestQuickUnionComposes(t *testing.T) {
	f := func(seed int64, c8 uint8) bool {
		classes := int(c8)%20 + 5
		o1, o2, set := pairFor(seed, classes, 0.4)
		inter, err := Intersection(o1, o2, set, Options{ArtName: "mid", Gen: articulation.Options{Lenient: true}})
		if err != nil {
			return false
		}
		third := workload.Generate(workload.Spec{Name: "third", Classes: 10, Seed: seed ^ 0xabc})
		set2 := rules.NewSet()
		if len(inter.Terms()) > 0 && len(third.Terms()) > 0 {
			set2.Add(rules.Implication(
				ontology.MakeRef("mid", inter.Terms()[0]),
				ontology.MakeRef("third", third.Terms()[0]),
			))
		}
		res, err := Union(inter, third, set2, Options{ArtName: "top", Gen: articulation.Options{Lenient: true}})
		if err != nil {
			return false
		}
		return res.Ont.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
