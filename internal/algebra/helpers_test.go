package algebra

import (
	"repro/internal/articulation"
	"repro/internal/rules"
)

// Aliases keeping the main test file free of repeated qualified names.
type (
	articulationT = articulation.Articulation
	rulesSet      = rules.Set
)

func parseRules(text string) (*rules.Set, error) {
	return rules.ParseSetString(text)
}
