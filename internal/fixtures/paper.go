// Package fixtures reconstructs the running example of the paper (EDBT
// 2000, Fig. 2): the carrier and factory source ontologies, the
// articulation rule set that produces the transport articulation ontology,
// and the currency-conversion functions of §4.1's functional rules.
//
// Tests, benchmarks (experiment E1) and the examples/transportation
// program all build on these fixtures, so the reconstruction lives in one
// place.
package fixtures

import (
	"repro/internal/articulation"
	"repro/internal/ontology"
	"repro/internal/rules"
)

// ArtName is the articulation ontology's name in the running example.
const ArtName = "transport"

// Carrier builds the carrier source ontology of Fig. 2: a transport
// operator's view with Cars/Trucks hierarchies, an instance MyCar, and
// attributes priced in pounds sterling.
func Carrier() *ontology.Ontology {
	o := ontology.New("carrier")
	for _, t := range []string{
		"Transportation", "Cars", "Trucks", "PassengerCar", "SUV",
		"MyCar", "Person", "Driver", "Owner", "Model", "Price", "2000",
	} {
		o.MustAddTerm(t)
	}
	rel := [][3]string{
		{"Cars", ontology.SubclassOf, "Transportation"},
		{"Trucks", ontology.SubclassOf, "Transportation"},
		{"PassengerCar", ontology.SubclassOf, "Cars"},
		{"SUV", ontology.SubclassOf, "Cars"},
		{"Driver", ontology.SubclassOf, "Person"},
		{"MyCar", ontology.InstanceOf, "PassengerCar"},
		{"Cars", ontology.AttributeOf, "Price"},
		{"Cars", ontology.AttributeOf, "Owner"},
		{"Trucks", ontology.AttributeOf, "Model"},
		{"Trucks", ontology.AttributeOf, "Owner"},
		{"Cars", "drivenBy", "Driver"},
		{"MyCar", "Price", "2000"},
	}
	for _, r := range rel {
		o.MustRelate(r[0], r[1], r[2])
	}
	return o
}

// Factory builds the factory source ontology of Fig. 2: a manufacturer's
// view with Vehicle/CargoCarrier hierarchies, buyers, and prices in Dutch
// guilders.
func Factory() *ontology.Ontology {
	o := ontology.New("factory")
	for _, t := range []string{
		"Transportation", "Vehicle", "CargoCarrier", "GoodsVehicle", "Truck",
		"Factory", "Person", "Buyer", "Price", "Weight",
	} {
		o.MustAddTerm(t)
	}
	rel := [][3]string{
		{"Vehicle", ontology.SubclassOf, "Transportation"},
		{"CargoCarrier", ontology.SubclassOf, "Transportation"},
		{"GoodsVehicle", ontology.SubclassOf, "Vehicle"},
		{"GoodsVehicle", ontology.SubclassOf, "CargoCarrier"},
		{"Truck", ontology.SubclassOf, "GoodsVehicle"},
		{"Buyer", ontology.SubclassOf, "Person"},
		{"Vehicle", ontology.AttributeOf, "Price"},
		{"Vehicle", ontology.AttributeOf, "Weight"},
		{"Factory", "sells", "Vehicle"},
		{"Buyer", "buysFrom", "Factory"},
	}
	for _, r := range rel {
		o.MustRelate(r[0], r[1], r[2])
	}
	return o
}

// TransportRuleText is the articulation rule set of the running example in
// parseable rule syntax. It exercises every rule form of §4.1: simple
// implication (with the namesake-equivalence translation), a cascaded
// implication through transport.PassengerCar, a conjunction (the
// CargoCarrierVehicle example), a disjunction (the CarsTrucks example),
// intra-articulation structuring (Owner => Person), and the two-way
// currency conversion functions.
const TransportRuleText = `
# Fig. 2 articulation rules: carrier x factory -> transport
carrier.Transportation => factory.Transportation
carrier.Cars => factory.Vehicle
carrier.PassengerCar => transport.PassengerCar => factory.Vehicle
(factory.CargoCarrier ^ factory.Vehicle) => carrier.Trucks
factory.Vehicle => (carrier.Cars v carrier.Trucks)
carrier.Person => factory.Person
carrier.Owner => transport.Owner
transport.Owner => transport.Person
carrier.Person => transport.Person
PSToEuroFn() : carrier.Price => transport.Price
EuroToPSFn() : transport.Price => carrier.Price
DGToEuroFn() : factory.Price => transport.Price
EuroToDGFn() : transport.Price => factory.Price
`

// TransportRules parses TransportRuleText.
func TransportRules() *rules.Set {
	set, err := rules.ParseSetString(TransportRuleText)
	if err != nil {
		panic("fixtures: parsing transport rules: " + err.Error())
	}
	return set
}

// Currency conversion rates of the running example (fixed early-2000
// values; the euro conversion rate for the guilder was fixed by treaty).
const (
	PoundPerEuro   = 0.625   // 1 euro = 0.625 GBP
	GuilderPerEuro = 2.20371 // 1 euro = 2.20371 NLG (fixed)
)

// TransportFuncs registers the four conversion functions used by the
// functional rules: pounds sterling and Dutch guilders to and from euros.
func TransportFuncs() *articulation.FuncRegistry {
	reg := articulation.NewFuncRegistry()
	mustRegister(reg.RegisterLinear("PSToEuroFn", "EuroToPSFn", 1/PoundPerEuro, 0))
	mustRegister(reg.RegisterLinear("DGToEuroFn", "EuroToDGFn", 1/GuilderPerEuro, 0))
	return reg
}

func mustRegister(err error) {
	if err != nil {
		panic("fixtures: registering conversion functions: " + err.Error())
	}
}

// GenOptions returns the generation options of the running example:
// conversion functions registered and structure inheritance on.
func GenOptions() articulation.Options {
	return articulation.Options{
		Funcs:            TransportFuncs(),
		InheritStructure: true,
	}
}

// GenerateTransport builds the full Fig. 2 articulation: carrier and
// factory articulated into transport, with structure inheritance on.
func GenerateTransport() (*articulation.Result, *ontology.Ontology, *ontology.Ontology) {
	carrier, factory := Carrier(), Factory()
	res, err := articulation.Generate(ArtName, carrier, factory, TransportRules(), GenOptions())
	if err != nil {
		panic("fixtures: generating transport articulation: " + err.Error())
	}
	return res, carrier, factory
}
