package fixtures

import "repro/internal/kb"

// CarrierKB builds instance data beneath the carrier ontology: vehicles
// with prices in pounds sterling (the metric space the functional rules
// normalise away from).
func CarrierKB() *kb.Store {
	s := kb.New("carrier")
	s.MustAdd("MyCar", "InstanceOf", kb.Term("PassengerCar"))
	s.MustAdd("MyCar", "Price", kb.Number(2000))
	s.MustAdd("MyCar", "Owner", kb.String("Alice"))
	s.MustAdd("MyCar", "Model", kb.String("T"))
	s.MustAdd("Suv9", "InstanceOf", kb.Term("SUV"))
	s.MustAdd("Suv9", "Price", kb.Number(5000))
	s.MustAdd("Suv9", "Owner", kb.String("Bob"))
	s.MustAdd("Rig1", "InstanceOf", kb.Term("Trucks"))
	s.MustAdd("Rig1", "Price", kb.Number(12500))
	s.MustAdd("Rig1", "Model", kb.String("Heavy8"))
	return s
}

// FactoryKB builds instance data beneath the factory ontology: vehicles
// with prices in Dutch guilders.
func FactoryKB() *kb.Store {
	s := kb.New("factory")
	s.MustAdd("Truck77", "InstanceOf", kb.Term("Truck"))
	s.MustAdd("Truck77", "Price", kb.Number(44074.2)) // 20_000 EUR
	s.MustAdd("Truck77", "Weight", kb.Number(3500))
	s.MustAdd("Wagon3", "InstanceOf", kb.Term("GoodsVehicle"))
	s.MustAdd("Wagon3", "Price", kb.Number(22037.1)) // 10_000 EUR
	s.MustAdd("BuyerCo", "InstanceOf", kb.Term("Buyer"))
	s.MustAdd("BuyerCo", "buysFrom", kb.Term("Factory"))
	return s
}
