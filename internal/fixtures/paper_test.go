package fixtures

import (
	"testing"

	"repro/internal/articulation"
	"repro/internal/ontology"
)

func ref(s string) ontology.Ref { return ontology.MustParseRef(s) }

// TestFigure2 regenerates the paper's Fig. 2 articulation and checks every
// structure the paper describes (experiment E1).
func TestFigure2(t *testing.T) {
	res, carrier, factory := GenerateTransport()
	art := res.Art

	if err := art.Validate(ontology.MapResolver{"carrier": carrier, "factory": factory}); err != nil {
		t.Fatalf("articulation invalid: %v", err)
	}
	if len(res.Skipped) != 0 {
		t.Fatalf("rules skipped: %v", res.Skipped)
	}
	if len(res.MissingFuncs) != 0 {
		t.Fatalf("missing conversion functions: %v", res.MissingFuncs)
	}

	// The articulation ontology holds the semantically shared terms.
	for _, term := range []string{
		"Transportation", "Vehicle", "PassengerCar",
		"CargoCarrierVehicle", "CarsTrucks", "Person", "Owner", "Price",
	} {
		if !art.Ont.HasTerm(term) {
			t.Errorf("articulation missing term %s; has %v", term, art.Ont.Terms())
		}
	}

	// Simple rule carrier.Cars => factory.Vehicle: the three-edge
	// translation of §4.1.
	for _, b := range [][3]string{
		{"carrier.Cars", articulation.BridgeLabel, "transport.Vehicle"},
		{"factory.Vehicle", articulation.BridgeLabel, "transport.Vehicle"},
		{"transport.Vehicle", articulation.BridgeLabel, "factory.Vehicle"},
	} {
		if !art.HasBridge(ref(b[0]), b[1], ref(b[2])) {
			t.Errorf("missing bridge %v", b)
		}
	}

	// Cascaded rule through transport.PassengerCar.
	if !art.HasBridge(ref("carrier.PassengerCar"), articulation.BridgeLabel, ref("transport.PassengerCar")) ||
		!art.HasBridge(ref("transport.PassengerCar"), articulation.BridgeLabel, ref("factory.Vehicle")) {
		t.Errorf("cascaded rule bridges missing")
	}

	// Conjunction: CargoCarrierVehicle subclass of conjuncts and RHS, and
	// the common subclasses GoodsVehicle/Truck folded in.
	ccv := ref("transport.CargoCarrierVehicle")
	for _, to := range []string{"factory.CargoCarrier", "factory.Vehicle", "carrier.Trucks"} {
		if !art.HasBridge(ccv, articulation.BridgeLabel, ref(to)) {
			t.Errorf("CargoCarrierVehicle missing bridge to %s", to)
		}
	}
	for _, from := range []string{"factory.GoodsVehicle", "factory.Truck"} {
		if !art.HasBridge(ref(from), articulation.BridgeLabel, ccv) {
			t.Errorf("common subclass %s not folded into CargoCarrierVehicle", from)
		}
	}

	// Disjunction: CarsTrucks with Cars, Trucks and Vehicle beneath it.
	ct := ref("transport.CarsTrucks")
	for _, from := range []string{"carrier.Cars", "carrier.Trucks", "factory.Vehicle"} {
		if !art.HasBridge(ref(from), articulation.BridgeLabel, ct) {
			t.Errorf("CarsTrucks missing member %s", from)
		}
	}

	// Intra-articulation rule: Owner SubclassOf Person inside transport.
	if !art.Ont.Related("Owner", ontology.SubclassOf, "Person") {
		t.Errorf("transport.Owner => transport.Person edge missing")
	}

	// Functional rules: all four currency edges present and invertible.
	for _, fb := range [][3]string{
		{"carrier.Price", "PSToEuroFn()", "transport.Price"},
		{"transport.Price", "EuroToPSFn()", "carrier.Price"},
		{"factory.Price", "DGToEuroFn()", "transport.Price"},
		{"transport.Price", "EuroToDGFn()", "factory.Price"},
	} {
		if !art.HasBridge(ref(fb[0]), fb[1], ref(fb[2])) {
			t.Errorf("missing functional bridge %v", fb)
		}
	}
	// MyCar's price of 2000 pounds sterling converts to euros and back.
	euros, err := art.Funcs.Apply("PSToEuroFn", 2000)
	if err != nil {
		t.Fatal(err)
	}
	back, err := art.Funcs.Apply("EuroToPSFn", euros)
	if err != nil {
		t.Fatal(err)
	}
	if diff := back - 2000; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("currency round trip = %v, want 2000", back)
	}
	if euros <= 2000 {
		t.Errorf("2000 GBP should exceed 2000 EUR at the fixed rate, got %v", euros)
	}

	// Structure inheritance (§4.2): Vehicle under Transportation inside
	// the articulation, inherited from the sources.
	if !art.Ont.IsA("Vehicle", "Transportation") {
		t.Errorf("inherited structure missing Vehicle -> Transportation:\n%s", art.Ont)
	}
	if !art.Ont.IsA("PassengerCar", "Vehicle") {
		t.Errorf("inherited structure missing PassengerCar -> Vehicle:\n%s", art.Ont)
	}

	// The articulation must stay small relative to the sources — that is
	// the scalability point of keeping sources independent.
	if art.Ont.NumTerms() >= carrier.NumTerms()+factory.NumTerms() {
		t.Errorf("articulation (%d terms) not smaller than combined sources (%d)",
			art.Ont.NumTerms(), carrier.NumTerms()+factory.NumTerms())
	}
}

func TestFixtureOntologiesValid(t *testing.T) {
	if err := Carrier().Validate(); err != nil {
		t.Fatalf("carrier invalid: %v", err)
	}
	if err := Factory().Validate(); err != nil {
		t.Fatalf("factory invalid: %v", err)
	}
	if TransportRules().Len() < 10 {
		t.Fatalf("rule set unexpectedly small: %d", TransportRules().Len())
	}
}

func TestFixtureDeterminism(t *testing.T) {
	r1, _, _ := GenerateTransport()
	r2, _, _ := GenerateTransport()
	if r1.Art.String() != r2.Art.String() {
		t.Fatalf("articulation generation not deterministic")
	}
}
