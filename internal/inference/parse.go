package inference

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseClause parses one clause in datalog-style syntax over binary atoms:
//
//	SubclassOf(?x, ?z) :- SubclassOf(?x, ?y), SubclassOf(?y, ?z)
//	SIBridge(Car, Vehicle)
//
// Variables start with '?'; everything else is a constant. Predicates and
// constants may contain any characters except whitespace and the
// punctuation "(),".
func ParseClause(s string) (Clause, error) {
	p := clauseParser{in: s}
	c, err := p.parse()
	if err != nil {
		return Clause{}, err
	}
	if err := c.Validate(); err != nil {
		return Clause{}, err
	}
	return c, nil
}

// MustParseClause is ParseClause for static construction code; it panics
// on error.
func MustParseClause(s string) Clause {
	c, err := ParseClause(s)
	if err != nil {
		panic(err)
	}
	return c
}

// ParseProgram reads a clause set: one clause per line, '%' or '#' starting
// a comment, blank lines ignored, optional trailing '.'.
func ParseProgram(r io.Reader) ([]Clause, error) {
	var cs []Clause
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		for _, marker := range []string{"%", "#"} {
			if i := strings.Index(text, marker); i >= 0 {
				text = text[:i]
			}
		}
		text = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(text), "."))
		if text == "" {
			continue
		}
		c, err := ParseClause(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		cs = append(cs, c)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("inference: reading program: %w", err)
	}
	return cs, nil
}

// ParseProgramString is ParseProgram over a string.
func ParseProgramString(s string) ([]Clause, error) {
	return ParseProgram(strings.NewReader(s))
}

type clauseParser struct {
	in  string
	pos int
}

func (p *clauseParser) parse() (Clause, error) {
	var c Clause
	head, err := p.parseAtom()
	if err != nil {
		return c, err
	}
	c.Head = head
	p.skipSpace()
	if p.pos >= len(p.in) {
		return c, nil // fact
	}
	if !strings.HasPrefix(p.in[p.pos:], ":-") {
		return c, p.errf("expected ':-' or end of clause")
	}
	p.pos += 2
	for {
		a, err := p.parseAtom()
		if err != nil {
			return c, err
		}
		c.Body = append(c.Body, a)
		p.skipSpace()
		if p.pos < len(p.in) && p.in[p.pos] == ',' {
			p.pos++
			continue
		}
		break
	}
	p.skipSpace()
	if p.pos < len(p.in) {
		return c, p.errf("trailing input")
	}
	return c, nil
}

func (p *clauseParser) parseAtom() (Atom, error) {
	var a Atom
	pred, err := p.parseName("predicate")
	if err != nil {
		return a, err
	}
	a.Pred = pred
	if err := p.consume('('); err != nil {
		return a, err
	}
	t0, err := p.parseTerm()
	if err != nil {
		return a, err
	}
	if err := p.consume(','); err != nil {
		return a, err
	}
	t1, err := p.parseTerm()
	if err != nil {
		return a, err
	}
	if err := p.consume(')'); err != nil {
		return a, err
	}
	a.Args = [2]Term{t0, t1}
	return a, nil
}

func (p *clauseParser) parseTerm() (Term, error) {
	p.skipSpace()
	if p.pos < len(p.in) && p.in[p.pos] == '?' {
		p.pos++
		name, err := p.parseName("variable name")
		if err != nil {
			return Term{}, err
		}
		return V(name), nil
	}
	name, err := p.parseName("constant")
	if err != nil {
		return Term{}, err
	}
	return C(name), nil
}

func (p *clauseParser) parseName(what string) (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c == ' ' || c == '\t' || c == '(' || c == ')' || c == ',' || c == '?' {
			break
		}
		if c == ':' && p.pos+1 < len(p.in) && p.in[p.pos+1] == '-' {
			break
		}
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected %s", what)
	}
	return p.in[start:p.pos], nil
}

func (p *clauseParser) consume(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.in) || p.in[p.pos] != c {
		return p.errf("expected %q", string(c))
	}
	p.pos++
	return nil
}

func (p *clauseParser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *clauseParser) errf(format string, args ...any) error {
	return fmt.Errorf("inference: %s at offset %d in %q", fmt.Sprintf(format, args...), p.pos, p.in)
}
