// Package inference implements ONION's pluggable logical inference engine
// (EDBT 2000, §2.1, §2.4, §4.1).
//
// The paper separates the inference engine from the ontology representation
// so that engines of different power can be plugged in, and argues that
// "since inference engines for full first-order systems tend not to scale
// up ... we will use simple Horn Clauses to represent articulation rules"
// so that "a much lighter (and faster) inference engine" can be used.
//
// This package provides exactly that Horn fragment: facts are binary atoms
// pred(subject, object) — precisely the labeled edges of the graph model —
// and rules are definite Horn clauses over binary atoms, e.g.
//
//	SubclassOf(?x,?z) :- SubclassOf(?x,?y), SubclassOf(?y,?z)
//
// Two evaluation strategies are available: Run (semi-naive, delta-driven —
// the "lighter and faster" engine) and RunNaive (recompute-everything
// naive iteration, standing in for a heavyweight engine in the scaling
// comparison of experiment E9). Both reach the same fixpoint.
//
// Derived facts carry provenance: which clause fired and which body facts
// supported it, so the articulation engine can explain suggested bridges
// and "detect errors in the articulation rules" (§1).
package inference

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/ontology"
)

// Term is one argument of an atom: a variable (Var non-empty) or a
// constant.
type Term struct {
	Var   string
	Const string
}

// V builds a variable term.
func V(name string) Term { return Term{Var: name} }

// C builds a constant term.
func C(value string) Term { return Term{Const: value} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// String renders the term in clause syntax.
func (t Term) String() string {
	if t.IsVar() {
		return "?" + t.Var
	}
	return t.Const
}

// Atom is a binary atom pred(arg0, arg1).
type Atom struct {
	Pred string
	Args [2]Term
}

// A builds an atom.
func A(pred string, s, o Term) Atom { return Atom{Pred: pred, Args: [2]Term{s, o}} }

// String renders the atom in clause syntax.
func (a Atom) String() string {
	return fmt.Sprintf("%s(%s, %s)", a.Pred, a.Args[0], a.Args[1])
}

// Clause is a definite Horn clause Head :- Body. An empty body makes the
// clause a fact (its head must then be ground).
type Clause struct {
	Head Atom
	Body []Atom
}

// String renders the clause in parseable syntax.
func (c Clause) String() string {
	if len(c.Body) == 0 {
		return c.Head.String()
	}
	parts := make([]string, len(c.Body))
	for i, b := range c.Body {
		parts[i] = b.String()
	}
	return c.Head.String() + " :- " + strings.Join(parts, ", ")
}

// Validate enforces range restriction (every head variable appears in the
// body) and groundness of facts, the conditions under which bottom-up
// evaluation terminates with finite results.
func (c Clause) Validate() error {
	bodyVars := make(map[string]bool)
	for _, b := range c.Body {
		if b.Pred == "" {
			return fmt.Errorf("inference: clause %q: empty predicate in body", c)
		}
		for _, t := range b.Args {
			if t.IsVar() {
				bodyVars[t.Var] = true
			}
		}
	}
	if c.Head.Pred == "" {
		return fmt.Errorf("inference: clause %q: empty head predicate", c)
	}
	for _, t := range c.Head.Args {
		if t.IsVar() && !bodyVars[t.Var] {
			return fmt.Errorf("inference: clause %q: head variable ?%s not bound in body", c, t.Var)
		}
	}
	return nil
}

// Fact is a ground binary atom.
type Fact struct {
	Pred string
	Subj string
	Obj  string
}

// String renders the fact in clause syntax.
func (f Fact) String() string { return fmt.Sprintf("%s(%s, %s)", f.Pred, f.Subj, f.Obj) }

// Derivation explains one derived fact: the clause that produced it and
// the body facts that matched.
type Derivation struct {
	Clause int // index into the engine's clause list
	Body   []Fact
}

// Stats reports work done by one evaluation run.
type Stats struct {
	// Iterations is the number of fixpoint rounds.
	Iterations int
	// Derived is the number of new facts produced.
	Derived int
	// JoinsConsidered counts candidate body matches examined — the
	// engine-effort metric compared across strategies in experiment E9.
	JoinsConsidered int
}

// Engine evaluates Horn clauses over a fact store.
type Engine struct {
	clauses []Clause
	facts   map[Fact]struct{}
	base    map[Fact]struct{} // facts present before any run
	byPred  map[string][]Fact
	bySubj  map[string][]Fact // key pred + "\x00" + subj
	byObj   map[string][]Fact // key pred + "\x00" + obj
	prov    map[Fact]Derivation
	joins   int
}

// New builds an engine with the given clauses. Invalid clauses are
// rejected.
func New(clauses ...Clause) (*Engine, error) {
	e := &Engine{
		facts:  make(map[Fact]struct{}),
		base:   make(map[Fact]struct{}),
		byPred: make(map[string][]Fact),
		bySubj: make(map[string][]Fact),
		byObj:  make(map[string][]Fact),
		prov:   make(map[Fact]Derivation),
	}
	for _, c := range clauses {
		if err := e.AddClause(c); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// AddClause validates and installs a clause; ground facts (empty body)
// enter the fact store immediately.
func (e *Engine) AddClause(c Clause) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if len(c.Body) == 0 {
		for _, t := range c.Head.Args {
			if t.IsVar() {
				return fmt.Errorf("inference: fact %q is not ground", c)
			}
		}
		e.AddFact(Fact{Pred: c.Head.Pred, Subj: c.Head.Args[0].Const, Obj: c.Head.Args[1].Const})
		return nil
	}
	e.clauses = append(e.clauses, c)
	return nil
}

// Clauses returns the installed clauses (facts excluded).
func (e *Engine) Clauses() []Clause { return append([]Clause(nil), e.clauses...) }

// AddFact inserts a base fact (idempotent).
func (e *Engine) AddFact(f Fact) {
	if _, ok := e.facts[f]; ok {
		return
	}
	e.insert(f)
	e.base[f] = struct{}{}
}

func (e *Engine) insert(f Fact) {
	e.facts[f] = struct{}{}
	e.byPred[f.Pred] = append(e.byPred[f.Pred], f)
	e.bySubj[f.Pred+"\x00"+f.Subj] = append(e.bySubj[f.Pred+"\x00"+f.Subj], f)
	e.byObj[f.Pred+"\x00"+f.Obj] = append(e.byObj[f.Pred+"\x00"+f.Obj], f)
}

// AddGraph loads every edge of g as a base fact pred(subjLabel, objLabel).
func (e *Engine) AddGraph(g *graph.Graph) {
	for _, edge := range g.Edges() {
		e.AddFact(Fact{Pred: edge.Label, Subj: g.Label(edge.From), Obj: g.Label(edge.To)})
	}
}

// Has reports whether the fact is currently known (base or derived).
func (e *Engine) Has(f Fact) bool {
	_, ok := e.facts[f]
	return ok
}

// NumFacts returns the number of known facts.
func (e *Engine) NumFacts() int { return len(e.facts) }

// Facts returns all known facts, sorted.
func (e *Engine) Facts() []Fact {
	out := make([]Fact, 0, len(e.facts))
	for f := range e.facts {
		out = append(out, f)
	}
	sortFacts(out)
	return out
}

// Derived returns facts produced by inference (not in the base set),
// sorted.
func (e *Engine) Derived() []Fact {
	var out []Fact
	for f := range e.facts {
		if _, isBase := e.base[f]; !isBase {
			out = append(out, f)
		}
	}
	sortFacts(out)
	return out
}

// Explain returns the derivation of a derived fact. Base facts and unknown
// facts report ok=false.
func (e *Engine) Explain(f Fact) (Derivation, bool) {
	d, ok := e.prov[f]
	return d, ok
}

// ExplainDeep returns the full support tree of a fact flattened into a
// deterministic list of (fact, derivation) steps, base facts omitted.
func (e *Engine) ExplainDeep(f Fact) []Fact {
	seen := make(map[Fact]bool)
	var order []Fact
	var walk func(Fact)
	walk = func(g Fact) {
		if seen[g] {
			return
		}
		seen[g] = true
		if d, ok := e.prov[g]; ok {
			for _, b := range d.Body {
				walk(b)
			}
			order = append(order, g)
		}
	}
	walk(f)
	return order
}

// Run evaluates to fixpoint with the semi-naive (delta-driven) strategy —
// the paper's "much lighter (and faster) inference engine". Each round
// only considers joins in which at least one body atom matches a fact
// derived in the previous round: for body position i the combination is
// old facts before i, a delta fact at i, and any fact after i (the
// standard semi-naive decomposition, which enumerates each new join
// exactly once).
func (e *Engine) Run() Stats {
	e.joins = 0
	stats := Stats{}
	delta := e.Facts() // first round: everything is new
	for len(delta) > 0 {
		stats.Iterations++
		dIdx := newDeltaIndex(delta)
		var next []Fact
		for ci, c := range e.clauses {
			for i := range c.Body {
				e.joinSemiNaive(c, ci, i, dIdx, func(f Fact, d Derivation) {
					if _, known := e.facts[f]; !known {
						e.insert(f)
						e.prov[f] = d
						next = append(next, f)
					}
				})
			}
		}
		stats.Derived += len(next)
		delta = next
	}
	stats.JoinsConsidered = e.joins
	return stats
}

// RunNaive evaluates to fixpoint recomputing every clause against the full
// fact store each round — the heavyweight baseline for experiment E9.
func (e *Engine) RunNaive() Stats {
	e.joins = 0
	stats := Stats{}
	for {
		stats.Iterations++
		var next []Fact
		for ci, c := range e.clauses {
			e.joinAll(c, ci, func(f Fact, d Derivation) {
				if _, known := e.facts[f]; !known {
					e.insert(f)
					e.prov[f] = d
					next = append(next, f)
				}
			})
		}
		if len(next) == 0 {
			break
		}
		stats.Derived += len(next)
	}
	stats.JoinsConsidered = e.joins
	return stats
}

// deltaIndex indexes the facts derived in the previous round.
type deltaIndex struct {
	set    map[Fact]struct{}
	byPred map[string][]Fact
}

func newDeltaIndex(delta []Fact) *deltaIndex {
	d := &deltaIndex{
		set:    make(map[Fact]struct{}, len(delta)),
		byPred: make(map[string][]Fact),
	}
	for _, f := range delta {
		d.set[f] = struct{}{}
		d.byPred[f.Pred] = append(d.byPred[f.Pred], f)
	}
	return d
}

// joinAll enumerates every match of c's body against the full fact store.
func (e *Engine) joinAll(c Clause, clauseIdx int, emit func(Fact, Derivation)) {
	e.join(c, clauseIdx, nil, -1, emit)
}

// joinSemiNaive enumerates matches where body atom deltaPos comes from the
// delta, positions before it from old facts, positions after it from all
// facts. The delta atom is evaluated first so its (small) extent drives
// the join.
func (e *Engine) joinSemiNaive(c Clause, clauseIdx, deltaPos int, d *deltaIndex, emit func(Fact, Derivation)) {
	e.join(c, clauseIdx, d, deltaPos, emit)
}

func (e *Engine) join(c Clause, clauseIdx int, d *deltaIndex, deltaPos int, emit func(Fact, Derivation)) {
	// Evaluation order: delta position first (most selective), then the
	// remaining atoms left to right.
	order := make([]int, 0, len(c.Body))
	if deltaPos >= 0 {
		order = append(order, deltaPos)
	}
	for i := range c.Body {
		if i != deltaPos {
			order = append(order, i)
		}
	}
	binding := make(map[string]string)
	support := make([]Fact, len(c.Body))
	var rec func(k int)
	rec = func(k int) {
		if k == len(order) {
			head, ok := ground(c.Head, binding)
			if !ok {
				return // unreachable for validated clauses
			}
			emit(head, Derivation{Clause: clauseIdx, Body: append([]Fact(nil), support...)})
			return
		}
		i := order[k]
		atom := c.Body[i]
		var cands []Fact
		if i == deltaPos {
			cands = d.byPred[atom.Pred]
		} else {
			cands = e.candidates(atom, binding)
		}
		for _, f := range cands {
			e.joins++
			if deltaPos >= 0 && i < deltaPos {
				// Positions left of the delta atom range over old facts
				// only; delta-delta combinations there are covered when
				// deltaPos equals that position.
				if _, inDelta := d.set[f]; inDelta {
					continue
				}
			}
			undo := bind(atom, f, binding)
			if undo == nil {
				continue
			}
			support[i] = f
			rec(k + 1)
			undo()
		}
	}
	rec(0)
}

// candidates returns facts that could match atom under binding, using the
// narrowest available index.
func (e *Engine) candidates(a Atom, binding map[string]string) []Fact {
	subj, subjKnown := resolveTerm(a.Args[0], binding)
	obj, objKnown := resolveTerm(a.Args[1], binding)
	switch {
	case subjKnown && objKnown:
		f := Fact{Pred: a.Pred, Subj: subj, Obj: obj}
		if _, ok := e.facts[f]; ok {
			return []Fact{f}
		}
		return nil
	case subjKnown:
		return e.bySubj[a.Pred+"\x00"+subj]
	case objKnown:
		return e.byObj[a.Pred+"\x00"+obj]
	default:
		return e.byPred[a.Pred]
	}
}

func resolveTerm(t Term, binding map[string]string) (string, bool) {
	if !t.IsVar() {
		return t.Const, true
	}
	v, ok := binding[t.Var]
	return v, ok
}

// bind unifies atom a with fact f under binding; it returns an undo
// function, or nil if unification fails.
func bind(a Atom, f Fact, binding map[string]string) func() {
	var added []string
	try := func(t Term, val string) bool {
		if !t.IsVar() {
			return t.Const == val
		}
		if cur, ok := binding[t.Var]; ok {
			return cur == val
		}
		binding[t.Var] = val
		added = append(added, t.Var)
		return true
	}
	if !try(a.Args[0], f.Subj) || !try(a.Args[1], f.Obj) {
		for _, v := range added {
			delete(binding, v)
		}
		return nil
	}
	return func() {
		for _, v := range added {
			delete(binding, v)
		}
	}
}

func ground(a Atom, binding map[string]string) (Fact, bool) {
	s, ok1 := resolveTerm(a.Args[0], binding)
	o, ok2 := resolveTerm(a.Args[1], binding)
	if !ok1 || !ok2 {
		return Fact{}, false
	}
	return Fact{Pred: a.Pred, Subj: s, Obj: o}, true
}

func sortFacts(fs []Fact) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pred != b.Pred {
			return a.Pred < b.Pred
		}
		if a.Subj != b.Subj {
			return a.Subj < b.Subj
		}
		return a.Obj < b.Obj
	})
}

// ClausesFromRelations translates an ontology's relationship property
// declarations (§2.5 "rules that define the properties of each
// relationship") into Horn clauses: transitivity, symmetry, and inverse
// pairs.
func ClausesFromRelations(o *ontology.Ontology) []Clause {
	var cs []Clause
	for _, spec := range o.Relations() {
		r := spec.Name
		if spec.Props.Has(ontology.Transitive) {
			cs = append(cs, Clause{
				Head: A(r, V("x"), V("z")),
				Body: []Atom{A(r, V("x"), V("y")), A(r, V("y"), V("z"))},
			})
		}
		if spec.Props.Has(ontology.Symmetric) {
			cs = append(cs, Clause{
				Head: A(r, V("y"), V("x")),
				Body: []Atom{A(r, V("x"), V("y"))},
			})
		}
		if spec.InverseOf != "" {
			cs = append(cs,
				Clause{Head: A(spec.InverseOf, V("y"), V("x")), Body: []Atom{A(r, V("x"), V("y"))}},
				Clause{Head: A(r, V("y"), V("x")), Body: []Atom{A(spec.InverseOf, V("x"), V("y"))}},
			)
		}
	}
	return cs
}

// ApplyDerived adds derived facts back into an ontology as relationship
// edges. Facts whose terms are unknown in the ontology are skipped and
// reported; this keeps inference from inventing terms.
func ApplyDerived(o *ontology.Ontology, derived []Fact) (applied int, skipped []Fact) {
	for _, f := range derived {
		if !o.HasTerm(f.Subj) || !o.HasTerm(f.Obj) {
			skipped = append(skipped, f)
			continue
		}
		if o.Related(f.Subj, f.Pred, f.Obj) {
			continue
		}
		if err := o.Relate(f.Subj, f.Pred, f.Obj); err != nil {
			skipped = append(skipped, f)
			continue
		}
		applied++
	}
	return applied, skipped
}
