package inference

import "sort"

// Ask answers a single goal atom goal-directed: instead of materialising
// the closure of the whole program, it restricts evaluation to the
// clauses whose head predicates can (transitively) contribute to the
// goal's predicate, runs the light semi-naive engine over that fragment,
// and returns the matching facts, sorted.
//
// This is the query-side counterpart of the paper's pluggable-engine
// design (§2.1): the query processor does not need the full consequence
// set of a knowledge base, only the fragment relevant to one question.
// Variables in the goal are wildcards; constants filter.
//
// Ask leaves the engine's fact store untouched — evaluation happens on a
// scratch copy — so interleaving Ask with Run is safe.
func (e *Engine) Ask(goal Atom) ([]Fact, Stats) {
	relevant := e.relevantPreds(goal.Pred)

	scratch := &Engine{
		facts:  make(map[Fact]struct{}),
		base:   make(map[Fact]struct{}),
		byPred: make(map[string][]Fact),
		bySubj: make(map[string][]Fact),
		byObj:  make(map[string][]Fact),
		prov:   make(map[Fact]Derivation),
	}
	for _, c := range e.clauses {
		if relevant[c.Head.Pred] {
			scratch.clauses = append(scratch.clauses, c)
		}
	}
	for f := range e.facts {
		if relevant[f.Pred] {
			scratch.AddFact(f)
		}
	}
	stats := scratch.Run()

	var out []Fact
	for _, f := range scratch.byPred[goal.Pred] {
		if matchTerm(goal.Args[0], f.Subj) && matchTerm(goal.Args[1], f.Obj) {
			out = append(out, f)
		}
	}
	sortFacts(out)
	return out, stats
}

// relevantPreds returns the predicates that can contribute to target:
// target itself plus, transitively, the body predicates of every clause
// whose head is already relevant.
func (e *Engine) relevantPreds(target string) map[string]bool {
	relevant := map[string]bool{target: true}
	for changed := true; changed; {
		changed = false
		for _, c := range e.clauses {
			if !relevant[c.Head.Pred] {
				continue
			}
			for _, b := range c.Body {
				if !relevant[b.Pred] {
					relevant[b.Pred] = true
					changed = true
				}
			}
		}
	}
	return relevant
}

func matchTerm(t Term, val string) bool {
	if t.IsVar() {
		return true
	}
	return t.Const == val
}

// Preds returns the sorted set of predicates with at least one known fact.
func (e *Engine) Preds() []string {
	out := make([]string, 0, len(e.byPred))
	for p, fs := range e.byPred {
		if len(fs) > 0 {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}
