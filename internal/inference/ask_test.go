package inference

import (
	"reflect"
	"testing"
)

// askEngine has two independent clause families: ancestor over parents,
// and location over containment. Asking about one must not evaluate the
// other.
func askEngine(t testing.TB) *Engine {
	t.Helper()
	e := mustEngine(t,
		MustParseClause("anc(?x,?y) :- par(?x,?y)"),
		MustParseClause("anc(?x,?z) :- par(?x,?y), anc(?y,?z)"),
		MustParseClause("within(?x,?z) :- in(?x,?y), within(?y,?z)"),
		MustParseClause("within(?x,?y) :- in(?x,?y)"),
	)
	for _, f := range []Fact{
		{"par", "a", "b"}, {"par", "b", "c"}, {"par", "c", "d"},
		{"in", "desk", "room"}, {"in", "room", "house"},
	} {
		e.AddFact(f)
	}
	return e
}

func TestAskAnswersGoal(t *testing.T) {
	e := askEngine(t)
	got, _ := e.Ask(A("anc", C("a"), V("z")))
	want := []Fact{{"anc", "a", "b"}, {"anc", "a", "c"}, {"anc", "a", "d"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Ask = %v, want %v", got, want)
	}
}

func TestAskGroundGoal(t *testing.T) {
	e := askEngine(t)
	got, _ := e.Ask(A("anc", C("a"), C("d")))
	if len(got) != 1 {
		t.Fatalf("ground Ask = %v", got)
	}
	got, _ = e.Ask(A("anc", C("d"), C("a")))
	if len(got) != 0 {
		t.Fatalf("false ground Ask = %v", got)
	}
}

func TestAskRestrictsEvaluationToRelevantFragment(t *testing.T) {
	e := askEngine(t)
	_, stats := e.Ask(A("within", V("x"), V("y")))
	// The ancestor family (3 par facts + recursive clause) must not be
	// evaluated: derived facts come only from the containment family
	// (within: desk-room, room-house, desk-house = 3, of which 1 is
	// transitive).
	if stats.Derived != 3 {
		t.Fatalf("Ask evaluated irrelevant fragment: derived %d", stats.Derived)
	}
}

func TestAskDoesNotMutateEngine(t *testing.T) {
	e := askEngine(t)
	before := e.NumFacts()
	if _, _ = e.Ask(A("anc", V("x"), V("y"))); e.NumFacts() != before {
		t.Fatalf("Ask materialised into the engine: %d -> %d", before, e.NumFacts())
	}
	// The engine still works normally afterwards.
	e.Run()
	if !e.Has(Fact{"anc", "a", "d"}) {
		t.Fatalf("Run after Ask incomplete")
	}
}

func TestAskUnknownPredicate(t *testing.T) {
	e := askEngine(t)
	got, _ := e.Ask(A("nope", V("x"), V("y")))
	if len(got) != 0 {
		t.Fatalf("unknown predicate answered: %v", got)
	}
}

func TestAskBaseOnlyPredicate(t *testing.T) {
	e := askEngine(t)
	got, _ := e.Ask(A("par", V("x"), C("c")))
	if len(got) != 1 || got[0].Subj != "b" {
		t.Fatalf("base-fact Ask = %v", got)
	}
}

func TestPreds(t *testing.T) {
	e := askEngine(t)
	got := e.Preds()
	want := []string{"in", "par"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Preds = %v, want %v", got, want)
	}
	e.Run()
	got = e.Preds()
	want = []string{"anc", "in", "par", "within"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Preds after Run = %v, want %v", got, want)
	}
}
