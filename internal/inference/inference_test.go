package inference

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/ontology"
)

func transitivity(pred string) Clause {
	return Clause{
		Head: A(pred, V("x"), V("z")),
		Body: []Atom{A(pred, V("x"), V("y")), A(pred, V("y"), V("z"))},
	}
}

func mustEngine(t testing.TB, clauses ...Clause) *Engine {
	t.Helper()
	e, err := New(clauses...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestTransitiveChainDerivation(t *testing.T) {
	e := mustEngine(t, transitivity("S"))
	e.AddFact(Fact{"S", "a", "b"})
	e.AddFact(Fact{"S", "b", "c"})
	e.AddFact(Fact{"S", "c", "d"})
	stats := e.Run()
	// Derived: a-c, a-d, b-d.
	if stats.Derived != 3 {
		t.Fatalf("Derived = %d, want 3", stats.Derived)
	}
	for _, want := range []Fact{{"S", "a", "c"}, {"S", "a", "d"}, {"S", "b", "d"}} {
		if !e.Has(want) {
			t.Fatalf("missing derived fact %v", want)
		}
	}
	if e.Has(Fact{"S", "d", "a"}) {
		t.Fatalf("derived reverse fact")
	}
}

func TestSymmetryAndInverseClauses(t *testing.T) {
	sym := Clause{Head: A("near", V("y"), V("x")), Body: []Atom{A("near", V("x"), V("y"))}}
	inv1 := Clause{Head: A("childOf", V("y"), V("x")), Body: []Atom{A("parentOf", V("x"), V("y"))}}
	e := mustEngine(t, sym, inv1)
	e.AddFact(Fact{"near", "a", "b"})
	e.AddFact(Fact{"parentOf", "p", "c"})
	e.Run()
	if !e.Has(Fact{"near", "b", "a"}) {
		t.Fatalf("symmetric fact missing")
	}
	if !e.Has(Fact{"childOf", "c", "p"}) {
		t.Fatalf("inverse fact missing")
	}
}

func TestConstantsInClause(t *testing.T) {
	// Everything that is a subclass of Vehicle is a CargoCandidate of depot.
	c := Clause{
		Head: A("CargoCandidate", V("x"), C("depot")),
		Body: []Atom{A("S", V("x"), C("Vehicle"))},
	}
	e := mustEngine(t, c)
	e.AddFact(Fact{"S", "Truck", "Vehicle"})
	e.AddFact(Fact{"S", "Truck", "Machine"})
	e.AddFact(Fact{"S", "Car", "Vehicle"})
	e.Run()
	if !e.Has(Fact{"CargoCandidate", "Truck", "depot"}) || !e.Has(Fact{"CargoCandidate", "Car", "depot"}) {
		t.Fatalf("constant-restricted derivation missing")
	}
	if e.Has(Fact{"CargoCandidate", "Machine", "depot"}) {
		t.Fatalf("derived for wrong constant")
	}
}

func TestJoinAcrossPredicates(t *testing.T) {
	// grandparent(?x,?z) :- parent(?x,?y), parent(?y,?z)
	gp := Clause{
		Head: A("grandparent", V("x"), V("z")),
		Body: []Atom{A("parent", V("x"), V("y")), A("parent", V("y"), V("z"))},
	}
	e := mustEngine(t, gp)
	e.AddFact(Fact{"parent", "alice", "bob"})
	e.AddFact(Fact{"parent", "bob", "carol"})
	e.AddFact(Fact{"parent", "bob", "dave"})
	e.Run()
	if !e.Has(Fact{"grandparent", "alice", "carol"}) || !e.Has(Fact{"grandparent", "alice", "dave"}) {
		t.Fatalf("join derivation missing: %v", e.Derived())
	}
	if len(e.Derived()) != 2 {
		t.Fatalf("Derived = %v, want exactly 2", e.Derived())
	}
}

func TestNaiveAndSemiNaiveAgree(t *testing.T) {
	build := func() *Engine {
		e := mustEngine(t, transitivity("S"),
			Clause{Head: A("SI", V("x"), V("y")), Body: []Atom{A("S", V("x"), V("y"))}},
			transitivity("SI"))
		chain := []string{"a", "b", "c", "d", "e", "f"}
		for i := 0; i+1 < len(chain); i++ {
			e.AddFact(Fact{"S", chain[i], chain[i+1]})
		}
		e.AddFact(Fact{"SI", "f", "g"})
		return e
	}
	e1 := build()
	s1 := e1.Run()
	e2 := build()
	s2 := e2.RunNaive()
	if !reflect.DeepEqual(e1.Facts(), e2.Facts()) {
		t.Fatalf("strategies disagree:\nsemi-naive %v\nnaive %v", e1.Facts(), e2.Facts())
	}
	if s1.Derived != s2.Derived {
		t.Fatalf("derived counts differ: %d vs %d", s1.Derived, s2.Derived)
	}
	if s1.JoinsConsidered >= s2.JoinsConsidered {
		t.Fatalf("semi-naive should consider fewer joins: %d vs %d", s1.JoinsConsidered, s2.JoinsConsidered)
	}
}

func TestRunIsIdempotent(t *testing.T) {
	e := mustEngine(t, transitivity("S"))
	e.AddFact(Fact{"S", "a", "b"})
	e.AddFact(Fact{"S", "b", "c"})
	first := e.Run()
	if first.Derived != 1 {
		t.Fatalf("first run derived %d, want 1", first.Derived)
	}
	second := e.Run()
	if second.Derived != 0 {
		t.Fatalf("second run derived %d, want 0", second.Derived)
	}
}

func TestProvenance(t *testing.T) {
	e := mustEngine(t, transitivity("S"))
	e.AddFact(Fact{"S", "a", "b"})
	e.AddFact(Fact{"S", "b", "c"})
	e.AddFact(Fact{"S", "c", "d"})
	e.Run()

	d, ok := e.Explain(Fact{"S", "a", "c"})
	if !ok {
		t.Fatalf("no derivation for a-c")
	}
	if d.Clause != 0 || len(d.Body) != 2 {
		t.Fatalf("derivation = %+v", d)
	}
	if _, ok := e.Explain(Fact{"S", "a", "b"}); ok {
		t.Fatalf("base fact has derivation")
	}
	if _, ok := e.Explain(Fact{"S", "z", "z"}); ok {
		t.Fatalf("unknown fact has derivation")
	}

	deep := e.ExplainDeep(Fact{"S", "a", "d"})
	if len(deep) == 0 || deep[len(deep)-1] != (Fact{"S", "a", "d"}) {
		t.Fatalf("ExplainDeep = %v", deep)
	}
	// Every step in the tree must itself be derivable or base.
	for _, f := range deep {
		if !e.Has(f) {
			t.Fatalf("explanation references unknown fact %v", f)
		}
	}
}

func TestAddGraphLoadsEdges(t *testing.T) {
	g := graph.New("t")
	a, b, c := g.AddNode("A"), g.AddNode("B"), g.AddNode("C")
	for _, e := range []graph.Edge{{From: a, Label: "S", To: b}, {From: b, Label: "S", To: c}} {
		if err := g.AddEdge(e.From, e.Label, e.To); err != nil {
			t.Fatal(err)
		}
	}
	e := mustEngine(t, transitivity("S"))
	e.AddGraph(g)
	e.Run()
	if !e.Has(Fact{"S", "A", "C"}) {
		t.Fatalf("graph-loaded facts not derived over")
	}
}

func TestClausesFromRelations(t *testing.T) {
	o := ontology.New("t")
	o.DeclareRelation(ontology.RelationSpec{Name: "near", Props: ontology.Symmetric})
	o.DeclareRelation(ontology.RelationSpec{Name: "parentOf", InverseOf: "childOf"})
	cs := ClausesFromRelations(o)
	// Default declarations add transitivity for SubclassOf and SI, plus
	// symmetric near and the parentOf/childOf inverse pair.
	var nTrans, nSym, nInv int
	for _, c := range cs {
		switch {
		case len(c.Body) == 2:
			nTrans++
		case len(c.Body) == 1 && c.Head.Pred == c.Body[0].Pred:
			nSym++
		case len(c.Body) == 1:
			nInv++
		}
	}
	if nTrans != 2 || nSym != 1 || nInv != 2 {
		t.Fatalf("clause mix = trans %d sym %d inv %d", nTrans, nSym, nInv)
	}
}

func TestApplyDerived(t *testing.T) {
	o := ontology.New("t")
	o.MustAddTerm("A")
	o.MustAddTerm("B")
	o.MustAddTerm("C")
	o.MustRelate("A", ontology.SubclassOf, "B")
	o.MustRelate("B", ontology.SubclassOf, "C")

	e := mustEngine(t, ClausesFromRelations(o)...)
	e.AddGraph(o.Graph())
	e.Run()
	applied, skipped := ApplyDerived(o, e.Derived())
	if applied != 1 || len(skipped) != 0 {
		t.Fatalf("ApplyDerived = (%d, %v), want (1, none)", applied, skipped)
	}
	if !o.Related("A", ontology.SubclassOf, "C") {
		t.Fatalf("derived edge not applied")
	}
	// Unknown terms are skipped, not invented.
	_, skipped = ApplyDerived(o, []Fact{{"SubclassOf", "A", "Ghost"}})
	if len(skipped) != 1 {
		t.Fatalf("unknown-term fact not skipped")
	}
	if o.HasTerm("Ghost") {
		t.Fatalf("inference invented a term")
	}
}

func TestClauseValidation(t *testing.T) {
	unbound := Clause{Head: A("p", V("x"), V("y")), Body: []Atom{A("q", V("x"), C("k"))}}
	if err := unbound.Validate(); err == nil {
		t.Fatalf("unbound head variable accepted")
	}
	if _, err := New(unbound); err == nil {
		t.Fatalf("New accepted invalid clause")
	}
	nonGround := Clause{Head: A("p", V("x"), C("k"))}
	if _, err := New(nonGround); err == nil {
		t.Fatalf("non-ground fact accepted")
	}
	emptyHead := Clause{Head: Atom{}, Body: []Atom{A("q", V("x"), V("y"))}}
	if err := emptyHead.Validate(); err == nil {
		t.Fatalf("empty head accepted")
	}
}

func TestFactAsClause(t *testing.T) {
	e := mustEngine(t)
	if err := e.AddClause(Clause{Head: A("S", C("a"), C("b"))}); err != nil {
		t.Fatal(err)
	}
	if !e.Has(Fact{"S", "a", "b"}) {
		t.Fatalf("fact clause not stored")
	}
	if len(e.Clauses()) != 0 {
		t.Fatalf("fact stored as rule")
	}
}

func TestSelfJoinVariable(t *testing.T) {
	// reflexivePair(?x) style: p(?x,?x) in body requires subj == obj.
	c := Clause{Head: A("loop", V("x"), V("x")), Body: []Atom{A("p", V("x"), V("x"))}}
	e := mustEngine(t, c)
	e.AddFact(Fact{"p", "a", "a"})
	e.AddFact(Fact{"p", "a", "b"})
	e.Run()
	if !e.Has(Fact{"loop", "a", "a"}) {
		t.Fatalf("self-join fact missing")
	}
	if e.Has(Fact{"loop", "a", "b"}) || e.Has(Fact{"loop", "b", "b"}) {
		t.Fatalf("self-join over-derived")
	}
}

func TestCyclicFactsTerminate(t *testing.T) {
	e := mustEngine(t, transitivity("S"))
	e.AddFact(Fact{"S", "a", "b"})
	e.AddFact(Fact{"S", "b", "a"})
	stats := e.Run()
	// Closure of a 2-cycle adds a-a and b-b.
	if stats.Derived != 2 {
		t.Fatalf("cycle closure derived %d, want 2", stats.Derived)
	}
	if !e.Has(Fact{"S", "a", "a"}) || !e.Has(Fact{"S", "b", "b"}) {
		t.Fatalf("cycle closure facts missing")
	}
}

func TestStatsIterations(t *testing.T) {
	e := mustEngine(t, transitivity("S"))
	for _, f := range []Fact{{"S", "a", "b"}, {"S", "b", "c"}, {"S", "c", "d"}, {"S", "d", "e"}} {
		e.AddFact(f)
	}
	stats := e.Run()
	if stats.Iterations < 2 {
		t.Fatalf("Iterations = %d, want >= 2 for a 4-chain", stats.Iterations)
	}
	if stats.Derived != 6 {
		t.Fatalf("Derived = %d, want 6 (closure of 5-node chain)", stats.Derived)
	}
}
