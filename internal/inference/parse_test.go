package inference

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseClauseRule(t *testing.T) {
	c, err := ParseClause("SubclassOf(?x, ?z) :- SubclassOf(?x, ?y), SubclassOf(?y, ?z)")
	if err != nil {
		t.Fatal(err)
	}
	if c.Head.Pred != "SubclassOf" || len(c.Body) != 2 {
		t.Fatalf("parsed clause = %v", c)
	}
	if !c.Head.Args[0].IsVar() || c.Head.Args[0].Var != "x" {
		t.Fatalf("head arg0 = %v", c.Head.Args[0])
	}
}

func TestParseClauseFact(t *testing.T) {
	c, err := ParseClause("SIBridge(Car, Vehicle)")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Body) != 0 || c.Head.Args[0].Const != "Car" || c.Head.Args[1].Const != "Vehicle" {
		t.Fatalf("parsed fact = %v", c)
	}
}

func TestParseClauseMixedTerms(t *testing.T) {
	c, err := ParseClause("p(?x, depot) :- q(?x, Vehicle)")
	if err != nil {
		t.Fatal(err)
	}
	if c.Head.Args[1].Const != "depot" || c.Body[0].Args[1].Const != "Vehicle" {
		t.Fatalf("constants mangled: %v", c)
	}
}

func TestParseClauseErrors(t *testing.T) {
	bad := []string{
		"",
		"p(?x)",                  // unary
		"p(?x, ?y, ?z)",          // ternary
		"p(?x, ?y) :-",           // empty body
		"p(?x, ?y) :- q(?x)",     // bad body atom
		"p(?x, ?y) :- q(?x, ?z)", // unbound head var
		"p(a, ?y)",               // non-ground fact
		"p(?x, ?y) extra",        // trailing
		"(?x, ?y) :- q(?x, ?y)",  // missing predicate
		"p(? , ?y) :- q(?x, ?y)", // empty variable name
	}
	for _, s := range bad {
		if _, err := ParseClause(s); err == nil {
			t.Errorf("ParseClause(%q) should fail", s)
		}
	}
}

func TestParseClauseStringRoundTrip(t *testing.T) {
	inputs := []string{
		"SubclassOf(?x, ?z) :- SubclassOf(?x, ?y), SubclassOf(?y, ?z)",
		"near(?y, ?x) :- near(?x, ?y)",
		"SIBridge(Car, Vehicle)",
		"p(?x, depot) :- q(?x, Vehicle), r(?x, ?x)",
	}
	for _, in := range inputs {
		c := MustParseClause(in)
		out := c.String()
		c2, err := ParseClause(out)
		if err != nil {
			t.Fatalf("re-parse %q: %v", out, err)
		}
		if c2.String() != out {
			t.Fatalf("round trip unstable: %q -> %q", out, c2.String())
		}
	}
}

func TestParseProgram(t *testing.T) {
	prog := `
% transitive subclass
SubclassOf(?x, ?z) :- SubclassOf(?x, ?y), SubclassOf(?y, ?z).
# another comment style
SIBridge(Car, Vehicle).

near(?y, ?x) :- near(?x, ?y)
`
	cs, err := ParseProgramString(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 3 {
		t.Fatalf("program size = %d, want 3", len(cs))
	}
	if _, err := ParseProgramString("ok(a, b)\nbroken(?x"); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("program error should carry line number: %v", err)
	}
}

func TestMustParseClausePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustParseClause did not panic")
		}
	}()
	MustParseClause("nope(")
}

// Property: engine-built transitive closure over a random chain matches
// the arithmetic expectation n*(n-1)/2 total pairs.
func TestQuickChainClosureCount(t *testing.T) {
	f := func(n8 uint8) bool {
		n := int(n8)%20 + 2 // chain of n nodes
		e, err := New(transitivity("S"))
		if err != nil {
			return false
		}
		for i := 0; i+1 < n; i++ {
			e.AddFact(Fact{"S", labelOf(i), labelOf(i + 1)})
		}
		e.Run()
		want := n * (n - 1) / 2
		return e.NumFacts() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func labelOf(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i/26))
}
