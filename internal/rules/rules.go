// Package rules defines ONION articulation rules (EDBT 2000, §4.1).
//
// Articulation rules take the form P => Q, read "P semantically implies Q"
// (equivalently, "the object P semantically belongs to the class Q").
// Operands are qualified term references; the paper's rule forms are all
// representable:
//
//	carrier.Car => factory.Vehicle                       simple implication
//	carrier.Car => transport.PassengerCar => factory.Vehicle   cascaded
//	(factory.CargoCarrier ^ factory.Vehicle) => carrier.Trucks conjunction
//	factory.Vehicle => (carrier.Cars v carrier.Trucks)         disjunction
//	DGToEuroFn() : carrier.DutchGuilders => transport.Euro     functional
//
// The articulation generator (package articulation) consumes these rules
// and translates them into graph transformations; the inference engine
// breaks multi-term implications into atomic ones via Decompose.
package rules

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ontology"
)

// Connective joins the terms inside one step of an implication chain.
type Connective uint8

// Step connectives: a single term, a conjunction (A ^ B), or a
// disjunction (A v B).
const (
	Single Connective = iota
	And
	Or
)

// String returns the rule-syntax spelling of the connective.
func (c Connective) String() string {
	switch c {
	case And:
		return "^"
	case Or:
		return "v"
	default:
		return ""
	}
}

// Step is one operand of an implication chain: one term, or several terms
// joined by a connective.
type Step struct {
	Terms []ontology.Ref
	Conn  Connective
}

// NewStep builds a step, normalising the connective for single terms.
func NewStep(conn Connective, terms ...ontology.Ref) Step {
	if len(terms) <= 1 {
		conn = Single
	}
	return Step{Terms: terms, Conn: conn}
}

// String renders the step in rule syntax.
func (s Step) String() string {
	if len(s.Terms) == 1 {
		return s.Terms[0].String()
	}
	parts := make([]string, len(s.Terms))
	for i, t := range s.Terms {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, " "+s.Conn.String()+" ") + ")"
}

// Rule is one articulation rule: an implication chain with an optional
// conversion-function prefix (functional rules, §4.1 "Functional Rules").
type Rule struct {
	// Steps holds the implication chain left to right; Steps[i] implies
	// Steps[i+1]. Valid rules have at least two steps.
	Steps []Step
	// Fn names the conversion function of a functional rule, without
	// parentheses (e.g. "DGToEuroFn"); empty for plain implications.
	Fn string
}

// Implication builds a simple rule lhs => rhs.
func Implication(lhs, rhs ontology.Ref) Rule {
	return Rule{Steps: []Step{NewStep(Single, lhs), NewStep(Single, rhs)}}
}

// Functional builds a functional rule fn() : lhs => rhs.
func Functional(fn string, lhs, rhs ontology.Ref) Rule {
	r := Implication(lhs, rhs)
	r.Fn = fn
	return r
}

// Chain builds a cascaded rule s0 => s1 => ... from the given steps.
func Chain(steps ...Step) Rule { return Rule{Steps: steps} }

// String renders the rule in parseable rule syntax.
func (r Rule) String() string {
	parts := make([]string, len(r.Steps))
	for i, s := range r.Steps {
		parts[i] = s.String()
	}
	body := strings.Join(parts, " => ")
	if r.Fn != "" {
		return r.Fn + "() : " + body
	}
	return body
}

// Validate checks structural sanity: at least two steps, every step
// non-empty, every term non-empty, and functional rules being simple
// (single-term, two-step) as in the paper's examples.
func (r Rule) Validate() error {
	if len(r.Steps) < 2 {
		return fmt.Errorf("rule %q: implication needs at least two steps", r.String())
	}
	for i, s := range r.Steps {
		if len(s.Terms) == 0 {
			return fmt.Errorf("rule %q: step %d is empty", r.String(), i)
		}
		if len(s.Terms) > 1 && s.Conn == Single {
			return fmt.Errorf("rule %q: step %d has several terms but no connective", r.String(), i)
		}
		for _, t := range s.Terms {
			if t.Term == "" {
				return fmt.Errorf("rule %q: step %d has an empty term", r.String(), i)
			}
		}
	}
	if r.Fn != "" {
		if len(r.Steps) != 2 || len(r.Steps[0].Terms) != 1 || len(r.Steps[1].Terms) != 1 {
			return fmt.Errorf("rule %q: functional rules must be simple A => B", r.String())
		}
	}
	return nil
}

// Decompose breaks a cascaded chain s0 => s1 => ... => sn into the atomic
// pairwise rules s0 => s1, s1 => s2, ..., as the paper's inference engine
// does for "the notational convenience of multi-term implication" (§4.1).
// Two-step rules decompose to themselves; the functional prefix stays on
// the first atomic rule only (the conversion applies at the source side).
func (r Rule) Decompose() []Rule {
	if len(r.Steps) <= 2 {
		return []Rule{r}
	}
	out := make([]Rule, 0, len(r.Steps)-1)
	for i := 0; i+1 < len(r.Steps); i++ {
		a := Rule{Steps: []Step{r.Steps[i], r.Steps[i+1]}}
		if i == 0 {
			a.Fn = r.Fn
		}
		out = append(out, a)
	}
	return out
}

// Refs returns every term reference mentioned by the rule, in chain order.
func (r Rule) Refs() []ontology.Ref {
	var refs []ontology.Ref
	for _, s := range r.Steps {
		refs = append(refs, s.Terms...)
	}
	return refs
}

// IsSimple reports whether the rule is a plain two-step single-term
// implication A => B.
func (r Rule) IsSimple() bool {
	return len(r.Steps) == 2 && len(r.Steps[0].Terms) == 1 && len(r.Steps[1].Terms) == 1
}

// Set is an ordered collection of articulation rules, the "articulation
// rule set" a domain interoperation expert supplies or SKAT generates.
type Set struct {
	Rules []Rule
}

// NewSet builds a set from rules, without validation.
func NewSet(rs ...Rule) *Set { return &Set{Rules: rs} }

// Add appends rules to the set.
func (s *Set) Add(rs ...Rule) { s.Rules = append(s.Rules, rs...) }

// Len returns the number of rules.
func (s *Set) Len() int { return len(s.Rules) }

// Validate validates every rule, reporting the first failure.
func (s *Set) Validate() error {
	for i, r := range s.Rules {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("rule %d: %w", i, err)
		}
	}
	return nil
}

// String renders the whole set, one rule per line, parseable by ParseSet.
func (s *Set) String() string {
	var b strings.Builder
	for _, r := range s.Rules {
		b.WriteString(r.String())
		b.WriteString("\n")
	}
	return b.String()
}

// Decompose returns a new set with every cascaded rule broken into atomic
// rules, duplicates removed (by string form), order preserved.
func (s *Set) Decompose() *Set {
	out := &Set{}
	seen := make(map[string]bool)
	for _, r := range s.Rules {
		for _, a := range r.Decompose() {
			k := a.String()
			if !seen[k] {
				seen[k] = true
				out.Rules = append(out.Rules, a)
			}
		}
	}
	return out
}

// SourceTerms returns, for the named ontology, the sorted set of its terms
// mentioned anywhere in the rule set. The maintenance machinery (§5.3)
// uses this as the articulation coverage: changes to terms outside this
// set cannot require articulation updates.
func (s *Set) SourceTerms(ont string) []string {
	set := make(map[string]struct{})
	for _, r := range s.Rules {
		for _, ref := range r.Refs() {
			if ref.Ont == ont {
				set[ref.Term] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Ontologies returns the sorted set of ontology names mentioned in the set.
func (s *Set) Ontologies() []string {
	set := make(map[string]struct{})
	for _, r := range s.Rules {
		for _, ref := range r.Refs() {
			if ref.Ont != "" {
				set[ref.Ont] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}
