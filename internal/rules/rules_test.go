package rules

import (
	"strings"
	"testing"

	"repro/internal/ontology"
)

func ref(s string) ontology.Ref { return ontology.MustParseRef(s) }

func TestParseSimpleImplication(t *testing.T) {
	r, err := Parse("carrier.Car => factory.Vehicle")
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsSimple() {
		t.Fatalf("rule should be simple: %v", r)
	}
	if r.Steps[0].Terms[0] != ref("carrier.Car") || r.Steps[1].Terms[0] != ref("factory.Vehicle") {
		t.Fatalf("terms wrong: %v", r)
	}
	if r.Fn != "" {
		t.Fatalf("unexpected Fn %q", r.Fn)
	}
}

func TestParseColonQualifiedRefs(t *testing.T) {
	r, err := Parse("carrier:Car => factory:Vehicle")
	if err != nil {
		t.Fatal(err)
	}
	if r.Steps[0].Terms[0] != ref("carrier.Car") {
		t.Fatalf("colon-qualified ref mis-parsed: %v", r.Steps[0].Terms[0])
	}
}

func TestParseCascaded(t *testing.T) {
	r, err := Parse("carrier.Car => transport.PassengerCar => factory.Vehicle")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(r.Steps))
	}
	if r.Steps[1].Terms[0] != ref("transport.PassengerCar") {
		t.Fatalf("middle step wrong: %v", r.Steps[1])
	}
}

func TestParseConjunction(t *testing.T) {
	r, err := Parse("(factory.CargoCarrier ^ factory.Vehicle) => carrier.Trucks")
	if err != nil {
		t.Fatal(err)
	}
	s := r.Steps[0]
	if s.Conn != And || len(s.Terms) != 2 {
		t.Fatalf("conjunction step wrong: %+v", s)
	}
	// '&' is an accepted alias.
	r2, err := Parse("(factory.CargoCarrier & factory.Vehicle) => carrier.Trucks")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Steps[0].Conn != And {
		t.Fatalf("& alias not accepted")
	}
}

func TestParseDisjunction(t *testing.T) {
	r, err := Parse("factory.Vehicle => (carrier.Cars v carrier.Trucks)")
	if err != nil {
		t.Fatal(err)
	}
	s := r.Steps[1]
	if s.Conn != Or || len(s.Terms) != 2 {
		t.Fatalf("disjunction step wrong: %+v", s)
	}
	if _, err := Parse("factory.Vehicle => (carrier.Cars | carrier.Trucks)"); err != nil {
		t.Fatalf("| alias not accepted: %v", err)
	}
}

func TestParseFunctional(t *testing.T) {
	r, err := Parse("DGToEuroFn() : carrier.DutchGuilders => transport.Euro")
	if err != nil {
		t.Fatal(err)
	}
	if r.Fn != "DGToEuroFn" {
		t.Fatalf("Fn = %q", r.Fn)
	}
	if r.Steps[0].Terms[0] != ref("carrier.DutchGuilders") {
		t.Fatalf("functional LHS wrong: %v", r.Steps[0])
	}
	// Without spaces around the colon.
	r2, err := Parse("F(): a.X => b.Y")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Fn != "F" {
		t.Fatalf("Fn = %q", r2.Fn)
	}
}

func TestParseTermNamedV(t *testing.T) {
	// A bare "v" between group terms is the connective, but "v" can still
	// appear inside qualified names.
	r, err := Parse("ont.v => ont.w")
	if err != nil {
		t.Fatal(err)
	}
	if r.Steps[0].Terms[0] != ref("ont.v") {
		t.Fatalf("term containing v mis-parsed: %v", r.Steps[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"carrier.Car",                      // no implication
		"carrier.Car =>",                   // dangling
		"=> factory.Vehicle",               // missing LHS
		"(a.X ^ b.Y v c.Z) => d.W",         // mixed connectives
		"(a.X b.Y) => c.Z",                 // missing connective
		"(a.X ^ ) => c.Z",                  // dangling connective
		"( => a.X",                         // bad group
		"a.X => b.Y trailing",              // trailing garbage
		"F() : (a.X ^ a.Y) => b.Z",         // functional must be simple
		"F() : a.X => b.Y => c.Z",          // functional must be two steps
		"carrier.Car => factory.Vehicle )", // stray paren
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	inputs := []string{
		"carrier.Car => factory.Vehicle",
		"carrier.Car => transport.PassengerCar => factory.Vehicle",
		"(factory.CargoCarrier ^ factory.Vehicle) => carrier.Trucks",
		"factory.Vehicle => (carrier.Cars v carrier.Trucks)",
		"DGToEuroFn() : carrier.DutchGuilders => transport.Euro",
	}
	for _, in := range inputs {
		r := MustParse(in)
		out := r.String()
		r2, err := Parse(out)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", out, in, err)
		}
		if r2.String() != out {
			t.Fatalf("round trip unstable: %q -> %q", out, r2.String())
		}
	}
}

func TestDecomposeCascade(t *testing.T) {
	r := MustParse("carrier.Car => transport.PassengerCar => factory.Vehicle")
	atoms := r.Decompose()
	if len(atoms) != 2 {
		t.Fatalf("Decompose = %d rules, want 2", len(atoms))
	}
	if atoms[0].String() != "carrier.Car => transport.PassengerCar" {
		t.Fatalf("atom 0 = %q", atoms[0].String())
	}
	if atoms[1].String() != "transport.PassengerCar => factory.Vehicle" {
		t.Fatalf("atom 1 = %q", atoms[1].String())
	}
}

func TestDecomposeSimpleIsIdentity(t *testing.T) {
	r := MustParse("a.X => b.Y")
	atoms := r.Decompose()
	if len(atoms) != 1 || atoms[0].String() != r.String() {
		t.Fatalf("Decompose(simple) = %v", atoms)
	}
}

func TestDecomposeKeepsFnOnFirstAtom(t *testing.T) {
	r := Chain(
		NewStep(Single, ref("a.X")),
		NewStep(Single, ref("art.M")),
		NewStep(Single, ref("b.Y")),
	)
	r.Fn = "Conv"
	atoms := r.Decompose()
	if atoms[0].Fn != "Conv" || atoms[1].Fn != "" {
		t.Fatalf("Fn distribution wrong: %v", atoms)
	}
}

func TestValidate(t *testing.T) {
	if err := (Rule{}).Validate(); err == nil {
		t.Fatalf("empty rule valid")
	}
	r := Rule{Steps: []Step{{Terms: []ontology.Ref{ref("a.X"), ref("a.Y")}, Conn: Single}, NewStep(Single, ref("b.Z"))}}
	if err := r.Validate(); err == nil {
		t.Fatalf("multi-term Single step valid")
	}
	r2 := Rule{Steps: []Step{NewStep(Single, ontology.Ref{}), NewStep(Single, ref("b.Z"))}}
	if err := r2.Validate(); err == nil {
		t.Fatalf("empty term valid")
	}
}

func TestParseSetWithCommentsAndErrors(t *testing.T) {
	text := `
# articulation of carrier and factory
carrier.Car => factory.Vehicle   # simple
(factory.CargoCarrier ^ factory.Vehicle) => carrier.Trucks

DGToEuroFn() : carrier.DutchGuilders => transport.Euro
`
	set, err := ParseSetString(text)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 3 {
		t.Fatalf("set size = %d, want 3", set.Len())
	}
	if _, err := ParseSetString("a.X => b.Y\nbroken =>\n"); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("ParseSet error should carry line number, got %v", err)
	}
}

func TestSetStringRoundTrip(t *testing.T) {
	set := NewSet(
		MustParse("carrier.Car => factory.Vehicle"),
		MustParse("factory.Vehicle => (carrier.Cars v carrier.Trucks)"),
	)
	again, err := ParseSetString(set.String())
	if err != nil {
		t.Fatal(err)
	}
	if again.String() != set.String() {
		t.Fatalf("set round trip unstable:\n%q\n%q", set.String(), again.String())
	}
}

func TestSetDecomposeDeduplicates(t *testing.T) {
	set := NewSet(
		MustParse("a.X => m.M => b.Y"),
		MustParse("a.X => m.M"), // duplicate of first atom
	)
	d := set.Decompose()
	if d.Len() != 2 {
		t.Fatalf("Decompose set size = %d, want 2 (deduplicated)", d.Len())
	}
}

func TestSourceTerms(t *testing.T) {
	set := NewSet(
		MustParse("carrier.Car => factory.Vehicle"),
		MustParse("(factory.CargoCarrier ^ factory.Vehicle) => carrier.Trucks"),
		MustParse("carrier.Car => transport.PassengerCar => factory.Vehicle"),
	)
	got := set.SourceTerms("carrier")
	want := []string{"Car", "Trucks"}
	if len(got) != len(want) {
		t.Fatalf("SourceTerms(carrier) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SourceTerms(carrier) = %v, want %v", got, want)
		}
	}
	onts := set.Ontologies()
	wantOnts := []string{"carrier", "factory", "transport"}
	if len(onts) != len(wantOnts) {
		t.Fatalf("Ontologies = %v, want %v", onts, wantOnts)
	}
}

func TestStepString(t *testing.T) {
	s := NewStep(And, ref("a.X"), ref("a.Y"))
	if got := s.String(); got != "(a.X ^ a.Y)" {
		t.Fatalf("Step.String = %q", got)
	}
	single := NewStep(Or, ref("a.X")) // normalised to Single
	if single.Conn != Single || single.String() != "a.X" {
		t.Fatalf("NewStep single normalisation failed: %v", single)
	}
}

func TestConnectiveString(t *testing.T) {
	if And.String() != "^" || Or.String() != "v" || Single.String() != "" {
		t.Fatalf("Connective.String wrong")
	}
}
