package rules

import "testing"

// fig2RuleSeeds are the paper's Fig. 2 articulation rules (the fixtures
// package imports rules, so the seed corpus is spelled out here rather
// than imported).
var fig2RuleSeeds = []string{
	"carrier.Transportation => factory.Transportation",
	"carrier.Cars => factory.Vehicle",
	"carrier.PassengerCar => transport.PassengerCar => factory.Vehicle",
	"(factory.CargoCarrier ^ factory.Vehicle) => carrier.Trucks",
	"factory.Vehicle => (carrier.Cars v carrier.Trucks)",
	"carrier.Person => factory.Person",
	"carrier.Owner => transport.Owner",
	"transport.Owner => transport.Person",
	"carrier.Person => transport.Person",
	"PSToEuroFn() : carrier.Price => transport.Price",
	"EuroToPSFn() : transport.Price => carrier.Price",
	"DGToEuroFn() : factory.Price => transport.Price",
	"EuroToDGFn() : transport.Price => factory.Price",
}

// FuzzParse checks that the rule parser never panics, that everything it
// accepts passes Validate, and that accepted rules render back into
// parseable, render-stable text.
func FuzzParse(f *testing.F) {
	for _, s := range fig2RuleSeeds {
		f.Add(s)
	}
	f.Add("")
	f.Add("a => ")
	f.Add("(a ^ b v c) => d")
	f.Add("ont:Term => other:Term")
	f.Add("Fn() : a.b => c.d => e.f")
	f.Fuzz(func(t *testing.T, s string) {
		r, err := Parse(s)
		if err != nil {
			return
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("accepted rule fails Validate: %v (input %q)", err, s)
		}
		rendered := r.String()
		r2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendered rule does not reparse: %v (input %q, rendered %q)", err, s, rendered)
		}
		if got := r2.String(); got != rendered {
			t.Fatalf("rendering not stable: %q reparses to %q (input %q)", rendered, got, s)
		}
	})
}
