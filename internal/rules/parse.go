package rules

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/ontology"
)

// Parse parses one rule from its textual form, e.g.
//
//	carrier.Car => factory.Vehicle
//	(factory.CargoCarrier ^ factory.Vehicle) => carrier.Trucks
//	factory.Vehicle => (carrier.Cars v carrier.Trucks)
//	DGToEuroFn() : carrier.DutchGuilders => transport.Euro
//
// Qualified references accept both "ont.Term" and "ont:Term". The
// disjunction connective is the bare word "v" or the symbol "|"; the
// conjunction connective is "^" or "&".
func Parse(s string) (Rule, error) {
	p := &ruleParser{in: s, toks: tokenizeRule(s)}
	r, err := p.parseRule()
	if err != nil {
		return Rule{}, err
	}
	if err := r.Validate(); err != nil {
		return Rule{}, err
	}
	return r, nil
}

// MustParse is Parse for static construction code; it panics on error.
func MustParse(s string) Rule {
	r, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return r
}

// ParseSet reads a rule set: one rule per line, '#' starting a comment,
// blank lines ignored. It reports the first error with its line number.
func ParseSet(r io.Reader) (*Set, error) {
	set := &Set{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		rule, err := Parse(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		set.Add(rule)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rules: reading rule set: %w", err)
	}
	return set, nil
}

// ParseSetString is ParseSet over an in-memory string.
func ParseSetString(s string) (*Set, error) {
	return ParseSet(strings.NewReader(s))
}

type ruleTok struct {
	kind string // "term", "=>", "(", ")", "^", "v", ":", "fn"
	text string
	pos  int
}

// tokenizeRule splits the rule text. Terms are maximal runs of characters
// that are not whitespace or rule punctuation; "v" alone is the OR
// connective. A ':' directly after ')' is the functional-rule separator;
// anywhere else it is part of a qualified term reference (ont:Term).
func tokenizeRule(s string) []ruleTok {
	var toks []ruleTok
	lastKind := func() string {
		if len(toks) == 0 {
			return ""
		}
		return toks[len(toks)-1].kind
	}
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '(':
			toks = append(toks, ruleTok{"(", "(", i})
			i++
		case c == ')':
			toks = append(toks, ruleTok{")", ")", i})
			i++
		case c == '^' || c == '&':
			toks = append(toks, ruleTok{"^", string(c), i})
			i++
		case c == '|':
			toks = append(toks, ruleTok{"v", "|", i})
			i++
		case c == ':' && lastKind() == ")":
			toks = append(toks, ruleTok{":", ":", i})
			i++
		case c == '=' && i+1 < len(s) && s[i+1] == '>':
			toks = append(toks, ruleTok{"=>", "=>", i})
			i += 2
		default:
			start := i
			for i < len(s) {
				c2 := s[i]
				if c2 == ' ' || c2 == '\t' || c2 == '(' || c2 == ')' || c2 == '^' || c2 == '&' || c2 == '|' {
					break
				}
				if c2 == '=' && i+1 < len(s) && s[i+1] == '>' {
					break
				}
				i++
			}
			text := s[start:i]
			if text == "v" {
				toks = append(toks, ruleTok{"v", "v", start})
			} else {
				toks = append(toks, ruleTok{"term", text, start})
			}
		}
	}
	return toks
}

type ruleParser struct {
	in   string
	toks []ruleTok
	pos  int
}

func (p *ruleParser) peek() ruleTok {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ruleTok{kind: "eof", pos: len(p.in)}
}

func (p *ruleParser) next() ruleTok {
	t := p.peek()
	if t.kind != "eof" {
		p.pos++
	}
	return t
}

func (p *ruleParser) errf(t ruleTok, format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	return fmt.Errorf("rules: %s at offset %d in %q", msg, t.pos, p.in)
}

// parseRule := [term '(' ')' ':'] step ('=>' step)+
func (p *ruleParser) parseRule() (Rule, error) {
	var r Rule
	// Functional prefix: term, "(", ")", ":".
	if p.peek().kind == "term" && p.pos+3 < len(p.toks)+1 {
		save := p.pos
		fn := p.next()
		if p.peek().kind == "(" {
			p.next()
			if p.peek().kind == ")" {
				p.next()
				if p.peek().kind == ":" {
					p.next()
					r.Fn = fn.text
				} else {
					p.pos = save
				}
			} else {
				p.pos = save
			}
		} else {
			p.pos = save
		}
	}

	first, err := p.parseStep()
	if err != nil {
		return Rule{}, err
	}
	r.Steps = append(r.Steps, first)
	for p.peek().kind == "=>" {
		p.next()
		s, err := p.parseStep()
		if err != nil {
			return Rule{}, err
		}
		r.Steps = append(r.Steps, s)
	}
	if len(r.Steps) < 2 {
		return Rule{}, p.errf(p.peek(), "expected '=>'")
	}
	if t := p.peek(); t.kind != "eof" {
		return Rule{}, p.errf(t, "trailing input %q", t.text)
	}
	return r, nil
}

// parseStep := term | '(' term (conn term)* ')'
func (p *ruleParser) parseStep() (Step, error) {
	t := p.peek()
	if t.kind == "term" {
		p.next()
		ref, err := ontology.ParseRef(t.text)
		if err != nil {
			return Step{}, p.errf(t, "bad term %q: %v", t.text, err)
		}
		return NewStep(Single, ref), nil
	}
	if t.kind != "(" {
		return Step{}, p.errf(t, "expected term or '('")
	}
	p.next()
	var terms []ontology.Ref
	conn := Single
	for {
		tt := p.next()
		if tt.kind != "term" {
			return Step{}, p.errf(tt, "expected term inside group")
		}
		ref, err := ontology.ParseRef(tt.text)
		if err != nil {
			return Step{}, p.errf(tt, "bad term %q: %v", tt.text, err)
		}
		terms = append(terms, ref)
		nt := p.next()
		switch nt.kind {
		case ")":
			if len(terms) > 1 && conn == Single {
				return Step{}, p.errf(nt, "group with several terms needs a connective")
			}
			return Step{Terms: terms, Conn: conn}, nil
		case "^":
			if conn == Or {
				return Step{}, p.errf(nt, "mixed connectives in one group")
			}
			conn = And
		case "v":
			if conn == And {
				return Step{}, p.errf(nt, "mixed connectives in one group")
			}
			conn = Or
		default:
			return Step{}, p.errf(nt, "expected connective or ')'")
		}
	}
}
