package pattern

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

// fixture builds a small carrier-like graph:
//
//	car -drivenBy-> driver
//	car -AttributeOf-> price
//	truck -AttributeOf-> owner
//	truck -AttributeOf-> model
//	car -SubclassOf-> vehicle ; truck -SubclassOf-> vehicle
func fixture(t testing.TB) (*graph.Graph, map[string]graph.NodeID) {
	t.Helper()
	g := graph.New("carrier")
	ids := make(map[string]graph.NodeID)
	for _, l := range []string{"car", "driver", "price", "truck", "owner", "model", "vehicle"} {
		ids[l] = g.AddNode(l)
	}
	add := func(a, l, b string) {
		if err := g.AddEdge(ids[a], l, ids[b]); err != nil {
			t.Fatal(err)
		}
	}
	add("car", "drivenBy", "driver")
	add("car", "AttributeOf", "price")
	add("truck", "AttributeOf", "owner")
	add("truck", "AttributeOf", "model")
	add("car", "SubclassOf", "vehicle")
	add("truck", "SubclassOf", "vehicle")
	return g, ids
}

func TestFindExactSingleNode(t *testing.T) {
	g, ids := fixture(t)
	p := &Pattern{Nodes: []Node{{Name: "car"}}}
	ms, err := Find(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Nodes[0] != ids["car"] {
		t.Fatalf("Find(car) = %v", ms)
	}
}

func TestFindNoMatchForUnknownLabel(t *testing.T) {
	g, _ := fixture(t)
	p := &Pattern{Nodes: []Node{{Name: "boat"}}}
	ms, err := Find(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("Find(boat) = %v, want none", ms)
	}
}

func TestFindEdgePatternRespectsLabels(t *testing.T) {
	g, _ := fixture(t)
	p := &Pattern{
		Nodes: []Node{{Name: "car"}, {Name: "driver"}},
		Edges: []Edge{{From: 0, Label: "drivenBy", To: 1}},
	}
	ok, err := Matches(g, p, Options{})
	if err != nil || !ok {
		t.Fatalf("drivenBy pattern should match: %v %v", ok, err)
	}
	p.Edges[0].Label = "SubclassOf"
	ok, err = Matches(g, p, Options{})
	if err != nil || ok {
		t.Fatalf("wrong edge label should not match")
	}
}

func TestFindUnlabeledEdgeMatchesAnyLabel(t *testing.T) {
	g, _ := fixture(t)
	p := &Pattern{
		Nodes: []Node{{Name: "car"}, {Name: "driver"}},
		Edges: []Edge{{From: 0, Label: "", To: 1}},
	}
	ok, err := Matches(g, p, Options{})
	if err != nil || !ok {
		t.Fatalf("unlabeled edge should match any label")
	}
	// Direction still matters.
	p.Edges[0] = Edge{From: 1, Label: "", To: 0}
	ok, _ = Matches(g, p, Options{})
	if ok {
		t.Fatalf("unlabeled edge must still respect direction")
	}
}

func TestFindVariableNode(t *testing.T) {
	g, ids := fixture(t)
	// ?x -SubclassOf-> vehicle matches car and truck.
	p := &Pattern{
		Nodes: []Node{{Var: "x"}, {Name: "vehicle"}},
		Edges: []Edge{{From: 0, Label: "SubclassOf", To: 1}},
	}
	ms, err := Find(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("variable pattern matches = %d, want 2", len(ms))
	}
	found := map[graph.NodeID]bool{}
	for _, m := range ms {
		found[m.Bindings["x"]] = true
	}
	if !found[ids["car"]] || !found[ids["truck"]] {
		t.Fatalf("bindings = %v, want car and truck", found)
	}
}

func TestFindAttributePatternWithBinding(t *testing.T) {
	g, ids := fixture(t)
	p := MustParse("truck(O:owner, model)")
	ms, err := Find(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("truck(O:owner,model) matches = %d, want 1", len(ms))
	}
	if ms[0].Bindings["O"] != ids["owner"] {
		t.Fatalf("O bound to %v, want owner", ms[0].Bindings["O"])
	}
}

func TestFindFuzzyNodeEquiv(t *testing.T) {
	g, _ := fixture(t)
	syn := func(p, g string) bool {
		return p == g || (p == "auto" && g == "car")
	}
	p := &Pattern{Nodes: []Node{{Name: "auto"}}}
	if ok, _ := Matches(g, p, Options{}); ok {
		t.Fatalf("strict matching should fail for synonym")
	}
	ok, err := Matches(g, p, Options{NodeEquiv: syn})
	if err != nil || !ok {
		t.Fatalf("synonym matching should succeed")
	}
}

func TestFindFuzzyEdgeEquiv(t *testing.T) {
	g, _ := fixture(t)
	p := &Pattern{
		Nodes: []Node{{Name: "car"}, {Name: "driver"}},
		Edges: []Edge{{From: 0, Label: "operatedBy", To: 1}},
	}
	eq := func(pl, gl string) bool { return pl == gl || (pl == "operatedBy" && gl == "drivenBy") }
	if ok, _ := Matches(g, p, Options{}); ok {
		t.Fatalf("strict edge matching should fail")
	}
	if ok, _ := Matches(g, p, Options{EdgeEquiv: eq}); !ok {
		t.Fatalf("edge-equiv matching should succeed")
	}
	if ok, _ := Matches(g, p, Options{IgnoreEdgeLabels: true}); !ok {
		t.Fatalf("IgnoreEdgeLabels matching should succeed")
	}
}

func TestFindInjectivity(t *testing.T) {
	g := graph.New("t")
	a := g.AddNode("A")
	b := g.AddNode("B")
	if err := g.AddEdge(a, "r", b); err != nil {
		t.Fatal(err)
	}
	// Two variable nodes both connected to... themselves not required:
	// pattern ?x, ?y with no edges. Non-injective: 4 matches; injective: 2.
	p := &Pattern{Nodes: []Node{{Var: "x"}, {Var: "y"}}}
	ms, err := Find(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("non-injective matches = %d, want 4", len(ms))
	}
	ms, err = Find(g, p, Options{Injective: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("injective matches = %d, want 2", len(ms))
	}
}

func TestFindMaxMatches(t *testing.T) {
	g, _ := fixture(t)
	p := &Pattern{Nodes: []Node{{Var: "x"}}}
	ms, err := Find(g, p, Options{MaxMatches: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("MaxMatches=3 returned %d", len(ms))
	}
}

func TestFindSelfLoopPattern(t *testing.T) {
	g := graph.New("t")
	a := g.AddNode("A")
	b := g.AddNode("B")
	if err := g.AddEdge(a, "self", a); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(a, "r", b); err != nil {
		t.Fatal(err)
	}
	p := &Pattern{
		Nodes: []Node{{Var: "x"}},
		Edges: []Edge{{From: 0, Label: "self", To: 0}},
	}
	ms, err := Find(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Nodes[0] != a {
		t.Fatalf("self-loop pattern = %v, want just A", ms)
	}
}

func TestFindDeterministicOrder(t *testing.T) {
	g, _ := fixture(t)
	p := &Pattern{
		Nodes: []Node{{Var: "x"}, {Name: "vehicle"}},
		Edges: []Edge{{From: 0, Label: "SubclassOf", To: 1}},
	}
	first, err := Find(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, _ := Find(g, p, Options{})
		if len(again) != len(first) {
			t.Fatalf("unstable match count")
		}
		for j := range again {
			if again[j].Nodes[0] != first[j].Nodes[0] {
				t.Fatalf("unstable match order")
			}
		}
	}
}

func TestFindTriangleStructure(t *testing.T) {
	// Pattern requiring two attributes from the same node must not match
	// a node owning only one.
	g, _ := fixture(t)
	p := &Pattern{
		Nodes: []Node{{Var: "x"}, {Name: "owner"}, {Name: "model"}},
		Edges: []Edge{
			{From: 0, Label: "AttributeOf", To: 1},
			{From: 0, Label: "AttributeOf", To: 2},
		},
	}
	ms, err := Find(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("matches = %d, want 1 (only truck has owner+model)", len(ms))
	}
	if got := g.Label(ms[0].Bindings["x"]); got != "truck" {
		t.Fatalf("x bound to %s, want truck", got)
	}
}

func TestFindInvalidPattern(t *testing.T) {
	g, _ := fixture(t)
	if _, err := Find(g, &Pattern{}, Options{}); err == nil {
		t.Fatalf("empty pattern accepted")
	}
	bad := &Pattern{Nodes: []Node{{Name: "car"}}, Edges: []Edge{{From: 0, To: 5}}}
	if _, err := Find(g, bad, Options{}); err == nil {
		t.Fatalf("out-of-range edge accepted")
	}
}

func TestPatternString(t *testing.T) {
	p := MustParse("carrier:truck(O:owner)")
	s := p.String()
	for _, want := range []string{"carrier:", "truck", "O:", "owner"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestSortMatches(t *testing.T) {
	ms := []Match{
		{Nodes: []graph.NodeID{3, 1}},
		{Nodes: []graph.NodeID{1, 2}},
		{Nodes: []graph.NodeID{1, 1}},
	}
	SortMatches(ms)
	if ms[0].Nodes[0] != 1 || ms[0].Nodes[1] != 1 || ms[2].Nodes[0] != 3 {
		t.Fatalf("SortMatches order wrong: %v", ms)
	}
}

func TestNarrowingEquivalence(t *testing.T) {
	// Candidate narrowing is an enumeration optimisation only: results
	// must be identical with it disabled, across pattern shapes.
	g, _ := fixture(t)
	patterns := []*Pattern{
		{Nodes: []Node{{Var: "x"}, {Var: "y"}}, Edges: []Edge{{From: 0, Label: "SubclassOf", To: 1}}},
		{Nodes: []Node{{Var: "x"}, {Name: "vehicle"}}, Edges: []Edge{{From: 0, Label: "", To: 1}}},
		{Nodes: []Node{{Var: "x"}, {Var: "y"}, {Var: "z"}}, Edges: []Edge{
			{From: 0, Label: "AttributeOf", To: 1},
			{From: 0, Label: "AttributeOf", To: 2},
		}},
	}
	for pi, p := range patterns {
		on, err := Find(g, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		off, err := Find(g, p, Options{DisableNarrowing: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(on) != len(off) {
			t.Fatalf("pattern %d: narrowing changed match count: %d vs %d", pi, len(on), len(off))
		}
		SortMatches(on)
		SortMatches(off)
		for i := range on {
			for j := range on[i].Nodes {
				if on[i].Nodes[j] != off[i].Nodes[j] {
					t.Fatalf("pattern %d: narrowing changed match %d", pi, i)
				}
			}
		}
	}
}

func TestNewPath(t *testing.T) {
	p := NewPath("carrier", "SubclassOf", "a", "b", "c")
	if len(p.Nodes) != 3 || len(p.Edges) != 2 {
		t.Fatalf("NewPath shape wrong: %v", p)
	}
	if p.Edges[0].Label != "SubclassOf" || p.Ont != "carrier" {
		t.Fatalf("NewPath fields wrong: %v", p)
	}
}
