package pattern

import "testing"

func TestParsePaperPathNotation(t *testing.T) {
	// carrier:car:driver — a pattern in the carrier ontology: node car with
	// an outgoing edge to node driver (§3).
	p, err := Parse("carrier:car:driver")
	if err != nil {
		t.Fatal(err)
	}
	if p.Ont != "carrier" {
		t.Fatalf("Ont = %q, want carrier", p.Ont)
	}
	if len(p.Nodes) != 2 || p.Nodes[0].Name != "car" || p.Nodes[1].Name != "driver" {
		t.Fatalf("Nodes = %v", p.Nodes)
	}
	if len(p.Edges) != 1 || p.Edges[0].Label != "" || p.Edges[0].From != 0 || p.Edges[0].To != 1 {
		t.Fatalf("Edges = %v", p.Edges)
	}
}

func TestParsePaperAttributeNotation(t *testing.T) {
	// truck(O : owner, model) — node truck with attributes owner and model,
	// variable O binding the owner (§3).
	p, err := Parse("truck(O : owner, model)")
	if err != nil {
		t.Fatal(err)
	}
	if p.Ont != "" {
		t.Fatalf("Ont = %q, want none", p.Ont)
	}
	if len(p.Nodes) != 3 {
		t.Fatalf("Nodes = %v, want 3", p.Nodes)
	}
	if p.Nodes[0].Name != "truck" {
		t.Fatalf("root = %v", p.Nodes[0])
	}
	if p.Nodes[1].Name != "owner" || p.Nodes[1].Var != "O" {
		t.Fatalf("owner arg = %v", p.Nodes[1])
	}
	if p.Nodes[2].Name != "model" || p.Nodes[2].Var != "" {
		t.Fatalf("model arg = %v", p.Nodes[2])
	}
	for _, e := range p.Edges {
		if e.Label != AttributeEdgeLabel || e.From != 0 {
			t.Fatalf("attribute edge = %v", e)
		}
	}
}

func TestParseCombined(t *testing.T) {
	p, err := Parse("carrier:truck(O:owner):depot")
	if err != nil {
		t.Fatal(err)
	}
	if p.Ont != "carrier" {
		t.Fatalf("Ont = %q", p.Ont)
	}
	// nodes: truck, owner, depot
	if len(p.Nodes) != 3 {
		t.Fatalf("Nodes = %v", p.Nodes)
	}
	// edges: truck-A->owner, truck-?->depot
	var attr, chain int
	for _, e := range p.Edges {
		if e.Label == AttributeEdgeLabel {
			attr++
		} else if e.Label == "" {
			chain++
			if p.Nodes[e.From].Name != "truck" || p.Nodes[e.To].Name != "depot" {
				t.Fatalf("chain edge endpoints wrong: %v", e)
			}
		}
	}
	if attr != 1 || chain != 1 {
		t.Fatalf("edge mix wrong: %v", p.Edges)
	}
}

func TestParseVariables(t *testing.T) {
	p, err := Parse("carrier:?x:driver")
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes[0].Name != "" || p.Nodes[0].Var != "x" {
		t.Fatalf("?x node = %v", p.Nodes[0])
	}
	p, err = Parse("truck(O:?)")
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes[1].Name != "" || p.Nodes[1].Var != "O" {
		t.Fatalf("O:? node = %v", p.Nodes[1])
	}
	// Anonymous variable.
	p, err = Parse("truck(?)")
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes[1].Name != "" || p.Nodes[1].Var != "" {
		t.Fatalf("? node = %v", p.Nodes[1])
	}
}

func TestParseNestedArgs(t *testing.T) {
	p, err := Parse("truck(owner(name))")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nodes) != 3 || len(p.Edges) != 2 {
		t.Fatalf("nested parse shape: %v / %v", p.Nodes, p.Edges)
	}
	has := func(from, to string) bool {
		for _, e := range p.Edges {
			if p.Nodes[e.From].Name == from && p.Nodes[e.To].Name == to && e.Label == AttributeEdgeLabel {
				return true
			}
		}
		return false
	}
	if !has("truck", "owner") || !has("owner", "name") {
		t.Fatalf("nested edges wrong: %v", p.Edges)
	}
}

func TestParseLocalKeepsFirstSegment(t *testing.T) {
	p, err := ParseLocal("car:driver")
	if err != nil {
		t.Fatal(err)
	}
	if p.Ont != "" || len(p.Nodes) != 2 {
		t.Fatalf("ParseLocal = %v", p)
	}
	if p.Nodes[0].Name != "car" {
		t.Fatalf("ParseLocal first node = %v", p.Nodes[0])
	}
}

func TestParseInSetsOntology(t *testing.T) {
	p, err := ParseIn("factory", "car:driver")
	if err != nil {
		t.Fatal(err)
	}
	if p.Ont != "factory" || len(p.Nodes) != 2 {
		t.Fatalf("ParseIn = %v", p)
	}
}

func TestParseSingleTermIsLocal(t *testing.T) {
	p, err := Parse("truck")
	if err != nil {
		t.Fatal(err)
	}
	if p.Ont != "" || len(p.Nodes) != 1 || p.Nodes[0].Name != "truck" {
		t.Fatalf("Parse(truck) = %v", p)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"truck(",
		"truck)",
		"truck(owner",
		"truck(,owner)",
		"truck((owner))",
		":car",
		"car:",
		"truck(O:)",
		"a;b",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustParse did not panic")
		}
	}()
	MustParse("(((")
}

func TestParseIdentCharacters(t *testing.T) {
	p, err := Parse("my-term_1.x")
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes[0].Name != "my-term_1.x" {
		t.Fatalf("ident chars mangled: %v", p.Nodes[0])
	}
}
