package pattern

import (
	"fmt"
	"strings"
)

// AttributeEdgeLabel is the edge label produced for parenthesised
// attribute arguments in the textual notation, mirroring
// ontology.AttributeOf (duplicated here to keep this package at the graph
// layer).
const AttributeEdgeLabel = "AttributeOf"

// Parse parses the paper's textual pattern notation (§3):
//
//	carrier:car:driver        a path in ontology carrier: node car with an
//	                          outgoing edge to node driver
//	truck(O:owner,model)      node truck with AttributeOf edges to owner and
//	                          model; variable O captures the owner's image
//	carrier:truck(O:owner)    both combined
//	factory:?x:Price          ?x is a pure variable node
//
// Following the paper, when a chain has two or more components the first
// bare component names the ontology. To parse a multi-step path without an
// ontology qualifier use ParseLocal.
func Parse(s string) (*Pattern, error) {
	elems, err := parseChain(s)
	if err != nil {
		return nil, err
	}
	ont := ""
	if len(elems) >= 2 && elems[0].bare() {
		ont = elems[0].name
		elems = elems[1:]
	}
	return build(ont, elems)
}

// ParseLocal parses the chain without treating the first component as an
// ontology name: "car:driver" is a two-node path.
func ParseLocal(s string) (*Pattern, error) {
	elems, err := parseChain(s)
	if err != nil {
		return nil, err
	}
	return build("", elems)
}

// ParseIn is ParseLocal with the resulting pattern addressed to ont.
func ParseIn(ont, s string) (*Pattern, error) {
	p, err := ParseLocal(s)
	if err != nil {
		return nil, err
	}
	p.Ont = ont
	return p, nil
}

// MustParse is Parse for static construction code; it panics on error.
func MustParse(s string) *Pattern {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

// element is one parsed chain component.
type element struct {
	name  string // "" for pure variables
	vr    string // variable name, if any
	isVar bool
	args  []element
}

func (e element) bare() bool { return !e.isVar && e.vr == "" && len(e.args) == 0 && e.name != "" }

type lexer struct {
	in  string
	pos int
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokColon
	tokLParen
	tokRParen
	tokComma
	tokQuestion
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.in) && (l.in[l.pos] == ' ' || l.in[l.pos] == '\t') {
		l.pos++
	}
	if l.pos >= len(l.in) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	switch c := l.in[l.pos]; c {
	case ':':
		l.pos++
		return token{tokColon, ":", start}, nil
	case '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case '?':
		l.pos++
		return token{tokQuestion, "?", start}, nil
	}
	end := l.pos
	for end < len(l.in) && isIdentByte(l.in, end) {
		end++
	}
	if end == l.pos {
		return token{}, fmt.Errorf("pattern: unexpected character %q at %d in %q", l.in[l.pos], l.pos, l.in)
	}
	text := l.in[l.pos:end]
	l.pos = end
	return token{tokIdent, text, start}, nil
}

func isIdentByte(s string, i int) bool {
	c := s[i]
	if c >= 0x80 {
		// Accept all non-ASCII bytes: labels may be any UTF-8 text.
		return true
	}
	return c == '_' || c == '-' || c == '.' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

type parser struct {
	lex  *lexer
	cur  token
	prev token
}

func newParser(s string) (*parser, error) {
	p := &parser{lex: &lexer{in: s}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.prev, p.cur = p.cur, t
	return nil
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	if p.cur.kind != kind {
		return token{}, fmt.Errorf("pattern: expected %s at %d in %q", what, p.cur.pos, p.lex.in)
	}
	t := p.cur
	return t, p.advance()
}

// parseChain parses element (':' element)*.
func parseChain(s string) ([]element, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("pattern: empty pattern")
	}
	p, err := newParser(s)
	if err != nil {
		return nil, err
	}
	var elems []element
	for {
		el, err := p.parseElement(false)
		if err != nil {
			return nil, err
		}
		elems = append(elems, el)
		if p.cur.kind != tokColon {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.cur.kind != tokEOF {
		return nil, fmt.Errorf("pattern: trailing input at %d in %q", p.cur.pos, p.lex.in)
	}
	return elems, nil
}

// parseElement parses [var ':'] (ident | '?' [ident]) [ '(' args ')' ].
// Variable prefixes (V:name) are only legal in argument position, because
// in chain position a leading ident followed by ':' is a path step.
func (p *parser) parseElement(argPos bool) (element, error) {
	var el element
	switch p.cur.kind {
	case tokQuestion:
		if err := p.advance(); err != nil {
			return el, err
		}
		el.isVar = true
		if p.cur.kind == tokIdent {
			el.vr = p.cur.text
			if err := p.advance(); err != nil {
				return el, err
			}
		}
	case tokIdent:
		name := p.cur.text
		if err := p.advance(); err != nil {
			return el, err
		}
		// In argument position, ident ':' ident is a variable binding.
		if argPos && p.cur.kind == tokColon {
			if err := p.advance(); err != nil {
				return el, err
			}
			el.vr = name
			switch p.cur.kind {
			case tokIdent:
				el.name = p.cur.text
				if err := p.advance(); err != nil {
					return el, err
				}
			case tokQuestion:
				if err := p.advance(); err != nil {
					return el, err
				}
				el.isVar = true
			default:
				return el, fmt.Errorf("pattern: expected term after %q: at %d in %q", name, p.cur.pos, p.lex.in)
			}
		} else {
			el.name = name
		}
	default:
		return el, fmt.Errorf("pattern: expected term at %d in %q", p.cur.pos, p.lex.in)
	}

	if p.cur.kind == tokLParen {
		if err := p.advance(); err != nil {
			return el, err
		}
		for {
			arg, err := p.parseElement(true)
			if err != nil {
				return el, err
			}
			el.args = append(el.args, arg)
			if p.cur.kind == tokComma {
				if err := p.advance(); err != nil {
					return el, err
				}
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return el, err
		}
	}
	return el, nil
}

// build converts chain elements into a Pattern: consecutive chain elements
// are linked by unconstrained edges; arguments hang off their parent via
// AttributeOf edges.
func build(ont string, elems []element) (*Pattern, error) {
	if len(elems) == 0 {
		return nil, fmt.Errorf("pattern: empty pattern")
	}
	p := &Pattern{Ont: ont}
	var addElem func(el element) int
	addElem = func(el element) int {
		idx := p.AddNode(Node{Name: el.name, Var: el.vr})
		for _, a := range el.args {
			ai := addElem(a)
			p.AddEdge(idx, AttributeEdgeLabel, ai)
		}
		return idx
	}
	prev := -1
	for _, el := range elems {
		idx := addElem(el)
		if prev >= 0 {
			p.AddEdge(prev, "", idx)
		}
		prev = idx
	}
	return p, p.Validate()
}
