// Package pattern implements ONION graph patterns (EDBT 2000, §3).
//
// A pattern P = (N', E') is itself a graph; it matches into an ontology
// graph G when a total mapping f from pattern nodes to graph nodes exists
// such that (1) corresponding node labels are identical and (2) every
// pattern edge (n1, α, n2) has a counterpart (f(n1), α, f(n2)) in G.
//
// Two relaxations from the paper are supported: the domain expert may
// supply a node-label equivalence (e.g. synonymy from a lexicon), relaxing
// condition (1), and an edge-label equivalence (or drop edge labels
// entirely), relaxing condition (2).
//
// Patterns may carry variables. A pattern node whose Name is empty is a
// pure variable and matches any node; a named node with a Var additionally
// captures its image in the match's bindings. The textual notation of the
// paper is parsed by Parse: "carrier:car:driver" (a path in the carrier
// ontology) and "truck(O:owner,model)" (a node with attribute edges, the
// variable O capturing the owner).
package pattern

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// Node is one pattern node. Name is the label to match ("" for a pure
// variable node); Var, when non-empty, records the match image under that
// name in the bindings.
type Node struct {
	Name string
	Var  string
}

// Edge connects two pattern nodes by index. An empty Label matches any
// edge label (the paper's path notation does not constrain labels).
type Edge struct {
	From  int
	Label string
	To    int
}

// Pattern is a small graph to be matched into an ontology graph. Ont
// optionally names the ontology the pattern addresses (first component of
// the paper's textual notation); the matcher itself ignores it, callers
// route on it.
type Pattern struct {
	Ont   string
	Nodes []Node
	Edges []Edge
}

// NewPath builds the path pattern n0 →α→ n1 →α→ ... for the given node
// names with every edge carrying label (use "" for unconstrained).
func NewPath(ont string, label string, names ...string) *Pattern {
	p := &Pattern{Ont: ont}
	for _, n := range names {
		p.Nodes = append(p.Nodes, Node{Name: n})
	}
	for i := 0; i+1 < len(names); i++ {
		p.Edges = append(p.Edges, Edge{From: i, Label: label, To: i + 1})
	}
	return p
}

// AddNode appends a node and returns its index.
func (p *Pattern) AddNode(n Node) int {
	p.Nodes = append(p.Nodes, n)
	return len(p.Nodes) - 1
}

// AddEdge appends an edge between node indices.
func (p *Pattern) AddEdge(from int, label string, to int) {
	p.Edges = append(p.Edges, Edge{From: from, Label: label, To: to})
}

// Validate checks structural sanity: edge endpoints in range and at least
// one node.
func (p *Pattern) Validate() error {
	if len(p.Nodes) == 0 {
		return fmt.Errorf("pattern: no nodes")
	}
	for _, e := range p.Edges {
		if e.From < 0 || e.From >= len(p.Nodes) || e.To < 0 || e.To >= len(p.Nodes) {
			return fmt.Errorf("pattern: edge %v out of range", e)
		}
	}
	return nil
}

// String renders a debug form.
func (p *Pattern) String() string {
	var b strings.Builder
	if p.Ont != "" {
		fmt.Fprintf(&b, "%s:", p.Ont)
	}
	b.WriteString("pattern{")
	for i, n := range p.Nodes {
		if i > 0 {
			b.WriteString(", ")
		}
		if n.Var != "" {
			fmt.Fprintf(&b, "%s:", n.Var)
		}
		if n.Name == "" {
			b.WriteString("?")
		} else {
			b.WriteString(n.Name)
		}
	}
	b.WriteString("; ")
	for i, e := range p.Edges {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d-[%s]->%d", e.From, e.Label, e.To)
	}
	b.WriteString("}")
	return b.String()
}

// Equiv decides whether a pattern label may match a graph label.
type Equiv func(patternLabel, graphLabel string) bool

// Options tune matching. The zero value is strict matching per §3.
type Options struct {
	// NodeEquiv relaxes node label equality (condition 1); nil means exact
	// string equality. It is only consulted for named pattern nodes.
	NodeEquiv Equiv
	// EdgeEquiv relaxes edge label equality (condition 2); nil means exact
	// equality. A pattern edge with empty label always matches any edge.
	EdgeEquiv Equiv
	// IgnoreEdgeLabels drops condition 2 entirely (the paper's "second
	// condition ... may not be strictly enforced").
	IgnoreEdgeLabels bool
	// MaxMatches bounds the number of matches returned; 0 means unlimited.
	MaxMatches int
	// Injective requires distinct pattern nodes to map to distinct graph
	// nodes. The paper's mapping is total but not necessarily injective;
	// strict subgraph isomorphism needs this on.
	Injective bool
	// DisableNarrowing turns off adjacency-based candidate narrowing and
	// enumerates full candidate lists instead. Results are identical;
	// the switch exists for the ablation benchmark quantifying what the
	// narrowing buys (BenchmarkPatternNarrowingAblation).
	DisableNarrowing bool
}

// Match is one total mapping from pattern nodes into graph nodes.
type Match struct {
	// Nodes maps pattern node index to graph node.
	Nodes []graph.NodeID
	// Bindings maps variable names to graph nodes.
	Bindings map[string]graph.NodeID
}

// Find returns every match of p into g under opts. Matches are returned in
// deterministic order. An invalid pattern yields an error.
func Find(g *graph.Graph, p *Pattern, opts Options) ([]Match, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &matcher{g: g, p: p, opts: opts}
	m.run()
	return m.results, nil
}

// Matches reports whether p matches into g at least once.
func Matches(g *graph.Graph, p *Pattern, opts Options) (bool, error) {
	opts.MaxMatches = 1
	ms, err := Find(g, p, opts)
	return len(ms) > 0, err
}

type matcher struct {
	g        *graph.Graph
	p        *Pattern
	opts     Options
	order    []int // pattern node visit order, most constrained first
	adj      [][]Edge
	assign   []graph.NodeID
	used     map[graph.NodeID]int // reference counts for injectivity
	candSets map[int]map[graph.NodeID]bool
	results  []Match
}

func (m *matcher) run() {
	n := len(m.p.Nodes)
	m.assign = make([]graph.NodeID, n)
	m.used = make(map[graph.NodeID]int)

	// Adjacency over pattern edges for incremental checking.
	m.adj = make([][]Edge, n)
	for _, e := range m.p.Edges {
		m.adj[e.From] = append(m.adj[e.From], e)
		if e.To != e.From {
			m.adj[e.To] = append(m.adj[e.To], e)
		}
	}

	// Visit order: named nodes before variables, fewer candidates first,
	// then prefer nodes connected to already-ordered ones.
	cands := make([][]graph.NodeID, n)
	for i := range m.p.Nodes {
		cands[i] = m.candidates(i)
		if len(cands[i]) == 0 {
			return // some pattern node has no possible image
		}
	}
	m.order = connectivityOrder(n, m.adj, cands)
	m.search(0, cands)
}

// candidates returns the possible images of pattern node i, sorted by id.
func (m *matcher) candidates(i int) []graph.NodeID {
	pn := m.p.Nodes[i]
	if pn.Name == "" {
		return m.g.Nodes()
	}
	if m.opts.NodeEquiv == nil {
		return m.g.NodesByLabel(pn.Name)
	}
	var out []graph.NodeID
	for _, id := range m.g.Nodes() {
		if m.opts.NodeEquiv(pn.Name, m.g.Label(id)) {
			out = append(out, id)
		}
	}
	return out
}

// connectivityOrder orders pattern nodes most-constrained-first while
// preferring nodes adjacent to already-placed ones (reduces backtracking).
func connectivityOrder(n int, adj [][]Edge, cands [][]graph.NodeID) []int {
	placed := make([]bool, n)
	order := make([]int, 0, n)
	for len(order) < n {
		best, bestScore := -1, 0
		for i := 0; i < n; i++ {
			if placed[i] {
				continue
			}
			connected := 0
			for _, e := range adj[i] {
				other := e.From
				if other == i {
					other = e.To
				}
				if placed[other] {
					connected++
				}
			}
			// Lower candidate count and higher connectivity are better.
			score := connected*1_000_000 - len(cands[i])
			if best == -1 || score > bestScore {
				best, bestScore = i, score
			}
		}
		placed[best] = true
		order = append(order, best)
	}
	return order
}

func (m *matcher) search(depth int, cands [][]graph.NodeID) bool {
	if depth == len(m.order) {
		m.emit()
		return m.opts.MaxMatches > 0 && len(m.results) >= m.opts.MaxMatches
	}
	pi := m.order[depth]
	for _, cand := range m.narrowed(pi, cands[pi]) {
		if m.opts.Injective && m.used[cand] > 0 {
			continue
		}
		if !m.consistent(pi, cand) {
			continue
		}
		m.assign[pi] = cand
		m.used[cand]++
		done := m.search(depth+1, cands)
		m.used[cand]--
		m.assign[pi] = graph.Invalid
		if done {
			return true
		}
	}
	return false
}

// narrowed restricts the candidate list of pattern node pi using graph
// adjacency: when pi has a pattern edge to an already-assigned node, only
// graph neighbours of that node's image can match, which turns variable
// nodes on paths from full scans into degree-bounded probes. The full
// consistency check still runs afterwards; narrowing is purely an
// enumeration optimisation.
func (m *matcher) narrowed(pi int, full []graph.NodeID) []graph.NodeID {
	if m.opts.DisableNarrowing {
		return full
	}
	var best []graph.NodeID
	found := false
	for _, e := range m.adj[pi] {
		var neigh []graph.NodeID
		switch {
		case e.From == pi && e.To != pi && m.assign[e.To] != graph.Invalid:
			// Need cand → assign(e.To): candidates are sources of the
			// assigned node's in-edges.
			for _, ge := range m.g.InEdges(m.assign[e.To]) {
				if m.edgeLabelOK(e.Label, ge.Label) {
					neigh = append(neigh, ge.From)
				}
			}
		case e.To == pi && e.From != pi && m.assign[e.From] != graph.Invalid:
			for _, ge := range m.g.OutEdges(m.assign[e.From]) {
				if m.edgeLabelOK(e.Label, ge.Label) {
					neigh = append(neigh, ge.To)
				}
			}
		default:
			continue
		}
		if !found || len(neigh) < len(best) {
			best, found = neigh, true
		}
	}
	if !found {
		return full
	}
	// Intersect the neighbour list with the label-feasible candidate set,
	// deduplicating while preserving sorted-ish enumeration order.
	feasible := m.candSet(pi, full)
	out := best[:0:len(best)]
	seen := make(map[graph.NodeID]bool, len(best))
	for _, id := range best {
		if !seen[id] && feasible[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sortIDs(out)
	return out
}

// edgeLabelOK mirrors edgeOK's label logic for narrowing.
func (m *matcher) edgeLabelOK(patternLabel, graphLabel string) bool {
	if patternLabel == "" || m.opts.IgnoreEdgeLabels {
		return true
	}
	if m.opts.EdgeEquiv != nil {
		return m.opts.EdgeEquiv(patternLabel, graphLabel)
	}
	return patternLabel == graphLabel
}

// candSet memoises candidate membership per pattern node.
func (m *matcher) candSet(pi int, full []graph.NodeID) map[graph.NodeID]bool {
	if m.candSets == nil {
		m.candSets = make(map[int]map[graph.NodeID]bool)
	}
	if set, ok := m.candSets[pi]; ok {
		return set
	}
	set := make(map[graph.NodeID]bool, len(full))
	for _, id := range full {
		set[id] = true
	}
	m.candSets[pi] = set
	return set
}

func sortIDs(ids []graph.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// consistent checks every pattern edge between pi and already-assigned
// nodes against the graph.
func (m *matcher) consistent(pi int, cand graph.NodeID) bool {
	for _, e := range m.adj[pi] {
		var from, to graph.NodeID
		switch {
		case e.From == pi && e.To == pi:
			from, to = cand, cand
		case e.From == pi:
			to = m.assign[e.To]
			if to == graph.Invalid {
				continue // other endpoint not assigned yet
			}
			from = cand
		default: // e.To == pi
			from = m.assign[e.From]
			if from == graph.Invalid {
				continue
			}
			to = cand
		}
		if !m.edgeOK(from, e.Label, to) {
			return false
		}
	}
	return true
}

func (m *matcher) edgeOK(from graph.NodeID, label string, to graph.NodeID) bool {
	if label == "" || m.opts.IgnoreEdgeLabels {
		if m.g.HasEdgeAnyLabel(from, to) {
			return true
		}
		return false
	}
	if m.opts.EdgeEquiv == nil {
		return m.g.HasEdge(from, label, to)
	}
	for _, e := range m.g.OutEdges(from) {
		if e.To == to && m.opts.EdgeEquiv(label, e.Label) {
			return true
		}
	}
	return false
}

func (m *matcher) emit() {
	nodes := append([]graph.NodeID(nil), m.assign...)
	var bind map[string]graph.NodeID
	for i, pn := range m.p.Nodes {
		if pn.Var != "" {
			if bind == nil {
				bind = make(map[string]graph.NodeID)
			}
			bind[pn.Var] = nodes[i]
		}
	}
	m.results = append(m.results, Match{Nodes: nodes, Bindings: bind})
}

// SortMatches orders matches lexicographically by their node images; Find
// already explores candidates in sorted order, so this is mainly useful
// after merging match sets.
func SortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i].Nodes, ms[j].Nodes
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
