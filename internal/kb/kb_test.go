package kb

import (
	"strings"
	"testing"
)

func sample(t testing.TB) *Store {
	t.Helper()
	s := New("carrier")
	s.MustAdd("MyCar", "InstanceOf", Term("PassengerCar"))
	s.MustAdd("MyCar", "Price", Number(2000))
	s.MustAdd("MyCar", "Owner", String("Alice"))
	s.MustAdd("Suv9", "Price", Number(5000))
	return s
}

func TestAddAndLen(t *testing.T) {
	s := sample(t)
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	// Duplicates are ignored.
	s.MustAdd("MyCar", "Price", Number(2000))
	if s.Len() != 4 {
		t.Fatalf("duplicate stored")
	}
	if err := s.Add("", "p", Number(1)); err == nil {
		t.Fatalf("empty subject accepted")
	}
	if err := s.Add("s", "", Number(1)); err == nil {
		t.Fatalf("empty predicate accepted")
	}
}

func TestMatchBySubject(t *testing.T) {
	s := sample(t)
	fs := s.Match("MyCar", "", nil)
	if len(fs) != 3 {
		t.Fatalf("Match(MyCar) = %v", fs)
	}
	for i := 1; i < len(fs); i++ {
		if fs[i].Predicate < fs[i-1].Predicate {
			t.Fatalf("Match results not sorted")
		}
	}
}

func TestMatchByPredicate(t *testing.T) {
	s := sample(t)
	fs := s.Match("", "Price", nil)
	if len(fs) != 2 {
		t.Fatalf("Match(Price) = %v", fs)
	}
}

func TestMatchWithObject(t *testing.T) {
	s := sample(t)
	v := Number(2000)
	fs := s.Match("", "Price", &v)
	if len(fs) != 1 || fs[0].Subject != "MyCar" {
		t.Fatalf("Match(Price=2000) = %v", fs)
	}
	w := Number(999)
	if fs := s.Match("", "Price", &w); len(fs) != 0 {
		t.Fatalf("Match(Price=999) = %v", fs)
	}
	// Subject+predicate+object all constrained.
	o := String("Alice")
	if fs := s.Match("MyCar", "Owner", &o); len(fs) != 1 {
		t.Fatalf("full Match = %v", fs)
	}
}

func TestMatchAll(t *testing.T) {
	s := sample(t)
	if fs := s.Match("", "", nil); len(fs) != 4 {
		t.Fatalf("Match(all) = %d", len(fs))
	}
}

func TestValueSemantics(t *testing.T) {
	if !Term("X").IsTerm() || Term("X").IsNumber() {
		t.Fatalf("Term kind wrong")
	}
	if !Number(1).IsNumber() {
		t.Fatalf("Number kind wrong")
	}
	if Term("a").Equal(String("a")) {
		t.Fatalf("cross-kind Equal")
	}
	if !Number(2).Equal(Number(2)) || Number(2).Equal(Number(3)) {
		t.Fatalf("Number Equal wrong")
	}
	if !Number(1).Less(Number(2)) || Number(2).Less(Number(1)) {
		t.Fatalf("Number Less wrong")
	}
	if !Term("x").Less(String("a")) { // kind order: term < string
		t.Fatalf("kind ordering wrong")
	}
	if String("ab").Format() != `"ab"` {
		t.Fatalf("String Format = %q", String("ab").Format())
	}
	if Number(2.5).Format() != "2.5" {
		t.Fatalf("Number Format = %q", Number(2.5).Format())
	}
	if Term("T").Format() != "T" {
		t.Fatalf("Term Format = %q", Term("T").Format())
	}
}

func TestSubjectsAndPredicates(t *testing.T) {
	s := sample(t)
	subs := s.Subjects()
	if len(subs) != 2 || subs[0] != "MyCar" || subs[1] != "Suv9" {
		t.Fatalf("Subjects = %v", subs)
	}
	preds := s.Predicates()
	if len(preds) != 3 {
		t.Fatalf("Predicates = %v", preds)
	}
}

func TestStringDump(t *testing.T) {
	s := sample(t)
	out := s.String()
	if !strings.Contains(out, "kb carrier (4 facts)") {
		t.Fatalf("String header wrong:\n%s", out)
	}
	if !strings.Contains(out, `MyCar Owner "Alice"`) {
		t.Fatalf("String missing fact:\n%s", out)
	}
	if s.String() != s.String() {
		t.Fatalf("String unstable")
	}
}

func TestEpochBumpsOnInsertOnly(t *testing.T) {
	s := New("carrier")
	if s.Epoch() != 0 {
		t.Fatalf("fresh store epoch = %d", s.Epoch())
	}
	s.MustAdd("MyCar", "Price", Number(3000))
	e1 := s.Epoch()
	if e1 == 0 {
		t.Fatalf("insert did not bump epoch")
	}
	// A duplicate is ignored and must not bump: equal epochs promise an
	// unchanged fact set to cache validators.
	s.MustAdd("MyCar", "Price", Number(3000))
	if s.Epoch() != e1 {
		t.Fatalf("duplicate add bumped epoch: %d -> %d", e1, s.Epoch())
	}
	s.MustAdd("MyCar", "Owner", String("Alice"))
	if s.Epoch() <= e1 {
		t.Fatalf("second insert did not bump epoch: %d -> %d", e1, s.Epoch())
	}
	if err := s.Add("", "Price", Number(1)); err == nil || s.Epoch() != e1+1 {
		t.Fatalf("rejected add must not bump epoch (err=%v, epoch=%d)", err, s.Epoch())
	}
}
