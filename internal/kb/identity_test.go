package kb

import (
	"encoding/binary"
	"fmt"
	"math"
	"testing"
)

// TestAddKindCollisionRegression is the PR 6 headline regression: the
// seed deduped on Fact.String(), whose Format() rendering collides
// distinct values, so the second fact of each pair below was silently
// dropped and the epoch never bumped (the serving cache then provably
// served stale rows).
func TestAddKindCollisionRegression(t *testing.T) {
	pairs := [][2]Value{
		{Term("3000"), Number(3000)},
		{Term(`"x"`), String("x")},
		{String("3000"), Number(3000)},
	}
	for _, p := range pairs {
		s := New("src")
		s.MustAdd("s", "p", p[0])
		e1 := s.Epoch()
		s.MustAdd("s", "p", p[1])
		if s.Len() != 2 {
			t.Errorf("Add(%s then %s): %d facts, want 2 (kind collision)",
				p[0].Format(), p[1].Format(), s.Len())
		}
		if s.Epoch() != e1+1 {
			t.Errorf("Add(%s then %s): epoch %d after second add, want %d (stale-epoch bug)",
				p[0].Format(), p[1].Format(), s.Epoch(), e1+1)
		}
	}
}

// TestAddFramingSafety: length framing keeps subject/predicate/object
// boundary shifts from colliding.
func TestAddFramingSafety(t *testing.T) {
	s := New("src")
	s.MustAdd("ab", "c", Term("d"))
	s.MustAdd("a", "bc", Term("d"))
	s.MustAdd("a", "b", Term("cd"))
	s.MustAdd("a\x00b", "c", Term("d"))
	s.MustAdd("a", "\x00bc", Term("d"))
	if s.Len() != 5 {
		t.Fatalf("%d facts, want 5 distinct", s.Len())
	}
	// Exact duplicates still dedup.
	s.MustAdd("ab", "c", Term("d"))
	if s.Len() != 5 {
		t.Fatalf("duplicate re-add inserted: %d facts", s.Len())
	}
}

// TestAddEqualSemantics: dedup follows Value.Equal exactly — ±0 are one
// value, NaN equals nothing (so NaN facts always insert).
func TestAddEqualSemantics(t *testing.T) {
	s := New("src")
	s.MustAdd("s", "p", Number(0))
	s.MustAdd("s", "p", Number(math.Copysign(0, -1)))
	if s.Len() != 1 {
		t.Fatalf("+0/-0 did not dedup: %d facts", s.Len())
	}
	s.MustAdd("s", "p", Number(math.NaN()))
	s.MustAdd("s", "p", Number(math.NaN()))
	if s.Len() != 3 {
		t.Fatalf("NaN adds: %d facts, want 3 (NaN never equals an existing fact)", s.Len())
	}
}

// TestRestoreMatchesAdds: Restore rebuilds indexes and epoch, and the
// lazily built dedup index still rejects duplicates on the next Add.
func TestRestoreMatchesAdds(t *testing.T) {
	src := New("src")
	for i := 0; i < 100; i++ {
		src.MustAdd(fmt.Sprintf("s%d", i/10), fmt.Sprintf("p%d", i%7), Number(float64(i)))
	}
	got, err := Restore("src", src.Facts(), src.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != src.Len() || got.Epoch() != src.Epoch() {
		t.Fatalf("restore: %d facts epoch %d, want %d/%d", got.Len(), got.Epoch(), src.Len(), src.Epoch())
	}
	if len(got.Match("s3", "p4", nil)) != len(src.Match("s3", "p4", nil)) {
		t.Fatalf("restored indexes diverge")
	}
	got.MustAdd("s0", "p0", Number(0)) // duplicate of i=0
	if got.Len() != src.Len() {
		t.Fatalf("restored store accepted a duplicate")
	}
	got.MustAdd("fresh", "p", Term("v"))
	if got.Len() != src.Len()+1 || got.Epoch() != src.Epoch()+1 {
		t.Fatalf("restored store refused a fresh fact")
	}
	if _, err := Restore("src", src.Facts(), 3); err == nil {
		t.Fatalf("Restore accepted an epoch below the insert count")
	}
}

// journalFunc adapts a func to the Journal interface.
type journalFunc func(f Fact, epoch uint64) error

func (j journalFunc) Append(f Fact, epoch uint64) error { return j(f, epoch) }

// TestJournalWriteAhead: the journal sees every effective insert (not
// duplicates) with the post-insert epoch, before the store mutates; an
// append error vetoes the insert.
func TestJournalWriteAhead(t *testing.T) {
	s := New("src")
	s.MustAdd("pre", "p", Term("v")) // pre-journal fact, never replayed
	var seen []Fact
	var epochs []uint64
	fail := false
	s.SetJournal(journalFunc(func(f Fact, epoch uint64) error {
		if fail {
			return fmt.Errorf("disk full")
		}
		seen = append(seen, f)
		epochs = append(epochs, epoch)
		return nil
	}))
	s.MustAdd("a", "p", Term("v"))
	s.MustAdd("a", "p", Term("v")) // duplicate: not journaled
	s.MustAdd("b", "p", Number(1))
	if len(seen) != 2 || seen[0].Subject != "a" || seen[1].Subject != "b" {
		t.Fatalf("journal saw %v, want the two effective inserts", seen)
	}
	if epochs[0] != 2 || epochs[1] != 3 {
		t.Fatalf("journal epochs %v, want [2 3]", epochs)
	}
	fail = true
	if err := s.Add("c", "p", Term("v")); err == nil {
		t.Fatalf("Add swallowed a journal error")
	}
	if s.Len() != 3 || s.Epoch() != 3 {
		t.Fatalf("vetoed insert mutated the store: len %d epoch %d", s.Len(), s.Epoch())
	}
	if len(s.Match("c", "p", nil)) != 0 {
		t.Fatalf("vetoed fact is visible")
	}
}

// fuzzValue decodes a fuzz payload into a Value deterministically.
func fuzzValue(kind uint8, str string, bits uint64) Value {
	switch kind % 3 {
	case 0:
		return Term(str)
	case 1:
		return String(str)
	default:
		return Number(math.Float64frombits(bits))
	}
}

// FuzzFactIdentity: for random value pairs, two Adds under one
// subject/predicate dedup iff Value.Equal — the store's documented
// identity. Run in CI's race job via its seed corpus and in the fuzz
// smoke step.
func FuzzFactIdentity(f *testing.F) {
	f.Add(uint8(0), "3000", uint64(0), uint8(2), "", math.Float64bits(3000))
	f.Add(uint8(0), `"x"`, uint64(0), uint8(1), "x", uint64(0))
	f.Add(uint8(2), "", math.Float64bits(0), uint8(2), "", math.Float64bits(math.Copysign(0, -1)))
	f.Add(uint8(2), "", uint64(0x7FF8000000000001), uint8(2), "", uint64(0x7FF8000000000001))
	f.Add(uint8(0), "a\x00b", uint64(0), uint8(0), "a", uint64(0))
	f.Fuzz(func(t *testing.T, k1 uint8, s1 string, b1 uint64, k2 uint8, s2 string, b2 uint64) {
		v1, v2 := fuzzValue(k1, s1, b1), fuzzValue(k2, s2, b2)
		st := New("fuzz")
		st.MustAdd("s", "p", v1)
		st.MustAdd("s", "p", v2)
		wantLen := 2
		if v1.Equal(v2) {
			wantLen = 1
		}
		if st.Len() != wantLen {
			t.Fatalf("Add(%#v) then Add(%#v): %d facts, want %d (Equal=%v)",
				v1, v2, st.Len(), wantLen, v1.Equal(v2))
		}
		if st.Epoch() != uint64(wantLen) {
			t.Fatalf("epoch %d, want %d", st.Epoch(), wantLen)
		}
		// The subject/predicate framing must never leak into the value:
		// shifting bytes across the boundary is a distinct fact.
		st2 := New("fuzz2")
		st2.MustAdd("s"+s1, "p", v2)
		if s1 != "" && st2.Len() != 1 {
			t.Fatalf("unexpected state")
		}
	})
}

// TestFactKeyInjective cross-checks factKey against Value.Equal over the
// codec corpus directly (the map-free property the fuzz target samples).
func TestFactKeyInjective(t *testing.T) {
	vals := []Value{
		Term("3000"), Number(3000), String("3000"), Term(`"x"`), String("x"),
		Term(""), String(""), Term("a\x00b"), Number(0), Number(math.Copysign(0, -1)),
		Number(math.Inf(1)), Number(1.5),
	}
	for _, v := range vals {
		for _, w := range vals {
			kv := string(factKey(nil, Fact{Subject: "s", Predicate: "p", Object: v}))
			kw := string(factKey(nil, Fact{Subject: "s", Predicate: "p", Object: w}))
			if (kv == kw) != v.Equal(w) {
				t.Errorf("factKey(%s) vs factKey(%s): equal=%v, Value.Equal=%v",
					v.Format(), w.Format(), kv == kw, v.Equal(w))
			}
		}
	}
	// Sanity: the key really is length-framed (uvarint prefixes), so a
	// crafted subject cannot absorb the predicate.
	k := factKey(nil, Fact{Subject: "ab", Predicate: "c", Object: Term("d")})
	n, sz := binary.Uvarint(k)
	if sz <= 0 || n != 2 {
		t.Fatalf("subject frame = %d (%d bytes), want 2", n, sz)
	}
}
