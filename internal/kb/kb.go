// Package kb is the knowledge-base substrate beneath each source ontology
// (EDBT 2000, §2.1, Fig. 1: the knowledge bases KB1..KB3 under the
// ontology graphs).
//
// ONION's query system reformulates articulation-level queries and
// executes them "against the sources involved"; something must hold the
// instance data those plans scan. The paper's sources are external (web
// sources, databases); this in-memory triple store is the synthetic
// equivalent that exercises the same plan/scan/join path.
package kb

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// ValueKind discriminates Value.
type ValueKind uint8

// Value kinds: a term (node in some ontology/KB), a string literal, or a
// numeric literal.
const (
	KindTerm ValueKind = iota
	KindString
	KindNumber
)

// Value is an object position of a fact: a term name, a string literal or
// a number.
type Value struct {
	Kind ValueKind
	Str  string
	Num  float64
}

// Term builds a term value.
func Term(name string) Value { return Value{Kind: KindTerm, Str: name} }

// String builds a string-literal value. (Shadowing the fmt.Stringer name
// is deliberate: kb.String("x") reads as a constructor, and Value itself
// implements fmt.Stringer via Format.)
func String(s string) Value { return Value{Kind: KindString, Str: s} }

// Number builds a numeric value.
func Number(n float64) Value { return Value{Kind: KindNumber, Num: n} }

// IsTerm reports whether the value is a term.
func (v Value) IsTerm() bool { return v.Kind == KindTerm }

// IsNumber reports whether the value is numeric.
func (v Value) IsNumber() bool { return v.Kind == KindNumber }

// Format renders the value: terms bare, strings quoted, numbers in
// minimal decimal form.
func (v Value) Format() string {
	switch v.Kind {
	case KindString:
		return strconv.Quote(v.Str)
	case KindNumber:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	default:
		return v.Str
	}
}

// Equal compares values strictly (kind and payload).
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		return false
	}
	if v.Kind == KindNumber {
		return v.Num == w.Num
	}
	return v.Str == w.Str
}

// Less orders values deterministically: by kind, then payload.
func (v Value) Less(w Value) bool {
	if v.Kind != w.Kind {
		return v.Kind < w.Kind
	}
	if v.Kind == KindNumber {
		return v.Num < w.Num
	}
	return v.Str < w.Str
}

// Fact is one (subject, predicate, object) statement about instances.
type Fact struct {
	Subject   string
	Predicate string
	Object    Value
}

// String renders the fact.
func (f Fact) String() string {
	return fmt.Sprintf("%s %s %s", f.Subject, f.Predicate, f.Object.Format())
}

// Journal receives every effective insert of a durable store before it
// is applied, in insertion order, carrying the epoch the store will be
// at once the fact lands. An Append error vetoes the insert: the store
// is unchanged and Add returns the error, so the in-memory state is
// always a prefix-closed subset of what the journal accepted
// (write-ahead semantics). internal/persist implements it with an
// append-only fact log.
type Journal interface {
	Append(f Fact, epoch uint64) error
}

// Store is an indexed in-memory fact store for one knowledge source. The
// zero value is not usable; call New (or Restore, for recovery paths).
// The //onion:index markers below declare the store's query-visible
// state for the epochbump analyzer: an exported method that writes a
// marked field without touching the epoch is rejected by onionlint
// (the PR 6 dedup bug was exactly such a skipped bump). Scratch fields
// (keyBuf) and non-state wiring (journal) stay unmarked.
type Store struct {
	name   string
	facts  []Fact           //onion:index
	bySubj map[string][]int //onion:index
	byPred map[string][]int //onion:index
	// existing is the dedup index, keyed by factKey — a kind-tagged,
	// length-framed identity (NOT Fact.String(), whose Format()
	// rendering collides distinct values: Term("3000") and Number(3000)
	// both render `3000`). nil after Restore until the first Add needs
	// it; see ensureDedup.
	existing map[string]struct{} //onion:index
	keyBuf   []byte              // factKey scratch, reused across Adds
	journal  Journal             // nil unless the store is durable (SetJournal)
	// epoch counts effective mutations (facts actually inserted; ignored
	// duplicates do not bump it). Query engines validate their cached
	// plans against it, and the serving layer's result cache keys on it.
	epoch atomic.Uint64
}

// New returns an empty store named after its knowledge source (usually
// the owning ontology).
func New(name string) *Store {
	return &Store{
		name:     name,
		bySubj:   make(map[string][]int),
		byPred:   make(map[string][]int),
		existing: make(map[string]struct{}),
	}
}

// Restore rebuilds a store from recovered facts at a recorded epoch —
// the persistence layer's cold-start constructor. The facts are trusted
// to be valid and mutually distinct (a fact log only ever records
// effective inserts, so snapshot+log replay satisfies this by
// construction): Restore builds the scan indexes directly and defers the
// dedup index until the first post-restore Add needs it, which is what
// makes loading a snapshot measurably cheaper than re-Adding every fact
// (E16). epoch must be at least len(facts) — every insert bumped it once.
func Restore(name string, facts []Fact, epoch uint64) (*Store, error) {
	s := New(name)
	s.existing = nil // rebuilt lazily by ensureDedup
	s.facts = append(s.facts, facts...)
	for i, f := range facts {
		if f.Subject == "" || f.Predicate == "" {
			return nil, fmt.Errorf("kb %s: restore: fact %d needs subject and predicate", name, i)
		}
		s.bySubj[f.Subject] = append(s.bySubj[f.Subject], i)
		s.byPred[f.Predicate] = append(s.byPred[f.Predicate], i)
	}
	if epoch < uint64(len(facts)) {
		return nil, fmt.Errorf("kb %s: restore: epoch %d below %d recovered inserts", name, epoch, len(facts))
	}
	s.epoch.Store(epoch)
	return s, nil
}

// SetJournal makes the store durable: every subsequent effective insert
// is offered to j before it is applied (see Journal). Facts already in
// the store are not replayed — the persistence layer snapshots them
// instead. Passing nil detaches the journal.
func (s *Store) SetJournal(j Journal) { s.journal = j }

// Name returns the store's source name.
func (s *Store) Name() string { return s.name }

// Len returns the number of facts.
func (s *Store) Len() int { return len(s.facts) }

// Epoch returns the store's mutation epoch: bumped by every fact actually
// inserted (a duplicate Add leaves it unchanged). Epoch reads are atomic
// and may run concurrently with other readers; mutation itself remains
// single-writer, serialised by the store's owner.
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

// factKey appends f's dedup identity to buf: subject and predicate
// length-framed, the object kind-tagged — so the key is injective
// exactly up to Value.Equal. The seed keyed on Fact.String(), whose
// Format() rendering is kind-blind and framing-ambiguous: Term("3000")
// vs Number(3000) and Term(`"x"`) vs String("x") rendered identically,
// so the second distinct fact was silently dropped and the epoch never
// bumped — the serving layer then provably served stale cached rows.
// Numbers key on the IEEE bit image with -0 canonicalised to +0, because
// Value.Equal (Num == Num) calls them equal; NaN objects never reach
// this key (see Add).
func factKey(buf []byte, f Fact) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(f.Subject)))
	buf = append(buf, f.Subject...)
	buf = binary.AppendUvarint(buf, uint64(len(f.Predicate)))
	buf = append(buf, f.Predicate...)
	buf = append(buf, byte(f.Object.Kind))
	if f.Object.Kind == KindNumber {
		bits := math.Float64bits(f.Object.Num)
		if f.Object.Num == 0 {
			bits = 0 // +0 and -0 are Equal, so they share one key
		}
		return binary.BigEndian.AppendUint64(buf, bits)
	}
	return append(buf, f.Object.Str...)
}

// ensureDedup materialises the dedup index when a restored store first
// needs it (Restore defers it so cold starts serve immediately).
func (s *Store) ensureDedup() {
	if s.existing != nil {
		return
	}
	s.existing = make(map[string]struct{}, len(s.facts))
	for _, f := range s.facts {
		if f.Object.IsNumber() && math.IsNaN(f.Object.Num) {
			continue
		}
		s.keyBuf = factKey(s.keyBuf[:0], f)
		s.existing[string(s.keyBuf)] = struct{}{}
	}
}

// Add inserts a fact (duplicates are ignored). Empty subjects or
// predicates are rejected. Duplicate detection follows Value.Equal
// exactly: kind-strict (Term("3000") and Number(3000) are distinct
// facts), +0 and -0 are one value, and a NaN object never equals any
// existing fact — including a byte-identical one — so NaN facts always
// insert. On a durable store the insert is offered to the journal first;
// a journal error leaves the store unchanged.
func (s *Store) Add(subject, predicate string, object Value) error {
	if subject == "" || predicate == "" {
		return fmt.Errorf("kb %s: fact needs subject and predicate", s.name)
	}
	f := Fact{Subject: subject, Predicate: predicate, Object: object}
	dedupable := !(object.Kind == KindNumber && math.IsNaN(object.Num))
	if dedupable {
		s.ensureDedup()
		s.keyBuf = factKey(s.keyBuf[:0], f)
		if _, dup := s.existing[string(s.keyBuf)]; dup {
			return nil
		}
	}
	if s.journal != nil {
		if err := s.journal.Append(f, s.epoch.Load()+1); err != nil {
			return fmt.Errorf("kb %s: journal: %w", s.name, err)
		}
	}
	if dedupable {
		s.existing[string(s.keyBuf)] = struct{}{}
	}
	idx := len(s.facts)
	s.facts = append(s.facts, f)
	s.bySubj[subject] = append(s.bySubj[subject], idx)
	s.byPred[predicate] = append(s.byPred[predicate], idx)
	s.epoch.Add(1)
	return nil
}

// MustAdd is Add for fixtures; it panics on error.
func (s *Store) MustAdd(subject, predicate string, object Value) {
	if err := s.Add(subject, predicate, object); err != nil {
		panic(err)
	}
}

// Match returns facts matching the given constraints; empty subject or
// predicate and nil object match anything. Results are sorted.
func (s *Store) Match(subject, predicate string, object *Value) []Fact {
	var idxs []int
	switch {
	case subject != "":
		idxs = s.bySubj[subject]
	case predicate != "":
		idxs = s.byPred[predicate]
	default:
		idxs = make([]int, len(s.facts))
		for i := range s.facts {
			idxs[i] = i
		}
	}
	var out []Fact
	for _, i := range idxs {
		f := s.facts[i]
		if subject != "" && f.Subject != subject {
			continue
		}
		if predicate != "" && f.Predicate != predicate {
			continue
		}
		if object != nil && !f.Object.Equal(*object) {
			continue
		}
		out = append(out, f)
	}
	SortFacts(out)
	return out
}

// CountByPredicate returns the number of facts carrying the predicate
// without materialising them — the query planner's selectivity probe.
func (s *Store) CountByPredicate(pred string) int { return len(s.byPred[pred]) }

// CountBySubject returns the number of facts about the subject without
// materialising them.
func (s *Store) CountBySubject(subject string) int { return len(s.bySubj[subject]) }

// ForEach streams every fact in insertion order without copying or
// sorting; fn returning false stops the walk.
func (s *Store) ForEach(fn func(Fact) bool) {
	for _, f := range s.facts {
		if !fn(f) {
			return
		}
	}
}

// ForEachByPredicate streams the facts carrying the predicate via the
// predicate index; fn returning false stops the walk.
func (s *Store) ForEachByPredicate(pred string, fn func(Fact) bool) {
	for _, i := range s.byPred[pred] {
		if !fn(s.facts[i]) {
			return
		}
	}
}

// ForEachByPredicateIndexed is ForEachByPredicate with each fact's store
// ordinal: callers that maintain fact-aligned caches (the query engine's
// qualified-term cache) key them by ordinal. The fact log is append-only
// — Add appends, duplicates are rejected, nothing reorders — so a cache
// built at one epoch stays valid for every ordinal below its length.
func (s *Store) ForEachByPredicateIndexed(pred string, fn func(i int, f Fact) bool) {
	for _, i := range s.byPred[pred] {
		if !fn(i, s.facts[i]) {
			return
		}
	}
}

// ForEachBySubject streams the facts about the subject via the subject
// index; fn returning false stops the walk.
func (s *Store) ForEachBySubject(subject string, fn func(Fact) bool) {
	for _, i := range s.bySubj[subject] {
		if !fn(s.facts[i]) {
			return
		}
	}
}

// Facts returns every fact, sorted.
func (s *Store) Facts() []Fact {
	out := append([]Fact(nil), s.facts...)
	SortFacts(out)
	return out
}

// Subjects returns the distinct subjects, sorted.
func (s *Store) Subjects() []string {
	out := make([]string, 0, len(s.bySubj))
	for subj := range s.bySubj {
		out = append(out, subj)
	}
	sort.Strings(out)
	return out
}

// Predicates returns the distinct predicates, sorted.
func (s *Store) Predicates() []string {
	out := make([]string, 0, len(s.byPred))
	for p := range s.byPred {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// String renders a sorted dump.
func (s *Store) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kb %s (%d facts)\n", s.name, len(s.facts))
	for _, f := range s.Facts() {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}

// SortFacts orders facts by (Subject, Predicate, Object).
func SortFacts(fs []Fact) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		if a.Predicate != b.Predicate {
			return a.Predicate < b.Predicate
		}
		return a.Object.Less(b.Object)
	})
}
