package obs

import (
	"strconv"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span (row counts, byte sizes,
// cache outcomes). Values are strings so the span tree marshals to
// JSON without interface boxing.
type Attr struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// Span is one timed region of a traced operation. Spans form a tree:
// the root is created by NewTrace, children by Child. Start offsets
// are nanoseconds from the root's start, so a marshaled tree is
// self-contained without wall-clock timestamps.
//
// The nil *Span is the disabled recorder: every method is a
// nil-receiver no-op that allocates nothing, so instrumented code
// threads spans unconditionally and pays only a nil check when tracing
// is off. Callers must still guard any argument computation that
// allocates (fmt.Sprintf and friends) behind an explicit nil check.
//
// Children and attributes may be added from concurrent goroutines (the
// executor's scan and stage workers); reading the tree — marshaling,
// Tree — is safe only after the traced operation has finished.
type Span struct {
	Name     string  `json:"name"`
	StartNs  int64   `json:"start_ns"`
	DurNs    int64   `json:"dur_ns"`
	Attrs    []Attr  `json:"attrs,omitempty"`
	Children []*Span `json:"children,omitempty"`

	mu    sync.Mutex
	epoch time.Time // the root's start, shared by the whole tree
	begun time.Time
}

// NewTrace starts a new root span.
func NewTrace(name string) *Span {
	now := time.Now()
	return &Span{Name: name, epoch: now, begun: now}
}

// Child starts a new span under s and returns it. Safe for concurrent
// use; returns nil when s is nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	now := time.Now()
	c := &Span{Name: name, StartNs: now.Sub(s.epoch).Nanoseconds(), epoch: s.epoch, begun: now}
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
	return c
}

// End records the span's duration. Ending twice keeps the first
// measurement.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.begun).Nanoseconds()
	s.mu.Lock()
	if s.DurNs == 0 {
		s.DurNs = d
	}
	s.mu.Unlock()
}

// SetAttr attaches a key/value annotation.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: val})
	s.mu.Unlock()
}

// SetInt attaches an integer annotation.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// Duration returns the recorded duration (zero until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Duration(s.DurNs)
}

// Find returns the first span named name in a preorder walk of the
// tree rooted at s, or nil. Test and tooling helper; call only after
// the trace has settled.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}

// Tree renders the span tree as indented text, one span per line:
//
//	serve.request 1.204ms
//	  execute 1.101ms rows=42
//	    step 1: ?x InstanceOf Vehicle 0.412ms
//
// Call only after the traced operation has finished.
func (s *Span) Tree() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.tree(&b, 0)
	return b.String()
}

func (s *Span) tree(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(s.Name)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatFloat(float64(s.DurNs)/1e6, 'f', 3, 64))
	b.WriteString("ms")
	for _, a := range s.Attrs {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Val)
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		c.tree(b, depth+1)
	}
}
