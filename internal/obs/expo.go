package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// WriteTo renders the registry in Prometheus text exposition format
// (version 0.0.4): one # HELP and # TYPE line per family, then its
// samples, families sorted by name and children by label value so the
// output is deterministic and golden-testable.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	for _, f := range r.families() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, lv := range f.labelValues() {
			f.writeChild(bw, lv)
		}
	}
	err := bw.Flush()
	return cw.n, err
}

// ServeHTTP makes a Registry an http.Handler serving its exposition.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WriteTo(w)
}

// Handler returns the Default registry as an http.Handler — oniond's
// GET /metrics endpoint.
func Handler() http.Handler { return Default }

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// writeChild renders the samples of one child (label value lv; "" for
// unlabeled families).
func (f *family) writeChild(w *bufio.Writer, lv string) {
	switch f.typ {
	case "counter":
		f.mu.RLock()
		c := f.counters[lv]
		f.mu.RUnlock()
		if c == nil {
			return
		}
		fmt.Fprintf(w, "%s%s %s\n", f.name, f.labelPairs(lv, "", 0), formatUint(c.Value()))
	case "gauge":
		f.mu.RLock()
		g := f.gauges[lv]
		f.mu.RUnlock()
		if g == nil {
			return
		}
		fmt.Fprintf(w, "%s%s %s\n", f.name, f.labelPairs(lv, "", 0), strconv.FormatInt(g.Value(), 10))
	case "histogram":
		f.mu.RLock()
		h := f.hists[lv]
		f.mu.RUnlock()
		if h == nil {
			return
		}
		cum, count, sum := h.snapshot()
		for i, b := range h.bounds {
			fmt.Fprintf(w, "%s_bucket%s %s\n", f.name, f.labelPairs(lv, "le", b), formatUint(cum[i]))
		}
		fmt.Fprintf(w, "%s_bucket%s %s\n", f.name, f.labelPairsInf(lv), formatUint(cum[len(h.bounds)]))
		fmt.Fprintf(w, "%s_sum%s %s\n", f.name, f.labelPairs(lv, "", 0), formatFloat(sum))
		fmt.Fprintf(w, "%s_count%s %s\n", f.name, f.labelPairs(lv, "", 0), formatUint(count))
	}
}

// labelPairs renders the {k="v",...} block for a sample: the family's
// own label (if any) plus an optional le bound for histogram buckets.
func (f *family) labelPairs(lv, le string, bound float64) string {
	var parts []string
	if f.label != "" {
		parts = append(parts, f.label+`="`+escapeLabel(lv)+`"`)
	}
	if le != "" {
		parts = append(parts, le+`="`+formatFloat(bound)+`"`)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func (f *family) labelPairsInf(lv string) string {
	if f.label != "" {
		return "{" + f.label + `="` + escapeLabel(lv) + `",le="+Inf"}`
	}
	return `{le="+Inf"}`
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

func validMetricName(s string) bool { return metricNameRe.MatchString(s) }
func validLabelName(s string) bool  { return labelNameRe.MatchString(s) }

// ValidateExposition checks text against the Prometheus text exposition
// format, promtool-style: well-formed HELP/TYPE comments, parseable
// samples, TYPE before the samples it covers, no duplicate series, and
// for histogram families a +Inf bucket with non-decreasing cumulative
// counts that agree with _count. It returns the first violation, nil
// when the input is clean. This is the in-tree gate used by the
// exposition golden test and oniond's -check-metrics mode.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	typed := make(map[string]string)  // family -> type
	sampled := make(map[string]bool)  // family -> samples seen
	series := make(map[string]bool)   // name + sorted labelset
	hists := make(map[string]*histCheck)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if err := validateComment(text, typed, sampled); err != nil {
				return fmt.Errorf("line %d: %w", line, err)
			}
			continue
		}
		s, err := parseSample(text)
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		fam := s.name
		if typ, base := histBase(s.name, typed); typ {
			fam = base
		}
		if t, ok := typed[fam]; ok {
			sampled[fam] = true
			if t == "histogram" {
				hc := hists[fam]
				if hc == nil {
					hc = &histCheck{buckets: make(map[string][]bucketSample),
						counts: make(map[string]float64), haveCount: make(map[string]bool)}
					hists[fam] = hc
				}
				if err := hc.add(fam, s); err != nil {
					return fmt.Errorf("line %d: %w", line, err)
				}
			}
		} else {
			sampled[s.name] = true // untyped family; still deduped below
		}
		key := s.name + "|" + s.labelKey()
		if series[key] {
			return fmt.Errorf("line %d: duplicate series %s", line, text)
		}
		series[key] = true
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("obs: reading exposition: %w", err)
	}
	for fam, hc := range hists {
		if err := hc.finish(fam); err != nil {
			return err
		}
	}
	return nil
}

func validateComment(text string, typed map[string]string, sampled map[string]bool) error {
	fields := strings.SplitN(text, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment, allowed
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", text)
		}
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE comment %q", text)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validMetricName(name) {
			return fmt.Errorf("invalid metric name in TYPE comment %q", text)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if _, dup := typed[name]; dup {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		if sampled[name] {
			return fmt.Errorf("TYPE for %s after its samples", name)
		}
		typed[name] = typ
	}
	return nil
}

type sample struct {
	name   string
	labels [][2]string
	value  float64
}

func (s *sample) label(k string) (string, bool) {
	for _, p := range s.labels {
		if p[0] == k {
			return p[1], true
		}
	}
	return "", false
}

// labelKey renders the sorted labelset for series dedup.
func (s *sample) labelKey() string {
	pairs := make([]string, len(s.labels))
	for i, p := range s.labels {
		pairs[i] = p[0] + "=" + p[1]
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

// parseSample parses `name{k="v",...} value [timestamp]`.
func parseSample(text string) (*sample, error) {
	s := &sample{}
	i := strings.IndexAny(text, "{ ")
	if i < 0 {
		return nil, fmt.Errorf("malformed sample %q", text)
	}
	s.name = text[:i]
	if !validMetricName(s.name) {
		return nil, fmt.Errorf("invalid metric name %q", s.name)
	}
	rest := text[i:]
	if rest[0] == '{' {
		body, tail, err := parseLabels(rest[1:])
		if err != nil {
			return nil, fmt.Errorf("sample %q: %w", text, err)
		}
		s.labels = body
		rest = tail
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return nil, fmt.Errorf("malformed sample value in %q", text)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return nil, fmt.Errorf("sample %q: bad value: %w", text, err)
	}
	s.value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return nil, fmt.Errorf("sample %q: bad timestamp: %w", text, err)
		}
	}
	return s, nil
}

// parseLabels consumes `k="v",...}` and returns the pairs plus the
// remaining text after the closing brace.
func parseLabels(text string) ([][2]string, string, error) {
	var out [][2]string
	for {
		text = strings.TrimLeft(text, " ,")
		if text == "" {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		if text[0] == '}' {
			return out, text[1:], nil
		}
		eq := strings.IndexByte(text, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		name := strings.TrimSpace(text[:eq])
		if !validLabelName(name) {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		text = text[eq+1:]
		if len(text) == 0 || text[0] != '"' {
			return nil, "", fmt.Errorf("label %s: unquoted value", name)
		}
		var b strings.Builder
		i := 1
		for {
			if i >= len(text) {
				return nil, "", fmt.Errorf("label %s: unterminated value", name)
			}
			c := text[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(text) {
					return nil, "", fmt.Errorf("label %s: dangling escape", name)
				}
				switch text[i+1] {
				case '\\', '"':
					b.WriteByte(text[i+1])
				case 'n':
					b.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: bad escape \\%c", name, text[i+1])
				}
				i += 2
				continue
			}
			b.WriteByte(c)
			i++
		}
		out = append(out, [2]string{name, b.String()})
		text = text[i:]
	}
}

// histBase reports whether name is a histogram-suffixed sample of a
// family declared with TYPE histogram, returning the base family name.
func histBase(name string, typed map[string]string) (bool, string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && typed[base] == "histogram" {
			return true, base
		}
	}
	// A bare histogram family name as a sample is malformed, but the
	// generic sample checks already accept it as an untyped series.
	return false, name
}

type bucketSample struct {
	le    float64
	count float64
}

// histCheck accumulates one histogram family's samples per labelset
// (excluding le) for the structural checks.
type histCheck struct {
	buckets   map[string][]bucketSample
	counts    map[string]float64
	haveCount map[string]bool
}

func (hc *histCheck) add(fam string, s *sample) error {
	// Key the child by its labels minus le.
	var rest []string
	var le string
	for _, p := range s.labels {
		if p[0] == "le" {
			le = p[1]
			continue
		}
		rest = append(rest, p[0]+"="+p[1])
	}
	sort.Strings(rest)
	key := strings.Join(rest, ",")
	switch {
	case strings.HasSuffix(s.name, "_bucket"):
		if le == "" {
			return fmt.Errorf("%s_bucket sample without le label", fam)
		}
		var bound float64
		if le == "+Inf" {
			bound = math.Inf(1)
		} else {
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("%s_bucket: bad le %q: %w", fam, le, err)
			}
			bound = v
		}
		hc.buckets[key] = append(hc.buckets[key], bucketSample{le: bound, count: s.value})
	case strings.HasSuffix(s.name, "_count"):
		hc.counts[key] = s.value
		hc.haveCount[key] = true
	}
	return nil
}

func (hc *histCheck) finish(fam string) error {
	for key, bs := range hc.buckets {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		last := bs[len(bs)-1]
		if !math.IsInf(last.le, 1) {
			return fmt.Errorf("histogram %s{%s}: missing +Inf bucket", fam, key)
		}
		for i := 1; i < len(bs); i++ {
			if bs[i].count < bs[i-1].count {
				return fmt.Errorf("histogram %s{%s}: bucket counts decrease at le=%g", fam, key, bs[i].le)
			}
		}
		if hc.haveCount[key] && hc.counts[key] != last.count {
			return fmt.Errorf("histogram %s{%s}: _count %g != +Inf bucket %g",
				fam, key, hc.counts[key], last.count)
		}
	}
	for key := range hc.haveCount {
		if len(hc.buckets[key]) == 0 {
			return fmt.Errorf("histogram %s{%s}: _count without buckets", fam, key)
		}
	}
	return nil
}
