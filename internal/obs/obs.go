// Package obs is the repo's dependency-free observability layer: an
// atomic metrics registry with Prometheus text-format exposition, and a
// lightweight span recorder for per-query traces.
//
// Metrics are package-level typed handles (Counter, Gauge, Histogram,
// and their single-label Vec forms) registered against a Registry —
// usually the package Default, which oniond serves at GET /metrics.
// Every mutation is a single atomic op behind one atomic enabled-check,
// so instrumented hot paths stay within the E18 overhead bar, and
// SetEnabled(false) gives benchmarks an uninstrumented baseline without
// a separate build.
//
// Tracing (trace.go) is opt-in per query: a nil *Span is the disabled
// recorder, and every method is a nil-receiver no-op, so code threads
// spans unconditionally and pays nothing — not even an allocation —
// when tracing is off.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// disabled flips all metric mutations into no-ops (reads still work).
// The zero value means enabled: the common path loads one false bool.
var disabled atomic.Bool

// SetEnabled turns metric collection on or off process-wide. It exists
// for overhead benchmarks (E18's uninstrumented leg); servers leave
// collection enabled.
func SetEnabled(on bool) { disabled.Store(!on) }

// Enabled reports whether metric collection is active.
func Enabled() bool { return !disabled.Load() }

// LatencyBuckets is the fixed log-scaled bucket ladder shared by every
// latency histogram: a 1-2.5-5 progression per decade from 10µs to 10s,
// 19 finite upper bounds plus the implicit +Inf overflow.
var LatencyBuckets = []float64{
	10e-6, 25e-6, 50e-6,
	100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3,
	10e-3, 25e-3, 50e-3,
	100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// Counter is a monotonically increasing uint64. The nil Counter is a
// valid no-op, matching the nil-span convention.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil || disabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 instant value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil || disabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil || disabled.Load() {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram. Buckets hold
// per-bucket (non-cumulative) atomic counts; exposition accumulates
// them into the Prometheus cumulative form, and the total count is
// derived from the buckets so a concurrent scrape always sees
// _count equal to the +Inf bucket. The sum is float64 bits updated by
// CAS — observations are per-query, not per-row, so the loop never
// sees real contention.
type Histogram struct {
	bounds []float64 // inclusive upper bounds, ascending
	counts []atomic.Uint64
	inf    atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d", i))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
}

// Observe records one value (seconds, for latency histograms).
func (h *Histogram) Observe(v float64) {
	if h == nil || disabled.Load() {
		return
	}
	// Binary search for the first bound >= v: bounds are inclusive
	// upper limits, matching Prometheus le semantics.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(h.bounds) {
		h.counts[lo].Add(1)
	} else {
		h.inf.Add(1)
	}
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil || disabled.Load() {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the total number of observations (the sum of the
// bucket counts).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n + h.inf.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot returns cumulative bucket counts (per ascending bound, then
// +Inf), the total count and the sum. The count is the +Inf cumulative
// figure, so a scrape racing observations still satisfies the format's
// _count == +Inf invariant.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	sum = math.Float64frombits(h.sum.Load())
	cum = make([]uint64, len(h.bounds)+1)
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cum[i] = acc
	}
	cum[len(h.bounds)] = acc + h.inf.Load()
	return cum, cum[len(h.bounds)], sum
}

// family is one exposition family: a metric name with HELP/TYPE text
// and its children (one per label value; unlabeled metrics have a
// single child under the empty label value).
type family struct {
	name  string
	help  string
	typ   string // "counter" | "gauge" | "histogram"
	label string // label key, "" when unlabeled

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	bounds   []float64 // histogram families only
}

func (f *family) counter(lv string) *Counter {
	f.mu.RLock()
	c := f.counters[lv]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c = f.counters[lv]; c == nil {
		c = &Counter{}
		f.counters[lv] = c
	}
	return c
}

func (f *family) gauge(lv string) *Gauge {
	f.mu.RLock()
	g := f.gauges[lv]
	f.mu.RUnlock()
	if g != nil {
		return g
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if g = f.gauges[lv]; g == nil {
		g = &Gauge{}
		f.gauges[lv] = g
	}
	return g
}

func (f *family) histogram(lv string) *Histogram {
	f.mu.RLock()
	h := f.hists[lv]
	f.mu.RUnlock()
	if h != nil {
		return h
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if h = f.hists[lv]; h == nil {
		h = newHistogram(f.bounds)
		f.hists[lv] = h
	}
	return h
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct{ fam *family }

// With returns the counter for the given label value, creating it on
// first use. Hot paths should hoist the result rather than call With
// per operation.
func (v *CounterVec) With(labelValue string) *Counter { return v.fam.counter(labelValue) }

// GaugeVec is a gauge family keyed by one label.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label value.
func (v *GaugeVec) With(labelValue string) *Gauge { return v.fam.gauge(labelValue) }

// HistogramVec is a histogram family keyed by one label.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label value.
func (v *HistogramVec) With(labelValue string) *Histogram { return v.fam.histogram(labelValue) }

// Registry holds metric families and renders them in Prometheus text
// exposition format. The zero Registry is not usable; call NewRegistry.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

// Default is the process-wide registry every package-level metric in
// this repo registers against; oniond serves it at GET /metrics.
var Default = NewRegistry()

// register returns the family for name, creating it with the given
// shape, and panics on a shape conflict — re-registering a name with a
// different type or label key is a programming error, not runtime
// input.
func (r *Registry) register(name, help, typ, label string, bounds []float64) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if label != "" && !validLabelName(label) {
		panic(fmt.Sprintf("obs: invalid label name %q", label))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.fams[name]; f != nil {
		if f.typ != typ || f.label != label {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s/%q (was %s/%q)",
				name, typ, label, f.typ, f.label))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ, label: label,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		bounds:   bounds,
	}
	r.fams[name] = f
	return f
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, "counter", "", nil).counter("")
}

// CounterVec registers (or fetches) a counter family with one label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, "counter", label, nil)}
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, "gauge", "", nil).gauge("")
}

// GaugeVec registers (or fetches) a gauge family with one label.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, "gauge", label, nil)}
}

// Histogram registers (or fetches) an unlabeled histogram with the
// given bucket upper bounds (use LatencyBuckets for latencies).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, "histogram", "", bounds).histogram("")
}

// HistogramVec registers (or fetches) a histogram family with one
// label.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	return &HistogramVec{fam: r.register(name, help, "histogram", label, bounds)}
}

// families returns the registered families sorted by name, and for
// each the sorted label values present.
func (r *Registry) families() []*family {
	r.mu.RLock()
	out := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (f *family) labelValues() []string {
	f.mu.RLock()
	seen := make(map[string]bool)
	for lv := range f.counters {
		seen[lv] = true
	}
	for lv := range f.gauges {
		seen[lv] = true
	}
	for lv := range f.hists {
		seen[lv] = true
	}
	f.mu.RUnlock()
	out := make([]string, 0, len(seen))
	for lv := range seen {
		out = append(out, lv)
	}
	sort.Strings(out)
	return out
}
