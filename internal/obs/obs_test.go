package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the le semantics: bounds are
// inclusive upper limits, values past the last bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{0.001, 0.01, 0.1})
	cases := []struct {
		v    float64
		want int // bucket index, 3 = +Inf
	}{
		{0, 0},
		{0.0005, 0},
		{0.001, 0}, // exactly on a bound is inside it (le = ≤)
		{0.0010001, 1},
		{0.01, 1},
		{0.05, 2},
		{0.1, 2},
		{0.11, 3},
		{1e9, 3},
	}
	for _, c := range cases {
		before := bucketCounts(h)
		h.Observe(c.v)
		after := bucketCounts(h)
		hit := -1
		for i := range after {
			if after[i] != before[i] {
				hit = i
				break
			}
		}
		if hit != c.want {
			t.Errorf("Observe(%g): landed in bucket %d, want %d", c.v, hit, c.want)
		}
	}
	if got := h.Count(); got != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", got, len(cases))
	}
}

func bucketCounts(h *Histogram) []uint64 {
	out := make([]uint64, len(h.counts)+1)
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	out[len(h.counts)] = h.inf.Load()
	return out
}

// TestHistogramCumulativeSnapshot checks the exposition-side view:
// cumulative counts are non-decreasing and end at the total.
func TestHistogramCumulativeSnapshot(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 8, 9} {
		h.Observe(v)
	}
	cum, count, sum := h.snapshot()
	want := []uint64{2, 3, 4, 6}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cum[%d] = %d, want %d (all %v)", i, cum[i], want[i], cum)
		}
	}
	if count != 6 {
		t.Fatalf("count = %d, want 6", count)
	}
	if sum != 0.5+1+1.5+3+8+9 {
		t.Fatalf("sum = %g", sum)
	}
}

// TestConcurrentObserveHammer races many observers against readers;
// run under -race this is the data-race gate, and the final totals
// must be exact whatever the interleaving.
func TestConcurrentObserveHammer(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("hammer_seconds", "hammer", LatencyBuckets)
	c := reg.Counter("hammer_total", "hammer")
	hv := reg.HistogramVec("hammer_labeled_seconds", "hammer", "leg", LatencyBuckets)
	const workers = 8
	const perWorker = 5000
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent exposition reader
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			if _, err := reg.WriteTo(&b); err != nil {
				t.Errorf("WriteTo: %v", err)
				return
			}
			if err := ValidateExposition(strings.NewReader(b.String())); err != nil {
				t.Errorf("mid-flight exposition invalid: %v", err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			leg := string(rune('a' + w%4))
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(i%100) * 1e-5)
				c.Inc()
				hv.With(leg).Observe(1e-4)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	cum, count, _ := h.snapshot()
	if cum[len(cum)-1] != count {
		t.Fatalf("+Inf cumulative %d != count %d", cum[len(cum)-1], count)
	}
	var labeled uint64
	for _, leg := range []string{"a", "b", "c", "d"} {
		labeled += hv.With(leg).Count()
	}
	if labeled != workers*perWorker {
		t.Fatalf("labeled total = %d, want %d", labeled, workers*perWorker)
	}
}

// TestExpositionGolden pins the exact text rendered for a fixed
// registry — the promtool-style golden gate.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("onion_test_total", "Things counted.").Add(3)
	reg.Gauge("onion_test_gauge", "A level.").Set(-2)
	cv := reg.CounterVec("onion_test_events_total", "Events by kind.", "kind")
	cv.With("hit").Add(2)
	cv.With("miss").Inc()
	h := reg.Histogram("onion_test_seconds", "A latency.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP onion_test_events_total Events by kind.
# TYPE onion_test_events_total counter
onion_test_events_total{kind="hit"} 2
onion_test_events_total{kind="miss"} 1
# HELP onion_test_gauge A level.
# TYPE onion_test_gauge gauge
onion_test_gauge -2
# HELP onion_test_seconds A latency.
# TYPE onion_test_seconds histogram
onion_test_seconds_bucket{le="0.01"} 1
onion_test_seconds_bucket{le="0.1"} 2
onion_test_seconds_bucket{le="+Inf"} 3
onion_test_seconds_sum 0.555
onion_test_seconds_count 3
# HELP onion_test_total Things counted.
# TYPE onion_test_total counter
onion_test_total 3
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
	if err := ValidateExposition(strings.NewReader(b.String())); err != nil {
		t.Fatalf("golden output fails own validator: %v", err)
	}
}

// TestValidateExpositionRejects exercises the validator's teeth.
func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"bad metric name", "0bad_name 1\n"},
		{"bad value", "x_total one\n"},
		{"unterminated labels", `x_total{a="b" 1` + "\n"},
		{"bad escape", `x_total{a="\q"} 1` + "\n"},
		{"duplicate series", "x_total 1\nx_total 2\n"},
		{"duplicate TYPE", "# TYPE x counter\n# TYPE x counter\n"},
		{"unknown type", "# TYPE x sortedset\n"},
		{"TYPE after samples", "x 1\n# TYPE x counter\n"},
		{"histogram without +Inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"decreasing buckets", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n"},
		{"count disagrees", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 9\n"},
	}
	for _, c := range cases {
		if err := ValidateExposition(strings.NewReader(c.text)); err == nil {
			t.Errorf("%s: validator accepted %q", c.name, c.text)
		}
	}
	ok := "# HELP x_total fine\n# TYPE x_total counter\nx_total{a=\"b\\\"c\\\\d\\ne\"} 4 1700000000\n"
	if err := ValidateExposition(strings.NewReader(ok)); err != nil {
		t.Errorf("validator rejected valid input: %v", err)
	}
}

// TestSetEnabled checks the process-wide switch gates every mutation.
func TestSetEnabled(t *testing.T) {
	defer SetEnabled(true)
	reg := NewRegistry()
	c := reg.Counter("switch_total", "")
	h := reg.Histogram("switch_seconds", "", LatencyBuckets)
	g := reg.Gauge("switch_gauge", "")
	SetEnabled(false)
	c.Inc()
	h.Observe(1)
	g.Set(5)
	if c.Value() != 0 || h.Count() != 0 || g.Value() != 0 {
		t.Fatal("disabled metrics advanced")
	}
	SetEnabled(true)
	c.Inc()
	h.Observe(1)
	g.Set(5)
	if c.Value() != 1 || h.Count() != 1 || g.Value() != 5 {
		t.Fatal("re-enabled metrics did not advance")
	}
}

// TestRegistryShapeConflictPanics pins re-registration rules: same
// shape returns the same handle, different shape panics.
func TestRegistryShapeConflictPanics(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("dup_total", "")
	c2 := reg.Counter("dup_total", "")
	c1.Inc()
	if c2.Value() != 1 {
		t.Fatal("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("shape conflict did not panic")
		}
	}()
	reg.Gauge("dup_total", "")
}

// TestSpanTree checks span structure: parentage, offsets, attrs,
// nil-safety, and JSON round-tripping.
func TestSpanTree(t *testing.T) {
	root := NewTrace("request")
	a := root.Child("plan")
	a.SetInt("steps", 3)
	a.End()
	b := root.Child("execute")
	c := b.Child("step 1")
	c.End()
	b.End()
	root.End()
	if len(root.Children) != 2 || len(b.Children) != 1 {
		t.Fatalf("tree shape wrong: %+v", root)
	}
	if root.DurNs <= 0 || c.DurNs < 0 {
		t.Fatalf("durations not recorded: root=%d c=%d", root.DurNs, c.DurNs)
	}
	if c.StartNs < b.StartNs {
		t.Fatal("child starts before parent")
	}
	if got := root.Find("step 1"); got != c {
		t.Fatal("Find missed a nested span")
	}
	if !strings.Contains(root.Tree(), "steps=3") {
		t.Fatalf("Tree() missing attr:\n%s", root.Tree())
	}
	raw, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var back Span
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "request" || len(back.Children) != 2 {
		t.Fatalf("JSON round trip lost structure: %s", raw)
	}

	// The nil span swallows everything.
	var nilSpan *Span
	nilSpan.End()
	nilSpan.SetAttr("k", "v")
	nilSpan.SetInt("k", 1)
	if nilSpan.Child("x") != nil || nilSpan.Tree() != "" || nilSpan.Find("x") != nil {
		t.Fatal("nil span misbehaved")
	}
}

// TestSpanConcurrentChildren hammers Child/SetAttr from goroutines —
// the -race gate for the executor's concurrent span writes.
func TestSpanConcurrentChildren(t *testing.T) {
	root := NewTrace("root")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c := root.Child("c")
				c.SetInt("j", int64(j))
				c.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if len(root.Children) != 8*500 {
		t.Fatalf("children = %d, want %d", len(root.Children), 8*500)
	}
}
