package analysis

import (
	"strings"
	"testing"
)

// Each analyzer runs alone over its fixture subtree so the want
// comments pin exactly its behaviour; the fixtures also carry
// //lint:onion-ignore sites with reasons, whose silence (no want
// comment, no finding) proves suppression end to end.

func TestEpochBump(t *testing.T) {
	checkFixture(t, fixtureProgram(t, "fixtures/epochbump/..."), []*Analyzer{EpochBump})
}

func TestMemCharge(t *testing.T) {
	checkFixture(t, fixtureProgram(t, "fixtures/memcharge/..."), []*Analyzer{MemCharge})
}

func TestLockScope(t *testing.T) {
	checkFixture(t, fixtureProgram(t, "fixtures/lockscope/..."), []*Analyzer{LockScope})
}

func TestErrWrap(t *testing.T) {
	checkFixture(t, fixtureProgram(t, "fixtures/errwrap/..."), []*Analyzer{ErrWrap})
}

func TestCtxFlow(t *testing.T) {
	checkFixture(t, fixtureProgram(t, "fixtures/ctxflow/..."), []*Analyzer{CtxFlow})
}

// TestIgnoreRequiresReason pins the driver half of the suppression
// contract: a reason-less //lint:onion-ignore suppresses nothing and
// is itself a finding.
func TestIgnoreRequiresReason(t *testing.T) {
	prog := fixtureProgram(t, "fixtures/ignorereason/...")
	findings, err := prog.Run(All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly the directive finding: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "onion-ignore" {
		t.Errorf("finding analyzer = %q, want %q", f.Analyzer, "onion-ignore")
	}
	if want := "requires a reason"; !strings.Contains(f.Message, want) {
		t.Errorf("finding message %q does not mention %q", f.Message, want)
	}
}

// TestByName covers the -only flag's resolution.
func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want the full suite", len(all), err)
	}
	two, err := ByName("errwrap, ctxflow")
	if err != nil || len(two) != 2 || two[0].Name != "errwrap" || two[1].Name != "ctxflow" {
		t.Fatalf("ByName(\"errwrap, ctxflow\") = %v, err %v", two, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(\"nosuch\") succeeded, want error")
	}
}
