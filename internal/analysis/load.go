package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// The loader resolves packages with `go list -export -deps`: the go
// command does the build-system work (build constraints, cgo, module
// resolution) and hands back compiled export data for every dependency,
// so module-local packages can be type-checked from source against one
// coherent type world without golang.org/x/tools. `go list -deps`
// guarantees dependencies are listed before dependents, which is
// exactly the order source checking needs.

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matching patterns (resolved in dir) plus
// their module-local dependencies and returns the program. Test files
// are not loaded (`go list`'s GoFiles excludes them): onionlint checks
// shipped code.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Standard,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{} // import path → export data file
	var local []listedPackage      // module-local packages, dependency order
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard {
			local = append(local, p)
		}
	}

	prog := &Program{Fset: token.NewFileSet(), byPath: map[string]*Package{}}
	checked := map[string]*types.Package{}
	imp := &chainImporter{
		checked: checked,
		gc: importer.ForCompiler(prog.Fset, "gc", func(path string) (io.ReadCloser, error) {
			f, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		}),
	}
	for _, lp := range local {
		pkg, err := checkPackage(prog.Fset, lp, imp)
		if err != nil {
			return nil, err
		}
		pkg.Target = !lp.DepOnly
		checked[lp.ImportPath] = pkg.Types
		prog.Pkgs = append(prog.Pkgs, pkg)
		prog.byPath[lp.ImportPath] = pkg
	}
	return prog, nil
}

// checkPackage parses and type-checks one listed package.
func checkPackage(fset *token.FileSet, lp listedPackage, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{
		Path:  lp.ImportPath,
		Name:  lp.Name,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// chainImporter serves module-local packages from the source-checked set
// (so the whole program shares one type identity for them) and falls
// back to compiled export data for the standard library.
type chainImporter struct {
	checked map[string]*types.Package
	gc      types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := c.checked[path]; ok {
		return pkg, nil
	}
	return c.gc.Import(path)
}
