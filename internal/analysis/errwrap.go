package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrWrap enforces the error-identity contract the serving layer's
// overload semantics depend on (PR 7): oniond maps ErrShed → 429 and
// ErrQueueTimeout → 503 with errors.Is, and ErrQueueTimeout itself
// *wraps* the context error — so a fmt.Errorf that renders a propagated
// error with %v instead of %w, or a sentinel comparison written with ==,
// silently breaks the status-code mapping (and every other errors.Is
// caller) as soon as anyone adds a wrapping layer.
//
// Two rules, applied to every package:
//
//   - fmt.Errorf: an argument whose type implements error must be
//     formatted with %w (not %v/%s/%q/%x) — the propagated cause must
//     stay errors.Is/As-reachable;
//   - ==/!= against an exported error sentinel (a package-level `var
//     ErrX` of error type) or against context.Canceled /
//     context.DeadlineExceeded must be errors.Is instead.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc: "fmt.Errorf must wrap propagated errors with %w, and sentinel comparisons " +
		"(ErrShed, ErrQueueTimeout, context errors) must use errors.Is, never == (PR 7 contract)",
	Run: runErrWrap,
}

func runErrWrap(pass *Pass) error {
	pkg := pass.Pkg
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorfVerbs(pass, n)
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkErrorfVerbs flags error-typed fmt.Errorf arguments formatted with
// a non-wrapping verb.
func checkErrorfVerbs(pass *Pass, call *ast.CallExpr) {
	f := calleeOf(pass.Pkg.Info, call)
	if !funcIs(f, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.Pkg.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // non-constant format: nothing to line up against
	}
	verbs := formatVerbs(constant.StringVal(tv.Value))
	for i, verb := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) {
			break
		}
		if verb == 'w' || verb == 'T' || verb == 'p' {
			continue
		}
		arg := call.Args[argIdx]
		if argType, ok := pass.Pkg.Info.Types[arg]; ok && implementsError(argType.Type) {
			pass.Reportf(arg.Pos(),
				"error formatted with %%%c loses its identity; use %%w so the cause stays "+
					"errors.Is/errors.As-reachable through the wrap (PR 7 contract)", verb)
		}
	}
}

// formatVerbs extracts the verb letters of a printf-style format, in
// argument order (%% skipped; indexed arguments like %[1]v are treated
// positionally, which is good enough for lining up error arguments).
func formatVerbs(format string) []rune {
	var verbs []rune
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Skip flags, width, precision and index.
		for i < len(format) && strings.ContainsRune("+-# 0.[]0123456789*", rune(format[i])) {
			i++
		}
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		verbs = append(verbs, rune(format[i]))
	}
	return verbs
}

// implementsError reports whether t implements the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, types.Universe.Lookup("error").Type().Underlying().(*types.Interface))
}

// checkSentinelCompare flags ==/!= where one operand is an exported
// error sentinel (or a context error) and the other is not nil.
func checkSentinelCompare(pass *Pass, cmp *ast.BinaryExpr) {
	if cmp.Op != token.EQL && cmp.Op != token.NEQ {
		return
	}
	info := pass.Pkg.Info
	for _, pair := range [2][2]ast.Expr{{cmp.X, cmp.Y}, {cmp.Y, cmp.X}} {
		sentinel, other := pair[0], pair[1]
		name, ok := errorSentinel(info, sentinel)
		if !ok {
			continue
		}
		if tv, has := info.Types[other]; has && tv.IsNil() {
			continue // err == nil is the one comparison identity supports
		}
		pass.Reportf(cmp.Pos(),
			"comparing against sentinel %s with %s breaks once the error is wrapped; use errors.Is (PR 7 contract)",
			name, cmp.Op)
		return
	}
}

// errorSentinel matches references to exported package-level error
// variables named Err* and to context.Canceled/DeadlineExceeded.
func errorSentinel(info *types.Info, expr ast.Expr) (string, bool) {
	var obj types.Object
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	default:
		return "", false
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !implementsError(v.Type()) {
		return "", false
	}
	if v.Pkg().Path() == "context" && (v.Name() == "Canceled" || v.Name() == "DeadlineExceeded") {
		return "context." + v.Name(), true
	}
	if v.Exported() && strings.HasPrefix(v.Name(), "Err") {
		return v.Name(), true
	}
	return "", false
}
