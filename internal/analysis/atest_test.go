package analysis

// The fixture harness: a miniature of x/tools' analysistest. Fixture
// packages live in an independent module under testdata/src (the go
// tool ignores testdata directories, so the fixtures never leak into
// the repo's builds), annotated with
//
//	// want "regexp"
//
// trailing comments on the lines where findings must land. The check
// is bidirectional — an expected finding that never fires fails the
// test exactly like an unexpected one — so the fixtures pin both the
// positive and the negative behaviour of every analyzer, including
// that //lint:onion-ignore suppressions (which carry no want comment)
// really do suppress.

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// fixtureProgram loads fixture packages (plus their in-module
// dependencies) from the testdata module.
func fixtureProgram(t *testing.T, patterns ...string) *Program {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("resolving fixture dir: %v", err)
	}
	prog, err := Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", patterns, err)
	}
	return prog
}

// checkFixture runs the analyzers over the program and diffs the
// findings against the fixtures' want comments.
func checkFixture(t *testing.T, prog *Program, analyzers []*Analyzer) {
	t.Helper()
	findings, err := prog.Run(analyzers)
	if err != nil {
		t.Fatalf("running %d analyzer(s): %v", len(analyzers), err)
	}

	type expectation struct {
		file    string
		line    int
		re      *regexp.Regexp
		matched bool
	}
	var expects []*expectation
	for _, pkg := range prog.Pkgs {
		if !pkg.Target {
			continue
		}
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					for _, pat := range wantPatterns(t, prog.Fset.Position(c.Pos()).String(), c.Text) {
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", prog.Fset.Position(c.Pos()), pat, err)
						}
						pos := prog.Fset.Position(c.Pos())
						expects = append(expects, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}

	for _, f := range findings {
		text := f.Analyzer + ": " + f.Message
		matched := false
		for _, e := range expects {
			if e.file == f.Pos.Filename && e.line == f.Pos.Line && e.re.MatchString(text) {
				e.matched, matched = true, true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected a finding matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// wantPatterns extracts the quoted regexps of a `// want "..." "..."`
// comment (nil for ordinary comments).
func wantPatterns(t *testing.T, at, comment string) []string {
	t.Helper()
	body, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return nil // block comments never carry expectations
	}
	body = strings.TrimSpace(body)
	rest, ok := strings.CutPrefix(body, "want ")
	if !ok {
		return nil
	}
	var out []string
	for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			t.Fatalf("%s: malformed want comment %q: %v", at, comment, err)
		}
		pat, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("%s: malformed want pattern %s: %v", at, q, err)
		}
		out = append(out, pat)
		rest = rest[len(q):]
	}
	return out
}
