// Package analysis is onionlint's engine: a small, dependency-free
// reimplementation of the golang.org/x/tools/go/analysis model (the
// container bakes in only the standard toolchain, so the framework is
// built directly on go/ast, go/types and `go list`).
//
// The suite machine-checks the cross-cutting invariants this repo's
// growth has come to depend on — each one was the root cause of at
// least one shipped bug before it was written down:
//
//   - epochbump: every effective mutation of an epoch-carrying store
//     must bump the epoch (PR 4/6, the stale-cache contract);
//   - memcharge: executor allocations of tuple storage must charge the
//     query memory budget (PR 5);
//   - lockscope: no file I/O, network or sleeping on a call path
//     entered while a serve-layer mutex is held (PR 6 review fix);
//   - errwrap: propagated errors use %w, sentinel comparisons use
//     errors.Is (PR 7, the queue-timeout → 503/504 mapping);
//   - ctxflow: request-path code threads its incoming context instead
//     of minting context.Background()/TODO().
//
// Deliberate exceptions are annotated in the source as
//
//	//lint:onion-ignore <reason>
//
// on the offending line or the line above it; the driver suppresses the
// finding and rejects directives with no reason, so every exception
// stays visible and justified.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in findings and -only filters.
	Name string
	// Doc is the one-paragraph description shown by `onionlint -list`.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported invariant violation.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Package is one type-checked package of the loaded program.
type Package struct {
	// Path is the import path; Name the package name.
	Path string
	Name string
	// Target reports whether the package matched the load patterns
	// (diagnostics are only reported for target packages; the rest are
	// loaded for cross-package call-graph walks).
	Target bool
	Files  []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// Program is a load result: every module-local package of the requested
// patterns plus their module-local dependencies, type-checked against
// one shared type world (stdlib via export data, module packages from
// source, in dependency order).
type Program struct {
	Fset *token.FileSet
	// Pkgs lists the loaded packages in dependency order.
	Pkgs []*Package

	byPath map[string]*Package
	cg     *callGraph
}

// PackageByPath returns a loaded package, or nil.
func (prog *Program) PackageByPath(path string) *Package { return prog.byPath[path] }

// NewSinglePackageProgram wraps one externally type-checked package as a
// program — the unitchecker (`go vet -vettool`) entry point, where the
// go command drives loading one package at a time. Cross-package
// call-graph walks see only this package's bodies in this mode.
func NewSinglePackageProgram(fset *token.FileSet, pkg *Package) *Program {
	return &Program{
		Fset:   fset,
		Pkgs:   []*Package{pkg},
		byPath: map[string]*Package{pkg.Path: pkg},
	}
}

// Run executes the analyzers over every target package and returns the
// surviving findings (suppression directives applied), sorted by
// position. Analyzer errors abort the run.
func (prog *Program) Run(analyzers []*Analyzer) ([]Finding, error) {
	var all []Finding
	for _, pkg := range prog.Pkgs {
		if !pkg.Target {
			continue
		}
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, findings: &all}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	all = prog.applyIgnores(all)
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}

// All returns the full suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{EpochBump, MemCharge, LockScope, ErrWrap, CtxFlow}
}

// ByName resolves a comma-separated analyzer list ("" = all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// pathElem returns the last element of an import path — the analyzers
// match packages on it ("kb", "serve", ...) so the same rules apply to
// both the real tree (repro/internal/kb) and test fixtures
// (fixtures/epochbump/kb).
func pathElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// pkgElemIs reports whether the package's import path ends in one of the
// given elements.
func pkgElemIs(pkg *Package, elems ...string) bool {
	last := pathElem(pkg.Path)
	for _, e := range elems {
		if last == e {
			return true
		}
	}
	return false
}

// typeIs reports whether t (after unwrapping pointers and named types'
// origins) is the named type `name` declared in a package whose import
// path ends in pkgElem. It is the analyzers' portable type test:
// isKBValue := typeIs(t, "kb", "Value") holds for repro/internal/kb and
// for a fixture's local kb package alike.
func typeIs(t types.Type, pkgElem, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Name() == name && pathElem(obj.Pkg().Path()) == pkgElem
}

// funcIs reports whether f is the function or method `name` of a package
// whose import path ends in pkgElem.
func funcIs(f *types.Func, pkgElem, name string) bool {
	return f != nil && f.Pkg() != nil && f.Name() == name && pathElem(f.Pkg().Path()) == pkgElem
}

// calleeOf resolves the called function of a call expression, through
// direct references, selections and method values; nil for builtins,
// conversions and indirect calls through function values.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// recvBase peels selectors/indexes/stars off an lvalue and returns the
// root identifier and the first selected field name, e.g. s.bySubj[k]
// → (s, "bySubj"). ok is false for anything not rooted at an identifier
// field selection.
func recvBase(expr ast.Expr) (root *ast.Ident, field string, ok bool) {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if id, isIdent := ast.Unparen(e.X).(*ast.Ident); isIdent {
				return id, e.Sel.Name, true
			}
			expr = e.X
		default:
			return nil, "", false
		}
	}
}
