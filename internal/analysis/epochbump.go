package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// EpochBump enforces the stale-cache contract from PR 4/6: types that
// carry a mutation epoch (a field `epoch atomic.Uint64`) promise that
// every effective mutation of their query-visible indexes bumps it —
// the query engine validates cached plans against the epoch and the
// serving layer keys its result cache on it, so an index write that
// skips the bump makes the cache provably stale (the shipped PR 6 dedup
// bug was exactly this: a mutation path that returned without bumping).
//
// The check: in every package, for every struct type with an epoch
// field, each *exported* method that writes a protected field — fields
// marked `//onion:index`, or, when a struct marks none, every map- or
// slice-typed field — must somewhere on its body (or in a same-type
// method it calls) touch the epoch (epoch.Add / epoch.Store). The check
// is deliberately path-insensitive: a method that can mutate must be
// *able* to bump, and the tests own the per-path contract (bump exactly
// on effective change).
var EpochBump = &Analyzer{
	Name: "epochbump",
	Doc: "exported methods of epoch-carrying types (kb.Store, graph.Graph) that write " +
		"//onion:index fields must also touch the epoch counter (PR 4/6 stale-cache contract)",
	Run: runEpochBump,
}

// indexMarker tags a struct field as part of the epoch-protected
// query-visible state.
const indexMarker = "onion:index"

func runEpochBump(pass *Pass) error {
	pkg := pass.Pkg
	protected := epochedTypes(pkg)
	if len(protected) == 0 {
		return nil
	}

	// Summarise every method of every epoched type, then propagate
	// writes/bumps through same-type method calls to a fixed point, so a
	// bump (or a write) in an unexported helper is credited to the
	// exported entry points that reach it.
	type methodInfo struct {
		decl          *ast.FuncDecl
		typeName      string
		writes        string   // first protected field written ("" = none)
		writesPos     ast.Node // where
		bumps         bool
		sameTypeCalls []string // method names called on the receiver
	}
	methods := map[string]*methodInfo{} // "Type.Method" → info
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			tname := recvTypeName(pkg, fd)
			fields, epoched := protected[tname]
			if !epoched {
				continue
			}
			recv := recvIdent(fd)
			mi := &methodInfo{decl: fd, typeName: tname}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range st.Lhs {
						if f, hit := protectedWrite(lhs, recv, fields); hit && mi.writes == "" {
							mi.writes, mi.writesPos = f, st
						}
					}
				case *ast.IncDecStmt:
					if f, hit := protectedWrite(st.X, recv, fields); hit && mi.writes == "" {
						mi.writes, mi.writesPos = f, st
					}
				case *ast.CallExpr:
					if isBuiltin(pkg.Info, st, "delete") || isBuiltin(pkg.Info, st, "copy") {
						if len(st.Args) > 0 {
							if f, hit := protectedWrite(st.Args[0], recv, fields); hit && mi.writes == "" {
								mi.writes, mi.writesPos = f, st
							}
						}
					}
					if isEpochTouch(st, recv) {
						mi.bumps = true
					}
					if m, ok := recvMethodCall(st, recv); ok {
						mi.sameTypeCalls = append(mi.sameTypeCalls, m)
					}
				}
				return true
			})
			methods[tname+"."+fd.Name.Name] = mi
		}
	}

	// Fixed point: inherit writes and bumps from same-type callees.
	for changed := true; changed; {
		changed = false
		for _, mi := range methods {
			for _, callee := range mi.sameTypeCalls {
				ci, ok := methods[mi.typeName+"."+callee]
				if !ok {
					continue
				}
				if ci.bumps && !mi.bumps {
					mi.bumps = true
					changed = true
				}
				if ci.writes != "" && mi.writes == "" {
					mi.writes = ci.writes + "()" // via callee: report the field
					mi.writesPos = mi.decl
					changed = true
				}
			}
		}
	}

	for _, mi := range methods {
		if !mi.decl.Name.IsExported() || mi.writes == "" || mi.bumps {
			continue
		}
		field := strings.TrimSuffix(mi.writes, "()")
		pass.Reportf(mi.decl.Name.Pos(),
			"%s.%s writes index field %q but never touches the mutation epoch; "+
				"every effective mutation must bump it or cached plans and served results go stale (PR 4/6 contract)",
			mi.typeName, mi.decl.Name.Name, field)
	}
	return nil
}

// epochedTypes finds the package's structs carrying an epoch field and
// returns, per type name, the set of protected field names.
func epochedTypes(pkg *Package) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				var hasEpoch bool
				marked := map[string]bool{}
				fallback := map[string]bool{}
				for _, f := range st.Fields.List {
					for _, name := range f.Names {
						if name.Name == "epoch" && typeIs(pkg.Info.Types[f.Type].Type, "atomic", "Uint64") {
							hasEpoch = true
							continue
						}
						if fieldMarked(f) {
							marked[name.Name] = true
						}
						switch pkg.Info.Types[f.Type].Type.Underlying().(type) {
						case *types.Map, *types.Slice:
							fallback[name.Name] = true
						}
					}
				}
				if !hasEpoch {
					continue
				}
				if len(marked) > 0 {
					out[ts.Name.Name] = marked
				} else {
					out[ts.Name.Name] = fallback
				}
			}
		}
	}
	return out
}

// fieldMarked reports whether the field's doc or trailing comment
// carries the //onion:index marker.
func fieldMarked(f *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.Contains(c.Text, indexMarker) {
				return true
			}
		}
	}
	return false
}

// recvTypeName names the receiver's type ("" if unresolvable).
func recvTypeName(pkg *Package, fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// recvIdent returns the receiver identifier's name ("" for anonymous).
func recvIdent(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// protectedWrite reports whether expr is rooted at recv.<field> for a
// protected field.
func protectedWrite(expr ast.Expr, recv string, fields map[string]bool) (string, bool) {
	root, field, ok := recvBase(expr)
	if !ok || recv == "" || root.Name != recv {
		return "", false
	}
	if fields[field] {
		return field, true
	}
	return "", false
}

// isEpochTouch matches recv.epoch.Add(...) / recv.epoch.Store(...).
func isEpochTouch(call *ast.CallExpr, recv string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Add" && sel.Sel.Name != "Store") {
		return false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != "epoch" {
		return false
	}
	id, ok := ast.Unparen(inner.X).(*ast.Ident)
	return ok && id.Name == recv
}

// recvMethodCall matches recv.Method(...) and returns the method name.
func recvMethodCall(call *ast.CallExpr, recv string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || recv == "" || id.Name != recv {
		return "", false
	}
	return sel.Sel.Name, true
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}
