package analysis

import (
	"go/ast"
)

// CtxFlow enforces context plumbing on the request path: a function
// that receives a context.Context (or an *http.Request, which carries
// one) must thread it, never mint a fresh context.Background() or
// context.TODO(). A minted root context silently detaches everything
// downstream from the caller's deadline and cancellation — the serving
// layer's per-request deadlines (PR 4), the admission queue's
// deadline-aware waits (PR 7) and oniond's graceful drain all stop
// applying, and the bug only shows up as queries that refuse to die.
//
// Scope: packages whose import path ends in serve, oniond, core or
// query — the request path from HTTP handler to scan dispatch. Entry
// points without an incoming context (main, bench harnesses, the
// documented context-free convenience APIs like Engine.Execute) are not
// flagged: the rule is about *dropping* a context you were handed.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "request-path functions (serve, oniond, core, query) that receive a context " +
		"must thread it — no context.Background()/context.TODO() beside an incoming ctx",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	pkg := pass.Pkg
	if !pkgElemIs(pkg, "serve", "oniond", "core", "query") {
		return nil
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasIncomingCtx(pass, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := calleeOf(pkg.Info, call)
				if funcIs(f, "context", "Background") || funcIs(f, "context", "TODO") {
					pass.Reportf(call.Pos(),
						"%s receives a context but mints context.%s here, detaching downstream work "+
							"from the request's deadline and cancellation; thread the incoming context instead",
						fd.Name.Name, f.Name())
				}
				return true
			})
		}
	}
	return nil
}

// hasIncomingCtx reports whether the function receives a
// context.Context parameter or an *http.Request (whose Context() is the
// request context).
func hasIncomingCtx(pass *Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		t := pass.Pkg.Info.Types[field.Type].Type
		if t == nil {
			continue
		}
		if typeIs(t, "context", "Context") || typeIs(t, "http", "Request") {
			return true
		}
	}
	return false
}
