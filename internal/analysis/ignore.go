package analysis

import (
	"go/token"
	"strings"
)

// ignoreDirective is the suppression marker: placed on the offending
// line (trailing comment) or alone on the line above it, it silences
// every finding anchored there. The reason is mandatory — an exception
// nobody can justify is a bug with a comment on it.
const ignoreDirective = "//lint:onion-ignore"

// fileIgnores maps line number → directive reason ("" = missing).
type fileIgnores map[int]string

// collectIgnores scans every comment of the program's target packages
// and indexes the suppression directives by file and line.
func (prog *Program) collectIgnores() map[string]fileIgnores {
	byFile := map[string]fileIgnores{}
	for _, pkg := range prog.Pkgs {
		if !pkg.Target {
			continue
		}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, ignoreDirective)
					if !ok {
						continue
					}
					// Reject look-alikes such as //lint:onion-ignored.
					if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					fi := byFile[pos.Filename]
					if fi == nil {
						fi = fileIgnores{}
						byFile[pos.Filename] = fi
					}
					fi[pos.Line] = strings.TrimSpace(rest)
				}
			}
		}
	}
	return byFile
}

// applyIgnores drops findings suppressed by a directive on their line or
// the line above, and turns reason-less directives into findings of
// their own (the driver half of the suppression contract).
func (prog *Program) applyIgnores(findings []Finding) []Finding {
	ignores := prog.collectIgnores()
	out := findings[:0]
	for _, f := range findings {
		if fi := ignores[f.Pos.Filename]; fi != nil {
			if reason, ok := directiveFor(fi, f.Pos.Line); ok {
				if reason != "" {
					continue // justified exception: suppressed
				}
				// Reason-less directives do not suppress; the finding
				// stays and the directive itself is flagged below.
			}
		}
		out = append(out, f)
	}
	// Every reason-less directive is itself a finding, whether or not it
	// had anything to suppress.
	for file, fi := range ignores {
		for line, reason := range fi {
			if reason == "" {
				out = append(out, Finding{
					Analyzer: "onion-ignore",
					Pos:      token.Position{Filename: file, Line: line, Column: 1},
					Message:  "//lint:onion-ignore requires a reason (//lint:onion-ignore <why this exception is safe>)",
				})
			}
		}
	}
	return out
}

// directiveFor finds the directive covering a finding on the given line:
// same line first, then the line immediately above.
func directiveFor(fi fileIgnores, line int) (reason string, ok bool) {
	if r, hit := fi[line]; hit {
		return r, true
	}
	if r, hit := fi[line-1]; hit {
		return r, true
	}
	return "", false
}
