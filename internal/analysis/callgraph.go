package analysis

import (
	"go/ast"
	"go/types"
)

// The call graph is deliberately simple: one node per declared function
// or method (keyed by types.Func.FullName, which is stable across
// packages), edges to every statically-resolvable callee in its body.
// Calls through function values stay unresolved (no edge) and calls
// through interfaces resolve to the interface method — which is all
// lockscope needs, because the I/O seams it polices (vfs.FS, os.File)
// are named types and named interfaces.

type callGraph struct {
	nodes map[string]*funcNode
}

type funcNode struct {
	fn    *types.Func
	decl  *ast.FuncDecl
	pkg   *Package
	calls []*types.Func
}

// CallGraph builds (once) and returns the program-wide call graph.
func (prog *Program) CallGraph() *callGraph {
	if prog.cg != nil {
		return prog.cg
	}
	cg := &callGraph{nodes: map[string]*funcNode{}}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &funcNode{fn: obj, decl: fd, pkg: pkg}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if callee := calleeOf(pkg.Info, call); callee != nil {
							node.calls = append(node.calls, callee)
						}
					}
					return true
				})
				cg.nodes[obj.FullName()] = node
			}
		}
	}
	prog.cg = cg
	return cg
}

// ReachesSink walks the call graph from fn looking for a callee that
// sink classifies as forbidden; it returns the call chain (fn excluded,
// sink included, rendered by FullName) of the first hit. Functions whose
// bodies are outside the program (stdlib, interface methods) are leaves:
// they either are sinks themselves or end the walk.
func (cg *callGraph) ReachesSink(fn *types.Func, sink func(*types.Func) (string, bool)) ([]string, bool) {
	type memoKey = string
	memo := map[memoKey][]string{} // FullName → chain (nil = proven clean)
	visiting := map[memoKey]bool{}
	var walk func(f *types.Func) ([]string, bool)
	walk = func(f *types.Func) ([]string, bool) {
		if desc, isSink := sink(f); isSink {
			return []string{desc}, true
		}
		key := f.FullName()
		if chain, done := memo[key]; done {
			return chain, chain != nil
		}
		if visiting[key] {
			return nil, false // cycle: resolved by the outer frame
		}
		visiting[key] = true
		defer delete(visiting, key)
		node := cg.nodes[key]
		if node == nil {
			memo[key] = nil // no body in the program: leaf
			return nil, false
		}
		for _, callee := range node.calls {
			if chain, hit := walk(callee); hit {
				full := append([]string{key}, chain...)
				memo[key] = full
				return full, true
			}
		}
		memo[key] = nil
		return nil, false
	}
	chain, hit := walk(fn)
	return chain, hit
}
