// Package kb is the epochbump fixture: a miniature of the repo's
// kb.Store, with an epoch field, marked index fields and the mutation
// patterns the analyzer must separate — bumping writers, non-bumping
// writers (the shipped PR 6 bug class), helper-mediated writes and
// bumps, scratch-field writes, and a justified suppression.
package kb

import "sync/atomic"

type Store struct {
	epoch  atomic.Uint64
	facts  map[string]int // onion:index — query-visible fact index
	names  []string       // onion:index — interned label table
	keyBuf []byte         // scratch buffer, deliberately unmarked
}

// Add writes the index without bumping: the exact shipped bug class.
func (s *Store) Add(k string) { // want "Store.Add writes index field \"facts\" but never touches the mutation epoch"
	s.facts[k] = 1
}

// Put is the contract-conforming writer.
func (s *Store) Put(k string) {
	s.facts[k] = 1
	s.epoch.Add(1)
}

// Drop mutates through the delete builtin and skips the bump.
func (s *Store) Drop(k string) { // want "Store.Drop writes index field \"facts\""
	delete(s.facts, k)
}

// Rename writes only through an unexported helper; the summary
// propagation must charge the write to the exported entry point.
func (s *Store) Rename(k string) { // want "Store.Rename writes index field \"facts\""
	s.replace(k)
}

func (s *Store) replace(k string) {
	s.facts[k] = 2
}

// Clear both writes and bumps through a helper: no finding.
func (s *Store) Clear() {
	s.reset()
}

func (s *Store) reset() {
	s.facts = map[string]int{}
	s.epoch.Add(1)
}

// Len reads only: no finding.
func (s *Store) Len() int { return len(s.facts) }

// Key writes an unmarked scratch field: not index state, no finding.
func (s *Store) Key(k string) []byte {
	s.keyBuf = append(s.keyBuf[:0], k...)
	return s.keyBuf
}

//lint:onion-ignore fixture: rebuilt index is installed behind a swap that bumps elsewhere
func (s *Store) Rebuild(m map[string]int) {
	s.facts = m
}

// Graph marks no field, so every map/slice field is protected by the
// fallback rule — but scalar fields are not.
type Graph struct {
	epoch atomic.Uint64
	out   map[string][]string
	n     int
}

func (g *Graph) Link(a, b string) { // want "Graph.Link writes index field \"out\""
	g.out[a] = append(g.out[a], b)
}

// SetN writes a scalar: outside the fallback's map/slice rule.
func (g *Graph) SetN(n int) { g.n = n }

// Plain has no epoch field at all: the analyzer must skip it entirely.
type Plain struct {
	rows map[string]int
}

func (p *Plain) Set(k string) { p.rows[k] = 1 }
