package query

import "fixtures/memcharge/kb"

// cloneRows allocates tuple storage in a file outside the contract's
// scope (exec.go/pipeline.go/spill.go): no finding — the setup and
// result-surface paths own their accounting separately.
func cloneRows(rows [][]kb.Value) [][]kb.Value {
	out := make([][]kb.Value, len(rows))
	copy(out, rows)
	return out
}
