// Package query is the memcharge fixture's executor: this file is named
// exec.go so it falls under the tuple-execution contract.
package query

import (
	"fixtures/memcharge/kb"
	"fixtures/memcharge/mem"
)

// gatherUncharged allocates tuple storage with no budget call anywhere
// in the function: the PR 5 bug class.
func gatherUncharged(n int) [][]kb.Value {
	out := make([][]kb.Value, 0, n) // want "gatherUncharged allocates tuple storage .* but never charges the query memory budget"
	return out
}

// buildUncharged allocates a build table (map of tuple slices), also
// unbudgeted.
func buildUncharged(rows [][]kb.Value) map[string][][]kb.Value {
	tbl := make(map[string][][]kb.Value, len(rows)) // want "buildUncharged allocates tuple storage"
	for _, r := range rows {
		tbl[""] = append(tbl[""], r)
	}
	return tbl
}

// gatherCharged reserves before allocating: conforming.
func gatherCharged(bud *mem.Budget, n int) [][]kb.Value {
	bud.MustReserve(int64(n) * 24)
	return make([][]kb.Value, 0, n)
}

// gatherReserve uses the fallible reservation: also conforming.
func gatherReserve(bud *mem.Budget, n int) ([][]kb.Value, error) {
	if err := bud.Reserve(int64(n) * 24); err != nil {
		return nil, err
	}
	return make([][]kb.Value, 0, n), nil
}

// tupleArena is the budget-carrying allocator: its own methods charge,
// and callers that allocate through it are conforming.
type tupleArena struct {
	bud *mem.Budget
}

func newArena(bud *mem.Budget) *tupleArena { return &tupleArena{bud: bud} }

func (a *tupleArena) alloc(n int) []kb.Value {
	a.bud.MustReserve(int64(n) * 16)
	return make([]kb.Value, n)
}

// viaArena routes its allocation through the arena: conforming.
func viaArena(a *tupleArena, rows [][]kb.Value) [][]kb.Value {
	out := make([][]kb.Value, 0, len(rows)) // covered: the arena call below charges
	for range rows {
		out = append(out, a.alloc(2))
	}
	return out
}

// counts allocates non-tuple storage: outside the contract.
func counts(n int) []int {
	return make([]int, n)
}

// pooled is the suppression case: the allocation is recycled and its
// retention charged elsewhere, so the exception is annotated.
func pooled(n int) []kb.Value {
	//lint:onion-ignore fixture: pool-recycled buffer whose in-flight retention is charged by the pool
	return make([]kb.Value, n)
}
