// This file is named batch.go so it falls under the columnar half of
// the tuple-execution contract: a column vector is tuple storage turned
// sideways, and allocating one without a budget charge is the same PR 5
// bug class as an uncharged tuple slice.
package query

import (
	"fixtures/memcharge/kb"
	"fixtures/memcharge/mem"
)

// colBatch mirrors the executor's column batch: per-slot value vectors
// plus a selection mask.
type colBatch struct {
	cols [][]kb.Value
	sel  []bool
}

// newBatchUncharged allocates column vectors with no budget call
// anywhere in the function: the batch-plane variant of the bug class.
func newBatchUncharged(width, rows int) *colBatch {
	cols := make([][]kb.Value, width) // want "newBatchUncharged allocates tuple storage .* but never charges the query memory budget"
	for i := range cols {
		cols[i] = make([]kb.Value, rows) // want "newBatchUncharged allocates tuple storage"
	}
	return &colBatch{cols: cols, sel: make([]bool, rows)}
}

// newBatchCharged reserves the columns' capacity before allocating:
// conforming.
func newBatchCharged(bud *mem.Budget, width, rows int) *colBatch {
	bud.MustReserve(int64(width) * int64(rows) * 16)
	cols := make([][]kb.Value, width)
	for i := range cols {
		cols[i] = make([]kb.Value, rows)
	}
	return &colBatch{cols: cols, sel: make([]bool, rows)}
}

// stageProj stubs the streaming projection and its charge helper:
// ensure reserves a projected row's retention (or rotates the dedup set
// to a spill run), so the analyzer accepts it as a charge site
// alongside Reserve/MustReserve and the arena.
type stageProj struct {
	bud  *mem.Budget
	rows [][]kb.Value
}

func (pp *stageProj) ensure(n int64) { pp.bud.MustReserve(n) }

// projViaEnsure routes a projected row through ensure: conforming.
func projViaEnsure(pp *stageProj, row []kb.Value) {
	out := make([]kb.Value, len(row)) // covered: the ensure call below charges
	copy(out, row)
	pp.ensure(int64(len(row)) * 16)
	pp.rows = append(pp.rows, out)
}

// hashVector allocates the batch's hash vector — non-tuple storage,
// outside the contract.
func hashVector(rows int) []uint64 {
	return make([]uint64, rows)
}
