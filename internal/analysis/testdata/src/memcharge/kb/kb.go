// Package kb stubs the repo's value type for the memcharge fixture:
// the analyzer matches it by package path element and type name.
package kb

type Value struct {
	Kind byte
	Str  string
	Num  float64
}
