// Package mem stubs the repo's query memory budget for the memcharge
// fixture.
package mem

import "errors"

var ErrBudget = errors.New("mem: budget exceeded")

type Budget struct {
	used, limit int64
}

func (b *Budget) Reserve(n int64) error {
	if b == nil {
		return nil
	}
	if b.limit > 0 && b.used+n > b.limit {
		return ErrBudget
	}
	b.used += n
	return nil
}

func (b *Budget) MustReserve(n int64) {
	if b != nil {
		b.used += n
	}
}
