// Package serve is the lockscope fixture: critical sections that reach
// I/O directly, transitively through helpers, the exempt forms (after
// unlock, go statements, function literals), and a justified
// suppression.
package serve

import (
	"sync"
	"time"

	"fixtures/lockscope/vfs"
)

type Service struct {
	mu   sync.Mutex
	rwmu sync.RWMutex
	fs   vfs.FS
	hits int
}

// Bad reads a file inside the critical section: the PR 6 review bug.
func (s *Service) Bad(p string) {
	s.mu.Lock()
	s.fs.ReadFile(p) // want "reaches blocking I/O .* while holding s.mu"
	s.mu.Unlock()
}

// BadDeferred holds to end of function via deferred Unlock.
func (s *Service) BadDeferred(p string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fs.Remove(p) // want "reaches blocking I/O .* while holding s.mu"
}

// BadIndirect only reaches the sink through a helper: the call-graph
// walk must find it.
func (s *Service) BadIndirect(p string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.load(p) // want "reaches blocking I/O .* while holding s.mu"
}

func (s *Service) load(p string) {
	s.fs.ReadFile(p)
}

// BadSleep blocks on time inside a read-locked section.
func (s *Service) BadSleep() {
	s.rwmu.RLock()
	time.Sleep(time.Millisecond) // want "reaches blocking I/O .* while holding s.rwmu"
	s.rwmu.RUnlock()
}

// Good does its I/O after the unlock.
func (s *Service) Good(p string) {
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	s.fs.ReadFile(p)
}

// GoodSpawn hands the I/O to a goroutine: it does not run under the
// caller's lock.
func (s *Service) GoodSpawn(p string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go s.load(p)
}

// GoodClosure builds a closure under the lock but runs it after: the
// literal's body is analyzed as its own function.
func (s *Service) GoodClosure(p string) func() {
	s.mu.Lock()
	fn := func() { s.load(p) }
	s.mu.Unlock()
	return fn
}

// OwnLock is the suppression case: a tier whose own lock is documented
// to span its I/O.
func (s *Service) OwnLock(p string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:onion-ignore fixture: this tier's own lock is documented to span its I/O and is never held with the hot-path mutex
	s.fs.WriteFile(p, nil, 0)
}
