// Package vfs stubs the repo's filesystem seam for the lockscope
// fixture: every function of a package path ending in "vfs" is an I/O
// sink.
package vfs

type FS interface {
	ReadFile(path string) ([]byte, error)
	WriteFile(path string, data []byte, perm uint32) error
	Remove(path string) error
}

type OS struct{}

func (OS) ReadFile(path string) ([]byte, error)               { return nil, nil }
func (OS) WriteFile(path string, data []byte, p uint32) error { return nil }
func (OS) Remove(path string) error                           { return nil }
