// Package serve is the ctxflow fixture: request-path functions that
// mint fresh root contexts beside an incoming one, the allowed entry
// points that receive none, and a justified suppression.
package serve

import (
	"context"
	"net/http"
	"time"
)

// handleBad receives ctx and then detaches from it.
func handleBad(ctx context.Context, q string) error {
	sub, cancel := context.WithTimeout(context.Background(), time.Second) // want "handleBad receives a context but mints context.Background"
	defer cancel()
	_ = sub
	_ = ctx
	return nil
}

// handleTODO parks on context.TODO the same way.
func handleTODO(ctx context.Context) {
	_ = context.TODO() // want "handleTODO receives a context but mints context.TODO"
}

// handler carries the request context through *http.Request.
func handler(w http.ResponseWriter, r *http.Request) {
	_ = context.Background() // want "handler receives a context but mints context.Background"
}

// handleGood threads the incoming context.
func handleGood(ctx context.Context) error {
	sub, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return sub.Err()
}

// entry has no incoming context: minting a root here is the documented
// context-free convenience form, not a violation.
func entry(q string) error {
	return handleGood(context.Background())
}

// detachAudit is the suppression case: work that must outlive the
// request by design.
func detachAudit(ctx context.Context) {
	//lint:onion-ignore fixture: audit write must survive request cancellation by design
	_ = context.Background()
}
