// Package errwrap is the errwrap fixture: non-wrapping verbs on
// propagated errors, ==/!= against sentinels and context errors, the
// allowed forms (%w, errors.Is, nil comparisons), and a justified
// suppression.
package errwrap

import (
	"context"
	"errors"
	"fmt"
)

var ErrShed = errors.New("shed")

// wrapBad renders the cause with %v: identity lost.
func wrapBad(err error) error {
	return fmt.Errorf("query: %v", err) // want "error formatted with %v loses its identity; use %w"
}

// wrapBadQuoted loses it through %q the same way.
func wrapBadQuoted(err error) error {
	return fmt.Errorf("op %q failed: %s", "scan", err) // want "error formatted with %s loses its identity"
}

// wrapGood keeps the cause errors.Is-reachable.
func wrapGood(err error) error {
	return fmt.Errorf("query: %w", err)
}

// describeType may print an error's type: %T never claims identity.
func describeType(err error) string {
	return fmt.Sprintf("%T", err)
}

// compareBad breaks the moment anyone wraps the sentinel.
func compareBad(err error) bool {
	return err == ErrShed // want "comparing against sentinel ErrShed with == breaks once the error is wrapped"
}

// compareCtx does the same against a context error.
func compareCtx(err error) bool {
	return err != context.Canceled // want "comparing against sentinel context.Canceled with !="
}

// compareGood uses errors.Is, and nil comparison stays legal.
func compareGood(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrShed)
}

// localCompare is the suppression case: the error is produced and
// consumed in the same scope, never wrapped.
func localCompare(err error) bool {
	//lint:onion-ignore fixture: sentinel is created and compared in the same scope and never crosses a wrap boundary
	return err == ErrShed
}
