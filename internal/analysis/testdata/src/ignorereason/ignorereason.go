// Package ignorereason exercises the driver half of the suppression
// contract: a //lint:onion-ignore directive with no reason does not
// suppress anything and is itself reported.
package ignorereason

//lint:onion-ignore
var placeholder = 0
