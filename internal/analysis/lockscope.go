package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// LockScope enforces the PR 6 review invariant in the serving layer: no
// call that can reach file I/O, the network, or a sleep while a mutex
// is held. The serve mutexes guard in-memory maps on the hot path — a
// cache hit is "a short lock" by contract (that is what the E14
// hot-cache speedup measures), and one disk read inside a critical
// section turns every concurrent cache hit into a disk-latency wait.
//
// The check walks each function of a package whose path ends in
// "serve", tracks which mutexes are held after m.Lock()/m.RLock()
// (released by the matching Unlock; a deferred Unlock holds to the end
// of the function), and for every call issued while a lock is held
// asks the program-wide call graph whether the callee can reach a sink:
// vfs (the repo's filesystem seam), persist, os file I/O, package net,
// or time.Sleep. `go` statements are exempt (the spawned goroutine does
// not run under the caller's lock); deferred calls are exempt (they run
// at return, where an explicitly-unlocked mutex is no longer held —
// pairing them with deferred Unlocks is beyond a lexical check);
// function literals are analyzed as functions in their own right.
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc: "serve-layer critical sections must not reach file I/O, network or sleeps " +
		"(call-graph walk from every statement executed under a held mutex; PR 6 review invariant)",
	Run: runLockScope,
}

func runLockScope(pass *Pass) error {
	pkg := pass.Pkg
	if !pkgElemIs(pkg, "serve") {
		return nil
	}
	cg := pass.Prog.CallGraph()
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ls := &lockScanner{pass: pass, cg: cg}
			ls.scanFuncBody(fd.Body)
		}
	}
	return nil
}

type lockScanner struct {
	pass *Pass
	cg   *callGraph
}

// scanFuncBody analyzes one function body (and, recursively, each
// function literal inside it as an independent body).
func (ls *lockScanner) scanFuncBody(body *ast.BlockStmt) {
	ls.scanStmts(body.List, map[string]bool{})
	// Function literals get their own scope: a closure's body does not
	// run under the locks lexically held where it is written (it runs
	// when called — often deferred, after an unlock).
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			ls.scanStmts(lit.Body.List, map[string]bool{})
		}
		return true
	})
}

// scanStmts walks one statement list with the set of held mutexes
// (keyed by the receiver expression's source form). Nested control-flow
// bodies get a copy of the set: lock-state changes inside a branch are
// not propagated past it (conservative toward false negatives, never
// false positives on the fallthrough path).
func (ls *lockScanner) scanStmts(stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch st := stmt.(type) {
		case *ast.ExprStmt:
			if key, op, ok := ls.mutexOp(st.X); ok {
				switch op {
				case "Lock", "RLock":
					held[key] = true
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				continue
			}
			ls.checkExpr(st.X, held)
		case *ast.DeferStmt:
			// A deferred Unlock keeps the mutex held for the rest of the
			// body; any other deferred call runs at return and is not
			// checked here (see the analyzer doc).
			continue
		case *ast.GoStmt:
			continue // runs on its own goroutine, not under these locks
		case *ast.BlockStmt:
			ls.scanStmts(st.List, copyHeld(held))
		case *ast.IfStmt:
			ls.checkStmt(st.Init, held)
			ls.checkExpr(st.Cond, held)
			ls.scanStmts(st.Body.List, copyHeld(held))
			if st.Else != nil {
				ls.scanStmts([]ast.Stmt{st.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			ls.checkStmt(st.Init, held)
			ls.checkExpr(st.Cond, held)
			ls.checkStmt(st.Post, held)
			ls.scanStmts(st.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			ls.checkExpr(st.X, held)
			ls.scanStmts(st.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			ls.checkStmt(st.Init, held)
			ls.checkExpr(st.Tag, held)
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					ls.scanStmts(cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			ls.checkStmt(st.Init, held)
			ls.checkStmt(st.Assign, held)
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					ls.scanStmts(cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					ls.checkStmt(cc.Comm, held)
					ls.scanStmts(cc.Body, copyHeld(held))
				}
			}
		case *ast.LabeledStmt:
			ls.scanStmts([]ast.Stmt{st.Stmt}, held)
		default:
			ls.checkStmt(stmt, held)
		}
	}
}

func (ls *lockScanner) checkStmt(stmt ast.Stmt, held map[string]bool) {
	if stmt == nil || len(held) == 0 {
		return
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed independently
		case *ast.CallExpr:
			ls.checkCall(n, held)
		}
		return true
	})
}

func (ls *lockScanner) checkExpr(expr ast.Expr, held map[string]bool) {
	if expr == nil || len(held) == 0 {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			ls.checkCall(n, held)
		}
		return true
	})
}

// checkCall reports the call if its callee is — or transitively reaches
// — an I/O sink, naming the held mutexes and the offending chain.
func (ls *lockScanner) checkCall(call *ast.CallExpr, held map[string]bool) {
	callee := calleeOf(ls.pass.Pkg.Info, call)
	if callee == nil {
		return
	}
	chain, hit := ls.cg.ReachesSink(callee, lockScopeSink)
	if !hit {
		return
	}
	locks := make([]string, 0, len(held))
	for k := range held {
		locks = append(locks, k)
	}
	via := ""
	if len(chain) > 1 {
		shown := chain
		if len(shown) > 4 {
			shown = append(append([]string{}, shown[:3]...), "...", shown[len(shown)-1])
		}
		via = fmt.Sprintf(" (via %s)", strings.Join(shown, " -> "))
	} else if len(chain) == 1 {
		via = fmt.Sprintf(" (%s)", chain[0])
	}
	ls.pass.Reportf(call.Pos(),
		"call reaches blocking I/O%s while holding %s; disk, network and sleeps must never "+
			"extend a serve critical section (PR 6 review invariant)",
		via, strings.Join(locks, ", "))
}

// mutexOp matches m.Lock()/RLock()/Unlock()/RUnlock() on sync.Mutex or
// sync.RWMutex (directly or embedded) and returns the receiver
// expression's source form as the lock identity.
func (ls *lockScanner) mutexOp(expr ast.Expr) (key, op string, ok bool) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return "", "", false
	}
	f := calleeOf(ls.pass.Pkg.Info, call)
	if f == nil {
		return "", "", false
	}
	switch f.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	sig, sok := f.Type().(*types.Signature)
	if !sok || sig.Recv() == nil {
		return "", "", false
	}
	if !typeIs(sig.Recv().Type(), "sync", "Mutex") && !typeIs(sig.Recv().Type(), "sync", "RWMutex") {
		return "", "", false
	}
	sel, sok := call.Fun.(*ast.SelectorExpr)
	if !sok {
		return "", "", false
	}
	return exprString(sel.X), f.Name(), true
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

// exprString renders a (small) expression for lock identity and
// messages.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	default:
		return "?"
	}
}

// lockScopeSink classifies functions that block on I/O or time: the
// repo's vfs seam (every function — it exists to be the I/O boundary)
// and persistence layer, os file operations, anything in package net,
// and time.Sleep.
func lockScopeSink(f *types.Func) (string, bool) {
	pkg := f.Pkg()
	if pkg == nil {
		return "", false
	}
	path := pkg.Path()
	switch pathElem(path) {
	case "vfs":
		return f.FullName(), true
	case "persist":
		if f.Exported() {
			return f.FullName(), true
		}
	}
	if path == "time" && f.Name() == "Sleep" {
		return "time.Sleep", true
	}
	if path == "net" {
		return f.FullName(), true
	}
	if path == "os" {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			if typeIs(sig.Recv().Type(), "os", "File") {
				return f.FullName(), true
			}
			return "", false
		}
		if osIOFuncs[f.Name()] {
			return "os." + f.Name(), true
		}
	}
	return "", false
}

// osIOFuncs are the package-level os functions that hit the filesystem.
var osIOFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true,
	"Remove": true, "RemoveAll": true, "Rename": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"Stat": true, "Lstat": true, "Truncate": true,
	"Chmod": true, "Chown": true, "Link": true, "Symlink": true,
	"Chtimes": true, "ReadLink": true, "Getwd": true,
}
