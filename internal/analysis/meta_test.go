package analysis

import (
	"path/filepath"
	"testing"
)

// TestRepoClean is the suite's own acceptance gate: the full analyzer
// suite over the whole repository must report nothing. Every deliberate
// exception in the tree carries a //lint:onion-ignore with a reason; a
// new finding here is either a real invariant violation or a new
// exception that needs justifying — both want a human.
//
// This is the same check CI runs as `onionlint ./...`; keeping it in
// `go test` too means a violation fails the ordinary test loop, not
// just the lint step.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository; skipped in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("resolving repo root: %v", err)
	}
	prog, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	findings, err := prog.Run(All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
