package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// MemCharge enforces the PR 5 memory-governance contract in the query
// executor: tuple storage — the memory that grows with the join
// frontier, not with any constant — is only allocated by code that
// charges the per-query mem.Budget, either directly
// (Reserve/MustReserve) or through a budget-carrying arena. An
// unbudgeted allocation of tuple storage is invisible to the admission
// governor and to Options{MemoryLimit}: exactly the class of bug the
// budget layer was built to make impossible.
//
// The check: in the executor files of a package whose path ends in
// "query" (exec.go, pipeline.go, spill.go — the tuple execution path),
// any `make` whose result type stores tuples (slices of kb.Value,
// slices/maps of such slices) must sit in a function that also touches
// the budget: calls (*mem.Budget).Reserve/MustReserve, or allocates
// through the tupleArena (whose blocks are charged on rotation). The
// check is per-function, not per-path: a function that allocates hot
// storage must at least participate in accounting.
var MemCharge = &Analyzer{
	Name: "memcharge",
	Doc: "executor/pipeline/spill allocations of tuple storage must be reachable from a " +
		"mem.Budget charge or a budget-carrying arena (PR 5 memory-governance contract)",
	Run: runMemCharge,
}

// memChargeFiles are the tuple-execution files the contract covers —
// the row-at-a-time path and the columnar batch path (whose column
// vectors are tuple storage turned sideways).
var memChargeFiles = map[string]bool{
	"exec.go":      true,
	"pipeline.go":  true,
	"spill.go":     true,
	"batch.go":     true,
	"batchpipe.go": true,
	"projspill.go": true,
}

func runMemCharge(pass *Pass) error {
	pkg := pass.Pkg
	if !pkgElemIs(pkg, "query") {
		return nil
	}
	for _, file := range pkg.Files {
		name := filepath.Base(pass.Prog.Fset.Position(file.Pos()).Filename)
		if !memChargeFiles[name] {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var hotAllocs []*ast.CallExpr
			charges := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isBuiltin(pkg.Info, call, "make") && tupleStorage(pkg.Info.Types[call].Type) {
					hotAllocs = append(hotAllocs, call)
				}
				if isBudgetCharge(pkg.Info, call) || isArenaUse(pkg.Info, call) ||
					isProjCharge(pkg.Info, call) {
					charges = true
				}
				return true
			})
			if charges {
				continue
			}
			for _, call := range hotAllocs {
				pass.Reportf(call.Pos(),
					"%s allocates tuple storage (%s) but never charges the query memory budget; "+
						"reserve it (mem.Budget.Reserve/MustReserve) or allocate through a budget-carrying arena (PR 5 contract)",
					fd.Name.Name, types.TypeString(pkg.Info.Types[call].Type, types.RelativeTo(pkg.Types)))
			}
		}
	}
	return nil
}

// tupleStorage reports whether t holds tuples: a slice/array whose
// elements are kb.Value or themselves tuple storage, or a map whose
// values are tuple storage (build tables). Structs and pointers are not
// traversed — a struct owns its accounting.
func tupleStorage(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return typeIs(u.Elem(), "kb", "Value") || tupleStorage(u.Elem())
	case *types.Array:
		return typeIs(u.Elem(), "kb", "Value") || tupleStorage(u.Elem())
	case *types.Map:
		return tupleStorage(u.Elem())
	}
	return false
}

// isBudgetCharge matches Reserve/MustReserve calls on *mem.Budget.
func isBudgetCharge(info *types.Info, call *ast.CallExpr) bool {
	f := calleeOf(info, call)
	if f == nil || (f.Name() != "Reserve" && f.Name() != "MustReserve") {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return typeIs(sig.Recv().Type(), "mem", "Budget")
}

// isProjCharge matches the streaming projection's charge helper: a
// stageProj.ensure call reserves the row's retention (or rotates the
// dedup set to a spill run), so a function that allocates a projected
// row through it participates in accounting.
func isProjCharge(info *types.Info, call *ast.CallExpr) bool {
	f := calleeOf(info, call)
	if f == nil || f.Name() != "ensure" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return typeIs(sig.Recv().Type(), "query", "stageProj")
}

// isArenaUse matches tuple allocation routed through the budget-carrying
// arena: newArena itself or any tupleArena method.
func isArenaUse(info *types.Info, call *ast.CallExpr) bool {
	f := calleeOf(info, call)
	if f == nil {
		return false
	}
	if f.Name() == "newArena" {
		return true
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return typeIs(sig.Recv().Type(), "query", "tupleArena")
}
