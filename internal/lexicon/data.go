package lexicon

import "sync"

// synsetDef is one row of the embedded vocabulary: words sharing a sense
// and the head word of the parent (more general) synset. Parents are
// resolved by the head word (first word) of the parent row, which must be
// unique among heads.
type synsetDef struct {
	words    string // comma-separated; first is the head word
	hypernym string // head word of the parent synset, "" for roots
	gloss    string
}

// defaultVocabulary is a compact WordNet-style noun hierarchy around the
// paper's transportation/commerce domain plus enough general vocabulary to
// exercise ambiguity (words with several senses) and unknown-word misses.
var defaultVocabulary = []synsetDef{
	// Upper ontology.
	{"entity", "", "that which exists"},
	{"object,physical_object", "entity", "a tangible entity"},
	{"abstraction,abstract_entity", "entity", "an intangible entity"},
	{"artifact,artefact", "object", "a man-made object"},
	{"instrumentality,instrumentation", "artifact", "an artifact serving a purpose"},
	{"structure,construction", "artifact", "a built thing"},

	// Transportation (the paper's running example).
	{"conveyance,transport", "instrumentality", "something that serves as a means of transportation"},
	{"vehicle", "conveyance", "a conveyance that transports people or objects"},
	{"wheeled_vehicle", "vehicle", "a vehicle that moves on wheels"},
	{"self_propelled_vehicle", "wheeled_vehicle", "a wheeled vehicle with its own engine"},
	{"motor_vehicle,automotive_vehicle", "self_propelled_vehicle", "a self-propelled wheeled vehicle"},
	{"car,auto,automobile,motorcar", "motor_vehicle", "a four-wheeled motor vehicle"},
	{"passenger_car", "car", "a car for carrying passengers"},
	{"suv,sport_utility_vehicle", "car", "a high-clearance passenger car"},
	{"truck,motortruck,lorry", "motor_vehicle", "a motor vehicle for transporting loads"},
	{"van", "motor_vehicle", "an enclosed cargo motor vehicle"},
	{"bus,autobus,coach", "motor_vehicle", "a vehicle carrying many passengers"},
	{"bicycle,bike,cycle", "wheeled_vehicle", "a pedal-driven two-wheeler"},
	{"train,railroad_train", "conveyance", "a connected line of railroad cars"},
	{"ship,vessel", "conveyance", "a large watercraft"},
	{"aircraft,airplane,plane", "conveyance", "a machine for air travel"},
	{"carrier,transporter", "conveyance", "a conveyance or company that carries"},
	{"cargo_carrier", "carrier", "a carrier for goods"},
	{"goods_vehicle,freight_vehicle", "truck", "a vehicle for carrying goods"},

	// Cargo and goods.
	{"cargo,freight,payload,shipment,lading", "object", "goods carried by a conveyance"},
	{"goods,commodity,merchandise,ware", "object", "articles of commerce"},
	{"product", "object", "an article produced or manufactured"},
	{"container", "instrumentality", "an object for holding things"},
	{"box,crate", "container", "a rigid container"},
	{"pallet", "container", "a portable platform for goods"},

	// People and roles.
	{"person,individual,human,soul", "object", "a human being"},
	{"driver,motorist,operator", "person", "a person who drives a vehicle"},
	{"owner,proprietor,possessor", "person", "a person who owns something"},
	{"buyer,purchaser,vendee,customer,client", "person", "a person who buys"},
	{"seller,vendor,marketer,trader", "person", "a person who sells"},
	{"worker,employee", "person", "a person who works"},
	{"passenger,rider", "person", "a traveller in a conveyance"},
	{"expert,specialist", "person", "a person with special knowledge"},

	// Organizations and places.
	{"organization,organisation,establishment", "abstraction", "a group with a purpose"},
	{"company,firm,business,enterprise,corporation", "organization", "a commercial organization"},
	{"factory,plant,mill,manufactory,works", "company", "a building or company where goods are made"},
	{"warehouse,depot,storehouse,entrepot", "structure", "a storage building"},
	{"shop,store", "structure", "a building where goods are sold"},
	{"port,harbor,harbour", "structure", "a place where ships dock"},

	// Commerce and attributes.
	{"transportation,transport_service,shipping", "abstraction", "the commercial movement of goods or people"},
	{"attribute,property,dimension", "abstraction", "a quality ascribed to something"},
	{"price,cost,terms,damage", "attribute", "the amount of money needed to buy"},
	{"value,worth", "attribute", "the monetary magnitude of something"},
	{"weight,mass", "attribute", "the heaviness of an object"},
	{"size,magnitude", "attribute", "physical extent"},
	{"model,version,variant", "attribute", "a particular design or version"},
	{"name,designation,appellation", "attribute", "what something is called"},
	{"color,colour", "attribute", "visual hue"},
	{"speed,velocity", "attribute", "rate of motion"},
	{"capacity,content_volume", "attribute", "the amount that can be contained"},
	{"quantity,amount,measure", "abstraction", "how much there is of something"},
	{"number,figure", "quantity", "a numeric quantity"},

	// Money and currency (the paper's functional-rule example).
	{"money,currency", "abstraction", "a medium of exchange"},
	{"euro", "money", "the European common currency"},
	{"guilder,gulden,florin,dutch_guilder", "money", "the former Dutch currency"},
	{"pound,pound_sterling,quid", "money", "the British currency"},
	{"dollar,buck,clam", "money", "the US currency"},

	// Documents and data (knowledge-source vocabulary).
	{"document,record,papers", "abstraction", "a written account"},
	{"invoice,bill,account", "document", "an itemized statement of money owed"},
	{"order,purchase_order", "document", "a commission to buy"},
	{"contract,agreement", "document", "a binding commercial accord"},
	{"schedule,timetable", "document", "a plan of times"},
	{"catalog,catalogue,inventory_list", "document", "an itemized list"},

	// A second sense of several words, to exercise ambiguity.
	{"machine", "instrumentality", "a mechanical device"},
	{"machine_car_sense,machine", "car", "an informal word for a car"},
	{"plant_organism,plant,flora", "object", "a living organism lacking locomotion"},
	{"coach_trainer,coach", "person", "a person who trains athletes"},
	{"mill_grinder,mill", "machine", "a machine for grinding"},
	{"order_command,order,command", "abstraction", "an authoritative instruction"},
	{"pound_unit,pound", "weight", "a unit of weight"},

	// Office / administrative vocabulary (federation example).
	{"department,section,division", "organization", "an organizational unit"},
	{"office,bureau", "organization", "an administrative unit"},
	{"manager,director,supervisor", "person", "a person who manages"},
	{"address,street_address", "attribute", "where something is located"},
	{"date,day_of_record", "attribute", "a particular day"},
	{"identifier,id,key", "attribute", "a distinguishing code"},
}

var (
	defaultOnce sync.Once
	defaultLex  *Lexicon
)

// DefaultLexicon returns the embedded vocabulary, built once and shared;
// callers must treat it as read-only (build a fresh lexicon with New for
// mutation).
func DefaultLexicon() *Lexicon {
	defaultOnce.Do(func() {
		lex, err := buildDefault()
		if err != nil {
			// The embedded table is static; failure is a programming error.
			panic("lexicon: building embedded vocabulary: " + err.Error())
		}
		defaultLex = lex
	})
	return defaultLex
}

func buildDefault() (*Lexicon, error) {
	l := New()
	byHead := make(map[string]SynsetID, len(defaultVocabulary))
	for _, def := range defaultVocabulary {
		words := splitWords(def.words)
		id, err := l.AddSynset(words, def.gloss)
		if err != nil {
			return nil, err
		}
		head := NormalizeWord(words[0])
		byHead[head] = id
	}
	for _, def := range defaultVocabulary {
		if def.hypernym == "" {
			continue
		}
		child := byHead[NormalizeWord(splitWords(def.words)[0])]
		parent, ok := byHead[NormalizeWord(def.hypernym)]
		if !ok {
			return nil, errUnknownHypernym(def.hypernym)
		}
		if err := l.AddHypernym(child, parent); err != nil {
			return nil, err
		}
	}
	return l, nil
}

type errUnknownHypernym string

func (e errUnknownHypernym) Error() string {
	return "lexicon: unknown hypernym head word " + string(e)
}

func splitWords(csv string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(csv); i++ {
		if i == len(csv) || csv[i] == ',' {
			if i > start {
				out = append(out, csv[start:i])
			}
			start = i + 1
		}
	}
	return out
}
