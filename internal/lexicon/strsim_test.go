package lexicon

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokens(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"CargoCarrierVehicle", []string{"cargo", "carrier", "vehicle"}},
		{"PassengerCar", []string{"passenger", "car"}},
		{"my_term-name", []string{"my", "term", "name"}},
		{"XMLFile", []string{"xml", "file"}},
		{"price2000", []string{"price", "2000"}},
		{"2000price", []string{"2000", "price"}},
		{"lowercase", []string{"lowercase"}},
		{"ALLCAPS", []string{"allcaps"}},
		{"", nil},
		{"a.b:c/d", []string{"a", "b", "c", "d"}},
	}
	for _, c := range cases {
		if got := Tokens(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokens(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestHeadToken(t *testing.T) {
	if got := HeadToken("PassengerCar"); got != "car" {
		t.Fatalf("HeadToken = %q, want car", got)
	}
	if got := HeadToken(""); got != "" {
		t.Fatalf("HeadToken(\"\") = %q", got)
	}
}

func TestNormalize(t *testing.T) {
	if got := Normalize("CargoCarrier"); got != "cargo_carrier" {
		t.Fatalf("Normalize = %q", got)
	}
	if Normalize("cargo_carrier") != Normalize("CargoCarrier") {
		t.Fatalf("Normalize not canonical across styles")
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"car", "cart", 1},
		{"car", "car", 0},
		{"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditSimilarity(t *testing.T) {
	if s := EditSimilarity("car", "car"); s != 1 {
		t.Fatalf("identical similarity = %v", s)
	}
	if s := EditSimilarity("", ""); s != 1 {
		t.Fatalf("empty similarity = %v", s)
	}
	if s := EditSimilarity("abc", "xyz"); s != 0 {
		t.Fatalf("disjoint similarity = %v", s)
	}
	if a, b := EditSimilarity("vehicle", "vehicles"), EditSimilarity("vehicle", "truck"); a <= b {
		t.Fatalf("similarity ordering wrong: %v vs %v", a, b)
	}
}

func TestJaccardTokens(t *testing.T) {
	a := Tokens("CargoCarrierVehicle")
	b := Tokens("VehicleCarrier")
	got := JaccardTokens(a, b)
	if got <= 0 || got >= 1 {
		t.Fatalf("JaccardTokens = %v, want in (0,1)", got)
	}
	if JaccardTokens(a, a) != 1 {
		t.Fatalf("self Jaccard != 1")
	}
	if JaccardTokens(nil, nil) != 1 {
		t.Fatalf("empty-empty Jaccard != 1")
	}
	if JaccardTokens(a, nil) != 0 {
		t.Fatalf("empty-right Jaccard != 0")
	}
}

func TestTrigramSimilarity(t *testing.T) {
	if TrigramSimilarity("vehicle", "vehicle") != 1 {
		t.Fatalf("self trigram != 1")
	}
	if TrigramSimilarity("", "") != 1 {
		t.Fatalf("empty trigram != 1")
	}
	if TrigramSimilarity("vehicle", "") != 0 {
		t.Fatalf("empty-right trigram != 0")
	}
	near := TrigramSimilarity("vehicle", "vehicles")
	far := TrigramSimilarity("vehicle", "factory")
	if near <= far {
		t.Fatalf("trigram ordering wrong: %v vs %v", near, far)
	}
}

// Property: edit distance is a metric (symmetry and identity; triangle
// inequality spot-checked).
func TestQuickEditDistanceMetric(t *testing.T) {
	sym := func(a, b string) bool {
		if len(a) > 30 || len(b) > 30 {
			return true
		}
		return EditDistance(a, b) == EditDistance(b, a)
	}
	if err := quick.Check(sym, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	ident := func(a string) bool {
		if len(a) > 30 {
			return true
		}
		return EditDistance(a, a) == 0
	}
	if err := quick.Check(ident, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	tri := func(a, b, c string) bool {
		if len(a) > 15 || len(b) > 15 || len(c) > 15 {
			return true
		}
		return EditDistance(a, c) <= EditDistance(a, b)+EditDistance(b, c)
	}
	if err := quick.Check(tri, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: all similarity measures stay within [0,1].
func TestQuickSimilarityBounds(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 30 || len(b) > 30 {
			return true
		}
		es := EditSimilarity(a, b)
		ts := TrigramSimilarity(a, b)
		js := JaccardTokens(Tokens(a), Tokens(b))
		ok := func(x float64) bool { return x >= 0 && x <= 1 }
		return ok(es) && ok(ts) && ok(js)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
