package lexicon

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Load reads a lexicon from its text format, one synset per line:
//
//	word1,word2,... : parentHead1,parentHead2 : gloss
//
// The first word of a line is the synset's head word; parent references
// name the head word of another line (forward references allowed). The
// parent and gloss fields may be empty; '#' starts a comment. This is the
// bulk-import path for plugging a real WordNet-derived vocabulary into
// SKAT in place of the embedded default.
func Load(r io.Reader) (*Lexicon, error) {
	l := New()
	type pending struct {
		child   SynsetID
		parents []string
		line    int
	}
	byHead := make(map[string]SynsetID)
	var links []pending

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		parts := strings.SplitN(text, ":", 3)
		words := splitTrim(parts[0], ",")
		if len(words) == 0 {
			return nil, fmt.Errorf("lexicon: line %d: synset needs at least one word", line)
		}
		gloss := ""
		if len(parts) == 3 {
			gloss = strings.TrimSpace(parts[2])
		}
		id, err := l.AddSynset(words, gloss)
		if err != nil {
			return nil, fmt.Errorf("lexicon: line %d: %w", line, err)
		}
		head := NormalizeWord(words[0])
		if _, dup := byHead[head]; dup {
			return nil, fmt.Errorf("lexicon: line %d: duplicate head word %q", line, head)
		}
		byHead[head] = id
		if len(parts) >= 2 {
			if parents := splitTrim(parts[1], ","); len(parents) > 0 {
				links = append(links, pending{child: id, parents: parents, line: line})
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lexicon: reading: %w", err)
	}
	for _, p := range links {
		for _, parent := range p.parents {
			pid, ok := byHead[NormalizeWord(parent)]
			if !ok {
				return nil, fmt.Errorf("lexicon: line %d: unknown parent head %q", p.line, parent)
			}
			if err := l.AddHypernym(p.child, pid); err != nil {
				return nil, fmt.Errorf("lexicon: line %d: %w", p.line, err)
			}
		}
	}
	return l, nil
}

// LoadString is Load over an in-memory string.
func LoadString(s string) (*Lexicon, error) {
	return Load(strings.NewReader(s))
}

// Dump renders the lexicon in Load's text format (sorted by synset id, so
// a Load → Dump → Load round trip is stable).
func (l *Lexicon) Dump(w io.Writer) error {
	var b strings.Builder
	for _, s := range l.synsets {
		b.WriteString(strings.Join(s.Words, ","))
		b.WriteString(" : ")
		parents := make([]string, 0, len(s.Hypernyms))
		for _, h := range s.Hypernyms {
			parents = append(parents, l.synsets[h].Words[0])
		}
		b.WriteString(strings.Join(parents, ","))
		b.WriteString(" : ")
		b.WriteString(s.Gloss)
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func splitTrim(s, sep string) []string {
	var out []string
	for _, part := range strings.Split(s, sep) {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}
