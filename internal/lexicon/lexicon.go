// Package lexicon is the semantic lexicon substrate ONION's articulation
// tool consults when proposing semantic bridges (EDBT 2000, §2.4: "SKAT
// ... uses expert rules and other external knowledge sources or semantic
// lexicons (e.g., Wordnet)").
//
// WordNet itself is external data this reproduction does not ship, so the
// package implements the same structure — synsets (synonym sets) linked by
// hypernymy — with an embedded domain vocabulary (see DefaultLexicon)
// covering the paper's transportation world and enough general vocabulary
// to exercise ambiguity and miss behaviour. The query surface (Synonyms,
// Hypernyms, path-based similarity) is what SKAT's matchers consume; any
// richer lexicon can be loaded through the same builder API.
package lexicon

import (
	"fmt"
	"sort"
	"strings"
)

// SynsetID identifies a synset within one Lexicon.
type SynsetID int

// Synset is a set of words sharing one sense, with hypernym links to more
// general synsets.
type Synset struct {
	ID        SynsetID
	Words     []string
	Gloss     string
	Hypernyms []SynsetID
}

// Lexicon is an in-memory synset database. The zero value is not usable;
// call New.
type Lexicon struct {
	synsets []Synset
	byWord  map[string][]SynsetID
	// hyponyms is the inverse of the hypernym relation.
	hyponyms map[SynsetID][]SynsetID
}

// New returns an empty lexicon.
func New() *Lexicon {
	return &Lexicon{
		byWord:   make(map[string][]SynsetID),
		hyponyms: make(map[SynsetID][]SynsetID),
	}
}

// AddSynset registers a new synset with the given words and gloss and
// returns its id. Words are normalised (lowercased, spaces collapsed to
// underscores); empty word lists are rejected.
func (l *Lexicon) AddSynset(words []string, gloss string) (SynsetID, error) {
	if len(words) == 0 {
		return 0, fmt.Errorf("lexicon: synset with no words")
	}
	id := SynsetID(len(l.synsets))
	norm := make([]string, 0, len(words))
	for _, w := range words {
		nw := NormalizeWord(w)
		if nw == "" {
			return 0, fmt.Errorf("lexicon: empty word in synset %v", words)
		}
		norm = append(norm, nw)
		l.byWord[nw] = append(l.byWord[nw], id)
	}
	l.synsets = append(l.synsets, Synset{ID: id, Words: norm, Gloss: gloss})
	return id, nil
}

// AddHypernym links child (more specific) to parent (more general).
func (l *Lexicon) AddHypernym(child, parent SynsetID) error {
	if !l.valid(child) || !l.valid(parent) {
		return fmt.Errorf("lexicon: unknown synset in hypernym link %d -> %d", child, parent)
	}
	if child == parent {
		return fmt.Errorf("lexicon: synset %d cannot be its own hypernym", child)
	}
	for _, h := range l.synsets[child].Hypernyms {
		if h == parent {
			return nil
		}
	}
	l.synsets[child].Hypernyms = append(l.synsets[child].Hypernyms, parent)
	l.hyponyms[parent] = append(l.hyponyms[parent], child)
	return nil
}

func (l *Lexicon) valid(id SynsetID) bool {
	return id >= 0 && int(id) < len(l.synsets)
}

// NumSynsets returns the number of synsets.
func (l *Lexicon) NumSynsets() int { return len(l.synsets) }

// NumWords returns the number of distinct indexed words.
func (l *Lexicon) NumWords() int { return len(l.byWord) }

// Synset returns a synset by id.
func (l *Lexicon) Synset(id SynsetID) (Synset, bool) {
	if !l.valid(id) {
		return Synset{}, false
	}
	return l.synsets[id], true
}

// lookup returns the synsets of word, falling back to simple English
// plural lemmatisation when the surface form is unknown ("cars" → "car").
// Ontology terms are frequently pluralised; WordNet-style lookups
// lemmatise before searching, and so does this lexicon.
func (l *Lexicon) lookup(word string) []SynsetID {
	nw := NormalizeWord(word)
	if ids := l.byWord[nw]; len(ids) > 0 {
		return ids
	}
	for _, cand := range pluralLemmas(nw) {
		if ids := l.byWord[cand]; len(ids) > 0 {
			return ids
		}
	}
	return nil
}

// Lemma returns the canonical lexicon form of word: the normalised word
// itself if known, else its first known plural-stripped variant, else the
// normalised input unchanged.
func (l *Lexicon) Lemma(word string) string {
	nw := NormalizeWord(word)
	if len(l.byWord[nw]) > 0 {
		return nw
	}
	for _, cand := range pluralLemmas(nw) {
		if len(l.byWord[cand]) > 0 {
			return cand
		}
	}
	return nw
}

func pluralLemmas(w string) []string {
	var out []string
	if strings.HasSuffix(w, "ies") && len(w) > 3 {
		out = append(out, w[:len(w)-3]+"y")
	}
	if strings.HasSuffix(w, "es") && len(w) > 2 {
		out = append(out, w[:len(w)-2])
	}
	if strings.HasSuffix(w, "s") && len(w) > 1 {
		out = append(out, w[:len(w)-1])
	}
	return out
}

// SynsetsOf returns the synsets containing word (its senses), after
// lemmatisation.
func (l *Lexicon) SynsetsOf(word string) []SynsetID {
	return append([]SynsetID(nil), l.lookup(word)...)
}

// Known reports whether the word (or its lemma) appears in the lexicon.
func (l *Lexicon) Known(word string) bool {
	return len(l.lookup(word)) > 0
}

// Synonyms returns every word sharing a synset with word (excluding the
// word's own lemma), sorted. Unknown words yield nil.
func (l *Lexicon) Synonyms(word string) []string {
	lemma := l.Lemma(word)
	set := make(map[string]struct{})
	for _, id := range l.lookup(word) {
		for _, w := range l.synsets[id].Words {
			if w != lemma {
				set[w] = struct{}{}
			}
		}
	}
	if len(set) == 0 {
		return nil
	}
	return sortedKeys(set)
}

// AreSynonyms reports whether the two words share any synset (after
// lemmatisation).
func (l *Lexicon) AreSynonyms(a, b string) bool {
	na, nb := l.Lemma(a), l.Lemma(b)
	if na == nb {
		return len(l.byWord[na]) > 0
	}
	bs := l.byWord[nb]
	for _, ia := range l.byWord[na] {
		for _, ib := range bs {
			if ia == ib {
				return true
			}
		}
	}
	return false
}

// Hypernyms returns the words of the immediate hypernym synsets of every
// sense of word, sorted.
func (l *Lexicon) Hypernyms(word string) []string {
	set := make(map[string]struct{})
	for _, id := range l.lookup(word) {
		for _, h := range l.synsets[id].Hypernyms {
			for _, w := range l.synsets[h].Words {
				set[w] = struct{}{}
			}
		}
	}
	if len(set) == 0 {
		return nil
	}
	return sortedKeys(set)
}

// Hyponyms returns the words of the immediate hyponym synsets of every
// sense of word, sorted.
func (l *Lexicon) Hyponyms(word string) []string {
	set := make(map[string]struct{})
	for _, id := range l.lookup(word) {
		for _, h := range l.hyponyms[id] {
			for _, w := range l.synsets[h].Words {
				set[w] = struct{}{}
			}
		}
	}
	if len(set) == 0 {
		return nil
	}
	return sortedKeys(set)
}

// IsHypernymOf reports whether general is a (transitive) hypernym of
// specific, under any sense pairing.
func (l *Lexicon) IsHypernymOf(general, specific string) bool {
	gs := l.lookup(general)
	if len(gs) == 0 {
		return false
	}
	gset := make(map[SynsetID]bool, len(gs))
	for _, g := range gs {
		gset[g] = true
	}
	for _, s := range l.lookup(specific) {
		for _, anc := range l.ancestors(s) {
			if gset[anc] {
				return true
			}
		}
	}
	return false
}

// AncestorSynsets returns the synsets of word plus all hypernym synsets up
// to maxDepth levels above any of its senses (depth 0 = the senses
// themselves). SKAT's candidate gate uses shallow ancestor overlap to pair
// terms whose heads sit near each other in the hierarchy.
func (l *Lexicon) AncestorSynsets(word string, maxDepth int) []SynsetID {
	start := l.lookup(word)
	if len(start) == 0 {
		return nil
	}
	depth := make(map[SynsetID]int, len(start))
	queue := append([]SynsetID(nil), start...)
	for _, s := range start {
		depth[s] = 0
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if depth[n] >= maxDepth {
			continue
		}
		for _, h := range l.synsets[n].Hypernyms {
			if _, seen := depth[h]; !seen {
				depth[h] = depth[n] + 1
				queue = append(queue, h)
			}
		}
	}
	out := make([]SynsetID, 0, len(depth))
	for s := range depth {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ancestors returns all transitive hypernym synsets of id (excluding id).
func (l *Lexicon) ancestors(id SynsetID) []SynsetID {
	seen := make(map[SynsetID]bool)
	var out []SynsetID
	stack := append([]SynsetID(nil), l.synsets[id].Hypernyms...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
		stack = append(stack, l.synsets[n].Hypernyms...)
	}
	return out
}

// PathDistance returns the length of the shortest path between any sense
// of a and any sense of b through the hypernym graph (edges traversed in
// either direction). Synonymous words have distance 0. The second result
// is false when no path exists or a word is unknown.
func (l *Lexicon) PathDistance(a, b string) (int, bool) {
	as := l.lookup(a)
	bs := l.lookup(b)
	if len(as) == 0 || len(bs) == 0 {
		return 0, false
	}
	targets := make(map[SynsetID]bool, len(bs))
	for _, ib := range bs {
		targets[ib] = true
	}
	// Multi-source BFS from all senses of a.
	dist := make(map[SynsetID]int, len(as))
	queue := make([]SynsetID, 0, len(as))
	for _, ia := range as {
		if targets[ia] {
			return 0, true
		}
		dist[ia] = 0
		queue = append(queue, ia)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		var nbrs []SynsetID
		nbrs = append(nbrs, l.synsets[n].Hypernyms...)
		nbrs = append(nbrs, l.hyponyms[n]...)
		for _, m := range nbrs {
			if _, seen := dist[m]; seen {
				continue
			}
			dist[m] = dist[n] + 1
			if targets[m] {
				return dist[m], true
			}
			queue = append(queue, m)
		}
	}
	return 0, false
}

// PathSimilarity maps PathDistance into (0,1]: 1/(1+d); unrelated or
// unknown pairs score 0.
func (l *Lexicon) PathSimilarity(a, b string) float64 {
	d, ok := l.PathDistance(a, b)
	if !ok {
		return 0
	}
	return 1.0 / float64(1+d)
}

// Words returns every indexed word, sorted. Mainly for diagnostics.
func (l *Lexicon) Words() []string {
	set := make(map[string]struct{}, len(l.byWord))
	for w := range l.byWord {
		set[w] = struct{}{}
	}
	return sortedKeys(set)
}

func sortedKeys(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// NormalizeWord lowercases a word and canonicalises separators (spaces and
// hyphens become underscores) so lexicon lookups are robust against
// labelling style.
func NormalizeWord(w string) string {
	w = strings.TrimSpace(strings.ToLower(w))
	w = strings.ReplaceAll(w, " ", "_")
	w = strings.ReplaceAll(w, "-", "_")
	return w
}
