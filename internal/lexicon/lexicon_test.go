package lexicon

import (
	"reflect"
	"testing"
)

func smallLexicon(t testing.TB) *Lexicon {
	t.Helper()
	l := New()
	add := func(gloss string, words ...string) SynsetID {
		id, err := l.AddSynset(words, gloss)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	vehicle := add("a conveyance", "vehicle")
	car := add("a four-wheeled motor vehicle", "car", "auto", "automobile")
	truck := add("a cargo motor vehicle", "truck", "lorry")
	person := add("a human", "person", "individual")
	driver := add("operates a vehicle", "driver", "operator")
	for child, parent := range map[SynsetID]SynsetID{car: vehicle, truck: vehicle, driver: person} {
		if err := l.AddHypernym(child, parent); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestSynonyms(t *testing.T) {
	l := smallLexicon(t)
	got := l.Synonyms("car")
	want := []string{"auto", "automobile"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Synonyms(car) = %v, want %v", got, want)
	}
	if l.Synonyms("spaceship") != nil {
		t.Fatalf("Synonyms of unknown word should be nil")
	}
	// Case-insensitive lookup.
	if got := l.Synonyms("CAR"); !reflect.DeepEqual(got, want) {
		t.Fatalf("Synonyms(CAR) = %v, want %v", got, want)
	}
}

func TestAreSynonyms(t *testing.T) {
	l := smallLexicon(t)
	if !l.AreSynonyms("car", "automobile") {
		t.Fatalf("car/automobile should be synonyms")
	}
	if l.AreSynonyms("car", "truck") {
		t.Fatalf("car/truck are not synonyms")
	}
	if !l.AreSynonyms("car", "car") {
		t.Fatalf("a known word is its own synonym")
	}
	if l.AreSynonyms("spaceship", "spaceship") {
		t.Fatalf("unknown words are not synonyms of themselves")
	}
}

func TestHypernymsAndHyponyms(t *testing.T) {
	l := smallLexicon(t)
	if got := l.Hypernyms("car"); !reflect.DeepEqual(got, []string{"vehicle"}) {
		t.Fatalf("Hypernyms(car) = %v", got)
	}
	hypo := l.Hyponyms("vehicle")
	for _, want := range []string{"car", "truck", "lorry", "auto"} {
		if !containsStr(hypo, want) {
			t.Fatalf("Hyponyms(vehicle) missing %s: %v", want, hypo)
		}
	}
	if l.Hypernyms("vehicle") != nil {
		t.Fatalf("root should have no hypernyms")
	}
}

func TestIsHypernymOf(t *testing.T) {
	l := DefaultLexicon()
	cases := []struct {
		general, specific string
		want              bool
	}{
		{"vehicle", "car", true},
		{"vehicle", "truck", true},
		{"conveyance", "suv", true}, // multi-level
		{"car", "vehicle", false},   // wrong direction
		{"person", "driver", true},
		{"person", "car", false},
		{"entity", "invoice", true},
		{"nothing", "car", false},
	}
	for _, c := range cases {
		if got := l.IsHypernymOf(c.general, c.specific); got != c.want {
			t.Errorf("IsHypernymOf(%s,%s) = %v, want %v", c.general, c.specific, got, c.want)
		}
	}
}

func TestPathDistance(t *testing.T) {
	l := smallLexicon(t)
	if d, ok := l.PathDistance("car", "automobile"); !ok || d != 0 {
		t.Fatalf("synonym distance = (%d,%v), want (0,true)", d, ok)
	}
	if d, ok := l.PathDistance("car", "vehicle"); !ok || d != 1 {
		t.Fatalf("parent distance = (%d,%v), want (1,true)", d, ok)
	}
	if d, ok := l.PathDistance("car", "truck"); !ok || d != 2 {
		t.Fatalf("sibling distance = (%d,%v), want (2,true)", d, ok)
	}
	if _, ok := l.PathDistance("car", "driver"); ok {
		t.Fatalf("disconnected components should have no path")
	}
	if _, ok := l.PathDistance("car", "spaceship"); ok {
		t.Fatalf("unknown word should have no path")
	}
}

func TestPathSimilarity(t *testing.T) {
	l := smallLexicon(t)
	if s := l.PathSimilarity("car", "automobile"); s != 1 {
		t.Fatalf("synonym similarity = %v, want 1", s)
	}
	sib := l.PathSimilarity("car", "truck")
	par := l.PathSimilarity("car", "vehicle")
	if !(par > sib && sib > 0) {
		t.Fatalf("similarity ordering wrong: parent %v, sibling %v", par, sib)
	}
	if s := l.PathSimilarity("car", "spaceship"); s != 0 {
		t.Fatalf("unknown similarity = %v, want 0", s)
	}
}

func TestAddSynsetValidation(t *testing.T) {
	l := New()
	if _, err := l.AddSynset(nil, ""); err == nil {
		t.Fatalf("empty synset accepted")
	}
	if _, err := l.AddSynset([]string{" "}, ""); err == nil {
		t.Fatalf("blank word accepted")
	}
}

func TestAddHypernymValidation(t *testing.T) {
	l := New()
	a, _ := l.AddSynset([]string{"a"}, "")
	if err := l.AddHypernym(a, a); err == nil {
		t.Fatalf("self-hypernym accepted")
	}
	if err := l.AddHypernym(a, SynsetID(99)); err == nil {
		t.Fatalf("unknown parent accepted")
	}
	b, _ := l.AddSynset([]string{"b"}, "")
	if err := l.AddHypernym(a, b); err != nil {
		t.Fatal(err)
	}
	// Duplicate links are idempotent.
	if err := l.AddHypernym(a, b); err != nil {
		t.Fatal(err)
	}
	s, _ := l.Synset(a)
	if len(s.Hypernyms) != 1 {
		t.Fatalf("duplicate hypernym stored")
	}
}

func TestDefaultLexiconIntegrity(t *testing.T) {
	l := DefaultLexicon()
	if l.NumSynsets() < 60 {
		t.Fatalf("embedded vocabulary too small: %d synsets", l.NumSynsets())
	}
	// The paper's key words must be present and sensibly connected.
	if !l.AreSynonyms("car", "automobile") {
		t.Fatalf("car/automobile not synonyms in default lexicon")
	}
	if !l.AreSynonyms("factory", "plant") {
		t.Fatalf("factory/plant not synonyms")
	}
	if !l.AreSynonyms("price", "cost") {
		t.Fatalf("price/cost not synonyms")
	}
	if !l.AreSynonyms("guilder", "dutch_guilder") {
		t.Fatalf("guilder/dutch_guilder not synonyms")
	}
	if !l.IsHypernymOf("vehicle", "passenger_car") {
		t.Fatalf("vehicle should be hypernym of passenger_car")
	}
	if s := l.PathSimilarity("car", "truck"); s <= 0 {
		t.Fatalf("car/truck unrelated in default lexicon")
	}
	// Ambiguity is represented: "plant" is both factory and organism.
	if got := len(l.SynsetsOf("plant")); got < 2 {
		t.Fatalf("plant should be ambiguous, has %d senses", got)
	}
	// DefaultLexicon is memoised.
	if DefaultLexicon() != l {
		t.Fatalf("DefaultLexicon not memoised")
	}
}

func TestSynsetAccessors(t *testing.T) {
	l := smallLexicon(t)
	if _, ok := l.Synset(SynsetID(99)); ok {
		t.Fatalf("unknown synset returned")
	}
	ids := l.SynsetsOf("car")
	if len(ids) != 1 {
		t.Fatalf("SynsetsOf(car) = %v", ids)
	}
	s, ok := l.Synset(ids[0])
	if !ok || !containsStr(s.Words, "auto") {
		t.Fatalf("Synset lookup wrong: %v", s)
	}
	if l.NumWords() == 0 || len(l.Words()) != l.NumWords() {
		t.Fatalf("word accounting inconsistent")
	}
}

func containsStr(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
