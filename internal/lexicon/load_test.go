package lexicon

import (
	"strings"
	"testing"
)

const sampleLexicon = `
# tiny vocabulary
entity : : that which exists
vehicle : entity : a conveyance
car,auto,automobile : vehicle : four wheels
truck,lorry : vehicle : carries cargo
amphibious : vehicle,boat : both  # forward reference to boat
boat : entity : floats
`

func TestLoadBuildsLexicon(t *testing.T) {
	l, err := LoadString(sampleLexicon)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumSynsets() != 6 {
		t.Fatalf("synsets = %d, want 6", l.NumSynsets())
	}
	if !l.AreSynonyms("car", "automobile") {
		t.Fatalf("synonyms lost")
	}
	if !l.IsHypernymOf("vehicle", "truck") {
		t.Fatalf("hypernymy lost")
	}
	// Multiple parents (forward reference).
	if !l.IsHypernymOf("boat", "amphibious") || !l.IsHypernymOf("vehicle", "amphibious") {
		t.Fatalf("multi-parent links lost")
	}
	// Gloss preserved.
	ids := l.SynsetsOf("car")
	s, _ := l.Synset(ids[0])
	if s.Gloss != "four wheels" {
		t.Fatalf("gloss = %q", s.Gloss)
	}
}

func TestLoadErrors(t *testing.T) {
	bad := []string{
		"word : nonexistent_parent",
		", : :",             // empty words
		"a : :\na : :",      // duplicate head
		"self : self : own", // self-hypernym
	}
	for _, in := range bad {
		if _, err := LoadString(in); err == nil {
			t.Errorf("LoadString(%q) should fail", in)
		}
	}
}

func TestLoadDumpRoundTrip(t *testing.T) {
	l, err := LoadString(sampleLexicon)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := l.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	l2, err := LoadString(buf.String())
	if err != nil {
		t.Fatalf("re-load failed: %v\n%s", err, buf.String())
	}
	var buf2 strings.Builder
	if err := l2.Dump(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatalf("round trip unstable:\n%s\nvs\n%s", buf.String(), buf2.String())
	}
}

func TestLoadedLexiconDrivesMatching(t *testing.T) {
	l, err := LoadString(sampleLexicon)
	if err != nil {
		t.Fatal(err)
	}
	if l.PathSimilarity("car", "truck") <= 0 {
		t.Fatalf("siblings unrelated in loaded lexicon")
	}
}
