package lexicon

import (
	"strings"
	"unicode"
)

// Tokens splits an ontology term into lowercase word tokens: CamelCase
// boundaries, underscores, hyphens, dots and spaces all separate tokens,
// and digit runs form their own tokens. "CargoCarrierVehicle" becomes
// ["cargo", "carrier", "vehicle"].
func Tokens(term string) []string {
	var toks []string
	var cur []rune
	flush := func() {
		if len(cur) > 0 {
			toks = append(toks, strings.ToLower(string(cur)))
			cur = cur[:0]
		}
	}
	runes := []rune(term)
	for i, r := range runes {
		switch {
		case r == '_' || r == '-' || r == ' ' || r == '.' || r == ':' || r == '/':
			flush()
		case unicode.IsUpper(r):
			// New token at lower→Upper and at Upper followed by lower
			// within an acronym run (e.g. "XMLFile" -> xml, file).
			if i > 0 {
				prev := runes[i-1]
				nextLower := i+1 < len(runes) && unicode.IsLower(runes[i+1])
				if unicode.IsLower(prev) || unicode.IsDigit(prev) || (unicode.IsUpper(prev) && nextLower) {
					flush()
				}
			}
			cur = append(cur, r)
		case unicode.IsDigit(r):
			if i > 0 && !unicode.IsDigit(runes[i-1]) {
				flush()
			}
			cur = append(cur, r)
		default:
			if i > 0 && unicode.IsDigit(runes[i-1]) {
				flush()
			}
			cur = append(cur, r)
		}
	}
	flush()
	return toks
}

// HeadToken returns the final token of a term — the head noun of an
// English compound ("PassengerCar" → "car"), which carries most of the
// semantic weight in lexicon lookups.
func HeadToken(term string) string {
	toks := Tokens(term)
	if len(toks) == 0 {
		return ""
	}
	return toks[len(toks)-1]
}

// Normalize lowercases a term and joins its tokens with underscores,
// giving a canonical comparison form.
func Normalize(term string) string {
	return strings.Join(Tokens(term), "_")
}

// EditDistance returns the Levenshtein distance between two strings,
// computed over runes.
func EditDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// EditSimilarity maps edit distance into [0,1]: 1 for identical strings,
// 0 for completely different ones.
func EditSimilarity(a, b string) float64 {
	if a == "" && b == "" {
		return 1
	}
	la, lb := len([]rune(a)), len([]rune(b))
	max := la
	if lb > max {
		max = lb
	}
	if max == 0 {
		return 1
	}
	return 1 - float64(EditDistance(a, b))/float64(max)
}

// JaccardTokens returns |A ∩ B| / |A ∪ B| over token sets.
func JaccardTokens(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	set := make(map[string]uint8, len(a)+len(b))
	for _, t := range a {
		set[t] |= 1
	}
	for _, t := range b {
		set[t] |= 2
	}
	inter, union := 0, 0
	for _, m := range set {
		union++
		if m == 3 {
			inter++
		}
	}
	return float64(inter) / float64(union)
}

// TrigramSimilarity returns the Jaccard similarity of character trigram
// sets (with padding), a robust fuzzy-string measure for short labels.
func TrigramSimilarity(a, b string) float64 {
	return TrigramSet(a).Similarity(TrigramSet(b))
}

// Trigrams is a precomputed trigram set; bulk matchers (SKAT's fuzzy
// candidate gate) build one per term once instead of re-deriving sets for
// every pair.
type Trigrams map[string]struct{}

// TrigramSet builds the padded trigram set of s.
func TrigramSet(s string) Trigrams { return trigrams(s) }

// Similarity is the Jaccard similarity of two trigram sets.
func (ta Trigrams) Similarity(tb Trigrams) float64 {
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	small, large := ta, tb
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for t := range small {
		if _, ok := large[t]; ok {
			inter++
		}
	}
	union := len(ta) + len(tb) - inter
	return float64(inter) / float64(union)
}

func trigrams(s string) Trigrams {
	s = strings.ToLower(s)
	if s == "" {
		return nil
	}
	padded := "  " + s + " "
	out := make(map[string]struct{}, len(padded))
	runes := []rune(padded)
	for i := 0; i+3 <= len(runes); i++ {
		out[string(runes[i:i+3])] = struct{}{}
	}
	return out
}
