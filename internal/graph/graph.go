// Package graph implements the directed labeled graph model that underlies
// ONION ontologies (Mitra, Wiederhold, Kersten; EDBT 2000, §3).
//
// An ontology O is represented by a directed labeled graph G = (N, E): N is
// a finite set of labeled nodes and E a finite set of labeled edges. The
// node-label function λ maps every node to a non-empty string (usually a
// noun phrase naming a concept); the edge-label function δ maps every edge
// to a string naming a semantic relationship or a natural-language verb.
//
// The package is deliberately more permissive than a consistent ontology:
// it is a multigraph and it allows duplicate node labels, so that higher
// layers (the articulation generator in particular) can stage intermediate
// states. Package ontology layers consistency checking on top.
//
// All exported iteration orders are deterministic: node sets are sorted by
// id, edge sets by (From, Label, To). This keeps tests, benchmarks and DOT
// output reproducible.
package graph

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// NodeID identifies a node within a single Graph. IDs are assigned densely
// from 1 and are never reused, even after deletion, so that stale IDs can be
// detected. The zero value is invalid.
type NodeID int

// Invalid is the zero NodeID; no node ever has it.
const Invalid NodeID = 0

// Edge is a directed labeled edge (n1, α, n2) as written in the paper.
// Edges are values: two edges are the same edge iff all three fields match.
type Edge struct {
	From  NodeID
	Label string
	To    NodeID
}

// String renders the edge in the paper's (from, label, to) notation.
func (e Edge) String() string {
	return fmt.Sprintf("(%d,%q,%d)", e.From, e.Label, e.To)
}

// HalfEdge describes an edge relative to an implicit anchor node, used by
// the NA (node addition) primitive which accepts a node together with its
// adjacent edges.
type HalfEdge struct {
	Label string
	Other NodeID
	// Out reports the direction: true means anchor→Other, false Other→anchor.
	Out bool
}

// Graph is a mutable directed labeled multigraph. The zero value is not
// ready to use; call New.
// The //onion:index markers declare the graph's query-visible structure
// for the epochbump analyzer: an exported method writing a marked field
// must also bump the epoch, or onionlint rejects it (the stale-cache
// contract — derived engine caches validate against the epoch).
type Graph struct {
	name    string
	labels  map[NodeID]string   //onion:index
	byLabel map[string][]NodeID //onion:index
	out     map[NodeID][]Edge   //onion:index
	in      map[NodeID][]Edge   //onion:index
	edges   map[Edge]struct{}   //onion:index
	nextID  NodeID
	// epoch counts structural mutations (node/edge add/delete, relabel,
	// rename). Derived-structure caches (the query engine's edge indexes
	// and qualified-name tables) validate against it instead of relying on
	// invalidation callbacks. Atomic so epoch polls need not synchronise
	// with the owner; the graph itself is still single-writer.
	epoch atomic.Uint64
}

// New returns an empty graph. The name is carried through clones and
// appears in error messages and exports; it typically names the ontology.
func New(name string) *Graph {
	return &Graph{
		name:    name,
		labels:  make(map[NodeID]string),
		byLabel: make(map[string][]NodeID),
		out:     make(map[NodeID][]Edge),
		in:      make(map[NodeID][]Edge),
		edges:   make(map[Edge]struct{}),
		nextID:  1,
	}
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// SetName renames the graph.
func (g *Graph) SetName(name string) {
	if g.name != name {
		g.name = name
		g.epoch.Add(1)
	}
}

// Epoch returns the graph's mutation epoch: a counter bumped by every
// effective mutation. Two equal epochs from the same graph guarantee no
// mutation happened in between, so derived structure built at the first
// read is still valid at the second. Epoch reads are atomic and may run
// concurrently with other readers; mutation itself remains single-writer
// (callers serialise mutators against everything, as before).
func (g *Graph) Epoch() uint64 { return g.epoch.Load() }

// Touch bumps the epoch without a structural change — the hook for owners
// layering extra mutable state on top of the graph (package ontology's
// relation declarations version themselves through it).
func (g *Graph) Touch() { g.epoch.Add(1) }

// NumNodes returns the number of nodes currently in the graph.
func (g *Graph) NumNodes() int { return len(g.labels) }

// NumEdges returns the number of distinct edges currently in the graph.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddNode adds a fresh node carrying label and returns its id. Duplicate
// labels are allowed at this layer. An empty label is rejected because λ
// must map into non-null strings (§3); callers get Invalid back.
func (g *Graph) AddNode(label string) NodeID {
	if label == "" {
		return Invalid
	}
	id := g.nextID
	g.nextID++
	g.labels[id] = label
	g.byLabel[label] = append(g.byLabel[label], id)
	g.epoch.Add(1)
	return id
}

// addNodeWithID registers a node under a caller-chosen id. It is used to
// undo an ND transform, which must restore the deleted node under its
// original id so that recorded incident edges remain valid.
func (g *Graph) addNodeWithID(id NodeID, label string) error {
	if label == "" {
		return fmt.Errorf("graph %s: restore node %d: empty label", g.name, id)
	}
	if id == Invalid {
		return fmt.Errorf("graph %s: restore: invalid id", g.name)
	}
	if _, exists := g.labels[id]; exists {
		return fmt.Errorf("graph %s: restore node %d: id in use", g.name, id)
	}
	g.labels[id] = label
	g.byLabel[label] = append(g.byLabel[label], id)
	if id >= g.nextID {
		g.nextID = id + 1
	}
	g.epoch.Add(1)
	return nil
}

// AddNodeWithEdges is the NA primitive (§3): it adds node N with label and
// the given adjacent edges in one operation. Edges referring to unknown
// neighbours are reported as an error after the node itself (and any valid
// edges) have been added.
func (g *Graph) AddNodeWithEdges(label string, adj []HalfEdge) (NodeID, error) {
	id := g.AddNode(label)
	if id == Invalid {
		return Invalid, fmt.Errorf("graph %s: NA: empty node label", g.name)
	}
	var firstErr error
	for _, h := range adj {
		e := Edge{From: id, Label: h.Label, To: h.Other}
		if !h.Out {
			e = Edge{From: h.Other, Label: h.Label, To: id}
		}
		if err := g.AddEdge(e.From, e.Label, e.To); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("graph %s: NA %q: %w", g.name, label, err)
		}
	}
	return id, firstErr
}

// DeleteNode is the ND primitive (§3): it removes the node and every edge
// incident with it. It reports whether the node existed.
func (g *Graph) DeleteNode(id NodeID) bool {
	label, ok := g.labels[id]
	if !ok {
		return false
	}
	for _, e := range g.out[id] {
		delete(g.edges, e)
		g.in[e.To] = removeEdge(g.in[e.To], e)
	}
	for _, e := range g.in[id] {
		delete(g.edges, e)
		g.out[e.From] = removeEdge(g.out[e.From], e)
	}
	delete(g.out, id)
	delete(g.in, id)
	delete(g.labels, id)
	g.byLabel[label] = removeID(g.byLabel[label], id)
	if len(g.byLabel[label]) == 0 {
		delete(g.byLabel, label)
	}
	g.epoch.Add(1)
	return true
}

// AddEdge is the single-edge form of the EA primitive (§3). Both endpoints
// must exist; the edge label may be empty (relationships are sometimes
// anonymous during staging, though ontologies reject that later). Adding an
// edge that is already present is a no-op.
func (g *Graph) AddEdge(from NodeID, label string, to NodeID) error {
	if _, ok := g.labels[from]; !ok {
		return fmt.Errorf("graph %s: EA: unknown source node %d", g.name, from)
	}
	if _, ok := g.labels[to]; !ok {
		return fmt.Errorf("graph %s: EA: unknown target node %d", g.name, to)
	}
	e := Edge{From: from, Label: label, To: to}
	if _, dup := g.edges[e]; dup {
		return nil
	}
	g.edges[e] = struct{}{}
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
	g.epoch.Add(1)
	return nil
}

// AddEdges is the EA primitive over an edge set: EA[G, SE] yields
// E' = E ∪ SE. It stops at the first endpoint error and reports it.
func (g *Graph) AddEdges(es []Edge) error {
	for _, e := range es {
		if err := g.AddEdge(e.From, e.Label, e.To); err != nil {
			return err
		}
	}
	return nil
}

// DeleteEdge is the single-edge form of the ED primitive (§3). It reports
// whether the edge was present.
func (g *Graph) DeleteEdge(e Edge) bool {
	if _, ok := g.edges[e]; !ok {
		return false
	}
	delete(g.edges, e)
	g.out[e.From] = removeEdge(g.out[e.From], e)
	g.in[e.To] = removeEdge(g.in[e.To], e)
	g.epoch.Add(1)
	return true
}

// DeleteEdges is the ED primitive over an edge set: E' = E − SE. It returns
// the number of edges actually removed.
func (g *Graph) DeleteEdges(es []Edge) int {
	n := 0
	for _, e := range es {
		if g.DeleteEdge(e) {
			n++
		}
	}
	return n
}

// HasNode reports whether id names a live node.
func (g *Graph) HasNode(id NodeID) bool {
	_, ok := g.labels[id]
	return ok
}

// HasEdge reports whether the exact edge (from, label, to) is present.
func (g *Graph) HasEdge(from NodeID, label string, to NodeID) bool {
	_, ok := g.edges[Edge{From: from, Label: label, To: to}]
	return ok
}

// HasEdgeAnyLabel reports whether any edge from→to exists regardless of label.
func (g *Graph) HasEdgeAnyLabel(from, to NodeID) bool {
	for _, e := range g.out[from] {
		if e.To == to {
			return true
		}
	}
	return false
}

// Label returns λ(id), or "" if the node does not exist.
func (g *Graph) Label(id NodeID) string { return g.labels[id] }

// SetLabel relabels a node. It fails on unknown nodes and empty labels.
// The paper's viewer uses this when the expert overrides the default label
// of a conjunction/disjunction node (§4.1).
func (g *Graph) SetLabel(id NodeID, label string) error {
	old, ok := g.labels[id]
	if !ok {
		return fmt.Errorf("graph %s: relabel: unknown node %d", g.name, id)
	}
	if label == "" {
		return fmt.Errorf("graph %s: relabel node %d: empty label", g.name, id)
	}
	if old == label {
		return nil
	}
	g.labels[id] = label
	g.byLabel[old] = removeID(g.byLabel[old], id)
	if len(g.byLabel[old]) == 0 {
		delete(g.byLabel, old)
	}
	g.byLabel[label] = append(g.byLabel[label], id)
	g.epoch.Add(1)
	return nil
}

// NodeByLabel returns the unique node carrying label. If no node or more
// than one node carries it, it returns (Invalid, false); use NodesByLabel
// when duplicates are expected.
func (g *Graph) NodeByLabel(label string) (NodeID, bool) {
	ids := g.byLabel[label]
	if len(ids) != 1 {
		return Invalid, false
	}
	return ids[0], true
}

// AnyNodeByLabel returns the lowest-id node carrying label, if any.
func (g *Graph) AnyNodeByLabel(label string) (NodeID, bool) {
	ids := g.byLabel[label]
	if len(ids) == 0 {
		return Invalid, false
	}
	min := ids[0]
	for _, id := range ids[1:] {
		if id < min {
			min = id
		}
	}
	return min, true
}

// NodesByLabel returns all nodes carrying label, sorted by id.
func (g *Graph) NodesByLabel(label string) []NodeID {
	ids := append([]NodeID(nil), g.byLabel[label]...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// EnsureNode returns the unique node labelled label, creating it if absent.
// It fails if the label is ambiguous (present on several nodes).
func (g *Graph) EnsureNode(label string) (NodeID, error) {
	switch ids := g.byLabel[label]; len(ids) {
	case 0:
		id := g.AddNode(label)
		if id == Invalid {
			return Invalid, fmt.Errorf("graph %s: ensure: empty label", g.name)
		}
		return id, nil
	case 1:
		return ids[0], nil
	default:
		return Invalid, fmt.Errorf("graph %s: ensure %q: label is ambiguous (%d nodes)", g.name, label, len(ids))
	}
}

// Nodes returns all node ids in ascending order.
func (g *Graph) Nodes() []NodeID {
	ids := make([]NodeID, 0, len(g.labels))
	for id := range g.labels {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Labels returns the multiset of node labels in sorted order.
func (g *Graph) Labels() []string {
	ls := make([]string, 0, len(g.labels))
	for _, l := range g.labels {
		ls = append(ls, l)
	}
	sort.Strings(ls)
	return ls
}

// Edges returns every edge, sorted by (From, Label, To).
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, len(g.edges))
	for e := range g.edges {
		es = append(es, e)
	}
	SortEdges(es)
	return es
}

// OutEdges returns the edges leaving id, sorted by (Label, To).
func (g *Graph) OutEdges(id NodeID) []Edge {
	es := append([]Edge(nil), g.out[id]...)
	SortEdges(es)
	return es
}

// InEdges returns the edges entering id, sorted by (From, Label).
func (g *Graph) InEdges(id NodeID) []Edge {
	es := append([]Edge(nil), g.in[id]...)
	SortEdges(es)
	return es
}

// OutDegree returns the number of edges leaving id.
func (g *Graph) OutDegree(id NodeID) int { return len(g.out[id]) }

// InDegree returns the number of edges entering id.
func (g *Graph) InDegree(id NodeID) int { return len(g.in[id]) }

// Degree returns OutDegree + InDegree.
func (g *Graph) Degree(id NodeID) int { return len(g.out[id]) + len(g.in[id]) }

// EdgeLabels returns the sorted set of distinct edge labels in use.
func (g *Graph) EdgeLabels() []string {
	set := make(map[string]struct{})
	for e := range g.edges {
		set[e.Label] = struct{}{}
	}
	ls := make([]string, 0, len(set))
	for l := range set {
		ls = append(ls, l)
	}
	sort.Strings(ls)
	return ls
}

// EdgesWithLabel returns every edge carrying label, sorted.
func (g *Graph) EdgesWithLabel(label string) []Edge {
	var es []Edge
	for e := range g.edges {
		if e.Label == label {
			es = append(es, e)
		}
	}
	SortEdges(es)
	return es
}

// Clone returns a deep copy sharing no mutable state with g. Node ids are
// preserved, so ids obtained from g remain valid against the clone.
func (g *Graph) Clone() *Graph {
	c := New(g.name)
	c.nextID = g.nextID
	for id, l := range g.labels {
		c.labels[id] = l
		c.byLabel[l] = append(c.byLabel[l], id)
	}
	for e := range g.edges {
		c.edges[e] = struct{}{}
		c.out[e.From] = append(c.out[e.From], e)
		c.in[e.To] = append(c.in[e.To], e)
	}
	return c
}

// InducedSubgraph returns a new graph containing exactly the given nodes
// (unknown ids are ignored) and every edge of g whose endpoints both
// survive. Node ids are preserved.
func (g *Graph) InducedSubgraph(keep []NodeID) *Graph {
	s := New(g.name)
	s.nextID = g.nextID
	in := make(map[NodeID]bool, len(keep))
	for _, id := range keep {
		if l, ok := g.labels[id]; ok && !in[id] {
			in[id] = true
			s.labels[id] = l
			s.byLabel[l] = append(s.byLabel[l], id)
		}
	}
	for e := range g.edges {
		if in[e.From] && in[e.To] {
			s.edges[e] = struct{}{}
			s.out[e.From] = append(s.out[e.From], e)
			s.in[e.To] = append(s.in[e.To], e)
		}
	}
	return s
}

// EqualByLabels reports whether g and h describe the same labeled graph up
// to node identity: the same multiset of node labels and the same multiset
// of (fromLabel, edgeLabel, toLabel) triples. For consistent ontologies
// (unique labels) this is exact graph equality modulo node ids.
func (g *Graph) EqualByLabels(h *Graph) bool {
	if g.NumNodes() != h.NumNodes() || g.NumEdges() != h.NumEdges() {
		return false
	}
	gl, hl := g.Labels(), h.Labels()
	for i := range gl {
		if gl[i] != hl[i] {
			return false
		}
	}
	gt, ht := g.labelTriples(), h.labelTriples()
	for i := range gt {
		if gt[i] != ht[i] {
			return false
		}
	}
	return true
}

type triple struct{ from, label, to string }

func (g *Graph) labelTriples() []triple {
	ts := make([]triple, 0, len(g.edges))
	for e := range g.edges {
		ts = append(ts, triple{g.labels[e.From], e.Label, g.labels[e.To]})
	}
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.from != b.from {
			return a.from < b.from
		}
		if a.label != b.label {
			return a.label < b.label
		}
		return a.to < b.to
	})
	return ts
}

// Validate checks internal invariants (index consistency). It is cheap
// relative to graph size and is used by property-based tests; production
// callers may use it after bulk imports.
func (g *Graph) Validate() error {
	for id, l := range g.labels {
		if l == "" {
			return fmt.Errorf("graph %s: node %d has empty label", g.name, id)
		}
		if !containsID(g.byLabel[l], id) {
			return fmt.Errorf("graph %s: node %d missing from label index %q", g.name, id, l)
		}
	}
	for l, ids := range g.byLabel {
		for _, id := range ids {
			if g.labels[id] != l {
				return fmt.Errorf("graph %s: label index %q lists node %d with label %q", g.name, l, id, g.labels[id])
			}
		}
	}
	nOut, nIn := 0, 0
	for id, es := range g.out {
		for _, e := range es {
			nOut++
			if e.From != id {
				return fmt.Errorf("graph %s: out index of %d holds foreign edge %v", g.name, id, e)
			}
			if _, ok := g.edges[e]; !ok {
				return fmt.Errorf("graph %s: out index holds phantom edge %v", g.name, e)
			}
		}
	}
	for id, es := range g.in {
		for _, e := range es {
			nIn++
			if e.To != id {
				return fmt.Errorf("graph %s: in index of %d holds foreign edge %v", g.name, id, e)
			}
			if _, ok := g.edges[e]; !ok {
				return fmt.Errorf("graph %s: in index holds phantom edge %v", g.name, e)
			}
		}
	}
	if nOut != len(g.edges) || nIn != len(g.edges) {
		return fmt.Errorf("graph %s: index cardinality mismatch: %d edges, %d out, %d in", g.name, len(g.edges), nOut, nIn)
	}
	for e := range g.edges {
		if !g.HasNode(e.From) || !g.HasNode(e.To) {
			return fmt.Errorf("graph %s: dangling edge %v", g.name, e)
		}
	}
	return nil
}

// SortEdges sorts a slice of edges by (From, Label, To) in place.
func SortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		return a.To < b.To
	})
}

func removeEdge(es []Edge, e Edge) []Edge {
	for i := range es {
		if es[i] == e {
			es[i] = es[len(es)-1]
			return es[:len(es)-1]
		}
	}
	return es
}

func removeID(ids []NodeID, id NodeID) []NodeID {
	for i := range ids {
		if ids[i] == id {
			ids[i] = ids[len(ids)-1]
			return ids[:len(ids)-1]
		}
	}
	return ids
}

func containsID(ids []NodeID, id NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
