package graph

import "sort"

// EdgeFilter selects which edges a traversal may follow. A nil EdgeFilter
// follows every edge.
type EdgeFilter func(Edge) bool

// LabelFilter returns an EdgeFilter following only edges whose label is one
// of labels. With no labels it follows nothing.
func LabelFilter(labels ...string) EdgeFilter {
	set := make(map[string]struct{}, len(labels))
	for _, l := range labels {
		set[l] = struct{}{}
	}
	return func(e Edge) bool {
		_, ok := set[e.Label]
		return ok
	}
}

// Reachable returns every node reachable from start (inclusive) following
// edges forward through the filter, sorted by id. Unknown starts yield nil.
func (g *Graph) Reachable(start NodeID, follow EdgeFilter) []NodeID {
	if !g.HasNode(start) {
		return nil
	}
	return g.reachableFrom([]NodeID{start}, follow, false)
}

// ReachableReverse is Reachable along reversed edges (ancestors).
func (g *Graph) ReachableReverse(start NodeID, follow EdgeFilter) []NodeID {
	if !g.HasNode(start) {
		return nil
	}
	return g.reachableFrom([]NodeID{start}, follow, true)
}

// ReachableFromAny returns every node reachable from any of the starts
// (inclusive), sorted by id.
func (g *Graph) ReachableFromAny(starts []NodeID, follow EdgeFilter) []NodeID {
	live := starts[:0:0]
	for _, s := range starts {
		if g.HasNode(s) {
			live = append(live, s)
		}
	}
	return g.reachableFrom(live, follow, false)
}

// ReachableFromAnyReverse returns every node from which any of the starts
// can be reached (inclusive), sorted by id — reachability along reversed
// edges.
func (g *Graph) ReachableFromAnyReverse(starts []NodeID) []NodeID {
	live := starts[:0:0]
	for _, s := range starts {
		if g.HasNode(s) {
			live = append(live, s)
		}
	}
	return g.reachableFrom(live, nil, true)
}

func (g *Graph) reachableFrom(starts []NodeID, follow EdgeFilter, reverse bool) []NodeID {
	seen := make(map[NodeID]bool, len(starts))
	queue := make([]NodeID, 0, len(starts))
	for _, s := range starts {
		if !seen[s] {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		adj := g.out[n]
		if reverse {
			adj = g.in[n]
		}
		for _, e := range adj {
			if follow != nil && !follow(e) {
				continue
			}
			next := e.To
			if reverse {
				next = e.From
			}
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	out := make([]NodeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PathExists reports whether a directed path from from to to exists through
// the filter. A node trivially reaches itself.
func (g *Graph) PathExists(from, to NodeID, follow EdgeFilter) bool {
	if !g.HasNode(from) || !g.HasNode(to) {
		return false
	}
	if from == to {
		return true
	}
	seen := map[NodeID]bool{from: true}
	stack := []NodeID{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.out[n] {
			if follow != nil && !follow(e) {
				continue
			}
			if e.To == to {
				return true
			}
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return false
}

// ShortestPath returns one shortest directed path (as an edge sequence)
// from from to to through the filter, or nil if none exists. Ties are
// broken deterministically by edge order (From, Label, To).
func (g *Graph) ShortestPath(from, to NodeID, follow EdgeFilter) []Edge {
	if !g.HasNode(from) || !g.HasNode(to) {
		return nil
	}
	if from == to {
		return []Edge{}
	}
	parent := make(map[NodeID]Edge)
	seen := map[NodeID]bool{from: true}
	queue := []NodeID{from}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range g.OutEdges(n) { // sorted for determinism
			if follow != nil && !follow(e) {
				continue
			}
			if seen[e.To] {
				continue
			}
			seen[e.To] = true
			parent[e.To] = e
			if e.To == to {
				return unwindPath(parent, from, to)
			}
			queue = append(queue, e.To)
		}
	}
	return nil
}

func unwindPath(parent map[NodeID]Edge, from, to NodeID) []Edge {
	var rev []Edge
	for at := to; at != from; {
		e := parent[at]
		rev = append(rev, e)
		at = e.From
	}
	path := make([]Edge, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	return path
}

// TransitiveClosure returns the edges with the given label implied by
// transitivity but not yet present: for every pair (a, c) such that a
// reaches c via one or more label-edges and a≠c, the edge (a,label,c) is
// produced if absent. The result is sorted; the graph is not modified.
//
// Ontologies use this for relationships declared transitive (the paper's
// example: SubclassOf), and the articulation generator uses it when
// inheriting structure into the articulation ontology (§4.2).
func (g *Graph) TransitiveClosure(label string) []Edge {
	follow := LabelFilter(label)
	var missing []Edge
	for _, n := range g.Nodes() {
		// Only nodes with an outgoing label-edge can be closure sources.
		hasLabelOut := false
		for _, e := range g.out[n] {
			if e.Label == label {
				hasLabelOut = true
				break
			}
		}
		if !hasLabelOut {
			continue
		}
		for _, r := range g.Reachable(n, follow) {
			if r == n {
				continue
			}
			if !g.HasEdge(n, label, r) {
				missing = append(missing, Edge{From: n, Label: label, To: r})
			}
		}
	}
	SortEdges(missing)
	return missing
}

// CloseTransitive applies TransitiveClosure(label) to the graph, returning
// the number of edges added.
func (g *Graph) CloseTransitive(label string) int {
	missing := g.TransitiveClosure(label)
	for _, e := range missing {
		// Endpoints exist by construction; error is impossible.
		_ = g.AddEdge(e.From, e.Label, e.To)
	}
	return len(missing)
}

// FindCycle returns one directed cycle using only label-edges, as a node
// sequence whose last element equals the first, or nil if the label-edge
// subgraph is acyclic. Ontologies use this to reject cyclic SubclassOf
// hierarchies.
func (g *Graph) FindCycle(label string) []NodeID {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[NodeID]int, len(g.labels))
	parent := make(map[NodeID]NodeID)

	var cycle []NodeID
	var visit func(n NodeID) bool
	visit = func(n NodeID) bool {
		color[n] = grey
		for _, e := range g.OutEdges(n) {
			if e.Label != label {
				continue
			}
			switch color[e.To] {
			case white:
				parent[e.To] = n
				if visit(e.To) {
					return true
				}
			case grey:
				// Found a back edge n→e.To: unwind the cycle.
				cycle = []NodeID{e.To}
				for at := n; at != e.To; at = parent[at] {
					cycle = append(cycle, at)
				}
				// Reverse into forward order and close the loop.
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				cycle = append(cycle, cycle[0])
				return true
			}
		}
		color[n] = black
		return false
	}
	for _, n := range g.Nodes() {
		if color[n] == white {
			if visit(n) {
				return cycle
			}
		}
	}
	return nil
}

// TopoSort returns the nodes in a topological order of the label-edge
// subgraph (edge a→b places a before b), and reports whether such an order
// exists (false when the subgraph has a cycle). Nodes without label-edges
// are included. Output is deterministic.
func (g *Graph) TopoSort(label string) ([]NodeID, bool) {
	indeg := make(map[NodeID]int, len(g.labels))
	for _, n := range g.Nodes() {
		indeg[n] = 0
	}
	for e := range g.edges {
		if e.Label == label {
			indeg[e.To]++
		}
	}
	// Deterministic frontier: min-id first via sorted scan.
	var frontier []NodeID
	for _, n := range g.Nodes() {
		if indeg[n] == 0 {
			frontier = append(frontier, n)
		}
	}
	var order []NodeID
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		order = append(order, n)
		for _, e := range g.OutEdges(n) {
			if e.Label != label {
				continue
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				// Insert keeping frontier sorted.
				i := sort.Search(len(frontier), func(i int) bool { return frontier[i] >= e.To })
				frontier = append(frontier, 0)
				copy(frontier[i+1:], frontier[i:])
				frontier[i] = e.To
			}
		}
	}
	return order, len(order) == len(g.labels)
}

// Roots returns nodes with no outgoing label-edge, sorted. Under the
// convention that SubclassOf points from subclass to superclass, these are
// the hierarchy roots (most general terms).
func (g *Graph) Roots(label string) []NodeID {
	var roots []NodeID
	for _, n := range g.Nodes() {
		has := false
		for _, e := range g.out[n] {
			if e.Label == label {
				has = true
				break
			}
		}
		if !has {
			roots = append(roots, n)
		}
	}
	return roots
}

// Leaves returns nodes with no incoming label-edge, sorted.
func (g *Graph) Leaves(label string) []NodeID {
	var leaves []NodeID
	for _, n := range g.Nodes() {
		has := false
		for _, e := range g.in[n] {
			if e.Label == label {
				has = true
				break
			}
		}
		if !has {
			leaves = append(leaves, n)
		}
	}
	return leaves
}

// ConnectedComponents returns the weakly connected components (treating
// edges as undirected, any label), each sorted by id; components are sorted
// by their smallest member.
func (g *Graph) ConnectedComponents() [][]NodeID {
	seen := make(map[NodeID]bool, len(g.labels))
	var comps [][]NodeID
	for _, start := range g.Nodes() {
		if seen[start] {
			continue
		}
		var comp []NodeID
		stack := []NodeID{start}
		seen[start] = true
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, n)
			for _, e := range g.out[n] {
				if !seen[e.To] {
					seen[e.To] = true
					stack = append(stack, e.To)
				}
			}
			for _, e := range g.in[n] {
				if !seen[e.From] {
					seen[e.From] = true
					stack = append(stack, e.From)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}
