package graph

import (
	"reflect"
	"testing"
)

func TestReachableFollowsFilter(t *testing.T) {
	g, ids := buildCarrier(t)
	got := g.Reachable(ids["PassengerCar"], LabelFilter("SubclassOf"))
	want := []NodeID{ids["Transportation"], ids["Cars"], ids["PassengerCar"]}
	sortNodeIDs(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Reachable = %v, want %v", got, want)
	}
}

func TestReachableNilFilterFollowsEverything(t *testing.T) {
	g, ids := buildCarrier(t)
	got := g.Reachable(ids["MyCar"], nil)
	// MyCar →I→ PassengerCar →S→ Cars →{S,A,A,drivenBy}→ ...
	wantLabels := map[string]bool{
		"MyCar": true, "PassengerCar": true, "Cars": true,
		"Transportation": true, "Price": true, "Owner": true, "Driver": true,
	}
	if len(got) != len(wantLabels) {
		t.Fatalf("Reachable size = %d, want %d (%v)", len(got), len(wantLabels), labelsOf(g, got))
	}
	for _, id := range got {
		if !wantLabels[g.Label(id)] {
			t.Fatalf("unexpected reachable node %s", g.Label(id))
		}
	}
}

func TestReachableUnknownStart(t *testing.T) {
	g, _ := buildCarrier(t)
	if got := g.Reachable(NodeID(999), nil); got != nil {
		t.Fatalf("Reachable(unknown) = %v, want nil", got)
	}
}

func TestReachableReverse(t *testing.T) {
	g, ids := buildCarrier(t)
	got := g.ReachableReverse(ids["Transportation"], LabelFilter("SubclassOf"))
	want := []NodeID{ids["Transportation"], ids["Cars"], ids["Trucks"], ids["PassengerCar"], ids["SUV"]}
	sortNodeIDs(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ReachableReverse = %v, want %v", labelsOf(g, got), labelsOf(g, want))
	}
}

func TestReachableFromAny(t *testing.T) {
	g, ids := buildCarrier(t)
	got := g.ReachableFromAny([]NodeID{ids["SUV"], ids["Trucks"], NodeID(999)}, LabelFilter("SubclassOf"))
	want := []NodeID{ids["SUV"], ids["Trucks"], ids["Cars"], ids["Transportation"]}
	sortNodeIDs(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ReachableFromAny = %v, want %v", labelsOf(g, got), labelsOf(g, want))
	}
}

func TestPathExists(t *testing.T) {
	g, ids := buildCarrier(t)
	cases := []struct {
		from, to string
		filter   EdgeFilter
		want     bool
	}{
		{"MyCar", "Transportation", nil, true},
		{"MyCar", "Transportation", LabelFilter("SubclassOf"), false}, // first hop is InstanceOf
		{"PassengerCar", "Transportation", LabelFilter("SubclassOf"), true},
		{"Transportation", "MyCar", nil, false}, // wrong direction
		{"MyCar", "MyCar", LabelFilter("nothing"), true},
	}
	for _, c := range cases {
		if got := g.PathExists(ids[c.from], ids[c.to], c.filter); got != c.want {
			t.Errorf("PathExists(%s→%s) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
	if g.PathExists(NodeID(999), ids["Cars"], nil) {
		t.Errorf("PathExists from unknown node = true")
	}
}

func TestShortestPath(t *testing.T) {
	g, ids := buildCarrier(t)
	p := g.ShortestPath(ids["MyCar"], ids["Transportation"], nil)
	if len(p) != 3 {
		t.Fatalf("ShortestPath length = %d, want 3 (%v)", len(p), p)
	}
	if p[0].From != ids["MyCar"] || p[len(p)-1].To != ids["Transportation"] {
		t.Fatalf("ShortestPath endpoints wrong: %v", p)
	}
	for i := 1; i < len(p); i++ {
		if p[i].From != p[i-1].To {
			t.Fatalf("ShortestPath not contiguous: %v", p)
		}
	}
	if p := g.ShortestPath(ids["Transportation"], ids["MyCar"], nil); p != nil {
		t.Fatalf("ShortestPath against edge direction = %v, want nil", p)
	}
	if p := g.ShortestPath(ids["Cars"], ids["Cars"], nil); p == nil || len(p) != 0 {
		t.Fatalf("ShortestPath self = %v, want empty non-nil", p)
	}
}

func TestTransitiveClosure(t *testing.T) {
	g, ids := buildCarrier(t)
	missing := g.TransitiveClosure("SubclassOf")
	// PassengerCar→Transportation and SUV→Transportation are implied.
	want := []Edge{
		{From: ids["PassengerCar"], Label: "SubclassOf", To: ids["Transportation"]},
		{From: ids["SUV"], Label: "SubclassOf", To: ids["Transportation"]},
	}
	SortEdges(want)
	if !reflect.DeepEqual(missing, want) {
		t.Fatalf("TransitiveClosure = %v, want %v", missing, want)
	}
	// Applying the closure then recomputing yields nothing new.
	if n := g.CloseTransitive("SubclassOf"); n != 2 {
		t.Fatalf("CloseTransitive added %d, want 2", n)
	}
	if again := g.TransitiveClosure("SubclassOf"); len(again) != 0 {
		t.Fatalf("closure not idempotent: %v", again)
	}
}

func TestTransitiveClosureOnCycle(t *testing.T) {
	g := New("t")
	a, b, c := g.AddNode("A"), g.AddNode("B"), g.AddNode("C")
	mustAdd(t, g, a, "r", b)
	mustAdd(t, g, b, "r", c)
	mustAdd(t, g, c, "r", a)
	missing := g.TransitiveClosure("r")
	// Every ordered pair except self-loops and existing edges: 6-3 = 3.
	if len(missing) != 3 {
		t.Fatalf("cycle closure size = %d, want 3 (%v)", len(missing), missing)
	}
	g.CloseTransitive("r")
	if len(g.TransitiveClosure("r")) != 0 {
		t.Fatalf("cycle closure not a fixpoint")
	}
}

func TestFindCycle(t *testing.T) {
	g, ids := buildCarrier(t)
	if c := g.FindCycle("SubclassOf"); c != nil {
		t.Fatalf("acyclic hierarchy reported cycle %v", c)
	}
	mustAdd(t, g, ids["Transportation"], "SubclassOf", ids["SUV"])
	c := g.FindCycle("SubclassOf")
	if c == nil {
		t.Fatalf("cycle not found after back edge")
	}
	if c[0] != c[len(c)-1] {
		t.Fatalf("cycle not closed: %v", c)
	}
	// Verify every step is a real SubclassOf edge.
	for i := 1; i < len(c); i++ {
		if !g.HasEdge(c[i-1], "SubclassOf", c[i]) {
			t.Fatalf("cycle step %d→%d is not an edge: %v", c[i-1], c[i], c)
		}
	}
}

func TestFindCycleIgnoresOtherLabels(t *testing.T) {
	g := New("t")
	a, b := g.AddNode("A"), g.AddNode("B")
	mustAdd(t, g, a, "x", b)
	mustAdd(t, g, b, "y", a)
	if c := g.FindCycle("x"); c != nil {
		t.Fatalf("mixed-label cycle wrongly detected: %v", c)
	}
}

func TestTopoSort(t *testing.T) {
	g, ids := buildCarrier(t)
	order, ok := g.TopoSort("SubclassOf")
	if !ok {
		t.Fatalf("TopoSort reported cycle on acyclic input")
	}
	if len(order) != g.NumNodes() {
		t.Fatalf("TopoSort order incomplete: %d of %d", len(order), g.NumNodes())
	}
	pos := make(map[NodeID]int)
	for i, n := range order {
		pos[n] = i
	}
	for _, e := range g.EdgesWithLabel("SubclassOf") {
		if pos[e.From] > pos[e.To] {
			t.Fatalf("TopoSort violates edge %v", e)
		}
	}
	mustAdd(t, g, ids["Transportation"], "SubclassOf", ids["Cars"])
	if _, ok := g.TopoSort("SubclassOf"); ok {
		t.Fatalf("TopoSort missed cycle")
	}
}

func TestRootsAndLeaves(t *testing.T) {
	g, ids := buildCarrier(t)
	roots := g.Roots("SubclassOf")
	// Every node without an outgoing SubclassOf: all but Cars, Trucks,
	// PassengerCar, SUV.
	if len(roots) != 6 {
		t.Fatalf("Roots = %v, want 6 nodes", labelsOf(g, roots))
	}
	found := false
	for _, r := range roots {
		if r == ids["Transportation"] {
			found = true
		}
		if r == ids["SUV"] {
			t.Fatalf("SUV should not be a root")
		}
	}
	if !found {
		t.Fatalf("Transportation missing from roots")
	}
	leaves := g.Leaves("SubclassOf")
	for _, l := range leaves {
		if l == ids["Cars"] || l == ids["Transportation"] {
			t.Fatalf("%s should not be a SubclassOf leaf", g.Label(l))
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	g, _ := buildCarrier(t)
	if comps := g.ConnectedComponents(); len(comps) != 1 {
		t.Fatalf("fixture should be one component, got %d", len(comps))
	}
	iso := g.AddNode("Island")
	iso2 := g.AddNode("Island2")
	mustAdd(t, g, iso, "near", iso2)
	comps := g.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if len(comps[1]) != 2 {
		t.Fatalf("island component = %v, want 2 nodes", comps[1])
	}
}

func labelsOf(g *Graph, ids []NodeID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.Label(id)
	}
	return out
}
