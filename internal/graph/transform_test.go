package graph

import (
	"strings"
	"testing"
)

func TestTransformNodeAddApplyAndInverse(t *testing.T) {
	g := New("t")
	a := g.AddNode("A")
	tr := NodeAdd("N", Edge{From: Invalid, Label: "rel", To: a})
	inv, err := tr.Apply(g)
	if err != nil {
		t.Fatalf("Apply NA: %v", err)
	}
	id := inv.Node
	if !g.HasNode(id) || g.Label(id) != "N" {
		t.Fatalf("NA did not add node")
	}
	if !g.HasEdge(id, "rel", a) {
		t.Fatalf("NA did not substitute placeholder id in edge")
	}
	if _, err := inv.Apply(g); err != nil {
		t.Fatalf("Apply inverse: %v", err)
	}
	if g.HasNode(id) || g.NumEdges() != 0 {
		t.Fatalf("inverse did not restore graph")
	}
}

func TestTransformNodeDeleteInverseRestoresEdges(t *testing.T) {
	g, ids := buildCarrier(t)
	snapshot := g.Clone()
	inv, err := NodeDelete(ids["Cars"]).Apply(g)
	if err != nil {
		t.Fatalf("Apply ND: %v", err)
	}
	if g.HasNode(ids["Cars"]) {
		t.Fatalf("ND left node")
	}
	if _, err := inv.Apply(g); err != nil {
		t.Fatalf("Apply ND inverse: %v", err)
	}
	if !g.EqualByLabels(snapshot) {
		t.Fatalf("ND inverse did not restore graph:\n%s\nvs\n%s", g, snapshot)
	}
}

func TestTransformEdgeAddAtomicOnError(t *testing.T) {
	g := New("t")
	a, b := g.AddNode("A"), g.AddNode("B")
	tr := EdgeAdd(
		Edge{From: a, Label: "ok", To: b},
		Edge{From: a, Label: "bad", To: NodeID(99)},
	)
	if _, err := tr.Apply(g); err == nil {
		t.Fatalf("EA with bad endpoint should fail")
	}
	if g.NumEdges() != 0 {
		t.Fatalf("failed EA left partial edges: %d", g.NumEdges())
	}
}

func TestTransformEdgeAddInverseOnlyRemovesNewEdges(t *testing.T) {
	g := New("t")
	a, b := g.AddNode("A"), g.AddNode("B")
	mustAdd(t, g, a, "pre", b)
	inv, err := EdgeAdd(
		Edge{From: a, Label: "pre", To: b}, // already present
		Edge{From: b, Label: "new", To: a},
	).Apply(g)
	if err != nil {
		t.Fatalf("Apply EA: %v", err)
	}
	if _, err := inv.Apply(g); err != nil {
		t.Fatalf("Apply EA inverse: %v", err)
	}
	if !g.HasEdge(a, "pre", b) {
		t.Fatalf("inverse removed pre-existing edge")
	}
	if g.HasEdge(b, "new", a) {
		t.Fatalf("inverse kept new edge")
	}
}

func TestTransformEdgeDeleteInverse(t *testing.T) {
	g := New("t")
	a, b := g.AddNode("A"), g.AddNode("B")
	mustAdd(t, g, a, "r", b)
	inv, err := EdgeDelete(Edge{From: a, Label: "r", To: b}, Edge{From: b, Label: "missing", To: a}).Apply(g)
	if err != nil {
		t.Fatalf("Apply ED: %v", err)
	}
	if len(inv.Edges) != 1 {
		t.Fatalf("ED inverse should only restore removed edges, got %v", inv.Edges)
	}
	if _, err := inv.Apply(g); err != nil {
		t.Fatalf("Apply ED inverse: %v", err)
	}
	if !g.HasEdge(a, "r", b) {
		t.Fatalf("ED inverse did not restore edge")
	}
}

func TestTransformUnknownOp(t *testing.T) {
	g := New("t")
	if _, err := (Transform{Op: Op(42)}).Apply(g); err == nil {
		t.Fatalf("unknown op accepted")
	}
}

func TestTransformString(t *testing.T) {
	s := NodeAdd("X", Edge{From: Invalid, Label: "r", To: 3}).String()
	if !strings.HasPrefix(s, "NA[") || !strings.Contains(s, `"X"`) {
		t.Fatalf("NA String = %q", s)
	}
	if got := EdgeDelete(Edge{From: 1, Label: "r", To: 2}).String(); !strings.HasPrefix(got, "ED[") {
		t.Fatalf("ED String = %q", got)
	}
	if Op(0).String() == "" {
		t.Fatalf("unknown op String empty")
	}
}

func TestJournalUndoAllRestoresGraph(t *testing.T) {
	g, ids := buildCarrier(t)
	snapshot := g.Clone()
	j := NewJournal(g)

	applied, err := j.Apply(NodeAdd("Bike", Edge{From: Invalid, Label: "SubclassOf", To: ids["Transportation"]}))
	if err != nil {
		t.Fatalf("journal NA: %v", err)
	}
	if applied.Node == Invalid {
		t.Fatalf("journal NA did not report assigned id")
	}
	if _, err := j.Apply(EdgeDelete(Edge{From: ids["SUV"], Label: "SubclassOf", To: ids["Cars"]})); err != nil {
		t.Fatalf("journal ED: %v", err)
	}
	if _, err := j.Apply(NodeDelete(ids["MyCar"])); err != nil {
		t.Fatalf("journal ND: %v", err)
	}
	if j.Len() != 3 {
		t.Fatalf("journal Len = %d, want 3", j.Len())
	}
	if n := j.UndoAll(); n != 3 {
		t.Fatalf("UndoAll = %d, want 3", n)
	}
	if !g.EqualByLabels(snapshot) {
		t.Fatalf("journal undo did not restore graph:\n%s\nvs\n%s", g, snapshot)
	}
	if j.Undo() {
		t.Fatalf("Undo on empty journal returned true")
	}
}

func TestJournalApplyErrorNotRecorded(t *testing.T) {
	g := New("t")
	j := NewJournal(g)
	if _, err := j.Apply(EdgeAdd(Edge{From: 1, Label: "r", To: 2})); err == nil {
		t.Fatalf("journal accepted bad EA")
	}
	if j.Len() != 0 {
		t.Fatalf("failed transform recorded")
	}
}

func TestJournalTouchedNodes(t *testing.T) {
	g, ids := buildCarrier(t)
	j := NewJournal(g)
	if _, err := j.Apply(EdgeDelete(Edge{From: ids["SUV"], Label: "SubclassOf", To: ids["Cars"]})); err != nil {
		t.Fatalf("journal ED: %v", err)
	}
	na, err := j.Apply(NodeAdd("Bike"))
	if err != nil {
		t.Fatalf("journal NA: %v", err)
	}
	touched := j.TouchedNodes()
	want := []NodeID{ids["SUV"], ids["Cars"], na.Node}
	sortNodeIDs(want)
	if len(touched) != len(want) {
		t.Fatalf("TouchedNodes = %v, want %v", touched, want)
	}
	for i := range want {
		if touched[i] != want[i] {
			t.Fatalf("TouchedNodes = %v, want %v", touched, want)
		}
	}
}

func TestJournalApplied(t *testing.T) {
	g := New("t")
	a, b := g.AddNode("A"), g.AddNode("B")
	j := NewJournal(g)
	if _, err := j.Apply(EdgeAdd(Edge{From: a, Label: "r", To: b})); err != nil {
		t.Fatalf("journal EA: %v", err)
	}
	ops := j.Applied()
	if len(ops) != 1 || ops[0].Op != OpEdgeAdd {
		t.Fatalf("Applied = %v", ops)
	}
	// The returned slice is a copy.
	ops[0].Op = OpNodeDelete
	if j.Applied()[0].Op != OpEdgeAdd {
		t.Fatalf("Applied leaked internal state")
	}
}
