package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Op names one of the paper's four graph transformation primitives (§3).
type Op uint8

// The four primitives: node addition, node deletion, edge addition and
// edge deletion.
const (
	OpNodeAdd Op = iota + 1
	OpNodeDelete
	OpEdgeAdd
	OpEdgeDelete
)

// String returns the paper's abbreviation for the primitive.
func (op Op) String() string {
	switch op {
	case OpNodeAdd:
		return "NA"
	case OpNodeDelete:
		return "ND"
	case OpEdgeAdd:
		return "EA"
	case OpEdgeDelete:
		return "ED"
	default:
		return fmt.Sprintf("Op(%d)", uint8(op))
	}
}

// Transform is one reified graph transformation. Reifying the primitives
// (rather than only exposing methods) lets the articulation generator emit
// a transformation script, lets tests assert on the exact operations a rule
// produces, and lets the maintenance machinery replay or undo source-
// ontology changes (§4, §5.3).
type Transform struct {
	Op    Op
	Node  NodeID // node affected by NA/ND (output for NA)
	Label string // node label for NA/ND
	Edges []Edge // adjacent edges for NA/ND; the edge set for EA/ED
}

// String renders the transform in a compact script form.
func (t Transform) String() string {
	var b strings.Builder
	b.WriteString(t.Op.String())
	switch t.Op {
	case OpNodeAdd, OpNodeDelete:
		fmt.Fprintf(&b, "[%q", t.Label)
		for _, e := range t.Edges {
			fmt.Fprintf(&b, ", %s", e)
		}
		b.WriteString("]")
	case OpEdgeAdd, OpEdgeDelete:
		b.WriteString("[")
		for i, e := range t.Edges {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
		b.WriteString("]")
	}
	return b.String()
}

// NodeAdd builds an NA transform adding a node with the given label and
// adjacent edges. Within Edges, use Invalid as the placeholder for the new
// node's id; Apply substitutes the freshly assigned id.
func NodeAdd(label string, adjacent ...Edge) Transform {
	return Transform{Op: OpNodeAdd, Label: label, Edges: adjacent}
}

// NodeDelete builds an ND transform removing node id.
func NodeDelete(id NodeID) Transform {
	return Transform{Op: OpNodeDelete, Node: id}
}

// EdgeAdd builds an EA transform adding the given edge set.
func EdgeAdd(edges ...Edge) Transform {
	return Transform{Op: OpEdgeAdd, Edges: edges}
}

// EdgeDelete builds an ED transform removing the given edge set.
func EdgeDelete(edges ...Edge) Transform {
	return Transform{Op: OpEdgeDelete, Edges: edges}
}

// Apply executes the transform against g and returns the inverse transform
// that undoes it. For NA the returned Transform carries the new node's id
// in Node. Applying an EA of already-present edges is a no-op whose inverse
// deletes nothing (the inverse only contains edges actually added).
func (t Transform) Apply(g *Graph) (inverse Transform, err error) {
	switch t.Op {
	case OpNodeAdd:
		var id NodeID
		if t.Node != Invalid {
			// Restore under a specific id (undo of ND).
			if err := g.addNodeWithID(t.Node, t.Label); err != nil {
				return Transform{}, err
			}
			id = t.Node
		} else {
			id = g.AddNode(t.Label)
			if id == Invalid {
				return Transform{}, fmt.Errorf("graph %s: NA: empty node label", g.Name())
			}
		}
		var added []Edge
		for _, e := range t.Edges {
			if e.From == Invalid {
				e.From = id
			}
			if e.To == Invalid {
				e.To = id
			}
			if g.HasEdge(e.From, e.Label, e.To) {
				continue
			}
			if err := g.AddEdge(e.From, e.Label, e.To); err != nil {
				return Transform{}, fmt.Errorf("NA %q: %w", t.Label, err)
			}
			added = append(added, e)
		}
		// Deleting the node removes its incident edges too; edges between
		// pre-existing nodes would not be removed by ND, but NA only adds
		// edges adjacent to the new node, so ND is a complete inverse.
		return Transform{Op: OpNodeDelete, Node: id, Label: t.Label, Edges: added}, nil

	case OpNodeDelete:
		label := g.Label(t.Node)
		if label == "" {
			return Transform{}, fmt.Errorf("graph %s: ND: unknown node %d", g.Name(), t.Node)
		}
		incident := append(g.OutEdges(t.Node), g.InEdges(t.Node)...)
		g.DeleteNode(t.Node)
		return Transform{Op: OpNodeAdd, Node: t.Node, Label: label, Edges: incident}, nil

	case OpEdgeAdd:
		var added []Edge
		for _, e := range t.Edges {
			if g.HasEdge(e.From, e.Label, e.To) {
				continue
			}
			if err := g.AddEdge(e.From, e.Label, e.To); err != nil {
				// Roll back partial application so EA is atomic.
				g.DeleteEdges(added)
				return Transform{}, err
			}
			added = append(added, e)
		}
		return Transform{Op: OpEdgeDelete, Edges: added}, nil

	case OpEdgeDelete:
		var removed []Edge
		for _, e := range t.Edges {
			if g.DeleteEdge(e) {
				removed = append(removed, e)
			}
		}
		return Transform{Op: OpEdgeAdd, Edges: removed}, nil

	default:
		return Transform{}, fmt.Errorf("graph %s: unknown transform op %d", g.Name(), t.Op)
	}
}

// Journal records applied transforms against one graph and can undo them in
// LIFO order. It is the substrate for "updating the articulation in
// response to changes in the underlying ontologies" (§3): source churn is
// applied through a Journal, and the affected region is computed from the
// recorded operations.
type Journal struct {
	g        *Graph
	applied  []Transform // forward ops, in application order
	inverses []Transform // matching inverse ops
}

// NewJournal returns a journal bound to g.
func NewJournal(g *Graph) *Journal { return &Journal{g: g} }

// Apply executes t against the journal's graph and records it. For NA, the
// assigned node id is returned via the recorded inverse and the returned
// transform's Node field.
func (j *Journal) Apply(t Transform) (Transform, error) {
	inv, err := t.Apply(j.g)
	if err != nil {
		return Transform{}, err
	}
	if t.Op == OpNodeAdd {
		t.Node = inv.Node
	}
	j.applied = append(j.applied, t)
	j.inverses = append(j.inverses, inv)
	return t, nil
}

// Len returns the number of recorded transforms.
func (j *Journal) Len() int { return len(j.applied) }

// Applied returns the recorded forward transforms in application order.
// The slice is a copy.
func (j *Journal) Applied() []Transform {
	return append([]Transform(nil), j.applied...)
}

// Undo reverts the most recent transform. It reports false when the journal
// is empty.
func (j *Journal) Undo() bool {
	n := len(j.inverses)
	if n == 0 {
		return false
	}
	inv := j.inverses[n-1]
	// Inverses of successfully applied transforms cannot fail: ND of the
	// node NA created, NA restoring a deleted node, EA/ED of known edges.
	if _, err := inv.Apply(j.g); err != nil {
		// Defensive: surface via panic in tests; production graphs cannot
		// reach this unless mutated behind the journal's back.
		panic(fmt.Sprintf("graph: journal undo failed: %v", err))
	}
	j.applied = j.applied[:n-1]
	j.inverses = j.inverses[:n-1]
	return true
}

// UndoAll reverts every recorded transform, newest first, and returns the
// number undone.
func (j *Journal) UndoAll() int {
	n := 0
	for j.Undo() {
		n++
	}
	return n
}

// TouchedNodes returns the ids of all nodes referenced by recorded
// transforms (added, deleted, or edge endpoints), sorted. The maintenance
// machinery intersects this set with the articulation coverage to decide
// whether an articulation must be regenerated (§5.3).
func (j *Journal) TouchedNodes() []NodeID {
	set := make(map[NodeID]struct{})
	for _, t := range j.applied {
		switch t.Op {
		case OpNodeAdd, OpNodeDelete:
			if t.Node != Invalid {
				set[t.Node] = struct{}{}
			}
		}
		for _, e := range t.Edges {
			if e.From != Invalid {
				set[e.From] = struct{}{}
			}
			if e.To != Invalid {
				set[e.To] = struct{}{}
			}
		}
	}
	ids := make([]NodeID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sortNodeIDs(ids)
	return ids
}

func sortNodeIDs(ids []NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
