package graph

import (
	"strings"
	"testing"
)

// buildCarrier constructs a fragment of the paper's carrier ontology for
// use across tests.
func buildCarrier(t testing.TB) (*Graph, map[string]NodeID) {
	t.Helper()
	g := New("carrier")
	ids := make(map[string]NodeID)
	for _, l := range []string{"Transportation", "Cars", "Trucks", "PassengerCar", "SUV", "MyCar", "Driver", "Price", "Owner", "Model"} {
		ids[l] = g.AddNode(l)
	}
	edges := []struct{ from, label, to string }{
		{"Cars", "SubclassOf", "Transportation"},
		{"Trucks", "SubclassOf", "Transportation"},
		{"PassengerCar", "SubclassOf", "Cars"},
		{"SUV", "SubclassOf", "Cars"},
		{"MyCar", "InstanceOf", "PassengerCar"},
		{"Cars", "AttributeOf", "Price"},
		{"Cars", "AttributeOf", "Owner"},
		{"Trucks", "AttributeOf", "Model"},
		{"Cars", "drivenBy", "Driver"},
	}
	for _, e := range edges {
		if err := g.AddEdge(ids[e.from], e.label, ids[e.to]); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	return g, ids
}

func TestAddNodeAssignsDistinctIDs(t *testing.T) {
	g := New("t")
	a := g.AddNode("A")
	b := g.AddNode("B")
	if a == Invalid || b == Invalid {
		t.Fatalf("AddNode returned Invalid for non-empty labels")
	}
	if a == b {
		t.Fatalf("AddNode returned duplicate id %d", a)
	}
	if g.Label(a) != "A" || g.Label(b) != "B" {
		t.Fatalf("labels misassigned: %q %q", g.Label(a), g.Label(b))
	}
}

func TestAddNodeRejectsEmptyLabel(t *testing.T) {
	g := New("t")
	if id := g.AddNode(""); id != Invalid {
		t.Fatalf("AddNode(\"\") = %d, want Invalid", id)
	}
	if g.NumNodes() != 0 {
		t.Fatalf("empty-label node was stored")
	}
}

func TestAddNodeAllowsDuplicateLabels(t *testing.T) {
	g := New("t")
	a := g.AddNode("X")
	b := g.AddNode("X")
	if a == b {
		t.Fatalf("duplicate-label nodes share id")
	}
	if got := g.NodesByLabel("X"); len(got) != 2 {
		t.Fatalf("NodesByLabel = %v, want 2 nodes", got)
	}
	if _, ok := g.NodeByLabel("X"); ok {
		t.Fatalf("NodeByLabel should refuse ambiguous label")
	}
	if id, ok := g.AnyNodeByLabel("X"); !ok || id != a {
		t.Fatalf("AnyNodeByLabel = (%d,%v), want lowest id %d", id, ok, a)
	}
}

func TestAddEdgeRequiresEndpoints(t *testing.T) {
	g := New("t")
	a := g.AddNode("A")
	if err := g.AddEdge(a, "rel", NodeID(99)); err == nil {
		t.Fatalf("AddEdge with unknown target succeeded")
	}
	if err := g.AddEdge(NodeID(99), "rel", a); err == nil {
		t.Fatalf("AddEdge with unknown source succeeded")
	}
	if g.NumEdges() != 0 {
		t.Fatalf("failed AddEdge left %d edges", g.NumEdges())
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := New("t")
	a, b := g.AddNode("A"), g.AddNode("B")
	for i := 0; i < 3; i++ {
		if err := g.AddEdge(a, "rel", b); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	if g.NumEdges() != 1 {
		t.Fatalf("duplicate edge stored: %d edges", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate after duplicate adds: %v", err)
	}
}

func TestMultigraphDistinctLabelsBetweenSamePair(t *testing.T) {
	g := New("t")
	a, b := g.AddNode("A"), g.AddNode("B")
	mustAdd(t, g, a, "rel1", b)
	mustAdd(t, g, a, "rel2", b)
	if g.NumEdges() != 2 {
		t.Fatalf("want 2 parallel edges, got %d", g.NumEdges())
	}
	if !g.HasEdge(a, "rel1", b) || !g.HasEdge(a, "rel2", b) {
		t.Fatalf("parallel edges not both present")
	}
	if !g.HasEdgeAnyLabel(a, b) || g.HasEdgeAnyLabel(b, a) {
		t.Fatalf("HasEdgeAnyLabel direction wrong")
	}
}

func TestDeleteNodeRemovesIncidentEdges(t *testing.T) {
	g, ids := buildCarrier(t)
	before := g.NumEdges()
	if !g.DeleteNode(ids["Cars"]) {
		t.Fatalf("DeleteNode(Cars) = false")
	}
	// Cars participates in 6 edges in the fixture.
	if got := before - g.NumEdges(); got != 6 {
		t.Fatalf("DeleteNode removed %d edges, want 6", got)
	}
	if g.HasNode(ids["Cars"]) {
		t.Fatalf("deleted node still present")
	}
	if _, ok := g.NodeByLabel("Cars"); ok {
		t.Fatalf("label index still resolves deleted node")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate after delete: %v", err)
	}
}

func TestDeleteNodeUnknown(t *testing.T) {
	g := New("t")
	if g.DeleteNode(NodeID(7)) {
		t.Fatalf("DeleteNode of unknown id returned true")
	}
}

func TestDeleteEdge(t *testing.T) {
	g, ids := buildCarrier(t)
	e := Edge{From: ids["Cars"], Label: "SubclassOf", To: ids["Transportation"]}
	if !g.DeleteEdge(e) {
		t.Fatalf("DeleteEdge of present edge returned false")
	}
	if g.DeleteEdge(e) {
		t.Fatalf("DeleteEdge of absent edge returned true")
	}
	if g.HasEdge(e.From, e.Label, e.To) {
		t.Fatalf("edge survives deletion")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate after edge delete: %v", err)
	}
}

func TestDeleteEdgesCountsRemovals(t *testing.T) {
	g, ids := buildCarrier(t)
	es := []Edge{
		{From: ids["Cars"], Label: "SubclassOf", To: ids["Transportation"]},
		{From: ids["Cars"], Label: "SubclassOf", To: ids["Transportation"]}, // dup
		{From: ids["SUV"], Label: "SubclassOf", To: ids["Cars"]},
	}
	if n := g.DeleteEdges(es); n != 2 {
		t.Fatalf("DeleteEdges removed %d, want 2", n)
	}
}

func TestAddNodeWithEdges(t *testing.T) {
	g := New("t")
	a := g.AddNode("A")
	b := g.AddNode("B")
	id, err := g.AddNodeWithEdges("N", []HalfEdge{
		{Label: "to", Other: a, Out: true},
		{Label: "from", Other: b, Out: false},
	})
	if err != nil {
		t.Fatalf("AddNodeWithEdges: %v", err)
	}
	if !g.HasEdge(id, "to", a) {
		t.Fatalf("outgoing half-edge missing")
	}
	if !g.HasEdge(b, "from", id) {
		t.Fatalf("incoming half-edge missing")
	}
}

func TestAddNodeWithEdgesReportsBadNeighbour(t *testing.T) {
	g := New("t")
	id, err := g.AddNodeWithEdges("N", []HalfEdge{{Label: "to", Other: NodeID(42), Out: true}})
	if err == nil {
		t.Fatalf("expected error for unknown neighbour")
	}
	if !g.HasNode(id) {
		t.Fatalf("node itself should still be added")
	}
}

func TestSetLabel(t *testing.T) {
	g := New("t")
	a := g.AddNode("Old")
	if err := g.SetLabel(a, "New"); err != nil {
		t.Fatalf("SetLabel: %v", err)
	}
	if _, ok := g.NodeByLabel("Old"); ok {
		t.Fatalf("old label still indexed")
	}
	if id, ok := g.NodeByLabel("New"); !ok || id != a {
		t.Fatalf("new label not indexed")
	}
	if err := g.SetLabel(a, ""); err == nil {
		t.Fatalf("SetLabel accepted empty label")
	}
	if err := g.SetLabel(NodeID(99), "X"); err == nil {
		t.Fatalf("SetLabel accepted unknown node")
	}
	if err := g.SetLabel(a, "New"); err != nil {
		t.Fatalf("SetLabel to same label should be a no-op: %v", err)
	}
}

func TestEnsureNode(t *testing.T) {
	g := New("t")
	a, err := g.EnsureNode("X")
	if err != nil {
		t.Fatalf("EnsureNode create: %v", err)
	}
	b, err := g.EnsureNode("X")
	if err != nil || b != a {
		t.Fatalf("EnsureNode reuse = (%d,%v), want (%d,nil)", b, err, a)
	}
	g.AddNode("X") // force ambiguity
	if _, err := g.EnsureNode("X"); err == nil {
		t.Fatalf("EnsureNode on ambiguous label should fail")
	}
	if _, err := g.EnsureNode(""); err == nil {
		t.Fatalf("EnsureNode on empty label should fail")
	}
}

func TestEdgesSortedDeterministically(t *testing.T) {
	g, _ := buildCarrier(t)
	es1 := g.Edges()
	es2 := g.Edges()
	if len(es1) != len(es2) {
		t.Fatalf("Edges length unstable")
	}
	for i := range es1 {
		if es1[i] != es2[i] {
			t.Fatalf("Edges order unstable at %d: %v vs %v", i, es1[i], es2[i])
		}
	}
	for i := 1; i < len(es1); i++ {
		a, b := es1[i-1], es1[i]
		if a.From > b.From || (a.From == b.From && a.Label > b.Label) ||
			(a.From == b.From && a.Label == b.Label && a.To > b.To) {
			t.Fatalf("Edges not sorted at %d: %v before %v", i, a, b)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g, ids := buildCarrier(t)
	c := g.Clone()
	if !g.EqualByLabels(c) {
		t.Fatalf("clone differs from original")
	}
	// Ids remain valid in the clone.
	if c.Label(ids["Cars"]) != "Cars" {
		t.Fatalf("clone lost node id mapping")
	}
	// Mutating the clone must not affect the original.
	c.DeleteNode(ids["Cars"])
	if !g.HasNode(ids["Cars"]) {
		t.Fatalf("clone mutation leaked into original")
	}
	// New nodes in the clone must not collide with original ids.
	n := c.AddNode("Fresh")
	if g.HasNode(n) {
		t.Fatalf("clone id collides with original")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("clone Validate: %v", err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g, ids := buildCarrier(t)
	s := g.InducedSubgraph([]NodeID{ids["Cars"], ids["Transportation"], ids["Price"], ids["Cars"]})
	if s.NumNodes() != 3 {
		t.Fatalf("subgraph nodes = %d, want 3 (dups ignored)", s.NumNodes())
	}
	if !s.HasEdge(ids["Cars"], "SubclassOf", ids["Transportation"]) {
		t.Fatalf("internal edge dropped")
	}
	if !s.HasEdge(ids["Cars"], "AttributeOf", ids["Price"]) {
		t.Fatalf("attribute edge dropped")
	}
	if s.NumEdges() != 2 {
		t.Fatalf("subgraph edges = %d, want 2", s.NumEdges())
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("subgraph Validate: %v", err)
	}
}

func TestEqualByLabelsDetectsDifferences(t *testing.T) {
	g1 := New("a")
	x1, y1 := g1.AddNode("X"), g1.AddNode("Y")
	mustAdd(t, g1, x1, "r", y1)

	g2 := New("b")
	y2, x2 := g2.AddNode("Y"), g2.AddNode("X") // different insertion order
	mustAdd(t, g2, x2, "r", y2)

	if !g1.EqualByLabels(g2) {
		t.Fatalf("label-isomorphic graphs reported unequal")
	}
	mustAdd(t, g2, y2, "r", x2)
	if g1.EqualByLabels(g2) {
		t.Fatalf("graphs with different edges reported equal")
	}
}

func TestEdgeLabelQueries(t *testing.T) {
	g, _ := buildCarrier(t)
	labels := g.EdgeLabels()
	want := []string{"AttributeOf", "InstanceOf", "SubclassOf", "drivenBy"}
	if len(labels) != len(want) {
		t.Fatalf("EdgeLabels = %v, want %v", labels, want)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("EdgeLabels = %v, want %v", labels, want)
		}
	}
	if got := len(g.EdgesWithLabel("SubclassOf")); got != 4 {
		t.Fatalf("EdgesWithLabel(SubclassOf) = %d, want 4", got)
	}
	if got := g.EdgesWithLabel("nope"); got != nil {
		t.Fatalf("EdgesWithLabel(nope) = %v, want nil", got)
	}
}

func TestDegrees(t *testing.T) {
	g, ids := buildCarrier(t)
	if d := g.OutDegree(ids["Cars"]); d != 4 {
		t.Fatalf("OutDegree(Cars) = %d, want 4", d)
	}
	if d := g.InDegree(ids["Cars"]); d != 2 {
		t.Fatalf("InDegree(Cars) = %d, want 2", d)
	}
	if d := g.Degree(ids["Cars"]); d != 6 {
		t.Fatalf("Degree(Cars) = %d, want 6", d)
	}
}

func TestStringDumpIsStable(t *testing.T) {
	g, _ := buildCarrier(t)
	s1, s2 := g.String(), g.String()
	if s1 != s2 {
		t.Fatalf("String() unstable")
	}
	if !strings.Contains(s1, "edge Cars -[SubclassOf]-> Transportation") {
		t.Fatalf("String() missing expected edge line:\n%s", s1)
	}
}

func TestDOTOutput(t *testing.T) {
	g, ids := buildCarrier(t)
	var sb strings.Builder
	err := g.WriteDOT(&sb, DOTOptions{
		Highlight:  map[NodeID]bool{ids["Cars"]: true},
		EdgeStyles: map[string]string{"SubclassOf": "bold"},
		RankDir:    "BT",
	})
	if err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"digraph carrier", "rankdir=BT", "fillcolor=lightgrey", "style=bold", `label="Cars"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestComputeStats(t *testing.T) {
	g, _ := buildCarrier(t)
	s := g.ComputeStats()
	if s.Nodes != 10 || s.Edges != 9 {
		t.Fatalf("Stats = %+v, want 10 nodes / 9 edges", s)
	}
	if s.EdgeLabels != 4 {
		t.Fatalf("Stats.EdgeLabels = %d, want 4", s.EdgeLabels)
	}
	if s.MaxOutDeg != 4 {
		t.Fatalf("Stats.MaxOutDeg = %d, want 4", s.MaxOutDeg)
	}
	if s.Components != 1 {
		t.Fatalf("Stats.Components = %d, want 1", s.Components)
	}
}

func mustAdd(t testing.TB, g *Graph, from NodeID, label string, to NodeID) {
	t.Helper()
	if err := g.AddEdge(from, label, to); err != nil {
		t.Fatalf("AddEdge(%d,%s,%d): %v", from, label, to, err)
	}
}

func TestEpochTracksEffectiveMutations(t *testing.T) {
	g := New("g")
	base := g.Epoch()
	a := g.AddNode("A")
	b := g.AddNode("B")
	if g.Epoch() == base {
		t.Fatalf("AddNode did not bump epoch")
	}
	e := g.Epoch()
	if err := g.AddEdge(a, "rel", b); err != nil || g.Epoch() == e {
		t.Fatalf("AddEdge did not bump epoch (err=%v)", err)
	}
	// Idempotent operations must not bump: an unchanged epoch is a
	// promise of unchanged structure to cache validators.
	e = g.Epoch()
	if err := g.AddEdge(a, "rel", b); err != nil || g.Epoch() != e {
		t.Fatalf("duplicate AddEdge bumped epoch (err=%v)", err)
	}
	if g.DeleteEdge(Edge{From: a, Label: "nope", To: b}) || g.Epoch() != e {
		t.Fatalf("no-op DeleteEdge bumped epoch")
	}
	if err := g.SetLabel(a, "A"); err != nil || g.Epoch() != e {
		t.Fatalf("no-op SetLabel bumped epoch (err=%v)", err)
	}
	g.SetName("g")
	if g.Epoch() != e {
		t.Fatalf("no-op SetName bumped epoch")
	}
	// Effective mutations of every kind bump.
	for _, step := range []struct {
		name string
		run  func() bool
	}{
		{"DeleteEdge", func() bool { return g.DeleteEdge(Edge{From: a, Label: "rel", To: b}) }},
		{"DeleteNode", func() bool { return g.DeleteNode(b) }},
		{"SetLabel", func() bool { return g.SetLabel(a, "A2") == nil }},
		{"SetName", func() bool { g.SetName("g2"); return true }},
		{"Touch", func() bool { g.Touch(); return true }},
	} {
		e = g.Epoch()
		if !step.run() {
			t.Fatalf("%s failed", step.name)
		}
		if g.Epoch() == e {
			t.Fatalf("%s did not bump epoch", step.name)
		}
	}
}
