package graph

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// DOTOptions control Graphviz export.
type DOTOptions struct {
	// Highlight contains nodes drawn with a distinct style (the viewer uses
	// this for articulation-ontology nodes).
	Highlight map[NodeID]bool
	// EdgeStyles maps an edge label to a Graphviz style attribute value
	// (e.g. "dashed" for SIBridge edges).
	EdgeStyles map[string]string
	// RankDir sets the layout direction; empty means Graphviz's default.
	RankDir string
}

// WriteDOT renders the graph in Graphviz DOT syntax. Output is
// deterministic. The ONION viewer substitute (cmd/onion) uses this for
// visual inspection of ontologies and articulations.
func (g *Graph) WriteDOT(w io.Writer, opts DOTOptions) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", dotID(g.name))
	if opts.RankDir != "" {
		fmt.Fprintf(&b, "  rankdir=%s;\n", opts.RankDir)
	}
	b.WriteString("  node [shape=box, fontname=\"Helvetica\"];\n")
	for _, id := range g.Nodes() {
		attrs := fmt.Sprintf("label=%q", g.Label(id))
		if opts.Highlight[id] {
			attrs += ", style=filled, fillcolor=lightgrey"
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", id, attrs)
	}
	for _, e := range g.Edges() {
		attrs := fmt.Sprintf("label=%q", e.Label)
		if style, ok := opts.EdgeStyles[e.Label]; ok {
			attrs += fmt.Sprintf(", style=%s", style)
		}
		fmt.Fprintf(&b, "  n%d -> n%d [%s];\n", e.From, e.To, attrs)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// DOT returns the Graphviz rendering as a string.
func (g *Graph) DOT() string {
	var sb strings.Builder
	_ = g.WriteDOT(&sb, DOTOptions{})
	return sb.String()
}

func dotID(s string) string {
	if s == "" {
		return "G"
	}
	clean := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			clean = append(clean, r)
		default:
			clean = append(clean, '_')
		}
	}
	if clean[0] >= '0' && clean[0] <= '9' {
		clean = append([]rune{'_'}, clean...)
	}
	return string(clean)
}

// String renders a deterministic, human-readable dump: one line per node
// (sorted by label, then id) followed by one line per labeled edge triple.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s (%d nodes, %d edges)\n", g.name, g.NumNodes(), g.NumEdges())

	type nl struct {
		label string
		id    NodeID
	}
	nodes := make([]nl, 0, g.NumNodes())
	for _, id := range g.Nodes() {
		nodes = append(nodes, nl{g.Label(id), id})
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].label != nodes[j].label {
			return nodes[i].label < nodes[j].label
		}
		return nodes[i].id < nodes[j].id
	})
	for _, n := range nodes {
		fmt.Fprintf(&b, "  node %s\n", n.label)
	}
	for _, t := range g.labelTriples() {
		fmt.Fprintf(&b, "  edge %s -[%s]-> %s\n", t.from, t.label, t.to)
	}
	return b.String()
}

// Stats summarises a graph for reporting.
type Stats struct {
	Nodes      int
	Edges      int
	EdgeLabels int
	Components int
	MaxOutDeg  int
	MaxInDeg   int
}

// ComputeStats gathers Stats in one pass plus a component sweep.
func (g *Graph) ComputeStats() Stats {
	s := Stats{
		Nodes:      g.NumNodes(),
		Edges:      g.NumEdges(),
		EdgeLabels: len(g.EdgeLabels()),
		Components: len(g.ConnectedComponents()),
	}
	for id := range g.labels {
		if d := len(g.out[id]); d > s.MaxOutDeg {
			s.MaxOutDeg = d
		}
		if d := len(g.in[id]); d > s.MaxInDeg {
			s.MaxInDeg = d
		}
	}
	return s
}
