package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomGraph builds a pseudo-random graph from a seed: n nodes labelled
// L0..L{n-1} and m random edges over a small label alphabet.
func randomGraph(seed int64, n, m int) (*Graph, []NodeID) {
	rng := rand.New(rand.NewSource(seed))
	g := New("rand")
	ids := make([]NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.AddNode(labelFor(i))
	}
	labels := []string{"S", "A", "I", "r"}
	for i := 0; i < m; i++ {
		from := ids[rng.Intn(n)]
		to := ids[rng.Intn(n)]
		_ = g.AddEdge(from, labels[rng.Intn(len(labels))], to)
	}
	return g, ids
}

func labelFor(i int) string {
	const alpha = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	s := ""
	for {
		s = string(alpha[i%26]) + s
		i /= 26
		if i == 0 {
			return s
		}
	}
}

// Property: after any random construction the structural invariants hold.
func TestQuickValidateRandomGraphs(t *testing.T) {
	f := func(seed int64, n8, m8 uint8) bool {
		n := int(n8)%40 + 1
		m := int(m8) % 120
		g, _ := randomGraph(seed, n, m)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone is structurally equal and independently mutable.
func TestQuickCloneEquality(t *testing.T) {
	f := func(seed int64, n8, m8 uint8) bool {
		n := int(n8)%30 + 1
		m := int(m8) % 90
		g, ids := randomGraph(seed, n, m)
		c := g.Clone()
		if !g.EqualByLabels(c) {
			return false
		}
		c.DeleteNode(ids[0])
		return g.HasNode(ids[0]) && c.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: deleting every node empties the graph completely.
func TestQuickDeleteAllNodes(t *testing.T) {
	f := func(seed int64, n8, m8 uint8) bool {
		n := int(n8)%30 + 1
		m := int(m8) % 90
		g, ids := randomGraph(seed, n, m)
		for _, id := range ids {
			g.DeleteNode(id)
		}
		return g.NumNodes() == 0 && g.NumEdges() == 0 && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: transitive closure is a fixpoint (applying twice adds nothing)
// and never removes reachability.
func TestQuickTransitiveClosureFixpoint(t *testing.T) {
	f := func(seed int64, n8, m8 uint8) bool {
		n := int(n8)%20 + 2
		m := int(m8) % 60
		g, _ := randomGraph(seed, n, m)
		g.CloseTransitive("S")
		return len(g.TransitiveClosure("S")) == 0 && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: after closure, every 2-hop S-path has a direct S-edge.
func TestQuickClosureCoversTwoHops(t *testing.T) {
	f := func(seed int64, n8, m8 uint8) bool {
		n := int(n8)%15 + 2
		m := int(m8) % 45
		g, _ := randomGraph(seed, n, m)
		g.CloseTransitive("S")
		for _, e1 := range g.EdgesWithLabel("S") {
			for _, e2 := range g.OutEdges(e1.To) {
				if e2.Label != "S" || e1.From == e2.To {
					continue
				}
				if !g.HasEdge(e1.From, "S", e2.To) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a random journal session undone in full restores the graph.
func TestQuickJournalRoundTrip(t *testing.T) {
	f := func(seed int64, n8, m8, ops8 uint8) bool {
		n := int(n8)%20 + 2
		m := int(m8) % 60
		ops := int(ops8) % 25
		g, _ := randomGraph(seed, n, m)
		snapshot := g.Clone()
		j := NewJournal(g)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		for i := 0; i < ops; i++ {
			nodes := g.Nodes()
			if len(nodes) == 0 {
				break
			}
			pick := func() NodeID { return nodes[rng.Intn(len(nodes))] }
			switch rng.Intn(4) {
			case 0:
				if _, err := j.Apply(NodeAdd(labelFor(1000 + i))); err != nil {
					return false
				}
			case 1:
				if _, err := j.Apply(NodeDelete(pick())); err != nil {
					return false
				}
			case 2:
				if _, err := j.Apply(EdgeAdd(Edge{From: pick(), Label: "S", To: pick()})); err != nil {
					return false
				}
			case 3:
				es := g.Edges()
				if len(es) == 0 {
					continue
				}
				if _, err := j.Apply(EdgeDelete(es[rng.Intn(len(es))])); err != nil {
					return false
				}
			}
		}
		j.UndoAll()
		return g.EqualByLabels(snapshot) && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: TopoSort succeeds exactly when FindCycle finds nothing.
func TestQuickTopoSortIffAcyclic(t *testing.T) {
	f := func(seed int64, n8, m8 uint8) bool {
		n := int(n8)%15 + 2
		m := int(m8) % 45
		g, _ := randomGraph(seed, n, m)
		_, ok := g.TopoSort("S")
		cyc := g.FindCycle("S")
		return ok == (cyc == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: reachability is monotone under edge addition.
func TestQuickReachabilityMonotone(t *testing.T) {
	f := func(seed int64, n8, m8 uint8) bool {
		n := int(n8)%15 + 3
		m := int(m8) % 30
		g, ids := randomGraph(seed, n, m)
		before := len(g.Reachable(ids[0], nil))
		_ = g.AddEdge(ids[0], "r", ids[n-1])
		after := len(g.Reachable(ids[0], nil))
		return after >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
