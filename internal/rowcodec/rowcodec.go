// Package rowcodec is the one kind-strict value encoding the system keys,
// spills and persists rows with.
//
// It started life inside internal/query as the row/join-key encoding
// (PR 3) and the grace-hash spill wire format (PR 5); the persistence
// layer (internal/persist) made it load-bearing on disk, so it lives here
// as a shared codec: query spilling, fact logs, snapshots and the serving
// layer's disk cache tier all encode values through exactly this code.
// One codec means one equality: a fact that round-trips through a spill
// run, a crash-recovered log or a cold cache entry can never collapse
// with — or diverge from — a distinct in-memory value.
//
// The seed's ancestor encodings keyed on Format() strings joined with raw
// '\x00' — kind-blind (Term("3000") and Number(3000) format identically)
// and framing-ambiguous (a payload containing '\x00' shifts bytes across
// field boundaries). AppendValue replaces all of that with a single
// collision-free encoding.
package rowcodec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/kb"
)

// AppendValue appends a collision-free, order-preserving encoding of v
// to buf:
//
//   - a kind tag byte first, so values of different kinds never compare
//     equal (Term("3000") vs Number(3000) vs String("3000")), and rows
//     sort kind-major within a column;
//   - numbers as the 8-byte big-endian IEEE image with the sign-flip
//     transform, so byte order equals numeric order (-0 sorts before +0,
//     and they stay distinct — Format renders them "-0" and "0"). NaN
//     payloads are canonicalised so every NaN encodes alike: the
//     reference semantics key on Format(), where all NaNs render "NaN"
//     and therefore compare equal;
//   - terms and strings as the payload with '\x00' escaped as
//     "\x00\xff" followed by a '\x00' terminator. The escape keeps
//     NUL-bearing payloads from shifting bytes across field boundaries,
//     and the terminator (never followed by 0xff; kind tags are 0..2)
//     keeps concatenated fields prefix-free while preserving plain
//     lexicographic order for NUL-free payloads.
//
// The encoding is injective up to NaN payloads, so it is simultaneously
// the join-key, dedup-key, sort-key and wire encoding: two values encode
// equally iff they are equal under the engine's value semantics.
func AppendValue(buf []byte, v kb.Value) []byte {
	buf = append(buf, byte(v.Kind))
	if v.Kind == kb.KindNumber {
		bits := math.Float64bits(v.Num)
		if math.IsNaN(v.Num) {
			bits = 0x7FF8000000000000
		}
		if bits&(1<<63) != 0 {
			bits = ^bits
		} else {
			bits |= 1 << 63
		}
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], bits)
		return append(buf, n[:]...)
	}
	s := v.Str
	for {
		i := strings.IndexByte(s, 0)
		if i < 0 {
			break
		}
		buf = append(buf, s[:i]...)
		buf = append(buf, 0x00, 0xff)
		s = s[i+1:]
	}
	buf = append(buf, s...)
	return append(buf, 0x00)
}

// AppendRow appends a row's dedup/sort key: AppendValue over every cell.
// The query executors' projection, dedup and final row sort all key on
// it, so the deterministic output order is shared by every execution
// path and is safe under adversarial values.
func AppendRow(buf []byte, vals []kb.Value) []byte {
	for _, v := range vals {
		buf = AppendValue(buf, v)
	}
	return buf
}

// DecodeValue is the inverse of AppendValue: it decodes one value from
// the front of b and returns it with the number of bytes consumed. The
// kind tag, the escape/terminator framing and the order-preserving float
// image all invert exactly, so encoded values round-trip kind-strictly
// through spill runs, fact logs and snapshots. The only non-identity is
// the NaN class — every NaN encodes (and therefore decodes) as the
// canonical quiet NaN, which is the engine's value semantics anyway
// (SameCell puts every NaN in one class), so a decoded row is
// EqualRows-identical to its in-memory twin.
func DecodeValue(b []byte) (kb.Value, int, error) {
	if len(b) == 0 {
		return kb.Value{}, 0, errors.New("rowcodec: empty value encoding")
	}
	kind := kb.ValueKind(b[0])
	if kind == kb.KindNumber {
		if len(b) < 9 {
			return kb.Value{}, 0, errors.New("rowcodec: truncated number encoding")
		}
		bits := binary.BigEndian.Uint64(b[1:9])
		if bits&(1<<63) != 0 {
			bits &^= 1 << 63
		} else {
			bits = ^bits
		}
		return kb.Number(math.Float64frombits(bits)), 9, nil
	}
	if kind != kb.KindTerm && kind != kb.KindString {
		return kb.Value{}, 0, fmt.Errorf("rowcodec: unknown kind tag %d", b[0])
	}
	var sb strings.Builder
	i := 1
	for {
		j := i
		for j < len(b) && b[j] != 0 {
			j++
		}
		if j >= len(b) {
			return kb.Value{}, 0, errors.New("rowcodec: unterminated payload")
		}
		sb.Write(b[i:j])
		if j+1 < len(b) && b[j+1] == 0xff {
			// Escaped NUL inside the payload.
			sb.WriteByte(0)
			i = j + 2
			continue
		}
		return kb.Value{Kind: kind, Str: sb.String()}, j + 1, nil
	}
}

// SameCell reports whether two cells are equal under the engine's value
// semantics — the equality AppendValue encodes: kind-strict, string
// payloads byte-equal, numbers by IEEE bit image with every NaN in one
// class. (kb.Value.Equal alone would call +0 and -0 equal and every NaN
// unequal to itself, diverging from the row keys the executors dedup
// and sort on.)
func SameCell(a, b kb.Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Kind == kb.KindNumber {
		return math.Float64bits(a.Num) == math.Float64bits(b.Num) ||
			(math.IsNaN(a.Num) && math.IsNaN(b.Num))
	}
	return a.Str == b.Str
}
