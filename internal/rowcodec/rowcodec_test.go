package rowcodec

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/kb"
)

// codecValues is a spread of adversarial values: kind collisions under
// Format(), NUL-bearing payloads, escape-sequence lookalikes, float edge
// cases.
func codecValues() []kb.Value {
	return []kb.Value{
		kb.Term("Vehicle"),
		kb.Term("3000"),
		kb.Number(3000),
		kb.String("3000"),
		kb.Term(`"x"`),
		kb.String("x"),
		kb.Term(""),
		kb.String(""),
		kb.Term("a\x00b"),
		kb.Term("a\x00\xffb"),
		kb.String("a\x00b"),
		kb.Term("a"),
		kb.Term("b"),
		kb.Number(0),
		kb.Number(math.Copysign(0, -1)),
		kb.Number(math.Inf(1)),
		kb.Number(math.Inf(-1)),
		kb.Number(math.NaN()),
		kb.Number(-1.5),
		kb.Number(1.5),
	}
}

func TestRoundTripAndInjective(t *testing.T) {
	vals := codecValues()
	for i, v := range vals {
		enc := AppendValue(nil, v)
		dec, n, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if n != len(enc) {
			t.Fatalf("decode %v consumed %d of %d bytes", v, n, len(enc))
		}
		if !SameCell(v, dec) && !(math.IsNaN(v.Num) && math.IsNaN(dec.Num)) {
			t.Fatalf("round trip changed %#v into %#v", v, dec)
		}
		for j, w := range vals {
			same := bytes.Equal(enc, AppendValue(nil, w))
			want := SameCell(v, w)
			if same != want {
				t.Fatalf("encodings of %#v (%d) and %#v (%d): equal=%v, SameCell=%v",
					v, i, w, j, same, want)
			}
		}
	}
}

// TestOrderPreserving: byte order of encodings equals value order within
// a kind (the property the row sort relies on).
func TestOrderPreserving(t *testing.T) {
	pairs := [][2]kb.Value{
		{kb.Number(-2), kb.Number(-1)},
		{kb.Number(-1), kb.Number(0)},
		{kb.Number(math.Copysign(0, -1)), kb.Number(0)},
		{kb.Number(0), kb.Number(1)},
		{kb.Number(math.Inf(-1)), kb.Number(-1e300)},
		{kb.Number(1e300), kb.Number(math.Inf(1))},
		{kb.Term("a"), kb.Term("b")},
		{kb.Term("a"), kb.Term("ab")},
		{kb.String("x"), kb.String("y")},
	}
	for _, p := range pairs {
		lo, hi := AppendValue(nil, p[0]), AppendValue(nil, p[1])
		if bytes.Compare(lo, hi) >= 0 {
			t.Fatalf("encoding of %v not below %v", p[0], p[1])
		}
	}
}

// TestRowFraming: concatenated fields must never re-frame into a
// colliding row key.
func TestRowFraming(t *testing.T) {
	a := AppendRow(nil, []kb.Value{kb.Term("a\x00"), kb.Term("b")})
	b := AppendRow(nil, []kb.Value{kb.Term("a"), kb.Term("\x00b")})
	c := AppendRow(nil, []kb.Value{kb.Term("a"), kb.Term(""), kb.Term("b")})
	if bytes.Equal(a, b) || bytes.Equal(a, c) || bytes.Equal(b, c) {
		t.Fatalf("row keys collide: %q %q %q", a, b, c)
	}
}

func TestDecodeGarbage(t *testing.T) {
	for _, b := range [][]byte{
		nil,
		{},
		{0x07},                                 // unknown kind
		{byte(kb.KindNumber), 1, 2, 3},         // truncated float
		{byte(kb.KindTerm), 'a'},               // unterminated payload
		{byte(kb.KindString), 'a', 0x00, 0xff}, // escape then nothing
	} {
		if _, _, err := DecodeValue(b); err == nil && len(b) > 0 && b[0] == byte(kb.KindString) {
			// "a\x00\xff" decodes only if a later terminator exists; the
			// 4-byte case above has none and must error.
			t.Fatalf("DecodeValue(%v) accepted garbage", b)
		}
	}
	if _, _, err := DecodeValue([]byte{byte(kb.KindString), 'a', 0x00, 0xff}); err == nil {
		t.Fatalf("unterminated escaped payload accepted")
	}
}
