package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestOSRoundTrip exercises the OS implementation end to end: create,
// write, sync, rename, dir-sync, read back, glob, remove.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fsys := OS{}
	if err := fsys.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.CreateTemp(filepath.Join(dir, "sub"), "x-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	final := filepath.Join(dir, "sub", "final")
	if err := fsys.Rename(f.Name(), final); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(filepath.Join(dir, "sub")); err != nil {
		t.Fatal(err)
	}
	data, err := fsys.ReadFile(final)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "payload" {
		t.Fatalf("read %q, want %q", data, "payload")
	}
	matches, err := fsys.Glob(filepath.Join(dir, "sub", "fin*"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("glob = %v, %v", matches, err)
	}
	if err := fsys.Remove(final); err != nil {
		t.Fatal(err)
	}
}

// TestFaultyTransparent checks that an unarmed Faulty changes nothing.
func TestFaultyTransparent(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaulty(OS{})
	path := filepath.Join(dir, "a")
	if err := fsys.WriteFile(path, []byte("ok"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := fsys.ReadFile(path)
	if err != nil || string(data) != "ok" {
		t.Fatalf("read = %q, %v", data, err)
	}
	if fsys.Injected() != 0 {
		t.Fatalf("injected %d faults with no rules", fsys.Injected())
	}
	if fsys.Ops() == 0 {
		t.Fatal("operations were not counted")
	}
}

// TestFaultyFailNth arms "the 2nd matching write fails" and checks the
// 1st passes, the 2nd fails with the scripted error, and — Times=1 —
// the 3rd passes again.
func TestFaultyFailNth(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaulty(OS{})
	boom := errors.New("boom")
	fsys.Inject(Rule{Op: OpWrite, After: 1, Times: 1, Err: boom})
	p := func(i int) string { return filepath.Join(dir, "f"+string(rune('a'+i))) }
	if err := fsys.WriteFile(p(0), []byte("x"), 0o644); err != nil {
		t.Fatalf("1st write: %v", err)
	}
	if err := fsys.WriteFile(p(1), []byte("x"), 0o644); !errors.Is(err, boom) {
		t.Fatalf("2nd write err = %v, want boom", err)
	}
	if err := fsys.WriteFile(p(2), []byte("x"), 0o644); err != nil {
		t.Fatalf("3rd write: %v", err)
	}
	if fsys.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", fsys.Injected())
	}
}

// TestFaultyShortWrite checks a torn write lands exactly the scripted
// prefix before failing, for both WriteFile and File.Write.
func TestFaultyShortWrite(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaulty(OS{})
	fsys.Inject(Rule{Op: OpWrite, Times: 1, ShortBytes: 3})
	path := filepath.Join(dir, "torn")
	err := fsys.WriteFile(path, []byte("abcdef"), 0o644)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	data, rerr := os.ReadFile(path)
	if rerr != nil || string(data) != "abc" {
		t.Fatalf("torn file = %q, %v; want prefix \"abc\"", data, rerr)
	}

	fsys.Inject(Rule{Op: OpWrite, After: 0, Times: 1, ShortBytes: 2})
	f, err := fsys.OpenFile(filepath.Join(dir, "torn2"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, werr := f.Write([]byte("abcdef"))
	if !errors.Is(werr, syscall.ENOSPC) || n != 2 {
		t.Fatalf("handle write = %d, %v; want 2, ENOSPC", n, werr)
	}
	f.Close()
	data, rerr = os.ReadFile(filepath.Join(dir, "torn2"))
	if rerr != nil || string(data) != "ab" {
		t.Fatalf("torn2 file = %q, %v; want \"ab\"", data, rerr)
	}
}

// TestFaultyPathAndOpFilters checks rules only bite matching ops/paths:
// a sync-only rule scoped to "log" leaves writes and other files alone.
func TestFaultyPathAndOpFilters(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaulty(OS{})
	fsys.Inject(Rule{Op: OpSync, PathSubstr: "log", Err: syscall.EIO})

	lf, err := fsys.OpenFile(filepath.Join(dir, "log"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	if _, err := lf.Write([]byte("x")); err != nil {
		t.Fatalf("write to log should pass: %v", err)
	}
	if err := lf.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("log sync err = %v, want EIO", err)
	}

	of, err := fsys.OpenFile(filepath.Join(dir, "other"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer of.Close()
	if err := of.Sync(); err != nil {
		t.Fatalf("other sync should pass: %v", err)
	}

	fsys.Reset()
	if err := lf.Sync(); err != nil {
		t.Fatalf("after Reset, log sync should pass: %v", err)
	}
}
