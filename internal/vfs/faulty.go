package vfs

import (
	"io/fs"
	"os"
	"strings"
	"sync"
	"syscall"
)

// Op names one filesystem operation class for fault matching.
type Op string

// Operation classes. OpWrite covers WriteFile and File.Write, OpRead
// covers ReadFile and File.Read, OpSync covers File.Sync, OpSyncDir the
// directory fsync; OpAny matches everything.
const (
	OpAny        Op = "*"
	OpMkdirAll   Op = "mkdirall"
	OpOpenFile   Op = "openfile"
	OpOpen       Op = "open"
	OpRead       Op = "read"
	OpWrite      Op = "write"
	OpRemove     Op = "remove"
	OpRename     Op = "rename"
	OpTruncate   Op = "truncate"
	OpStat       Op = "stat"
	OpReadDir    Op = "readdir"
	OpGlob       Op = "glob"
	OpCreateTemp Op = "createtemp"
	OpSync       Op = "sync"
	OpSyncDir    Op = "syncdir"
)

// Rule scripts one fault: after After matching operations have passed
// through unharmed, the next Times matching operations fail with Err
// (syscall.ENOSPC when nil). For OpWrite, ShortBytes > 0 additionally
// lets each failing write land that many bytes before erroring — a torn
// write, not a clean refusal. Times 0 means "keep failing forever".
type Rule struct {
	Op         Op
	PathSubstr string // "" matches any path
	After      int
	Times      int
	Err        error
	ShortBytes int

	passed   int
	injected int
}

// Faulty wraps an FS and injects scripted failures. Safe for concurrent
// use. With no rules armed it is transparent.
type Faulty struct {
	inner FS

	mu       sync.Mutex
	rules    []*Rule
	ops      int64
	injected int64
}

// NewFaulty wraps inner (typically OS{}).
func NewFaulty(inner FS) *Faulty {
	return &Faulty{inner: inner}
}

// Inject arms one fault rule. Rules are matched in arming order; the
// first rule matching an operation owns its fate.
func (f *Faulty) Inject(r Rule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, &r)
}

// Reset disarms every rule (counters keep their totals).
func (f *Faulty) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// Injected returns how many operations failed by injection.
func (f *Faulty) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Ops returns how many operations were observed (failed or not).
func (f *Faulty) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// check consults the rules for one operation. It returns the error to
// inject (nil = proceed) and, for writes, how many bytes a torn write
// should land first (-1 = fail cleanly, no bytes land).
func (f *Faulty) check(op Op, path string) (error, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	for _, r := range f.rules {
		if r.Op != OpAny && r.Op != op {
			continue
		}
		if r.PathSubstr != "" && !strings.Contains(path, r.PathSubstr) {
			continue
		}
		if r.Times > 0 && r.injected >= r.Times {
			continue // spent; later rules may still apply
		}
		if r.passed < r.After {
			r.passed++
			break // first live matching rule owns this op's fate
		}
		r.injected++
		f.injected++
		err := r.Err
		if err == nil {
			err = syscall.ENOSPC
		}
		short := -1
		if op == OpWrite && r.ShortBytes > 0 {
			short = r.ShortBytes
		}
		return err, short
	}
	return nil, -1
}

func (f *Faulty) MkdirAll(path string, perm os.FileMode) error {
	if err, _ := f.check(OpMkdirAll, path); err != nil {
		return &os.PathError{Op: "mkdir", Path: path, Err: err}
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *Faulty) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err, _ := f.check(OpOpenFile, name); err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, inner: file}, nil
}

func (f *Faulty) Open(name string) (File, error) {
	if err, _ := f.check(OpOpen, name); err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, inner: file}, nil
}

func (f *Faulty) ReadFile(name string) ([]byte, error) {
	if err, _ := f.check(OpRead, name); err != nil {
		return nil, &os.PathError{Op: "read", Path: name, Err: err}
	}
	return f.inner.ReadFile(name)
}

func (f *Faulty) WriteFile(name string, data []byte, perm os.FileMode) error {
	if err, short := f.check(OpWrite, name); err != nil {
		if short >= 0 && short < len(data) {
			// Torn write: a prefix lands, then the device gives out.
			_ = f.inner.WriteFile(name, data[:short], perm)
		}
		return &os.PathError{Op: "write", Path: name, Err: err}
	}
	return f.inner.WriteFile(name, data, perm)
}

func (f *Faulty) Remove(name string) error {
	if err, _ := f.check(OpRemove, name); err != nil {
		return &os.PathError{Op: "remove", Path: name, Err: err}
	}
	return f.inner.Remove(name)
}

func (f *Faulty) Rename(oldpath, newpath string) error {
	if err, _ := f.check(OpRename, newpath); err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Faulty) Truncate(name string, size int64) error {
	if err, _ := f.check(OpTruncate, name); err != nil {
		return &os.PathError{Op: "truncate", Path: name, Err: err}
	}
	return f.inner.Truncate(name, size)
}

func (f *Faulty) Stat(name string) (fs.FileInfo, error) {
	if err, _ := f.check(OpStat, name); err != nil {
		return nil, &os.PathError{Op: "stat", Path: name, Err: err}
	}
	return f.inner.Stat(name)
}

func (f *Faulty) ReadDir(name string) ([]fs.DirEntry, error) {
	if err, _ := f.check(OpReadDir, name); err != nil {
		return nil, &os.PathError{Op: "readdir", Path: name, Err: err}
	}
	return f.inner.ReadDir(name)
}

func (f *Faulty) Glob(pattern string) ([]string, error) {
	if err, _ := f.check(OpGlob, pattern); err != nil {
		return nil, &os.PathError{Op: "glob", Path: pattern, Err: err}
	}
	return f.inner.Glob(pattern)
}

func (f *Faulty) CreateTemp(dir, pattern string) (File, error) {
	if err, _ := f.check(OpCreateTemp, dir); err != nil {
		return nil, &os.PathError{Op: "createtemp", Path: dir, Err: err}
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, inner: file}, nil
}

func (f *Faulty) SyncDir(dir string) error {
	if err, _ := f.check(OpSyncDir, dir); err != nil {
		return &os.PathError{Op: "syncdir", Path: dir, Err: err}
	}
	return f.inner.SyncDir(dir)
}

// faultyFile threads per-handle reads/writes/syncs back through the
// rule table, so "the 3rd write to the log fails" is expressible.
type faultyFile struct {
	f     *Faulty
	inner File
}

func (ff *faultyFile) Name() string { return ff.inner.Name() }

func (ff *faultyFile) Read(p []byte) (int, error) {
	if err, _ := ff.f.check(OpRead, ff.inner.Name()); err != nil {
		return 0, &os.PathError{Op: "read", Path: ff.inner.Name(), Err: err}
	}
	return ff.inner.Read(p)
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	if err, short := ff.f.check(OpWrite, ff.inner.Name()); err != nil {
		n := 0
		if short >= 0 && short < len(p) {
			// Torn write: a prefix reaches the file before the failure.
			n, _ = ff.inner.Write(p[:short])
		}
		return n, &os.PathError{Op: "write", Path: ff.inner.Name(), Err: err}
	}
	return ff.inner.Write(p)
}

func (ff *faultyFile) Close() error { return ff.inner.Close() }

func (ff *faultyFile) Sync() error {
	if err, _ := ff.f.check(OpSync, ff.inner.Name()); err != nil {
		return &os.PathError{Op: "sync", Path: ff.inner.Name(), Err: err}
	}
	return ff.inner.Sync()
}
