// Package vfs is the filesystem seam beneath the durable layers
// (internal/persist, the serving layer's disk cache tier): a small
// interface covering exactly the operations those layers perform, an OS
// implementation that forwards to the os package, and a fault-injecting
// implementation (Faulty) that makes disk failure a first-class test
// input — fail-the-Nth-op, short writes, fsync errors, ENOSPC.
//
// The articulation system positions itself as long-lived shared
// infrastructure (EDBT 2000, §2); infrastructure is defined by how it
// behaves when the disk misbehaves, and that behavior is only real if
// it is exercised. Production code takes an FS and defaults to OS{};
// tests hand it a Faulty wrapping OS{} and script the failures.
package vfs

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is the open-file surface the durable layers use: sequential
// reads/writes, fsync and close. *os.File implements it.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Name returns the path the file was opened with.
	Name() string
	// Sync flushes the file to stable storage (fsync).
	Sync() error
}

// FS is the filesystem operation set of the durable layers. All paths
// are interpreted as by the os package.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Open(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	Remove(name string) error
	Rename(oldpath, newpath string) error
	Truncate(name string, size int64) error
	Stat(name string) (fs.FileInfo, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	Glob(pattern string) ([]string, error)
	CreateTemp(dir, pattern string) (File, error)
	// SyncDir fsyncs a directory, making renames/creations of entries
	// inside it durable — the step after an atomic rename that makes the
	// *directory entry* itself survive a power cut, not just the file
	// contents.
	SyncDir(dir string) error
}

// OS is the real filesystem.
type OS struct{}

func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OS) Open(name string) (File, error) { return os.Open(name) }

func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (OS) Remove(name string) error { return os.Remove(name) }

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (OS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

func (OS) Glob(pattern string) ([]string, error) { return filepath.Glob(pattern) }

func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Some filesystems refuse fsync on directories; the entry rename is
	// still atomic there, so a refusal downgrades durability rather than
	// correctness. Close errors on a read-only handle carry no data.
	serr := d.Sync()
	d.Close()
	return serr
}
